#!/bin/sh
# Tier-1 verification: build, full test suite, and a bench smoke run.
# Used by CI and as the local pre-merge gate.
set -eu
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== batch smoke (domain pool, --jobs 2) =="
./_build/default/bin/pacor_cli.exe batch corpus --jobs 2

echo "== bench smoke (incl. jobs-scaling case) =="
./_build/default/bench/main.exe --smoke

echo "ci: OK"
