#!/bin/sh
# Tier-1 verification: build, full test suite, and a bench smoke run.
# Used by CI and as the local pre-merge gate.
set -eu
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest (hard 15-minute timeout) =="
# A hang here (a lost pool worker, an unbudgeted search loop) should fail
# the gate, not wedge it.
timeout 900 dune runtest

echo "== batch smoke (domain pool, --jobs 2) =="
./_build/default/bin/pacor_cli.exe batch corpus --jobs 2

echo "== fuzz smoke: parser rejects garbage without crashing (exit 2) =="
fuzzdir=$(mktemp -d)
trap 'rm -rf "$fuzzdir"' EXIT
head -c 4096 /dev/urandom > "$fuzzdir/random.chip"
printf 'grid 999999999 999999999\nvalve 0 -1 -1 01\n' > "$fuzzdir/adversarial.chip"
printf 'name truncated\ngrid 8 8\nvalve 0 3' > "$fuzzdir/truncated.chip"
for f in "$fuzzdir"/*.chip; do
  rc=0
  ./_build/default/bin/pacor_cli.exe check -f "$f" > /dev/null 2>&1 || rc=$?
  if [ "$rc" -ne 2 ]; then
    echo "fuzz smoke: expected parse failure (exit 2) on $f, got $rc" >&2
    exit 1
  fi
done

echo "== fuzz smoke: degenerate batch quarantines exactly the infeasible job =="
rc=0
out=$(./_build/default/bin/pacor_cli.exe batch corpus/degenerate \
        --timeout 2 --retries 1 2>&1) || rc=$?
if [ "$rc" -ne 1 ]; then
  echo "degenerate batch: expected exit 1 (quarantine), got $rc" >&2
  echo "$out" >&2
  exit 1
fi
echo "$out" | grep -q "quarantine: 1 job(s) permanently failed" || {
  echo "degenerate batch: expected exactly one quarantined job" >&2
  echo "$out" >&2
  exit 1
}

echo "== bench smoke (incl. jobs-scaling case + scheduler assertions) =="
./_build/default/bench/main.exe --smoke

echo "== batch byte-identity: --jobs 4 vs --jobs 1 on the corpus =="
# The scheduler's determinism contract at the CLI level: identical routing
# results whatever the worker count. Only wall-clock columns and the
# workspace warm-up counter (allocs — documented schedule-dependent) may
# differ.
batch_fp() {
  ./_build/default/bin/pacor_cli.exe batch corpus --jobs "$1" \
    | sed -E 's/ +[0-9.]+s$//; s/ allocs=[0-9]+//; /^batch:/d'
}
b1=$(batch_fp 1)
b4=$(batch_fp 4)
if [ "$b1" != "$b4" ]; then
  echo "batch byte-identity: --jobs 4 output differs from --jobs 1" >&2
  printf '%s\n' "$b1" > /tmp/batch_jobs1.txt
  printf '%s\n' "$b4" > /tmp/batch_jobs4.txt
  diff /tmp/batch_jobs1.txt /tmp/batch_jobs4.txt >&2 || true
  exit 1
fi

echo "== scheduler race smoke: deque + fork-join stress x3 seeds =="
# Repeated-seed stress in place of a TSAN build: the qcheck cases pick up
# QCHECK_SEED, and the fixed stress cases (concurrent owner/thief
# interleavings, concurrent map callers, steal progress) re-roll their
# domain interleavings on every run.
for seed in 1 42 20260809; do
  QCHECK_SEED=$seed timeout 300 ./_build/default/test/test_sched.exe test deque \
    > /dev/null 2>&1 || {
      echo "scheduler race smoke: deque stress failed under seed $seed" >&2; exit 1; }
  QCHECK_SEED=$seed timeout 300 ./_build/default/test/test_sched.exe test fork-join \
    > /dev/null 2>&1 || {
      echo "scheduler race smoke: fork-join stress failed under seed $seed" >&2; exit 1; }
done

echo "== steal-bench smoke + BENCH_steal.json drift check =="
stealjson=$(mktemp)
./_build/default/bench/main.exe --steal-bench --smoke --json-out "$stealjson" > /dev/null
for key in '"bench": "pacor-steal-bench"' '"cores"' '"modes"' '"sched_ns_per_task"'; do
  grep -qF "$key" BENCH_steal.json || {
    echo "BENCH_steal.json schema drift: missing $key" >&2; exit 1; }
  grep -qF "$key" "$stealjson" || {
    echo "steal-bench smoke output schema drift: missing $key" >&2; exit 1; }
done
# Result integrity: every mode at every domain count must reproduce the
# spec's checksum — in the committed record and in the fresh smoke run.
for rec in BENCH_steal.json "$stealjson"; do
  if grep -qF '"checksum_ok": false' "$rec"; then
    echo "$rec: a scheduler run lost or duplicated tasks (checksum)" >&2; exit 1
  fi
done
# Determinism drift: the smoke specs are a subset of the committed run, so
# every fingerprint (task shape + checksum; wall-clock, steals and parks
# excluded) must appear verbatim.
sed -n 's/.*"fingerprint": "\([^"]*\)".*/\1/p' "$stealjson" | while IFS= read -r fp; do
  grep -qF "\"$fp\"" BENCH_steal.json || {
    echo "steal-bench determinism drift: fingerprint not in BENCH_steal.json:" >&2
    echo "  $fp" >&2
    exit 1
  }
done
rm -f "$stealjson"

echo "== BENCH_parallel.json drift check (jobs-scaling record) =="
# The committed record must carry the core count it was measured on and
# show every jobs count reproducing the jobs=1 results. (Fingerprints are
# covered by the bench's own assertions, which the smoke run above
# executes; the smoke family is smaller than the committed one, so no
# subset check here.)
for key in '"bench": "pacor-jobs-scaling"' '"cores"' '"cpu_vs_jobs1"'; do
  grep -qF "$key" BENCH_parallel.json || {
    echo "BENCH_parallel.json schema drift: missing $key" >&2; exit 1; }
done
if grep -qF '"deterministic": false' BENCH_parallel.json; then
  echo "BENCH_parallel.json: a jobs count diverged from jobs=1" >&2; exit 1
fi

echo "== route-bench smoke + BENCH_route.json drift check =="
routejson=$(mktemp)
./_build/default/bench/main.exe --route-bench --smoke --json-out "$routejson" > /dev/null
# Schema drift: the committed record and the fresh smoke run must both
# carry the sections CI (and downstream tooling) read.
for key in '"bench": "pacor-route-bench"' '"negotiation"' '"escape"' '"totals"'; do
  grep -qF "$key" BENCH_route.json || {
    echo "BENCH_route.json schema drift: missing $key" >&2; exit 1; }
  grep -qF "$key" "$routejson" || {
    echo "route-bench smoke output schema drift: missing $key" >&2; exit 1; }
done
# Determinism drift: every fingerprint (routed/length/expansion counts;
# wall-clock and allocations excluded) produced by the smoke sizes must
# appear verbatim in the committed record.
sed -n 's/.*"fingerprint": "\([^"]*\)".*/\1/p' "$routejson" | while IFS= read -r fp; do
  grep -qF "\"$fp\"" BENCH_route.json || {
    echo "route-bench determinism drift: fingerprint not in BENCH_route.json:" >&2
    echo "  $fp" >&2
    exit 1
  }
done
rm -f "$routejson"

echo "== escape-bench smoke + BENCH_escape.json drift check =="
escjson=$(mktemp)
./_build/default/bench/main.exe --escape-bench --smoke --json-out "$escjson" > /dev/null
for key in '"bench": "pacor-escape-bench"' '"instances"' '"corpus"'; do
  grep -qF "$key" BENCH_escape.json || {
    echo "BENCH_escape.json schema drift: missing $key" >&2; exit 1; }
  grep -qF "$key" "$escjson" || {
    echo "escape-bench smoke output schema drift: missing $key" >&2; exit 1; }
done
# Determinism drift: the smoke sizes are a subset of the committed run, so
# every fingerprint (per-solver routed/length, feasibility bound, corpus
# engine outcomes; wall-clock excluded) must appear verbatim.
sed -n 's/.*"fingerprint": "\([^"]*\)".*/\1/p' "$escjson" | while IFS= read -r fp; do
  grep -qF "\"$fp\"" BENCH_escape.json || {
    echo "escape-bench determinism drift: fingerprint not in BENCH_escape.json:" >&2
    echo "  $fp" >&2
    exit 1
  }
done
rm -f "$escjson"

echo "== hier-bench smoke + BENCH_hier.json drift check =="
hierjson=$(mktemp)
./_build/default/bench/main.exe --hier-bench --smoke --json-out "$hierjson" > /dev/null
for key in '"bench": "pacor-hier-bench"' '"instances"' '"chip1_auto"' '"tier"' \
           '"flat_pops"' '"hier_pops"'; do
  grep -qF "$key" BENCH_hier.json || {
    echo "BENCH_hier.json schema drift: missing $key" >&2; exit 1; }
  grep -qF "$key" "$hierjson" || {
    echo "hier-bench smoke output schema drift: missing $key" >&2; exit 1; }
done
# The committed record must show the hierarchy never losing quality
# (ok=true on every row covers validation plus equal-or-better score) and
# the paper corpus untouched under --hier auto.
if grep -qF 'ok=false' BENCH_hier.json; then
  echo "BENCH_hier.json: a hierarchical run validated worse than flat" >&2; exit 1
fi
grep -qF '"hierb-auto Chip1 tier=flat' BENCH_hier.json || {
  echo "BENCH_hier.json: Chip1 no longer runs flat under --hier auto" >&2; exit 1; }
# Determinism drift: the smoke designs are a subset of the committed run,
# so every fingerprint (cells, per-leg scores, ladder tier, expansion
# counts; wall-clock excluded) must appear verbatim.
sed -n 's/.*"fingerprint": "\([^"]*\)".*/\1/p' "$hierjson" | while IFS= read -r fp; do
  grep -qF "\"$fp\"" BENCH_hier.json || {
    echo "hier-bench determinism drift: fingerprint not in BENCH_hier.json:" >&2
    echo "  $fp" >&2
    exit 1
  }
done
rm -f "$hierjson"

echo "== batch smoke under --hier on (corridor-confined, zero validation failures) =="
hierbatch=$(./_build/default/bin/pacor_cli.exe batch corpus --jobs 2 --hier on)
printf '%s\n' "$hierbatch" | grep -q "validation: OK" || {
  echo "hier batch smoke: a corridor-confined run failed validation" >&2
  printf '%s\n' "$hierbatch" >&2
  exit 1
}

echo "== fault-sweep smoke + BENCH_fault.json drift check =="
faultjson=$(mktemp)
./_build/default/bench/main.exe --fault-sweep --smoke --json-out "$faultjson" > /dev/null
for key in '"bench": "pacor-fault-sweep"' '"cases"' '"all_cheaper"' '"all_valid"'; do
  grep -qF "$key" BENCH_fault.json || {
    echo "BENCH_fault.json schema drift: missing $key" >&2; exit 1; }
  grep -qF "$key" "$faultjson" || {
    echo "fault-sweep smoke output schema drift: missing $key" >&2; exit 1; }
done
# The committed record must assert repair cheaper than a full re-route on
# every case, with every repaired solution passing the validator.
grep -qF '"all_cheaper": true' BENCH_fault.json || {
  echo "BENCH_fault.json: repair is not cheaper than full re-route" >&2; exit 1; }
grep -qF '"all_valid": true' BENCH_fault.json || {
  echo "BENCH_fault.json: a repaired solution failed validation" >&2; exit 1; }
# Determinism drift: the smoke cases are a subset of the committed sweep,
# so every fingerprint (fault counts, per-fault outcomes, expansion
# counts, length delta; wall-clock excluded) must appear verbatim.
sed -n 's/.*"fingerprint": "\([^"]*\)".*/\1/p' "$faultjson" | while IFS= read -r fp; do
  grep -qF "\"$fp\"" BENCH_fault.json || {
    echo "fault-sweep determinism drift: fingerprint not in BENCH_fault.json:" >&2
    echo "  $fp" >&2
    exit 1
  }
done
rm -f "$faultjson"

echo "== serve smoke: daemon over a pipe (route, cache hit, delta, shutdown) =="
# pacor client spawns the daemon on stdin/stdout pipes; --check turns any
# ok:false response into exit 1.
servetrace=$(mktemp)
cat > "$servetrace" <<'EOF'
{"id":1,"op":"route","file":"corpus/corpus-pairs.chip","session":"ci"}
{"id":2,"op":"route","file":"corpus/corpus-pairs.chip"}
{"id":3,"op":"move_valve","session":"ci","valve":10,"x":9,"y":10}
{"id":4,"op":"stats"}
{"id":5,"op":"shutdown"}
EOF
serveout=$(./_build/default/bin/pacor_cli.exe client --check < "$servetrace")
rm -f "$servetrace"
# The repeat route must be served from the cache, byte-identical to the
# first computation (the result field is rendered once and replayed).
printf '%s\n' "$serveout" | sed -n '2p' | grep -qF '"cached":true' || {
  echo "serve smoke: repeat route was not a cache hit" >&2
  printf '%s\n' "$serveout" >&2; exit 1; }
r1=$(printf '%s\n' "$serveout" | sed -n '1s/.*"result"://p')
r2=$(printf '%s\n' "$serveout" | sed -n '2s/.*"result"://p')
if [ -z "$r1" ] || [ "$r1" != "$r2" ]; then
  echo "serve smoke: cache hit is not byte-identical to the first route" >&2
  printf '%s\n' "$serveout" >&2; exit 1
fi
# The delta must be served incrementally (certificate held, no fallback).
printf '%s\n' "$serveout" | sed -n '3p' | grep -qF '"incremental":true' || {
  echo "serve smoke: move_valve was not served incrementally" >&2
  printf '%s\n' "$serveout" >&2; exit 1; }

echo "== serve-bench smoke + BENCH_serve.json drift check =="
servejson=$(mktemp)
./_build/default/bench/main.exe --serve-bench --smoke --json-out "$servejson" > /dev/null
for key in '"bench": "pacor-serve-bench"' '"instances"' '"trace"' '"latency"' \
           '"expansions"' '"daemon_stats"'; do
  grep -qF "$key" BENCH_serve.json || {
    echo "BENCH_serve.json schema drift: missing $key" >&2; exit 1; }
  grep -qF "$key" "$servejson" || {
    echo "serve-bench smoke output schema drift: missing $key" >&2; exit 1; }
done
# The committed record must assert the incremental path pays: delta
# requests cost strictly fewer A* expansions than from-scratch re-routes
# of the same mutated instances — and so must the fresh smoke run.
grep -qF '"deltas_strictly_cheaper": true' BENCH_serve.json || {
  echo "BENCH_serve.json: deltas are not cheaper than scratch re-routes" >&2; exit 1; }
grep -qF '"deltas_strictly_cheaper": true' "$servejson" || {
  echo "serve-bench smoke: deltas are not cheaper than scratch re-routes" >&2; exit 1; }
# Determinism drift: the smoke instances are a subset of the committed
# run, so every instance fingerprint (problem fingerprint, routed valve
# count, total length; wall-clock excluded) must appear verbatim.
sed -n 's/.*"fingerprint": "\([^"]*\)".*/\1/p' "$servejson" | while IFS= read -r fp; do
  grep -qF "\"$fp\"" BENCH_serve.json || {
    echo "serve-bench determinism drift: fingerprint not in BENCH_serve.json:" >&2
    echo "  $fp" >&2
    exit 1
  }
done
rm -f "$servejson"

echo "== chaos-soak smoke + BENCH_chaos.json drift check =="
chaosjson=$(mktemp)
chaosjson2=$(mktemp)
./_build/default/bench/main.exe --chaos-soak --smoke --json-out "$chaosjson" > /dev/null
# Schema drift: committed record and fresh smoke run both carry the
# sections the robustness claims rest on.
for key in '"bench": "pacor-chaos-soak"' '"faults"' '"survival"' \
           '"bounded_memory"' '"sessions"'; do
  grep -qF "$key" BENCH_chaos.json || {
    echo "BENCH_chaos.json schema drift: missing $key" >&2; exit 1; }
  grep -qF "$key" "$chaosjson" || {
    echo "chaos-soak smoke output schema drift: missing $key" >&2; exit 1; }
done
# Survival invariants — zero daemon aborts, zero lost acknowledged
# sessions, bounded memory — must hold in the committed 1000-request
# record AND in the fresh smoke run.
for rec in BENCH_chaos.json "$chaosjson"; do
  grep -qF '"daemon_aborts": 0' "$rec" || {
    echo "$rec: a worker aborted on its own (not a harness kill)" >&2; exit 1; }
  grep -qF '"sessions_lost": 0' "$rec" || {
    echo "$rec: an acknowledged session was lost across recovery" >&2; exit 1; }
  grep -qF '"within_caps": true' "$rec" || {
    echo "$rec: a memory gauge exceeded its cap under chaos" >&2; exit 1; }
done
# Determinism drift: the soak's fault schedule and final session
# fingerprints are a pure function of the seed, so a second smoke run
# must reproduce them byte-for-byte. (The smoke trace is shorter than the
# committed 1000-request run, so its fingerprints are checked against a
# replay, not against the committed record.)
./_build/default/bench/main.exe --chaos-soak --smoke --json-out "$chaosjson2" > /dev/null
fp1=$(sed -n 's/.*"fingerprint": "\([^"]*\)".*/\1/p' "$chaosjson")
fp2=$(sed -n 's/.*"fingerprint": "\([^"]*\)".*/\1/p' "$chaosjson2")
faults1=$(sed -n 's/.*"faults": {\(.*\)}.*/\1/p' "$chaosjson")
faults2=$(sed -n 's/.*"faults": {\(.*\)}.*/\1/p' "$chaosjson2")
if [ -z "$fp1" ] || [ "$fp1" != "$fp2" ] || [ "$faults1" != "$faults2" ]; then
  echo "chaos-soak determinism drift: two seeded smoke runs disagreed" >&2
  diff "$chaosjson" "$chaosjson2" >&2 || true
  exit 1
fi
rm -f "$chaosjson" "$chaosjson2"

echo "== supervised serve smoke: kill -9 mid-trace, journal recovery =="
chaosdir=$(mktemp -d)
./_build/default/bin/pacor_cli.exe designs --emit S1 > "$chaosdir/s1.pacor"
./_build/default/bin/pacor_cli.exe serve --supervise --no-stdio --port 0 \
  --journal "$chaosdir/sessions.journal" --pidfile "$chaosdir/worker.pid" \
  2> "$chaosdir/serve.err" &
suppid=$!
# The ephemeral port is announced on stderr; wait for it (and the worker).
port=
for _ in $(seq 1 100); do
  port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$chaosdir/serve.err" | head -1)
  [ -n "$port" ] && [ -f "$chaosdir/worker.pid" ] && break
  sleep 0.05
done
if [ -z "$port" ]; then
  echo "supervised smoke: daemon never announced its port" >&2
  kill "$suppid" 2>/dev/null || true; exit 1
fi
# Bind a session (journaled before the ack), remember its fingerprint.
fp_before=$(printf '{"id":1,"op":"route","file":"%s","session":"ci"}\n' "$chaosdir/s1.pacor" \
  | ./_build/default/bin/pacor_cli.exe client --connect "127.0.0.1:$port" --check \
  | sed -n 's/.*"fingerprint":"\([0-9a-f]*\)".*/\1/p')
if [ -z "$fp_before" ]; then
  echo "supervised smoke: initial route failed" >&2
  kill "$suppid" 2>/dev/null || true; exit 1
fi
# Kill the worker mid-trace. The supervisor must restart it, the restarted
# worker must recover the session from the journal, and the client must
# retry its way to the same answer.
kill -9 "$(cat "$chaosdir/worker.pid")"
fp_after=$(printf '{"id":2,"op":"get","session":"ci"}\n' \
  | ./_build/default/bin/pacor_cli.exe client --connect "127.0.0.1:$port" --check --retries 8 \
  | sed -n 's/.*"fingerprint":"\([0-9a-f]*\)".*/\1/p')
if [ "$fp_before" != "$fp_after" ]; then
  echo "supervised smoke: recovered session fingerprint drifted ($fp_before -> ${fp_after:-lost})" >&2
  kill "$suppid" 2>/dev/null || true; exit 1
fi
printf '{"id":3,"op":"shutdown"}\n' \
  | ./_build/default/bin/pacor_cli.exe client --connect "127.0.0.1:$port" --check > /dev/null
wait "$suppid" || {
  echo "supervised smoke: supervisor exited abnormally" >&2; exit 1; }
rm -rf "$chaosdir"

echo "ci: OK"
