#!/bin/sh
# Tier-1 verification: build, full test suite, and a bench smoke run.
# Used by CI and as the local pre-merge gate.
set -eu
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== bench smoke =="
./_build/default/bench/main.exe --smoke

echo "ci: OK"
