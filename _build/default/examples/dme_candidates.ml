(* Reproduces the construction of Fig. 3: merging segments and candidate
   Steiner trees for a cluster of four valves, each candidate balanced in
   Manhattan length from the root to every sink.

   Run with: dune exec examples/dme_candidates.exe *)

open Pacor_geom
open Pacor_dme

let sinks = [ Point.make 2 2; Point.make 2 10; Point.make 12 3; Point.make 13 11 ]

let () =
  let grid = Pacor_grid.Routing_grid.create ~width:16 ~height:14 () in

  (* Bottom-up phase: merging regions (Fig. 3a). *)
  let arr = Array.of_list sinks in
  let topo = Topology.balanced_bipartition sinks in
  Format.printf "Balanced-bipartition topology: %a@.@." Topology.pp topo;
  let root = Merge.build ~sinks:arr topo in
  Format.printf "Merging regions (tilted doubled coordinates, bottom-up):@.";
  List.iteri
    (fun i (region, dist) ->
       Format.printf "  m%d: %a  sink distance (doubled) = %d@." (i + 1) Tilted.pp region
         dist)
    (Merge.merging_regions root);
  Format.printf "@.";

  (* Top-down phase: several embeddings = several candidates (Fig. 3b-d). *)
  let cands = Candidate.enumerate ~grid ~usable:(fun _ -> true) ~max_candidates:4 sinks in
  Format.printf "%d candidate Steiner trees:@.@." (List.length cands);
  List.iteri
    (fun i (c : Candidate.t) ->
       Format.printf "candidate %d: %a@." (i + 1) Candidate.pp c;
       Format.printf "  sink full-path estimates:";
       Array.iteri
         (fun j l -> Format.printf " %a:%d" Point.pp c.sinks.(j) l)
         c.full_path_lengths;
       Format.printf "@.  tree edges:";
       List.iter
         (fun (e : Candidate.edge) ->
            Format.printf " %a-%a" Point.pp e.parent_pos Point.pp e.child_pos)
         c.edges;
       Format.printf "@.@.")
    cands;

  (* The DeltaL of every candidate is tiny (rounding only) and the final
     detour stage of the full flow eliminates it. *)
  let worst =
    List.fold_left (fun acc (c : Candidate.t) -> max acc c.mismatch) 0 cands
  in
  Format.printf "worst pre-detour mismatch across candidates: %d grid units@." worst
