examples/instance_files.ml: Activation Cluster Filename Format List Pacor Pacor_geom Pacor_grid Pacor_valve Point Rect String Sys Valve
