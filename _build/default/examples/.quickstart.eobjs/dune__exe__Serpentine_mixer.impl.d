examples/serpentine_mixer.ml: Activation Cluster Format List Pacor Pacor_geom Pacor_grid Pacor_valve Point Rect Valve
