examples/dme_candidates.mli:
