examples/quickstart.ml: Activation Cluster Format List Pacor Pacor_geom Pacor_grid Pacor_valve Point Valve
