examples/multiplexer.ml: Activation Array Cluster Format Fun List Pacor Pacor_geom Pacor_grid Pacor_valve Point Valve
