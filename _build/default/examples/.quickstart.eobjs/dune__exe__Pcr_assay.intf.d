examples/pcr_assay.mli:
