examples/timing_analysis.mli:
