examples/pcr_assay.ml: Format List Pacor Pacor_assay Pacor_geom Pacor_grid Pacor_valve Phase Point Printf Schedule
