examples/instance_files.mli:
