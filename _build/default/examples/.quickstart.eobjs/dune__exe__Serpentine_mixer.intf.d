examples/serpentine_mixer.mli:
