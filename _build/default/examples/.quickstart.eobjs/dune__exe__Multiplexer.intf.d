examples/multiplexer.mli:
