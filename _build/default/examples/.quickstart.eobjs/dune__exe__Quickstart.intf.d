examples/quickstart.mli:
