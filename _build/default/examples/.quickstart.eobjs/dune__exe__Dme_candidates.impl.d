examples/dme_candidates.ml: Array Candidate Format List Merge Pacor_dme Pacor_geom Pacor_grid Point Tilted Topology
