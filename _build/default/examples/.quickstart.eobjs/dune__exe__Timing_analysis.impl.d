examples/timing_analysis.ml: Format List Pacor Pacor_designs Pacor_flow Pacor_geom Pacor_timing Pacor_valve
