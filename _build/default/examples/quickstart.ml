(* Quickstart: build a tiny chip by hand, route it, inspect the result.

   Run with: dune exec examples/quickstart.exe *)

open Pacor_geom
open Pacor_valve

let seq s =
  match Activation.sequence_of_string s with
  | Ok x -> x
  | Error e -> failwith e

let () =
  (* A 18x14 control layer. Two valves that must switch simultaneously
     (same activation sequence, length-matching constraint) plus one
     independent valve. *)
  let v0 = Valve.make ~id:0 ~position:(Point.make 4 4) ~sequence:(seq "0101") in
  let v1 = Valve.make ~id:1 ~position:(Point.make 12 7) ~sequence:(seq "0101") in
  let v2 = Valve.make ~id:2 ~position:(Point.make 8 10) ~sequence:(seq "1010") in
  let grid = Pacor_grid.Routing_grid.create ~width:18 ~height:14 () in
  let sync_cluster = Cluster.make_exn ~id:0 ~length_matched:true [ v0; v1 ] in
  let pins =
    [ Point.make 0 4; Point.make 0 9; Point.make 17 4; Point.make 17 9; Point.make 8 0 ]
  in
  let problem =
    Pacor.Problem.create_exn ~name:"quickstart" ~grid ~valves:[ v0; v1; v2 ]
      ~lm_clusters:[ sync_cluster ] ~pins ~delta:1 ()
  in
  Format.printf "Problem: %a@.@.%s@." Pacor.Problem.pp_summary problem
    (Pacor.Render.problem problem);

  (* Route with the full PACOR flow. *)
  match Pacor.Engine.run problem with
  | Error e -> Format.printf "routing failed at %s: %s@." e.stage e.message
  | Ok solution ->
    let stats = Pacor.Solution.stats solution in
    Format.printf "Routed: %a@.@." Pacor.Solution.pp_stats stats;
    Format.printf "%s@." (Pacor.Render.solution solution);
    (* Per-valve channel lengths of the synchronised cluster: the whole
       point of the paper is that these agree within delta. *)
    List.iter
      (fun (rc : Pacor.Solution.routed_cluster) ->
         if rc.lengths <> [] then begin
           Format.printf "cluster %d (%s):"
             rc.routed.Pacor.Routed.cluster.Cluster.id
             (if rc.matched then "matched" else "NOT matched");
           List.iter (fun (vid, len) -> Format.printf " v%d->pin=%d" vid len) rc.lengths;
           Format.printf "@."
         end)
      solution.clusters;
    (match Pacor.Solution.validate solution with
     | Ok () -> Format.printf "validation: OK@."
     | Error es -> List.iter (Format.printf "validation error: %s@.") es)
