(* Why length matching matters physically: pressure-propagation skew.

   Routes the S3 benchmark twice — once with the length-matching
   constraint (PACOR proper) and once with the constraint stripped (the
   same valve groups still share pins, but are routed as ordinary MST
   clusters) — and compares the valve actuation skew under the Elmore
   pressure-propagation model of [Pacor_timing.Rc_model].

   Run with: dune exec examples/timing_analysis.exe *)

let route problem =
  match Pacor.Engine.run problem with
  | Ok sol -> sol
  | Error e -> failwith (e.stage ^ ": " ^ e.message)

let () =
  let problem =
    match Pacor_designs.Table1.load "S3" with
    | Ok p -> p
    | Error e -> failwith e
  in
  (* The same instance without the length-matching constraint: greedy
     clustering still groups the compatible valves (they share pins), but
     nothing equalises their channel lengths. *)
  let unconstrained =
    Pacor.Problem.create_exn ~name:"S3-unconstrained"
      ~rules:problem.Pacor.Problem.rules ~grid:problem.Pacor.Problem.grid
      ~valves:problem.Pacor.Problem.valves ~pins:problem.Pacor.Problem.pins
      ~delta:problem.Pacor.Problem.delta ()
  in
  let matched_sol = route problem in
  let unmatched_sol = route unconstrained in
  Format.printf "== with length matching (PACOR) ==@.%a@." Pacor_timing.Skew.pp
    (Pacor_timing.Skew.analyze matched_sol);
  (* The unconstrained run reports no LM clusters, so compute skews from
     the shared-pin groups directly. *)
  Format.printf "== without length matching (plain MST clusters) ==@.";
  let params = Pacor_timing.Rc_model.default in
  let rules = unconstrained.Pacor.Problem.rules in
  List.iter
    (fun (rc : Pacor.Solution.routed_cluster) ->
       let cluster = rc.routed.Pacor.Routed.cluster in
       if Pacor_valve.Cluster.size cluster >= 2 then begin
         (* Approximate each valve's channel length as its shortest path
            through the cluster's claimed cells to the escape start, plus
            the escape; for a plain cluster the spread of tree distances is
            a fair proxy: use Manhattan distance valve -> pin along the
            claimed network lower-bounded by Manhattan to the pin. *)
         match rc.escape with
         | None -> ()
         | Some e ->
           let pin = e.Pacor_flow.Escape.pin in
           let lengths =
             List.map
               (fun (v : Pacor_valve.Valve.t) ->
                  Pacor_geom.Point.manhattan v.position pin)
               cluster.Pacor_valve.Cluster.valves
           in
           let skew = Pacor_timing.Rc_model.skew_of_lengths params ~rules lengths in
           Format.printf
             "  pin-shared group %d: %d valves, channel-length spread >= %d, skew >= %.3f ms@."
             cluster.Pacor_valve.Cluster.id
             (List.length lengths)
             (List.fold_left max min_int lengths - List.fold_left min max_int lengths)
             (1000.0 *. skew)
       end)
    unmatched_sol.Pacor.Solution.clusters;
  Format.printf
    "@.(The matched run bounds every cluster's skew by the delta window;@.\
    \ the unconstrained run's skews scale with the raw distance spread.)@."
