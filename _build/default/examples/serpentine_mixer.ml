(* A rotary mixer scenario (the kind of functional unit the paper's intro
   motivates): the mixer ring has two inlet valves and two outlet valves
   that must each open/close simultaneously, plus a three-valve sieve set
   used for metering. Unequal control-channel lengths would make one side
   of the ring actuate late and leak fluid, so the inlet pair, the outlet
   pair and the sieve triple each carry the length-matching constraint.

   Run with: dune exec examples/serpentine_mixer.exe *)

open Pacor_geom
open Pacor_valve

let seq s =
  match Activation.sequence_of_string s with
  | Ok x -> x
  | Error e -> failwith e

let () =
  (* Schedule over 6 time steps:
     - inlets open while loading        (0 0 1 1 X X)
     - outlets closed until flush       (1 1 1 0 0 X)
     - sieve valves actuate for metering(1 0 X X 1 X) *)
  let inlet p id = Valve.make ~id ~position:p ~sequence:(seq "0011XX") in
  let outlet p id = Valve.make ~id ~position:p ~sequence:(seq "11100X") in
  let sieve p id = Valve.make ~id ~position:p ~sequence:(seq "10XX1X") in
  (* Mixer ring occupies the middle of a 26x20 control layer; the flow
     layer structures (ring walls) are control-layer obstacles. The sieve
     valves sit in the chamber between the walls — roomy enough that their
     control tree, its escape channel and the matching detours all fit.
     (Squeeze the walls to rows 8 and 12 and the sieve cluster becomes
     geometrically unmatchable: three tree legs plus an escape cannot all
     leave a root inside a three-row corridor — a nice illustration of why
     the paper reports partially matched designs.) *)
  let ring_obstacles =
    [ Rect.make ~x0:9 ~y0:6 ~x1:16 ~y1:6; Rect.make ~x0:9 ~y0:14 ~x1:16 ~y1:14 ]
  in
  let valves =
    [ inlet (Point.make 7 7) 0; inlet (Point.make 7 13) 1;
      outlet (Point.make 18 7) 2; outlet (Point.make 18 13) 3;
      sieve (Point.make 11 10) 4; sieve (Point.make 13 10) 5; sieve (Point.make 15 10) 6 ]
  in
  let clusters =
    [ Cluster.make_exn ~id:0 ~length_matched:true [ List.nth valves 0; List.nth valves 1 ];
      Cluster.make_exn ~id:1 ~length_matched:true [ List.nth valves 2; List.nth valves 3 ];
      Cluster.make_exn ~id:2 ~length_matched:true
        [ List.nth valves 4; List.nth valves 5; List.nth valves 6 ] ]
  in
  let grid =
    Pacor_grid.Routing_grid.create ~width:26 ~height:20 ~obstacles:ring_obstacles ()
  in
  let pins =
    List.concat
      [ List.init 5 (fun i -> Point.make 0 (3 + (3 * i)));
        List.init 5 (fun i -> Point.make 25 (3 + (3 * i)));
        List.init 3 (fun i -> Point.make (6 + (6 * i)) 0) ]
  in
  let problem =
    Pacor.Problem.create_exn ~name:"rotary-mixer" ~grid ~valves ~lm_clusters:clusters
      ~pins ~delta:1 ()
  in
  Format.printf "%a@.@." Pacor.Problem.pp_summary problem;
  match Pacor.Engine.run problem with
  | Error e -> Format.printf "routing failed at %s: %s@." e.stage e.message
  | Ok solution ->
    Format.printf "%s@." (Pacor.Render.solution solution);
    Format.printf "%a@.@." Pacor.Solution.pp_stats (Pacor.Solution.stats solution);
    List.iter
      (fun (rc : Pacor.Solution.routed_cluster) ->
         match rc.lengths with
         | [] -> ()
         | lengths ->
           let ls = List.map snd lengths in
           let spread = List.fold_left max min_int ls - List.fold_left min max_int ls in
           Format.printf
             "cluster %d: channel lengths%t  spread=%d (%s within delta=1)@."
             rc.routed.Pacor.Routed.cluster.Cluster.id
             (fun ppf -> List.iter (fun (v, l) -> Format.fprintf ppf " v%d:%d" v l) lengths)
             spread
             (if rc.matched then "matched" else "NOT"))
      solution.clusters;
    (match Pacor.Solution.validate solution with
     | Ok () -> Format.printf "validation: OK@."
     | Error es -> List.iter (Format.printf "validation error: %s@.") es)
