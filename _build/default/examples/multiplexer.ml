(* A binary demultiplexer control bank under broadcast addressing.

   A 1-to-8 flow multiplexer needs 3 address bits; each bit drives one
   valve on every second flow channel (4 valves per bit line) and its
   complement drives the other 4. All valves of one bit line must actuate
   at the same instant or the multiplexer transiently routes fluid to the
   wrong chamber — so each bit line is a length-matched cluster. Broadcast
   addressing then needs 6 control pins for 24 valves.

   Run with: dune exec examples/multiplexer.exe *)

open Pacor_geom
open Pacor_valve

(* Address-bit activation over 8 select states: bit b of the state. *)
let bit_sequence ~bit ~complement =
  Array.init 8 (fun state ->
    let v = (state lsr bit) land 1 = 1 in
    let closed = if complement then not v else v in
    if closed then Activation.Closed else Activation.Open)

let () =
  let width = 40 and height = 26 in
  (* 8 flow channels run vertically at x = 6, 10, ..., 34; address bit b
     places valves on row 6 + 3b (true line) and its complement row. *)
  let channel_x ch = 6 + (4 * ch) in
  let valves = ref [] and clusters = ref [] in
  let next_id = ref 0 in
  List.iter
    (fun bit ->
       List.iter
         (fun complement ->
            let row = 5 + (6 * bit) + if complement then 3 else 0 in
            let members =
              List.filter_map
                (fun ch ->
                   let bitval = (ch lsr bit) land 1 = 1 in
                   (* The true line gates channels where the bit is 1, the
                      complement the others. *)
                   if bitval = complement then None
                   else begin
                     let id = !next_id in
                     incr next_id;
                     let v =
                       Valve.make ~id ~position:(Point.make (channel_x ch) row)
                         ~sequence:(bit_sequence ~bit ~complement)
                     in
                     valves := v :: !valves;
                     Some v
                   end)
                (List.init 8 Fun.id)
            in
            let cid = (2 * bit) + if complement then 1 else 0 in
            clusters := Cluster.make_exn ~id:cid ~length_matched:true members :: !clusters)
         [ false; true ])
    [ 0; 1; 2 ];
  let valves = List.rev !valves and clusters = List.rev !clusters in
  let grid = Pacor_grid.Routing_grid.create ~width ~height () in
  let pins =
    List.concat
      [ List.init 8 (fun i -> Point.make 0 (2 + (3 * i)));
        List.init 8 (fun i -> Point.make (width - 1) (2 + (3 * i)));
        List.init 9 (fun i -> Point.make (2 + (4 * i)) (height - 1)) ]
  in
  let problem =
    Pacor.Problem.create_exn ~name:"mux-3bit" ~grid ~valves ~lm_clusters:clusters ~pins
      ~delta:1 ()
  in
  Format.printf "%a@." Pacor.Problem.pp_summary problem;
  Format.printf "valves: %d, control pins needed under broadcast addressing: %d@.@."
    (List.length valves) (List.length clusters);
  match Pacor.Engine.run problem with
  | Error e -> Format.printf "routing failed at %s: %s@." e.stage e.message
  | Ok solution ->
    let stats = Pacor.Solution.stats solution in
    Format.printf "%a@.@." Pacor.Solution.pp_stats stats;
    Format.printf "%s@." (Pacor.Render.solution solution);
    List.iter
      (fun (rc : Pacor.Solution.routed_cluster) ->
         match rc.lengths with
         | [] -> ()
         | lengths ->
           let ls = List.map snd lengths in
           let spread = List.fold_left max min_int ls - List.fold_left min max_int ls in
           Format.printf "bit line %d: %d valves, pin distance spread %d (%s)@."
             rc.routed.Pacor.Routed.cluster.Cluster.id (List.length lengths) spread
             (if rc.matched then "matched" else "not matched"))
      solution.clusters;
    Format.printf
      "(A partially matched bank is normal on congested chips — escape@.\
      \ channels occupy the rows the detours would need; the paper's own@.\
      \ Table 2 shows the same effect, e.g. 5 of 13 clusters on S5.)@.";
    (match Pacor.Solution.validate solution with
     | Ok () -> Format.printf "validation: OK@."
     | Error es -> List.iter (Format.printf "validation error: %s@.") es)
