(* Working with instance files: build a problem, save it in the plain-text
   format, reload it, route it, and show the textual format itself.

   Run with: dune exec examples/instance_files.exe *)

open Pacor_geom
open Pacor_valve

let seq s =
  match Activation.sequence_of_string s with
  | Ok x -> x
  | Error e -> failwith e

let () =
  let v0 = Valve.make ~id:0 ~position:(Point.make 3 3) ~sequence:(seq "010") in
  let v1 = Valve.make ~id:1 ~position:(Point.make 9 7) ~sequence:(seq "010") in
  let v2 = Valve.make ~id:2 ~position:(Point.make 6 9) ~sequence:(seq "101") in
  let grid =
    Pacor_grid.Routing_grid.create ~width:14 ~height:12
      ~obstacles:[ Rect.make ~x0:6 ~y0:4 ~x1:7 ~y1:5 ] ()
  in
  let problem =
    Pacor.Problem.create_exn ~name:"file-demo" ~grid ~valves:[ v0; v1; v2 ]
      ~lm_clusters:[ Cluster.make_exn ~id:0 ~length_matched:true [ v0; v1 ] ]
      ~pins:[ Point.make 0 3; Point.make 13 7; Point.make 6 0 ]
      ~delta:1 ()
  in
  let path = Filename.temp_file "pacor-demo" ".chip" in
  (match Pacor.Problem_io.save problem ~path with
   | Ok () -> Format.printf "instance written to %s@." path
   | Error e -> failwith e);
  Format.printf "--- file format (first lines) ---@.";
  let text = Pacor.Problem_io.to_string problem in
  String.split_on_char '\n' text
  |> List.filteri (fun i _ -> i < 12)
  |> List.iter print_endline;
  Format.printf "--- reloading and routing ---@.";
  match Pacor.Problem_io.load ~path with
  | Error e -> failwith e
  | Ok reloaded ->
    assert (Pacor.Problem_io.to_string reloaded = text);
    (match Pacor.Engine.run reloaded with
     | Error e -> Format.printf "routing failed: %s@." e.message
     | Ok sol ->
       Format.printf "%a@.%s@."
         Pacor.Solution.pp_stats (Pacor.Solution.stats sol)
         (Pacor.Render.solution sol);
       Sys.remove path)
