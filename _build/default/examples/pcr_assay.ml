(* From assay schedule to routed control layer, end to end.

   The paper assumes the valve activation sequences and the length-matched
   clusters arrive from an upstream control-synthesis step. This example
   performs that step with the [Pacor_assay] library: a small PCR-style
   assay (prime, load sample, load reagent, peristaltic mixing, flush) is
   described as phases; compilation yields the "0-1-X" sequences, derives
   the synchronisation clusters, and the result is routed by PACOR.

   Run with: dune exec examples/pcr_assay.exe *)

open Pacor_geom
open Pacor_assay

(* Valve roles. *)
let sample_l = 0 and sample_r = 1        (* sample inlet pair: must sync *)
let reagent_l = 2 and reagent_r = 3      (* reagent inlet pair: must sync *)
let sieve_a = 4 and sieve_b = 5 and sieve_c = 6  (* metering sieve: triple *)
let pump1 = 7 and pump2 = 8 and pump3 = 9        (* peristaltic pump stages *)
let waste_l = 10 and waste_r = 11        (* waste outlet pair: must sync *)

let all_closed ids = List.map Phase.closed ids
let all_open ids = List.map Phase.open_ ids

let schedule =
  let everything =
    [ sample_l; sample_r; reagent_l; reagent_r; sieve_a; sieve_b; sieve_c;
      pump1; pump2; pump3; waste_l; waste_r ]
  in
  let sieves = [ sieve_a; sieve_b; sieve_c ] in
  let pumps = [ pump1; pump2; pump3 ] in
  (* One peristaltic step: exactly one pump stage open, rotating. *)
  let pump_step i open_stage =
    Phase.make_exn
      ~name:(Printf.sprintf "mix-%d" i)
      ~duration:1
      (all_closed (List.filter (fun p -> p <> open_stage) pumps)
       @ [ Phase.open_ open_stage ]
       @ all_closed [ sample_l; sample_r; reagent_l; reagent_r; waste_l; waste_r ]
       @ all_closed sieves)
  in
  Schedule.make_exn
    ([ Phase.make_exn ~name:"prime" ~duration:2 (all_closed everything);
       Phase.make_exn ~name:"load-sample" ~duration:3
         ~sync_groups:[ [ sample_l; sample_r ] ]
         (all_open [ sample_l; sample_r ]
          @ all_closed [ reagent_l; reagent_r; waste_l; waste_r ]
          @ all_open sieves @ all_closed pumps);
       Phase.make_exn ~name:"load-reagent" ~duration:3
         ~sync_groups:[ [ reagent_l; reagent_r ] ]
         (all_open [ reagent_l; reagent_r ]
          @ all_closed [ sample_l; sample_r; waste_l; waste_r ]
          @ all_open sieves @ all_closed pumps);
       Phase.make_exn ~name:"meter" ~duration:2
         ~sync_groups:[ sieves ]
         (all_closed sieves
          @ all_closed [ sample_l; sample_r; reagent_l; reagent_r; waste_l; waste_r ]
          @ all_closed pumps) ]
     @ List.concat
         (List.init 2 (fun round ->
            List.mapi (fun i p -> pump_step ((3 * round) + i) p) pumps))
     @ [ Phase.make_exn ~name:"flush" ~duration:3
           ~sync_groups:[ [ waste_l; waste_r ] ]
           (all_open [ waste_l; waste_r ]
            @ all_open sieves
            @ all_closed [ sample_l; sample_r; reagent_l; reagent_r ]
            @ all_closed pumps) ])

let positions id =
  match id with
  | 0 -> Point.make 4 6   (* sample_l *)
  | 1 -> Point.make 4 14  (* sample_r *)
  | 2 -> Point.make 25 6  (* reagent_l *)
  | 3 -> Point.make 25 14 (* reagent_r *)
  | 4 -> Point.make 12 10 (* sieve_a *)
  | 5 -> Point.make 15 10 (* sieve_b *)
  | 6 -> Point.make 18 10 (* sieve_c *)
  | 7 -> Point.make 12 4  (* pump1 *)
  | 8 -> Point.make 15 4  (* pump2 *)
  | 9 -> Point.make 18 4  (* pump3 *)
  | 10 -> Point.make 12 16 (* waste_l *)
  | 11 -> Point.make 18 16 (* waste_r *)
  | _ -> invalid_arg "unknown valve"

let () =
  Format.printf "%a@." Schedule.pp schedule;
  Format.printf "compiled activation sequences:@.";
  List.iter
    (fun (id, seq) ->
       Format.printf "  v%-2d %s@." id (Pacor_valve.Activation.string_of_sequence seq))
    (Schedule.sequences schedule);
  let valves = Schedule.to_valves schedule ~positions in
  match Schedule.lm_clusters schedule ~valves with
  | Error e -> Format.printf "cluster derivation failed: %s@." e
  | Ok lm_clusters ->
    Format.printf "derived %d synchronisation clusters:@." (List.length lm_clusters);
    List.iter
      (fun c -> Format.printf "  %a@." Pacor_valve.Cluster.pp c)
      lm_clusters;
    let grid = Pacor_grid.Routing_grid.create ~width:30 ~height:22 () in
    let pins =
      List.concat
        [ List.init 6 (fun i -> Point.make 0 (2 + (3 * i)));
          List.init 6 (fun i -> Point.make 29 (2 + (3 * i)));
          List.init 6 (fun i -> Point.make (3 + (5 * i)) 0) ]
    in
    let problem =
      Pacor.Problem.create_exn ~name:"pcr-assay" ~grid ~valves ~lm_clusters ~pins
        ~delta:1 ()
    in
    (match Pacor.Engine.run problem with
     | Error e -> Format.printf "routing failed at %s: %s@." e.stage e.message
     | Ok solution ->
       let stats = Pacor.Solution.stats solution in
       Format.printf "@.%a@." Pacor.Solution.pp_stats stats;
       Format.printf "pins used: %d for %d valves (broadcast addressing)@."
         (List.length solution.clusters) (List.length valves);
       Format.printf "@.%s@." (Pacor.Render.solution solution);
       (match Pacor.Solution.validate solution with
        | Ok () -> Format.printf "validation: OK@."
        | Error es -> List.iter (Format.printf "validation error: %s@.") es))
