(** Actuation-skew analysis of a routed solution.

    Converts the routed channel lengths of every length-matched cluster
    into pressure-propagation delays ({!Rc_model}) and reports the
    actuation skew — the quantity whose control is the entire point of the
    length-matching constraint. *)

type cluster_report = {
  cluster_id : int;
  valve_delays : (Pacor_valve.Valve.id * float) list;  (** seconds *)
  skew_s : float;          (** max - min delay within the cluster *)
  matched : bool;          (** the router's matched flag *)
}

type report = {
  clusters : cluster_report list;   (** length-matched clusters only *)
  worst_skew_s : float;
  worst_cluster : int option;
}

val analyze : ?params:Rc_model.params -> Pacor.Solution.t -> report
(** Delays are computed from each valve's full channel length (internal
    tree legs plus the shared escape channel) under the solution's design
    rules. *)

val pp : Format.formatter -> report -> unit
(** Human-readable summary, delays in milliseconds. *)
