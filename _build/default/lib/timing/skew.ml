type cluster_report = {
  cluster_id : int;
  valve_delays : (Pacor_valve.Valve.id * float) list;
  skew_s : float;
  matched : bool;
}

type report = {
  clusters : cluster_report list;
  worst_skew_s : float;
  worst_cluster : int option;
}

let analyze ?(params = Rc_model.default) (sol : Pacor.Solution.t) =
  let rules = sol.problem.Pacor.Problem.rules in
  let clusters =
    List.filter_map
      (fun (rc : Pacor.Solution.routed_cluster) ->
         match rc.lengths with
         | [] -> None
         | lengths ->
           let valve_delays =
             List.map
               (fun (vid, len) -> (vid, Rc_model.delay_of_grid params ~rules len))
               lengths
           in
           let delays = List.map snd valve_delays in
           let skew_s =
             List.fold_left max neg_infinity delays
             -. List.fold_left min infinity delays
           in
           Some
             {
               cluster_id = rc.routed.Pacor.Routed.cluster.Pacor_valve.Cluster.id;
               valve_delays;
               skew_s;
               matched = rc.matched;
             })
      sol.clusters
  in
  let worst =
    List.fold_left
      (fun acc c ->
         match acc with
         | Some (_, s) when s >= c.skew_s -> acc
         | _ -> Some (c.cluster_id, c.skew_s))
      None clusters
  in
  {
    clusters;
    worst_skew_s = (match worst with Some (_, s) -> s | None -> 0.0);
    worst_cluster = Option.map fst worst;
  }

let pp ppf t =
  Format.fprintf ppf "actuation skew per length-matched cluster:@.";
  List.iter
    (fun c ->
       Format.fprintf ppf "  cluster %d (%s): skew %.3f ms  delays:" c.cluster_id
         (if c.matched then "matched" else "unmatched")
         (1000.0 *. c.skew_s);
       List.iter
         (fun (vid, d) -> Format.fprintf ppf " v%d=%.3fms" vid (1000.0 *. d))
         c.valve_delays;
       Format.fprintf ppf "@.")
    t.clusters;
  match t.worst_cluster with
  | Some id -> Format.fprintf ppf "worst skew: %.3f ms (cluster %d)@." (1000.0 *. t.worst_skew_s) id
  | None -> Format.fprintf ppf "no length-matched clusters@."
