(** First-order pressure-propagation model for PDMS control channels.

    The paper's motivation: pressure travels slowly from the control pin
    through the flexible channel to the valve membrane, and the propagation
    time grows with channel length — so synchronised valves need
    length-matched channels. This module quantifies that with the standard
    distributed-RC (Elmore) model, which the control-layer literature (e.g.
    the paper's refs. [12], [23]) uses for pneumatic channels:

    - the channel has a pneumatic resistance per unit length [r] (viscous
      loss of the working fluid) and a compliance per unit length [c]
      (channel walls bulge under pressure);
    - the valve adds a lumped membrane compliance [c_valve] at the far end;
    - a uniform line of length [l] driven from one end then settles in
      approximately [tau = (r l) (c l / 2 + c_valve)] — quadratic in length,
      which is why even modest length mismatches produce visible actuation
      skew.

    Default constants are order-of-magnitude values for 10 um-wide,
    10 um-high oil-filled PDMS channels and 100x100 um^2 valve membranes,
    scaled so that a 2 cm channel (1000 grid units at the default pitch)
    settles in roughly 10 ms — the regime reported for mVLSI chips. *)

type params = {
  resistance_per_um : float;   (** Pa s / m^3 per micrometre of channel *)
  compliance_per_um : float;   (** m^3 / Pa per micrometre of channel *)
  valve_compliance : float;    (** lumped membrane compliance, m^3 / Pa *)
}

val default : params

val delay_of_um : params -> float -> float
(** [delay_of_um p length_um] is the Elmore settling time in seconds of a
    channel of the given length. Monotonically increasing and convex. *)

val delay_of_grid : params -> rules:Pacor_grid.Design_rules.t -> int -> float
(** Delay of a channel measured in routing-grid edges, converted through
    the design rules' pitch. *)

val skew_of_lengths : params -> rules:Pacor_grid.Design_rules.t -> int list -> float
(** [max - min] of the delays of the given channel lengths (seconds);
    0 for fewer than two channels. *)
