lib/timing/rc_model.mli: Pacor_grid
