lib/timing/rc_model.ml: List Pacor_grid
