lib/timing/skew.ml: Format List Option Pacor Pacor_valve Rc_model
