lib/timing/skew.mli: Format Pacor Pacor_valve Rc_model
