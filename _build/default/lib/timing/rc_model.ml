type params = {
  resistance_per_um : float;
  compliance_per_um : float;
  valve_compliance : float;
}

(* Order-of-magnitude constants for a 10x10 um oil-filled PDMS channel
   with a 100x100 um^2 valve membrane, tuned so a 20 mm channel settles in
   tau = (4e10 * 2e4) * (1e-21 * 2e4 / 2 + 5e-18) = 8e14 * 1.5e-17 = 12 ms
   — the regime the mVLSI literature reports. *)
let default =
  {
    resistance_per_um = 4.0e10;
    compliance_per_um = 1.0e-21;
    valve_compliance = 5.0e-18;
  }

let delay_of_um p length_um =
  if length_um < 0.0 then invalid_arg "Rc_model.delay_of_um: negative length";
  let r = p.resistance_per_um *. length_um in
  let c_line = p.compliance_per_um *. length_um in
  r *. ((c_line /. 2.0) +. p.valve_compliance)

let delay_of_grid p ~rules n =
  delay_of_um p (float_of_int (Pacor_grid.Design_rules.um_of_grid_length rules n))

let skew_of_lengths p ~rules lengths =
  match lengths with
  | [] | [ _ ] -> 0.0
  | _ :: _ ->
    let delays = List.map (delay_of_grid p ~rules) lengths in
    List.fold_left max neg_infinity delays -. List.fold_left min infinity delays
