type t = {
  channel_width_um : int;
  channel_spacing_um : int;
  valve_size_um : int;
}

let default = { channel_width_um = 10; channel_spacing_um = 10; valve_size_um = 8 }
let grid_pitch_um t = t.channel_width_um + t.channel_spacing_um
let um_of_grid_length t n = n * grid_pitch_um t

let validate t =
  if t.channel_width_um <= 0 then Error "channel width must be positive"
  else if t.channel_spacing_um <= 0 then Error "channel spacing must be positive"
  else if t.valve_size_um <= 0 then Error "valve size must be positive"
  else Ok t

let pp ppf t =
  Format.fprintf ppf "width=%dum spacing=%dum valve=%dum (pitch %dum)"
    t.channel_width_um t.channel_spacing_um t.valve_size_um (grid_pitch_um t)
