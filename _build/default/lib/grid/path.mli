(** Rectilinear routing paths on the grid.

    A path is a non-empty sequence of grid points where consecutive points
    are 4-neighbours. Its {e channel length} is its number of edges, the
    quantity the length-matching constraint speaks about. *)

open Pacor_geom

type t

val of_points : Point.t list -> t
(** Raises [Invalid_argument] on an empty list, non-adjacent consecutive
    points, or a repeated vertex (paths must be simple: a channel cannot
    cross itself on a single layer). *)

val of_points_opt : Point.t list -> t option

val points : t -> Point.t list
val source : t -> Point.t
val target : t -> Point.t

val length : t -> int
(** Number of edges ([List.length (points p) - 1]). *)

val is_trivial : t -> bool
(** A single-point path. *)

val mem : t -> Point.t -> bool

val reverse : t -> t

val append : t -> t -> t
(** [append a b] concatenates when [target a = source b]; raises
    [Invalid_argument] otherwise or when the result would repeat a vertex
    other than the junction. *)

val splice : t -> at:Point.t -> replacement:t -> t
(** [splice p ~at ~replacement] replaces the single vertex [at] of [p] with
    the sub-path [replacement], whose source and target must both equal
    [at] — a loop inserted at one vertex. Raises [Invalid_argument] when
    [at] is not on the path or endpoints mismatch. *)

val replace_segment : t -> from_idx:int -> to_idx:int -> t -> t
(** [replace_segment p ~from_idx ~to_idx seg] substitutes the sub-path of
    [p] between vertex indices [from_idx] and [to_idx] (inclusive) with
    [seg], whose endpoints must equal the vertices at those indices. Used by
    the detour stage to lengthen one leg of a routed tree. *)

val nth : t -> int -> Point.t

val bounding_box : t -> Rect.t

val shares_vertex : t -> t -> bool
(** True when the two paths have any grid point in common. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
