(** Fabrication design rules for the control layer.

    The paper routes on a uniform grid whose pitch is derived from the
    minimum channel width and the minimum channel spacing: two channels on
    adjacent grid tracks are then automatically spacing-clean, so the router
    only needs to keep paths vertex-disjoint. *)

type t = {
  channel_width_um : int;   (** minimum control-channel width, micrometres *)
  channel_spacing_um : int; (** minimum channel-to-channel spacing *)
  valve_size_um : int;      (** valve footprint edge length *)
}

val default : t
(** 10 um channels, 10 um spacing, 8 um valves — the mVLSI scale quoted in
    the paper's introduction (valves of 8x8 um^2). *)

val grid_pitch_um : t -> int
(** Distance between adjacent routing tracks: width + spacing. *)

val um_of_grid_length : t -> int -> int
(** Convert a channel length counted in grid edges to micrometres. *)

val validate : t -> (t, string) result
(** Reject non-positive dimensions. *)

val pp : Format.formatter -> t -> unit
