open Pacor_geom

(* Points are stored as an array for O(1) nth; a point set gives O(log n)
   membership. Both are built once at construction. *)
type t = { pts : Point.t array; set : Point.Set.t }

let check_points = function
  | [] -> Error "empty path"
  | first :: rest ->
    let rec go prev seen = function
      | [] -> Ok seen
      | p :: tl ->
        if Point.manhattan prev p <> 1 then Error "non-adjacent consecutive points"
        else if Point.Set.mem p seen then Error "repeated vertex"
        else go p (Point.Set.add p seen) tl
    in
    go first (Point.Set.singleton first) rest

let of_points_opt pts =
  match check_points pts with
  | Error _ -> None
  | Ok set -> Some { pts = Array.of_list pts; set }

let of_points pts =
  match check_points pts with
  | Error msg -> invalid_arg ("Path.of_points: " ^ msg)
  | Ok set -> { pts = Array.of_list pts; set }

let points t = Array.to_list t.pts
let source t = t.pts.(0)
let target t = t.pts.(Array.length t.pts - 1)
let length t = Array.length t.pts - 1
let is_trivial t = length t = 0
let mem t p = Point.Set.mem p t.set
let reverse t = { t with pts = Array.init (Array.length t.pts) (fun i -> t.pts.(Array.length t.pts - 1 - i)) }

let append a b =
  if not (Point.equal (target a) (source b)) then
    invalid_arg "Path.append: endpoints do not meet";
  of_points (points a @ List.tl (points b))

let nth t i =
  if i < 0 || i >= Array.length t.pts then invalid_arg "Path.nth: out of range";
  t.pts.(i)

let replace_segment t ~from_idx ~to_idx seg =
  let n = Array.length t.pts in
  if from_idx < 0 || to_idx >= n || from_idx > to_idx then
    invalid_arg "Path.replace_segment: bad indices";
  if not (Point.equal (source seg) t.pts.(from_idx)) then
    invalid_arg "Path.replace_segment: segment source mismatch";
  if not (Point.equal (target seg) t.pts.(to_idx)) then
    invalid_arg "Path.replace_segment: segment target mismatch";
  let prefix = Array.to_list (Array.sub t.pts 0 from_idx) in
  let suffix =
    if to_idx + 1 >= n then [] else Array.to_list (Array.sub t.pts (to_idx + 1) (n - to_idx - 1))
  in
  of_points (prefix @ points seg @ suffix)

let splice t ~at ~replacement =
  match Array.to_list t.pts |> List.mapi (fun i p -> (i, p))
        |> List.find_opt (fun (_, p) -> Point.equal p at)
  with
  | None -> invalid_arg "Path.splice: vertex not on path"
  | Some (i, _) -> replace_segment t ~from_idx:i ~to_idx:i replacement

let bounding_box t = Rect.of_point_list (points t)

let shares_vertex a b =
  (* Iterate over the smaller set. *)
  let small, large =
    if Point.Set.cardinal a.set <= Point.Set.cardinal b.set then (a.set, b.set)
    else (b.set, a.set)
  in
  Point.Set.exists (fun p -> Point.Set.mem p large) small

let equal a b =
  Array.length a.pts = Array.length b.pts
  && Array.for_all2 Point.equal a.pts b.pts

let pp ppf t =
  Format.fprintf ppf "@[<h>%a@]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "-") Point.pp)
    (points t)
