lib/grid/design_rules.mli: Format
