lib/grid/obstacle_map.mli: Format Pacor_geom Point Rect
