lib/grid/path.mli: Format Pacor_geom Point Rect
