lib/grid/design_rules.ml: Format
