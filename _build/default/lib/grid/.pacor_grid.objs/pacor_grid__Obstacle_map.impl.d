lib/grid/obstacle_map.ml: Bytes Char Format List Pacor_geom Point Rect
