lib/grid/path.ml: Array Format List Pacor_geom Point Rect
