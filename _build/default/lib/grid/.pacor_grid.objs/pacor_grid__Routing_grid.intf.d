lib/grid/routing_grid.mli: Obstacle_map Pacor_geom Point Rect
