lib/grid/routing_grid.ml: List Obstacle_map Pacor_geom Point
