let run_variant problem variant =
  let config = Pacor.Config.make ~variant () in
  match Pacor.Engine.run ~config problem with
  | Error e ->
    Error
      (Printf.sprintf "%s failed at %s: %s" (Pacor.Config.variant_name variant) e.stage
         e.message)
  | Ok sol ->
    (match Pacor.Solution.validate sol with
     | Ok () -> Ok (Pacor.Solution.stats sol)
     | Error es ->
       Error
         (Printf.sprintf "%s produced an invalid solution: %s"
            (Pacor.Config.variant_name variant)
            (String.concat "; " es)))

let measure_problem problem =
  match run_variant problem Pacor.Config.Without_selection with
  | Error _ as e -> e
  | Ok without_sel ->
    (match run_variant problem Pacor.Config.Detour_first with
     | Error _ as e -> e
     | Ok detour_first ->
       (match run_variant problem Pacor.Config.Full with
        | Error _ as e -> e
        | Ok pacor ->
          Ok
            (Pacor.Report.row_of_stats ~design:problem.Pacor.Problem.name ~without_sel
               ~detour_first ~pacor)))

let measure_design name =
  match Table1.load name with
  | Error _ as e -> e
  | Ok problem -> measure_problem problem

let measure_table2 ?(progress = fun _ -> ()) names =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | n :: rest ->
      (match measure_design n with
       | Error _ as e -> e
       | Ok row ->
         progress n;
         go (row :: acc) rest)
  in
  go [] names
