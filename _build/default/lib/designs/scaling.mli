(** Scaling study (extension beyond the paper's evaluation): how do the
    flow's runtime and quality grow with chip size?

    Generates a family of geometrically growing synthetic designs with
    proportional valve/cluster/pin counts and measures the full PACOR flow
    on each — the data behind the runtime-vs-size series in EXPERIMENTS.md. *)

type sample = {
  label : string;
  grid_cells : int;
  valves : int;
  clusters : int;
  matched : int;
  total_length : int;
  completion : float;
  runtime_s : float;
  stage_seconds : (string * float) list;
}

val family : ?steps:int -> unit -> Synthetic.spec list
(** Growing specs: 24x24 doubling in area per step (default 4 steps), with
    valve counts growing proportionally to the linear dimension. *)

val measure : Synthetic.spec list -> (sample list, string) result
(** Run PACOR on each spec and collect the series. *)

val pp_table : Format.formatter -> sample list -> unit
