type sample = {
  label : string;
  grid_cells : int;
  valves : int;
  clusters : int;
  matched : int;
  total_length : int;
  completion : float;
  runtime_s : float;
  stage_seconds : (string * float) list;
}

let family ?(steps = 4) () =
  List.init steps (fun i ->
    (* Double the area each step: side grows by sqrt(2). *)
    let side = int_of_float (24.0 *. (Float.sqrt 2.0 ** float_of_int i)) in
    let pairs = 2 + i and triples = 1 + (i / 2) in
    let singles = 3 + i in
    {
      Synthetic.name = Printf.sprintf "scale-%dx%d" side side;
      width = side;
      height = side;
      obstacle_cells = side * side / 64;
      lm_cluster_sizes =
        List.init pairs (fun _ -> 2) @ List.init triples (fun _ -> 3);
      singleton_valves = singles;
      pin_count = min (2 * ((2 * side) - 2)) (4 * (pairs + triples + singles));
      seed = Int64.of_int (1000 + i);
      delta = 1;
    })

let measure specs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | spec :: rest ->
      (match Synthetic.generate spec with
       | Error _ as e -> e
       | Ok problem ->
         (match Pacor.Engine.run problem with
          | Error e -> Error (Printf.sprintf "%s: %s" spec.Synthetic.name e.message)
          | Ok sol ->
            let stats = Pacor.Solution.stats sol in
            let sample =
              {
                label = spec.Synthetic.name;
                grid_cells = spec.Synthetic.width * spec.Synthetic.height;
                valves = Pacor.Problem.valve_count problem;
                clusters = stats.clusters;
                matched = stats.matched_clusters;
                total_length = stats.total_length;
                completion = stats.completion;
                runtime_s = stats.runtime_s;
                stage_seconds = sol.Pacor.Solution.stage_seconds;
              }
            in
            go (sample :: acc) rest))
  in
  go [] specs

let pp_table ppf samples =
  Format.fprintf ppf "%-14s %9s %7s %9s %8s %11s %9s@." "design" "cells" "valves"
    "matched" "length" "completion" "runtime";
  List.iter
    (fun s ->
       Format.fprintf ppf "%-14s %9d %7d %5d/%-3d %8d %10.0f%% %8.2fs@." s.label
         s.grid_cells s.valves s.matched s.clusters s.total_length
         (100.0 *. s.completion) s.runtime_s)
    samples
