open Pacor_geom
open Pacor_grid
open Pacor_valve

type spec = {
  name : string;
  width : int;
  height : int;
  obstacle_cells : int;
  lm_cluster_sizes : int list;
  singleton_valves : int;
  pin_count : int;
  seed : int64;
  delta : int;
}

let margin = 2

(* Obstacle rectangles: small random blocks in the interior until the
   blocked-cell budget is (approximately) met. *)
let make_obstacles rng spec =
  let rects = ref [] and blocked = ref 0 and attempts = ref 0 in
  let max_attempts = 50 * (spec.obstacle_cells + 1) in
  while !blocked < spec.obstacle_cells && !attempts < max_attempts do
    incr attempts;
    let w = 1 + Rng.int rng ~bound:3 and h = 1 + Rng.int rng ~bound:3 in
    let x = margin + Rng.int rng ~bound:(max 1 (spec.width - (2 * margin) - w)) in
    let y = margin + Rng.int rng ~bound:(max 1 (spec.height - (2 * margin) - h)) in
    let r = Rect.make ~x0:x ~y0:y ~x1:(x + w - 1) ~y1:(y + h - 1) in
    let overlaps = List.exists (fun r' -> Rect.overlap_cells r r' > 0) !rects in
    if (not overlaps) && !blocked + Rect.cells r <= spec.obstacle_cells + 4 then begin
      rects := r :: !rects;
      blocked := !blocked + Rect.cells r
    end
  done;
  !rects

(* Activation sequences: group [g] of [groups] is open at step [g], closed
   at every other group's step, don't-care elsewhere — so groups are
   pairwise incompatible and members identical, which makes the clustering
   stage reproduce the generated structure exactly. *)
let group_sequence ~groups g =
  let steps = max 8 groups in
  Array.init steps (fun i ->
    if i >= groups then Activation.Dont_care
    else if i = g then Activation.Open
    else Activation.Closed)

let too_close existing p =
  List.exists (fun q -> Point.manhattan p q < 2) existing

let place_valve rng ~grid ~existing ~center ~radius =
  let rec try_once attempt =
    if attempt > 200 then None
    else begin
      let dx = Rng.int rng ~bound:((2 * radius) + 1) - radius in
      let dy = Rng.int rng ~bound:((2 * radius) + 1) - radius in
      let p = Point.add center (Point.make dx dy) in
      let interior (q : Point.t) =
        q.x >= margin
        && q.x < Routing_grid.width grid - margin
        && q.y >= margin
        && q.y < Routing_grid.height grid - margin
      in
      if interior p && Routing_grid.free grid p && not (too_close existing p) then Some p
      else try_once (attempt + 1)
    end
  in
  try_once 0

let random_center rng ~grid =
  let w = Routing_grid.width grid and h = Routing_grid.height grid in
  Point.make
    (margin + Rng.int rng ~bound:(max 1 (w - (2 * margin))))
    (margin + Rng.int rng ~bound:(max 1 (h - (2 * margin))))

let place_cluster rng ~grid ~existing ~size =
  let rec with_center attempt =
    if attempt > 100 then None
    else begin
      let center = random_center rng ~grid in
      let radius = max 4 (2 * size) in
      let rec fill placed n =
        if n = 0 then Some (List.rev placed)
        else
          match place_valve rng ~grid ~existing:(placed @ existing) ~center ~radius with
          | Some p -> fill (p :: placed) (n - 1)
          | None -> None
      in
      match fill [] size with
      | Some ps -> Some ps
      | None -> with_center (attempt + 1)
    end
  in
  with_center 0

let make_pins rng ~grid ~valve_cells count =
  ignore rng;
  let candidates =
    List.filter
      (fun p -> Routing_grid.free grid p && not (Point.Set.mem p valve_cells))
      (Routing_grid.boundary_points grid)
  in
  let n = List.length candidates in
  if n < count then None
  else begin
    (* Even spacing along the ring keeps pins realistic (pad rows). *)
    let stride = float_of_int n /. float_of_int count in
    let arr = Array.of_list candidates in
    let pins =
      List.init count (fun i -> arr.(int_of_float (float_of_int i *. stride) mod n))
    in
    Some (List.sort_uniq Point.compare pins)
  end

let generate spec =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  if List.exists (fun s -> s < 2) spec.lm_cluster_sizes then
    err "LM cluster sizes must be >= 2"
  else if spec.width < 8 || spec.height < 8 then err "grid too small"
  else begin
    let rng = Rng.create ~seed:spec.seed in
    let obstacles = make_obstacles rng spec in
    let grid = Routing_grid.create ~width:spec.width ~height:spec.height ~obstacles () in
    let groups = List.length spec.lm_cluster_sizes + spec.singleton_valves in
    let next_valve = ref 0 in
    let fresh_valve position ~group =
      let id = !next_valve in
      incr next_valve;
      Valve.make ~id ~position ~sequence:(group_sequence ~groups group)
    in
    (* Length-matched clusters first. *)
    let rec place_clusters acc_valves acc_clusters group = function
      | [] -> Ok (acc_valves, List.rev acc_clusters, group)
      | size :: rest ->
        (match place_cluster rng ~grid ~existing:(List.map (fun (v : Valve.t) -> v.position) acc_valves) ~size with
         | None -> err "could not place a %d-valve cluster on %s" size spec.name
         | Some positions ->
           let valves = List.map (fun p -> fresh_valve p ~group) positions in
           let cluster =
             Cluster.make_exn ~id:group ~length_matched:true valves
           in
           place_clusters (acc_valves @ valves) (cluster :: acc_clusters) (group + 1) rest)
    in
    match place_clusters [] [] 0 spec.lm_cluster_sizes with
    | Error _ as e -> e
    | Ok (valves, lm_clusters, group0) ->
      let rec place_singles acc group n =
        if n = 0 then Ok acc
        else begin
          let existing = List.map (fun (v : Valve.t) -> v.position) acc in
          match
            place_cluster rng ~grid ~existing ~size:1
          with
          | Some [ p ] -> place_singles (acc @ [ fresh_valve p ~group ]) (group + 1) (n - 1)
          | Some _ | None -> err "could not place singleton valves on %s" spec.name
        end
      in
      (match place_singles valves group0 spec.singleton_valves with
       | Error _ as e -> e
       | Ok all_valves ->
         let valve_cells =
           Point.Set.of_list (List.map (fun (v : Valve.t) -> v.position) all_valves)
         in
         (match make_pins rng ~grid ~valve_cells spec.pin_count with
          | None -> err "not enough free boundary cells for %d pins on %s" spec.pin_count spec.name
          | Some pins ->
            Pacor.Problem.create ~name:spec.name ~grid ~valves:all_valves
              ~lm_clusters ~pins ~delta:spec.delta ()))
  end

let generate_exn spec =
  match generate spec with
  | Ok p -> p
  | Error msg -> invalid_arg ("Synthetic.generate: " ^ msg)
