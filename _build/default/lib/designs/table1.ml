type row = {
  design : string;
  width : int;
  height : int;
  valves : int;
  control_pins : int;
  obstacles : int;
  multi_clusters : int;
}

let rows =
  [ { design = "Chip1"; width = 179; height = 413; valves = 176; control_pins = 556;
      obstacles = 1800; multi_clusters = 40 };
    { design = "Chip2"; width = 231; height = 265; valves = 56; control_pins = 495;
      obstacles = 1863; multi_clusters = 22 };
    { design = "S1"; width = 12; height = 12; valves = 5; control_pins = 14;
      obstacles = 9; multi_clusters = 2 };
    { design = "S2"; width = 22; height = 22; valves = 10; control_pins = 40;
      obstacles = 54; multi_clusters = 2 };
    { design = "S3"; width = 52; height = 52; valves = 15; control_pins = 93;
      obstacles = 0; multi_clusters = 5 };
    { design = "S4"; width = 72; height = 72; valves = 20; control_pins = 139;
      obstacles = 27; multi_clusters = 7 };
    { design = "S5"; width = 152; height = 152; valves = 40; control_pins = 306;
      obstacles = 135; multi_clusters = 13 } ]

(* Cluster size mixes: multi-valve clusters per Table 2, sizes chosen so
   that the valve totals match Table 1. Chip2's clusters are all pairs, as
   the paper states. *)
let cluster_sizes = function
  | "Chip1" ->
    (* 16 pairs + 16 triples + 8 quads = 112 valves; 64 singletons. *)
    Some
      (List.concat
         [ List.init 16 (fun _ -> 2); List.init 16 (fun _ -> 3); List.init 8 (fun _ -> 4) ],
       64)
  | "Chip2" -> Some (List.init 22 (fun _ -> 2), 12)
  | "S1" -> Some ([ 2; 2 ], 1)
  | "S2" -> Some ([ 3; 2 ], 5)
  | "S3" -> Some ([ 2; 2; 3; 2; 3 ], 3)
  | "S4" -> Some ([ 2; 2; 2; 3; 3; 2; 2 ], 4)
  | "S5" ->
    Some (List.concat [ List.init 8 (fun _ -> 2); List.init 5 (fun _ -> 3) ], 9)
  | _ -> None

let seed_of name =
  (* Stable per-design seeds. *)
  Int64.of_int (Hashtbl.hash ("pacor-" ^ name) + 1)

let spec_of name =
  match List.find_opt (fun r -> r.design = name) rows, cluster_sizes name with
  | Some r, Some (sizes, singles) ->
    Some
      {
        Synthetic.name = r.design;
        width = r.width;
        height = r.height;
        obstacle_cells = r.obstacles;
        lm_cluster_sizes = sizes;
        singleton_valves = singles;
        pin_count = r.control_pins;
        seed = seed_of name;
        delta = 1;
      }
  | _, _ -> None

let names = List.map (fun r -> r.design) rows
let small_names = [ "S1"; "S2"; "S3"; "S4"; "S5" ]

let load name =
  match spec_of name with
  | None -> Error (Printf.sprintf "unknown design %S" name)
  | Some spec -> Synthetic.generate spec

let load_exn name =
  match load name with
  | Ok p -> p
  | Error msg -> invalid_arg ("Table1.load: " ^ msg)
