lib/designs/sweep.mli: Format Pacor
