lib/designs/table1.ml: Hashtbl Int64 List Printf Synthetic
