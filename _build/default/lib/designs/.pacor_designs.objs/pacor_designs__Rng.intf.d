lib/designs/rng.mli:
