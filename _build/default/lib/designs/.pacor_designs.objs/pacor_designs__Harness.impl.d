lib/designs/harness.ml: List Pacor Printf String Table1
