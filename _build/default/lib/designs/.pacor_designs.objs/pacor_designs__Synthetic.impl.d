lib/designs/synthetic.ml: Activation Array Cluster Format List Pacor Pacor_geom Pacor_grid Pacor_valve Point Rect Rng Routing_grid Valve
