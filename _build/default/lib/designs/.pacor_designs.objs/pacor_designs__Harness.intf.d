lib/designs/harness.mli: Pacor
