lib/designs/table1.mli: Pacor Synthetic
