lib/designs/scaling.mli: Format Synthetic
