lib/designs/synthetic.mli: Pacor
