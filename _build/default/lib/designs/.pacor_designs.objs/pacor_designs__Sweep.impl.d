lib/designs/sweep.ml: Format List Pacor Printf Table1
