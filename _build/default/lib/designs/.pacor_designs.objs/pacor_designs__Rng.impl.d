lib/designs/rng.ml: Int64 List
