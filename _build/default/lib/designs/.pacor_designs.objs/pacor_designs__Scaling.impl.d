lib/designs/scaling.ml: Float Format Int64 List Pacor Printf Synthetic
