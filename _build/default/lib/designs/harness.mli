(** Shared experiment harness: run the three Table 2 flow variants on a
    design and collect a report row. Used by both the CLI and the bench. *)

val measure_problem : Pacor.Problem.t -> (Pacor.Report.row, string) result
(** Runs "w/o Sel", "Detour First" and PACOR on the instance, validating
    each solution; any validation failure is an error. *)

val measure_design : string -> (Pacor.Report.row, string) result
(** [measure_design name] loads a Table 1 design and measures it. *)

val measure_table2 :
  ?progress:(string -> unit) -> string list -> (Pacor.Report.row list, string) result
(** Measure several designs, reporting progress through [progress]. *)
