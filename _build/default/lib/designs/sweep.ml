type sample = {
  delta : int;
  matched : int;
  clusters : int;
  total_length : int;
  completion : float;
}

let run ?(variant = Pacor.Config.Full) ~deltas problem =
  let config = Pacor.Config.make ~variant () in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | delta :: rest ->
      (match Pacor.Problem.with_delta problem delta with
       | Error _ as e -> e
       | Ok p ->
         (match Pacor.Engine.run ~config p with
          | Error e -> Error (Printf.sprintf "delta=%d: %s" delta e.message)
          | Ok sol ->
            let stats = Pacor.Solution.stats sol in
            let sample =
              {
                delta;
                matched = stats.matched_clusters;
                clusters = stats.clusters;
                total_length = stats.total_length;
                completion = stats.completion;
              }
            in
            go (sample :: acc) rest))
  in
  go [] deltas

let run_design ?variant ~deltas name =
  match Table1.load name with
  | Error _ as e -> e
  | Ok problem -> run ?variant ~deltas problem

let pp_table ppf samples =
  Format.fprintf ppf "%6s %10s %12s %12s@." "delta" "matched" "total_len" "completion";
  List.iter
    (fun s ->
       Format.fprintf ppf "%6d %6d/%-3d %12d %11.0f%%@." s.delta s.matched s.clusters
         s.total_length (100.0 *. s.completion))
    samples
