(** Synthetic benchmark generator.

    Produces problem instances with the same observable parameters as the
    paper's Table 1 (grid size, valve count, candidate-pin count, obstructed
    cells) and Table 2 (number of multi-valve clusters): length-matched
    clusters are placed as geographically coherent groups, remaining valves
    are singletons, activation sequences are constructed so that the greedy
    clustering stage reproduces exactly the intended cluster structure
    (groups are pairwise incompatible, members identical). *)

type spec = {
  name : string;
  width : int;
  height : int;
  obstacle_cells : int;       (** approximate blocked-cell target *)
  lm_cluster_sizes : int list;(** one entry (>= 2) per length-matched cluster *)
  singleton_valves : int;
  pin_count : int;
  seed : int64;
  delta : int;
}

val generate : spec -> (Pacor.Problem.t, string) result
(** Deterministic for a fixed spec. Errors when the spec cannot fit (too
    many valves for the free area, more pins than boundary cells, ...). *)

val generate_exn : spec -> Pacor.Problem.t
