(** The seven benchmark designs of the paper's Table 1.

    Chip1 and Chip2 are synthetic stand-ins for the two (proprietary) real
    biochips, regenerated to every published parameter: grid size, valve
    count, candidate control-pin count, obstructed cells — and the Table 2
    cluster counts (40 multi-valve clusters for Chip1; 22, all two-valve,
    for Chip2, which the paper singles out as the reason all flow variants
    tie on that design). S1–S5 match their published parameters directly. *)

type row = {
  design : string;
  width : int;
  height : int;
  valves : int;
  control_pins : int;
  obstacles : int;
  multi_clusters : int;  (** Table 2's "#Clusters" column *)
}

val rows : row list
(** The published Table 1 parameters (plus Table 2 cluster counts). *)

val spec_of : string -> Synthetic.spec option
(** Generator spec for a design name ("Chip1", "S3", ...). *)

val names : string list

val load : string -> (Pacor.Problem.t, string) result
(** Generate a design by name. *)

val load_exn : string -> Pacor.Problem.t

val small_names : string list
(** S1–S5 — the designs cheap enough for unit tests and micro-benchmarks. *)
