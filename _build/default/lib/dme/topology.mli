(** Connection topologies for DME: balanced bipartition (BB).

    The DME algorithm embeds a {e given} topology; the paper computes that
    topology with the balanced-bipartition heuristic of Chao et al.: split
    the sink set recursively into two equal-size halves minimising the sum
    of the halves' diameters (all sink capacitances are 1, so the tree is a
    balanced binary tree for an even number of sinks). *)

open Pacor_geom

type t =
  | Leaf of int          (** index into the sink array *)
  | Node of t * t

val leaves : t -> int list
(** Sink indices, left to right. *)

val size : t -> int
val depth : t -> int

val balanced_bipartition : Point.t list -> t
(** Topology over sinks [0 .. n-1]. Exhaustive over balanced splits for
    small sets (n <= 12), median split on the wider axis beyond that.
    Raises [Invalid_argument] on the empty list. Deterministic. *)

val alternatives : Point.t list -> t list
(** Several distinct balanced topologies, best (BB) first: all balanced
    top-level splits for up to four sinks, just the BB topology beyond.
    Extra topologies diversify the DME candidates when the best split's
    embeddings are all blocked or unmatchable. *)

val is_balanced : t -> bool
(** Every node's subtree sizes differ by at most one. *)

val pp : Format.formatter -> t -> unit
