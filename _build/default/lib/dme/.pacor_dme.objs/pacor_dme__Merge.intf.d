lib/dme/merge.mli: Pacor_geom Point Tilted Topology
