lib/dme/candidate.mli: Format Merge Pacor_geom Pacor_grid Point Routing_grid Tilted
