lib/dme/topology.mli: Format Pacor_geom Point
