lib/dme/candidate.ml: Array Format Int List Merge Pacor_geom Pacor_grid Point Routing_grid Tilted Topology
