lib/dme/topology.ml: Array Format Fun List Pacor_geom Point
