lib/dme/merge.ml: Array List Pacor_geom Tilted Topology
