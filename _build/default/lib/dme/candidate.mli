(** Top-down DME phase: embedding merging nodes and enumerating candidate
    Steiner trees (Sec. 4.1, Fig. 3).

    Different merging-node choices inside the merging regions yield
    different candidate trees, each (approximately) length-balanced. This
    module samples root placements, embeds each choice top-down — snapping
    to the routing grid and dodging obstacles by expanding-ring search —
    and reports the geometry plus the estimated per-sink full-path lengths
    (Def. 5) and the length mismatch [DeltaL] (Eq. 1). *)

open Pacor_geom
open Pacor_grid

type edge = { parent_pos : Point.t; child_pos : Point.t }

type node = {
  id : int;                         (** 0 is always the root *)
  pos : Point.t;
  parent : int option;              (** [None] only for the root *)
  sink : int option;                (** leaf nodes carry their sink index *)
}

type t = {
  root : Point.t;
  nodes : node list;                (** embedded tree, preorder, root first *)
  edges : edge list;                (** non-trivial tree edges, parent first *)
  sinks : Point.t array;            (** sink positions, index-aligned *)
  full_path_lengths : int array;    (** per sink: Manhattan estimate, Def. 5 *)
  mismatch : int;                   (** DeltaL = max - min full path, Eq. 1 *)
  total_estimate : int;             (** sum of edge Manhattan lengths *)
}

val chain_to_root : t -> sink:int -> (int * int) list
(** Tree edges from the given sink up to the root as (child id, parent id)
    pairs, nearest-the-sink first — the {e path sequence} order of Def. 6.
    Zero-length edges (coincident embeddings) are included. *)

val node_pos : t -> int -> Point.t

val embed :
  ?root_cell:Point.t ->
  grid:Routing_grid.t ->
  usable:(Point.t -> bool) ->
  sinks:Point.t array ->
  Merge.node ->
  root_at:Tilted.coord ->
  unit ->
  t option
(** Embed one candidate with the root at the given tilted coordinate (which
    is clamped into the root merging region). [root_cell] pins the root's
    grid placement instead of the default snap-and-ring search — the extra
    degree of freedom used to diversify candidates when the root merging
    region is a single point. [None] when an internal node cannot be placed
    on any usable cell. Leaves stay at their exact sink positions regardless
    of [usable]. *)

val enumerate :
  grid:Routing_grid.t ->
  usable:(Point.t -> bool) ->
  ?max_candidates:int ->
  Point.t list ->
  t list
(** [enumerate ~grid ~usable sinks] builds the balanced-bipartition
    topology, runs the bottom-up merge, and embeds up to [max_candidates]
    (default 8) distinct candidates from sampled root placements, sorted by
    (mismatch, total length estimate). Singleton input yields the single
    trivial candidate. *)

val edge_ends : t -> (Point.t * Point.t) list
val pp : Format.formatter -> t -> unit
