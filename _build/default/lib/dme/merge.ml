open Pacor_geom

type node = {
  topology : Topology.t;
  region : Tilted.t;
  sink_dist : int;
  children : (node * int) list;
}

let merge_children l r =
  let d = Tilted.dist l.region r.region in
  let dl = l.sink_dist and dr = r.sink_dist in
  if dl > dr + d then begin
    (* Right subtree needs a detoured edge; the node sits on [l.region]
       within reach of the right region. *)
    let eb = dl - dr in
    let region =
      match Tilted.inter l.region (Tilted.inflate r.region eb) with
      | Some t -> t
      | None -> assert false (* dist l r = d <= eb *)
    in
    (region, dl, [ (l, 0); (r, eb) ])
  end
  else if dr > dl + d then begin
    let ea = dr - dl in
    let region =
      match Tilted.inter (Tilted.inflate l.region ea) r.region with
      | Some t -> t
      | None -> assert false
    in
    (region, dr, [ (l, ea); (r, 0) ])
  end
  else begin
    (* Balanced merge: ea + eb = d exactly; integer floor introduces at
       most one doubled unit (= half a grid edge) of skew, absorbed by the
       final detour stage (the paper's rounding-error argument). *)
    let ea = (d + dr - dl) / 2 in
    let eb = d - ea in
    let region =
      match Tilted.inter (Tilted.inflate l.region ea) (Tilted.inflate r.region eb) with
      | Some t -> t
      | None -> assert false (* inflations meet since ea + eb = d *)
    in
    (region, max (dl + ea) (dr + eb), [ (l, ea); (r, eb) ])
  end

let build ~sinks topology =
  let n = Array.length sinks in
  let rec go topo =
    match topo with
    | Topology.Leaf i ->
      if i < 0 || i >= n then invalid_arg "Merge.build: leaf index out of range";
      { topology = topo; region = Tilted.of_point sinks.(i); sink_dist = 0; children = [] }
    | Topology.Node (tl, tr) ->
      let l = go tl and r = go tr in
      let region, sink_dist, children = merge_children l r in
      { topology = topo; region; sink_dist; children }
  in
  go topology

let merging_regions root =
  let rec collect acc node =
    let acc = List.fold_left (fun a (c, _) -> collect a c) acc node.children in
    match node.children with
    | [] -> acc
    | _ :: _ -> (node.region, node.sink_dist) :: acc
  in
  List.rev (collect [] root)

let check_sink_distances root =
  (* Each level may lose one doubled unit to the floor in [merge_children]. *)
  let rec levels node =
    match node.children with
    | [] -> 1
    | cs -> 1 + List.fold_left (fun a (c, _) -> max a (levels c)) 0 cs
  in
  let slack = levels root in
  let rec check node =
    let ok_here =
      match node.children with
      | [] -> node.sink_dist = 0
      | cs ->
        List.for_all
          (fun (c, e) ->
             (* The child's region must be reachable within the prescribed
                edge length from the node's region. *)
             Tilted.dist node.region c.region <= e + slack
             && abs (c.sink_dist + e - node.sink_dist) <= slack)
          cs
    in
    ok_here && List.for_all (fun (c, _) -> check c) node.children
  in
  check root
