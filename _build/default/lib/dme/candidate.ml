open Pacor_geom
open Pacor_grid

type edge = { parent_pos : Point.t; child_pos : Point.t }

type node = {
  id : int;
  pos : Point.t;
  parent : int option;
  sink : int option;
}

type t = {
  root : Point.t;
  nodes : node list;
  edges : edge list;
  sinks : Point.t array;
  full_path_lengths : int array;
  mismatch : int;
  total_estimate : int;
}

let node_pos t id =
  match List.find_opt (fun n -> n.id = id) t.nodes with
  | Some n -> n.pos
  | None -> invalid_arg "Candidate.node_pos: unknown node"

let chain_to_root t ~sink =
  let leaf =
    match List.find_opt (fun n -> n.sink = Some sink) t.nodes with
    | Some n -> n
    | None -> invalid_arg "Candidate.chain_to_root: unknown sink"
  in
  let rec up n acc =
    match n.parent with
    | None -> List.rev acc
    | Some pid ->
      let parent =
        match List.find_opt (fun m -> m.id = pid) t.nodes with
        | Some m -> m
        | None -> assert false
      in
      up parent ((n.id, pid) :: acc)
  in
  up leaf []

(* Place a tilted coordinate on a usable grid cell: snap, then expand rings
   (the paper's encircling-loop search) until usable cells appear.
   [place_many] returns every usable cell of the first non-empty ring,
   ordered by Manhattan distance to the snap point — alternative placements
   are the candidate diversity left when merging regions degenerate to a
   point (e.g. collinear sinks). *)
let place_many ~grid ~usable coord =
  let snapped = Tilted.nearest_grid_point coord in
  let max_radius = Routing_grid.width grid + Routing_grid.height grid in
  let ok p = Routing_grid.in_bounds grid p && usable p in
  let rec search r =
    if r > max_radius then []
    else begin
      match List.filter ok (Point.ring snapped r) with
      | [] -> search (r + 1)
      | candidates ->
        List.sort
          (fun a b ->
             let da = Point.manhattan snapped a and db = Point.manhattan snapped b in
             if da <> db then Int.compare da db else Point.compare a b)
          candidates
    end
  in
  search 0

let place ~grid ~usable coord =
  match place_many ~grid ~usable coord with [] -> None | p :: _ -> Some p

(* Embedded tree: concrete grid position per node; each child carries the
   merge-prescribed edge length in grid units (longer than the embedded
   Manhattan distance on detour-case edges). *)
type enode = {
  pos : Point.t;
  leaf : int option;
  kids : (int * enode) list;
}

let embed ?root_cell ~grid ~usable ~sinks mroot ~root_at () =
  let root_coord = Tilted.nearest_in mroot.Merge.region root_at in
  let is_root = ref true in
  let rec walk (node : Merge.node) coord =
    match node.children with
    | [] ->
      let idx =
        match node.topology with Topology.Leaf i -> i | Topology.Node _ -> assert false
      in
      Some { pos = sinks.(idx); leaf = Some idx; kids = [] }
    | children ->
      let placed =
        if !is_root then begin
          is_root := false;
          match root_cell with
          | Some cell -> Some cell
          | None -> place ~grid ~usable coord
        end
        else place ~grid ~usable coord
      in
      (match placed with
       | None -> None
       | Some pos ->
         let rec walk_kids acc = function
           | [] -> Some (List.rev acc)
           | ((child : Merge.node), edge_len) :: rest ->
             let child_coord = Tilted.nearest_in child.Merge.region coord in
             (match walk child child_coord with
              | None -> None
              | Some k -> walk_kids (((edge_len + 1) / 2, k) :: acc) rest)
         in
         (match walk_kids [] children with
          | None -> None
          | Some kids -> Some { pos; leaf = None; kids }))
  in
  match walk mroot root_coord with
  | None -> None
  | Some root ->
    let n = Array.length sinks in
    let lengths = Array.make n 0 in
    let edges = ref [] in
    let nodes = ref [] in
    let counter = ref 0 in
    (* Full-path estimates use the larger of the embedded Manhattan length
       and the merge-prescribed length: a detour-case edge will be padded
       to its prescribed length by the detour stage, so counting only the
       embedded distance would overstate the mismatch. *)
    let rec dfs node parent_id acc =
      let id = !counter in
      incr counter;
      nodes := { id; pos = node.pos; parent = parent_id; sink = node.leaf } :: !nodes;
      (match node.leaf with Some i -> lengths.(i) <- acc | None -> ());
      List.iter
        (fun (prescribed, kid) ->
           if not (Point.equal node.pos kid.pos) then
             edges := { parent_pos = node.pos; child_pos = kid.pos } :: !edges;
           let step = max (Point.manhattan node.pos kid.pos) prescribed in
           dfs kid (Some id) (acc + step))
        node.kids
    in
    dfs root None 0;
    let maxl = Array.fold_left max min_int lengths in
    let minl = Array.fold_left min max_int lengths in
    let edges = List.rev !edges in
    let total_estimate =
      List.fold_left (fun a e -> a + Point.manhattan e.parent_pos e.child_pos) 0 edges
    in
    Some
      {
        root = root.pos;
        nodes = List.rev !nodes;
        edges;
        sinks;
        full_path_lengths = lengths;
        mismatch = maxl - minl;
        total_estimate;
      }

let edge_ends t = List.map (fun e -> (e.parent_pos, e.child_pos)) t.edges

let enumerate ~grid ~usable ?(max_candidates = 8) sinks =
  match sinks with
  | [] -> []
  | [ p ] ->
    [ { root = p;
        nodes = [ { id = 0; pos = p; parent = None; sink = Some 0 } ];
        edges = [];
        sinks = [| p |];
        full_path_lengths = [| 0 |];
        mismatch = 0;
        total_estimate = 0;
      } ]
  | _ :: _ :: _ ->
    let sink_arr = Array.of_list sinks in
    (* Alternate balanced topologies (for small clusters) and, per
       topology, several root placements: each tilted sample contributes
       its best few grid placements, so degenerate (single-point) merging
       regions still yield several distinct trees. *)
    let cands =
      List.concat_map
        (fun topo ->
           let mroot = Merge.build ~sinks:sink_arr topo in
           let samples = Tilted.sample mroot.Merge.region (2 * max_candidates) in
           List.concat_map
             (fun c ->
                let root_coord = Tilted.nearest_in mroot.Merge.region c in
                let cells = place_many ~grid ~usable root_coord in
                let cells = List.filteri (fun i _ -> i < 4) cells in
                List.filter_map
                  (fun cell ->
                     embed ~root_cell:cell ~grid ~usable ~sinks:sink_arr mroot
                       ~root_at:c ())
                  cells)
             samples)
        (Topology.alternatives sinks)
    in
    let key c =
      (c.root, List.sort compare (List.map (fun e -> (e.parent_pos, e.child_pos)) c.edges))
    in
    let rec dedup seen = function
      | [] -> []
      | c :: rest ->
        let k = key c in
        if List.mem k seen then dedup seen rest else c :: dedup (k :: seen) rest
    in
    let distinct = dedup [] cands in
    let sorted =
      List.sort
        (fun a b ->
           if a.mismatch <> b.mismatch then Int.compare a.mismatch b.mismatch
           else if a.total_estimate <> b.total_estimate then
             Int.compare a.total_estimate b.total_estimate
           else Point.compare a.root b.root)
        distinct
    in
    List.filteri (fun i _ -> i < max_candidates) sorted

let pp ppf t =
  Format.fprintf ppf "root=%a dL=%d est=%d edges=%d" Point.pp t.root t.mismatch
    t.total_estimate (List.length t.edges)
