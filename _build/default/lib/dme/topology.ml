open Pacor_geom

type t =
  | Leaf of int
  | Node of t * t

let rec leaves = function
  | Leaf i -> [ i ]
  | Node (l, r) -> leaves l @ leaves r

let rec size = function Leaf _ -> 1 | Node (l, r) -> size l + size r
let rec depth = function Leaf _ -> 1 | Node (l, r) -> 1 + max (depth l) (depth r)

let diameter pts =
  let rec go acc = function
    | [] -> acc
    | p :: rest ->
      go (List.fold_left (fun a q -> max a (Point.manhattan p q)) acc rest) rest
  in
  go 0 pts

(* Enumerate subsets of size k of indices [0..n-1] as index lists. *)
let rec subsets_of_size k from n =
  if k = 0 then [ [] ]
  else if from >= n then []
  else
    let with_from = List.map (fun s -> from :: s) (subsets_of_size (k - 1) (from + 1) n) in
    with_from @ subsets_of_size k (from + 1) n

let exhaustive_threshold = 12

let balanced_bipartition points =
  if points = [] then invalid_arg "Topology.balanced_bipartition: no sinks";
  let arr = Array.of_list points in
  (* [build idxs] returns the topology over the given sink indices. *)
  let rec build idxs =
    match idxs with
    | [] -> assert false
    | [ i ] -> Leaf i
    | [ i; j ] -> Node (Leaf i, Leaf j)
    | _ ->
      let n = List.length idxs in
      let half = n / 2 in
      let local = Array.of_list idxs in
      let split =
        if n <= exhaustive_threshold then begin
          (* For even n, fixing element 0 on the left kills the mirror
             symmetry; for odd n the two sides have different sizes, so
             every size-[half] subset must be considered. *)
          let choices =
            if n mod 2 = 0 then
              List.map (fun c -> 0 :: c) (subsets_of_size (half - 1) 1 n)
            else subsets_of_size half 0 n
          in
          let eval choice =
            let in_left i = List.mem i choice in
            let left = List.filter in_left (List.init n Fun.id) in
            let right = List.filter (fun i -> not (in_left i)) (List.init n Fun.id) in
            let dia side = diameter (List.map (fun i -> arr.(local.(i))) side) in
            (dia left + dia right, left, right)
          in
          let best =
            List.fold_left
              (fun acc choice ->
                 let (cost, _, _) as cand = eval choice in
                 match acc with
                 | Some (bcost, _, _) when bcost <= cost -> acc
                 | _ -> Some cand)
              None choices
          in
          (match best with
           | Some (_, left, right) -> (left, right)
           | None -> assert false)
        end
        else begin
          (* Median split along the wider axis. *)
          let pts = List.map (fun i -> (i, arr.(local.(i)))) (List.init n Fun.id) in
          let xs = List.map (fun (_, (p : Point.t)) -> p.x) pts in
          let ys = List.map (fun (_, (p : Point.t)) -> p.y) pts in
          let range vs = List.fold_left max min_int vs - List.fold_left min max_int vs in
          let key =
            if range xs >= range ys then fun (_, (p : Point.t)) -> (p.x, p.y)
            else fun (_, (p : Point.t)) -> (p.y, p.x)
          in
          let sorted = List.sort (fun a b -> compare (key a) (key b)) pts in
          let idxs_sorted = List.map fst sorted in
          let rec take k = function
            | [] -> ([], [])
            | x :: rest ->
              if k = 0 then ([], x :: rest)
              else begin
                let l, r = take (k - 1) rest in
                (x :: l, r)
              end
          in
          take half idxs_sorted
        end
      in
      let left, right = split in
      let resolve side = List.map (fun i -> local.(i)) side in
      Node (build (resolve left), build (resolve right))
  in
  build (List.init (Array.length arr) Fun.id)

let rec is_balanced = function
  | Leaf _ -> true
  | Node (l, r) -> abs (size l - size r) <= 1 && is_balanced l && is_balanced r

let rec pp ppf = function
  | Leaf i -> Format.fprintf ppf "%d" i
  | Node (l, r) -> Format.fprintf ppf "(%a %a)" pp l pp r

let alternatives points =
  let n = List.length points in
  let bb = balanced_bipartition points in
  if n = 3 then begin
    (* The three pairings (i j) k. *)
    let variants =
      [ Node (Node (Leaf 0, Leaf 1), Leaf 2);
        Node (Node (Leaf 0, Leaf 2), Leaf 1);
        Node (Node (Leaf 1, Leaf 2), Leaf 0) ]
    in
    bb :: List.filter (fun t -> t <> bb) variants
  end
  else if n = 4 then begin
    let pairing (a, b) (c, d) = Node (Node (Leaf a, Leaf b), Node (Leaf c, Leaf d)) in
    let variants =
      [ pairing (0, 1) (2, 3); pairing (0, 2) (1, 3); pairing (0, 3) (1, 2) ]
    in
    bb :: List.filter (fun t -> t <> bb) variants
  end
  else [ bb ]
