(** Bottom-up DME phase: merging-region computation.

    Walks the connection topology leaves-up, computing for every node the
    tilted region of positions from which all sinks underneath are
    equidistant (doubled units, see {!Pacor_geom.Tilted}), together with the
    prescribed edge lengths toward the two children. When one subtree is
    too far to balance ([|dl - dr| > dist]), the shorter side's edge is
    marked for detour — the extra length is realised later by the detour
    stage, exactly as in the paper.

    All distances here are in {b doubled} units (2 x grid edges). *)

open Pacor_geom

type node = {
  topology : Topology.t;          (** subtree this node embeds *)
  region : Tilted.t;              (** merging region *)
  sink_dist : int;                (** doubled distance to every sink below *)
  children : (node * int) list;   (** (child, prescribed doubled edge length);
                                      empty for leaves, two entries otherwise *)
}

val build : sinks:Point.t array -> Topology.t -> node
(** Merging regions for the whole topology. Leaf regions are the sink
    points; raises [Invalid_argument] when a leaf index is out of range. *)

val merging_regions : node -> (Tilted.t * int) list
(** All internal-node regions with their sink distances, bottom-up — the
    data Fig. 3(a) draws. *)

val check_sink_distances : node -> bool
(** Internal consistency: every sink below a node is (approximately, within
    the rounding slack of one doubled unit per level) [sink_dist] away from
    the region. Used by tests. *)
