(** Rectilinear Steiner minimal tree (RSMT) heuristic: iterated 1-Steiner
    over the Hanan grid.

    PACOR's DME trees deliberately spend extra wirelength to equalise
    source–sink path lengths. This module computes the unconstrained
    minimum-wirelength alternative, so the {e cost of length matching} —
    DME wirelength over RSMT wirelength — can be quantified (see the
    [dme-vs-rsmt] ablation bench and EXPERIMENTS.md). *)

open Pacor_geom

type tree = {
  nodes : Point.t list;        (** terminals followed by added Steiner points *)
  edges : (int * int) list;    (** index pairs into [nodes] *)
  length : int;                (** total Manhattan length over [edges] *)
}

val hanan_points : Point.t list -> Point.t list
(** Candidate Steiner points: the Hanan grid (pairwise x/y crossings) minus
    the terminals themselves. *)

val rsmt : Point.t list -> tree
(** Iterated 1-Steiner: repeatedly add the Hanan point that most reduces
    the MST length, until no point helps. Terminals must be non-empty and
    distinct. The result spans all terminals. *)

val mst_length : Point.t list -> int
(** Plain Manhattan MST length over the terminals (the starting point the
    heuristic improves on). *)

val half_perimeter : Point.t list -> int
(** Bounding-box half-perimeter — the classic lower-bound estimate; the
    true RSMT is never shorter. *)
