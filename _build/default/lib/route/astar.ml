open Pacor_geom
open Pacor_grid

let cost_scale = 1000

type spec = {
  usable : Point.t -> bool;
  extra_cost : Point.t -> int;
}

(* Admissible heuristic: Manhattan distance to the bounding box of the
   target set (0 inside the box), in cost_scale units. *)
let bbox_heuristic targets =
  let box = Rect.of_point_list targets in
  fun (p : Point.t) ->
    let dx = max 0 (max (box.x0 - p.x) (p.x - box.x1)) in
    let dy = max 0 (max (box.y0 - p.y) (p.y - box.y1)) in
    (dx + dy) * cost_scale

let search ~grid ~spec ~sources ~targets () =
  match sources, targets with
  | [], _ | _, [] -> None
  | _ :: _, _ :: _ ->
    let target_set = Point.Set.of_list targets in
    let source_set = Point.Set.of_list sources in
    let h = bbox_heuristic targets in
    let n = Routing_grid.cells grid in
    let dist = Array.make n max_int in
    let parent = Array.make n (-1) in
    let closed = Array.make n false in
    let pq = Pacor_graphs.Pqueue.create () in
    let idx p = Routing_grid.index grid p in
    List.iter
      (fun p ->
         if Routing_grid.in_bounds grid p then begin
           dist.(idx p) <- 0;
           Pacor_graphs.Pqueue.push pq ~prio:(h p) (idx p)
         end)
      sources;
    let enterable p =
      Routing_grid.in_bounds grid p
      && (spec.usable p || Point.Set.mem p target_set || Point.Set.mem p source_set)
    in
    let rec reconstruct i acc =
      let p = Routing_grid.point_of_index grid i in
      if parent.(i) = -1 then p :: acc else reconstruct parent.(i) (p :: acc)
    in
    let rec loop () =
      match Pacor_graphs.Pqueue.pop pq with
      | None -> None
      | Some (_, i) ->
        if closed.(i) then loop ()
        else begin
          closed.(i) <- true;
          let p = Routing_grid.point_of_index grid i in
          if Point.Set.mem p target_set then Some (Path.of_points (reconstruct i []))
          else begin
            let relax q =
              if enterable q then begin
                let j = idx q in
                if not closed.(j) then begin
                  let step = cost_scale + spec.extra_cost q in
                  let nd = dist.(i) + step in
                  if nd < dist.(j) then begin
                    dist.(j) <- nd;
                    parent.(j) <- i;
                    Pacor_graphs.Pqueue.push pq ~prio:(nd + h q) j
                  end
                end
              end
            in
            List.iter relax (Point.neighbours4 p);
            loop ()
          end
        end
    in
    loop ()

let shortest ~grid ~obstacles a b =
  let spec =
    { usable = (fun p -> Obstacle_map.free obstacles p); extra_cost = (fun _ -> 0) }
  in
  search ~grid ~spec ~sources:[ a ] ~targets:[ b ] ()
