(** Guaranteed-progress path lengthening by U-bump insertion.

    The final PACOR stage must stretch the short full paths of a
    length-matched cluster into the window [maxL - delta, maxL]
    (Algorithm 2). Each U-bump replaces one path edge [p -> q] by
    [p -> p' -> q' -> q] using two free cells alongside the edge, adding
    exactly 2 to the length — matching the parity fact that the length of a
    path between fixed endpoints can only change in steps of 2. Repeated
    insertion therefore reaches any target of achievable parity, with
    overshoot at most 1 for any [delta >= 1] window.

    Compared with {!Bounded_astar}, this never reroutes the leg: it only
    widens it in place, so disjointness with everything outside [usable]
    is preserved by construction. *)

open Pacor_geom
open Pacor_grid

val lengthen : Path.t -> target:int -> usable:(Point.t -> bool) -> Path.t option
(** [lengthen path ~target ~usable] returns a path with the same endpoints
    and length [>= target] (overshoot at most 1), or [None] when not enough
    free space is adjacent to the path. [usable] must be true for cells the
    bumps may occupy — typically "free in the work map"; cells of [path]
    itself are handled internally. The input path is returned unchanged if
    already long enough. *)

val max_bumped_length : Path.t -> usable:(Point.t -> bool) -> int
(** Length reachable by exhaustive bump insertion — an upper bound used to
    decide early that a matching window is unreachable. *)
