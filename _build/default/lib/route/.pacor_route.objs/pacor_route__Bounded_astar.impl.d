lib/route/bounded_astar.ml: Array List Pacor_geom Pacor_graphs Pacor_grid Path Point Routing_grid
