lib/route/steiner.mli: Pacor_geom Point
