lib/route/astar.ml: Array List Obstacle_map Pacor_geom Pacor_graphs Pacor_grid Path Point Rect Routing_grid
