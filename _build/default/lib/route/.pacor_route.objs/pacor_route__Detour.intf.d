lib/route/detour.mli: Pacor_geom Pacor_grid Path Point
