lib/route/mst_router.mli: Obstacle_map Pacor_geom Pacor_grid Path Point Routing_grid
