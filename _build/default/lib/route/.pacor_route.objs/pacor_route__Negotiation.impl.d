lib/route/negotiation.ml: Array Astar List Obstacle_map Pacor_geom Pacor_grid Path Point Routing_grid
