lib/route/mst_router.ml: Array Astar List Obstacle_map Pacor_geom Pacor_graphs Pacor_grid Path Point
