lib/route/steiner.ml: Array Int List Pacor_geom Pacor_graphs Point Rect
