lib/route/detour.ml: Array List Pacor_geom Pacor_grid Path Point
