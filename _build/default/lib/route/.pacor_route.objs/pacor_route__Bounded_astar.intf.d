lib/route/bounded_astar.mli: Pacor_geom Pacor_grid Path Point Routing_grid
