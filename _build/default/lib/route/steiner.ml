open Pacor_geom

type tree = {
  nodes : Point.t list;
  edges : (int * int) list;
  length : int;
}

let hanan_points terminals =
  let xs = List.sort_uniq Int.compare (List.map (fun (p : Point.t) -> p.x) terminals) in
  let ys = List.sort_uniq Int.compare (List.map (fun (p : Point.t) -> p.y) terminals) in
  List.concat_map
    (fun x ->
       List.filter_map
         (fun y ->
            let p = Point.make x y in
            if List.exists (Point.equal p) terminals then None else Some p)
         ys)
    xs

let mst_of points =
  let arr = Array.of_list points in
  let n = Array.length arr in
  Pacor_graphs.Mst.prim ~n ~weight:(fun i j -> Point.manhattan arr.(i) arr.(j))

let mst_length points = Pacor_graphs.Mst.total_weight (mst_of points)

let half_perimeter = function
  | [] -> 0
  | points ->
    let box = Rect.of_point_list points in
    Rect.width box + Rect.height box

(* Remove added Steiner points of degree <= 1 (they never shorten a tree)
   and recompute; returns the final node list and MST over it. *)
let prune terminals steiners =
  let rec go steiners =
    let nodes = terminals @ steiners in
    let edges = mst_of nodes in
    let deg = Array.make (List.length nodes) 0 in
    List.iter
      (fun (e : Pacor_graphs.Mst.edge) ->
         deg.(e.a) <- deg.(e.a) + 1;
         deg.(e.b) <- deg.(e.b) + 1)
      edges;
    let nt = List.length terminals in
    let keep =
      List.filteri (fun i _ -> deg.(nt + i) >= 2) steiners
    in
    if List.length keep = List.length steiners then (nodes, edges)
    else go keep
  in
  go steiners

let rsmt terminals =
  match terminals with
  | [] -> invalid_arg "Steiner.rsmt: no terminals"
  | [ p ] -> { nodes = [ p ]; edges = []; length = 0 }
  | _ :: _ ->
    let sorted = List.sort_uniq Point.compare terminals in
    if List.length sorted <> List.length terminals then
      invalid_arg "Steiner.rsmt: duplicate terminals";
    (* Iterated 1-Steiner: greedily add the best Hanan point. *)
    let rec improve steiners current_len =
      let base = terminals @ steiners in
      let candidates = hanan_points base in
      let try_candidate best c =
        let len = mst_length (base @ [ c ]) in
        match best with
        | Some (_, blen) when blen <= len -> best
        | _ when len < current_len -> Some (c, len)
        | _ -> best
      in
      match List.fold_left try_candidate None candidates with
      | Some (c, len) -> improve (steiners @ [ c ]) len
      | None -> steiners
    in
    let steiners = improve [] (mst_length terminals) in
    let nodes, edges = prune terminals steiners in
    {
      nodes;
      edges = List.map (fun (e : Pacor_graphs.Mst.edge) -> (e.a, e.b)) edges;
      length = Pacor_graphs.Mst.total_weight edges;
    }
