open Pacor_geom
open Pacor_grid

(* One bump: find an edge [p -> q] of the path and a side [s] (unit vector
   perpendicular to the edge) such that both [p + s] and [q + s] are usable
   and not already on the path; replace the edge with the three-edge U. *)
let find_bump path ~usable =
  let pts = Array.of_list (Path.points path) in
  let n = Array.length pts in
  let ok c = usable c && not (Path.mem path c) in
  let rec scan i =
    if i >= n - 1 then None
    else begin
      let p = pts.(i) and q = pts.(i + 1) in
      let dir = Point.sub q p in
      let sides =
        if dir.x <> 0 then [ Point.make 0 1; Point.make 0 (-1) ]
        else [ Point.make 1 0; Point.make (-1) 0 ]
      in
      let try_side s =
        let p' = Point.add p s and q' = Point.add q s in
        if ok p' && ok q' && not (Point.equal p' q') then Some (i, p', q') else None
      in
      match List.find_map try_side sides with
      | Some bump -> Some bump
      | None -> scan (i + 1)
    end
  in
  scan 0

let insert_bump path (i, p', q') =
  let seg =
    Path.of_points [ Path.nth path i; p'; q'; Path.nth path (i + 1) ]
  in
  Path.replace_segment path ~from_idx:i ~to_idx:(i + 1) seg

let lengthen path ~target ~usable =
  let rec go path =
    if Path.length path >= target then Some path
    else
      match find_bump path ~usable with
      | None -> None
      | Some bump -> go (insert_bump path bump)
  in
  go path

let max_bumped_length path ~usable =
  let rec go path =
    match find_bump path ~usable with
    | None -> Path.length path
    | Some bump -> go (insert_bump path bump)
  in
  go path
