open Pacor_geom
open Pacor_grid

(* Per-cell visit entries: G value and parent (cell index, entry index).
   Every stored entry's parent chain is a simple path (checked at
   insertion), so reconstruction never fails. G strictly decreases along
   parents, so chains terminate. *)
type entry = { g : int; parent : (int * int) option }

let search ~grid ~usable ?(max_visits_per_cell = 8) ?(pop_budget = 0) ~source ~target
    ~min_length () =
  if min_length < 0 then invalid_arg "Bounded_astar.search: negative bound";
  if not (Routing_grid.in_bounds grid source && Routing_grid.in_bounds grid target) then None
  else begin
    let cells = Routing_grid.cells grid in
    let budget = if pop_budget > 0 then pop_budget else 50 * cells in
    let entries : entry array array = Array.make cells [||] in
    let idx p = Routing_grid.index grid p in
    let pq = Pacor_graphs.Pqueue.create () in
    (* Priority: estimated total when feasible, otherwise mirrored around
       the bound so that longer prefixes come first (the paper's penalty
       for estimates below the bound). *)
    let prio g p =
      let est = g + Point.manhattan p target in
      if est >= min_length then est else (2 * min_length) - est
    in
    let enterable p =
      Routing_grid.in_bounds grid p
      && (usable p || Point.equal p source || Point.equal p target)
    in
    (* Does cell index [i] already appear in the chain of (j, e)? *)
    let rec on_chain i (j, e) =
      i = j
      ||
      match entries.(j).(e).parent with
      | None -> false
      | Some parent -> on_chain i parent
    in
    let add_entry p g parent =
      let i = idx p in
      let existing = entries.(i) in
      if Array.length existing >= max_visits_per_cell then None
      else if Array.exists (fun e -> e.g = g) existing then None
      else if (match parent with Some pe -> on_chain i pe | None -> false) then None
      else begin
        entries.(i) <- Array.append existing [| { g; parent } |];
        Some (i, Array.length existing)
      end
    in
    let reconstruct (i, e) =
      let rec go (i, e) acc =
        let entry = entries.(i).(e) in
        let p = Routing_grid.point_of_index grid i in
        match entry.parent with
        | None -> p :: acc
        | Some parent -> go parent (p :: acc)
      in
      go (i, e) []
    in
    (match add_entry source 0 None with
     | Some key -> Pacor_graphs.Pqueue.push pq ~prio:(prio 0 source) key
     | None -> ());
    let pops = ref 0 in
    let rec loop () =
      if !pops >= budget then None
      else
        match Pacor_graphs.Pqueue.pop pq with
        | None -> None
        | Some (_, (i, e)) ->
          incr pops;
          let entry = entries.(i).(e) in
          let p = Routing_grid.point_of_index grid i in
          if Point.equal p target && entry.g >= min_length then
            Some (Path.of_points (reconstruct (i, e)))
          else if Point.equal p target then
            (* A too-short prefix ending at the target cannot be extended
               into a simple path that returns to the target. *)
            loop ()
          else begin
            List.iter
              (fun q ->
                 if enterable q then begin
                   let g = entry.g + 1 in
                   match add_entry q g (Some (i, e)) with
                   | Some key -> Pacor_graphs.Pqueue.push pq ~prio:(prio g q) key
                   | None -> ()
                 end)
              (Point.neighbours4 p);
            loop ()
          end
    in
    loop ()
  end
