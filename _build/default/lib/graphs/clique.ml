type graph = {
  n : int;
  adjacent : int -> int -> bool;
}

let of_matrix m =
  let n = Array.length m in
  Array.iter (fun row -> if Array.length row <> n then invalid_arg "Clique.of_matrix: not square") m;
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && m.(i).(j) <> m.(j).(i) then invalid_arg "Clique.of_matrix: not symmetric"
    done
  done;
  { n; adjacent = (fun i j -> i <> j && m.(i).(j)) }

let is_clique g vs =
  let rec go = function
    | [] -> true
    | v :: rest -> List.for_all (g.adjacent v) rest && go rest
  in
  go vs

let degree g v =
  let d = ref 0 in
  for u = 0 to g.n - 1 do
    if g.adjacent v u then incr d
  done;
  !d

let greedy_clique g =
  if g.n = 0 then []
  else begin
    let order =
      List.init g.n Fun.id
      |> List.sort (fun a b ->
        let da = degree g a and db = degree g b in
        if da <> db then Int.compare db da else Int.compare a b)
    in
    let clique = ref [] in
    List.iter
      (fun v -> if List.for_all (g.adjacent v) !clique then clique := v :: !clique)
      order;
    List.sort Int.compare !clique
  end

(* Greedy colouring of the candidate set: the number of colours bounds the
   largest clique inside it (classic Tomita-style bound). *)
let colour_bound g cand =
  let colours = ref [] in
  List.iter
    (fun v ->
       let rec place = function
         | [] -> colours := !colours @ [ ref [ v ] ]
         | cls :: rest ->
           if List.exists (g.adjacent v) !cls then place rest else cls := v :: !cls
       in
       place !colours)
    cand;
  List.length !colours

let max_clique g =
  let best = ref [] in
  let rec expand current cand =
    if List.length current + List.length cand <= List.length !best then ()
    else if cand = [] then begin
      if List.length current > List.length !best then best := current
    end
    else if List.length current + colour_bound g cand <= List.length !best then ()
    else begin
      match cand with
      | [] -> ()
      | v :: rest ->
        (* Branch 1: take v. *)
        expand (v :: current) (List.filter (g.adjacent v) rest);
        (* Branch 2: skip v. *)
        expand current rest
    end
  in
  (* Seed with the greedy clique so pruning bites immediately. *)
  best := greedy_clique g;
  let order =
    List.init g.n Fun.id
    |> List.sort (fun a b ->
      let da = degree g a and db = degree g b in
      if da <> db then Int.compare db da else Int.compare a b)
  in
  expand [] order;
  List.sort Int.compare !best

type weighted = {
  graph : graph;
  node_weight : int -> float;
  edge_weight : int -> int -> float;
}

let clique_weight w vs =
  let node = List.fold_left (fun acc v -> acc +. w.node_weight v) 0.0 vs in
  let rec pairs acc = function
    | [] -> acc
    | v :: rest ->
      pairs (List.fold_left (fun a u -> a +. w.edge_weight v u) acc rest) rest
  in
  node +. pairs 0.0 vs

let max_weight_clique ?(forced = []) w =
  let g = w.graph in
  if not (is_clique g forced) then invalid_arg "Clique.max_weight_clique: forced set is not a clique";
  (* Upper bound on what the remaining candidates can still add: each
     candidate contributes its node weight, its edges to the current clique,
     and half of each positive edge among candidates — admissible because
     every such edge is counted at most once per endpoint. *)
  let potential current cand =
    List.fold_left
      (fun acc v ->
         let to_current =
           List.fold_left (fun a u -> a +. w.edge_weight v u) 0.0 current
         in
         let among =
           List.fold_left
             (fun a u ->
                if u <> v && g.adjacent v u then a +. (max 0.0 (w.edge_weight v u) /. 2.0)
                else a)
             0.0 cand
         in
         acc +. max 0.0 (w.node_weight v +. to_current +. among))
      0.0 cand
  in
  let best = ref (List.sort Int.compare forced) in
  let best_w = ref (clique_weight w forced) in
  let rec expand current cur_w cand =
    if cur_w > !best_w then begin
      best := List.sort Int.compare current;
      best_w := cur_w
    end;
    match cand with
    | [] -> ()
    | v :: rest ->
      if cur_w +. potential current cand > !best_w +. 1e-12 then begin
        let gain =
          w.node_weight v
          +. List.fold_left (fun a u -> a +. w.edge_weight v u) 0.0 current
        in
        expand (v :: current) (cur_w +. gain) (List.filter (g.adjacent v) rest);
        expand current cur_w rest
      end
  in
  let cand =
    List.init g.n Fun.id
    |> List.filter (fun v -> (not (List.mem v forced)) && List.for_all (g.adjacent v) forced)
  in
  expand forced (clique_weight w forced) cand;
  (!best, !best_w)
