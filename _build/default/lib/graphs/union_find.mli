(** Disjoint-set forest with path compression and union by rank.

    Used by Kruskal's MST and by connectivity checks on routed trees. *)

type t

val create : int -> t
(** [create n] starts with singletons [0 .. n-1]. *)

val find : t -> int -> int
val union : t -> int -> int -> bool
(** [union t a b] merges the two classes; returns [false] when already
    joined. *)

val same : t -> int -> int -> bool
val count : t -> int
(** Number of remaining classes. *)
