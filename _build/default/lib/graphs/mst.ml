type edge = { a : int; b : int; w : int }

let prim ~n ~weight =
  if n <= 1 then []
  else begin
    let in_tree = Array.make n false in
    let best = Array.make n max_int in
    let best_from = Array.make n (-1) in
    let edges = ref [] in
    in_tree.(0) <- true;
    for v = 1 to n - 1 do
      best.(v) <- weight 0 v;
      best_from.(v) <- 0
    done;
    for _ = 1 to n - 1 do
      (* Pick the cheapest frontier vertex (lowest index on ties). *)
      let pick = ref (-1) in
      for v = 0 to n - 1 do
        if (not in_tree.(v)) && (!pick = -1 || best.(v) < best.(!pick)) then pick := v
      done;
      let v = !pick in
      in_tree.(v) <- true;
      edges := { a = best_from.(v); b = v; w = best.(v) } :: !edges;
      for u = 0 to n - 1 do
        if not in_tree.(u) then begin
          let w = weight v u in
          if w < best.(u) then begin
            best.(u) <- w;
            best_from.(u) <- v
          end
        end
      done
    done;
    List.rev !edges
  end

let kruskal ~n edges =
  let sorted =
    List.sort
      (fun e1 e2 ->
         if e1.w <> e2.w then Int.compare e1.w e2.w
         else if e1.a <> e2.a then Int.compare e1.a e2.a
         else Int.compare e1.b e2.b)
      edges
  in
  let uf = Union_find.create n in
  List.filter (fun e -> Union_find.union uf e.a e.b) sorted

let total_weight edges = List.fold_left (fun acc e -> acc + e.w) 0 edges

let is_spanning_tree ~n edges =
  List.length edges = n - 1
  && begin
    let uf = Union_find.create n in
    List.iter (fun e -> ignore (Union_find.union uf e.a e.b)) edges;
    n = 0 || Union_find.count uf = 1
  end
