lib/graphs/clique.mli:
