lib/graphs/clique.ml: Array Fun Int List
