lib/graphs/mst.mli:
