lib/graphs/mst.ml: Array Int List Union_find
