lib/graphs/pqueue.mli:
