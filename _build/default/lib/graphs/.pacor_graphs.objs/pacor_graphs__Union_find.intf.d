lib/graphs/union_find.mli:
