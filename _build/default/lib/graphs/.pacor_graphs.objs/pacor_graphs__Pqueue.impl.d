lib/graphs/pqueue.ml: Array
