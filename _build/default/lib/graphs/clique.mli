(** Maximum clique and maximum weight clique.

    The paper leans on clique machinery twice: valve clustering is a clique
    cover of the compatibility graph (Sec. 3), and candidate-Steiner-tree
    selection is formulated as a maximum {e weight} clique problem with node
    weights (length-mismatch cost, Eq. 2) and edge weights (overlap cost,
    Eq. 3). This module is the generic solver substrate; instance sizes in
    the flow are small (tens of vertices), so the exact branch-and-bound is
    the production path and the greedy solver is the fallback / baseline. *)

type graph = {
  n : int;
  adjacent : int -> int -> bool;  (** irreflexive, symmetric *)
}

val of_matrix : bool array array -> graph
(** Validates squareness and symmetry; diagonal is ignored. *)

val max_clique : graph -> int list
(** Exact maximum cardinality clique (branch and bound with a greedy
    colouring upper bound). Sorted vertex list; [[]] only when [n = 0]. *)

val greedy_clique : graph -> int list
(** Fast maximal clique grown from the highest-degree vertex. *)

(** Weighted cliques: total weight = sum of member node weights plus sum of
    member-pair edge weights. Weights may be negative (the paper's costs
    are), so the best clique may be empty unless [forced] pins vertices. *)

type weighted = {
  graph : graph;
  node_weight : int -> float;
  edge_weight : int -> int -> float;  (** only read on adjacent pairs *)
}

val max_weight_clique : ?forced:int list -> weighted -> int list * float
(** Exact maximum weight clique containing all [forced] vertices (which must
    themselves form a clique). Returns the sorted clique and its weight. *)

val clique_weight : weighted -> int list -> float

val is_clique : graph -> int list -> bool
