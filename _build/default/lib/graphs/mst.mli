(** Minimum spanning trees for cluster connection topologies (Sec. 3,
    "MST-based cluster routing").

    Vertices are indices [0 .. n-1]; both a dense (metric closure / Prim)
    and a sparse edge-list (Kruskal) interface are provided. *)

type edge = { a : int; b : int; w : int }

val prim : n:int -> weight:(int -> int -> int) -> edge list
(** MST of the complete graph on [n] vertices under the symmetric [weight]
    function. Returns [n-1] edges ([[]] when [n <= 1]). Deterministic. *)

val kruskal : n:int -> edge list -> edge list
(** MST (or minimum spanning forest) of the given edge list. *)

val total_weight : edge list -> int

val is_spanning_tree : n:int -> edge list -> bool
(** [n-1] edges connecting all of [0 .. n-1]. *)
