lib/select/tree_select.ml: Array Candidate List Pacor_dme Pacor_geom Pacor_graphs Rect
