lib/select/tree_select.mli: Candidate Pacor_dme
