type t = { x : int; y : int }

let make x y = { x; y }
let origin = { x = 0; y = 0 }
let manhattan a b = abs (a.x - b.x) + abs (a.y - b.y)
let chebyshev a b = max (abs (a.x - b.x)) (abs (a.y - b.y))
let add a b = { x = a.x + b.x; y = a.y + b.y }
let sub a b = { x = a.x - b.x; y = a.y - b.y }

let midpoint a b =
  (* Integer division truncates toward zero; offsetting by the first point
     keeps the result between the two points for any sign. *)
  { x = a.x + ((b.x - a.x) / 2); y = a.y + ((b.y - a.y) / 2) }

let equal a b = a.x = b.x && a.y = b.y
let compare a b = if a.x <> b.x then Int.compare a.x b.x else Int.compare a.y b.y
let hash a = (a.x * 1_000_003) lxor a.y
let pp ppf a = Format.fprintf ppf "(%d,%d)" a.x a.y
let to_string a = Format.asprintf "%a" pp a

let neighbours4 p =
  [ { p with x = p.x + 1 }; { p with x = p.x - 1 };
    { p with y = p.y + 1 }; { p with y = p.y - 1 } ]

let ring c r =
  if r < 0 then invalid_arg "Point.ring: negative radius"
  else if r = 0 then [ c ]
  else begin
    let acc = ref [] in
    (* Top and bottom rows of the square loop. *)
    for dx = -r to r do
      acc := { x = c.x + dx; y = c.y + r } :: { x = c.x + dx; y = c.y - r } :: !acc
    done;
    (* Left and right columns, excluding the corners already listed. *)
    for dy = -r + 1 to r - 1 do
      acc := { x = c.x + r; y = c.y + dy } :: { x = c.x - r; y = c.y + dy } :: !acc
    done;
    !acc
  end

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
