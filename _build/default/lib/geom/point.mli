(** Integer grid points in the chip plane.

    The routing grid uses integer coordinates; [x] grows rightward and [y]
    grows upward. All channel-length arithmetic in PACOR is Manhattan. *)

type t = { x : int; y : int }

val make : int -> int -> t

val origin : t

(** [manhattan a b] is the L1 distance between [a] and [b]. *)
val manhattan : t -> t -> int

(** [chebyshev a b] is the L-infinity distance between [a] and [b]. *)
val chebyshev : t -> t -> int

val add : t -> t -> t
val sub : t -> t -> t

(** [midpoint a b] rounds each coordinate toward [a]. *)
val midpoint : t -> t -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** 4-neighbourhood in fixed order: east, west, north, south. *)
val neighbours4 : t -> t list

(** [ring c r] lists the points at Chebyshev distance exactly [r] from [c]
    (the square "loop" used by the DME embedding search). [ring c 0] is
    [[c]]. *)
val ring : t -> int -> t list

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
