type coord = { u : int; v : int }
type t = { ulo : int; uhi : int; vlo : int; vhi : int }

let coord_of_point (p : Point.t) =
  let x = 2 * p.x and y = 2 * p.y in
  { u = x + y; v = x - y }

let make ~ulo ~uhi ~vlo ~vhi =
  if ulo > uhi || vlo > vhi then invalid_arg "Tilted.make: empty region"
  else { ulo; uhi; vlo; vhi }

let of_point p =
  let c = coord_of_point p in
  { ulo = c.u; uhi = c.u; vlo = c.v; vhi = c.v }

(* Gap between intervals [alo,ahi] and [blo,bhi]; 0 when they overlap. *)
let gap alo ahi blo bhi = max 0 (max (blo - ahi) (alo - bhi))

let dist a b = max (gap a.ulo a.uhi b.ulo b.uhi) (gap a.vlo a.vhi b.vlo b.vhi)

let dist_coord c t = max (gap c.u c.u t.ulo t.uhi) (gap c.v c.v t.vlo t.vhi)
let coord_dist a b = max (abs (a.u - b.u)) (abs (a.v - b.v))

let inflate t r =
  if r < 0 then invalid_arg "Tilted.inflate: negative radius"
  else { ulo = t.ulo - r; uhi = t.uhi + r; vlo = t.vlo - r; vhi = t.vhi + r }

let inter a b =
  let ulo = max a.ulo b.ulo and uhi = min a.uhi b.uhi in
  let vlo = max a.vlo b.vlo and vhi = min a.vhi b.vhi in
  if ulo <= uhi && vlo <= vhi then Some { ulo; uhi; vlo; vhi } else None

let clamp lo hi x = if x < lo then lo else if x > hi then hi else x
let nearest_in t c = { u = clamp t.ulo t.uhi c.u; v = clamp t.vlo t.vhi c.v }

let center t = { u = t.ulo + ((t.uhi - t.ulo) / 2); v = t.vlo + ((t.vhi - t.vlo) / 2) }

let corners t =
  [ { u = t.ulo; v = t.vlo }; { u = t.ulo; v = t.vhi };
    { u = t.uhi; v = t.vlo }; { u = t.uhi; v = t.vhi } ]

let sample t n =
  if n <= 0 then []
  else begin
    let mid lo hi = lo + ((hi - lo) / 2) in
    let candidates =
      center t :: corners t
      @ [ { u = mid t.ulo t.uhi; v = t.vlo }; { u = mid t.ulo t.uhi; v = t.vhi };
          { u = t.ulo; v = mid t.vlo t.vhi }; { u = t.uhi; v = mid t.vlo t.vhi } ]
    in
    let rec dedup seen = function
      | [] -> []
      | c :: rest ->
        if List.exists (fun s -> s.u = c.u && s.v = c.v) seen then dedup seen rest
        else c :: dedup (c :: seen) rest
    in
    let distinct = dedup [] candidates in
    List.filteri (fun i _ -> i < n) distinct
  end

(* A tilted point corresponds to grid point (x, y) with 4x = u + v and
   4y = u - v. We try the floor/ceil combinations of both divisions and keep
   the closest (ties broken deterministically by candidate order). *)
let nearest_grid_point c =
  let div_floor a b = if a >= 0 then a / b else -(((-a) + b - 1) / b) in
  let xs =
    let q = div_floor (c.u + c.v) 4 in
    [ q; q + 1 ]
  and ys =
    let q = div_floor (c.u - c.v) 4 in
    [ q; q + 1 ]
  in
  let best = ref None in
  let consider x y =
    let d = coord_dist c (coord_of_point (Point.make x y)) in
    match !best with
    | Some (_, bd) when bd <= d -> ()
    | _ -> best := Some (Point.make x y, d)
  in
  List.iter (fun x -> List.iter (fun y -> consider x y) ys) xs;
  match !best with Some (p, _) -> p | None -> assert false

let grid_round_error c = coord_dist c (coord_of_point (nearest_grid_point c))
let is_on_grid c = grid_round_error c = 0

let pp ppf t = Format.fprintf ppf "u:[%d,%d] v:[%d,%d]" t.ulo t.uhi t.vlo t.vhi
let pp_coord ppf c = Format.fprintf ppf "(u=%d,v=%d)" c.u c.v
let equal a b = a.ulo = b.ulo && a.uhi = b.uhi && a.vlo = b.vlo && a.vhi = b.vhi
