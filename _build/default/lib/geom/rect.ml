type t = { x0 : int; y0 : int; x1 : int; y1 : int }

let make ~x0 ~y0 ~x1 ~y1 =
  { x0 = min x0 x1; y0 = min y0 y1; x1 = max x0 x1; y1 = max y0 y1 }

let of_points (a : Point.t) (b : Point.t) = make ~x0:a.x ~y0:a.y ~x1:b.x ~y1:b.y

let of_point_list = function
  | [] -> invalid_arg "Rect.of_point_list: empty"
  | (p : Point.t) :: rest ->
    let f (r : t) (q : Point.t) =
      { x0 = min r.x0 q.x; y0 = min r.y0 q.y; x1 = max r.x1 q.x; y1 = max r.y1 q.y }
    in
    List.fold_left f { x0 = p.x; y0 = p.y; x1 = p.x; y1 = p.y } rest

let contains r (p : Point.t) = r.x0 <= p.x && p.x <= r.x1 && r.y0 <= p.y && p.y <= r.y1
let width r = r.x1 - r.x0
let height r = r.y1 - r.y0
let cells r = (width r + 1) * (height r + 1)

let inter a b =
  let x0 = max a.x0 b.x0 and y0 = max a.y0 b.y0 in
  let x1 = min a.x1 b.x1 and y1 = min a.y1 b.y1 in
  if x0 <= x1 && y0 <= y1 then Some { x0; y0; x1; y1 } else None

let overlap_cells a b = match inter a b with None -> 0 | Some r -> cells r
let inflate r d = { x0 = r.x0 - d; y0 = r.y0 - d; x1 = r.x1 + d; y1 = r.y1 + d }
let equal a b = a.x0 = b.x0 && a.y0 = b.y0 && a.x1 = b.x1 && a.y1 = b.y1
let pp ppf r = Format.fprintf ppf "[%d,%d]x[%d,%d]" r.x0 r.x1 r.y0 r.y1

let points r =
  let acc = ref [] in
  for y = r.y1 downto r.y0 do
    for x = r.x1 downto r.x0 do
      acc := Point.make x y :: !acc
    done
  done;
  !acc
