lib/geom/tilted.mli: Format Point
