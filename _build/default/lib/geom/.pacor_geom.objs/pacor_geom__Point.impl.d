lib/geom/point.ml: Format Hashtbl Int Map Set
