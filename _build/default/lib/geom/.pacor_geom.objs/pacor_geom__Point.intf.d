lib/geom/point.mli: Format Hashtbl Map Set
