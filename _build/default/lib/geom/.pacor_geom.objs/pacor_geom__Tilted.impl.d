lib/geom/tilted.ml: Format List Point
