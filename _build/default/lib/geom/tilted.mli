(** Tilted (45°-rotated) coordinates and tilted rectangular regions (TRRs).

    The DME algorithm manipulates loci of points equidistant (in Manhattan
    metric) from two sub-trees. In the rotated frame [u = X + Y],
    [v = X - Y], Manhattan balls become axis-aligned squares, so every such
    locus is an axis-aligned rectangle — a {e tilted rectangular region}.
    Merging two TRRs only needs rectangle intersection and Chebyshev
    distances.

    {b Doubled coordinates.} Lemma 1 of the paper notes that the merging
    segment of two nodes at odd Manhattan distance is off-grid (it lives at
    half-integer positions). To keep all arithmetic exact we embed grid point
    [(x, y)] at [X = 2x, Y = 2y]; every merging computation then stays
    integral, and one unit of real channel length equals {b 2 units} in this
    module. Rounding back to the routing grid happens once, in
    {!nearest_grid_point}, and the resulting error is absorbed by the
    obstacle-avoiding embedding search and the final detour stage (exactly as
    Sec. 4.1 of the paper prescribes). *)

type coord = { u : int; v : int }
(** A point of the (doubled) tilted plane. *)

type t = private { ulo : int; uhi : int; vlo : int; vhi : int }
(** A non-empty TRR, inclusive bounds in tilted coordinates. *)

val coord_of_point : Point.t -> coord
(** Embed a grid point (doubling included). *)

val of_point : Point.t -> t
(** Degenerate TRR holding exactly one grid point. *)

val make : ulo:int -> uhi:int -> vlo:int -> vhi:int -> t
(** Raises [Invalid_argument] if the rectangle is empty. *)

val dist : t -> t -> int
(** Chebyshev gap between two TRRs = Manhattan distance between the regions
    in {b doubled} units (twice the real channel length). 0 if they touch. *)

val dist_coord : coord -> t -> int
(** Distance from a tilted point to a TRR, doubled units. *)

val coord_dist : coord -> coord -> int
(** Chebyshev distance between tilted points, doubled units. *)

val inflate : t -> int -> t
(** Grow by a (doubled) radius [r >= 0]: all points within distance [r]. *)

val inter : t -> t -> t option

val nearest_in : t -> coord -> coord
(** Closest point of the region to the given tilted point (coordinate-wise
    clamp, which is exact for Chebyshev distance). *)

val center : t -> coord

val corners : t -> coord list

val sample : t -> int -> coord list
(** [sample t n] returns up to [n] distinct points of the region spread over
    it (always includes the center; then corners and edge midpoints). Used to
    enumerate candidate merging-node placements. *)

val nearest_grid_point : coord -> Point.t
(** Round a tilted point back to the routing grid, minimising the (doubled)
    Manhattan distance between the tilted point and the chosen grid point. *)

val grid_round_error : coord -> int
(** Doubled Manhattan distance between the tilted point and
    [nearest_grid_point] — 0 when the point is exactly on-grid. *)

val is_on_grid : coord -> bool

val pp : Format.formatter -> t -> unit
val pp_coord : Format.formatter -> coord -> unit
val equal : t -> t -> bool
