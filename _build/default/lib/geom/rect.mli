(** Axis-aligned integer rectangles, inclusive on all four sides.

    Used for routing blockages and for the bounding-box overlap cost of
    Eq. (4) in the paper. A rectangle with [x0 = x1] or [y0 = y1] is a
    degenerate (segment or point) rectangle and still has a positive cell
    count, which is what the overlap cost needs for grid-aligned edges. *)

type t = private { x0 : int; y0 : int; x1 : int; y1 : int }

(** [make ~x0 ~y0 ~x1 ~y1] normalises the corner order. *)
val make : x0:int -> y0:int -> x1:int -> y1:int -> t

(** Bounding box of two points. *)
val of_points : Point.t -> Point.t -> t

(** Smallest rectangle covering all points. Raises [Invalid_argument] on the
    empty list. *)
val of_point_list : Point.t list -> t

val contains : t -> Point.t -> bool
val width : t -> int
val height : t -> int

(** Number of grid cells covered (inclusive bounds), i.e.
    [(width+1) * (height+1)]. This is the "area" of Eq. (4). *)
val cells : t -> int

(** [inter a b] is [Some] of the overlap rectangle, or [None] if disjoint. *)
val inter : t -> t -> t option

(** Cells in the overlap of two rectangles, 0 when disjoint. *)
val overlap_cells : t -> t -> int

(** [inflate r d] grows the rectangle by [d] in all four directions. *)
val inflate : t -> int -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** All grid points inside the rectangle, row-major. *)
val points : t -> Point.t list
