(** One phase of a scheduled bioassay.

    The paper's input — per-valve "0-1-X" activation sequences and the
    length-matched clusters — comes from an upstream control-synthesis step
    (resource binding and scheduling, ref. [8] of the paper). This library
    is that front end: assays are described as phases with per-valve state
    requirements, and compiled into the sequences and synchronisation
    clusters the router consumes. *)

open Pacor_valve

type requirement = {
  valve : Valve.id;
  state : Activation.status;  (** demanded state for the whole phase *)
}

type t = {
  name : string;
  duration : int;                     (** time steps, >= 1 *)
  requirements : requirement list;    (** unconstrained valves default to X *)
  sync_groups : Valve.id list list;
      (** groups of valves that must switch at the {e start} of this phase
          simultaneously — they become length-matched clusters *)
}

val make :
  ?sync_groups:Valve.id list list ->
  name:string ->
  duration:int ->
  requirement list ->
  (t, string) result
(** Validates: positive duration; no valve required in two different
    states; every sync-group valve also has a requirement in this phase
    (a valve cannot be synchronisation-critical while unconstrained). *)

val make_exn :
  ?sync_groups:Valve.id list list ->
  name:string ->
  duration:int ->
  requirement list ->
  t

val state_of : t -> Valve.id -> Activation.status
(** The state this phase demands ([Dont_care] when unconstrained). *)

val open_ : Valve.id -> requirement
val closed : Valve.id -> requirement

val pp : Format.formatter -> t -> unit
