lib/assay/schedule.ml: Activation Array Cluster Format Hashtbl Int List Option Pacor_graphs Pacor_valve Phase Printf String Valve
