lib/assay/schedule.mli: Activation Cluster Format Pacor_geom Pacor_valve Phase Valve
