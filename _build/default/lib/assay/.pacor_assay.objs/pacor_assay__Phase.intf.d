lib/assay/phase.mli: Activation Format Pacor_valve Valve
