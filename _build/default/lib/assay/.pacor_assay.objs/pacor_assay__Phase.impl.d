lib/assay/phase.ml: Activation Format List Pacor_valve Printf Valve
