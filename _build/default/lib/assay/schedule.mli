(** Assay schedules: an ordered list of phases compiled into the router's
    inputs — activation sequences (Def. 1) and length-matched clusters.

    Compilation expands each phase to [duration] identical time steps.
    Synchronisation groups from all phases are merged transitively (a valve
    synchronised with [a] in one phase and with [b] in another forces
    [a], [b] into one cluster, since all three must share one control pin),
    then checked for pairwise compatibility. *)

open Pacor_valve

type t = private {
  phases : Phase.t list;   (** non-empty *)
  valves : Valve.id list;  (** every valve mentioned anywhere, sorted *)
}

val make : Phase.t list -> (t, string) result
(** Validates non-emptiness and distinct phase names. *)

val make_exn : Phase.t list -> t

val total_steps : t -> int

val sequences : t -> (Valve.id * Activation.sequence) list
(** One sequence per valve, [total_steps] long, [Dont_care] where a phase
    leaves the valve unconstrained. *)

val sequence_of : t -> Valve.id -> Activation.sequence

val sync_clusters : t -> (Valve.id list list, string) result
(** Transitive closure of all phases' sync groups; errors if a resulting
    cluster contains valves with incompatible compiled sequences (they
    could never share a pin). Singleton groups are dropped. *)

val to_valves : t -> positions:(Valve.id -> Pacor_geom.Point.t) -> Valve.t list
(** Attach chip positions to the compiled sequences. *)

val lm_clusters :
  t -> valves:Valve.t list -> (Cluster.t list, string) result
(** The length-matched seed clusters for {!Pacor.Problem.create}, built
    from {!sync_clusters} over the given placed valves (ids must match). *)

val pp : Format.formatter -> t -> unit
