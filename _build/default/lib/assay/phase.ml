open Pacor_valve

type requirement = {
  valve : Valve.id;
  state : Activation.status;
}

type t = {
  name : string;
  duration : int;
  requirements : requirement list;
  sync_groups : Valve.id list list;
}

let open_ valve = { valve; state = Activation.Open }
let closed valve = { valve; state = Activation.Closed }

let conflicting requirements =
  let rec go = function
    | [] -> None
    | r :: rest ->
      (match
         List.find_opt
           (fun r' -> r'.valve = r.valve && r'.state <> r.state)
           rest
       with
       | Some _ -> Some r.valve
       | None -> go rest)
  in
  go requirements

let make ?(sync_groups = []) ~name ~duration requirements =
  if duration < 1 then Error (Printf.sprintf "phase %s: duration must be >= 1" name)
  else
    match conflicting requirements with
    | Some v ->
      Error (Printf.sprintf "phase %s: valve %d required in two different states" name v)
    | None ->
      let constrained = List.map (fun r -> r.valve) requirements in
      let unconstrained_sync =
        List.concat sync_groups |> List.find_opt (fun v -> not (List.mem v constrained))
      in
      (match unconstrained_sync with
       | Some v ->
         Error
           (Printf.sprintf
              "phase %s: sync valve %d has no state requirement in this phase" name v)
       | None -> Ok { name; duration; requirements; sync_groups })

let make_exn ?sync_groups ~name ~duration requirements =
  match make ?sync_groups ~name ~duration requirements with
  | Ok t -> t
  | Error msg -> invalid_arg ("Phase.make: " ^ msg)

let state_of t valve =
  match List.find_opt (fun r -> r.valve = valve) t.requirements with
  | Some r -> r.state
  | None -> Activation.Dont_care

let pp ppf t =
  Format.fprintf ppf "%s (%d steps, %d requirements, %d sync groups)" t.name t.duration
    (List.length t.requirements)
    (List.length t.sync_groups)
