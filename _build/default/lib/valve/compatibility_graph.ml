type t = {
  valves : Valve.t array;
  index_of : (Valve.id, int) Hashtbl.t;
  adjacent : bool array array;
}

let build valves =
  let arr = Array.of_list valves in
  let n = Array.length arr in
  let index_of = Hashtbl.create n in
  Array.iteri
    (fun i (v : Valve.t) ->
       if Hashtbl.mem index_of v.id then
         invalid_arg "Compatibility_graph.build: duplicate valve id";
       Hashtbl.replace index_of v.id i)
    arr;
  let adjacent = Array.make_matrix n n false in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Valve.compatible arr.(i) arr.(j) then begin
        adjacent.(i).(j) <- true;
        adjacent.(j).(i) <- true
      end
    done
  done;
  { valves = arr; index_of; adjacent }

let valve_count t = Array.length t.valves

let edge_count t =
  let n = valve_count t in
  let c = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if t.adjacent.(i).(j) then incr c
    done
  done;
  !c

let density t =
  let n = valve_count t in
  if n < 2 then 1.0
  else float_of_int (edge_count t) /. float_of_int (n * (n - 1) / 2)

let idx t id =
  match Hashtbl.find_opt t.index_of id with
  | Some i -> i
  | None -> invalid_arg "Compatibility_graph: unknown valve id"

let compatible t a b =
  let i = idx t a and j = idx t b in
  i = j || t.adjacent.(i).(j)

let degree t id =
  let i = idx t id in
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t.adjacent.(i)

(* Greedy independent set: repeatedly take the vertex of minimum degree in
   the remaining graph and delete its neighbourhood. *)
let independent_set_size t =
  let n = valve_count t in
  let alive = Array.make n true in
  let count = ref 0 in
  let remaining_degree i =
    let d = ref 0 in
    for j = 0 to n - 1 do
      if alive.(j) && j <> i && t.adjacent.(i).(j) then incr d
    done;
    !d
  in
  let rec go () =
    let pick = ref (-1) and best = ref max_int in
    for i = 0 to n - 1 do
      if alive.(i) then begin
        let d = remaining_degree i in
        if d < !best then begin
          best := d;
          pick := i
        end
      end
    done;
    if !pick >= 0 then begin
      incr count;
      let p = !pick in
      alive.(p) <- false;
      for j = 0 to n - 1 do
        if t.adjacent.(p).(j) then alive.(j) <- false
      done;
      go ()
    end
  in
  go ();
  !count

let clique_cover_size t =
  match Clustering.cluster (Array.to_list t.valves) with
  | Ok partition -> partition.Clustering.pin_count
  | Error msg -> invalid_arg ("Compatibility_graph.clique_cover_size: " ^ msg)

let pin_bounds t = (independent_set_size t, clique_cover_size t)

let pp_summary ppf t =
  let lower, upper = pin_bounds t in
  Format.fprintf ppf "%d valves, %d compatible pairs (density %.2f), pins in [%d, %d]"
    (valve_count t) (edge_count t) (density t) lower upper
