(** Valves: the control-layer terminals to be routed.

    A valve has an identifier, a position on the routing grid, and its
    activation sequence from the scheduled bioassay. *)

open Pacor_geom

type id = int

type t = {
  id : id;
  position : Point.t;
  sequence : Activation.sequence;
}

val make : id:id -> position:Point.t -> sequence:Activation.sequence -> t

val compatible : t -> t -> bool
(** Def. 4: valves are compatible iff their sequences are. *)

val pairwise_compatible : t list -> bool
(** True when every pair in the list is compatible — the requirement for
    valves sharing one control pin. *)

val shared_sequence : t list -> Activation.sequence option
(** The meet of all sequences: the drive pattern of a pin serving them all.
    [None] when any pair conflicts or the list is empty. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
