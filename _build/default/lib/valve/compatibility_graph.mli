(** The valve-compatibility graph and its clustering-quality metrics.

    Vertices are valves, edges join compatible pairs (Def. 4). Broadcast
    addressing is a clique cover of this graph, so its structure bounds the
    achievable pin count: any independent set is a set of valves that can
    never share pins (lower bound), while the greedy clique cover used by
    the flow gives the upper bound actually achieved. *)

type t

val build : Valve.t list -> t
(** O(n^2) pairwise compatibility. Duplicate ids are rejected. *)

val valve_count : t -> int
val edge_count : t -> int

val density : t -> float
(** Edges over possible pairs; 1.0 for fully compatible valve sets. *)

val compatible : t -> Valve.id -> Valve.id -> bool
val degree : t -> Valve.id -> int

val independent_set_size : t -> int
(** Size of a greedily-built independent set: a {b lower bound} on the
    number of control pins any addressing scheme needs. *)

val clique_cover_size : t -> int
(** Number of clusters the flow's greedy clique cover produces — the pin
    count actually used (without length-matching seeds). *)

val pin_bounds : t -> int * int
(** [(lower, upper)] pin-count bounds: greedy independent set and greedy
    clique cover. [lower <= optimum <= upper]. *)

val pp_summary : Format.formatter -> t -> unit
