(** Clusters of valves sharing one control pin.

    A cluster is a set of pairwise-compatible valves that will be connected
    to a single pressure source. Clusters flagged [length_matched] carry the
    paper's length-matching constraint: all routed channel lengths from the
    shared pin to the member valves must agree within the chip's threshold
    [delta]. *)

type t = private {
  id : int;
  valves : Valve.t list;   (** non-empty, pairwise compatible, id-sorted *)
  length_matched : bool;
}

val make : id:int -> length_matched:bool -> Valve.t list -> (t, string) result
(** Validates non-emptiness, distinct valve ids, distinct valve positions and
    pairwise compatibility. *)

val make_exn : id:int -> length_matched:bool -> Valve.t list -> t

val size : t -> int
val valve_ids : t -> Valve.id list
val positions : t -> Pacor_geom.Point.t list

val needs_matching : t -> bool
(** Length matching only binds clusters with at least two valves. *)

val split : t -> fresh_id:(unit -> int) -> t list
(** Decluster into singleton clusters (used by rip-up when a cluster cannot
    be routed as a whole). Singletons drop the length-matching flag: a single
    valve is trivially matched. *)

val pp : Format.formatter -> t -> unit
