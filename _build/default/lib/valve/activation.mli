(** Valve activation statuses and sequences ("0-1-X" model, Defs. 1–4).

    Each valve is driven by a sequence of statuses, one per scheduled time
    step: open, closed, or don't-care. Two valves may share a control pin
    exactly when their sequences are compatible at every step. *)

type status =
  | Open        (** "0": the valve is open at this step. *)
  | Closed      (** "1": the valve is closed at this step. *)
  | Dont_care   (** "X": either state is acceptable. *)

val status_compatible : status -> status -> bool
(** Def. 2: equal, or either side is [Dont_care]. *)

val status_meet : status -> status -> status option
(** Most constrained status satisfying both; [None] when incompatible. *)

val char_of_status : status -> char
val status_of_char : char -> (status, string) result

type sequence = status array
(** Def. 1: an activation sequence. All sequences of one chip have equal
    length [n] (the number of scheduled time steps). *)

val sequence_of_string : string -> (sequence, string) result
val string_of_sequence : sequence -> string

val compatible : sequence -> sequence -> bool
(** Def. 3: pointwise compatibility. Sequences of different lengths are
    incompatible (they cannot come from the same schedule). *)

val meet : sequence -> sequence -> sequence option
(** Pointwise meet; the sequence a shared control pin would drive. *)

val all_dont_care : int -> sequence
(** A sequence compatible with everything — valves with no switching
    requirement. *)

val pp_status : Format.formatter -> status -> unit
val pp_sequence : Format.formatter -> sequence -> unit
val equal_sequence : sequence -> sequence -> bool
