type status = Open | Closed | Dont_care

let status_compatible a b =
  match a, b with
  | Dont_care, _ | _, Dont_care -> true
  | Open, Open | Closed, Closed -> true
  | Open, Closed | Closed, Open -> false

let status_meet a b =
  match a, b with
  | Dont_care, s | s, Dont_care -> Some s
  | Open, Open -> Some Open
  | Closed, Closed -> Some Closed
  | Open, Closed | Closed, Open -> None

let char_of_status = function Open -> '0' | Closed -> '1' | Dont_care -> 'X'

let status_of_char = function
  | '0' -> Ok Open
  | '1' -> Ok Closed
  | 'X' | 'x' -> Ok Dont_care
  | c -> Error (Printf.sprintf "invalid activation status %C (want 0, 1 or X)" c)

type sequence = status array

let sequence_of_string s =
  let n = String.length s in
  let rec go i acc =
    if i < 0 then Ok (Array.of_list acc)
    else
      match status_of_char s.[i] with
      | Ok st -> go (i - 1) (st :: acc)
      | Error _ as e -> e
  in
  if n = 0 then Error "empty activation sequence" else go (n - 1) []

let string_of_sequence seq = String.init (Array.length seq) (fun i -> char_of_status seq.(i))

let compatible a b =
  Array.length a = Array.length b
  && begin
    let rec go i = i >= Array.length a || (status_compatible a.(i) b.(i) && go (i + 1)) in
    go 0
  end

let meet a b =
  if Array.length a <> Array.length b then None
  else begin
    let out = Array.make (Array.length a) Dont_care in
    let rec go i =
      if i >= Array.length a then Some out
      else
        match status_meet a.(i) b.(i) with
        | None -> None
        | Some s ->
          out.(i) <- s;
          go (i + 1)
    in
    go 0
  end

let all_dont_care n =
  if n <= 0 then invalid_arg "Activation.all_dont_care: non-positive length";
  Array.make n Dont_care

let pp_status ppf s = Format.pp_print_char ppf (char_of_status s)
let pp_sequence ppf s = Format.pp_print_string ppf (string_of_sequence s)
let equal_sequence a b = a = b
