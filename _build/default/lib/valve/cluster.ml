type t = {
  id : int;
  valves : Valve.t list;
  length_matched : bool;
}

let rec distinct_sorted equal = function
  | [] | [ _ ] -> true
  | a :: (b :: _ as rest) -> (not (equal a b)) && distinct_sorted equal rest

let make ~id ~length_matched valves =
  match valves with
  | [] -> Error "cluster must contain at least one valve"
  | _ :: _ ->
    let sorted = List.sort Valve.compare valves in
    if not (distinct_sorted Valve.equal sorted) then Error "duplicate valve id in cluster"
    else begin
      let by_pos =
        List.sort (fun (a : Valve.t) b -> Pacor_geom.Point.compare a.position b.position) sorted
      in
      if
        not
          (distinct_sorted
             (fun (a : Valve.t) b -> Pacor_geom.Point.equal a.position b.position)
             by_pos)
      then Error "two valves share a position"
      else if not (Valve.pairwise_compatible sorted) then
        Error "cluster valves are not pairwise compatible"
      else Ok { id; valves = sorted; length_matched }
    end

let make_exn ~id ~length_matched valves =
  match make ~id ~length_matched valves with
  | Ok c -> c
  | Error msg -> invalid_arg ("Cluster.make: " ^ msg)

let size t = List.length t.valves
let valve_ids t = List.map (fun (v : Valve.t) -> v.id) t.valves
let positions t = List.map (fun (v : Valve.t) -> v.position) t.valves
let needs_matching t = t.length_matched && size t >= 2

let split t ~fresh_id =
  List.map
    (fun v -> { id = fresh_id (); valves = [ v ]; length_matched = false })
    t.valves

let pp ppf t =
  Format.fprintf ppf "cluster %d%s {%a}" t.id
    (if t.length_matched then " [LM]" else "")
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (v : Valve.t) -> Format.fprintf ppf "v%d" v.id))
    t.valves
