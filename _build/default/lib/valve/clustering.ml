type partition = {
  clusters : Cluster.t list;
  pin_count : int;
}

module IntSet = Set.Make (Int)

let duplicate_ids valves =
  let ids = List.map (fun (v : Valve.t) -> v.id) valves in
  let sorted = List.sort Int.compare ids in
  let rec find = function
    | a :: b :: _ when a = b -> Some a
    | _ :: rest -> find rest
    | [] -> None
  in
  find sorted

(* Greedy clique cover. Seeds come first (unchanged); the remaining valves
   are processed in decreasing order of compatibility degree and each one
   joins the first existing growable cluster it is compatible with, else
   opens a new cluster. Processing dense valves first lets the rare,
   hard-to-place sequences still find room. *)
let cluster ?(seeds = []) ?(max_cluster_size = max_int) valves =
  match duplicate_ids valves with
  | Some id -> Error (Printf.sprintf "duplicate valve id %d" id)
  | None ->
    let known = IntSet.of_list (List.map (fun (v : Valve.t) -> v.id) valves) in
    let missing_seed =
      List.concat_map Cluster.valve_ids seeds
      |> List.find_opt (fun id -> not (IntSet.mem id known))
    in
    (match missing_seed with
     | Some id -> Error (Printf.sprintf "seed cluster references unknown valve %d" id)
     | None ->
       let seed_dup =
         let ids = List.concat_map Cluster.valve_ids seeds in
         let sorted = List.sort Int.compare ids in
         let rec find = function
           | a :: b :: _ when a = b -> Some a
           | _ :: rest -> find rest
           | [] -> None
         in
         find sorted
       in
       (match seed_dup with
        | Some id -> Error (Printf.sprintf "valve %d appears in two seed clusters" id)
        | None ->
          let seeded = IntSet.of_list (List.concat_map Cluster.valve_ids seeds) in
          let free = List.filter (fun (v : Valve.t) -> not (IntSet.mem v.id seeded)) valves in
          let degree v =
            List.fold_left
              (fun acc w ->
                 if (not (Valve.equal v w)) && Valve.compatible v w then acc + 1 else acc)
              0 free
          in
          let order =
            List.sort
              (fun a b ->
                 let da = degree a and db = degree b in
                 if da <> db then Int.compare db da else Valve.compare a b)
              free
          in
          (* Growable groups: plain lists of valves; seeds are frozen. *)
          let groups = ref [] in
          let place v =
            let rec try_groups = function
              | [] -> groups := !groups @ [ ref [ v ] ]
              | g :: rest ->
                if List.length !g < max_cluster_size && List.for_all (Valve.compatible v) !g
                then g := v :: !g
                else try_groups rest
            in
            try_groups !groups
          in
          List.iter place order;
          let next_id = ref (List.fold_left (fun m (c : Cluster.t) -> max m (c.id + 1)) 0 seeds) in
          let fresh () =
            let id = !next_id in
            incr next_id;
            id
          in
          let grown =
            List.map
              (fun g -> Cluster.make_exn ~id:(fresh ()) ~length_matched:false !g)
              !groups
          in
          let clusters = seeds @ grown in
          Ok ({ clusters; pin_count = List.length clusters } : partition)))

let validate valves clusters =
  let valve_ids = List.map (fun (v : Valve.t) -> v.id) valves |> List.sort Int.compare in
  let covered = List.concat_map Cluster.valve_ids clusters |> List.sort Int.compare in
  if valve_ids <> covered then Error "clusters do not partition the valve set"
  else begin
    let bad =
      List.find_opt (fun (c : Cluster.t) -> not (Valve.pairwise_compatible c.valves)) clusters
    in
    match bad with
    | Some c -> Error (Printf.sprintf "cluster %d is not pairwise compatible" c.id)
    | None -> Ok ()
  end
