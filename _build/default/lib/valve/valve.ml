open Pacor_geom

type id = int

type t = {
  id : id;
  position : Point.t;
  sequence : Activation.sequence;
}

let make ~id ~position ~sequence = { id; position; sequence }
let compatible a b = Activation.compatible a.sequence b.sequence

let pairwise_compatible valves =
  let rec go = function
    | [] -> true
    | v :: rest -> List.for_all (compatible v) rest && go rest
  in
  go valves

let shared_sequence = function
  | [] -> None
  | v :: rest ->
    let f acc w =
      match acc with None -> None | Some s -> Activation.meet s w.sequence
    in
    List.fold_left f (Some v.sequence) rest

let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id

let pp ppf v =
  Format.fprintf ppf "v%d@%a[%a]" v.id Point.pp v.position Activation.pp_sequence v.sequence
