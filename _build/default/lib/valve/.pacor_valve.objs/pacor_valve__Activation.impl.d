lib/valve/activation.ml: Array Format Printf String
