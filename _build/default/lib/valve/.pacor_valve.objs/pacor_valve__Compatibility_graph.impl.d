lib/valve/compatibility_graph.ml: Array Clustering Format Hashtbl Valve
