lib/valve/cluster.mli: Format Pacor_geom Valve
