lib/valve/clustering.mli: Cluster Valve
