lib/valve/compatibility_graph.mli: Format Valve
