lib/valve/clustering.ml: Cluster Int List Printf Set Valve
