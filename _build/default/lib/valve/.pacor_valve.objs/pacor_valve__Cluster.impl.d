lib/valve/cluster.ml: Format List Pacor_geom Valve
