lib/valve/activation.mli: Format
