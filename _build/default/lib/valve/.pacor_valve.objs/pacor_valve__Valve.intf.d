lib/valve/valve.mli: Activation Format Pacor_geom Point
