lib/valve/valve.ml: Activation Format Int List Pacor_geom Point
