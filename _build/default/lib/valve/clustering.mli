(** Valve clustering under the broadcast addressing scheme (Sec. 3).

    Partitions the valves into the fewest possible clusters of pairwise
    compatible valves so that each cluster can share one control pin.
    Minimum clique cover is NP-complete, so — like the paper — we use a fast
    greedy heuristic.

    Clusters that arrive with the length-matching constraint are kept intact
    and act as seeds; remaining valves are only merged into a cluster when
    compatible with {e all} of its members. *)

type partition = {
  clusters : Cluster.t list;
  pin_count : int;  (** = number of clusters: one control pin per cluster *)
}

val cluster :
  ?seeds:Cluster.t list ->
  ?max_cluster_size:int ->
  Valve.t list ->
  (partition, string) result
(** [cluster ~seeds valves] partitions [valves]. Every valve of a seed
    cluster must appear in [valves]; seed clusters keep their identity and
    flag. [max_cluster_size] (default unbounded) caps cluster growth, which
    models limited pressure-source fan-out. Errors on duplicate valve ids or
    on a seed referencing an unknown valve. *)

val validate : Valve.t list -> Cluster.t list -> (unit, string) result
(** Check that the clusters exactly partition the valves and that every
    cluster is internally compatible. *)
