open Pacor_geom
open Pacor_grid
open Pacor_valve

let to_string (p : Problem.t) =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  add "# PACOR control-layer routing instance";
  add "name %s" p.name;
  add "grid %d %d" (Routing_grid.width p.grid) (Routing_grid.height p.grid);
  add "delta %d" p.delta;
  (* Obstacles are stored cell by cell: rectangles are a convenience of the
     input format only. *)
  Obstacle_map.iter_blocked (Routing_grid.obstacles p.grid) (fun (pt : Point.t) ->
    add "obstacle %d %d %d %d" pt.x pt.y pt.x pt.y);
  List.iter
    (fun (v : Valve.t) ->
       add "valve %d %d %d %s" v.id v.position.x v.position.y
         (Activation.string_of_sequence v.sequence))
    p.valves;
  List.iter
    (fun (c : Cluster.t) ->
       add "cluster %d %s" c.id
         (String.concat " " (List.map string_of_int (Cluster.valve_ids c))))
    p.lm_clusters;
  List.iter (fun (pt : Point.t) -> add "pin %d %d" pt.x pt.y) p.pins;
  Buffer.contents buf

type accum = {
  mutable name : string;
  mutable dims : (int * int) option;
  mutable delta : int;
  mutable obstacles : Rect.t list;
  mutable valves : Valve.t list;
  mutable clusters : (int * int list) list;
  mutable pins : Point.t list;
}

let of_string text =
  let acc =
    { name = "unnamed"; dims = None; delta = 1; obstacles = []; valves = [];
      clusters = []; pins = [] }
  in
  let err line fmt = Format.kasprintf (fun s -> Error (Printf.sprintf "line %d: %s" line s)) fmt in
  let parse_int line s =
    match int_of_string_opt s with
    | Some v -> Ok v
    | None -> err line "expected integer, got %S" s
  in
  let rec ints line = function
    | [] -> Ok []
    | s :: rest ->
      (match parse_int line s with
       | Error _ as e -> e
       | Ok v -> (match ints line rest with Ok vs -> Ok (v :: vs) | Error _ as e -> e))
  in
  let handle lineno line =
    let line =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    match String.split_on_char ' ' (String.trim line) |> List.filter (fun s -> s <> "") with
    | [] -> Ok ()
    | "name" :: rest ->
      acc.name <- String.concat " " rest;
      Ok ()
    | [ "grid"; w; h ] ->
      (match ints lineno [ w; h ] with
       | Ok [ w; h ] ->
         acc.dims <- Some (w, h);
         Ok ()
       | Ok _ -> assert false
       | Error e -> Error e)
    | [ "delta"; d ] ->
      (match parse_int lineno d with
       | Ok d ->
         acc.delta <- d;
         Ok ()
       | Error e -> Error e)
    | [ "obstacle"; x0; y0; x1; y1 ] ->
      (match ints lineno [ x0; y0; x1; y1 ] with
       | Ok [ x0; y0; x1; y1 ] ->
         acc.obstacles <- Rect.make ~x0 ~y0 ~x1 ~y1 :: acc.obstacles;
         Ok ()
       | Ok _ -> assert false
       | Error e -> Error e)
    | [ "valve"; id; x; y; seq ] ->
      (match ints lineno [ id; x; y ] with
       | Ok [ id; x; y ] ->
         (match Activation.sequence_of_string seq with
          | Ok sequence ->
            acc.valves <-
              Valve.make ~id ~position:(Point.make x y) ~sequence :: acc.valves;
            Ok ()
          | Error e -> err lineno "%s" e)
       | Ok _ -> assert false
       | Error e -> Error e)
    | "cluster" :: id :: members ->
      (match ints lineno (id :: members) with
       | Ok (id :: members) ->
         acc.clusters <- (id, members) :: acc.clusters;
         Ok ()
       | Ok [] -> assert false
       | Error e -> Error e)
    | [ "pin"; x; y ] ->
      (match ints lineno [ x; y ] with
       | Ok [ x; y ] ->
         acc.pins <- Point.make x y :: acc.pins;
         Ok ()
       | Ok _ -> assert false
       | Error e -> Error e)
    | keyword :: _ -> err lineno "unknown or malformed directive %S" keyword
  in
  let lines = String.split_on_char '\n' text in
  let rec run lineno = function
    | [] -> Ok ()
    | l :: rest ->
      (match handle lineno l with Ok () -> run (lineno + 1) rest | Error _ as e -> e)
  in
  match run 1 lines with
  | Error _ as e -> e
  | Ok () ->
    (match acc.dims with
     | None -> Error "missing 'grid' directive"
     | Some (width, height) ->
       let grid =
         Routing_grid.create ~width ~height ~obstacles:(List.rev acc.obstacles) ()
       in
       let valves = List.rev acc.valves in
       let find_valve id = List.find_opt (fun (v : Valve.t) -> v.id = id) valves in
       let rec build_clusters = function
         | [] -> Ok []
         | (id, members) :: rest ->
           let vs = List.filter_map find_valve members in
           if List.length vs <> List.length members then
             Error (Printf.sprintf "cluster %d references an unknown valve" id)
           else
             (match Cluster.make ~id ~length_matched:true vs with
              | Error e -> Error (Printf.sprintf "cluster %d: %s" id e)
              | Ok c ->
                (match build_clusters rest with
                 | Ok cs -> Ok (c :: cs)
                 | Error _ as e -> e))
       in
       (match build_clusters (List.rev acc.clusters) with
        | Error _ as e -> e
        | Ok lm_clusters ->
          Problem.create ~name:acc.name ~grid ~valves ~lm_clusters
            ~pins:(List.rev acc.pins) ~delta:acc.delta ()))

let save p ~path =
  try
    let oc = open_out path in
    output_string oc (to_string p);
    close_out oc;
    Ok ()
  with Sys_error e -> Error e

let load ~path =
  try
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    of_string s
  with Sys_error e -> Error e
