(** The PACOR flow of Fig. 2, end to end:

    valve clustering -> length-matching cluster routing (DME candidates,
    MWCP selection, negotiated routing) -> MST routing of ordinary clusters
    -> min-cost-flow escape routing with rip-up / declustering -> final path
    detouring for length matching.

    The [Detour_first] variant runs the detour stage between negotiation and
    escape instead; [Without_selection] skips the MWCP selection. *)

type error = {
  stage : string;
  message : string;
}

val run : ?config:Config.t -> Problem.t -> (Solution.t, error) result
(** Routes the instance. Structural failures (malformed escape inputs)
    surface as [Error]; congestion never does — unrouted valves and
    unmatched clusters simply show up in the solution's statistics and in
    {!Solution.validate}. *)
