(** ASCII rendering of problems and solutions, for examples and debugging.

    Legend: ['#'] obstacle, ['V'] valve, ['P'] unused candidate pin,
    ['@'] pin in use, digits/letters cluster channels (one symbol per
    cluster, cycling), ['.'] free cell. Row [height-1] prints first (the
    chip as drawn, y up). *)

val problem : Problem.t -> string
val solution : Solution.t -> string
