(** Internal representation of a cluster's routed channels, threaded through
    the flow stages (cluster routing -> escape -> detour). *)

open Pacor_geom
open Pacor_grid
open Pacor_valve
open Pacor_dme

(** How a length-matched cluster was internally connected. *)
type lm_shape =
  | Tree of {
      candidate : Candidate.t;
      edge_paths : (int * Path.t) list;
          (** routed path per non-trivial tree edge, keyed by the {e child}
              node id of {!Candidate.t.nodes}; path runs parent -> child *)
    }
  | Pair of { path : Path.t; a : Valve.id; b : Valve.id }
      (** two-valve cluster: the direct channel, [source path = valve a] *)

type t = {
  cluster : Cluster.t;
  shape : lm_shape option;  (** [None] for ordinary (MST / singleton) routes *)
  paths : Path.t list;      (** every internal channel path *)
  claimed : Point.Set.t;    (** all internal cells incl. valve positions *)
}

val make_plain : Cluster.t -> paths:Path.t list -> claimed:Point.Set.t -> t
val make_tree : Cluster.t -> candidate:Candidate.t -> edge_paths:(int * Path.t) list -> t
val make_pair : Cluster.t -> a:Valve.id -> b:Valve.id -> path:Path.t -> t
val make_singleton : Cluster.t -> t
(** Single-valve cluster: no internal channel, claims the valve cell. *)

val internal_length : t -> int
(** Total internal channel length (edges). *)

val start_cells : t -> Point.t list
(** Escape-routing start cells per Sec. 5: tree root for [Tree], middle
    point for [Pair], every claimed cell for ordinary clusters, the valve
    cell for singletons. *)

val escape_anchor_lengths : t -> (Valve.id * int) list
(** For each valve, the routed channel length from the valve to the escape
    start cell (the lengths whose spread the length-matching constraint
    bounds, before adding the common escape path). For ordinary clusters
    this is meaningless and returns []. *)

val is_length_matched_shape : t -> bool
(** The cluster is still being routed under the length-matching regime. *)

val spread : t -> int option
(** [max - min] of {!escape_anchor_lengths}; [None] for ordinary routes. *)

val with_edge_path : t -> child:int -> Path.t -> t
(** Replace one tree-edge path (the detour stage's update). Recomputes
    [paths] and [claimed]. Raises on ordinary routes. *)

val pair_halves : t -> (int * int) option
(** For a [Pair]: the two leg lengths around the middle start cell. *)
