lib/core/render.mli: Problem Solution
