lib/core/detour_stage.mli: Pacor_geom Pacor_grid Point Routed Routing_grid
