lib/core/plain_route.mli: Cluster Pacor_geom Pacor_grid Pacor_valve Point Routed Routing_grid
