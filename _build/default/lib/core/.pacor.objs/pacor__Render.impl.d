lib/core/render.ml: Array Buffer List Obstacle_map Pacor_flow Pacor_geom Pacor_grid Pacor_valve Path Point Problem Routed Routing_grid Solution String Valve
