lib/core/routed.ml: Array Candidate Cluster List Option Pacor_dme Pacor_geom Pacor_grid Pacor_valve Path Point Valve
