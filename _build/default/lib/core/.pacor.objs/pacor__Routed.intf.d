lib/core/routed.mli: Candidate Cluster Pacor_dme Pacor_geom Pacor_grid Pacor_valve Path Point Valve
