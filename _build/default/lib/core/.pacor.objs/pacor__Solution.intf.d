lib/core/solution.mli: Config Format Pacor_flow Pacor_valve Problem Routed Valve
