lib/core/solution.ml: Cluster Config Format Hashtbl Int List Obstacle_map Pacor_flow Pacor_geom Pacor_grid Pacor_valve Path Point Problem Routed Routing_grid Valve
