lib/core/escape_stage.ml: Hashtbl List Pacor_flow Pacor_geom Pacor_valve Point Routed
