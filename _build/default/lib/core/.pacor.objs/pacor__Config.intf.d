lib/core/config.mli: Format Pacor_route Pacor_select
