lib/core/escape_stage.mli: Pacor_flow Pacor_geom Pacor_grid Point Routed Routing_grid
