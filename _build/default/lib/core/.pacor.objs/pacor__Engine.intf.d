lib/core/engine.mli: Config Problem Solution
