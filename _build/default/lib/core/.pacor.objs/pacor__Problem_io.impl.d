lib/core/problem_io.ml: Activation Buffer Cluster Format List Obstacle_map Pacor_geom Pacor_grid Pacor_valve Point Printf Problem Rect Routing_grid String Valve
