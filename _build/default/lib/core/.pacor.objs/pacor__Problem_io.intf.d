lib/core/problem_io.mli: Problem
