lib/core/problem.mli: Cluster Design_rules Format Pacor_geom Pacor_grid Pacor_valve Point Routing_grid Valve
