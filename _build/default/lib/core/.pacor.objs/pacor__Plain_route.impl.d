lib/core/plain_route.ml: Cluster Int List Obstacle_map Pacor_geom Pacor_grid Pacor_route Pacor_valve Point Routed Routing_grid
