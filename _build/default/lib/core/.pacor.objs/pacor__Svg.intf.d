lib/core/svg.mli: Problem Solution
