lib/core/cluster_route.ml: Candidate Cluster Config Int List Obstacle_map Pacor_dme Pacor_geom Pacor_grid Pacor_route Pacor_select Pacor_valve Path Point Routed Routing_grid Valve
