lib/core/problem.ml: Cluster Design_rules Format Int List Obstacle_map Pacor_geom Pacor_grid Pacor_valve Point Routing_grid Valve
