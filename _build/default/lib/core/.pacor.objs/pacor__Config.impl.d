lib/core/config.ml: Format Pacor_route Pacor_select
