lib/core/cluster_route.mli: Cluster Config Obstacle_map Pacor_dme Pacor_geom Pacor_grid Pacor_valve Point Routed Routing_grid
