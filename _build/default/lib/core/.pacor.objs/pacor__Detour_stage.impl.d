lib/core/detour_stage.ml: Array Candidate Hashtbl Int List Obstacle_map Option Pacor_dme Pacor_geom Pacor_grid Pacor_route Pacor_valve Path Point Routed Routing_grid
