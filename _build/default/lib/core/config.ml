type variant =
  | Full
  | Without_selection
  | Detour_first

type t = {
  variant : variant;
  lambda : float;
  max_candidates : int;
  solver : Pacor_select.Tree_select.solver;
  negotiation : Pacor_route.Negotiation.config;
  theta : int;
  max_ripup_rounds : int;
  verbose : bool;
}

let default =
  {
    variant = Full;
    lambda = 0.1;
    max_candidates = 8;
    solver = Pacor_select.Tree_select.Exact;
    negotiation = Pacor_route.Negotiation.default_config;
    theta = 10;
    max_ripup_rounds = 10;
    verbose = false;
  }

let make ?(variant = Full) () = { default with variant }

let variant_name = function
  | Full -> "PACOR"
  | Without_selection -> "w/o Sel"
  | Detour_first -> "Detour First"

let pp ppf t =
  Format.fprintf ppf "%s (lambda=%.2f cand=%d gamma=%d theta=%d)"
    (variant_name t.variant) t.lambda t.max_candidates t.negotiation.gamma t.theta
