open Pacor_geom


type assignment = {
  routed : Routed.t;
  escape : Pacor_flow.Escape.routed option;
}

type outcome = {
  assignments : assignment list;
  failed_clusters : int list;
  escape_length : int;
}

let run ~grid ~pins routed_clusters =
  let claimed =
    List.fold_left
      (fun acc (r : Routed.t) -> Point.Set.union acc r.claimed)
      Point.Set.empty routed_clusters
  in
  let requests =
    List.mapi
      (fun i (r : Routed.t) ->
         { Pacor_flow.Escape.cluster_idx = i; start_cells = Routed.start_cells r })
      routed_clusters
  in
  match Pacor_flow.Escape.route ~grid ~claimed ~pins requests with
  | Error _ as e -> e
  | Ok out ->
    let by_idx = Hashtbl.create 16 in
    List.iter
      (fun (r : Pacor_flow.Escape.routed) -> Hashtbl.replace by_idx r.idx r)
      out.routed;
    let assignments =
      List.mapi
        (fun i r -> { routed = r; escape = Hashtbl.find_opt by_idx i })
        routed_clusters
    in
    let failed_clusters =
      List.filter_map
        (fun a ->
           if a.escape = None then Some a.routed.Routed.cluster.Pacor_valve.Cluster.id
           else None)
        assignments
    in
    Ok { assignments; failed_clusters; escape_length = out.total_length }
