(** SVG rendering of problems and solutions.

    Produces a standalone SVG drawing of the control layer: obstacles,
    valves, candidate and used pins, one colour per cluster for internal
    channels, and dashed escape channels. Intended for design review — the
    ASCII renderer ({!Render}) is for terminals and tests. *)

val problem : Problem.t -> string
(** The unrouted chip. *)

val solution : Solution.t -> string
(** The routed chip with channels coloured per cluster. *)

val save_solution : Solution.t -> path:string -> (unit, string) result
