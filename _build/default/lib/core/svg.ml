open Pacor_geom
open Pacor_grid
open Pacor_valve

let cell = 12 (* pixels per grid cell *)

let palette =
  [| "#4e79a7"; "#f28e2b"; "#59a14f"; "#e15759"; "#76b7b2"; "#edc948";
     "#b07aa1"; "#ff9da7"; "#9c755f"; "#bab0ac" |]

let buffer_add_header buf ~width ~height =
  Printf.bprintf buf
    {|<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">|}
    (width * cell) (height * cell) (width * cell) (height * cell);
  Buffer.add_char buf '\n';
  Printf.bprintf buf
    {|<rect width="%d" height="%d" fill="#fcfcf8" stroke="#333" stroke-width="1"/>|}
    (width * cell) (height * cell);
  Buffer.add_char buf '\n'

(* Grid y grows upward; SVG y grows downward. *)
let px ~height (p : Point.t) = (p.x * cell, (height - 1 - p.y) * cell)

let add_cell buf ~height ?(inset = 0) ~fill (p : Point.t) =
  let x, y = px ~height p in
  Printf.bprintf buf {|<rect x="%d" y="%d" width="%d" height="%d" fill="%s"/>|}
    (x + inset) (y + inset) (cell - (2 * inset)) (cell - (2 * inset)) fill;
  Buffer.add_char buf '\n'

let add_path buf ~height ~colour ?(dashed = false) path =
  let pts =
    Path.points path
    |> List.map (fun p ->
      let x, y = px ~height p in
      Printf.sprintf "%d,%d" (x + (cell / 2)) (y + (cell / 2)))
    |> String.concat " "
  in
  Printf.bprintf buf
    {|<polyline points="%s" fill="none" stroke="%s" stroke-width="%d"%s stroke-linecap="round" stroke-linejoin="round"/>|}
    pts colour (cell / 3)
    (if dashed then {| stroke-dasharray="6,4"|} else "");
  Buffer.add_char buf '\n'

let add_base buf (p : Problem.t) =
  let height = Routing_grid.height p.grid in
  Obstacle_map.iter_blocked (Routing_grid.obstacles p.grid) (fun pt ->
    add_cell buf ~height ~fill:"#555" pt);
  List.iter (fun pin -> add_cell buf ~height ~inset:2 ~fill:"#cccccc" pin) p.pins

let add_valves buf (p : Problem.t) =
  let height = Routing_grid.height p.grid in
  List.iter
    (fun (v : Valve.t) ->
       let x, y = px ~height v.position in
       Printf.bprintf buf
         {|<circle cx="%d" cy="%d" r="%d" fill="#222" stroke="#fff" stroke-width="1"/>|}
         (x + (cell / 2)) (y + (cell / 2)) (cell / 3);
       Buffer.add_char buf '\n')
    p.valves

let problem (p : Problem.t) =
  let buf = Buffer.create 4096 in
  buffer_add_header buf ~width:(Routing_grid.width p.grid) ~height:(Routing_grid.height p.grid);
  add_base buf p;
  add_valves buf p;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let solution (s : Solution.t) =
  let p = s.problem in
  let height = Routing_grid.height p.grid in
  let buf = Buffer.create 8192 in
  buffer_add_header buf ~width:(Routing_grid.width p.grid) ~height;
  add_base buf p;
  List.iteri
    (fun i (rc : Solution.routed_cluster) ->
       let colour = palette.(i mod Array.length palette) in
       List.iter
         (fun path -> if not (Path.is_trivial path) then add_path buf ~height ~colour path)
         rc.routed.Routed.paths;
       match rc.escape with
       | Some e ->
         add_path buf ~height ~colour ~dashed:true e.Pacor_flow.Escape.path;
         add_cell buf ~height ~inset:2 ~fill:colour e.Pacor_flow.Escape.pin
       | None -> ())
    s.clusters;
  add_valves buf p;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let save_solution s ~path =
  try
    let oc = open_out path in
    output_string oc (solution s);
    close_out oc;
    Ok ()
  with Sys_error e -> Error e
