open Pacor_geom
open Pacor_grid
open Pacor_valve

let cluster_symbols = "0123456789abcdefghijklmnopqrstuvwxyz"

let base_canvas (p : Problem.t) =
  let w = Routing_grid.width p.grid and h = Routing_grid.height p.grid in
  let canvas = Array.make_matrix h w '.' in
  Obstacle_map.iter_blocked (Routing_grid.obstacles p.grid) (fun (pt : Point.t) ->
    canvas.(pt.y).(pt.x) <- '#');
  List.iter (fun (pt : Point.t) -> canvas.(pt.y).(pt.x) <- 'P') p.pins;
  List.iter (fun (v : Valve.t) -> canvas.(v.position.y).(v.position.x) <- 'V') p.valves;
  canvas

let to_string canvas =
  let h = Array.length canvas in
  let buf = Buffer.create (h * (Array.length canvas.(0) + 1)) in
  for y = h - 1 downto 0 do
    Array.iter (Buffer.add_char buf) canvas.(y);
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let problem p = to_string (base_canvas p)

let solution (s : Solution.t) =
  let canvas = base_canvas s.problem in
  let draw ch (pt : Point.t) =
    match canvas.(pt.y).(pt.x) with
    | 'V' | '@' -> ()
    | _ -> canvas.(pt.y).(pt.x) <- ch
  in
  List.iteri
    (fun i (rc : Solution.routed_cluster) ->
       let ch = cluster_symbols.[i mod String.length cluster_symbols] in
       List.iter
         (fun path -> List.iter (draw ch) (Path.points path))
         rc.routed.Routed.paths;
       match rc.escape with
       | None -> ()
       | Some e ->
         List.iter (draw ch) (Path.points e.Pacor_flow.Escape.path);
         let pin = e.Pacor_flow.Escape.pin in
         canvas.(pin.y).(pin.x) <- '@')
    s.clusters;
  to_string canvas
