(** Dinic's maximum-flow algorithm.

    Used as an independent feasibility oracle: the maximum number of
    escape paths that {e any} assignment could route equals the max flow of
    the escape network with costs ignored. The rip-up loop's outcome can be
    compared against this bound, and the min-cost solver's flow value is
    cross-checked against it in tests. *)

type t

val create : int -> t
(** [create n] makes an empty network on nodes [0 .. n-1]. *)

val add_edge : t -> src:int -> dst:int -> cap:int -> unit
(** Directed edge with non-negative capacity. *)

val max_flow : t -> source:int -> sink:int -> int
(** Computes the maximum flow (destructive; call once). *)

val min_cut_reachable : t -> source:int -> bool array
(** After {!max_flow}: which nodes remain reachable from the source in the
    residual graph — the source side of a minimum cut. *)
