(** Reference min-cost max-flow via SPFA (Bellman–Ford queue) augmentation.

    Slower than {!Mcmf}'s Dijkstra-with-potentials but simpler, and it
    accepts negative edge costs without any preprocessing. It exists as an
    independent implementation to cross-check {!Mcmf} in the property
    tests — two solvers agreeing on random networks is the strongest
    correctness evidence we can build offline. *)

type t

val create : int -> t
val add_edge : t -> src:int -> dst:int -> cap:int -> cost:int -> unit

type outcome = {
  flow : int;
  cost : int;
}

val solve : ?flow_target:int -> ?stop_when_cost_reaches:int -> t -> source:int -> sink:int -> outcome
(** Same contract as {!Mcmf.solve}. *)
