lib/flow/escape.ml: Array Format Hashtbl List Maxflow Mcmf Pacor_geom Pacor_grid Path Point Routing_grid
