lib/flow/mcmf_spfa.mli:
