lib/flow/maxflow.mli:
