lib/flow/mcmf_spfa.ml: Array Queue
