lib/flow/mcmf.ml: Array List Pacor_graphs
