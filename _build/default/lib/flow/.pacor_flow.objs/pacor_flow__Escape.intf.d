lib/flow/escape.mli: Pacor_geom Pacor_grid Path Point Routing_grid
