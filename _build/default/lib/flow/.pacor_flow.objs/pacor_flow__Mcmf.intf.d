lib/flow/mcmf.mli:
