(* Dinic: BFS level graph + DFS blocking flows. Same compact adjacency
   encoding as {!Mcmf} (edge i's reverse is i lxor 1). *)
type t = {
  n : int;
  head : int array;
  mutable next_edge : int array;
  mutable dst : int array;
  mutable cap : int array;
  mutable edge_count : int;
  mutable solved : bool;
}

let create n =
  if n <= 0 then invalid_arg "Maxflow.create: need at least one node";
  {
    n;
    head = Array.make n (-1);
    next_edge = [||];
    dst = [||];
    cap = [||];
    edge_count = 0;
    solved = false;
  }

let grow t =
  let cur = Array.length t.dst in
  if t.edge_count + 2 > cur then begin
    let ncap = max 64 (2 * cur) in
    let extend a fill =
      let b = Array.make ncap fill in
      Array.blit a 0 b 0 cur;
      b
    in
    t.next_edge <- extend t.next_edge (-1);
    t.dst <- extend t.dst 0;
    t.cap <- extend t.cap 0
  end

let push_edge t ~src ~dst ~cap =
  let i = t.edge_count in
  t.next_edge.(i) <- t.head.(src);
  t.head.(src) <- i;
  t.dst.(i) <- dst;
  t.cap.(i) <- cap;
  t.edge_count <- i + 1

let add_edge t ~src ~dst ~cap =
  if cap < 0 then invalid_arg "Maxflow.add_edge: negative capacity";
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Maxflow.add_edge: bad node";
  if t.solved then invalid_arg "Maxflow.add_edge: network already solved";
  grow t;
  push_edge t ~src ~dst ~cap;
  push_edge t ~src:dst ~dst:src ~cap:0

let max_flow t ~source ~sink =
  if t.solved then invalid_arg "Maxflow.max_flow: already solved";
  t.solved <- true;
  let level = Array.make t.n (-1) in
  let iter = Array.make t.n (-1) in
  let queue = Queue.create () in
  let bfs () =
    Array.fill level 0 t.n (-1);
    Queue.clear queue;
    level.(source) <- 0;
    Queue.push source queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      let e = ref t.head.(u) in
      while !e >= 0 do
        let i = !e in
        let v = t.dst.(i) in
        if t.cap.(i) > 0 && level.(v) < 0 then begin
          level.(v) <- level.(u) + 1;
          Queue.push v queue
        end;
        e := t.next_edge.(i)
      done
    done;
    level.(sink) >= 0
  in
  let rec dfs u pushed =
    if u = sink then pushed
    else begin
      let result = ref 0 in
      while !result = 0 && iter.(u) >= 0 do
        let i = iter.(u) in
        let v = t.dst.(i) in
        if t.cap.(i) > 0 && level.(v) = level.(u) + 1 then begin
          let got = dfs v (min pushed t.cap.(i)) in
          if got > 0 then begin
            t.cap.(i) <- t.cap.(i) - got;
            t.cap.(i lxor 1) <- t.cap.(i lxor 1) + got;
            result := got
          end
          else iter.(u) <- t.next_edge.(i)
        end
        else iter.(u) <- t.next_edge.(i)
      done;
      !result
    end
  in
  let flow = ref 0 in
  while bfs () do
    Array.blit t.head 0 iter 0 t.n;
    let rec pump () =
      let got = dfs source max_int in
      if got > 0 then begin
        flow := !flow + got;
        pump ()
      end
    in
    pump ()
  done;
  !flow

let min_cut_reachable t ~source =
  let seen = Array.make t.n false in
  let rec go u =
    if not seen.(u) then begin
      seen.(u) <- true;
      let e = ref t.head.(u) in
      while !e >= 0 do
        let i = !e in
        if t.cap.(i) > 0 then go t.dst.(i);
        e := t.next_edge.(i)
      done
    end
  in
  go source;
  seen
