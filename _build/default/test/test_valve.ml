open Pacor_geom
open Pacor_valve

let seq s =
  match Activation.sequence_of_string s with
  | Ok x -> x
  | Error e -> Alcotest.failf "bad sequence %S: %s" s e

let mk_valve id x y s = Valve.make ~id ~position:(Point.make x y) ~sequence:(seq s)

(* ---------- Activation ---------- *)

let test_status_compat () =
  let open Activation in
  Alcotest.(check bool) "0~0" true (status_compatible Open Open);
  Alcotest.(check bool) "1~1" true (status_compatible Closed Closed);
  Alcotest.(check bool) "0~1" false (status_compatible Open Closed);
  Alcotest.(check bool) "X~0" true (status_compatible Dont_care Open);
  Alcotest.(check bool) "1~X" true (status_compatible Closed Dont_care);
  Alcotest.(check bool) "X~X" true (status_compatible Dont_care Dont_care)

let test_status_meet () =
  let open Activation in
  Alcotest.(check bool) "meet X 0 = 0" true (status_meet Dont_care Open = Some Open);
  Alcotest.(check bool) "meet 1 X = 1" true (status_meet Closed Dont_care = Some Closed);
  Alcotest.(check bool) "meet 0 1 = None" true (status_meet Open Closed = None)

let test_sequence_parse () =
  Alcotest.(check string) "roundtrip" "01X01"
    (Activation.string_of_sequence (seq "01X01"));
  Alcotest.(check bool) "lowercase x ok" true
    (Result.is_ok (Activation.sequence_of_string "0x1"));
  Alcotest.(check bool) "bad char" true
    (Result.is_error (Activation.sequence_of_string "012"));
  Alcotest.(check bool) "empty" true (Result.is_error (Activation.sequence_of_string ""))

let test_sequence_compat () =
  Alcotest.(check bool) "compatible with X" true (Activation.compatible (seq "0X1") (seq "001"));
  Alcotest.(check bool) "conflict" false (Activation.compatible (seq "01") (seq "00"));
  Alcotest.(check bool) "different lengths" false
    (Activation.compatible (seq "01") (seq "010"))

let test_sequence_meet () =
  (match Activation.meet (seq "0X1X") (seq "X011") with
   | Some m -> Alcotest.(check string) "meet" "0011" (Activation.string_of_sequence m)
   | None -> Alcotest.fail "expected meet");
  Alcotest.(check bool) "conflicting meet" true (Activation.meet (seq "0") (seq "1") = None)

let test_all_dont_care () =
  let s = Activation.all_dont_care 4 in
  Alcotest.(check string) "XXXX" "XXXX" (Activation.string_of_sequence s);
  Alcotest.(check bool) "compatible with anything" true (Activation.compatible s (seq "0101"))

(* ---------- Valve ---------- *)

let test_valve_compat () =
  let a = mk_valve 0 1 1 "0X" and b = mk_valve 1 2 2 "00" and c = mk_valve 2 3 3 "11" in
  Alcotest.(check bool) "a~b" true (Valve.compatible a b);
  Alcotest.(check bool) "a~c" false (Valve.compatible a c);
  Alcotest.(check bool) "pairwise" true (Valve.pairwise_compatible [ a; b ]);
  Alcotest.(check bool) "pairwise fail" false (Valve.pairwise_compatible [ a; b; c ])

let test_shared_sequence () =
  let a = mk_valve 0 1 1 "0X" and b = mk_valve 1 2 2 "X1" in
  (match Valve.shared_sequence [ a; b ] with
   | Some s -> Alcotest.(check string) "shared" "01" (Activation.string_of_sequence s)
   | None -> Alcotest.fail "expected shared sequence");
  Alcotest.(check bool) "empty list" true (Valve.shared_sequence [] = None)

(* ---------- Cluster ---------- *)

let test_cluster_make () =
  let a = mk_valve 0 1 1 "0X" and b = mk_valve 1 2 2 "00" in
  (match Cluster.make ~id:0 ~length_matched:true [ b; a ] with
   | Ok c ->
     Alcotest.(check (list int)) "sorted ids" [ 0; 1 ] (Cluster.valve_ids c);
     Alcotest.(check bool) "needs matching" true (Cluster.needs_matching c)
   | Error e -> Alcotest.failf "unexpected error: %s" e);
  Alcotest.(check bool) "empty rejected" true
    (Result.is_error (Cluster.make ~id:0 ~length_matched:false []));
  let dup = mk_valve 0 9 9 "0X" in
  Alcotest.(check bool) "duplicate id rejected" true
    (Result.is_error (Cluster.make ~id:0 ~length_matched:false [ a; dup ]));
  let same_pos = mk_valve 5 1 1 "0X" in
  Alcotest.(check bool) "same position rejected" true
    (Result.is_error (Cluster.make ~id:0 ~length_matched:false [ a; same_pos ]));
  let c = mk_valve 2 3 3 "11" in
  Alcotest.(check bool) "incompatible rejected" true
    (Result.is_error (Cluster.make ~id:0 ~length_matched:false [ a; c ]))

let test_cluster_split () =
  let a = mk_valve 0 1 1 "0X" and b = mk_valve 1 2 2 "00" in
  let c = Cluster.make_exn ~id:7 ~length_matched:true [ a; b ] in
  let counter = ref 100 in
  let fresh () = incr counter; !counter in
  let singles = Cluster.split c ~fresh_id:fresh in
  Alcotest.(check int) "two singles" 2 (List.length singles);
  List.iter
    (fun (s : Cluster.t) ->
       Alcotest.(check int) "size 1" 1 (Cluster.size s);
       Alcotest.(check bool) "not LM" false s.length_matched)
    singles

let test_singleton_not_matching () =
  let a = mk_valve 0 1 1 "0X" in
  let c = Cluster.make_exn ~id:0 ~length_matched:true [ a ] in
  Alcotest.(check bool) "singleton never needs matching" false (Cluster.needs_matching c)

(* ---------- Clustering ---------- *)

let test_clustering_partition () =
  (* Three mutually compatible valves and one conflicting one. *)
  let vs =
    [ mk_valve 0 1 1 "0X"; mk_valve 1 2 2 "00"; mk_valve 2 3 3 "0X"; mk_valve 3 4 4 "11" ]
  in
  match Clustering.cluster vs with
  | Error e -> Alcotest.failf "clustering failed: %s" e
  | Ok p ->
    Alcotest.(check bool) "valid partition" true (Clustering.validate vs p.clusters = Ok ());
    Alcotest.(check int) "two clusters" 2 p.pin_count

let test_clustering_seeds_frozen () =
  let a = mk_valve 0 1 1 "00" and b = mk_valve 1 2 2 "00" in
  let c = mk_valve 2 3 3 "00" in
  let seed = Cluster.make_exn ~id:0 ~length_matched:true [ a; b ] in
  match Clustering.cluster ~seeds:[ seed ] [ a; b; c ] with
  | Error e -> Alcotest.failf "clustering failed: %s" e
  | Ok p ->
    (* c is compatible with the seed but must not join it. *)
    let seed_out = List.find (fun (cl : Cluster.t) -> cl.id = 0) p.clusters in
    Alcotest.(check (list int)) "seed intact" [ 0; 1 ] (Cluster.valve_ids seed_out);
    Alcotest.(check int) "two clusters" 2 (List.length p.clusters)

let test_clustering_max_size () =
  let vs = List.init 6 (fun i -> mk_valve i (i + 1) (i + 1) "00") in
  match Clustering.cluster ~max_cluster_size:2 vs with
  | Error e -> Alcotest.failf "clustering failed: %s" e
  | Ok p ->
    Alcotest.(check bool) "all clusters within cap" true
      (List.for_all (fun c -> Cluster.size c <= 2) p.clusters);
    Alcotest.(check int) "three clusters" 3 (List.length p.clusters)

let test_clustering_errors () =
  let a = mk_valve 0 1 1 "00" in
  let dup = mk_valve 0 2 2 "00" in
  Alcotest.(check bool) "duplicate ids" true (Result.is_error (Clustering.cluster [ a; dup ]));
  let ghost = mk_valve 9 9 9 "00" in
  let seed = Cluster.make_exn ~id:0 ~length_matched:true [ a; ghost ] in
  Alcotest.(check bool) "unknown seed valve" true
    (Result.is_error (Clustering.cluster ~seeds:[ seed ] [ a ]))

let test_clustering_validate_rejects () =
  let a = mk_valve 0 1 1 "00" and b = mk_valve 1 2 2 "00" in
  let c0 = Cluster.make_exn ~id:0 ~length_matched:false [ a ] in
  Alcotest.(check bool) "missing valve detected" true
    (Result.is_error (Clustering.validate [ a; b ] [ c0 ]))

(* ---------- QCheck ---------- *)

let arb_status =
  QCheck.oneofl [ Activation.Open; Activation.Closed; Activation.Dont_care ]

let arb_sequence =
  QCheck.map Array.of_list (QCheck.list_of_size (QCheck.Gen.return 6) arb_status)

let prop_compat_reflexive =
  QCheck.Test.make ~name:"compatibility reflexive" ~count:200 arb_sequence (fun s ->
    Activation.compatible s s)

let prop_compat_symmetric =
  QCheck.Test.make ~name:"compatibility symmetric" ~count:200
    (QCheck.pair arb_sequence arb_sequence)
    (fun (a, b) -> Activation.compatible a b = Activation.compatible b a)

let prop_meet_compatible_with_both =
  QCheck.Test.make ~name:"meet compatible with operands" ~count:200
    (QCheck.pair arb_sequence arb_sequence)
    (fun (a, b) ->
       match Activation.meet a b with
       | None -> not (Activation.compatible a b)
       | Some m -> Activation.compatible m a && Activation.compatible m b)

let prop_clustering_partitions =
  (* Random valves with random short sequences: the greedy clustering must
     always produce a valid partition into compatible cliques. *)
  let arb_valves =
    QCheck.map
      (fun seqs ->
         List.mapi
           (fun i s -> Valve.make ~id:i ~position:(Point.make i (2 * i)) ~sequence:s)
           seqs)
      (QCheck.list_of_size QCheck.Gen.(int_range 1 12) arb_sequence)
  in
  QCheck.Test.make ~name:"greedy clustering yields valid partition" ~count:100 arb_valves
    (fun vs ->
       match Clustering.cluster vs with
       | Error _ -> false
       | Ok p -> Clustering.validate vs p.clusters = Ok ())


(* ---------- Compatibility graph ---------- *)

let test_graph_basics () =
  let vs =
    [ mk_valve 0 1 1 "0X"; mk_valve 1 2 2 "00"; mk_valve 2 3 3 "11"; mk_valve 3 4 4 "X1" ]
  in
  let g = Compatibility_graph.build vs in
  Alcotest.(check int) "valves" 4 (Compatibility_graph.valve_count g);
  (* Pairs: 0~1 (0X/00), 2~3 (11/X1); 0!~2, 0!~3? 0X vs X1 -> 01 compatible!
     check individually. *)
  Alcotest.(check bool) "0~1" true (Compatibility_graph.compatible g 0 1);
  Alcotest.(check bool) "2~3" true (Compatibility_graph.compatible g 2 3);
  Alcotest.(check bool) "0!~2" false (Compatibility_graph.compatible g 0 2);
  Alcotest.(check bool) "self" true (Compatibility_graph.compatible g 1 1)

let test_graph_density_extremes () =
  let all_same = List.init 4 (fun i -> mk_valve i (i + 1) 1 "01") in
  let g = Compatibility_graph.build all_same in
  Alcotest.(check (float 1e-9)) "fully dense" 1.0 (Compatibility_graph.density g);
  Alcotest.(check int) "degree" 3 (Compatibility_graph.degree g 0)

let test_graph_pin_bounds () =
  (* Two incompatible groups of two: lower bound 2, cover 2. *)
  let vs =
    [ mk_valve 0 1 1 "01"; mk_valve 1 2 2 "01"; mk_valve 2 3 3 "10"; mk_valve 3 4 4 "10" ]
  in
  let g = Compatibility_graph.build vs in
  let lower, upper = Compatibility_graph.pin_bounds g in
  Alcotest.(check int) "lower" 2 lower;
  Alcotest.(check int) "upper" 2 upper;
  Alcotest.(check bool) "sane" true (lower <= upper)

let test_graph_duplicate_rejected () =
  Alcotest.check_raises "duplicate id"
    (Invalid_argument "Compatibility_graph.build: duplicate valve id") (fun () ->
      ignore (Compatibility_graph.build [ mk_valve 0 1 1 "01"; mk_valve 0 2 2 "01" ]))

let prop_pin_bounds_ordered =
  QCheck.Test.make ~name:"pin lower bound <= clique cover" ~count:80
    (QCheck.list_of_size QCheck.Gen.(int_range 1 10) arb_sequence)
    (fun seqs ->
       let vs =
         List.mapi
           (fun i s -> Valve.make ~id:i ~position:(Point.make i (i * 2)) ~sequence:s)
           seqs
       in
       let g = Compatibility_graph.build vs in
       let lower, upper = Compatibility_graph.pin_bounds g in
       lower >= 1 && lower <= upper && upper <= List.length vs)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_compat_reflexive; prop_compat_symmetric; prop_meet_compatible_with_both;
      prop_clustering_partitions; prop_pin_bounds_ordered ]

let () =
  Alcotest.run "valve"
    [ ( "activation",
        [ Alcotest.test_case "status compatibility" `Quick test_status_compat;
          Alcotest.test_case "status meet" `Quick test_status_meet;
          Alcotest.test_case "sequence parse" `Quick test_sequence_parse;
          Alcotest.test_case "sequence compatibility" `Quick test_sequence_compat;
          Alcotest.test_case "sequence meet" `Quick test_sequence_meet;
          Alcotest.test_case "all dont care" `Quick test_all_dont_care ] );
      ( "valve",
        [ Alcotest.test_case "compatibility" `Quick test_valve_compat;
          Alcotest.test_case "shared sequence" `Quick test_shared_sequence ] );
      ( "cluster",
        [ Alcotest.test_case "make" `Quick test_cluster_make;
          Alcotest.test_case "split" `Quick test_cluster_split;
          Alcotest.test_case "singleton" `Quick test_singleton_not_matching ] );
      ( "clustering",
        [ Alcotest.test_case "partition" `Quick test_clustering_partition;
          Alcotest.test_case "seeds frozen" `Quick test_clustering_seeds_frozen;
          Alcotest.test_case "max size" `Quick test_clustering_max_size;
          Alcotest.test_case "errors" `Quick test_clustering_errors;
          Alcotest.test_case "validate rejects" `Quick test_clustering_validate_rejects ] );
      ( "compatibility_graph",
        [ Alcotest.test_case "basics" `Quick test_graph_basics;
          Alcotest.test_case "density" `Quick test_graph_density_extremes;
          Alcotest.test_case "pin bounds" `Quick test_graph_pin_bounds;
          Alcotest.test_case "duplicates" `Quick test_graph_duplicate_rejected ] );
      ("properties", qcheck_cases) ]
