test/test_geom.ml: Alcotest List Pacor_geom Point QCheck QCheck_alcotest Rect Tilted
