test/test_valve.mli:
