test/test_assay.ml: Activation Alcotest Array Cluster List Pacor Pacor_assay Pacor_geom Pacor_grid Pacor_valve Phase Printf QCheck QCheck_alcotest Result Schedule
