test/test_grid.ml: Alcotest Design_rules List Obstacle_map Pacor_geom Pacor_grid Path Point QCheck QCheck_alcotest Rect Result Routing_grid
