test/test_select.ml: Alcotest Candidate Float List Pacor_dme Pacor_geom Pacor_grid Pacor_select Point Printf QCheck QCheck_alcotest Result Routing_grid Tree_select
