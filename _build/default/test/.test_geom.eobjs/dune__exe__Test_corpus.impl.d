test/test_corpus.ml: Alcotest Filename List Pacor String Sys
