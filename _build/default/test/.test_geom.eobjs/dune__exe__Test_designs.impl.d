test/test_designs.ml: Alcotest Cluster Clustering Harness Int List Pacor Pacor_designs Pacor_valve Result Rng Scaling String Synthetic Table1
