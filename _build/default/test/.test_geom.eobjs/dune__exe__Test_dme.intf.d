test/test_dme.mli:
