test/test_timing.ml: Alcotest Buffer Format List Pacor Pacor_designs Pacor_grid Pacor_timing Printf QCheck QCheck_alcotest Rc_model Skew String
