test/test_stages.mli:
