test/test_dme.ml: Alcotest Array Candidate Fun Int List Merge Pacor_dme Pacor_geom Pacor_grid Point QCheck QCheck_alcotest Rect Routing_grid Topology
