test/test_valve.ml: Activation Alcotest Array Cluster Clustering Compatibility_graph List Pacor_geom Pacor_valve Point QCheck QCheck_alcotest Result Valve
