test/test_graphs.ml: Alcotest Array Clique Fun Int List Mst Pacor_graphs Pqueue QCheck QCheck_alcotest Union_find
