test/test_flow.ml: Alcotest Array Escape List Maxflow Mcmf Mcmf_spfa Pacor_flow Pacor_geom Pacor_grid Path Point Printf QCheck QCheck_alcotest Routing_grid
