(* Direct tests of the individual flow stages (cluster routing, escape
   stage, detour stage, rendering) plus randomized whole-engine
   properties over synthetic instances. *)

open Pacor_geom
open Pacor_grid
open Pacor_valve
open Pacor

let seq s =
  match Activation.sequence_of_string s with
  | Ok x -> x
  | Error e -> Alcotest.failf "bad sequence: %s" e

let mk_valve id x y s = Valve.make ~id ~position:(Point.make x y) ~sequence:(seq s)

(* ---------- Cluster_route ---------- *)

let test_cluster_route_pair_and_tree () =
  let grid = Routing_grid.create ~width:24 ~height:24 () in
  let a0 = mk_valve 0 4 4 "01" and a1 = mk_valve 1 4 12 "01" in
  let b0 = mk_valve 2 14 6 "10" and b1 = mk_valve 3 18 10 "10" and b2 = mk_valve 4 12 14 "10" in
  let pair = Cluster.make_exn ~id:0 ~length_matched:true [ a0; a1 ] in
  let tree = Cluster.make_exn ~id:1 ~length_matched:true [ b0; b1; b2 ] in
  let valve_cells =
    Point.Set.of_list (List.map (fun (v : Valve.t) -> v.position) [ a0; a1; b0; b1; b2 ])
  in
  let out =
    Cluster_route.route ~config:Config.default ~grid ~valve_cells [ pair; tree ]
  in
  Alcotest.(check int) "both routed" 2 (List.length out.routed);
  Alcotest.(check int) "nothing demoted" 0 (List.length out.demoted);
  List.iter
    (fun (r : Routed.t) ->
       Alcotest.(check bool) "lm shape" true (Routed.is_length_matched_shape r);
       (* All valve positions belong to the claimed set. *)
       List.iter
         (fun p -> Alcotest.(check bool) "valve claimed" true (Point.Set.mem p r.claimed))
         (Cluster.positions r.cluster))
    out.routed;
  (* The two clusters must not overlap. *)
  (match out.routed with
   | [ r1; r2 ] ->
     Alcotest.(check bool) "clusters disjoint" true
       (Point.Set.is_empty (Point.Set.inter r1.claimed r2.claimed))
   | _ -> Alcotest.fail "expected two routed clusters")

let test_cluster_route_ignores_plain () =
  let grid = Routing_grid.create ~width:10 ~height:10 () in
  let v = mk_valve 0 4 4 "01" in
  let plain = Cluster.make_exn ~id:0 ~length_matched:false [ v ] in
  let out =
    Cluster_route.route ~config:Config.default ~grid
      ~valve_cells:(Point.Set.singleton v.position) [ plain ]
  in
  Alcotest.(check int) "nothing to do" 0 (List.length out.routed)

let test_route_single_roundtrip () =
  let grid = Routing_grid.create ~width:20 ~height:20 () in
  let vs = [ mk_valve 0 4 4 "01"; mk_valve 1 4 12 "01"; mk_valve 2 12 8 "01" ] in
  let cluster = Cluster.make_exn ~id:0 ~length_matched:true vs in
  let valve_cells = Point.Set.of_list (List.map (fun (v : Valve.t) -> v.position) vs) in
  let usable p = Routing_grid.free grid p && not (Point.Set.mem p valve_cells) in
  match Cluster_route.candidates_for ~config:Config.default ~grid ~usable cluster with
  | [] -> Alcotest.fail "no candidates"
  | cand :: _ ->
    let obstacles = Routing_grid.fresh_work_map grid in
    Point.Set.iter (Obstacle_map.block obstacles) valve_cells;
    (match Cluster_route.route_single ~config:Config.default ~grid ~obstacles cluster cand with
     | None -> Alcotest.fail "route_single failed on an open grid"
     | Some r ->
       Alcotest.(check bool) "tree shape" true (Routed.is_length_matched_shape r);
       Alcotest.(check bool) "has internal channels" true (Routed.internal_length r > 0))

(* ---------- Escape_stage ---------- *)

let test_escape_stage_assigns_all () =
  let grid = Routing_grid.create ~width:14 ~height:14 () in
  let c0 = Cluster.make_exn ~id:0 ~length_matched:false [ mk_valve 0 4 4 "01" ] in
  let c1 = Cluster.make_exn ~id:1 ~length_matched:false [ mk_valve 1 9 9 "10" ] in
  let routed = [ Routed.make_singleton c0; Routed.make_singleton c1 ] in
  match Escape_stage.run ~grid ~pins:[ Point.make 0 4; Point.make 13 9 ] routed with
  | Error e -> Alcotest.failf "escape stage: %s" e
  | Ok out ->
    Alcotest.(check (list int)) "no failures" [] out.failed_clusters;
    Alcotest.(check int) "two assignments" 2 (List.length out.assignments);
    Alcotest.(check bool) "positive length" true (out.escape_length > 0)

let test_escape_stage_reports_failures () =
  let grid = Routing_grid.create ~width:14 ~height:14 () in
  let c0 = Cluster.make_exn ~id:7 ~length_matched:false [ mk_valve 0 4 4 "01" ] in
  let c1 = Cluster.make_exn ~id:8 ~length_matched:false [ mk_valve 1 9 9 "10" ] in
  let routed = [ Routed.make_singleton c0; Routed.make_singleton c1 ] in
  (* Only one pin for two clusters. *)
  match Escape_stage.run ~grid ~pins:[ Point.make 0 4 ] routed with
  | Error e -> Alcotest.failf "escape stage: %s" e
  | Ok out -> Alcotest.(check int) "one failure" 1 (List.length out.failed_clusters)

(* ---------- Detour_stage ---------- *)

(* Build a routed tree cluster by running the real pipeline pieces. *)
let routed_tree_cluster grid vs =
  let cluster = Cluster.make_exn ~id:0 ~length_matched:true vs in
  let valve_cells = Point.Set.of_list (List.map (fun (v : Valve.t) -> v.position) vs) in
  let out = Cluster_route.route ~config:Config.default ~grid ~valve_cells [ cluster ] in
  match out.routed with
  | [ r ] -> r
  | _ -> Alcotest.fail "cluster did not route"

let test_detour_stage_fixes_imbalance () =
  let grid = Routing_grid.create ~width:24 ~height:24 () in
  let r =
    routed_tree_cluster grid
      [ mk_valve 0 4 4 "01"; mk_valve 1 4 13 "01"; mk_valve 2 13 8 "01" ]
  in
  let out = Detour_stage.run ~grid ~delta:1 ~theta:10 ~blocked:r.claimed [ r ] in
  (match out.updated with
   | [ r' ] ->
     (match Routed.spread r' with
      | Some s -> Alcotest.(check bool) "spread within 1" true (s <= 1)
      | None -> Alcotest.fail "expected a spread")
   | _ -> Alcotest.fail "expected one cluster back");
  Alcotest.(check int) "reported matched" 1 (List.length out.matched_ids)

let test_detour_stage_skips_plain () =
  let grid = Routing_grid.create ~width:10 ~height:10 () in
  let c = Cluster.make_exn ~id:3 ~length_matched:false [ mk_valve 0 4 4 "01" ] in
  let r = Routed.make_singleton c in
  let out = Detour_stage.run ~grid ~delta:1 ~theta:10 ~blocked:Point.Set.empty [ r ] in
  Alcotest.(check int) "no matched ids" 0 (List.length out.matched_ids);
  Alcotest.(check int) "no unmatched ids" 0 (List.length out.unmatched_ids)

let test_detour_one_restores_on_failure () =
  (* Box the tree in so no detour space exists: the result must be the
     original route, reported unmatched. *)
  let grid = Routing_grid.create ~width:24 ~height:24 () in
  let r =
    routed_tree_cluster grid
      [ mk_valve 0 4 4 "01"; mk_valve 1 4 13 "01"; mk_valve 2 13 8 "01" ]
  in
  match Routed.spread r with
  | Some s when s > 1 ->
    (* Block every free cell: detouring is impossible. *)
    let blocked = ref Point.Set.empty in
    for x = 0 to 23 do
      for y = 0 to 23 do
        let p = Point.make x y in
        if not (Point.Set.mem p r.claimed) then blocked := Point.Set.add p !blocked
      done
    done;
    let r', ok = Detour_stage.detour_one ~grid ~delta:1 ~theta:10 ~blocked:!blocked r in
    Alcotest.(check bool) "failed" false ok;
    Alcotest.(check bool) "identical claims (restored)" true
      (Point.Set.equal r'.Routed.claimed r.Routed.claimed)
  | Some _ | None ->
    (* Already matched without detours: nothing to assert here. *)
    ()

(* ---------- Render ---------- *)

let small_problem () =
  let a0 = mk_valve 0 4 4 "01" and a1 = mk_valve 1 4 10 "01" in
  let grid = Routing_grid.create ~width:14 ~height:14 ~obstacles:[ Rect.make ~x0:8 ~y0:8 ~x1:9 ~y1:9 ] () in
  Problem.create_exn ~grid ~valves:[ a0; a1 ]
    ~lm_clusters:[ Cluster.make_exn ~id:0 ~length_matched:true [ a0; a1 ] ]
    ~pins:[ Point.make 0 4; Point.make 0 10; Point.make 13 7 ] ()

let test_render_problem () =
  let p = small_problem () in
  let s = Render.problem p in
  Alcotest.(check int) "grid height lines" 14
    (List.length (String.split_on_char '\n' (String.trim s)));
  Alcotest.(check bool) "has valves" true (String.contains s 'V');
  Alcotest.(check bool) "has pins" true (String.contains s 'P');
  Alcotest.(check bool) "has obstacles" true (String.contains s '#')

let test_render_solution () =
  let p = small_problem () in
  match Engine.run p with
  | Error e -> Alcotest.failf "engine: %s" e.message
  | Ok sol ->
    let s = Render.solution sol in
    Alcotest.(check bool) "used pin marked" true (String.contains s '@');
    Alcotest.(check bool) "channel cells drawn" true (String.contains s '0')


let test_svg_render () =
  let p = small_problem () in
  let svg_problem = Svg.problem p in
  Alcotest.(check bool) "problem svg" true
    (String.length svg_problem > 100
     && String.sub svg_problem 0 4 = "<svg");
  match Engine.run p with
  | Error e -> Alcotest.failf "engine: %s" e.message
  | Ok sol ->
    let svg = Svg.solution sol in
    Alcotest.(check bool) "solution svg has polylines" true
      (let rec contains i =
         i + 9 <= String.length svg
         && (String.sub svg i 9 = "<polyline" || contains (i + 1))
       in
       contains 0);
    Alcotest.(check bool) "well terminated" true
      (String.length svg > 7
       && String.sub svg (String.length svg - 7) 6 = "</svg>")

(* ---------- Sweep / with_delta ---------- *)

let test_with_delta () =
  let p = small_problem () in
  (match Problem.with_delta p 3 with
   | Ok p' -> Alcotest.(check int) "delta updated" 3 p'.Problem.delta
   | Error e -> Alcotest.failf "unexpected: %s" e);
  Alcotest.(check bool) "negative rejected" true (Result.is_error (Problem.with_delta p (-1)))

let test_sweep_monotone_matching () =
  (* Matched clusters can only improve (weakly) as delta grows. *)
  match Pacor_designs.Sweep.run ~deltas:[ 0; 1; 2; 4 ] (small_problem ()) with
  | Error e -> Alcotest.failf "sweep: %s" e
  | Ok samples ->
    let matched = List.map (fun (s : Pacor_designs.Sweep.sample) -> s.matched) samples in
    let rec non_decreasing = function
      | a :: (b :: _ as rest) -> a <= b && non_decreasing rest
      | _ -> true
    in
    Alcotest.(check bool) "weakly increasing" true (non_decreasing matched);
    List.iter
      (fun (s : Pacor_designs.Sweep.sample) ->
         Alcotest.(check (float 1e-9)) "always completes" 1.0 s.completion)
      samples

(* ---------- Engine: stage timings, rematch regression ---------- *)

let test_stage_timings_present () =
  match Engine.run (small_problem ()) with
  | Error e -> Alcotest.failf "engine: %s" e.message
  | Ok sol ->
    let stages = List.map fst sol.Solution.stage_seconds in
    List.iter
      (fun expected ->
         Alcotest.(check bool) (expected ^ " timed") true (List.mem expected stages))
      [ "clustering"; "lm-routing"; "plain-routing"; "escape"; "detour"; "rematch" ];
    List.iter
      (fun (_, t) -> Alcotest.(check bool) "non-negative" true (t >= 0.0))
      sol.Solution.stage_seconds

let test_rematch_rescues_corridor_cluster () =
  (* Regression for the rotary-mixer scenario: a sieve triple whose first
     candidate leaves no escape exit gets rescued by an alternative
     candidate instead of being demoted. *)
  let ring_obstacles =
    [ Rect.make ~x0:9 ~y0:6 ~x1:16 ~y1:6; Rect.make ~x0:9 ~y0:14 ~x1:16 ~y1:14 ]
  in
  let grid = Routing_grid.create ~width:26 ~height:20 ~obstacles:ring_obstacles () in
  let sieves =
    [ mk_valve 0 11 10 "10"; mk_valve 1 13 10 "10"; mk_valve 2 15 10 "10" ]
  in
  let cluster = Cluster.make_exn ~id:0 ~length_matched:true sieves in
  let pins = [ Point.make 0 10; Point.make 25 10; Point.make 12 0; Point.make 12 19 ] in
  let p = Problem.create_exn ~grid ~valves:sieves ~lm_clusters:[ cluster ] ~pins () in
  match Engine.run p with
  | Error e -> Alcotest.failf "engine: %s" e.message
  | Ok sol ->
    let stats = Solution.stats sol in
    Alcotest.(check (float 1e-9)) "routes" 1.0 stats.completion;
    Alcotest.(check int) "matched" 1 stats.matched_clusters

(* ---------- Whole-engine property over random synthetic instances ---------- *)

let arb_spec =
  QCheck.make
    QCheck.Gen.(
      let* seed = int_range 1 10_000 in
      let* n_pairs = int_range 0 2 in
      let* n_triples = int_range 0 1 in
      let* singles = int_range 1 3 in
      return
        {
          Pacor_designs.Synthetic.name = "prop";
          width = 26;
          height = 26;
          obstacle_cells = 10;
          lm_cluster_sizes =
            List.init n_pairs (fun _ -> 2) @ List.init n_triples (fun _ -> 3);
          singleton_valves = singles;
          pin_count = 30;
          seed = Int64.of_int seed;
          delta = 1;
        })

let prop_engine_routes_random_instances =
  QCheck.Test.make ~name:"engine completes and validates on random instances" ~count:25
    arb_spec (fun spec ->
      match Pacor_designs.Synthetic.generate spec with
      | Error _ -> QCheck.assume_fail ()
      | Ok problem ->
        (match Engine.run problem with
         | Error _ -> false
         | Ok sol ->
           let stats = Solution.stats sol in
           stats.completion = 1.0 && Solution.validate sol = Ok ()))

let prop_variants_all_valid =
  QCheck.Test.make ~name:"all variants validate on random instances" ~count:10 arb_spec
    (fun spec ->
       match Pacor_designs.Synthetic.generate spec with
       | Error _ -> QCheck.assume_fail ()
       | Ok problem ->
         List.for_all
           (fun variant ->
              match Engine.run ~config:(Config.make ~variant ()) problem with
              | Error _ -> false
              | Ok sol -> Solution.validate sol = Ok ())
           [ Config.Full; Config.Without_selection; Config.Detour_first ])

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_engine_routes_random_instances; prop_variants_all_valid ]

let () =
  Alcotest.run "stages"
    [ ( "cluster_route",
        [ Alcotest.test_case "pair and tree" `Quick test_cluster_route_pair_and_tree;
          Alcotest.test_case "ignores plain" `Quick test_cluster_route_ignores_plain;
          Alcotest.test_case "route_single" `Quick test_route_single_roundtrip ] );
      ( "escape_stage",
        [ Alcotest.test_case "assigns all" `Quick test_escape_stage_assigns_all;
          Alcotest.test_case "reports failures" `Quick test_escape_stage_reports_failures ] );
      ( "detour_stage",
        [ Alcotest.test_case "fixes imbalance" `Quick test_detour_stage_fixes_imbalance;
          Alcotest.test_case "skips plain" `Quick test_detour_stage_skips_plain;
          Alcotest.test_case "restores on failure" `Quick test_detour_one_restores_on_failure ] );
      ( "render",
        [ Alcotest.test_case "problem" `Quick test_render_problem;
          Alcotest.test_case "solution" `Quick test_render_solution;
          Alcotest.test_case "svg" `Quick test_svg_render ] );
      ( "sweep",
        [ Alcotest.test_case "with_delta" `Quick test_with_delta;
          Alcotest.test_case "monotone matching" `Quick test_sweep_monotone_matching ] );
      ( "engine",
        [ Alcotest.test_case "stage timings" `Quick test_stage_timings_present;
          Alcotest.test_case "rematch rescues corridor cluster" `Quick
            test_rematch_rescues_corridor_cluster ] );
      ("properties", qcheck_cases) ]
