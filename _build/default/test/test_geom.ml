open Pacor_geom

let point = Alcotest.testable Point.pp Point.equal

(* ---------- Point ---------- *)

let test_manhattan_basics () =
  Alcotest.(check int) "zero" 0 (Point.manhattan (Point.make 3 4) (Point.make 3 4));
  Alcotest.(check int) "axis" 5 (Point.manhattan (Point.make 0 0) (Point.make 5 0));
  Alcotest.(check int) "diag" 7 (Point.manhattan (Point.make 1 2) (Point.make 4 6));
  Alcotest.(check int) "negative coords" 8
    (Point.manhattan (Point.make (-2) (-2)) (Point.make 2 2))

let test_chebyshev () =
  Alcotest.(check int) "cheb" 4 (Point.chebyshev (Point.make 1 2) (Point.make 4 6));
  Alcotest.(check int) "cheb axis" 5 (Point.chebyshev (Point.make 0 0) (Point.make 5 0))

let test_midpoint () =
  Alcotest.check point "even" (Point.make 2 3) (Point.midpoint (Point.make 0 0) (Point.make 4 6));
  Alcotest.check point "odd truncates toward first" (Point.make 1 1)
    (Point.midpoint (Point.make 0 0) (Point.make 3 3));
  Alcotest.check point "reverse order" (Point.make 2 2)
    (Point.midpoint (Point.make 3 3) (Point.make 0 0))

let test_neighbours () =
  let ns = Point.neighbours4 (Point.make 5 5) in
  Alcotest.(check int) "four of them" 4 (List.length ns);
  List.iter
    (fun n -> Alcotest.(check int) "distance 1" 1 (Point.manhattan (Point.make 5 5) n))
    ns

let test_ring () =
  Alcotest.(check (list point)) "radius 0" [ Point.make 2 2 ] (Point.ring (Point.make 2 2) 0);
  let r1 = Point.ring (Point.make 0 0) 1 in
  Alcotest.(check int) "radius 1 has 8 points" 8 (List.length r1);
  let r3 = Point.ring (Point.make 0 0) 3 in
  Alcotest.(check int) "radius 3 has 24 points" 24 (List.length r3);
  List.iter
    (fun p -> Alcotest.(check int) "all at chebyshev 3" 3 (Point.chebyshev Point.origin p))
    r3;
  let sorted = List.sort_uniq Point.compare r3 in
  Alcotest.(check int) "no duplicates" (List.length r3) (List.length sorted)

let test_ring_negative () =
  Alcotest.check_raises "negative radius" (Invalid_argument "Point.ring: negative radius")
    (fun () -> ignore (Point.ring Point.origin (-1)))

(* ---------- Rect ---------- *)

let test_rect_normalise () =
  let r = Rect.make ~x0:5 ~y0:7 ~x1:2 ~y1:3 in
  Alcotest.(check bool) "contains corner" true (Rect.contains r (Point.make 2 3));
  Alcotest.(check bool) "contains other corner" true (Rect.contains r (Point.make 5 7));
  Alcotest.(check int) "cells" ((4) * (5)) (Rect.cells r)

let test_rect_overlap () =
  let a = Rect.make ~x0:0 ~y0:0 ~x1:4 ~y1:4 in
  let b = Rect.make ~x0:3 ~y0:3 ~x1:6 ~y1:6 in
  Alcotest.(check int) "overlap cells" 4 (Rect.overlap_cells a b);
  let c = Rect.make ~x0:10 ~y0:10 ~x1:11 ~y1:11 in
  Alcotest.(check int) "disjoint" 0 (Rect.overlap_cells a c);
  Alcotest.(check bool) "inter none" true (Rect.inter a c = None)

let test_rect_degenerate () =
  let seg = Rect.of_points (Point.make 2 2) (Point.make 2 8) in
  Alcotest.(check int) "segment cells" 7 (Rect.cells seg);
  let pt = Rect.of_points (Point.make 1 1) (Point.make 1 1) in
  Alcotest.(check int) "point cells" 1 (Rect.cells pt)

let test_rect_of_point_list () =
  let r = Rect.of_point_list [ Point.make 1 5; Point.make 3 2; Point.make 0 4 ] in
  Alcotest.(check bool) "covers all" true
    (List.for_all (Rect.contains r) [ Point.make 1 5; Point.make 3 2; Point.make 0 4 ]);
  Alcotest.(check int) "tight cells" ((3 + 1) * (3 + 1)) (Rect.cells r);
  Alcotest.check_raises "empty" (Invalid_argument "Rect.of_point_list: empty") (fun () ->
    ignore (Rect.of_point_list []))

let test_rect_points () =
  let r = Rect.make ~x0:0 ~y0:0 ~x1:2 ~y1:1 in
  Alcotest.(check int) "point count" 6 (List.length (Rect.points r))

(* ---------- Tilted ---------- *)

let test_tilted_roundtrip () =
  List.iter
    (fun (x, y) ->
       let p = Point.make x y in
       let c = Tilted.coord_of_point p in
       Alcotest.(check bool) "on grid" true (Tilted.is_on_grid c);
       Alcotest.check point "roundtrip" p (Tilted.nearest_grid_point c))
    [ (0, 0); (3, 4); (7, 1); (12, 12); (5, 0) ]

let test_tilted_distance_is_doubled_manhattan () =
  let pairs = [ ((0, 0), (3, 4)); ((1, 1), (1, 1)); ((2, 7), (9, 3)) ] in
  List.iter
    (fun ((x1, y1), (x2, y2)) ->
       let p = Point.make x1 y1 and q = Point.make x2 y2 in
       Alcotest.(check int) "doubled manhattan"
         (2 * Point.manhattan p q)
         (Tilted.coord_dist (Tilted.coord_of_point p) (Tilted.coord_of_point q)))
    pairs

let test_trr_dist_and_inflate () =
  let a = Tilted.of_point (Point.make 0 0) in
  let b = Tilted.of_point (Point.make 3 0) in
  Alcotest.(check int) "point-point" 6 (Tilted.dist a b);
  let a1 = Tilted.inflate a 2 in
  Alcotest.(check int) "inflated distance shrinks" 4 (Tilted.dist a1 b);
  let a3 = Tilted.inflate a 6 in
  Alcotest.(check int) "touching" 0 (Tilted.dist a3 b)

let test_trr_inter () =
  let a = Tilted.inflate (Tilted.of_point (Point.make 0 0)) 6 in
  let b = Tilted.inflate (Tilted.of_point (Point.make 3 0)) 2 in
  (match Tilted.inter a b with
   | None -> Alcotest.fail "expected intersection"
   | Some r ->
     (* Every sample of the intersection is within both radii. *)
     List.iter
       (fun c ->
          Alcotest.(check bool) "within a" true
            (Tilted.dist_coord c (Tilted.of_point (Point.make 0 0)) <= 6);
          Alcotest.(check bool) "within b" true
            (Tilted.dist_coord c (Tilted.of_point (Point.make 3 0)) <= 2))
       (Tilted.sample r 9));
  let far = Tilted.of_point (Point.make 50 50) in
  Alcotest.(check bool) "disjoint" true (Tilted.inter a far = None)

let test_nearest_in () =
  let r = Tilted.inflate (Tilted.of_point (Point.make 5 5)) 4 in
  let inside = Tilted.coord_of_point (Point.make 5 5) in
  let n = Tilted.nearest_in r inside in
  Alcotest.(check int) "inside unchanged" 0 (Tilted.coord_dist inside n);
  let outside = Tilted.coord_of_point (Point.make 50 50) in
  let n2 = Tilted.nearest_in r outside in
  Alcotest.(check int) "clamped onto region" 0 (Tilted.dist_coord n2 r)

let test_odd_distance_offgrid_lemma1 () =
  (* Lemma 1: nodes at odd Manhattan distance have an off-grid merging
     segment. The midpoint locus between (0,0) and (1,0) sits at doubled
     distance 1 from each, which no grid point achieves. *)
  let a = Tilted.coord_of_point (Point.make 0 0) in
  let mid = { a with Tilted.u = a.Tilted.u + 1 } in
  Alcotest.(check bool) "off grid" false (Tilted.is_on_grid mid);
  Alcotest.(check int) "rounding error is 1" 1 (Tilted.grid_round_error mid)

let test_sample_bounds () =
  let r = Tilted.make ~ulo:0 ~uhi:10 ~vlo:(-4) ~vhi:4 in
  let s = Tilted.sample r 64 in
  Alcotest.(check bool) "non-empty" true (s <> []);
  List.iter
    (fun c -> Alcotest.(check int) "sample in region" 0 (Tilted.dist_coord c r))
    s;
  Alcotest.(check int) "cap respected" 3 (List.length (Tilted.sample r 3))

let test_make_empty_region () =
  Alcotest.check_raises "empty region" (Invalid_argument "Tilted.make: empty region")
    (fun () -> ignore (Tilted.make ~ulo:1 ~uhi:0 ~vlo:0 ~vhi:0))

(* ---------- QCheck properties ---------- *)

let arb_point =
  QCheck.map
    (fun (x, y) -> Point.make x y)
    (QCheck.pair (QCheck.int_range (-50) 50) (QCheck.int_range (-50) 50))

let prop_manhattan_symmetric =
  QCheck.Test.make ~name:"manhattan symmetric" ~count:200 (QCheck.pair arb_point arb_point)
    (fun (p, q) -> Point.manhattan p q = Point.manhattan q p)

let prop_manhattan_triangle =
  QCheck.Test.make ~name:"manhattan triangle inequality" ~count:200
    (QCheck.triple arb_point arb_point arb_point)
    (fun (p, q, r) -> Point.manhattan p r <= Point.manhattan p q + Point.manhattan q r)

let prop_chebyshev_le_manhattan =
  QCheck.Test.make ~name:"chebyshev <= manhattan" ~count:200 (QCheck.pair arb_point arb_point)
    (fun (p, q) -> Point.chebyshev p q <= Point.manhattan p q)

let prop_tilted_dist_exact =
  QCheck.Test.make ~name:"tilted coord_dist = 2 * manhattan" ~count:500
    (QCheck.pair arb_point arb_point)
    (fun (p, q) ->
       Tilted.coord_dist (Tilted.coord_of_point p) (Tilted.coord_of_point q)
       = 2 * Point.manhattan p q)

let prop_tilted_roundtrip =
  QCheck.Test.make ~name:"tilted roundtrip on grid" ~count:500 arb_point (fun p ->
    Point.equal p (Tilted.nearest_grid_point (Tilted.coord_of_point p)))

let prop_ring_size =
  QCheck.Test.make ~name:"ring r has 8r points" ~count:100
    (QCheck.pair arb_point (QCheck.int_range 1 10))
    (fun (p, r) -> List.length (Point.ring p r) = 8 * r)

let prop_rect_overlap_symmetric =
  QCheck.Test.make ~name:"rect overlap symmetric" ~count:200
    (QCheck.pair (QCheck.pair arb_point arb_point) (QCheck.pair arb_point arb_point))
    (fun ((a1, a2), (b1, b2)) ->
       let ra = Rect.of_points a1 a2 and rb = Rect.of_points b1 b2 in
       Rect.overlap_cells ra rb = Rect.overlap_cells rb ra)

let prop_rect_overlap_bounded =
  QCheck.Test.make ~name:"overlap <= min cells" ~count:200
    (QCheck.pair (QCheck.pair arb_point arb_point) (QCheck.pair arb_point arb_point))
    (fun ((a1, a2), (b1, b2)) ->
       let ra = Rect.of_points a1 a2 and rb = Rect.of_points b1 b2 in
       Rect.overlap_cells ra rb <= min (Rect.cells ra) (Rect.cells rb))

let prop_nearest_grid_point_minimal =
  QCheck.Test.make ~name:"nearest grid point within 2 doubled units" ~count:300
    (QCheck.pair (QCheck.int_range (-100) 100) (QCheck.int_range (-100) 100))
    (fun (u, v) ->
       (* Any tilted point with u+v even corresponds to a half-grid point
          at doubled distance <= 2 from some grid point. *)
       let c = { Tilted.u; v } in
       Tilted.grid_round_error c <= 2)


let arb_trr =
  QCheck.make
    QCheck.Gen.(
      let* x = int_range 0 10 and* y = int_range 0 10 in
      let* r = int_range 0 8 in
      return (Tilted.inflate (Tilted.of_point (Point.make x y)) r))

let prop_trr_inflate_is_distance_ball =
  (* Membership in an inflated TRR is exactly the doubled-distance test,
     checked pointwise against brute force over a small window. *)
  QCheck.Test.make ~name:"inflate = distance ball (brute force)" ~count:60
    (QCheck.pair arb_point (QCheck.int_range 0 6))
    (fun (p, r) ->
       let trr = Tilted.inflate (Tilted.of_point p) (2 * r) in
       let ok = ref true in
       for x = p.Point.x - 8 to p.Point.x + 8 do
         for y = p.Point.y - 8 to p.Point.y + 8 do
           let q = Point.make x y in
           let inside = Tilted.dist_coord (Tilted.coord_of_point q) trr = 0 in
           let near = Point.manhattan p q <= r in
           if inside <> near then ok := false
         done
       done;
       !ok)

let prop_trr_inter_is_pointwise =
  (* A grid point lies in the intersection iff it lies in both regions. *)
  QCheck.Test.make ~name:"TRR intersection = pointwise and" ~count:60
    (QCheck.pair arb_trr arb_trr)
    (fun (a, b) ->
       let member t q = Tilted.dist_coord (Tilted.coord_of_point q) t = 0 in
       let ok = ref true in
       for x = -10 to 20 do
         for y = -10 to 20 do
           let q = Point.make x y in
           let lhs =
             match Tilted.inter a b with Some i -> member i q | None -> false
           in
           if lhs <> (member a q && member b q) then ok := false
         done
       done;
       !ok)

let prop_nearest_in_is_closest =
  QCheck.Test.make ~name:"nearest_in minimises distance" ~count:100
    (QCheck.pair arb_trr arb_point)
    (fun (t, p) ->
       let c = Tilted.coord_of_point p in
       let n = Tilted.nearest_in t c in
       Tilted.coord_dist c n = Tilted.dist_coord c t)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_manhattan_symmetric; prop_manhattan_triangle; prop_chebyshev_le_manhattan;
      prop_tilted_dist_exact; prop_tilted_roundtrip; prop_ring_size;
      prop_rect_overlap_symmetric; prop_rect_overlap_bounded;
      prop_nearest_grid_point_minimal; prop_trr_inflate_is_distance_ball;
      prop_trr_inter_is_pointwise; prop_nearest_in_is_closest ]

let () =
  Alcotest.run "geom"
    [ ( "point",
        [ Alcotest.test_case "manhattan basics" `Quick test_manhattan_basics;
          Alcotest.test_case "chebyshev" `Quick test_chebyshev;
          Alcotest.test_case "midpoint" `Quick test_midpoint;
          Alcotest.test_case "neighbours4" `Quick test_neighbours;
          Alcotest.test_case "ring" `Quick test_ring;
          Alcotest.test_case "ring negative" `Quick test_ring_negative ] );
      ( "rect",
        [ Alcotest.test_case "normalise" `Quick test_rect_normalise;
          Alcotest.test_case "overlap" `Quick test_rect_overlap;
          Alcotest.test_case "degenerate" `Quick test_rect_degenerate;
          Alcotest.test_case "of_point_list" `Quick test_rect_of_point_list;
          Alcotest.test_case "points" `Quick test_rect_points ] );
      ( "tilted",
        [ Alcotest.test_case "roundtrip" `Quick test_tilted_roundtrip;
          Alcotest.test_case "doubled manhattan" `Quick test_tilted_distance_is_doubled_manhattan;
          Alcotest.test_case "dist/inflate" `Quick test_trr_dist_and_inflate;
          Alcotest.test_case "intersection" `Quick test_trr_inter;
          Alcotest.test_case "nearest_in" `Quick test_nearest_in;
          Alcotest.test_case "lemma 1 (odd distance off-grid)" `Quick
            test_odd_distance_offgrid_lemma1;
          Alcotest.test_case "sample" `Quick test_sample_bounds;
          Alcotest.test_case "empty region" `Quick test_make_empty_region ] );
      ("properties", qcheck_cases) ]
