open Pacor_geom
open Pacor_grid
open Pacor_valve
open Pacor

let seq s =
  match Activation.sequence_of_string s with
  | Ok x -> x
  | Error e -> Alcotest.failf "bad sequence: %s" e

let mk_valve id x y s = Valve.make ~id ~position:(Point.make x y) ~sequence:(seq s)

(* A small hand-made problem: one 2-valve LM cluster, one 3-valve LM
   cluster, one lone valve, on a 20x20 grid with generous pins.
   Sequences: group 0 -> "011", group 1 -> "101", group 2 -> "110". *)
let small_problem () =
  let a0 = mk_valve 0 4 4 "011" and a1 = mk_valve 1 4 10 "011" in
  let b0 = mk_valve 2 12 5 "101" and b1 = mk_valve 3 15 9 "101" and b2 = mk_valve 4 10 12 "101" in
  let lone = mk_valve 5 8 16 "110" in
  let grid = Routing_grid.create ~width:20 ~height:20 () in
  let pins =
    List.filter_map
      (fun i ->
         let b = Routing_grid.boundary_points grid in
         List.nth_opt b (i * 6))
      (List.init 12 Fun.id)
  in
  let lm_clusters =
    [ Cluster.make_exn ~id:0 ~length_matched:true [ a0; a1 ];
      Cluster.make_exn ~id:1 ~length_matched:true [ b0; b1; b2 ] ]
  in
  Problem.create_exn ~name:"unit" ~grid ~valves:[ a0; a1; b0; b1; b2; lone ]
    ~lm_clusters ~pins ~delta:1 ()

(* ---------- Problem validation ---------- *)

let test_problem_ok () =
  let p = small_problem () in
  Alcotest.(check int) "valves" 6 (Problem.valve_count p);
  Alcotest.(check bool) "find valve" true (Problem.find_valve p 3 <> None);
  Alcotest.(check bool) "missing valve" true (Problem.find_valve p 99 = None)

let test_problem_rejects_bad_inputs () =
  let grid = Routing_grid.create ~width:10 ~height:10 () in
  let v = mk_valve 0 5 5 "01" in
  let pins = [ Point.make 0 5 ] in
  (* No valves. *)
  Alcotest.(check bool) "no valves" true
    (Result.is_error (Problem.create ~grid ~valves:[] ~pins ()));
  (* Valve out of bounds. *)
  let oob = mk_valve 1 50 50 "01" in
  Alcotest.(check bool) "valve oob" true
    (Result.is_error (Problem.create ~grid ~valves:[ oob ] ~pins ()));
  (* Interior pin. *)
  Alcotest.(check bool) "interior pin" true
    (Result.is_error (Problem.create ~grid ~valves:[ v ] ~pins:[ Point.make 5 6 ] ()));
  (* Duplicate pins. *)
  Alcotest.(check bool) "duplicate pin" true
    (Result.is_error
       (Problem.create ~grid ~valves:[ v ] ~pins:[ Point.make 0 5; Point.make 0 5 ] ()));
  (* Fewer pins than valves. *)
  let v2 = mk_valve 1 6 6 "01" in
  Alcotest.(check bool) "pin shortage" true
    (Result.is_error (Problem.create ~grid ~valves:[ v; v2 ] ~pins ()));
  (* Negative delta. *)
  Alcotest.(check bool) "negative delta" true
    (Result.is_error (Problem.create ~grid ~valves:[ v ] ~pins ~delta:(-1) ()));
  (* Seed cluster not flagged length-matched. *)
  let c = Cluster.make_exn ~id:0 ~length_matched:false [ v ] in
  Alcotest.(check bool) "unflagged seed" true
    (Result.is_error (Problem.create ~grid ~valves:[ v ] ~lm_clusters:[ c ] ~pins ()))

let test_problem_valve_on_obstacle () =
  let grid =
    Routing_grid.create ~width:10 ~height:10
      ~obstacles:[ Rect.make ~x0:5 ~y0:5 ~x1:5 ~y1:5 ] ()
  in
  let v = mk_valve 0 5 5 "01" in
  Alcotest.(check bool) "valve on obstacle" true
    (Result.is_error (Problem.create ~grid ~valves:[ v ] ~pins:[ Point.make 0 5 ] ()))

(* ---------- Problem IO ---------- *)

let test_problem_io_roundtrip () =
  let p = small_problem () in
  let text = Problem_io.to_string p in
  match Problem_io.of_string text with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok p' ->
    Alcotest.(check int) "valves preserved" (Problem.valve_count p) (Problem.valve_count p');
    Alcotest.(check int) "pins preserved" (Problem.pin_count p) (Problem.pin_count p');
    Alcotest.(check int) "clusters preserved"
      (List.length p.Problem.lm_clusters)
      (List.length p'.Problem.lm_clusters);
    Alcotest.(check int) "delta preserved" p.Problem.delta p'.Problem.delta;
    (* Second roundtrip is a fixpoint. *)
    Alcotest.(check string) "fixpoint" text (Problem_io.to_string p')

let test_problem_io_parse_errors () =
  let check_err name text =
    Alcotest.(check bool) name true (Result.is_error (Problem_io.of_string text))
  in
  check_err "missing grid" "name x\nvalve 0 1 1 01\npin 0 0\n";
  check_err "garbage directive" "grid 5 5\nfrobnicate 1 2\n";
  check_err "bad sequence" "grid 9 9\nvalve 0 1 1 013\npin 0 0\n";
  check_err "unknown cluster member" "grid 9 9\nvalve 0 1 1 01\ncluster 0 0 7\npin 0 4\n"

let test_problem_io_comments () =
  let text =
    "# a comment\ngrid 9 9\n\nvalve 0 3 3 01 # trailing comment\nvalve 1 5 5 0X\npin 0 4\npin 0 5\n"
  in
  match Problem_io.of_string text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok p -> Alcotest.(check int) "two valves" 2 (Problem.valve_count p)

(* ---------- Routed helpers ---------- *)

let test_routed_pair () =
  let a = mk_valve 0 2 2 "01" and b = mk_valve 1 7 2 "01" in
  let cluster = Cluster.make_exn ~id:0 ~length_matched:true [ a; b ] in
  let path = Path.of_points (List.init 6 (fun i -> Point.make (i + 2) 2)) in
  let r = Routed.make_pair cluster ~a:0 ~b:1 ~path in
  Alcotest.(check int) "internal length" 5 (Routed.internal_length r);
  (match Routed.start_cells r with
   | [ m ] -> Alcotest.(check bool) "middle on path" true (Path.mem path m)
   | _ -> Alcotest.fail "expected one start cell");
  (match Routed.spread r with
   | Some s -> Alcotest.(check int) "odd length spread 1" 1 s
   | None -> Alcotest.fail "expected spread");
  (match Routed.pair_halves r with
   | Some (h1, h2) ->
     Alcotest.(check int) "halves sum" 5 (h1 + h2);
     Alcotest.(check int) "near halves" 1 (abs (h1 - h2))
   | None -> Alcotest.fail "expected halves")

let test_routed_singleton () =
  let a = mk_valve 0 3 3 "01" in
  let cluster = Cluster.make_exn ~id:0 ~length_matched:false [ a ] in
  let r = Routed.make_singleton cluster in
  Alcotest.(check int) "no internal length" 0 (Routed.internal_length r);
  Alcotest.(check (list (Alcotest.testable Point.pp Point.equal))) "starts at valve"
    [ Point.make 3 3 ] (Routed.start_cells r);
  Alcotest.(check bool) "no spread" true (Routed.spread r = None)

let test_routed_plain_start_cells () =
  let a = mk_valve 0 2 2 "01" and b = mk_valve 1 4 2 "01" in
  let cluster = Cluster.make_exn ~id:0 ~length_matched:false [ a; b ] in
  let path = Path.of_points [ Point.make 2 2; Point.make 3 2; Point.make 4 2 ] in
  let r = Routed.make_plain cluster ~paths:[ path ] ~claimed:Point.Set.empty in
  (* Ordinary clusters may escape from any claimed cell. *)
  Alcotest.(check int) "all cells are start cells" 3 (List.length (Routed.start_cells r))

(* ---------- Engine end-to-end ---------- *)

let run_ok ?config p =
  match Engine.run ?config p with
  | Ok sol -> sol
  | Error e -> Alcotest.failf "engine failed at %s: %s" e.Engine.stage e.Engine.message

let test_engine_small_problem () =
  let sol = run_ok (small_problem ()) in
  let stats = Solution.stats sol in
  Alcotest.(check int) "two multi clusters" 2 stats.clusters;
  Alcotest.(check (float 1e-9)) "full completion" 1.0 stats.completion;
  Alcotest.(check int) "both matched" 2 stats.matched_clusters;
  (match Solution.validate sol with
   | Ok () -> ()
   | Error es -> Alcotest.failf "invalid solution: %s" (String.concat "; " es))

let test_engine_deterministic () =
  let s1 = Solution.stats (run_ok (small_problem ())) in
  let s2 = Solution.stats (run_ok (small_problem ())) in
  Alcotest.(check int) "same total" s1.total_length s2.total_length;
  Alcotest.(check int) "same matched" s1.matched_clusters s2.matched_clusters

let test_engine_variants () =
  let p = small_problem () in
  List.iter
    (fun variant ->
       let sol = run_ok ~config:(Config.make ~variant ()) p in
       let stats = Solution.stats sol in
       Alcotest.(check (float 1e-9))
         (Config.variant_name variant ^ " completes")
         1.0 stats.completion;
       match Solution.validate sol with
       | Ok () -> ()
       | Error es ->
         Alcotest.failf "%s invalid: %s" (Config.variant_name variant)
           (String.concat "; " es))
    [ Config.Full; Config.Without_selection; Config.Detour_first ]

let test_engine_lengths_within_delta () =
  let sol = run_ok (small_problem ()) in
  List.iter
    (fun (rc : Solution.routed_cluster) ->
       if rc.matched then begin
         let lengths = List.map snd rc.lengths in
         let spread =
           List.fold_left max min_int lengths - List.fold_left min max_int lengths
         in
         Alcotest.(check bool) "spread within delta" true (spread <= 1);
         Alcotest.(check bool) "lengths positive" true (List.for_all (fun l -> l > 0) lengths)
       end)
    sol.Solution.clusters

let test_engine_congested_declusters () =
  (* 9x9 grid with a pair of compatible valves but walls that make their
     joint routing awkward; engine must still complete via declustering if
     needed. *)
  let grid =
    Routing_grid.create ~width:9 ~height:9
      ~obstacles:[ Rect.make ~x0:4 ~y0:1 ~x1:4 ~y1:6 ] ()
  in
  let a = mk_valve 0 2 4 "01" and b = mk_valve 1 6 4 "01" in
  let pins =
    [ Point.make 0 4; Point.make 8 4; Point.make 4 0; Point.make 4 8 ]
  in
  let lm = [ Cluster.make_exn ~id:0 ~length_matched:true [ a; b ] ] in
  let p = Problem.create_exn ~grid ~valves:[ a; b ] ~lm_clusters:lm ~pins () in
  let sol = run_ok p in
  Alcotest.(check (float 1e-9)) "completes despite wall" 1.0 (Solution.stats sol).completion

let test_engine_single_valve_chip () =
  let grid = Routing_grid.create ~width:6 ~height:6 () in
  let v = mk_valve 0 3 3 "0" in
  let p = Problem.create_exn ~grid ~valves:[ v ] ~pins:[ Point.make 0 3 ] () in
  let sol = run_ok p in
  let stats = Solution.stats sol in
  Alcotest.(check (float 1e-9)) "routed" 1.0 stats.completion;
  Alcotest.(check int) "no multi clusters" 0 stats.clusters;
  Alcotest.(check int) "channel length is escape only" 3 stats.total_length

(* ---------- Solution validation catches corruption ---------- *)

let test_validate_detects_unmatched_lie () =
  let sol = run_ok (small_problem ()) in
  (* Forge a matched flag on a cluster with a too-large spread by tampering
     with delta: re-wrap the solution with delta = 0 and the pair cluster
     (odd distance) must fail validation if still marked matched. *)
  let tampered =
    { sol with
      Solution.problem =
        (match
           Problem.create ~name:"tampered"
             ~grid:sol.Solution.problem.Problem.grid
             ~valves:sol.Solution.problem.Problem.valves
             ~lm_clusters:sol.Solution.problem.Problem.lm_clusters
             ~pins:sol.Solution.problem.Problem.pins ~delta:0 ()
         with
         | Ok p -> p
         | Error e -> Alcotest.failf "tamper failed: %s" e) }
  in
  (* With delta = 0 some matched cluster may legitimately still satisfy the
     constraint; only check that validate runs and flags nothing new when
     spreads are 0, or flags the pair when its spread is 1. *)
  let has_spread_one =
    List.exists
      (fun (rc : Solution.routed_cluster) ->
         rc.matched && Routed.spread rc.routed = Some 1)
      sol.Solution.clusters
  in
  match Solution.validate tampered with
  | Ok () -> Alcotest.(check bool) "no spread-1 matched cluster" false has_spread_one
  | Error _ -> Alcotest.(check bool) "caught the lie" true has_spread_one

(* ---------- Report ---------- *)

let test_report_row_and_averages () =
  let p = small_problem () in
  let stats_of variant = Solution.stats (run_ok ~config:(Config.make ~variant ()) p) in
  let row =
    Report.row_of_stats ~design:"unit" ~without_sel:(stats_of Config.Without_selection)
      ~detour_first:(stats_of Config.Detour_first) ~pacor:(stats_of Config.Full)
  in
  Alcotest.(check int) "clusters" 2 row.Report.clusters;
  let (mw, md, mp), _, _, _ = Report.averages [ row ] in
  Alcotest.(check (float 1e-9)) "pacor baseline" 1.0 mp;
  Alcotest.(check bool) "ratios positive" true (mw > 0.0 && md > 0.0)

let test_report_paper_reference () =
  Alcotest.(check int) "seven designs" 7 (List.length Report.paper_table2);
  let chip2 = List.find (fun r -> r.Report.design = "Chip2") Report.paper_table2 in
  Alcotest.(check int) "chip2 ties" chip2.Report.pacor.Report.matched
    chip2.Report.without_sel.Report.matched

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_report_print_smoke () =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  Report.print_table ppf Report.paper_table2;
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  Alcotest.(check bool) "mentions Chip1" true (contains_substring out "Chip1");
  Alcotest.(check bool) "has an Avg. row" true (contains_substring out "Avg.")

let test_report_shape_checks_on_paper () =
  let checks = Report.shape_checks ~measured:Report.paper_table2 in
  List.iter
    (fun (name, ok) -> Alcotest.(check bool) name true ok)
    checks

let () =
  Alcotest.run "core"
    [ ( "problem",
        [ Alcotest.test_case "valid problem" `Quick test_problem_ok;
          Alcotest.test_case "rejects bad inputs" `Quick test_problem_rejects_bad_inputs;
          Alcotest.test_case "valve on obstacle" `Quick test_problem_valve_on_obstacle ] );
      ( "problem_io",
        [ Alcotest.test_case "roundtrip" `Quick test_problem_io_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_problem_io_parse_errors;
          Alcotest.test_case "comments" `Quick test_problem_io_comments ] );
      ( "routed",
        [ Alcotest.test_case "pair" `Quick test_routed_pair;
          Alcotest.test_case "singleton" `Quick test_routed_singleton;
          Alcotest.test_case "plain start cells" `Quick test_routed_plain_start_cells ] );
      ( "engine",
        [ Alcotest.test_case "small problem" `Quick test_engine_small_problem;
          Alcotest.test_case "deterministic" `Quick test_engine_deterministic;
          Alcotest.test_case "all variants" `Quick test_engine_variants;
          Alcotest.test_case "lengths within delta" `Quick test_engine_lengths_within_delta;
          Alcotest.test_case "congested chip" `Quick test_engine_congested_declusters;
          Alcotest.test_case "single valve chip" `Quick test_engine_single_valve_chip ] );
      ( "solution",
        [ Alcotest.test_case "validate detects stale matched flags" `Quick
            test_validate_detects_unmatched_lie ] );
      ( "report",
        [ Alcotest.test_case "row and averages" `Quick test_report_row_and_averages;
          Alcotest.test_case "paper reference table" `Quick test_report_paper_reference;
          Alcotest.test_case "print smoke" `Quick test_report_print_smoke;
          Alcotest.test_case "shape checks hold on paper data" `Quick
            test_report_shape_checks_on_paper ] ) ]
