open Pacor_timing

let rules = Pacor_grid.Design_rules.default
let params = Rc_model.default

(* ---------- RC model ---------- *)

let test_delay_zero () =
  Alcotest.(check (float 1e-15)) "zero length, zero delay" 0.0
    (Rc_model.delay_of_um params 0.0)

let test_delay_monotonic () =
  let rec check prev = function
    | [] -> ()
    | l :: rest ->
      let d = Rc_model.delay_of_um params l in
      Alcotest.(check bool) (Printf.sprintf "monotonic at %.0f" l) true (d > prev);
      check d rest
  in
  check (-1.0) [ 10.0; 100.0; 1000.0; 10_000.0; 100_000.0 ]

let test_delay_superlinear () =
  (* Distributed RC: doubling the length more than doubles the delay. *)
  let d1 = Rc_model.delay_of_um params 10_000.0 in
  let d2 = Rc_model.delay_of_um params 20_000.0 in
  Alcotest.(check bool) "superlinear" true (d2 > 2.0 *. d1)

let test_delay_magnitude () =
  (* 20 mm of channel settles on the order of milliseconds (the mVLSI
     regime the paper describes). *)
  let d = Rc_model.delay_of_um params 20_000.0 in
  Alcotest.(check bool) "between 1 and 100 ms" true (d > 1e-3 && d < 0.1)

let test_delay_negative_rejected () =
  Alcotest.check_raises "negative" (Invalid_argument "Rc_model.delay_of_um: negative length")
    (fun () -> ignore (Rc_model.delay_of_um params (-1.0)))

let test_grid_conversion () =
  let d_grid = Rc_model.delay_of_grid params ~rules 100 in
  let d_um =
    Rc_model.delay_of_um params
      (float_of_int (Pacor_grid.Design_rules.um_of_grid_length rules 100))
  in
  Alcotest.(check (float 1e-15)) "grid = um path" d_um d_grid

let test_skew_of_lengths () =
  Alcotest.(check (float 1e-15)) "singleton" 0.0
    (Rc_model.skew_of_lengths params ~rules [ 50 ]);
  Alcotest.(check (float 1e-15)) "equal lengths" 0.0
    (Rc_model.skew_of_lengths params ~rules [ 50; 50; 50 ]);
  Alcotest.(check bool) "unequal positive" true
    (Rc_model.skew_of_lengths params ~rules [ 10; 60 ] > 0.0)

let test_matched_skew_below_unmatched () =
  (* Lengths within delta=1 of each other produce far less skew than a
     spread of 10. *)
  let tight = Rc_model.skew_of_lengths params ~rules [ 40; 41 ] in
  let loose = Rc_model.skew_of_lengths params ~rules [ 31; 41 ] in
  Alcotest.(check bool) "tight << loose" true (tight *. 5.0 < loose)

(* ---------- Skew analysis on a routed solution ---------- *)

let solution () =
  match Pacor_designs.Table1.load "S1" with
  | Error e -> Alcotest.failf "load: %s" e
  | Ok problem ->
    (match Pacor.Engine.run problem with
     | Ok sol -> sol
     | Error e -> Alcotest.failf "engine: %s" e.message)

let test_analyze_reports_lm_clusters () =
  let report = Skew.analyze (solution ()) in
  Alcotest.(check int) "two clusters" 2 (List.length report.clusters);
  List.iter
    (fun (c : Skew.cluster_report) ->
       Alcotest.(check bool) "delays positive" true
         (List.for_all (fun (_, d) -> d > 0.0) c.valve_delays);
       Alcotest.(check bool) "skew non-negative" true (c.skew_s >= 0.0))
    report.clusters;
  Alcotest.(check bool) "worst identified" true (report.worst_cluster <> None)

let test_matched_clusters_have_small_skew () =
  let report = Skew.analyze (solution ()) in
  (* delta = 1 at S1 scale: skew below 0.1 ms for every matched cluster. *)
  List.iter
    (fun (c : Skew.cluster_report) ->
       if c.matched then
         Alcotest.(check bool)
           (Printf.sprintf "cluster %d skew small" c.cluster_id)
           true (c.skew_s < 1e-4))
    report.clusters

let test_pp_smoke () =
  let report = Skew.analyze (solution ()) in
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Skew.pp ppf report;
  Format.pp_print_flush ppf ();
  Alcotest.(check bool) "mentions skew" true
    (String.length (Buffer.contents buf) > 20)

(* ---------- QCheck ---------- *)

let prop_delay_monotone =
  QCheck.Test.make ~name:"delay monotone in length" ~count:200
    (QCheck.pair (QCheck.int_range 0 5000) (QCheck.int_range 0 5000))
    (fun (a, b) ->
       let da = Rc_model.delay_of_grid params ~rules a in
       let db = Rc_model.delay_of_grid params ~rules b in
       (a <= b && da <= db) || (a > b && da > db))

let prop_skew_invariant_under_common_offset_sign =
  QCheck.Test.make ~name:"skew grows with common length at fixed spread" ~count:100
    (QCheck.pair (QCheck.int_range 1 500) (QCheck.int_range 1 20))
    (fun (base, spread) ->
       (* Quadratic delay: the same length spread produces more skew on
          longer channels. *)
       let near = Rc_model.skew_of_lengths params ~rules [ base; base + spread ] in
       let far =
         Rc_model.skew_of_lengths params ~rules [ base + 100; base + 100 + spread ]
       in
       far > near)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_delay_monotone; prop_skew_invariant_under_common_offset_sign ]

let () =
  Alcotest.run "timing"
    [ ( "rc_model",
        [ Alcotest.test_case "zero" `Quick test_delay_zero;
          Alcotest.test_case "monotonic" `Quick test_delay_monotonic;
          Alcotest.test_case "superlinear" `Quick test_delay_superlinear;
          Alcotest.test_case "magnitude" `Quick test_delay_magnitude;
          Alcotest.test_case "negative rejected" `Quick test_delay_negative_rejected;
          Alcotest.test_case "grid conversion" `Quick test_grid_conversion;
          Alcotest.test_case "skew of lengths" `Quick test_skew_of_lengths;
          Alcotest.test_case "matched below unmatched" `Quick
            test_matched_skew_below_unmatched ] );
      ( "skew_analysis",
        [ Alcotest.test_case "reports clusters" `Quick test_analyze_reports_lm_clusters;
          Alcotest.test_case "matched skew small" `Quick
            test_matched_clusters_have_small_skew;
          Alcotest.test_case "pp" `Quick test_pp_smoke ] );
      ("properties", qcheck_cases) ]
