open Pacor_geom
open Pacor_grid
open Pacor_dme
open Pacor_select

let grid = Routing_grid.create ~width:30 ~height:30 ()

let candidates_of sinks =
  Candidate.enumerate ~grid ~usable:(fun _ -> true)
    (List.map (fun (x, y) -> Point.make x y) sinks)

(* A hand-built candidate with chosen edges, for cost tests. *)
let fake_candidate edges mismatch =
  let edges =
    List.map
      (fun ((x1, y1), (x2, y2)) ->
         { Candidate.parent_pos = Point.make x1 y1; child_pos = Point.make x2 y2 })
      edges
  in
  {
    Candidate.root = Point.make 0 0;
    nodes = [];
    edges;
    sinks = [| Point.make 0 0 |];
    full_path_lengths = [| 0 |];
    mismatch;
    total_estimate = 0;
  }

(* ---------- Cost functions ---------- *)

let test_overlap_cost_disjoint () =
  let a = fake_candidate [ ((0, 0), (5, 0)) ] 0 in
  let b = fake_candidate [ ((0, 10), (5, 10)) ] 0 in
  Alcotest.(check (float 1e-9)) "no overlap" 0.0 (Tree_select.overlap_cost a b)

let test_overlap_cost_identical () =
  let a = fake_candidate [ ((0, 0), (5, 0)) ] 0 in
  Alcotest.(check (float 1e-9)) "full overlap = 1" 1.0 (Tree_select.overlap_cost a a)

let test_overlap_cost_partial () =
  (* Edge boxes [0..5]x[0..0] (6 cells) and [3..8]x[0..0] (6 cells) share 3
     cells: ratio 0.5. *)
  let a = fake_candidate [ ((0, 0), (5, 0)) ] 0 in
  let b = fake_candidate [ ((3, 0), (8, 0)) ] 0 in
  Alcotest.(check (float 1e-9)) "half overlap" 0.5 (Tree_select.overlap_cost a b)

let test_overlap_symmetric () =
  let a = fake_candidate [ ((0, 0), (4, 3)); ((4, 3), (7, 1)) ] 0 in
  let b = fake_candidate [ ((2, 1), (6, 2)) ] 0 in
  Alcotest.(check (float 1e-9)) "symmetric" (Tree_select.overlap_cost a b)
    (Tree_select.overlap_cost b a)

let test_mismatch_cost_normalised () =
  let c0 = fake_candidate [] 0 and c2 = fake_candidate [] 2 and c4 = fake_candidate [] 4 in
  let per_cluster = [ [ c0; c4 ]; [ c2 ] ] in
  Alcotest.(check (float 1e-9)) "zero mismatch" 0.0 (Tree_select.mismatch_cost per_cluster c0);
  Alcotest.(check (float 1e-9)) "max mismatch" 1.0 (Tree_select.mismatch_cost per_cluster c4);
  Alcotest.(check (float 1e-9)) "half" 0.5 (Tree_select.mismatch_cost per_cluster c2)

(* ---------- Selection ---------- *)

let test_select_one_per_cluster () =
  let per_cluster = [ candidates_of [ (2, 2); (2, 8) ]; candidates_of [ (20, 20); (26, 20) ] ] in
  match Tree_select.select per_cluster with
  | Error e -> Alcotest.failf "select failed: %s" e
  | Ok sel ->
    Alcotest.(check int) "one per cluster" 2 (List.length sel.chosen);
    Alcotest.(check bool) "objective non-positive" true (sel.objective <= 1e-9)

let test_select_avoids_overlap () =
  (* Cluster A has two candidates: one overlapping cluster B's only
     candidate, one clean. The selection must pick the clean one. *)
  let overlapping = fake_candidate [ ((0, 0), (10, 0)) ] 0 in
  let clean = fake_candidate [ ((0, 5), (10, 5)) ] 0 in
  let b_only = fake_candidate [ ((4, 0), (8, 0)) ] 0 in
  (match Tree_select.select [ [ overlapping; clean ]; [ b_only ] ] with
   | Error e -> Alcotest.failf "select failed: %s" e
   | Ok sel ->
     (match sel.chosen with
      | [ a; _ ] ->
        Alcotest.(check bool) "clean candidate picked" true (a == clean)
      | _ -> Alcotest.fail "expected two choices"))

let test_select_trades_mismatch_for_overlap () =
  (* lambda = 0.1: overlap dominates mismatch, so a slightly mismatched
     but non-overlapping candidate wins. *)
  let matched_overlapping = fake_candidate [ ((0, 0), (10, 0)) ] 0 in
  let mismatched_clean = fake_candidate [ ((0, 5), (10, 5)) ] 3 in
  let b_only = fake_candidate [ ((2, 0), (9, 0)) ] 3 in
  match Tree_select.select [ [ matched_overlapping; mismatched_clean ]; [ b_only ] ] with
  | Error e -> Alcotest.failf "select failed: %s" e
  | Ok sel ->
    (match sel.chosen with
     | [ a; _ ] -> Alcotest.(check bool) "mismatched clean wins" true (a == mismatched_clean)
     | _ -> Alcotest.fail "expected two choices")

let test_select_empty_cluster_error () =
  Alcotest.(check bool) "error on empty candidate list" true
    (Result.is_error (Tree_select.select [ []; [ fake_candidate [] 0 ] ]))

let test_select_no_clusters () =
  match Tree_select.select [] with
  | Ok sel -> Alcotest.(check int) "empty selection" 0 (List.length sel.chosen)
  | Error e -> Alcotest.failf "unexpected error: %s" e

(* Brute-force optimal selection for small instances. *)
let brute_force ~lambda per_cluster =
  let rec all_choices = function
    | [] -> [ [] ]
    | cands :: rest ->
      List.concat_map (fun c -> List.map (fun tl -> c :: tl) (all_choices rest)) cands
  in
  List.fold_left
    (fun (best, bw) choice ->
       let w = Tree_select.selection_weight ~lambda per_cluster choice in
       if w > bw then (choice, w) else (best, bw))
    ([], neg_infinity)
    (all_choices per_cluster)

let random_instance seed =
  let rng = ref seed in
  let next () =
    rng := (!rng * 1103515245) + 12345;
    abs !rng
  in
  List.init 3 (fun _ ->
    List.init
      (1 + (next () mod 3))
      (fun _ ->
         let x1 = next () mod 15 and y1 = next () mod 15 in
         let x2 = next () mod 15 and y2 = next () mod 15 in
         fake_candidate [ ((x1, y1), (x2, y2)) ] (next () mod 5)))

let test_mwcp_clique_matches_exact () =
  (* The paper's literal MWCP formulation and the direct branch-and-bound
     must agree on the optimum. *)
  List.iter
    (fun seed ->
       let per_cluster = random_instance seed in
       let run solver =
         match Tree_select.select ~config:{ Tree_select.lambda = 0.1; solver } per_cluster with
         | Ok sel -> sel.objective
         | Error e -> Alcotest.failf "solver failed: %s" e
       in
       Alcotest.(check (float 1e-9)) (Printf.sprintf "seed %d" seed)
         (run Tree_select.Exact) (run Tree_select.Mwcp_clique))
    [ 3; 17; 99; 123; 4242; 31337 ]

let test_exact_matches_brute_force () =
  List.iter
    (fun seed ->
       let per_cluster = random_instance seed in
       let _, brute_w = brute_force ~lambda:0.1 per_cluster in
       match
         Tree_select.select
           ~config:{ Tree_select.lambda = 0.1; solver = Tree_select.Exact }
           per_cluster
       with
       | Error e -> Alcotest.failf "select failed: %s" e
       | Ok sel -> Alcotest.(check (float 1e-9)) "optimal" brute_w sel.objective)
    [ 3; 17; 99; 123; 4242 ]

let test_solvers_agree_on_feasibility () =
  let per_cluster = random_instance 7 in
  List.iter
    (fun solver ->
       match Tree_select.select ~config:{ Tree_select.lambda = 0.1; solver } per_cluster with
       | Error e -> Alcotest.failf "solver failed: %s" e
       | Ok sel -> Alcotest.(check int) "full selection" 3 (List.length sel.chosen))
    [ Tree_select.Exact; Tree_select.Greedy; Tree_select.Local_search;
      Tree_select.Mwcp_clique ]

let test_local_search_at_least_greedy () =
  List.iter
    (fun seed ->
       let per_cluster = random_instance seed in
       let run solver =
         match Tree_select.select ~config:{ Tree_select.lambda = 0.1; solver } per_cluster with
         | Ok sel -> sel.objective
         | Error e -> Alcotest.failf "solver failed: %s" e
       in
       let g = run Tree_select.Greedy and ls = run Tree_select.Local_search in
       let ex = run Tree_select.Exact in
       Alcotest.(check bool) "local search >= greedy" true (ls >= g -. 1e-9);
       Alcotest.(check bool) "exact >= local search" true (ex >= ls -. 1e-9))
    [ 11; 29; 57 ]

(* ---------- QCheck ---------- *)

let arb_instance = QCheck.map random_instance QCheck.small_int

let prop_exact_optimal =
  QCheck.Test.make ~name:"exact solver is optimal" ~count:40 arb_instance
    (fun per_cluster ->
       let _, brute_w = brute_force ~lambda:0.1 per_cluster in
       match
         Tree_select.select
           ~config:{ Tree_select.lambda = 0.1; solver = Tree_select.Exact }
           per_cluster
       with
       | Ok sel -> Float.abs (sel.objective -. brute_w) < 1e-9
       | Error _ -> false)

let prop_selection_weight_nonpositive =
  QCheck.Test.make ~name:"objective always <= 0" ~count:40 arb_instance
    (fun per_cluster ->
       match Tree_select.select per_cluster with
       | Ok sel -> sel.objective <= 1e-9
       | Error _ -> false)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest [ prop_exact_optimal; prop_selection_weight_nonpositive ]

let () =
  Alcotest.run "select"
    [ ( "costs",
        [ Alcotest.test_case "disjoint overlap" `Quick test_overlap_cost_disjoint;
          Alcotest.test_case "identical overlap" `Quick test_overlap_cost_identical;
          Alcotest.test_case "partial overlap" `Quick test_overlap_cost_partial;
          Alcotest.test_case "symmetric" `Quick test_overlap_symmetric;
          Alcotest.test_case "mismatch normalised" `Quick test_mismatch_cost_normalised ] );
      ( "selection",
        [ Alcotest.test_case "one per cluster" `Quick test_select_one_per_cluster;
          Alcotest.test_case "avoids overlap" `Quick test_select_avoids_overlap;
          Alcotest.test_case "mismatch vs overlap tradeoff" `Quick
            test_select_trades_mismatch_for_overlap;
          Alcotest.test_case "empty cluster error" `Quick test_select_empty_cluster_error;
          Alcotest.test_case "no clusters" `Quick test_select_no_clusters;
          Alcotest.test_case "exact vs brute force" `Quick test_exact_matches_brute_force;
          Alcotest.test_case "MWCP clique = exact" `Quick test_mwcp_clique_matches_exact;
          Alcotest.test_case "all solvers feasible" `Quick test_solvers_agree_on_feasibility;
          Alcotest.test_case "solver quality ordering" `Quick test_local_search_at_least_greedy ] );
      ("properties", qcheck_cases) ]
