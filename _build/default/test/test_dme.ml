open Pacor_geom
open Pacor_grid
open Pacor_dme

let pts l = List.map (fun (x, y) -> Point.make x y) l

(* ---------- Topology ---------- *)

let test_topology_sizes () =
  let topo = Topology.balanced_bipartition (pts [ (0, 0); (4, 0); (0, 4); (4, 4) ]) in
  Alcotest.(check int) "size" 4 (Topology.size topo);
  Alcotest.(check bool) "balanced" true (Topology.is_balanced topo);
  Alcotest.(check (list int)) "all leaves present" [ 0; 1; 2; 3 ]
    (List.sort Int.compare (Topology.leaves topo))

let test_topology_pairs_nearby () =
  (* Two tight pairs far apart: BB must not split a pair. *)
  let topo =
    Topology.balanced_bipartition (pts [ (0, 0); (1, 0); (20, 20); (21, 20) ])
  in
  (match topo with
   | Topology.Node (l, r) ->
     let sides =
       [ List.sort Int.compare (Topology.leaves l);
         List.sort Int.compare (Topology.leaves r) ]
     in
     Alcotest.(check bool) "pairs kept together" true
       (List.mem [ 0; 1 ] sides && List.mem [ 2; 3 ] sides)
   | Topology.Leaf _ -> Alcotest.fail "expected a node")

let test_topology_single () =
  let topo = Topology.balanced_bipartition (pts [ (3, 3) ]) in
  Alcotest.(check int) "single leaf" 1 (Topology.size topo)

let test_topology_odd () =
  let topo = Topology.balanced_bipartition (pts [ (0, 0); (2, 0); (4, 0) ]) in
  Alcotest.(check int) "three sinks" 3 (Topology.size topo);
  Alcotest.(check bool) "balanced" true (Topology.is_balanced topo)

let test_topology_large_median_split () =
  let sinks = List.init 20 (fun i -> Point.make (i * 3) ((i * 7) mod 13)) in
  let topo = Topology.balanced_bipartition sinks in
  Alcotest.(check int) "all sinks" 20 (Topology.size topo);
  Alcotest.(check bool) "balanced" true (Topology.is_balanced topo)

let test_topology_empty () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Topology.balanced_bipartition: no sinks") (fun () ->
      ignore (Topology.balanced_bipartition []))

(* ---------- Merge ---------- *)

let build sinks =
  let arr = Array.of_list (pts sinks) in
  let topo = Topology.balanced_bipartition (Array.to_list arr) in
  (arr, Merge.build ~sinks:arr topo)

let test_merge_two_sinks () =
  let _, root = build [ (0, 0); (4, 0) ] in
  (* Midpoints locus: sink distance is half the doubled distance 8. *)
  Alcotest.(check int) "sink distance" 4 root.Merge.sink_dist;
  Alcotest.(check int) "two children" 2 (List.length root.Merge.children)

let test_merge_consistency_small () =
  List.iter
    (fun sinks ->
       let _, root = build sinks in
       Alcotest.(check bool) "distances consistent" true
         (Merge.check_sink_distances root))
    [ [ (0, 0); (4, 0) ];
      [ (0, 0); (3, 0) ] (* odd distance: Lemma 1 territory *);
      [ (2, 2); (2, 10); (12, 3); (13, 11) ] (* the Fig. 3 shape *);
      [ (0, 0); (10, 0); (5, 9) ];
      [ (1, 1); (2, 7); (9, 2); (8, 8); (5, 5) ] ]

let test_merge_regions_count () =
  let _, root = build [ (2, 2); (2, 10); (12, 3); (13, 11) ] in
  (* A 4-leaf binary tree has 3 internal nodes. *)
  Alcotest.(check int) "three merging regions" 3 (List.length (Merge.merging_regions root))

let test_merge_detour_case () =
  (* Clustered pair far from a lone sink: balancing forces a detour edge. *)
  let _, root = build [ (0, 0); (1, 0); (30, 0) ] in
  Alcotest.(check bool) "consistent despite detour" true (Merge.check_sink_distances root);
  Alcotest.(check bool) "sink distance large enough" true (root.Merge.sink_dist >= 29)

let test_merge_bad_leaf () =
  let arr = [| Point.make 0 0 |] in
  Alcotest.check_raises "leaf out of range"
    (Invalid_argument "Merge.build: leaf index out of range") (fun () ->
      ignore (Merge.build ~sinks:arr (Topology.Leaf 5)))

(* ---------- Candidate ---------- *)

let grid20 = Routing_grid.create ~width:20 ~height:20 ()

let test_candidate_balance_fig3 () =
  let sinks = pts [ (2, 2); (2, 10); (12, 3); (13, 11) ] in
  let cands = Candidate.enumerate ~grid:grid20 ~usable:(fun _ -> true) sinks in
  Alcotest.(check bool) "several candidates" true (List.length cands >= 2);
  List.iter
    (fun (c : Candidate.t) ->
       (* DME with integer rounding leaves at most a couple of units of
          mismatch, eliminated later by detouring. *)
       Alcotest.(check bool) "near-balanced" true (c.mismatch <= 4);
       Alcotest.(check int) "four sinks" 4 (Array.length c.sinks);
       (* Full paths: the estimate for each sink must be at least its
          Manhattan distance to the root. *)
       Array.iteri
         (fun i pos ->
            Alcotest.(check bool) "full path >= manhattan to root" true
              (c.full_path_lengths.(i) >= Point.manhattan pos c.root))
         c.sinks)
    cands

let test_candidate_singleton () =
  match Candidate.enumerate ~grid:grid20 ~usable:(fun _ -> true) [ Point.make 5 5 ] with
  | [ c ] ->
    Alcotest.(check int) "no edges" 0 (List.length c.edges);
    Alcotest.(check int) "zero mismatch" 0 c.mismatch
  | _ -> Alcotest.fail "expected exactly one trivial candidate"

let test_candidate_pair () =
  let cands =
    Candidate.enumerate ~grid:grid20 ~usable:(fun _ -> true)
      (pts [ (3, 3); (9, 3) ])
  in
  Alcotest.(check bool) "non-empty" true (cands <> []);
  List.iter
    (fun (c : Candidate.t) ->
       Alcotest.(check bool) "estimate at least distance" true (c.total_estimate >= 6))
    cands

let test_candidate_nodes_structure () =
  let sinks = pts [ (2, 2); (2, 10); (12, 3); (13, 11) ] in
  match Candidate.enumerate ~grid:grid20 ~usable:(fun _ -> true) sinks with
  | [] -> Alcotest.fail "no candidates"
  | c :: _ ->
    let nodes = c.Candidate.nodes in
    (* Exactly one root, id 0, and every other node's parent exists. *)
    let roots = List.filter (fun (n : Candidate.node) -> n.parent = None) nodes in
    Alcotest.(check int) "one root" 1 (List.length roots);
    Alcotest.(check int) "root id" 0 (List.hd roots).Candidate.id;
    List.iter
      (fun (n : Candidate.node) ->
         match n.parent with
         | None -> ()
         | Some pid ->
           Alcotest.(check bool) "parent exists" true
             (List.exists (fun (m : Candidate.node) -> m.id = pid) nodes))
      nodes;
    (* Sinks are exactly the leaves. *)
    let sink_nodes = List.filter (fun (n : Candidate.node) -> n.sink <> None) nodes in
    Alcotest.(check int) "four sink nodes" 4 (List.length sink_nodes)

let test_chain_to_root () =
  let sinks = pts [ (2, 2); (2, 10); (12, 3); (13, 11) ] in
  match Candidate.enumerate ~grid:grid20 ~usable:(fun _ -> true) sinks with
  | [] -> Alcotest.fail "no candidates"
  | c :: _ ->
    for sink = 0 to 3 do
      let chain = Candidate.chain_to_root c ~sink in
      Alcotest.(check bool) "chain non-empty" true (chain <> []);
      (* The last pair's parent is the root (id 0). *)
      let _, last_parent = List.nth chain (List.length chain - 1) in
      Alcotest.(check int) "ends at root" 0 last_parent
    done

let test_candidate_avoids_obstacles () =
  let obstacle = Rect.make ~x0:6 ~y0:5 ~x1:8 ~y1:8 in
  let grid = Routing_grid.create ~width:20 ~height:20 ~obstacles:[ obstacle ] () in
  let usable p = Routing_grid.free grid p in
  let sinks = pts [ (2, 2); (2, 10); (12, 3); (13, 11) ] in
  let cands = Candidate.enumerate ~grid ~usable sinks in
  Alcotest.(check bool) "candidates exist" true (cands <> []);
  List.iter
    (fun (c : Candidate.t) ->
       List.iter
         (fun (n : Candidate.node) ->
            if n.sink = None then
              Alcotest.(check bool) "internal node off obstacle" true
                (not (Rect.contains obstacle n.pos)))
         c.nodes)
    cands

let test_candidate_dedup_and_sort () =
  let sinks = pts [ (2, 2); (2, 10); (12, 3); (13, 11) ] in
  let cands = Candidate.enumerate ~grid:grid20 ~usable:(fun _ -> true) ~max_candidates:4 sinks in
  Alcotest.(check bool) "bounded" true (List.length cands <= 4);
  let rec sorted = function
    | (a : Candidate.t) :: (b : Candidate.t) :: rest ->
      (a.mismatch < b.mismatch
       || (a.mismatch = b.mismatch && a.total_estimate <= b.total_estimate))
      && sorted (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "sorted by mismatch then estimate" true (sorted cands)

(* ---------- QCheck ---------- *)

let arb_sinks =
  QCheck.make
    QCheck.Gen.(
      let* n = int_range 2 7 in
      let rec gen_points acc k =
        if k = 0 then return acc
        else
          let* x = int_range 1 18 and* y = int_range 1 18 in
          let p = Point.make x y in
          if List.exists (Point.equal p) acc then gen_points acc k
          else gen_points (p :: acc) (k - 1)
      in
      gen_points [] n)

let prop_topology_partition =
  QCheck.Test.make ~name:"BB topology is a permutation of sinks" ~count:100 arb_sinks
    (fun sinks ->
       let topo = Topology.balanced_bipartition sinks in
       List.sort Int.compare (Topology.leaves topo)
       = List.init (List.length sinks) Fun.id
       && Topology.is_balanced topo)

let prop_merge_consistent =
  QCheck.Test.make ~name:"merge regions consistent" ~count:100 arb_sinks (fun sinks ->
    let arr = Array.of_list sinks in
    let topo = Topology.balanced_bipartition sinks in
    Merge.check_sink_distances (Merge.build ~sinks:arr topo))

let prop_candidates_cover_sinks =
  QCheck.Test.make ~name:"candidates keep sinks at their positions" ~count:60 arb_sinks
    (fun sinks ->
       let grid = Routing_grid.create ~width:20 ~height:20 () in
       let cands = Candidate.enumerate ~grid ~usable:(fun _ -> true) sinks in
       cands <> []
       && List.for_all
            (fun (c : Candidate.t) ->
               List.for_all2
                 (fun s s' -> Point.equal s s')
                 sinks
                 (Array.to_list c.sinks))
            cands)

let prop_candidate_mismatch_bounded =
  (* DME mismatch before detouring is bounded by the rounding slack: one
     unit per merge level. *)
  QCheck.Test.make ~name:"candidate mismatch small" ~count:60 arb_sinks (fun sinks ->
    let grid = Routing_grid.create ~width:20 ~height:20 () in
    let cands = Candidate.enumerate ~grid ~usable:(fun _ -> true) sinks in
    let levels =
      let topo = Topology.balanced_bipartition sinks in
      Topology.depth topo
    in
    List.for_all (fun (c : Candidate.t) -> c.mismatch <= 2 * levels) cands)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_topology_partition; prop_merge_consistent; prop_candidates_cover_sinks;
      prop_candidate_mismatch_bounded ]

let () =
  Alcotest.run "dme"
    [ ( "topology",
        [ Alcotest.test_case "sizes" `Quick test_topology_sizes;
          Alcotest.test_case "pairs kept together" `Quick test_topology_pairs_nearby;
          Alcotest.test_case "single" `Quick test_topology_single;
          Alcotest.test_case "odd count" `Quick test_topology_odd;
          Alcotest.test_case "median split" `Quick test_topology_large_median_split;
          Alcotest.test_case "empty" `Quick test_topology_empty ] );
      ( "merge",
        [ Alcotest.test_case "two sinks" `Quick test_merge_two_sinks;
          Alcotest.test_case "consistency" `Quick test_merge_consistency_small;
          Alcotest.test_case "region count" `Quick test_merge_regions_count;
          Alcotest.test_case "detour case" `Quick test_merge_detour_case;
          Alcotest.test_case "bad leaf" `Quick test_merge_bad_leaf ] );
      ( "candidate",
        [ Alcotest.test_case "fig3 balance" `Quick test_candidate_balance_fig3;
          Alcotest.test_case "singleton" `Quick test_candidate_singleton;
          Alcotest.test_case "pair" `Quick test_candidate_pair;
          Alcotest.test_case "node structure" `Quick test_candidate_nodes_structure;
          Alcotest.test_case "chain to root" `Quick test_chain_to_root;
          Alcotest.test_case "avoids obstacles" `Quick test_candidate_avoids_obstacles;
          Alcotest.test_case "dedup and sort" `Quick test_candidate_dedup_and_sort ] );
      ("properties", qcheck_cases) ]
