open Pacor_geom
open Pacor_grid

let point = Alcotest.testable Point.pp Point.equal

(* ---------- Design rules ---------- *)

let test_rules () =
  let r = Design_rules.default in
  Alcotest.(check int) "pitch" 20 (Design_rules.grid_pitch_um r);
  Alcotest.(check int) "length conversion" 100 (Design_rules.um_of_grid_length r 5);
  Alcotest.(check bool) "default valid" true (Design_rules.validate r = Ok r);
  let bad = { r with Design_rules.channel_width_um = 0 } in
  Alcotest.(check bool) "zero width invalid" true (Result.is_error (Design_rules.validate bad))

(* ---------- Obstacle map ---------- *)

let test_obstacle_basic () =
  let m = Obstacle_map.create ~width:10 ~height:8 in
  Alcotest.(check int) "dims" 10 (Obstacle_map.width m);
  Alcotest.(check bool) "initially free" true (Obstacle_map.free m (Point.make 3 3));
  Obstacle_map.block m (Point.make 3 3);
  Alcotest.(check bool) "blocked" true (Obstacle_map.blocked m (Point.make 3 3));
  Alcotest.(check int) "count" 1 (Obstacle_map.blocked_count m);
  Obstacle_map.block m (Point.make 3 3);
  Alcotest.(check int) "idempotent count" 1 (Obstacle_map.blocked_count m);
  Obstacle_map.unblock m (Point.make 3 3);
  Alcotest.(check bool) "unblocked" true (Obstacle_map.free m (Point.make 3 3));
  Alcotest.(check int) "count back" 0 (Obstacle_map.blocked_count m)

let test_obstacle_bounds () =
  let m = Obstacle_map.create ~width:4 ~height:4 in
  Alcotest.(check bool) "out of bounds blocked" true (Obstacle_map.blocked m (Point.make (-1) 0));
  Alcotest.(check bool) "out of bounds blocked 2" true (Obstacle_map.blocked m (Point.make 4 0));
  Obstacle_map.block m (Point.make 99 99);
  Alcotest.(check int) "oob block is noop" 0 (Obstacle_map.blocked_count m)

let test_obstacle_rect_and_copy () =
  let m = Obstacle_map.create ~width:10 ~height:10 in
  Obstacle_map.block_rect m (Rect.make ~x0:2 ~y0:2 ~x1:4 ~y1:3);
  Alcotest.(check int) "rect cells" 6 (Obstacle_map.blocked_count m);
  let c = Obstacle_map.copy m in
  Obstacle_map.block c (Point.make 0 0);
  Alcotest.(check int) "copy independent" 6 (Obstacle_map.blocked_count m);
  Alcotest.(check int) "copy updated" 7 (Obstacle_map.blocked_count c);
  (* Rect partially out of bounds clips. *)
  Obstacle_map.block_rect m (Rect.make ~x0:8 ~y0:8 ~x1:20 ~y1:20);
  Alcotest.(check int) "clipped rect" (6 + 4) (Obstacle_map.blocked_count m)

let test_obstacle_iter () =
  let m = Obstacle_map.create ~width:5 ~height:5 in
  Obstacle_map.block_points m [ Point.make 1 1; Point.make 3 2 ];
  let seen = ref [] in
  Obstacle_map.iter_blocked m (fun p -> seen := p :: !seen);
  Alcotest.(check int) "iterated both" 2 (List.length !seen)

(* ---------- Routing grid ---------- *)

let test_grid_boundary () =
  let g = Routing_grid.create ~width:5 ~height:4 () in
  let b = Routing_grid.boundary_points g in
  Alcotest.(check int) "perimeter count" (2 * (5 + 4) - 4) (List.length b);
  List.iter (fun p -> Alcotest.(check bool) "on boundary" true (Routing_grid.on_boundary g p)) b;
  Alcotest.(check bool) "interior not boundary" false
    (Routing_grid.on_boundary g (Point.make 2 2));
  let sorted = List.sort_uniq Point.compare b in
  Alcotest.(check int) "no duplicates" (List.length b) (List.length sorted)

let test_grid_1xn_boundary () =
  let g = Routing_grid.create ~width:1 ~height:5 () in
  Alcotest.(check int) "thin grid boundary" 5
    (List.length (Routing_grid.boundary_points g))

let test_grid_nearest_free () =
  let g =
    Routing_grid.create ~width:7 ~height:7
      ~obstacles:[ Rect.make ~x0:2 ~y0:2 ~x1:4 ~y1:4 ] ()
  in
  (match Routing_grid.nearest_free g (Point.make 3 3) with
   | None -> Alcotest.fail "expected a free cell"
   | Some p ->
     Alcotest.(check bool) "free" true (Routing_grid.free g p);
     Alcotest.(check int) "at distance 2" 2 (Point.manhattan (Point.make 3 3) p));
  (match Routing_grid.nearest_free g (Point.make 0 0) with
   | Some p -> Alcotest.check point "already free" (Point.make 0 0) p
   | None -> Alcotest.fail "expected the same cell")

let test_grid_index_roundtrip () =
  let g = Routing_grid.create ~width:9 ~height:5 () in
  for y = 0 to 4 do
    for x = 0 to 8 do
      let p = Point.make x y in
      Alcotest.check point "roundtrip" p
        (Routing_grid.point_of_index g (Routing_grid.index g p))
    done
  done

let test_grid_work_map_isolated () =
  let g = Routing_grid.create ~width:5 ~height:5 () in
  let w = Routing_grid.fresh_work_map g in
  Obstacle_map.block w (Point.make 2 2);
  Alcotest.(check bool) "static unaffected" true (Routing_grid.free g (Point.make 2 2))

(* ---------- Path ---------- *)

let mk_path pts = Path.of_points (List.map (fun (x, y) -> Point.make x y) pts)

let test_path_basics () =
  let p = mk_path [ (0, 0); (1, 0); (1, 1); (2, 1) ] in
  Alcotest.(check int) "length" 3 (Path.length p);
  Alcotest.check point "source" (Point.make 0 0) (Path.source p);
  Alcotest.check point "target" (Point.make 2 1) (Path.target p);
  Alcotest.(check bool) "mem" true (Path.mem p (Point.make 1 1));
  Alcotest.(check bool) "not mem" false (Path.mem p (Point.make 2 0))

let test_path_invalid () =
  Alcotest.(check bool) "empty rejected" true (Path.of_points_opt [] = None);
  Alcotest.(check bool) "jump rejected" true
    (Path.of_points_opt [ Point.make 0 0; Point.make 2 0 ] = None);
  Alcotest.(check bool) "repeat rejected" true
    (Path.of_points_opt
       [ Point.make 0 0; Point.make 1 0; Point.make 0 0 ]
     = None);
  Alcotest.(check bool) "diagonal rejected" true
    (Path.of_points_opt [ Point.make 0 0; Point.make 1 1 ] = None)

let test_path_trivial () =
  let p = mk_path [ (3, 3) ] in
  Alcotest.(check int) "trivial length" 0 (Path.length p);
  Alcotest.(check bool) "is trivial" true (Path.is_trivial p)

let test_path_reverse_append () =
  let p = mk_path [ (0, 0); (1, 0); (2, 0) ] in
  let r = Path.reverse p in
  Alcotest.check point "reversed source" (Point.make 2 0) (Path.source r);
  let q = mk_path [ (2, 0); (2, 1) ] in
  let joined = Path.append p q in
  Alcotest.(check int) "joined length" 3 (Path.length joined);
  Alcotest.check_raises "bad append"
    (Invalid_argument "Path.append: endpoints do not meet") (fun () ->
      ignore (Path.append p (mk_path [ (5, 5); (5, 6) ])))

let test_path_replace_segment () =
  let p = mk_path [ (0, 0); (1, 0); (2, 0); (3, 0) ] in
  (* Replace edge (1,0)-(2,0) with a U detour. *)
  let seg = mk_path [ (1, 0); (1, 1); (2, 1); (2, 0) ] in
  let p' = Path.replace_segment p ~from_idx:1 ~to_idx:2 seg in
  Alcotest.(check int) "lengthened by 2" (Path.length p + 2) (Path.length p');
  Alcotest.check point "same target" (Path.target p) (Path.target p');
  Alcotest.check point "same source" (Path.source p) (Path.source p')

let test_path_shares_vertex () =
  let a = mk_path [ (0, 0); (1, 0); (2, 0) ] in
  let b = mk_path [ (2, 0); (2, 1) ] in
  let c = mk_path [ (5, 5); (5, 6) ] in
  Alcotest.(check bool) "share" true (Path.shares_vertex a b);
  Alcotest.(check bool) "disjoint" false (Path.shares_vertex a c)

let test_path_bounding_box () =
  let p = mk_path [ (1, 1); (1, 2); (2, 2) ] in
  let bb = Path.bounding_box p in
  Alcotest.(check int) "bb cells" 4 (Rect.cells bb)

(* ---------- QCheck ---------- *)

(* Random staircase path generator: always valid. *)
let arb_path =
  let gen =
    QCheck.Gen.(
      let* sx = int_range 0 10 and* sy = int_range 0 10 in
      let* n = int_range 0 15 in
      let rec build p acc steps =
        if steps = 0 then return (List.rev acc)
        else
          let next = Point.make (p.Point.x + 1) p.Point.y in
          let next2 = Point.make p.Point.x (p.Point.y + 1) in
          let* right = bool in
          let q = if right then next else next2 in
          build q (q :: acc) (steps - 1)
      in
      let start = Point.make sx sy in
      build start [ start ] n)
  in
  QCheck.make gen

let prop_path_roundtrip =
  QCheck.Test.make ~name:"of_points . points = id" ~count:200 arb_path (fun pts ->
    let p = Pacor_grid.Path.of_points pts in
    List.for_all2 Point.equal pts (Pacor_grid.Path.points p))

let prop_path_length =
  QCheck.Test.make ~name:"length = points - 1" ~count:200 arb_path (fun pts ->
    Pacor_grid.Path.length (Pacor_grid.Path.of_points pts) = List.length pts - 1)

let prop_reverse_involution =
  QCheck.Test.make ~name:"reverse involutive" ~count:200 arb_path (fun pts ->
    let p = Pacor_grid.Path.of_points pts in
    Pacor_grid.Path.equal p (Pacor_grid.Path.reverse (Pacor_grid.Path.reverse p)))


let prop_obstacle_count_tracks_operations =
  (* The blocked counter equals a brute-force recount after any random
     block/unblock sequence. *)
  QCheck.Test.make ~name:"obstacle count matches recount" ~count:100
    (QCheck.list
       (QCheck.triple QCheck.bool (QCheck.int_range 0 7) (QCheck.int_range 0 7)))
    (fun ops ->
       let m = Obstacle_map.create ~width:8 ~height:8 in
       List.iter
         (fun (block, x, y) ->
            let p = Point.make x y in
            if block then Obstacle_map.block m p else Obstacle_map.unblock m p)
         ops;
       let recount = ref 0 in
       Obstacle_map.iter_blocked m (fun _ -> incr recount);
       !recount = Obstacle_map.blocked_count m)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_path_roundtrip; prop_path_length; prop_reverse_involution;
      prop_obstacle_count_tracks_operations ]

let () =
  Alcotest.run "grid"
    [ ("design_rules", [ Alcotest.test_case "basics" `Quick test_rules ]);
      ( "obstacle_map",
        [ Alcotest.test_case "basic" `Quick test_obstacle_basic;
          Alcotest.test_case "bounds" `Quick test_obstacle_bounds;
          Alcotest.test_case "rect and copy" `Quick test_obstacle_rect_and_copy;
          Alcotest.test_case "iter" `Quick test_obstacle_iter ] );
      ( "routing_grid",
        [ Alcotest.test_case "boundary" `Quick test_grid_boundary;
          Alcotest.test_case "thin boundary" `Quick test_grid_1xn_boundary;
          Alcotest.test_case "nearest free" `Quick test_grid_nearest_free;
          Alcotest.test_case "index roundtrip" `Quick test_grid_index_roundtrip;
          Alcotest.test_case "work map isolated" `Quick test_grid_work_map_isolated ] );
      ( "path",
        [ Alcotest.test_case "basics" `Quick test_path_basics;
          Alcotest.test_case "invalid" `Quick test_path_invalid;
          Alcotest.test_case "trivial" `Quick test_path_trivial;
          Alcotest.test_case "reverse/append" `Quick test_path_reverse_append;
          Alcotest.test_case "replace segment" `Quick test_path_replace_segment;
          Alcotest.test_case "shares vertex" `Quick test_path_shares_vertex;
          Alcotest.test_case "bounding box" `Quick test_path_bounding_box ] );
      ("properties", qcheck_cases) ]
