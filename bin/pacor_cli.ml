(* PACOR command-line interface: route instances, list the Table 1
   designs, regenerate Table 2, and print the Fig. 3 candidate trees. *)

open Cmdliner

let variant_conv =
  let parse = function
    | "full" | "pacor" -> Ok Pacor.Config.Full
    | "wosel" | "no-selection" -> Ok Pacor.Config.Without_selection
    | "detour-first" | "detourfirst" -> Ok Pacor.Config.Detour_first
    | s -> Error (`Msg (Printf.sprintf "unknown variant %S (full|wosel|detour-first)" s))
  in
  let print ppf v = Format.fprintf ppf "%s" (Pacor.Config.variant_name v) in
  Arg.conv (parse, print)

let load_problem ~design ~file =
  match design, file with
  | Some d, None -> Pacor_designs.Table1.load d
  | None, Some path -> Pacor.Problem_io.load ~path
  | Some _, Some _ -> Error "pass either --design or --file, not both"
  | None, None -> Error "pass --design NAME or --file PATH"

let run_solution problem variant verbose =
  let config = { (Pacor.Config.make ~variant ()) with Pacor.Config.verbose } in
  match Pacor.Engine.run ~config problem with
  | Error e -> Error (Printf.sprintf "engine failed at %s: %s" e.stage e.message)
  | Ok sol -> Ok sol

(* ---- route ---- *)

let route_cmd =
  let design =
    Arg.(value & opt (some string) None & info [ "design"; "d" ] ~docv:"NAME"
           ~doc:"Route a built-in Table 1 design (Chip1, Chip2, S1..S5).")
  in
  let file =
    Arg.(value & opt (some string) None & info [ "file"; "f" ] ~docv:"PATH"
           ~doc:"Route an instance from a problem file (see lib/core/problem_io.mli).")
  in
  let variant =
    Arg.(value & opt variant_conv Pacor.Config.Full & info [ "variant"; "v" ]
           ~docv:"VARIANT" ~doc:"Flow variant: full, wosel or detour-first.")
  in
  let verbose = Arg.(value & flag & info [ "verbose" ] ~doc:"Log flow stages.") in
  let render =
    Arg.(value & flag & info [ "render" ] ~doc:"Print an ASCII rendering of the solution.")
  in
  let skew =
    Arg.(value & flag & info [ "skew" ]
           ~doc:"Print the pressure-propagation actuation skew per cluster.")
  in
  let save =
    Arg.(value & opt (some string) None & info [ "save-instance" ] ~docv:"PATH"
           ~doc:"Also write the instance to a problem file.")
  in
  let svg =
    Arg.(value & opt (some string) None & info [ "svg" ] ~docv:"PATH"
           ~doc:"Write an SVG drawing of the routed chip.")
  in
  let run design file variant verbose render skew save svg =
    match load_problem ~design ~file with
    | Error msg -> `Error (false, msg)
    | Ok problem ->
      (match save with
       | Some path ->
         (match Pacor.Problem_io.save problem ~path with
          | Ok () -> ()
          | Error e -> Format.eprintf "warning: could not save instance: %s@." e)
       | None -> ());
      (match run_solution problem variant verbose with
       | Error msg -> `Error (false, msg)
       | Ok sol ->
         Format.printf "%a@." Pacor.Problem.pp_summary problem;
         Format.printf "%s: %a@."
           (Pacor.Config.variant_name variant)
           Pacor.Solution.pp_stats (Pacor.Solution.stats sol);
         if verbose then begin
           List.iter
             (fun (stage, seconds) -> Format.printf "  stage %-14s %.3fs@." stage seconds)
             sol.Pacor.Solution.stage_seconds;
           Pacor.Report.print_search_stats Format.std_formatter sol
         end;
         if render then Format.printf "%s@." (Pacor.Render.solution sol);
         if skew then
           Format.printf "%a" Pacor_timing.Skew.pp (Pacor_timing.Skew.analyze sol);
         (match svg with
          | Some path ->
            (match Pacor.Svg.save_solution sol ~path with
             | Ok () -> Format.printf "svg written to %s@." path
             | Error e -> Format.eprintf "svg failed: %s@." e)
          | None -> ());
         (match Pacor.Solution.validate sol with
          | Ok () ->
            Format.printf "validation: OK@.";
            `Ok ()
          | Error es ->
            List.iter (Format.printf "validation: %s@.") es;
            `Error (false, "solution failed validation")))
  in
  let info =
    Cmd.info "route" ~doc:"Run the PACOR control-layer routing flow on one instance."
  in
  Cmd.v info Term.(ret (const run $ design $ file $ variant $ verbose $ render $ skew $ save $ svg))

(* ---- designs (Table 1) ---- *)

let designs_cmd =
  let run () =
    Format.printf "%-7s %-9s %8s %8s %8s %10s@." "Design" "Size" "#Valves" "#CP" "#Obs"
      "#Clusters";
    List.iter
      (fun (r : Pacor_designs.Table1.row) ->
         Format.printf "%-7s %dx%-6d %8d %8d %8d %10d@." r.design r.width r.height
           r.valves r.control_pins r.obstacles r.multi_clusters)
      Pacor_designs.Table1.rows;
    `Ok ()
  in
  let info = Cmd.info "designs" ~doc:"Print the benchmark parameters (paper Table 1)." in
  Cmd.v info Term.(ret (const run $ const ()))

(* ---- table2 ---- *)

let jobs_arg =
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Worker domains to route independent instances on (default 1).")

let table2_cmd =
  let designs_arg =
    Arg.(value & opt (list string) Pacor_designs.Table1.names
         & info [ "designs" ] ~docv:"NAMES"
             ~doc:"Comma-separated design names (default: all seven).")
  in
  let run names jobs =
    match
      Pacor_designs.Harness.measure_table2
        ~progress:(fun n -> Format.eprintf "measured %s@." n)
        ~jobs names
    with
    | Error msg -> `Error (false, msg)
    | Ok rows ->
      Format.printf "Measured (this machine, synthetic stand-ins):@.";
      Pacor.Report.print_table Format.std_formatter rows;
      Format.printf "@.Paper Table 2 (published numbers, authors' testbed):@.";
      let paper =
        List.filter
          (fun r -> List.exists (fun m -> m.Pacor.Report.design = r.Pacor.Report.design) rows)
          Pacor.Report.paper_table2
      in
      Pacor.Report.print_table Format.std_formatter paper;
      Format.printf "@.Shape checks (Sec. 7 qualitative claims on measured data):@.";
      List.iter
        (fun (name, ok) -> Format.printf "  [%s] %s@." (if ok then "PASS" else "FAIL") name)
        (Pacor.Report.shape_checks ~measured:rows);
      `Ok ()
  in
  let info =
    Cmd.info "table2"
      ~doc:"Regenerate the paper's Table 2 self-comparison on the benchmark designs."
  in
  Cmd.v info Term.(ret (const run $ designs_arg $ jobs_arg))

(* ---- fig3 ---- *)

let fig3_cmd =
  let run () =
    let open Pacor_geom in
    let grid = Pacor_grid.Routing_grid.create ~width:16 ~height:14 () in
    let sinks = [ Point.make 2 2; Point.make 2 10; Point.make 12 3; Point.make 13 11 ] in
    let cands =
      Pacor_dme.Candidate.enumerate ~grid ~usable:(fun _ -> true) ~max_candidates:4 sinks
    in
    Format.printf
      "Candidate Steiner trees for a 4-valve cluster (cf. Fig. 3).@.Sinks: %a@.@."
      (Format.pp_print_list ~pp_sep:Format.pp_print_space Point.pp)
      sinks;
    List.iteri
      (fun i (c : Pacor_dme.Candidate.t) ->
         Format.printf "-- candidate %d: %a@." (i + 1) Pacor_dme.Candidate.pp c;
         Format.printf "   full path lengths:";
         Array.iter (fun l -> Format.printf " %d" l) c.full_path_lengths;
         Format.printf "@.";
         (* ASCII render: S = sink, * = merging node, R = root. *)
         let is_sink p = List.exists (Point.equal p) sinks in
         let nodes =
           List.filter_map
             (fun (n : Pacor_dme.Candidate.node) ->
                if n.sink = None then Some n.pos else None)
             c.nodes
         in
         for y = 13 downto 0 do
           Format.printf "   ";
           for x = 0 to 15 do
             let p = Point.make x y in
             if is_sink p then Format.print_char 'S'
             else if Point.equal p c.root then Format.print_char 'R'
             else if List.exists (Point.equal p) nodes then Format.print_char '*'
             else Format.print_char '.'
           done;
           Format.printf "@."
         done;
         Format.printf "@.")
      cands;
    `Ok ()
  in
  let info =
    Cmd.info "fig3"
      ~doc:"Print several DME candidate Steiner trees for one cluster (paper Fig. 3)."
  in
  Cmd.v info Term.(ret (const run $ const ()))

(* ---- sweep ---- *)

let sweep_cmd =
  let design =
    Arg.(required & opt (some string) None & info [ "design"; "d" ] ~docv:"NAME"
           ~doc:"Design to sweep (Chip1, Chip2, S1..S5).")
  in
  let max_delta =
    Arg.(value & opt int 4 & info [ "max-delta" ] ~docv:"N"
           ~doc:"Sweep delta over 0..N (default 4).")
  in
  let run name max_delta jobs =
    let deltas = List.init (max_delta + 1) Fun.id in
    match Pacor_designs.Sweep.run_design ~jobs ~deltas name with
    | Error msg -> `Error (false, msg)
    | Ok samples ->
      Format.printf "delta sweep on %s (PACOR variant):@." name;
      Pacor_designs.Sweep.pp_table Format.std_formatter samples;
      `Ok ()
  in
  let info =
    Cmd.info "sweep"
      ~doc:"Sweep the length-matching threshold delta and report matched clusters."
  in
  Cmd.v info Term.(ret (const run $ design $ max_delta $ jobs_arg))

(* ---- batch: route every instance file in a directory on a domain pool ---- *)

let batch_cmd =
  let dir =
    Arg.(required & pos 0 (some dir) None & info [] ~docv:"DIR"
           ~doc:"Directory of *.chip instance files (e.g. corpus/).")
  in
  let variant =
    Arg.(value & opt variant_conv Pacor.Config.Full & info [ "variant"; "v" ]
           ~docv:"VARIANT" ~doc:"Flow variant: full, wosel or detour-first.")
  in
  let run dir variant jobs =
    match Pacor_par.Batch.load_dir dir with
    | Error msg -> `Error (false, msg)
    | Ok named ->
      let config = Pacor.Config.make ~variant () in
      let summary = Pacor_par.Batch.run_problems ~jobs ~config named in
      Format.printf "%a" Pacor_par.Batch.pp_summary summary;
      (* A batch succeeds only if every instance routed and validated. *)
      let failures =
        List.concat_map
          (fun (i : Pacor_par.Batch.item) ->
             match i.solution with
             | Error e -> [ Printf.sprintf "%s: %s" i.name e ]
             | Ok sol ->
               (match Pacor.Solution.validate sol with
                | Ok () -> []
                | Error es ->
                  List.map (fun e -> Printf.sprintf "%s: %s" i.name e) es))
          summary.Pacor_par.Batch.items
      in
      (match failures with
       | [] ->
         Format.printf "validation: OK (%d instances)@."
           (List.length summary.Pacor_par.Batch.items);
         `Ok ()
       | fs ->
         List.iter (Format.printf "validation: %s@.") fs;
         `Error (false, "batch had failures"))
  in
  let info =
    Cmd.info "batch"
      ~doc:"Route every instance in a directory across a pool of worker domains."
  in
  Cmd.v info Term.(ret (const run $ dir $ variant $ jobs_arg))

(* ---- check: pre-flight analysis, then route + validate ---- *)

let check_cmd =
  let design =
    Arg.(value & opt (some string) None & info [ "design"; "d" ] ~docv:"NAME"
           ~doc:"A built-in design.")
  in
  let file =
    Arg.(value & opt (some string) None & info [ "file"; "f" ] ~docv:"PATH"
           ~doc:"An instance file.")
  in
  let variant =
    Arg.(value & opt variant_conv Pacor.Config.Full & info [ "variant"; "v" ]
           ~docv:"VARIANT" ~doc:"Flow variant: full, wosel or detour-first.")
  in
  let static_only =
    Arg.(value & flag & info [ "static-only" ]
           ~doc:"Stop after the pre-flight analysis; do not route.")
  in
  let run design file variant static_only =
    match load_problem ~design ~file with
    | Error msg -> `Error (false, msg)
    | Ok problem ->
      Format.printf "%a@." Pacor.Problem.pp_summary problem;
      let graph = Pacor_valve.Compatibility_graph.build problem.Pacor.Problem.valves in
      Format.printf "compatibility: %a@." Pacor_valve.Compatibility_graph.pp_summary graph;
      let lower, upper = Pacor_valve.Compatibility_graph.pin_bounds graph in
      if upper > Pacor.Problem.pin_count problem then
        Format.printf
          "WARNING: greedy clustering needs %d pins but only %d candidates exist@."
          upper (Pacor.Problem.pin_count problem)
      else
        Format.printf "pin budget OK: need between %d and %d of %d candidate pins@."
          lower upper (Pacor.Problem.pin_count problem);
      List.iter
        (fun (c : Pacor_valve.Cluster.t) ->
           Format.printf "  %a@." Pacor_valve.Cluster.pp c)
        problem.Pacor.Problem.lm_clusters;
      if static_only then `Ok ()
      else begin
        (* Route and hold the result to the independent validator — the
           check fails (non-zero exit) on any design-rule violation. *)
        match run_solution problem variant false with
        | Error msg -> `Error (false, msg)
        | Ok sol ->
          Format.printf "%s: %a@."
            (Pacor.Config.variant_name variant)
            Pacor.Solution.pp_stats (Pacor.Solution.stats sol);
          (match Pacor.Solution.validate sol with
           | Ok () ->
             Format.printf "validation: OK@.";
             `Ok ()
           | Error es ->
             List.iter (Format.printf "validation: %s@.") es;
             `Error (false, "solution failed validation"))
      end
  in
  let info =
    Cmd.info "check"
      ~doc:"Pre-flight compatibility/pin-budget analysis, then route the instance \
            and run the independent solution validator (non-zero exit on violations)."
  in
  Cmd.v info Term.(ret (const run $ design $ file $ variant $ static_only))

let () =
  let info =
    Cmd.info "pacor" ~version:"1.0.0"
      ~doc:"Control-layer routing with length-matching for flow-based biochips (PACOR)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ route_cmd; designs_cmd; table2_cmd; fig3_cmd; sweep_cmd; batch_cmd;
            check_cmd ]))
