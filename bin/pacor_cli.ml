(* PACOR command-line interface: route instances, list the Table 1
   designs, regenerate Table 2, and print the Fig. 3 candidate trees.

   Exit codes (documented in README):
     0  success
     1  validation violation (solution breaks a design rule) or a batch
        quarantine containing only validation/budget failures
     2  parse/load error (instance file, directory, unknown design)
     3  engine error (structural failure inside the flow), or a batch
        quarantine containing an engine error / crash
   Cmdliner reserves 124/125 for CLI usage/internal errors. *)

open Cmdliner

let exit_violation = 1
let exit_parse = 2
let exit_engine = 3

let fail code fmt = Format.kasprintf (fun s -> Format.eprintf "pacor: %s@." s; code) fmt

let variant_conv =
  let parse = function
    | "full" | "pacor" -> Ok Pacor.Config.Full
    | "wosel" | "no-selection" -> Ok Pacor.Config.Without_selection
    | "detour-first" | "detourfirst" -> Ok Pacor.Config.Detour_first
    | s -> Error (`Msg (Printf.sprintf "unknown variant %S (full|wosel|detour-first)" s))
  in
  let print ppf v = Format.fprintf ppf "%s" (Pacor.Config.variant_name v) in
  Arg.conv (parse, print)

let pos_float_conv =
  let parse s =
    match float_of_string_opt s with
    | Some f when f > 0.0 -> Ok f
    | Some _ | None -> Error (`Msg (Printf.sprintf "expected a positive number, got %S" s))
  in
  Arg.conv (parse, Format.pp_print_float)

let pos_int_conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n > 0 -> Ok n
    | Some _ | None -> Error (`Msg (Printf.sprintf "expected a positive integer, got %S" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let hier_conv =
  let parse s =
    match Pacor.Config.hier_mode_of_string s with
    | Some m -> Ok m
    | None -> Error (`Msg (Printf.sprintf "unknown hier mode %S (auto|on|off)" s))
  in
  let print ppf m = Format.fprintf ppf "%s" (Pacor.Config.hier_mode_name m) in
  Arg.conv (parse, print)

(* Built-in designs: the Table 1 set first, then the synthetic Scaled
   family (Scaled1..Scaled8) behind it. *)
let load_design name =
  match Pacor_designs.Table1.load name with
  | Ok p -> Ok p
  | Error e -> (
    match Pacor_designs.Scaled.of_name name with
    | Some s -> Pacor_designs.Scaled.load s
    | None -> Error e)

let load_problem ~design ~file =
  match design, file with
  | Some d, None -> load_design d
  | None, Some path -> Pacor.Problem_io.load ~path
  | Some _, Some _ -> Error "pass either --design or --file, not both"
  | None, None -> Error "pass --design NAME or --file PATH"

(* ---- shared args ---- *)

(* [--jobs] takes a count or the literal [auto] (all cores). *)
let jobs_conv =
  let parse s =
    match String.lowercase_ascii (String.trim s) with
    | "auto" -> Ok (Domain.recommended_domain_count ())
    | s -> (
      match int_of_string_opt s with
      | Some n when n > 0 -> Ok n
      | Some _ | None ->
        Error (`Msg (Printf.sprintf "expected a positive integer or 'auto', got %S" s)))
  in
  Arg.conv (parse, Format.pp_print_int)

let jobs_arg =
  Arg.(value & opt jobs_conv 1 & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Worker contexts (default 1; $(b,auto) = one per core). \
               Independent instances route one per worker, and inside each \
               instance the pool's work-stealing scheduler shards the inner \
               stages across idle workers — results stay byte-identical to \
               $(b,--jobs 1).")

(* Runs [f config] on a worker domain of a [jobs]-wide pool with the
   pool's scheduler threaded through [config], so intra-instance stage
   sharding engages (forks from a non-worker domain run inline). With
   [jobs = 1] the pool is skipped entirely. *)
let with_jobs ~jobs config f =
  if jobs <= 1 then f config
  else
    Pacor_par.Pool.with_pool ~jobs (fun pool ->
      let config =
        { config with Pacor.Config.sched = Some (Pacor_par.Pool.sched pool) }
      in
      match Pacor_par.Pool.map_ctx pool (fun _w () -> f config) [ () ] with
      | [ r ] -> r
      | _ -> assert false)

let timeout_arg =
  Arg.(value & opt (some pos_float_conv) None & info [ "timeout" ] ~docv:"SECONDS"
         ~doc:"Wall-clock search budget per engine run; when it expires the flow \
               degrades gracefully (skipped refinement, unrouted diagnostics) \
               instead of hanging.")

let max_expansions_arg =
  Arg.(value & opt (some pos_int_conv) None & info [ "max-expansions" ] ~docv:"N"
         ~doc:"Cap on total search-queue expansions per engine run; deterministic \
               alternative to $(b,--timeout).")

let retries_arg =
  Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N"
         ~doc:"Re-attempts for a failing run under a progressively relaxed config \
               (doubled budgets, roomier detour/rip-up bounds); default 0.")

let limits_term =
  let make timeout_s max_expansions =
    Pacor_route.Budget.limits ?timeout_s ?max_expansions ()
  in
  Term.(const make $ timeout_arg $ max_expansions_arg)

let hier_arg =
  Arg.(value & opt hier_conv Pacor.Config.Hier_auto & info [ "hier" ] ~docv:"MODE"
         ~doc:"Hierarchical two-stage routing: $(b,auto) (engage on grids of \
               200k+ cells), $(b,on), or $(b,off). The hierarchy plans tile \
               corridors globally and confines detailed searches to them; a \
               never-worse ladder (byte identity, certificate, race) keeps \
               results equal or better than flat routing on every instance.")

(* ---- route ---- *)

let route_cmd =
  let design =
    Arg.(value & opt (some string) None & info [ "design"; "d" ] ~docv:"NAME"
           ~doc:"Route a built-in Table 1 design (Chip1, Chip2, S1..S5).")
  in
  let file =
    Arg.(value & opt (some string) None & info [ "file"; "f" ] ~docv:"PATH"
           ~doc:"Route an instance from a problem file (see lib/core/problem_io.mli).")
  in
  let variant =
    Arg.(value & opt variant_conv Pacor.Config.Full & info [ "variant"; "v" ]
           ~docv:"VARIANT" ~doc:"Flow variant: full, wosel or detour-first.")
  in
  let verbose = Arg.(value & flag & info [ "verbose" ] ~doc:"Log flow stages.") in
  let render =
    Arg.(value & flag & info [ "render" ] ~doc:"Print an ASCII rendering of the solution.")
  in
  let skew =
    Arg.(value & flag & info [ "skew" ]
           ~doc:"Print the pressure-propagation actuation skew per cluster.")
  in
  let save =
    Arg.(value & opt (some string) None & info [ "save-instance" ] ~docv:"PATH"
           ~doc:"Also write the instance to a problem file.")
  in
  let svg =
    Arg.(value & opt (some string) None & info [ "svg" ] ~docv:"PATH"
           ~doc:"Write an SVG drawing of the routed chip.")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Print a machine-readable JSON solution summary (the serve \
                 protocol's result schema) instead of the human-readable report.")
  in
  let run design file variant verbose render skew save svg json limits retries hier jobs =
    match load_problem ~design ~file with
    | Error msg -> fail exit_parse "%s" msg
    | Ok problem ->
      (match save with
       | Some path ->
         (match Pacor.Problem_io.save problem ~path with
          | Ok () -> ()
          | Error e -> Format.eprintf "warning: could not save instance: %s@." e)
       | None -> ());
      (* The single-instance retry mirrors the batch runner: a failing or
         invalid run re-attempts under a relaxed config. *)
      let rec attempt config tries_left =
        match Pacor.Engine.run ~config problem with
        | Error e when tries_left > 0 ->
          Format.eprintf "retrying after engine failure at %s: %s@." e.stage e.message;
          attempt (Pacor.Config.relax config) (tries_left - 1)
        | Error e -> Error e
        | Ok sol ->
          (match Pacor.Solution.validate sol with
           | Error _ when tries_left > 0 ->
             Format.eprintf "retrying after validation failure (%a)@."
               Pacor.Solution.pp_outcomes sol;
             attempt (Pacor.Config.relax config) (tries_left - 1)
           | _ -> Ok sol)
      in
      let config =
        { (Pacor.Config.make ~variant ()) with Pacor.Config.verbose; limits; hier }
      in
      (match with_jobs ~jobs config (fun config -> attempt config retries) with
       | Error e -> fail exit_engine "engine failed at %s: %s" e.stage e.message
       | Ok sol when json ->
         (* One line, same schema as the daemon's route result, so scripts
            can switch between one-shot and served routing untouched. *)
         print_endline
           (Pacor_serve.Json.to_string (Pacor_serve.Protocol.solution_result sol));
         (match Pacor.Solution.validate sol with
          | Ok () -> 0
          | Error _ -> fail exit_violation "solution failed validation")
       | Ok sol ->
         Format.printf "%a@." Pacor.Problem.pp_summary problem;
         Format.printf "%s: %a@."
           (Pacor.Config.variant_name variant)
           Pacor.Solution.pp_stats (Pacor.Solution.stats sol);
         if Pacor.Solution.degraded sol then
           Format.printf "budget: %a@." Pacor.Solution.pp_outcomes sol;
         if verbose then begin
           List.iter
             (fun (stage, seconds) -> Format.printf "  stage %-14s %.3fs@." stage seconds)
             sol.Pacor.Solution.stage_seconds;
           Pacor.Report.print_search_stats Format.std_formatter sol
         end;
         if render then Format.printf "%s@." (Pacor.Render.solution sol);
         if skew then
           Format.printf "%a" Pacor_timing.Skew.pp (Pacor_timing.Skew.analyze sol);
         (match svg with
          | Some path ->
            (match Pacor.Svg.save_solution sol ~path with
             | Ok () -> Format.printf "svg written to %s@." path
             | Error e -> Format.eprintf "svg failed: %s@." e)
          | None -> ());
         (match Pacor.Solution.validate sol with
          | Ok () ->
            Format.printf "validation: OK@.";
            0
          | Error es ->
            List.iter (Format.printf "validation: %s@.") es;
            fail exit_violation "solution failed validation"))
  in
  let info =
    Cmd.info "route" ~doc:"Run the PACOR control-layer routing flow on one instance."
  in
  Cmd.v info
    Term.(const run $ design $ file $ variant $ verbose $ render $ skew $ save $ svg
          $ json $ limits_term $ retries_arg $ hier_arg $ jobs_arg)

(* ---- designs (Table 1) ---- *)

let designs_cmd =
  let emit =
    Arg.(value & opt (some string) None & info [ "emit" ] ~docv:"NAME"
           ~doc:"Print the canonical instance text of built-in design $(docv) \
                 to stdout (feed it to --file or the daemon's route op) \
                 instead of the parameter table. Besides the Table 1 set, \
                 the synthetic scaling family $(b,Scaled1)..$(b,Scaled8) \
                 (Chip1-like content on a 168s-square grid) is available.")
  in
  let run emit =
    match emit with
    | Some name -> (
      match load_design name with
      | Error msg -> fail exit_parse "%s" msg
      | Ok problem ->
        print_string (Pacor.Problem_io.to_string problem);
        0)
    | None ->
      Format.printf "%-7s %-9s %8s %8s %8s %10s@." "Design" "Size" "#Valves" "#CP" "#Obs"
        "#Clusters";
      List.iter
        (fun (r : Pacor_designs.Table1.row) ->
           Format.printf "%-7s %dx%-6d %8d %8d %8d %10d@." r.design r.width r.height
             r.valves r.control_pins r.obstacles r.multi_clusters)
        Pacor_designs.Table1.rows;
      List.iter
        (fun s ->
           let sp = Pacor_designs.Scaled.spec s in
           Format.printf "%-7s %dx%-6d %8d %8d %8d %10d@."
             (Pacor_designs.Scaled.name s) sp.Pacor_designs.Synthetic.width
             sp.Pacor_designs.Synthetic.height
             (sp.Pacor_designs.Synthetic.singleton_valves
              + List.fold_left ( + ) 0 sp.Pacor_designs.Synthetic.lm_cluster_sizes)
             sp.Pacor_designs.Synthetic.pin_count
             sp.Pacor_designs.Synthetic.obstacle_cells
             (List.length sp.Pacor_designs.Synthetic.lm_cluster_sizes))
        Pacor_designs.Scaled.scales;
      0
  in
  let info =
    Cmd.info "designs"
      ~doc:"Print the benchmark parameters (paper Table 1), or with $(b,--emit) \
            the canonical instance text of one design."
  in
  Cmd.v info Term.(const run $ emit)

(* ---- table2 ---- *)

let table2_cmd =
  let designs_arg =
    Arg.(value & opt (list string) Pacor_designs.Table1.names
         & info [ "designs" ] ~docv:"NAMES"
             ~doc:"Comma-separated design names (default: all seven).")
  in
  let run names jobs limits retries =
    match
      Pacor_designs.Harness.measure_table2
        ~progress:(fun n -> Format.eprintf "measured %s@." n)
        ~jobs ~limits ~retries names
    with
    | Error msg -> fail exit_violation "%s" msg
    | Ok rows ->
      Format.printf "Measured (this machine, synthetic stand-ins):@.";
      Pacor.Report.print_table Format.std_formatter rows;
      Format.printf "@.Paper Table 2 (published numbers, authors' testbed):@.";
      let paper =
        List.filter
          (fun r -> List.exists (fun m -> m.Pacor.Report.design = r.Pacor.Report.design) rows)
          Pacor.Report.paper_table2
      in
      Pacor.Report.print_table Format.std_formatter paper;
      Format.printf "@.Shape checks (Sec. 7 qualitative claims on measured data):@.";
      List.iter
        (fun (name, ok) -> Format.printf "  [%s] %s@." (if ok then "PASS" else "FAIL") name)
        (Pacor.Report.shape_checks ~measured:rows);
      0
  in
  let info =
    Cmd.info "table2"
      ~doc:"Regenerate the paper's Table 2 self-comparison on the benchmark designs."
  in
  Cmd.v info Term.(const run $ designs_arg $ jobs_arg $ limits_term $ retries_arg)

(* ---- fig3 ---- *)

let fig3_cmd =
  let run () =
    let open Pacor_geom in
    let grid = Pacor_grid.Routing_grid.create ~width:16 ~height:14 () in
    let sinks = [ Point.make 2 2; Point.make 2 10; Point.make 12 3; Point.make 13 11 ] in
    let cands =
      Pacor_dme.Candidate.enumerate ~grid ~usable:(fun _ -> true) ~max_candidates:4 sinks
    in
    Format.printf
      "Candidate Steiner trees for a 4-valve cluster (cf. Fig. 3).@.Sinks: %a@.@."
      (Format.pp_print_list ~pp_sep:Format.pp_print_space Point.pp)
      sinks;
    List.iteri
      (fun i (c : Pacor_dme.Candidate.t) ->
         Format.printf "-- candidate %d: %a@." (i + 1) Pacor_dme.Candidate.pp c;
         Format.printf "   full path lengths:";
         Array.iter (fun l -> Format.printf " %d" l) c.full_path_lengths;
         Format.printf "@.";
         (* ASCII render: S = sink, * = merging node, R = root. *)
         let is_sink p = List.exists (Point.equal p) sinks in
         let nodes =
           List.filter_map
             (fun (n : Pacor_dme.Candidate.node) ->
                if n.sink = None then Some n.pos else None)
             c.nodes
         in
         for y = 13 downto 0 do
           Format.printf "   ";
           for x = 0 to 15 do
             let p = Point.make x y in
             if is_sink p then Format.print_char 'S'
             else if Point.equal p c.root then Format.print_char 'R'
             else if List.exists (Point.equal p) nodes then Format.print_char '*'
             else Format.print_char '.'
           done;
           Format.printf "@."
         done;
         Format.printf "@.")
      cands;
    0
  in
  let info =
    Cmd.info "fig3"
      ~doc:"Print several DME candidate Steiner trees for one cluster (paper Fig. 3)."
  in
  Cmd.v info Term.(const run $ const ())

(* ---- sweep ---- *)

let sweep_cmd =
  let design =
    Arg.(required & opt (some string) None & info [ "design"; "d" ] ~docv:"NAME"
           ~doc:"Design to sweep (Chip1, Chip2, S1..S5).")
  in
  let max_delta =
    Arg.(value & opt int 4 & info [ "max-delta" ] ~docv:"N"
           ~doc:"Sweep delta over 0..N (default 4).")
  in
  let run name max_delta jobs limits retries =
    let deltas = List.init (max_delta + 1) Fun.id in
    match Pacor_designs.Sweep.run_design ~jobs ~limits ~retries ~deltas name with
    | Error msg -> fail exit_violation "%s" msg
    | Ok samples ->
      Format.printf "delta sweep on %s (PACOR variant):@." name;
      Pacor_designs.Sweep.pp_table Format.std_formatter samples;
      0
  in
  let info =
    Cmd.info "sweep"
      ~doc:"Sweep the length-matching threshold delta and report matched clusters."
  in
  Cmd.v info Term.(const run $ design $ max_delta $ jobs_arg $ limits_term $ retries_arg)

(* ---- batch: route every instance file in a directory on a domain pool ---- *)

let batch_cmd =
  let dir =
    Arg.(required & pos 0 (some dir) None & info [] ~docv:"DIR"
           ~doc:"Directory of *.chip instance files (e.g. corpus/).")
  in
  let variant =
    Arg.(value & opt variant_conv Pacor.Config.Full & info [ "variant"; "v" ]
           ~docv:"VARIANT" ~doc:"Flow variant: full, wosel or detour-first.")
  in
  let run dir variant jobs limits retries hier =
    match Pacor_par.Batch.load_dir dir with
    | Error msg -> fail exit_parse "%s" msg
    | Ok named ->
      let config =
        { (Pacor.Config.make ~variant ()) with Pacor.Config.limits = limits; hier }
      in
      let summary = Pacor_par.Batch.run_problems ~jobs ~retries ~config named in
      Format.printf "%a" Pacor_par.Batch.pp_summary summary;
      (* Healthy jobs all completed: the exit code reflects the worst
         quarantined failure — engine errors outrank validation/budget
         failures. *)
      (match summary.Pacor_par.Batch.quarantined with
       | [] ->
         Format.printf "validation: OK (%d instances)@."
           (List.length summary.Pacor_par.Batch.items);
         0
       | q ->
         let engine_failures =
           List.filter
             (fun (i : Pacor_par.Batch.item) ->
                match i.solution with
                | Error (Pacor_par.Batch.Engine_error _ | Pacor_par.Batch.Crashed _) ->
                  true
                | Error (Pacor_par.Batch.Budget_exhausted _ | Pacor_par.Batch.Invalid _)
                | Ok _ -> false)
             q
         in
         if engine_failures <> [] then
           fail exit_engine "batch: %d job(s) failed in the engine" (List.length engine_failures)
         else
           fail exit_violation "batch: %d job(s) quarantined" (List.length q))
  in
  let info =
    Cmd.info "batch"
      ~doc:"Route every instance in a directory across a pool of worker domains; \
            failing instances are retried, then quarantined, without aborting the \
            healthy ones."
  in
  Cmd.v info
    Term.(const run $ dir $ variant $ jobs_arg $ limits_term $ retries_arg $ hier_arg)

(* ---- repair: route, inject faults, re-route only around them ---- *)

let repair_cmd =
  let design =
    Arg.(value & opt (some string) None & info [ "design"; "d" ] ~docv:"NAME"
           ~doc:"A built-in Table 1 design to route and then repair.")
  in
  let file =
    Arg.(value & opt (some string) None & info [ "file"; "f" ] ~docv:"PATH"
           ~doc:"An instance file to route and then repair.")
  in
  let faults =
    Arg.(required & opt (some string) None & info [ "faults" ] ~docv:"SPEC"
           ~doc:"Fault specification: comma-separated directives among \
                 $(b,rate=F) (random fault rate), $(b,seed=N), \
                 $(b,stuck=ID), $(b,stuck-open=ID), $(b,cell=X:Y) and \
                 $(b,leak=X:Y-X:Y), e.g. \
                 $(b,rate=0.05,seed=42,stuck=3,cell=10:4).")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Print one report line per fault.")
  in
  let run design file faults verbose limits jobs =
    match load_problem ~design ~file with
    | Error msg -> fail exit_parse "%s" msg
    | Ok problem ->
      (match Pacor_fault.Fault.parse_spec faults with
       | Error msg -> fail exit_parse "bad --faults spec: %s" msg
       | Ok spec ->
         let config = { (Pacor.Config.make ()) with Pacor.Config.limits } in
         with_jobs ~jobs config @@ fun config ->
         (match Pacor.Engine.run ~config problem with
          | Error e -> fail exit_engine "engine failed at %s: %s" e.stage e.message
          | Ok sol ->
            Format.printf "%a@." Pacor.Problem.pp_summary problem;
            Format.printf "baseline: %a@."
              Pacor.Solution.pp_stats (Pacor.Solution.stats sol);
            let fault_list = Pacor_fault.Fault.realise spec sol in
            if fault_list = [] then begin
              Format.printf "no faults injected (empty spec); nothing to repair@.";
              0
            end
            else begin
              Format.printf "injected %d fault(s)@." (List.length fault_list);
              match
                Pacor_fault.Repair.run ?sched:config.Pacor.Config.sched
                  ~limits ~faults:fault_list sol
              with
              | Error msg -> fail exit_engine "repair failed: %s" msg
              | Ok rep ->
                if verbose then
                  List.iter
                    (Format.printf "  %a@." Pacor_fault.Repair.pp_report)
                    rep.Pacor_fault.Repair.reports;
                Format.printf "%a@." Pacor_fault.Repair.pp_summary rep;
                Format.printf "repaired: %a@."
                  Pacor.Solution.pp_stats
                  (Pacor.Solution.stats rep.Pacor_fault.Repair.solution);
                let unrepairable =
                  List.exists
                    (fun (r : Pacor_fault.Repair.report) ->
                       match r.outcome with
                       | Pacor_fault.Repair.Unrepairable _ -> true
                       | Pacor_fault.Repair.Repaired
                       | Pacor_fault.Repair.Degraded _ -> false)
                    rep.Pacor_fault.Repair.reports
                in
                (match
                   Pacor.Solution.validate rep.Pacor_fault.Repair.solution
                 with
                 | Ok () when not unrepairable ->
                   Format.printf "validation: OK@.";
                   0
                 | Ok () ->
                   Format.printf "validation: OK@.";
                   fail exit_violation "%d valve(s) quarantined as unrepairable"
                     (List.length rep.Pacor_fault.Repair.quarantined)
                 | Error es ->
                   List.iter (Format.printf "validation: %s@.") es;
                   fail exit_violation "repaired solution failed validation")
            end))
  in
  let info =
    Cmd.info "repair"
      ~doc:"Route an instance, inject post-fabrication faults (stuck valves, \
            blocked cells, leaky segments), and repair online: rip up only \
            the clusters the faults touch and re-route them around the \
            fault, reusing every untouched channel byte-identically. Exit \
            codes: 1 unrepairable fault or validation failure, 2 parse/spec \
            error, 3 engine error."
  in
  Cmd.v info
    Term.(const run $ design $ file $ faults $ verbose $ limits_term $ jobs_arg)

(* ---- serve: the routing daemon ---- *)

let serve_cmd =
  let port =
    Arg.(value & opt (some int) None & info [ "port"; "p" ] ~docv:"PORT"
           ~doc:"Also listen for connections on 127.0.0.1:$(docv) (0 picks an \
                 ephemeral port, announced on stderr).")
  in
  let no_stdio =
    Arg.(value & flag & info [ "no-stdio" ]
           ~doc:"Do not serve on stdin/stdout (TCP only; requires $(b,--port)).")
  in
  let stdio =
    Arg.(value & flag & info [ "stdio" ]
           ~doc:"Serve line-delimited JSON on stdin/stdout (the default; this flag \
                 exists so spawning clients can be explicit).")
  in
  let cache =
    Arg.(value & opt pos_int_conv 64 & info [ "cache" ] ~docv:"N"
           ~doc:"Solution cache capacity in problems (LRU, keyed by canonical \
                 problem fingerprint; default 64).")
  in
  let journal =
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"PATH"
           ~doc:"Append every session mutation to $(docv) (fsync'd before the \
                 response is sent) and replay surviving sessions from it at \
                 startup, so a killed daemon resumes where it left off.")
  in
  let supervise =
    Arg.(value & flag & info [ "supervise" ]
           ~doc:"Run the daemon under a watchdog: the serving worker is forked, \
                 and an abnormal exit (crash, kill -9, OOM) restarts it with \
                 jittered exponential backoff. Combine with $(b,--journal) so \
                 restarts recover their sessions. A TCP port is bound once, \
                 before the first fork, so restarts never drop the listener.")
  in
  let pidfile =
    Arg.(value & opt (some string) None & info [ "pidfile" ] ~docv:"PATH"
           ~doc:"With $(b,--supervise): write the current worker's pid to \
                 $(docv) after every fork (how chaos tests aim their kills).")
  in
  let max_conns =
    Arg.(value & opt pos_int_conv Pacor_serve.Server.default_max_conns
         & info [ "max-conns" ] ~docv:"N"
             ~doc:"Reject connections beyond $(docv) simultaneous ones with a \
                   single busy error line (default 64).")
  in
  let max_line =
    Arg.(value & opt pos_int_conv Pacor_serve.Linebuf.default_max_line
         & info [ "max-line" ] ~docv:"BYTES"
             ~doc:"Answer request lines over $(docv) bytes with one parse \
                   error and discard them without buffering (default 4MiB).")
  in
  let idle_timeout =
    Arg.(value & opt (some float) None & info [ "idle-timeout" ] ~docv:"SECONDS"
           ~doc:"Reap connections idle longer than $(docv) seconds \
                 (default 600).")
  in
  let run port no_stdio _stdio cache journal_path supervise pidfile max_conns
      max_line idle_timeout limits hier jobs =
    if no_stdio && port = None then fail exit_parse "--no-stdio requires --port"
    else begin
      let stdio = not no_stdio in
      let worker ?listen_fd () =
        let serve ?sched () =
        let journal =
          match journal_path with
          | None -> None
          | Some path -> (
            match Pacor_serve.Journal.open_ ~path with
            | Ok j -> Some j
            | Error e ->
              Printf.eprintf "pacor-serve: cannot open journal %s: %s\n%!" path e;
              Stdlib.exit exit_parse)
        in
        let t =
          Pacor_serve.Server.create ~cache_capacity:cache ~limits ~hier ?sched
            ?journal ()
        in
        let recovered = Pacor_serve.Server.recover t in
        if recovered > 0 then
          Printf.eprintf "pacor-serve: recovered %d session(s) from journal\n%!"
            recovered;
        (match listen_fd with
         | Some _ ->
           Pacor_serve.Server.serve_loop ~stdio ?listen_fd ~max_conns ~max_line
             ?idle_timeout_s:idle_timeout t
         | None ->
           Pacor_serve.Server.serve_loop ~stdio ?port ~max_conns ~max_line
             ?idle_timeout_s:idle_timeout t);
        Option.iter Pacor_serve.Journal.close journal;
        0
        in
        if jobs <= 1 then serve ()
        else
          (* The serve loop must run on a scheduler worker domain for the
             per-request stage forks to distribute (forks from a non-worker
             domain run inline); a one-task pool map does exactly that. The
             pool is created here — after any supervisor fork — so worker
             domains never cross a fork boundary. *)
          Pacor_par.Pool.with_pool ~jobs (fun pool ->
            match
              Pacor_par.Pool.map_ctx pool
                (fun _w () -> serve ~sched:(Pacor_par.Pool.sched pool) ())
                [ () ]
            with
            | [ r ] -> r
            | _ -> assert false)
      in
      if not supervise then worker ()
      else begin
        (* Bind before the first fork: every restarted worker inherits the
           same listening socket, so clients reconnecting mid-restart queue
           in the kernel backlog instead of getting connection-refused. *)
        let listen_fd =
          Option.map (fun p -> fst (Pacor_serve.Server.listen ~port:p)) port
        in
        let outcome =
          Pacor_serve.Supervise.run ?pidfile (fun () -> worker ?listen_fd ())
        in
        if outcome.Pacor_serve.Supervise.gave_up then
          fail exit_engine "supervisor gave up after %d restart(s)"
            outcome.Pacor_serve.Supervise.restarts
        else 0
      end
    end
  in
  let info =
    Cmd.info "serve"
      ~doc:"Run the routing daemon: line-delimited JSON requests on stdin/stdout \
            and/or a local TCP port. Sessions hold a parsed problem and its routed \
            solution; delta requests (move_valve, add_obstacle, remove_obstacle, \
            set_delta, inject_fault) re-route only the clusters the edit dirties. \
            Identical route requests are answered byte-identically from an LRU \
            cache. $(b,--journal) makes sessions survive a crash; \
            $(b,--supervise) restarts a crashed worker automatically. See \
            lib/serve/protocol.mli for the request/response schema."
  in
  Cmd.v info
    Term.(const run $ port $ no_stdio $ stdio $ cache $ journal $ supervise
          $ pidfile $ max_conns $ max_line $ idle_timeout $ limits_term $ hier_arg
          $ jobs_arg)

(* ---- client: drive a daemon from scripts ---- *)

let client_cmd =
  let connect =
    Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"HOST:PORT"
           ~doc:"Connect to a daemon listening on $(docv). Without this flag a \
                 private daemon is spawned over pipes and shut down at EOF.")
  in
  let check =
    Arg.(value & flag & info [ "check" ]
           ~doc:"Exit 1 if any response carries ok:false (default: exit 0 as long \
                 as the daemon answered every request).")
  in
  let deadline =
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS"
           ~doc:"Give up on a request if no response arrives within $(docv) \
                 seconds (default: wait forever). A deadline expiry is not \
                 retried — the daemon may still be computing.")
  in
  let retries =
    Arg.(value & opt int 3 & info [ "retries" ] ~docv:"N"
           ~doc:"On connection loss, reconnect and re-send (marked retry:true \
                 so the daemon replays instead of re-executing) up to $(docv) \
                 times under jittered exponential backoff (default 3; 0 fails \
                 fast).")
  in
  let backoff =
    Arg.(value & opt float 0.05 & info [ "backoff" ] ~docv:"SECONDS"
           ~doc:"Base of the doubling backoff between retries (default 0.05, \
                 capped at 2s).")
  in
  let run connect check deadline_s retries backoff_s =
    let conn =
      match connect with
      | None ->
        Pacor_serve.Client.spawn ?deadline_s ~retries ~backoff_s ()
      | Some hp -> (
        match String.rindex_opt hp ':' with
        | None -> Error (Printf.sprintf "expected HOST:PORT, got %S" hp)
        | Some i -> (
          let host = String.sub hp 0 i in
          match int_of_string_opt (String.sub hp (i + 1) (String.length hp - i - 1)) with
          | None -> Error (Printf.sprintf "bad port in %S" hp)
          | Some port ->
            Pacor_serve.Client.connect ?deadline_s ~retries ~backoff_s ~host ~port ()))
    in
    match conn with
    | Error e -> fail exit_parse "%s" e
    | Ok conn ->
      let not_ok = ref 0 in
      let transport_error = ref None in
      (try
         while true do
           let line = input_line stdin in
           if String.trim line <> "" then begin
             match Pacor_serve.Client.request conn line with
             | Error e ->
               transport_error := Some e;
               raise Exit
             | Ok resp ->
               print_endline resp;
               (match Pacor_serve.Json.of_string resp with
                | Ok j
                  when Option.bind (Pacor_serve.Json.member "ok" j)
                         Pacor_serve.Json.bool_opt
                       = Some true -> ()
                | _ -> incr not_ok)
           end
         done
       with End_of_file | Exit -> ());
      Pacor_serve.Client.close conn;
      (match !transport_error with
       | Some e -> fail exit_engine "daemon connection failed: %s" e
       | None -> if check && !not_ok > 0 then 1 else 0)
  in
  let info =
    Cmd.info "client"
      ~doc:"Send request lines from stdin to a routing daemon and print each \
            response line to stdout. Spawns a private daemon by default; use \
            $(b,--connect) to talk to a running one. Exit codes: 0 every request \
            answered (add $(b,--check) to require ok:true too), 2 bad arguments, \
            3 the daemon connection failed."
  in
  Cmd.v info Term.(const run $ connect $ check $ deadline $ retries $ backoff)

(* ---- check: pre-flight analysis, then route + validate ---- *)

let check_cmd =
  let design =
    Arg.(value & opt (some string) None & info [ "design"; "d" ] ~docv:"NAME"
           ~doc:"A built-in design.")
  in
  let file =
    Arg.(value & opt (some string) None & info [ "file"; "f" ] ~docv:"PATH"
           ~doc:"An instance file.")
  in
  let variant =
    Arg.(value & opt variant_conv Pacor.Config.Full & info [ "variant"; "v" ]
           ~docv:"VARIANT" ~doc:"Flow variant: full, wosel or detour-first.")
  in
  let static_only =
    Arg.(value & flag & info [ "static-only" ]
           ~doc:"Stop after the pre-flight analysis; do not route.")
  in
  let run design file variant static_only limits hier =
    match load_problem ~design ~file with
    | Error msg -> fail exit_parse "%s" msg
    | Ok problem ->
      Format.printf "%a@." Pacor.Problem.pp_summary problem;
      let graph = Pacor_valve.Compatibility_graph.build problem.Pacor.Problem.valves in
      Format.printf "compatibility: %a@." Pacor_valve.Compatibility_graph.pp_summary graph;
      let lower, upper = Pacor_valve.Compatibility_graph.pin_bounds graph in
      if upper > Pacor.Problem.pin_count problem then
        Format.printf
          "WARNING: greedy clustering needs %d pins but only %d candidates exist@."
          upper (Pacor.Problem.pin_count problem)
      else
        Format.printf "pin budget OK: need between %d and %d of %d candidate pins@."
          lower upper (Pacor.Problem.pin_count problem);
      List.iter
        (fun (c : Pacor_valve.Cluster.t) ->
           Format.printf "  %a@." Pacor_valve.Cluster.pp c)
        problem.Pacor.Problem.lm_clusters;
      if static_only then 0
      else begin
        (* Route and hold the result to the independent validator — the
           check fails (exit 1) on any design-rule violation and exit 3
           on a structural engine failure, naming the failing stage. *)
        let config =
          { (Pacor.Config.make ~variant ()) with Pacor.Config.limits = limits; hier }
        in
        match Pacor.Engine.run ~config problem with
        | Error e -> fail exit_engine "engine failed at stage %s: %s" e.stage e.message
        | Ok sol ->
          Format.printf "%s: %a@."
            (Pacor.Config.variant_name variant)
            Pacor.Solution.pp_stats (Pacor.Solution.stats sol);
          if Pacor.Solution.degraded sol then
            Format.printf "budget: %a@." Pacor.Solution.pp_outcomes sol;
          (match Pacor.Solution.validate sol with
           | Ok () ->
             Format.printf "validation: OK@.";
             0
           | Error es ->
             List.iter (Format.printf "validation: %s@.") es;
             fail exit_violation "solution failed validation")
      end
  in
  let info =
    Cmd.info "check"
      ~doc:"Pre-flight compatibility/pin-budget analysis, then route the instance \
            and run the independent solution validator. Exit codes: 1 validation \
            violation, 2 parse/load error, 3 engine error."
  in
  Cmd.v info
    Term.(const run $ design $ file $ variant $ static_only $ limits_term $ hier_arg)

let () =
  let info =
    Cmd.info "pacor" ~version:"1.0.0"
      ~doc:"Control-layer routing with length-matching for flow-based biochips (PACOR)."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ route_cmd; designs_cmd; table2_cmd; fig3_cmd; sweep_cmd; batch_cmd;
            check_cmd; repair_cmd; serve_cmd; client_cmd ]))
