(* The work-stealing scheduler (pacor_sched) and its pool integration.

   Three properties carry the subsystem: the Chase-Lev deque never loses
   or duplicates a task under owner/thief races; fork-join results and
   exceptions are deterministic whatever the worker count; and a worker
   blocked inside a subtask cannot starve its siblings — they migrate to
   other domains by stealing. The engine-level contract rides on top:
   routing with a scheduler threaded through the config is byte-identical
   to the sequential run. *)

module Ws_deque = Pacor_sched.Ws_deque
module Sched = Pacor_sched.Sched
module Pool = Pacor_par.Pool

(* ---- deque: sequential semantics ---- *)

let test_deque_lifo_fifo () =
  let dq = Ws_deque.create ~dummy:(-1) in
  Alcotest.(check (option int)) "empty pop" None (Ws_deque.pop dq);
  for i = 0 to 9 do
    Ws_deque.push dq i
  done;
  Alcotest.(check int) "size" 10 (Ws_deque.size dq);
  (* Owner end is LIFO. *)
  Alcotest.(check (option int)) "pop newest" (Some 9) (Ws_deque.pop dq);
  Alcotest.(check (option int)) "pop next" (Some 8) (Ws_deque.pop dq);
  (* Thief end is FIFO. *)
  (match Ws_deque.steal dq with
   | Ws_deque.Stolen x -> Alcotest.(check int) "steal oldest" 0 x
   | Ws_deque.Empty | Ws_deque.Retry -> Alcotest.fail "expected a steal");
  (match Ws_deque.steal dq with
   | Ws_deque.Stolen x -> Alcotest.(check int) "steal next oldest" 1 x
   | Ws_deque.Empty | Ws_deque.Retry -> Alcotest.fail "expected a steal");
  (* Remaining: 2..7, owner pops 7..2. *)
  for i = 7 downto 2 do
    Alcotest.(check (option int)) "drain" (Some i) (Ws_deque.pop dq)
  done;
  Alcotest.(check (option int)) "empty again" None (Ws_deque.pop dq);
  (match Ws_deque.steal dq with
   | Ws_deque.Empty -> ()
   | Ws_deque.Stolen _ | Ws_deque.Retry -> Alcotest.fail "expected Empty")

let test_deque_growth () =
  (* Push far past the initial buffer capacity, mixing in pops, so the
     buffer doubles several times with live elements in it. *)
  let dq = Ws_deque.create ~dummy:(-1) in
  let popped = ref [] in
  for i = 0 to 9999 do
    Ws_deque.push dq i;
    if i mod 3 = 2 then
      match Ws_deque.pop dq with
      | Some x -> popped := x :: !popped
      | None -> Alcotest.fail "pop of a non-empty deque returned None"
  done;
  let rec drain () =
    match Ws_deque.pop dq with
    | Some x ->
      popped := x :: !popped;
      drain ()
    | None -> ()
  in
  drain ();
  let sorted = List.sort Int.compare !popped in
  Alcotest.(check (list int)) "every element survives growth"
    (List.init 10000 Fun.id) sorted

(* Owner ops against a list model; then a full steal-drain must come out
   oldest-first (the reverse of the surviving stack). *)
let prop_deque_matches_model =
  QCheck.Test.make ~name:"deque owner ops match list model, steals FIFO"
    ~count:200
    QCheck.(small_list (option small_nat))
    (fun ops ->
       let dq = Ws_deque.create ~dummy:(-1) in
       let model = ref [] in
       let ok = ref true in
       List.iter
         (fun op ->
            match op with
            | Some x ->
              Ws_deque.push dq x;
              model := x :: !model
            | None -> (
              match Ws_deque.pop dq, !model with
              | Some x, m :: rest ->
                if x <> m then ok := false;
                model := rest
              | None, [] -> ()
              | Some _, [] | None, _ :: _ -> ok := false))
         ops;
       let rec drain acc =
         match Ws_deque.steal dq with
         | Ws_deque.Stolen x -> drain (x :: acc)
         | Ws_deque.Retry -> drain acc
         | Ws_deque.Empty -> List.rev acc
       in
       !ok && drain [] = List.rev !model)

(* ---- deque: concurrent owner/thief stress ---- *)

(* The owner interleaves pushes and pops at the bottom while several
   thieves hammer the top; afterwards the union of everything popped and
   stolen must be exactly the pushed set — no element lost to a race on
   the last slot, none handed out twice, growth included. *)
let deque_stress ~n ~nthieves =
  let dq = Ws_deque.create ~dummy:(-1) in
  let stop = Atomic.make false in
  let thieves =
    List.init nthieves (fun _ ->
      Domain.spawn (fun () ->
        let acc = ref [] in
        let rec go () =
          match Ws_deque.steal dq with
          | Ws_deque.Stolen x ->
            acc := x :: !acc;
            go ()
          | Ws_deque.Retry ->
            Domain.cpu_relax ();
            go ()
          | Ws_deque.Empty ->
            if Atomic.get stop then !acc
            else begin
              Domain.cpu_relax ();
              go ()
            end
        in
        go ()))
  in
  let popped = ref [] in
  let i = ref 0 in
  while !i < n do
    Ws_deque.push dq !i;
    incr i;
    if !i < n then begin
      Ws_deque.push dq !i;
      incr i
    end;
    match Ws_deque.pop dq with
    | Some x -> popped := x :: !popped
    | None -> ()
  done;
  let rec drain () =
    match Ws_deque.pop dq with
    | Some x ->
      popped := x :: !popped;
      drain ()
    | None -> ()
  in
  drain ();
  Atomic.set stop true;
  let stolen = List.concat_map Domain.join thieves in
  List.sort Int.compare (!popped @ stolen) = List.init n Fun.id

let test_deque_concurrent_stress () =
  Alcotest.(check bool) "no element lost or duplicated under 3 thieves" true
    (deque_stress ~n:20000 ~nthieves:3)

let prop_deque_concurrent =
  QCheck.Test.make ~name:"concurrent owner/thief drain is exact" ~count:10
    QCheck.(pair (int_range 1 3) (int_range 100 3000))
    (fun (nthieves, n) -> deque_stress ~n ~nthieves)

(* ---- scheduler: fork-join semantics on pool workers ---- *)

(* [~domains] forces real worker domains even on a single-core machine
   (the pool otherwise clamps to [Domain.recommended_domain_count]). *)

let test_parallel_for_offworker_inline () =
  (* From a non-worker domain a parallel_for degrades to an inline
     ascending loop — observable as strictly ordered side effects. *)
  Pool.with_pool ~domains:2 ~jobs:2 (fun pool ->
    let sched = Pool.sched pool in
    let order = ref [] in
    Sched.parallel_for sched ~n:8 (fun i -> order := i :: !order);
    Alcotest.(check (list int)) "inline execution is ascending"
      [ 0; 1; 2; 3; 4; 5; 6; 7 ] (List.rev !order))

let test_nested_scopes () =
  Pool.with_pool ~domains:4 ~jobs:4 (fun pool ->
    let sched = Pool.sched pool in
    let result =
      Pool.map_ctx pool
        (fun _ () ->
           (* Divide-and-conquer sum with a nested scope per split: joins
              must caller-help (never park) or this deadlocks when scopes
              outnumber domains. *)
           let rec sum lo hi =
             if hi - lo <= 16 then begin
               let s = ref 0 in
               for i = lo to hi - 1 do
                 s := !s + i
               done;
               !s
             end
             else begin
               let mid = (lo + hi) / 2 in
               let a = ref 0 and b = ref 0 in
               Sched.scope sched (fun sc ->
                 Sched.fork sc (fun () -> a := sum lo mid);
                 Sched.fork sc (fun () -> b := sum mid hi));
               !a + !b
             end
           in
           sum 0 1024)
        [ () ]
    in
    Alcotest.(check (list int)) "nested scopes compute the sum"
      [ 1024 * 1023 / 2 ] result)

exception Boom of int

let test_exception_earliest_index () =
  Pool.with_pool ~domains:4 ~jobs:4 (fun pool ->
    let sched = Pool.sched pool in
    match
      Pool.try_map_ctx pool
        (fun _ () ->
           Sched.parallel_for sched ~n:16 (fun i ->
             if i mod 3 = 2 then raise (Boom i)))
        [ () ]
    with
    | [ Error (Boom i) ] ->
      (* Indices 2, 5, 8, 11, 14 all raise; whichever fails first in wall
         clock, the join reports the smallest fork index. *)
      Alcotest.(check int) "earliest fork index wins" 2 i
    | [ Error e ] -> Alcotest.failf "unexpected exception %s" (Printexc.to_string e)
    | _ -> Alcotest.fail "expected the task to fail with Boom")

let test_steal_progress () =
  (* Starvation check: the forking worker pops the last-forked chunk first
     (LIFO) and blocks in it until most of its siblings have run — which
     is only possible if other domains steal them. A lost wakeup or a
     broken steal path shows up as the 20s deadline tripping. *)
  Pool.with_pool ~domains:4 ~jobs:4 (fun pool ->
    let sched = Pool.sched pool in
    let flags = Array.init 8 (fun _ -> Atomic.make false) in
    let starved = Atomic.make false in
    ignore
      (Pool.map_ctx pool
         (fun _ () ->
            Sched.parallel_for sched ~n:8 (fun i ->
              if i < 7 then Atomic.set flags.(i) true
              else begin
                let t0 = Unix.gettimeofday () in
                let enough () =
                  let c = ref 0 in
                  for j = 0 to 6 do
                    if Atomic.get flags.(j) then incr c
                  done;
                  !c >= 6
                in
                while (not (enough ())) && Unix.gettimeofday () -. t0 < 20.0 do
                  Domain.cpu_relax ()
                done;
                if not (enough ()) then Atomic.set starved true
              end))
         [ () ]);
    Alcotest.(check bool) "siblings ran while one chunk blocked" false
      (Atomic.get starved);
    let st = Pool.sched_stats pool in
    Alcotest.(check bool) "they migrated by stealing" true
      (st.Sched.steals > 0))

(* ---- pool: concurrent map callers (per-call completion sync) ---- *)

let test_concurrent_map_callers () =
  (* Two non-worker domains hammer one pool with interleaved map_ctx
     calls. Each call must see its own completion wakeup — when calls
     shared the pool-wide condition variable, one caller could consume
     the other's broadcast and hang or return early. *)
  let pool = Pool.create ~domains:2 ~jobs:2 () in
  let caller d =
    Domain.spawn (fun () ->
      let ok = ref true in
      for k = 1 to 25 do
        let xs = List.init 40 (fun i -> i + k) in
        let expect = List.map (fun x -> (x * 2) + d) xs in
        let got = Pool.map_ctx pool (fun _ x -> (x * 2) + d) xs in
        if got <> expect then ok := false
      done;
      !ok)
  in
  let a = caller 1 in
  let b = caller 2 in
  let ra = Domain.join a in
  let rb = Domain.join b in
  Pool.shutdown pool;
  Alcotest.(check bool) "caller A saw every completion" true ra;
  Alcotest.(check bool) "caller B saw every completion" true rb

(* ---- engine: sharded stages are byte-identical to sequential ---- *)

let corpus_dir =
  match Sys.getenv_opt "DUNE_SOURCEROOT" with
  | Some root -> Filename.concat root "corpus"
  | None -> Filename.concat (Sys.getcwd ()) "../../../corpus"

let load name =
  let path = Filename.concat corpus_dir (name ^ ".chip") in
  match Pacor.Problem_io.load ~path with
  | Ok p -> p
  | Error e -> Alcotest.failf "cannot load %s: %s" path e

let pp_work ppf (s : Pacor_route.Search_stats.snapshot) =
  Format.fprintf ppf "searches=%d pops=%d pushes=%d touched=%d relax=%d resets=%d"
    s.Pacor_route.Search_stats.searches s.Pacor_route.Search_stats.pops
    s.Pacor_route.Search_stats.pushes s.Pacor_route.Search_stats.touched
    s.Pacor_route.Search_stats.relaxations s.Pacor_route.Search_stats.resets

(* Same determinism fingerprint as test_par: rendered routing, statistics,
   per-cluster lengths and per-stage search counters; only wall-clock and
   grid_allocs excluded. *)
let fingerprint (sol : Pacor.Solution.t) =
  let st = Pacor.Solution.stats sol in
  Format.asprintf "%s|clusters=%d matched=%d matched_len=%d total=%d compl=%.9f|%a"
    (Pacor.Render.solution sol)
    st.Pacor.Solution.clusters st.Pacor.Solution.matched_clusters
    st.Pacor.Solution.matched_length st.Pacor.Solution.total_length
    st.Pacor.Solution.completion
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";")
       (fun ppf (label, snap) -> Format.fprintf ppf "%s:%a" label pp_work snap))
    sol.Pacor.Solution.stage_search

let run_sharded ~jobs problem =
  Pool.with_pool ~domains:jobs ~jobs (fun pool ->
    let config =
      { Pacor.Config.default with
        Pacor.Config.sched = Some (Pool.sched pool) }
    in
    match
      Pool.map_ctx pool
        (fun w () ->
           Pacor.Engine.run ~config
             ~workspace:(Pool.worker_workspace w) problem)
        [ () ]
    with
    | [ Ok sol ] -> sol
    | [ Error e ] -> Alcotest.failf "sharded run failed: %s" e.Pacor.Engine.message
    | _ -> Alcotest.fail "expected exactly one result")

let test_sharded_engine_byte_identity () =
  List.iter
    (fun name ->
       let problem = load name in
       let seq =
         match Pacor.Engine.run problem with
         | Ok sol -> sol
         | Error e -> Alcotest.failf "sequential %s failed: %s" name e.message
       in
       List.iter
         (fun jobs ->
            let sol = run_sharded ~jobs problem in
            (match Pacor.Solution.validate sol with
             | Ok () -> ()
             | Error es ->
               Alcotest.failf "%s sharded jobs=%d invalid: %s" name jobs
                 (String.concat "; " es));
            Alcotest.(check string)
              (Printf.sprintf "%s: jobs=%d byte-identical to sequential" name jobs)
              (fingerprint seq) (fingerprint sol))
         [ 2; 4 ])
    [ "corpus-dense"; "corpus-bigcluster" ]

let () =
  Alcotest.run "sched"
    [ ( "deque",
        [ Alcotest.test_case "owner LIFO, thief FIFO" `Quick test_deque_lifo_fifo;
          Alcotest.test_case "growth preserves every element" `Quick
            test_deque_growth;
          Alcotest.test_case "concurrent owner/thief stress" `Quick
            test_deque_concurrent_stress;
          QCheck_alcotest.to_alcotest prop_deque_matches_model;
          QCheck_alcotest.to_alcotest prop_deque_concurrent ] );
      ( "fork-join",
        [ Alcotest.test_case "off-worker parallel_for is inline" `Quick
            test_parallel_for_offworker_inline;
          Alcotest.test_case "nested scopes" `Quick test_nested_scopes;
          Alcotest.test_case "earliest-index exception" `Quick
            test_exception_earliest_index;
          Alcotest.test_case "blocked chunk cannot starve siblings" `Quick
            test_steal_progress;
          Alcotest.test_case "concurrent map callers" `Quick
            test_concurrent_map_callers ] );
      ( "engine determinism",
        [ Alcotest.test_case "sharded stages byte-identical to sequential" `Slow
            test_sharded_engine_byte_identity ] ) ]
