(* Tests for the hierarchical two-stage routing layer: tile-graph
   coarsening and capacity accounting, corridor masks on the workspace,
   the packed role layer, bidirectional-search equivalence, the staged
   escape fallback, workspace reuse across grid sizes, the tier-2
   certificate, and the engine-level never-worse property (hier validates
   and is equal-or-better than flat on every random instance). *)

open Pacor_geom
open Pacor_grid
open Pacor_valve
open Pacor

let seq s =
  match Activation.sequence_of_string s with
  | Ok x -> x
  | Error e -> Alcotest.failf "bad sequence: %s" e

let mk_valve id x y s = Valve.make ~id ~position:(Point.make x y) ~sequence:(seq s)

(* ---------- Tile_graph: coarsening boundaries ---------- *)

let test_tile_graph_coarsening () =
  (* 20x13 at k=8: partial tiles on both clipped edges. *)
  let grid = Routing_grid.create ~width:20 ~height:13 () in
  let tg = Tile_graph.create grid ~k:8 in
  Alcotest.(check int) "tiles_x" 3 (Tile_graph.tiles_x tg);
  Alcotest.(check int) "tiles_y" 2 (Tile_graph.tiles_y tg);
  Alcotest.(check int) "tile_count" 6 (Tile_graph.tile_count tg);
  Alcotest.(check int) "shift" 3 (Tile_graph.shift tg);
  Alcotest.(check int) "origin cell -> tile 0" 0
    (Tile_graph.tile_of_point tg (Point.make 0 0));
  Alcotest.(check int) "boundary cell x=7 stays in tile 0" 0
    (Tile_graph.tile_of_point tg (Point.make 7 7));
  Alcotest.(check int) "cell x=8 crosses into tile 1" 1
    (Tile_graph.tile_of_point tg (Point.make 8 7));
  Alcotest.(check int) "far corner -> last tile" 5
    (Tile_graph.tile_of_point tg (Point.make 19 12));
  (* The bottom-right partial tile's rect is clipped to the grid. *)
  let r = Tile_graph.rect tg 5 in
  Alcotest.(check int) "clip x0" 16 r.Rect.x0;
  Alcotest.(check int) "clip x1" 19 r.Rect.x1;
  Alcotest.(check int) "clip y0" 8 r.Rect.y0;
  Alcotest.(check int) "clip y1" 12 r.Rect.y1;
  (* Per-tile free-cell counts partition the (obstacle-free) grid. *)
  let total =
    List.init (Tile_graph.tile_count tg) (Tile_graph.free_cells tg)
    |> List.fold_left ( + ) 0
  in
  Alcotest.(check int) "free cells partition the grid" (20 * 13) total;
  (* tiles_of_rect clips and stays ascending. *)
  let tiles = Tile_graph.tiles_of_rect tg (Rect.of_points (Point.make 6 6) (Point.make 9 9)) in
  Alcotest.(check (list int)) "rect straddling four tiles" [ 0; 1; 3; 4 ] tiles

let test_tile_graph_free_cell_accounting () =
  let obstacles = [ Rect.of_points (Point.make 2 2) (Point.make 5 3) ] in
  let grid = Routing_grid.create ~width:16 ~height:16 ~obstacles () in
  let tg = Tile_graph.create grid ~k:8 in
  (* The 4x2 blockage sits entirely inside tile 0. *)
  Alcotest.(check int) "tile 0 loses the blocked cells" (64 - 8)
    (Tile_graph.free_cells tg 0);
  Alcotest.(check int) "tile 1 untouched" 64 (Tile_graph.free_cells tg 1)

(* ---------- Tile_graph: boundary capacity ---------- *)

let test_tile_graph_boundary_capacity () =
  (* Two tiles side by side; block 3 of the 8 straddling pairs at x=7/8. *)
  let obstacles = [ Rect.of_points (Point.make 7 0) (Point.make 7 2) ] in
  let grid = Routing_grid.create ~width:16 ~height:8 ~obstacles () in
  let tg = Tile_graph.create grid ~k:8 in
  Alcotest.(check int) "capacity excludes blocked pairs" 5
    (Tile_graph.boundary_capacity tg 0 1);
  Alcotest.(check int) "capacity is symmetric" 5
    (Tile_graph.boundary_capacity tg 1 0);
  (match Tile_graph.boundary_capacity tg 0 0 with
   | _ -> Alcotest.fail "expected Invalid_argument for non-adjacent tiles"
   | exception Invalid_argument _ -> ())

(* ---------- Tile_graph: halo, cell masks ---------- *)

let test_tile_graph_halo_and_masks () =
  let grid = Routing_grid.create ~width:24 ~height:24 () in
  let tg = Tile_graph.create grid ~k:8 in
  Alcotest.(check int) "3x3 tiles" 9 (Tile_graph.tile_count tg);
  Alcotest.(check (list int)) "middle tile halo covers all nine" [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ]
    (Tile_graph.expand tg [ 4 ]);
  Alcotest.(check (list int)) "corner halo stays clipped" [ 0; 1; 3; 4 ]
    (Tile_graph.expand tg [ 0 ]);
  Alcotest.(check (list int)) "halo of opposite corners skips the far edges"
    [ 0; 1; 3; 4; 5; 7; 8 ]
    (Tile_graph.expand tg [ 0; 8 ]);
  let mask = Tile_graph.cell_mask tg [ 4 ] in
  Alcotest.(check bool) "centre cell in mask" true
    (Tile_graph.mask_mem tg mask (Routing_grid.index grid (Point.make 12 12)));
  Alcotest.(check bool) "origin cell out of mask" false
    (Tile_graph.mask_mem tg mask (Routing_grid.index grid (Point.make 0 0)))

(* ---------- Workspace corridor mask ---------- *)

let test_corridor_install_suspend_resume () =
  let grid = Routing_grid.create ~width:24 ~height:24 () in
  let tg = Tile_graph.create grid ~k:8 in
  let ws = Pacor_route.Workspace.create () in
  let install tiles =
    Pacor_route.Workspace.corridor_install ws
      ~width:(Tile_graph.grid_width tg)
      ~tiles_x:(Tile_graph.tiles_x tg)
      ~tile_count:(Tile_graph.tile_count tg)
      ~shift:(Tile_graph.shift tg)
      tiles
  in
  (* corridor_allows is only meaningful while corridor_active — mirror the
     searchers' guard. *)
  let allowed i =
    (not (Pacor_route.Workspace.corridor_active ws))
    || Pacor_route.Workspace.corridor_allows ws i
  in
  let centre = Routing_grid.index grid (Point.make 12 12) in
  let corner = Routing_grid.index grid (Point.make 0 0) in
  Alcotest.(check bool) "no corridor: inactive" false
    (Pacor_route.Workspace.corridor_active ws);
  Alcotest.(check bool) "no corridor: everything allowed" true (allowed corner);
  install [ 4 ];
  Alcotest.(check bool) "corridor active" true (Pacor_route.Workspace.corridor_active ws);
  Alcotest.(check bool) "in-corridor cell allowed" true (allowed centre);
  Alcotest.(check bool) "out-of-corridor cell refused" false (allowed corner);
  Pacor_route.Workspace.corridor_suspend ws;
  Alcotest.(check bool) "suspended: inactive" false
    (Pacor_route.Workspace.corridor_active ws);
  Alcotest.(check bool) "suspended: everything allowed" true (allowed corner);
  Pacor_route.Workspace.corridor_resume ws;
  Alcotest.(check bool) "resumed: refusal is back" false (allowed corner);
  (* Re-install replaces (generation stamping, no clearing pass needed). *)
  install [ 0 ];
  Alcotest.(check bool) "new corridor admits the corner" true (allowed corner);
  Alcotest.(check bool) "new corridor refuses the centre" false (allowed centre);
  Pacor_route.Workspace.corridor_clear ws;
  Alcotest.(check bool) "cleared: everything allowed" true (allowed centre)

(* ---------- Packed_roles ---------- *)

let test_packed_roles_roundtrip () =
  let len = 37 in
  (* odd length: exercises the partial last byte *)
  let roles = Packed_roles.create len in
  Alcotest.(check int) "length" len (Packed_roles.length roles);
  for i = 0 to len - 1 do
    Packed_roles.set roles i (i mod 4)
  done;
  for i = 0 to len - 1 do
    Alcotest.(check int) (Printf.sprintf "cell %d" i) (i mod 4) (Packed_roles.get roles i)
  done;
  Packed_roles.clear roles;
  for i = 0 to len - 1 do
    Alcotest.(check int) "cleared" 0 (Packed_roles.get roles i)
  done;
  (* wrap keeps buffer contents; higher role bits are masked off. *)
  let buf = Bytes.make (Packed_roles.bytes_needed len) '\255' in
  let wrapped = Packed_roles.wrap ~len buf in
  Alcotest.(check int) "wrap keeps contents" 3 (Packed_roles.get wrapped 13);
  (* The hot-path set masks roles to two bits; the checked variant raises. *)
  Packed_roles.set wrapped 13 (4 + 2);
  Alcotest.(check int) "role masked to two bits" 2 (Packed_roles.checked_get wrapped 13);
  (match Packed_roles.checked_set wrapped 13 6 with
   | () -> Alcotest.fail "checked_set must refuse roles above 3"
   | exception Invalid_argument _ -> ())

(* ---------- Bidirectional A-star equivalence ---------- *)

let prop_bidir_matches_astar =
  QCheck.Test.make ~name:"bidirectional A-star matches unidirectional cost" ~count:60
    QCheck.(make Gen.(int_range 1 100_000))
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let width = 40 and height = 40 in
      let source = Point.make 1 1 and target = Point.make 38 38 in
      let blocked =
        List.init 220 (fun _ ->
            Point.make (Random.State.int rng width) (Random.State.int rng height))
        |> List.filter (fun p -> not (Point.equal p source || Point.equal p target))
      in
      let grid =
        Routing_grid.with_extra_obstacles
          (Routing_grid.create ~width ~height ())
          blocked
      in
      let ws = Pacor_route.Workspace.create () in
      let usable i = Routing_grid.free_i grid i in
      let uni =
        Pacor_route.Astar.search ~workspace:ws ~grid
          ~spec:{ Pacor_route.Astar.usable; extra_cost = Fun.const 0 }
          ~sources:[ source ] ~targets:[ target ] ()
      in
      let bi =
        Pacor_route.Bidir_astar.search ~ws ~grid ~usable ~extra_cost:(Fun.const 0)
          ~source ~target
      in
      match (uni, bi) with
      | None, None -> true
      | Some p, Some q -> Path.length p = Path.length q
      | Some _, None | None, Some _ -> false)

(* ---------- Staged escape fallback ---------- *)

let test_escape_staged_fallback () =
  let grid = Routing_grid.create ~width:12 ~height:12 () in
  let pins = [ Point.make 4 0; Point.make 8 0 ] in
  let requests =
    [ { Pacor_flow.Escape.cluster_idx = 0; start_cells = [ Point.make 4 6 ] };
      { Pacor_flow.Escape.cluster_idx = 1; start_cells = [ Point.make 8 6 ] } ]
  in
  let solve ?workspace ?corridor ?corridor_fallback () =
    match
      Pacor_flow.Escape.route ?workspace ?corridor ?corridor_fallback ~grid
        ~claimed:Point.Set.empty ~pins requests
    with
    | Ok out -> out
    | Error e -> Alcotest.failf "escape: %s" e
  in
  let flat = solve () in
  Alcotest.(check int) "flat routes both" 2 (List.length flat.Pacor_flow.Escape.routed);
  (* A corridor refusing every transit cell: the bare-corridor ladder must
     still deliver the flat outcome via the whole-instance re-solve. *)
  let ws = Pacor_route.Workspace.create () in
  let starved = solve ~workspace:ws ~corridor:(fun _ -> false) () in
  Alcotest.(check int) "starved corridor still routes both" 2
    (List.length starved.Pacor_flow.Escape.routed);
  Alcotest.(check int) "same total length as flat" flat.Pacor_flow.Escape.total_length
    starved.Pacor_flow.Escape.total_length;
  Alcotest.(check bool) "fallback counted" true
    (Pacor_route.Workspace.corridor_fallbacks ws > 0);
  (* With a wide corridor_fallback the middle tier rescues on the residual
     without a whole-instance re-solve. *)
  let ws2 = Pacor_route.Workspace.create () in
  let rescued =
    solve ~workspace:ws2 ~corridor:(fun _ -> false) ~corridor_fallback:(fun _ -> true) ()
  in
  Alcotest.(check int) "fallback corridor routes both" 2
    (List.length rescued.Pacor_flow.Escape.routed);
  Alcotest.(check int) "fallback corridor matches flat length"
    flat.Pacor_flow.Escape.total_length rescued.Pacor_flow.Escape.total_length

(* ---------- Hier.plan geometry ---------- *)

let test_hier_plan_small_grid_is_none () =
  let grid = Routing_grid.create ~width:16 ~height:16 () in
  let v = mk_valve 0 4 4 "01" in
  let problem = Problem.create_exn ~grid ~valves:[ v ] ~lm_clusters:[] ~pins:[ Point.make 4 0 ] () in
  let cluster = Cluster.make_exn ~id:0 ~length_matched:false [ v ] in
  Alcotest.(check bool) "under 3x3 tiles: no plan" true
    (Hier.plan ~config:Config.default problem [ cluster ] = None)

let test_hier_plan_corridors () =
  let grid = Routing_grid.create ~width:64 ~height:64 () in
  let v0 = mk_valve 0 20 20 "01" and v1 = mk_valve 1 20 28 "01" in
  let cluster = Cluster.make_exn ~id:0 ~length_matched:true [ v0; v1 ] in
  let pins = [ Point.make 20 0; Point.make 0 24; Point.make 50 0; Point.make 63 40 ] in
  let problem =
    Problem.create_exn ~grid ~valves:[ v0; v1; mk_valve 2 50 50 "10" ]
      ~lm_clusters:[ cluster ] ~pins ()
  in
  match Hier.plan ~config:Config.default problem [ cluster ] with
  | None -> Alcotest.fail "expected a plan on an 8x8-tile grid"
  | Some plan ->
    Alcotest.(check int) "one escape request" 1 plan.Hier.requests;
    Alcotest.(check int) "assigned by the global flow" 1 plan.Hier.assigned;
    (* post corridor covers both the cluster corridor and the escape
       corridor. *)
    let subset a b = List.for_all (fun t -> List.mem t b) a in
    Alcotest.(check bool) "cluster tiles within post tiles" true
      (subset plan.Hier.cluster_tiles plan.Hier.post_tiles);
    Alcotest.(check bool) "escape tiles within post tiles" true
      (subset plan.Hier.escape_tiles plan.Hier.post_tiles);
    (* The predicates agree with the masks and count refusals as clips. *)
    let ws = Pacor_route.Workspace.create () in
    let far = Routing_grid.index grid (Point.make 63 63) in
    let near = Routing_grid.index grid (Point.make 20 24) in
    Alcotest.(check bool) "cluster interior in escape corridor" true
      (Hier.escape_predicate ws plan near);
    Alcotest.(check bool) "far corner outside escape corridor" false
      (Hier.escape_predicate ws plan far);
    Alcotest.(check bool) "far corner outside post corridor" false
      (Hier.post_predicate ws plan far);
    Alcotest.(check bool) "refusals counted as clips" true
      (Pacor_route.Workspace.corridor_clips ws >= 2)

(* ---------- Tier-2 certificate ---------- *)

let certificate_problem ~obstacles =
  let grid = Routing_grid.create ~width:13 ~height:13 ~obstacles () in
  let v = mk_valve 0 6 6 "01" in
  Problem.create_exn ~grid ~valves:[ v ] ~lm_clusters:[] ~pins:[ Point.make 6 0 ] ()

let test_certificate_straight_escape () =
  match Engine.run (certificate_problem ~obstacles:[]) with
  | Error e -> Alcotest.failf "engine: %s" e.message
  | Ok sol ->
    Alcotest.(check bool) "straight escape certifies" true (Hier.certified sol);
    Alcotest.(check (option string)) "no failing condition" None (Hier.certify_failure sol)

let test_certificate_detoured_escape_fails () =
  (* A wall above the valve forces the escape around: its length exceeds
     the pin-to-channel-box lower bound, so the certificate must refuse. *)
  let obstacles = [ Rect.of_points (Point.make 4 3) (Point.make 8 3) ] in
  match Engine.run (certificate_problem ~obstacles) with
  | Error e -> Alcotest.failf "engine: %s" e.message
  | Ok sol ->
    Alcotest.(check bool) "detoured escape does not certify" false (Hier.certified sol)

(* ---------- Workspace reuse across grid sizes ---------- *)

let synth ~width ~height ~seed =
  Pacor_designs.Synthetic.generate_exn
    { Pacor_designs.Synthetic.name = "ws-reuse";
      width;
      height;
      obstacle_cells = 10;
      lm_cluster_sizes = [ 2 ];
      singleton_valves = 2;
      pin_count = 30;
      seed = Int64.of_int seed;
      delta = 1 }

let test_workspace_cross_size_reuse () =
  let stats = Pacor_route.Search_stats.create () in
  let ws = Pacor_route.Workspace.create ~stats () in
  let small = synth ~width:26 ~height:26 ~seed:7 in
  let big = synth ~width:96 ~height:96 ~seed:8 in
  let run problem =
    match Engine.run ~workspace:ws problem with
    | Ok sol -> sol
    | Error e -> Alcotest.failf "engine: %s" e.message
  in
  let s1 = run small in
  let _b1 = run big in
  let warm = Pacor_route.Search_stats.snapshot stats in
  (* Warm reuse across sizes in both directions: the workspace has grown
     to the biggest instance and must not allocate again. *)
  let s2 = run small in
  let b2 = run big in
  let after = Pacor_route.Search_stats.snapshot stats in
  Alcotest.(check int) "no grid allocations on warm cross-size reuse" 0
    (Pacor_route.Search_stats.diff after warm).Pacor_route.Search_stats.grid_allocs;
  Alcotest.(check bool) "small validates warm" true (Solution.validate s2 = Ok ());
  Alcotest.(check bool) "big validates warm" true (Solution.validate b2 = Ok ());
  (* Workspace warmth never changes results (runtime_s is wall clock, so
     compare everything but it). *)
  let fresh =
    match Engine.run small with
    | Ok sol -> sol
    | Error e -> Alcotest.failf "engine: %s" e.message
  in
  let key sol =
    let s = Solution.stats sol in
    ( s.Solution.clusters,
      s.Solution.matched_clusters,
      s.Solution.matched_length,
      s.Solution.total_length,
      s.Solution.completion )
  in
  Alcotest.(check bool) "warm == cold solution stats" true
    (key s2 = key fresh && key s1 = key fresh)

let test_pool_cross_size_reuse () =
  (* One worker domain: every problem funnels through the same pooled
     workspace, exercising grow-then-shrink-then-grow request orders. *)
  let pool = Pacor_par.Pool.create ~jobs:1 () in
  Fun.protect
    ~finally:(fun () -> Pacor_par.Pool.shutdown pool)
    (fun () ->
      let problems =
        [ synth ~width:26 ~height:26 ~seed:11;
          synth ~width:96 ~height:96 ~seed:12;
          synth ~width:26 ~height:26 ~seed:13 ]
      in
      let sols =
        Pacor_par.Pool.map_ctx pool
          (fun worker problem ->
            match
              Engine.run ~workspace:(Pacor_par.Pool.worker_workspace worker) problem
            with
            | Ok sol -> sol
            | Error e -> failwith e.Engine.message)
          problems
      in
      List.iteri
        (fun i sol ->
          Alcotest.(check bool)
            (Printf.sprintf "pooled solution %d validates" i)
            true
            (Solution.validate sol = Ok ()))
        sols)

(* ---------- Never-worse property ---------- *)

let arb_hier_spec =
  QCheck.make
    QCheck.Gen.(
      let* seed = int_range 1 100_000 in
      let* n_pairs = int_range 0 2 in
      let* n_triples = int_range 0 1 in
      let* singles = int_range 1 3 in
      return
        { Pacor_designs.Synthetic.name = "hier-prop";
          width = 32;
          height = 32;
          obstacle_cells = 14;
          lm_cluster_sizes =
            List.init n_pairs (fun _ -> 2) @ List.init n_triples (fun _ -> 3);
          singleton_valves = singles;
          pin_count = 30;
          seed = Int64.of_int seed;
          delta = 1 })

let prop_hier_never_worse =
  QCheck.Test.make
    ~name:"hier validates and is equal-or-better than flat (never-worse ladder)"
    ~count:200 arb_hier_spec (fun spec ->
      match Pacor_designs.Synthetic.generate spec with
      | Error _ -> QCheck.assume_fail ()
      | Ok problem ->
        let run hier =
          Engine.run_report ~config:{ Config.default with Config.hier } problem
        in
        (match (run Config.Hier_off, run Config.Hier_on) with
         | Ok flat, Ok hier ->
           Solution.validate hier.Engine.solution = Ok ()
           && Hier.score hier.Engine.solution >= Hier.score flat.Engine.solution
           && (match hier.Engine.tier with
               | Engine.Hier_identical ->
                 (* tier 1 means confinement never bit: byte identity *)
                 hier.Engine.solution.Solution.clusters
                 = flat.Engine.solution.Solution.clusters
               | Engine.Hier_certified | Engine.Hier_race_won
               | Engine.Hier_race_flat | Engine.Flat_mode ->
                 true
               | Engine.Hier_error_flat -> false)
         | _ -> false))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest [ prop_bidir_matches_astar; prop_hier_never_worse ]

let () =
  Alcotest.run "hier"
    [ ( "tile_graph",
        [ Alcotest.test_case "coarsening boundaries" `Quick test_tile_graph_coarsening;
          Alcotest.test_case "free-cell accounting" `Quick test_tile_graph_free_cell_accounting;
          Alcotest.test_case "boundary capacity" `Quick test_tile_graph_boundary_capacity;
          Alcotest.test_case "halo and cell masks" `Quick test_tile_graph_halo_and_masks ] );
      ( "corridor",
        [ Alcotest.test_case "install/suspend/resume" `Quick test_corridor_install_suspend_resume ] );
      ( "packed_roles",
        [ Alcotest.test_case "round-trip" `Quick test_packed_roles_roundtrip ] );
      ( "escape_fallback",
        [ Alcotest.test_case "staged escalation" `Quick test_escape_staged_fallback ] );
      ( "plan",
        [ Alcotest.test_case "small grid runs flat" `Quick test_hier_plan_small_grid_is_none;
          Alcotest.test_case "corridor geometry" `Quick test_hier_plan_corridors ] );
      ( "certificate",
        [ Alcotest.test_case "straight escape certifies" `Quick test_certificate_straight_escape;
          Alcotest.test_case "detoured escape refuses" `Quick test_certificate_detoured_escape_fails ] );
      ( "workspace_reuse",
        [ Alcotest.test_case "cross-size engine reuse" `Quick test_workspace_cross_size_reuse;
          Alcotest.test_case "cross-size pool reuse" `Quick test_pool_cross_size_reuse ] );
      ("properties", qcheck_cases);
    ]
