(* Robustness: budget accounting, parser totality under fuzzing, and
   engine totality and timeliness under fault injection.

   The contract under test is the one the batch runner leans on: the
   parser never raises on arbitrary text, the engine never raises on any
   parsed instance, and a budgeted run comes back promptly with its
   degradation recorded in the solution rather than thrown. *)

module Budget = Pacor_route.Budget

(* -------------------------------------------------------------------- *)
(* Budget unit tests.                                                    *)

let test_budget_unlimited () =
  let b = Budget.unlimited () in
  Budget.arm b;
  for _ = 1 to 10_000 do
    if not (Budget.tick b) then Alcotest.fail "unlimited tick tripped"
  done;
  Alcotest.(check bool) "alive" true (Budget.alive b);
  Alcotest.(check bool) "iteration" true (Budget.note_iteration b);
  Alcotest.(check bool) "never exhausted" true (Budget.exhausted b = None)

let test_budget_expansion_cap () =
  let b = Budget.create (Budget.limits ~max_expansions:5 ()) in
  Budget.arm b;
  for i = 1 to 5 do
    if not (Budget.tick b) then Alcotest.failf "tick %d tripped early" i
  done;
  Alcotest.(check bool) "6th tick trips" false (Budget.tick b);
  (match Budget.exhausted b with
   | Some Budget.Expansions -> ()
   | _ -> Alcotest.fail "expected Expansions exhaustion");
  Alcotest.(check bool) "alive after trip" false (Budget.alive b);
  (* Re-arming resets the allowance for the next engine run. *)
  Budget.arm b;
  Alcotest.(check bool) "re-armed tick" true (Budget.tick b);
  Alcotest.(check bool) "re-armed clean" true (Budget.exhausted b = None)

let test_budget_iteration_cap () =
  let b = Budget.create (Budget.limits ~max_iterations:2 ()) in
  Budget.arm b;
  Alcotest.(check bool) "round 1" true (Budget.note_iteration b);
  Alcotest.(check bool) "round 2" true (Budget.note_iteration b);
  Alcotest.(check bool) "round 3 trips" false (Budget.note_iteration b);
  (match Budget.exhausted b with
   | Some Budget.Iterations -> ()
   | _ -> Alcotest.fail "expected Iterations exhaustion");
  (* Exhaustion is sticky across every entry point. *)
  Alcotest.(check bool) "tick after trip" false (Budget.tick b)

let test_budget_deadline () =
  let b = Budget.create (Budget.limits ~timeout_s:0.01 ()) in
  Budget.arm b;
  let t0 = Unix.gettimeofday () in
  let rec spin () =
    if Budget.tick b then
      if Unix.gettimeofday () -. t0 > 5.0 then
        Alcotest.fail "deadline never tripped"
      else spin ()
  in
  spin ();
  (match Budget.exhausted b with
   | Some Budget.Deadline -> ()
   | _ -> Alcotest.fail "expected Deadline exhaustion");
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "tripped promptly" true (elapsed < 1.0)

let test_budget_limits_validation () =
  (match Budget.limits ~timeout_s:(-1.0) () with
   | _ -> Alcotest.fail "negative timeout accepted"
   | exception Invalid_argument _ -> ());
  (match Budget.limits ~max_expansions:0 () with
   | _ -> Alcotest.fail "zero expansion cap accepted"
   | exception Invalid_argument _ -> ());
  let l = Budget.limits ~timeout_s:1.5 ~max_expansions:3 () in
  let r = Budget.relax l in
  Alcotest.(check (option (float 1e-9))) "timeout doubled" (Some 3.0)
    r.Budget.timeout_s;
  Alcotest.(check (option int)) "expansions doubled" (Some 6)
    r.Budget.max_expansions;
  Alcotest.(check bool) "no_limits is free" true
    (Budget.is_no_limits Budget.no_limits);
  Alcotest.(check bool) "relax of unlimited stays unlimited" true
    (Budget.is_no_limits (Budget.relax Budget.no_limits))

(* -------------------------------------------------------------------- *)
(* Corpus-text mutation fuzzing.                                         *)

let corpus_dir =
  match Sys.getenv_opt "DUNE_SOURCEROOT" with
  | Some root -> Filename.concat root "corpus"
  | None -> Filename.concat (Sys.getcwd ()) "../../../corpus"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let base_files =
  [ "corpus-dense.chip"; "corpus-pairs.chip"; "corpus-obstacles.chip";
    "corpus-bigcluster.chip";
    Filename.concat "degenerate" "corpus-empty-clusters.chip";
    Filename.concat "degenerate" "corpus-infeasible.chip" ]

let base_texts =
  lazy (List.map (fun f -> read_file (Filename.concat corpus_dir f)) base_files)

(* Adversarial lines the parser must reject (or survive) without raising:
   negative and overflowing dimensions, dangling references, inverted
   rectangles, bare keywords, raw bytes. *)
let poison_lines =
  [| "grid -4 0"; "grid 999999999 999999999"; "grid 4096 4096";
     "valve 0 -1 -1 01"; "valve 99 3 3 01XZ"; "cluster 7 42 43 44";
     "cluster 0 0 0"; "obstacle 9 9 0 0"; "obstacle -5 -5 100 100";
     "pin -3 7"; "delta -2"; "delta"; "valve"; "grid"; "name";
     "\x00\xff\x01 garbage \\ tab\there" |]

(* One deterministic text mutation, driven by fuzzer-chosen integers. *)
let mutate text (kind, a, b) =
  let n = String.length text in
  if n = 0 then text
  else
    match kind mod 6 with
    | 0 ->
      (* flip one byte *)
      let i = a mod n in
      String.mapi (fun j ch -> if j = i then Char.chr (b land 0xff) else ch) text
    | 1 ->
      (* delete a line *)
      let lines = String.split_on_char '\n' text in
      let k = a mod max 1 (List.length lines) in
      String.concat "\n" (List.filteri (fun i _ -> i <> k) lines)
    | 2 ->
      (* duplicate a line (duplicate valve/cluster ids, repeated grids) *)
      let lines = String.split_on_char '\n' text in
      let k = a mod max 1 (List.length lines) in
      String.concat "\n"
        (List.concat_map
           (fun (i, l) -> if i = k then [ l; l ] else [ l ])
           (List.mapi (fun i l -> (i, l)) lines))
    | 3 -> String.sub text 0 (a mod n) (* truncate mid-token *)
    | 4 -> text ^ "\n" ^ poison_lines.(a mod Array.length poison_lines) ^ "\n"
    | _ ->
      (* swap two lines (e.g. a valve line before its grid) *)
      let lines = Array.of_list (String.split_on_char '\n' text) in
      let len = Array.length lines in
      if len < 2 then text
      else begin
        let i = a mod len and j = b mod len in
        let t = lines.(i) in
        lines.(i) <- lines.(j);
        lines.(j) <- t;
        String.concat "\n" (Array.to_list lines)
      end

let gen_mutated =
  QCheck.(
    pair
      (int_range 0 (List.length base_files - 1))
      (list_of_size
         (QCheck.Gen.int_range 1 6)
         (triple (int_range 0 5) small_nat (int_range 0 1000))))

let mutated_text (base, muts) =
  List.fold_left mutate (List.nth (Lazy.force base_texts) base) muts

let prop_parser_never_raises =
  QCheck.Test.make ~name:"Problem_io.of_string is total on mutated corpus"
    ~count:300 gen_mutated
    (fun seed ->
      match Pacor.Problem_io.of_string (mutated_text seed) with
      | Ok _ | Error _ -> true
      | exception exn ->
        QCheck.Test.fail_reportf "of_string raised %s" (Printexc.to_string exn))

let prop_parser_roundtrip =
  QCheck.Test.make
    ~name:"accepted mutants re-serialise to a parse fixpoint" ~count:300
    gen_mutated
    (fun seed ->
      match Pacor.Problem_io.of_string (mutated_text seed) with
      | Error _ -> true
      | Ok p -> (
        let text = Pacor.Problem_io.to_string p in
        match Pacor.Problem_io.of_string text with
        | Error e ->
          QCheck.Test.fail_reportf "re-parse of accepted mutant failed: %s" e
        | Ok p2 ->
          if String.equal text (Pacor.Problem_io.to_string p2) then true
          else QCheck.Test.fail_reportf "re-serialisation is not a fixpoint"))

(* -------------------------------------------------------------------- *)
(* Engine fault injection: whatever instance survives parsing (falling
   back to the unmutated base when the mutant is rejected, so every trial
   exercises the engine), [Engine.run] under a 100 ms deadline must
   return Ok/Error — never raise — and come back within 2x the deadline. *)

let base_problems =
  lazy
    (List.map
       (fun text ->
         match Pacor.Problem_io.of_string text with
         | Ok p -> p
         | Error e -> Alcotest.failf "corpus base no longer parses: %s" e)
       (Lazy.force base_texts))

let deadline_s = 0.1

let prop_engine_total_under_deadline =
  QCheck.Test.make
    ~name:"Engine.run is total and prompt under a 100ms deadline" ~count:220
    gen_mutated
    (fun ((base, _) as seed) ->
      let problem =
        match Pacor.Problem_io.of_string (mutated_text seed) with
        | Ok p -> p
        | Error _ -> List.nth (Lazy.force base_problems) base
      in
      let config =
        { Pacor.Config.default with
          limits = Budget.limits ~timeout_s:deadline_s () }
      in
      let t0 = Unix.gettimeofday () in
      match Pacor.Engine.run ~config problem with
      | exception exn ->
        QCheck.Test.fail_reportf "Engine.run raised %s" (Printexc.to_string exn)
      | Ok _ | Error _ ->
        let dt = Unix.gettimeofday () -. t0 in
        if dt <= 2.0 *. deadline_s then true
        else
          QCheck.Test.fail_reportf "run took %.3fs under a %.1fs deadline" dt
            deadline_s)

(* -------------------------------------------------------------------- *)
(* Degradation surface: a starved run records its exhaustion in the
   solution instead of raising or erroring. *)

let test_starved_run_reports_degradation () =
  let config =
    { Pacor.Config.default with limits = Budget.limits ~max_expansions:1 () }
  in
  (* Only the clustered corpus instances: the degenerate ones route their
     singleton valves through min-cost flow alone, pop nothing from the
     search queue, and so legitimately finish under any expansion cap. *)
  let searchy xs = List.filteri (fun i _ -> i < 4) xs in
  List.iter2
    (fun file problem ->
      match Pacor.Engine.run ~config problem with
      | Error e ->
        Alcotest.failf "%s: starved run should degrade, not error: %s" file
          e.message
      | Ok sol ->
        (match sol.Pacor.Solution.budget_exhausted with
         | Some Budget.Expansions -> ()
         | Some r ->
           Alcotest.failf "%s: wrong exhaustion reason %s" file
             (Budget.reason_label r)
         | None -> Alcotest.failf "%s: exhaustion not recorded" file);
        Alcotest.(check bool) (file ^ " marked degraded") true
          (Pacor.Solution.degraded sol);
        Alcotest.(check bool) (file ^ " has stage outcomes") true
          (sol.Pacor.Solution.stage_outcomes <> []))
    (searchy base_files)
    (searchy (Lazy.force base_problems))

let () =
  Alcotest.run "resilience"
    [ ( "budget",
        [ Alcotest.test_case "unlimited is free" `Quick test_budget_unlimited;
          Alcotest.test_case "expansion cap" `Quick test_budget_expansion_cap;
          Alcotest.test_case "iteration cap" `Quick test_budget_iteration_cap;
          Alcotest.test_case "wall-clock deadline" `Quick test_budget_deadline;
          Alcotest.test_case "limits validation and relax" `Quick
            test_budget_limits_validation ] );
      ( "fault injection",
        [ QCheck_alcotest.to_alcotest prop_parser_never_raises;
          QCheck_alcotest.to_alcotest prop_parser_roundtrip;
          QCheck_alcotest.to_alcotest prop_engine_total_under_deadline ] );
      ( "degradation",
        [ Alcotest.test_case "starved run reports exhaustion" `Quick
            test_starved_run_reports_degradation ] ) ]
