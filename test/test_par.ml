(* The domain-parallel batch-routing subsystem (pacor_par).

   The load-bearing property is the determinism contract: routing a batch
   on N worker domains must produce solutions byte-identical to sequential
   [Engine.run] calls — same paths, same stats, same per-stage search
   counters — with only wall-clock fields free to differ. The pool's own
   order-preservation and exception semantics are tested below it. *)

let corpus_dir =
  match Sys.getenv_opt "DUNE_SOURCEROOT" with
  | Some root -> Filename.concat root "corpus"
  | None -> Filename.concat (Sys.getcwd ()) "../../../corpus"

let corpus_names =
  [ "corpus-bigcluster"; "corpus-dense"; "corpus-obstacles"; "corpus-pairs" ]

let load name =
  let path = Filename.concat corpus_dir (name ^ ".chip") in
  match Pacor.Problem_io.load ~path with
  | Ok p -> p
  | Error e -> Alcotest.failf "cannot load %s: %s" path e

(* Search counters minus [grid_allocs]: allocation events measure workspace
   *warmth* (a batch worker's second instance reuses warm arrays and
   reports 0), so they are the one counter legitimately dependent on
   scheduling. Everything else is a pure function of (config, problem). *)
let pp_work ppf (s : Pacor_route.Search_stats.snapshot) =
  Format.fprintf ppf "searches=%d pops=%d pushes=%d touched=%d relax=%d resets=%d"
    s.Pacor_route.Search_stats.searches s.Pacor_route.Search_stats.pops
    s.Pacor_route.Search_stats.pushes s.Pacor_route.Search_stats.touched
    s.Pacor_route.Search_stats.relaxations s.Pacor_route.Search_stats.resets

(* Everything deterministic about a solution, as one string: the rendered
   routing (paths and escapes, cell by cell), the Table-2 statistics, the
   per-cluster matched lengths, and the per-stage search-work counters.
   Only runtime_s / stage_seconds / grid_allocs are excluded. *)
let fingerprint (sol : Pacor.Solution.t) =
  let st = Pacor.Solution.stats sol in
  Format.asprintf "%s|clusters=%d matched=%d matched_len=%d total=%d compl=%.9f|%a|%a"
    (Pacor.Render.solution sol)
    st.Pacor.Solution.clusters st.Pacor.Solution.matched_clusters
    st.Pacor.Solution.matched_length st.Pacor.Solution.total_length
    st.Pacor.Solution.completion
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";")
       (fun ppf (c : Pacor.Solution.routed_cluster) ->
          Format.fprintf ppf "%d:%b:[%s]"
            c.Pacor.Solution.routed.Pacor.Routed.cluster.Pacor_valve.Cluster.id
            c.Pacor.Solution.matched
            (String.concat ","
               (List.map
                  (fun (vid, l) -> Printf.sprintf "%d=%d" vid l)
                  c.Pacor.Solution.lengths))))
    sol.Pacor.Solution.clusters
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";")
       (fun ppf (label, snap) -> Format.fprintf ppf "%s:%a" label pp_work snap))
    sol.Pacor.Solution.stage_search

(* (a) Parallel equals sequential on the committed corpus. *)

let test_corpus_parallel_equals_sequential () =
  let named = List.map (fun n -> (n, load n)) corpus_names in
  let sequential =
    List.map
      (fun (n, p) ->
         match Pacor.Engine.run p with
         | Ok sol -> (n, sol)
         | Error e -> Alcotest.failf "sequential %s failed: %s" n e.message)
      named
  in
  let summary = Pacor_par.Batch.run_problems ~jobs:4 named in
  Alcotest.(check int) "one item per instance" (List.length named)
    (List.length summary.Pacor_par.Batch.items);
  Alcotest.(check (list string)) "input order preserved"
    (List.map fst named)
    (List.map (fun (i : Pacor_par.Batch.item) -> i.name) summary.Pacor_par.Batch.items);
  List.iter2
    (fun (n, seq_sol) (item : Pacor_par.Batch.item) ->
       match item.solution with
       | Error e ->
         Alcotest.failf "batch %s failed: %s" n
           (Pacor_par.Batch.error_to_string e)
       | Ok par_sol ->
         (match Pacor.Solution.validate par_sol with
          | Ok () -> ()
          | Error es ->
            Alcotest.failf "batch %s invalid: %s" n (String.concat "; " es));
         Alcotest.(check string)
           (n ^ " parallel solution is byte-identical to sequential")
           (fingerprint seq_sol) (fingerprint par_sol))
    sequential summary.Pacor_par.Batch.items;
  (* The aggregated search counters are the sum of the sequential runs'
     per-stage snapshots — scheduling-independent. *)
  let seq_total =
    List.fold_left
      (fun acc (_, sol) ->
         List.fold_left
           (fun acc (_, snap) -> Pacor_route.Search_stats.add acc snap)
           acc sol.Pacor.Solution.stage_search)
      Pacor_route.Search_stats.zero sequential
  in
  Alcotest.(check string) "aggregated search-work counters match sequential"
    (Format.asprintf "%a" pp_work seq_total)
    (Format.asprintf "%a" pp_work summary.Pacor_par.Batch.search)

let test_sweep_parallel_equals_sequential () =
  (* The delta-sweep wiring: same samples whatever the jobs count. *)
  let problem = load "corpus-bigcluster" in
  let deltas = [ 0; 1; 2; 3 ] in
  match
    Pacor_designs.Sweep.run ~jobs:1 ~deltas problem,
    Pacor_designs.Sweep.run ~jobs:3 ~deltas problem
  with
  | Ok seq, Ok par ->
    Alcotest.(check int) "same number of samples" (List.length seq) (List.length par);
    List.iter2
      (fun (a : Pacor_designs.Sweep.sample) (b : Pacor_designs.Sweep.sample) ->
         Alcotest.(check int) "delta" a.delta b.delta;
         Alcotest.(check int) "matched" a.matched b.matched;
         Alcotest.(check int) "total_length" a.total_length b.total_length)
      seq par
  | Error e, _ | _, Error e -> Alcotest.failf "sweep failed: %s" e

(* (b) Pool order preservation and exception propagation. *)

let test_pool_preserves_order () =
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int)) "map ~jobs:4 = List.map"
    (List.map (fun x -> (x * x) + 1) xs)
    (Pacor_par.Pool.map ~jobs:4 (fun x -> (x * x) + 1) xs)

exception Boom of int

let test_pool_propagates_exception () =
  let xs = List.init 50 Fun.id in
  match
    Pacor_par.Pool.map ~jobs:4
      (fun x -> if x mod 7 = 3 then raise (Boom x) else x)
      xs
  with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom x ->
    (* Deterministic join: the earliest-indexed failure wins even though a
       later-indexed task may raise first in wall-clock order. *)
    Alcotest.(check int) "earliest failing task reported" 3 x

let test_pool_shutdown_semantics () =
  let pool = Pacor_par.Pool.create ~jobs:2 () in
  Alcotest.(check int) "jobs" 2 (Pacor_par.Pool.jobs pool);
  let r1 = Pacor_par.Pool.map_ctx pool (fun _ x -> x + 1) [ 1; 2; 3 ] in
  let indices =
    Pacor_par.Pool.map_ctx pool
      (fun w _ -> Pacor_par.Pool.worker_index w)
      (List.init 8 Fun.id)
  in
  List.iter
    (fun i ->
       if i < 0 || i >= 2 then Alcotest.failf "worker index %d out of range" i)
    indices;
  Alcotest.(check (list int)) "pool reusable across map_ctx calls" [ 2; 3; 4 ] r1;
  Pacor_par.Pool.shutdown pool;
  Pacor_par.Pool.shutdown pool;  (* idempotent *)
  (match Pacor_par.Pool.map_ctx pool (fun _ x -> x) [ 1 ] with
   | _ -> Alcotest.fail "map_ctx after shutdown should raise"
   | exception Invalid_argument _ -> ())

(* (c) Fault isolation: a poisoned batch quarantines exactly the bad
   jobs, healthy jobs stay byte-identical to their sequential runs, and a
   raising worker task neither leaks domains nor poisons the pool. *)

let load_degenerate name =
  let path =
    Filename.concat (Filename.concat corpus_dir "degenerate") (name ^ ".chip")
  in
  match Pacor.Problem_io.load ~path with
  | Ok p -> p
  | Error e -> Alcotest.failf "cannot load %s: %s" path e

let test_batch_quarantines_infeasible () =
  let named =
    List.map (fun n -> (n, load n)) corpus_names
    @ [ ("corpus-infeasible", load_degenerate "corpus-infeasible") ]
  in
  let seq = Pacor_par.Batch.run_problems ~jobs:1 named in
  let par = Pacor_par.Batch.run_problems ~jobs:4 named in
  List.iter
    (fun (summary : Pacor_par.Batch.summary) ->
       Alcotest.(check int) "one item per job" (List.length named)
         (List.length summary.items);
       Alcotest.(check (list string)) "exactly the infeasible job quarantined"
         [ "corpus-infeasible" ]
         (List.map
            (fun (i : Pacor_par.Batch.item) -> i.name)
            summary.quarantined);
       List.iter
         (fun (i : Pacor_par.Batch.item) ->
            match i.solution with
            | Ok sol ->
              (match Pacor.Solution.validate sol with
               | Ok () -> ()
               | Error es ->
                 Alcotest.failf "healthy job %s invalid: %s" i.name
                   (String.concat "; " es))
            | Error (Pacor_par.Batch.Invalid violations) ->
              Alcotest.(check string) "infeasible job named" "corpus-infeasible"
                i.name;
              Alcotest.(check bool) "violations reported" true
                (violations <> [])
            | Error e ->
              Alcotest.failf "unexpected error class for %s: %s" i.name
                (Pacor_par.Batch.error_to_string e))
         summary.items)
    [ seq; par ];
  (* Healthy jobs are untouched by the poisoned neighbour: byte-identical
     between sequential and 4-way parallel runs. *)
  List.iter2
    (fun (a : Pacor_par.Batch.item) (b : Pacor_par.Batch.item) ->
       Alcotest.(check string) "same job" a.name b.name;
       match a.solution, b.solution with
       | Ok sa, Ok sb ->
         Alcotest.(check string)
           (a.name ^ " healthy job byte-identical under parallelism")
           (fingerprint sa) (fingerprint sb)
       | _ -> ())
    seq.Pacor_par.Batch.items par.Pacor_par.Batch.items

let test_batch_budget_exhaustion_and_retry () =
  (* A one-expansion budget deterministically starves every search; the
     degraded solution cannot validate, so the job is classified as
     budget exhaustion, retried once under a relaxed (doubled) budget —
     still hopeless — and quarantined with both attempts on record. *)
  let config =
    { Pacor.Config.default with
      limits = Pacor_route.Budget.limits ~max_expansions:1 () }
  in
  let summary =
    Pacor_par.Batch.run_problems ~retries:1 ~config
      [ ("corpus-dense", load "corpus-dense") ]
  in
  Alcotest.(check int) "retried" 1 summary.Pacor_par.Batch.retried_jobs;
  match summary.Pacor_par.Batch.quarantined with
  | [ item ] ->
    Alcotest.(check int) "both attempts made" 2 item.attempts;
    (match item.solution with
     | Error (Pacor_par.Batch.Budget_exhausted { reason; _ }) ->
       Alcotest.(check string) "expansion cap tripped" "expansions" reason
     | Error e ->
       Alcotest.failf "expected Budget_exhausted, got %s"
         (Pacor_par.Batch.error_to_string e)
     | Ok _ -> Alcotest.fail "expected quarantined item to carry an error")
  | items ->
    Alcotest.failf "expected one quarantined item, got %d" (List.length items)

let test_pool_worker_death_isolated () =
  let pool = Pacor_par.Pool.create ~jobs:2 () in
  let xs = List.init 20 Fun.id in
  let results =
    Pacor_par.Pool.try_map_ctx pool
      (fun _ x -> if x mod 5 = 2 then raise (Boom x) else x * 10)
      xs
  in
  Alcotest.(check int) "one slot per task" 20 (List.length results);
  List.iteri
    (fun i r ->
       match r with
       | Ok v -> Alcotest.(check int) "healthy task result" (i * 10) v
       | Error (Boom x) ->
         Alcotest.(check bool) "only poisoned tasks fail" true (x mod 5 = 2);
         Alcotest.(check int) "error in its own slot" i x
       | Error e -> Alcotest.failf "unexpected exception: %s" (Printexc.to_string e))
    results;
  (* The pool survives worker-task death: same pool, ordinary map. *)
  Alcotest.(check (list int)) "pool usable after task exceptions" [ 2; 4; 6 ]
    (Pacor_par.Pool.map_ctx pool (fun _ x -> 2 * x) [ 1; 2; 3 ]);
  Pacor_par.Pool.shutdown pool

(* (d) Stress: many tiny tasks, jobs > tasks, arbitrary shapes. *)

let prop_pool_map_is_map =
  QCheck.Test.make ~name:"Pool.map = List.map (any jobs, incl. jobs > tasks)"
    ~count:60
    QCheck.(pair (int_range 1 8) (small_list small_int))
    (fun (jobs, xs) ->
       Pacor_par.Pool.map ~jobs (fun x -> (2 * x) - 1) xs
       = List.map (fun x -> (2 * x) - 1) xs)

let prop_pool_many_tiny_tasks =
  QCheck.Test.make ~name:"many tiny tasks drain completely" ~count:10
    QCheck.(int_range 1 8)
    (fun jobs ->
       let n = 500 in
       let xs = List.init n Fun.id in
       let sum = List.fold_left ( + ) 0 (Pacor_par.Pool.map ~jobs succ xs) in
       sum = n * (n + 1) / 2)

let () =
  Alcotest.run "par"
    [ ( "batch determinism",
        [ Alcotest.test_case "corpus: parallel = sequential (byte-identical)" `Slow
            test_corpus_parallel_equals_sequential;
          Alcotest.test_case "sweep: jobs=3 = jobs=1" `Slow
            test_sweep_parallel_equals_sequential ] );
      ( "pool semantics",
        [ Alcotest.test_case "order preservation" `Quick test_pool_preserves_order;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_propagates_exception;
          Alcotest.test_case "reuse and shutdown" `Quick test_pool_shutdown_semantics ] );
      ( "fault isolation",
        [ Alcotest.test_case "infeasible job quarantined, healthy jobs identical"
            `Slow test_batch_quarantines_infeasible;
          Alcotest.test_case "budget exhaustion classified and retried" `Quick
            test_batch_budget_exhaustion_and_retry;
          Alcotest.test_case "worker death isolated, pool survives" `Quick
            test_pool_worker_death_isolated ] );
      ( "stress",
        List.map QCheck_alcotest.to_alcotest
          [ prop_pool_map_is_map; prop_pool_many_tiny_tasks ] ) ]
