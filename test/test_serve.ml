(* The serving layer.

   Contracts under test: the hand-rolled JSON round-trips; the LRU evicts
   least-recently-used and promotes on hit; the canonical problem rendering
   gives construction-order-independent fingerprints that survive a parse
   round-trip; the daemon handler answers every line (malformed, starved,
   impossible edits included) without crashing; cache hits replay
   byte-identical results; and a delta request is never worse than routing
   the mutated problem from scratch — byte-identical to the old solution
   when its dirty set is empty. Plus: the monotonic clock never steps
   backwards. *)

open Pacor_serve
module Synthetic = Pacor_designs.Synthetic

let json_t = Alcotest.testable (Fmt.of_to_string Json.to_string) ( = )

(* ---------- Json ---------- *)

let test_json_basics () =
  let cases =
    [
      ("null", Json.Null);
      ("true", Json.Bool true);
      ("-42", Json.Int (-42));
      ("3.5", Json.Float 3.5);
      ({|"a\"b\\c\nd"|}, Json.String "a\"b\\c\nd");
      ("[1,[],{}]", Json.List [ Json.Int 1; Json.List []; Json.Obj [] ]);
      ( {|{"a":1,"b":[true,null]}|},
        Json.Obj [ ("a", Json.Int 1); ("b", Json.List [ Json.Bool true; Json.Null ]) ] );
    ]
  in
  List.iter
    (fun (text, value) ->
       match Json.of_string text with
       | Ok v -> Alcotest.check json_t text value v
       | Error e -> Alcotest.failf "%s: %s" text e)
    cases;
  (* Unicode escapes decode to UTF-8 (including a surrogate pair). *)
  (match Json.of_string {|"é😀"|} with
   | Ok (Json.String s) ->
     Alcotest.(check string) "utf8" "\xc3\xa9\xf0\x9f\x98\x80" s
   | Ok _ | Error _ -> Alcotest.fail "unicode escape");
  (* Malformed inputs are errors, never exceptions. *)
  List.iter
    (fun bad ->
       match Json.of_string bad with
       | Error _ -> ()
       | Ok v -> Alcotest.failf "%S parsed to %s" bad (Json.to_string v))
    [ ""; "{"; "[1,"; "tru"; "{\"a\" 1}"; "\"unterminated"; "1 2"; "nan" ]

let json_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) (int_range (-1000000) 1000000);
        (* Quarter-integer floats round-trip exactly through %.12g. *)
        map (fun i -> Json.Float (float_of_int i /. 4.0)) (int_range (-10000) 10000);
        map (fun s -> Json.String s) (string_size ~gen:printable (int_range 0 12));
      ]
  in
  let rec value depth =
    if depth = 0 then scalar
    else
      frequency
        [
          (3, scalar);
          (1, map (fun l -> Json.List l) (list_size (int_range 0 4) (value (depth - 1))));
          ( 1,
            map
              (fun kvs -> Json.Obj kvs)
              (list_size (int_range 0 4)
                 (pair (string_size ~gen:printable (int_range 0 6)) (value (depth - 1))))
          );
        ]
  in
  value 3

let prop_json_roundtrip =
  QCheck.Test.make ~name:"json round-trips" ~count:500
    (QCheck.make ~print:Json.to_string json_gen)
    (fun v ->
       match Json.of_string (Json.to_string v) with
       | Ok v' -> v = v'
       | Error e -> QCheck.Test.fail_reportf "reparse failed: %s" e)

(* ---------- Lru ---------- *)

let test_lru () =
  let c = Lru.create ~capacity:3 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Lru.add c "c" 3;
  (* Touch "a" so "b" is now least-recently-used. *)
  Alcotest.(check (option int)) "hit a" (Some 1) (Lru.find c "a");
  Lru.add c "d" 4;
  Alcotest.(check (option int)) "b evicted" None (Lru.find c "b");
  Alcotest.(check (option int)) "a kept" (Some 1) (Lru.find c "a");
  Alcotest.(check (option int)) "c kept" (Some 3) (Lru.find c "c");
  Alcotest.(check (option int)) "d kept" (Some 4) (Lru.find c "d");
  Alcotest.(check int) "length" 3 (Lru.length c);
  Alcotest.(check int) "evictions" 1 (Lru.evictions c);
  (* Replacement promotes rather than duplicating. *)
  Lru.add c "c" 33;
  Lru.add c "e" 5;
  Alcotest.(check (option int)) "c replaced" (Some 33) (Lru.find c "c");
  Alcotest.(check int) "still at capacity" 3 (Lru.length c);
  Lru.remove c "c";
  Alcotest.(check bool) "removed" false (Lru.mem c "c")

let prop_lru_capacity =
  QCheck.Test.make ~name:"lru never exceeds capacity, keeps most recent" ~count:200
    QCheck.(pair (int_range 1 8) (small_list (int_range 0 20)))
    (fun (cap, keys) ->
       let c = Lru.create ~capacity:cap in
       List.iter (fun k -> Lru.add c (string_of_int k) k) keys;
       if Lru.length c > cap then QCheck.Test.fail_reportf "over capacity";
       (* The most recently added key is always present. *)
       (match List.rev keys with
        | [] -> ()
        | last :: _ ->
          if not (Lru.mem c (string_of_int last)) then
            QCheck.Test.fail_reportf "most recent key evicted");
       true)

(* ---------- canonical rendering and fingerprints ---------- *)

let synthetic_spec ?(delta = 2) seed =
  {
    Synthetic.name = "serve-q";
    width = 24;
    height = 16;
    obstacle_cells = 10;
    lm_cluster_sizes = [ 2; 2 ];
    singleton_valves = 3;
    pin_count = 12;
    seed = Int64.of_int seed;
    delta;
  }

let test_fingerprint_canonical () =
  let p = Synthetic.generate_exn (synthetic_spec 7) in
  (* Same instance re-created with every list reversed. *)
  let open Pacor in
  let p' =
    Problem.create_exn ~name:p.Problem.name ~rules:p.Problem.rules ~grid:p.Problem.grid
      ~valves:(List.rev p.Problem.valves)
      ~lm_clusters:(List.rev p.Problem.lm_clusters)
      ~pins:(List.rev p.Problem.pins) ~delta:p.Problem.delta ()
  in
  Alcotest.(check string) "order-independent" (Problem_io.fingerprint p)
    (Problem_io.fingerprint p');
  Alcotest.(check string) "to_string canonical" (Problem_io.to_string p)
    (Problem_io.to_string p')

let prop_fingerprint_roundtrip =
  QCheck.Test.make ~name:"of_string (to_string p) preserves the fingerprint" ~count:30
    QCheck.(int_range 1 10_000)
    (fun seed ->
       match Synthetic.generate (synthetic_spec seed) with
       | Error _ -> true (* an unroutable spec is the generator's business *)
       | Ok p -> (
         let text = Pacor.Problem_io.to_string p in
         match Pacor.Problem_io.of_string text with
         | Error e -> QCheck.Test.fail_reportf "seed %d: reparse failed: %s" seed e
         | Ok p' ->
           let fp = Pacor.Problem_io.fingerprint p in
           let fp' = Pacor.Problem_io.fingerprint p' in
           if fp <> fp' then
             QCheck.Test.fail_reportf "seed %d: fingerprint drifted: %s vs %s" seed fp
               fp';
           true))

(* ---------- the monotonic clock ---------- *)

let test_clock_monotonic () =
  let prev = ref (Pacor_route.Clock.now_mono ()) in
  for _ = 1 to 10_000 do
    let t = Pacor_route.Clock.now_mono () in
    if t < !prev then Alcotest.failf "clock stepped back: %.9f after %.9f" t !prev;
    prev := t
  done

(* ---------- the daemon handler ---------- *)

let inst_text =
  "name serve-test\n\
   grid 20 12\n\
   delta 1\n\
   obstacle 15 2 15 2\n\
   valve 1 4 4 1010\n\
   valve 2 8 4 1010\n\
   valve 3 12 7 0110\n\
   pin 0 3\n\
   pin 0 5\n\
   pin 19 4\n\
   pin 19 8\n\
   pin 10 0\n"

let req fields = Json.to_string (Json.Obj fields)

let handle_ok server line =
  let out = Server.handle server line in
  match Json.of_string out.Server.line with
  | Error e -> Alcotest.failf "unparseable response %s: %s" out.Server.line e
  | Ok j -> (
    match Option.bind (Json.member "ok" j) Json.bool_opt with
    | Some true -> (out.Server.line, j)
    | _ -> Alcotest.failf "expected ok:true, got %s" out.Server.line)

let handle_err server line =
  let out = Server.handle server line in
  match Json.of_string out.Server.line with
  | Error e -> Alcotest.failf "unparseable response %s: %s" out.Server.line e
  | Ok j -> (
    match Option.bind (Json.member "ok" j) Json.bool_opt with
    | Some false ->
      Option.get
        (Option.bind
           (Option.bind (Json.member "error" j) (Json.member "class"))
           Json.string_opt)
    | _ -> Alcotest.failf "expected ok:false, got %s" out.Server.line)

let result_int j key =
  Option.get (Option.bind (Option.bind (Json.member "result" j) (Json.member key)) Json.int_opt)

let result_str j key =
  Option.get
    (Option.bind (Option.bind (Json.member "result" j) (Json.member key)) Json.string_opt)

let result_of line =
  (* The raw result substring: everything after the first "result": up to
     the closing brace — exactly what a shell client would cut out. *)
  let marker = "\"result\":" in
  let rec find i =
    if i + String.length marker > String.length line then
      Alcotest.failf "no result field in %s" line
    else if String.sub line i (String.length marker) = marker then
      String.sub line
        (i + String.length marker)
        (String.length line - i - String.length marker - 1)
    else find (i + 1)
  in
  find 0

let test_handler_trace () =
  let server = Server.create ~cache_capacity:4 () in
  (* ping *)
  let _, j = handle_ok server (req [ ("id", Json.Int 0); ("op", Json.String "ping") ]) in
  Alcotest.(check bool) "pong" true
    (Option.get
       (Option.bind (Option.bind (Json.member "result" j) (Json.member "pong"))
          Json.bool_opt));
  (* route, then the identical request again: a byte-identical cache hit *)
  let route_req =
    req
      [
        ("id", Json.Int 1);
        ("op", Json.String "route");
        ("problem", Json.String inst_text);
        ("session", Json.String "s");
      ]
  in
  let line1, j1 = handle_ok server route_req in
  let line2, j2 = handle_ok server route_req in
  Alcotest.(check bool) "first not cached" false
    (Option.get (Option.bind (Json.member "cached" j1) Json.bool_opt));
  Alcotest.(check bool) "second cached" true
    (Option.get (Option.bind (Json.member "cached" j2) Json.bool_opt));
  Alcotest.(check string) "cache hit byte-identical" (result_of line1) (result_of line2);
  let routed0 = result_int j1 "routed_valves" in
  let length0 = result_int j1 "total_length" in
  Alcotest.(check int) "all valves routed" 3 routed0;
  (* remove_obstacle: empty dirty set, byte-identical solution *)
  let _, jr =
    handle_ok server
      (req
         [
           ("id", Json.Int 2);
           ("op", Json.String "remove_obstacle");
           ("session", Json.String "s");
           ("x", Json.Int 15);
           ("y", Json.Int 2);
         ])
  in
  Alcotest.(check json_t) "empty dirty set" (Json.List [])
    (Option.get (Option.bind (Json.member "result" jr) (Json.member "dirty")));
  Alcotest.(check int) "length unchanged" length0 (result_int jr "total_length");
  Alcotest.(check int) "still routed" routed0 (result_int jr "routed_valves");
  (* move_valve re-routes only the owner cluster and stays valid *)
  let _, jm =
    handle_ok server
      (req
         [
           ("id", Json.Int 3);
           ("op", Json.String "move_valve");
           ("session", Json.String "s");
           ("valve", Json.Int 2);
           ("x", Json.Int 9);
           ("y", Json.Int 5);
         ])
  in
  Alcotest.(check string) "moved result valid" "true"
    (match Option.bind (Json.member "result" jm) (Json.member "valid") with
     | Some (Json.Bool b) -> string_of_bool b
     | _ -> "missing");
  Alcotest.(check int) "still fully routed" 3 (result_int jm "routed_valves");
  (* the mutated fingerprint matches an independent mutation *)
  (match Pacor.Problem_io.of_string inst_text with
   | Error e -> Alcotest.fail e
   | Ok p ->
     let p = Result.get_ok (Pacor.Problem.remove_obstacle p (Pacor_geom.Point.make 15 2)) in
     let p' = Result.get_ok (Pacor.Problem.move_valve p 2 (Pacor_geom.Point.make 9 5)) in
     Alcotest.(check string) "fingerprint tracks the edit"
       (Pacor.Problem_io.fingerprint p')
       (result_str jm "fingerprint"));
  (* errors: malformed line, unknown op, unknown session, illegal edit *)
  Alcotest.(check string) "malformed" "parse" (handle_err server "{nope");
  Alcotest.(check string) "unknown op" "parse"
    (handle_err server (req [ ("op", Json.String "frobnicate") ]));
  Alcotest.(check string) "unknown session" "validation"
    (handle_err server
       (req
          [
            ("op", Json.String "get"); ("session", Json.String "nonesuch");
          ]));
  Alcotest.(check string) "illegal edit" "validation"
    (handle_err server
       (req
          [
            ("op", Json.String "move_valve");
            ("session", Json.String "s");
            ("valve", Json.Int 99);
            ("x", Json.Int 1);
            ("y", Json.Int 1);
          ]));
  (* the session survived every error *)
  let _, jg =
    handle_ok server (req [ ("op", Json.String "get"); ("session", Json.String "s") ])
  in
  Alcotest.(check int) "session intact" 3 (result_int jg "routed_valves");
  (* stats and shutdown *)
  let _, js = handle_ok server (req [ ("op", Json.String "stats") ]) in
  Alcotest.(check int) "one session" 1 (result_int js "sessions");
  let out = Server.handle server (req [ ("op", Json.String "shutdown") ]) in
  Alcotest.(check bool) "shutdown stops" true out.Server.stop

let budget_inst =
  (* Distinct name => distinct fingerprint, so the cache cannot answer. *)
  String.concat "" [ "name starved\n"; String.concat "" (List.tl (String.split_on_char '\n' inst_text |> List.map (fun l -> l ^ "\n")) |> List.filter (fun l -> l <> "\n")) ]

let test_budget_classification () =
  let server = Server.create () in
  let limits = Json.Obj [ ("max_expansions", Json.Int 1) ] in
  (* Non-strict: degraded but ok, with the tripped limit named. *)
  let _, j =
    handle_ok server
      (req
         [
           ("id", Json.Int 1);
           ("op", Json.String "route");
           ("problem", Json.String budget_inst);
           ("limits", limits);
         ])
  in
  Alcotest.(check string) "budget reported" "expansions" (result_str j "budget_exhausted");
  (* Strict: the same request is an error of class budget. *)
  Alcotest.(check string) "strict is budget class" "budget"
    (handle_err server
       (req
          [
            ("id", Json.Int 2);
            ("op", Json.String "route");
            ("problem", Json.String budget_inst);
            ("limits", limits);
            ("strict", Json.Bool true);
          ]))

(* ---------- line reassembly under torn chunking ---------- *)

(* Requests whose response bytes are a pure function of daemon state — no
   wall-clock fields — so two fresh daemons fed the same lines must answer
   byte-identically. Unicode and escape-heavy ids make sure a chunk split
   can land inside a UTF-8 sequence or a JSON escape. *)
let deterministic_line_gen =
  let open QCheck.Gen in
  let spicy_id =
    oneofl
      [ Json.String "é😀torn"; Json.String "a\"b\\c\nd"; Json.Int 7;
        Json.String "plain"; Json.Null ]
  in
  oneof
    [
      map (fun id -> req [ ("id", id); ("op", Json.String "ping") ]) spicy_id;
      map
        (fun id ->
           req
             [ ("id", id); ("op", Json.String "get");
               ("session", Json.String "nonesuch") ])
        spicy_id;
      map (fun id -> req [ ("id", id); ("op", Json.String "frobnicate") ]) spicy_id;
      (* line noise: must cost exactly one parse error *)
      oneofl [ "{nope"; "[1,2"; "!!!garbage!!!"; "\"é😀" ];
    ]

let prop_torn_chunking =
  QCheck.Test.make
    ~name:"trace split at random byte boundaries answers byte-identically"
    ~count:100
    (QCheck.make
       ~print:(fun (lines, sizes) ->
         String.concat "\n" lines ^ Printf.sprintf " / chunks %s"
           (String.concat "," (List.map string_of_int sizes)))
       QCheck.Gen.(
         pair
           (list_size (int_range 1 12) deterministic_line_gen)
           (list_size (int_range 1 64) (int_range 1 5))))
    (fun (lines, sizes) ->
       let whole = Server.create () in
       let chunked = Server.create () in
       let expected =
         List.map (fun l -> (Server.handle whole l).Server.line) lines
       in
       (* The same trace as one byte stream, cut at arbitrary boundaries —
          including mid-UTF-8 and mid-escape — through the daemon's own
          line reassembly. *)
       let stream = String.concat "" (List.map (fun l -> l ^ "\n") lines) in
       let lbuf = Linebuf.create () in
       let got = ref [] in
       let pos = ref 0 in
       let cycle = Array.of_list sizes in
       let ci = ref 0 in
       while !pos < String.length stream do
         let n = min cycle.(!ci mod Array.length cycle) (String.length stream - !pos) in
         incr ci;
         List.iter
           (function
             | Linebuf.Line l ->
               got := (Server.handle chunked l).Server.line :: !got
             | Linebuf.Overflow -> QCheck.Test.fail_reportf "unexpected overflow")
           (Linebuf.feed_string lbuf (String.sub stream !pos n));
         pos := !pos + n
       done;
       let got = List.rev !got in
       if List.length got <> List.length expected then
         QCheck.Test.fail_reportf "reassembled %d lines, expected %d"
           (List.length got) (List.length expected);
       List.iter2
         (fun e g ->
            if e <> g then
              QCheck.Test.fail_reportf "response drifted:\n  whole:   %s\n  chunked: %s" e g)
         expected got;
       true)

let test_linebuf_oversized () =
  let lb = Linebuf.create ~max_line:32 () in
  (* A line that crosses the cap fires exactly one Overflow, at the moment
     of crossing, and the rest of it is discarded silently. *)
  let events = Linebuf.feed_string lb (String.make 100 'x') in
  Alcotest.(check int) "one overflow" 1
    (List.length (List.filter (fun e -> e = Linebuf.Overflow) events));
  Alcotest.(check int) "nothing buffered while discarding" 0 (Linebuf.pending lb);
  (* More of the same oversized line: no second event. *)
  Alcotest.(check int) "still one overflow" 0
    (List.length (Linebuf.feed_string lb (String.make 50 'y')));
  (* The newline ends discard mode; the next line is delivered intact. *)
  let events = Linebuf.feed_string lb "\nhello\n" in
  Alcotest.(check bool) "recovers after newline" true
    (events = [ Linebuf.Line "hello" ]);
  (* An exactly-at-cap line still fits. *)
  let line = String.make 32 'z' in
  Alcotest.(check bool) "cap-sized line fits" true
    (Linebuf.feed_string lb (line ^ "\n") = [ Linebuf.Line line ])

let test_linebuf_garbage_flood () =
  let cap = 128 in
  let lb = Linebuf.create ~max_line:cap () in
  let overflows = ref 0 in
  (* A megabyte of newline-free garbage in ragged chunks: pending memory
     must never pass the cap and the whole flood costs one Overflow. *)
  for i = 0 to 4095 do
    let chunk = String.make (17 + (i mod 13)) (Char.chr (33 + (i mod 90))) in
    List.iter
      (function
        | Linebuf.Overflow -> incr overflows
        | Linebuf.Line _ -> Alcotest.fail "no newline was ever sent")
      (Linebuf.feed_string lb chunk);
    if Linebuf.pending lb > cap then Alcotest.fail "pending exceeded the cap"
  done;
  Alcotest.(check int) "one overflow for the whole flood" 1 !overflows;
  Alcotest.(check bool) "high-water bounded" true (Linebuf.high_water lb <= cap)

(* ---------- the session journal ---------- *)

let with_temp_journal f =
  let path = Filename.temp_file "pacor-test" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let journal_exn path =
  match Journal.open_ ~path with
  | Ok j -> j
  | Error e -> Alcotest.failf "journal open: %s" e

let live_t = Alcotest.(list (triple string int string))

let test_journal_replay () =
  with_temp_journal (fun path ->
      let j = journal_exn path in
      Journal.record_bind j ~session:"a" ~revision:0 ~problem_text:inst_text;
      Journal.record_bind j ~session:"b" ~revision:0 ~problem_text:inst_text;
      Journal.record_bind j ~session:"a" ~revision:1 ~problem_text:(inst_text ^ "pin 1 0\n");
      Journal.record_close j ~session:"b";
      Alcotest.check live_t "last record per session wins"
        [ ("a", 1, inst_text ^ "pin 1 0\n") ]
        (Journal.live j);
      Journal.close j;
      (* A fresh open replays the same live set from disk. *)
      let j2 = journal_exn path in
      Alcotest.check live_t "replayed from disk"
        [ ("a", 1, inst_text ^ "pin 1 0\n") ]
        (Journal.live j2);
      Journal.close j2)

let test_journal_torn_tail () =
  with_temp_journal (fun path ->
      let j = journal_exn path in
      Journal.record_bind j ~session:"a" ~revision:0 ~problem_text:inst_text;
      Journal.record_bind j ~session:"b" ~revision:2 ~problem_text:inst_text;
      Journal.close j;
      (* Simulate a crash mid-append: a torn, newline-less final record. *)
      let oc = open_out_gen [ Open_append ] 0o600 path in
      output_string oc "{\"v\":1,\"op\":\"bind\",\"session\":\"c\",\"rev";
      close_out oc;
      let j2 = journal_exn path in
      Alcotest.check live_t "torn tail dropped, prefix intact"
        [ ("a", 0, inst_text); ("b", 2, inst_text) ]
        (Journal.live j2);
      (* The journal stays appendable after the torn tail. *)
      Journal.record_bind j2 ~session:"c" ~revision:0 ~problem_text:inst_text;
      Journal.close j2;
      let j3 = journal_exn path in
      Alcotest.(check int) "new record survives" 3 (List.length (Journal.live j3));
      Journal.close j3)

let test_journal_compaction () =
  with_temp_journal (fun path ->
      let j = journal_exn path in
      (* One live session rebound many times: history >> live set. *)
      for r = 0 to 99 do
        Journal.record_bind j ~session:"s" ~revision:r ~problem_text:inst_text
      done;
      let before = (Unix.stat path).Unix.st_size in
      Journal.maybe_compact j;
      let after = (Unix.stat path).Unix.st_size in
      Alcotest.(check bool) "compaction ran" true (Journal.compactions j >= 1);
      Alcotest.(check bool) "file shrank" true (after < before);
      Alcotest.check live_t "live set preserved" [ ("s", 99, inst_text) ]
        (Journal.live j);
      Journal.close j;
      let j2 = journal_exn path in
      Alcotest.check live_t "compacted file replays" [ ("s", 99, inst_text) ]
        (Journal.live j2);
      Journal.close j2)

let test_recover () =
  with_temp_journal (fun path ->
      (* Daemon A journals a session through a delta... *)
      let ja = journal_exn path in
      let a = Server.create ~journal:ja () in
      let _ =
        handle_ok a
          (req
             [ ("id", Json.Int 1); ("op", Json.String "route");
               ("problem", Json.String inst_text); ("session", Json.String "s") ])
      in
      let _, jd =
        handle_ok a
          (req
             [ ("id", Json.Int 2); ("op", Json.String "set_delta");
               ("session", Json.String "s"); ("delta", Json.Int 2) ])
      in
      let fp_after_delta = result_str jd "fingerprint" in
      Journal.close ja;
      (* ...daemon B (a restart after kill -9) recovers it from the path. *)
      let jb = journal_exn path in
      let b = Server.create ~journal:jb () in
      Alcotest.(check int) "one session recovered" 1 (Server.recover b);
      let _, jg =
        handle_ok b (req [ ("op", Json.String "get"); ("session", Json.String "s") ])
      in
      Alcotest.(check string) "recovered at the delta'd problem" fp_after_delta
        (result_str jg "fingerprint");
      Alcotest.(check int) "recovered revision" 1 (result_int jg "revision");
      Journal.close jb)

(* ---------- the retry replay cache ---------- *)

let test_replay_cache () =
  let server = Server.create () in
  let _ =
    handle_ok server
      (req
         [ ("id", Json.Int 1); ("op", Json.String "route");
           ("problem", Json.String inst_text); ("session", Json.String "s") ])
  in
  let delta_fields d =
    [ ("id", Json.Int 2); ("op", Json.String "set_delta");
      ("session", Json.String "s"); ("delta", Json.Int d) ]
  in
  let first, _ = handle_ok server (req (delta_fields 2)) in
  (* The client lost the response and re-sends with retry:true: the daemon
     replays the stored bytes instead of executing the delta twice. *)
  let replayed, _ =
    handle_ok server (req (delta_fields 2 @ [ ("retry", Json.Bool true) ]))
  in
  Alcotest.(check string) "replay is byte-identical" first replayed;
  let _, jg =
    handle_ok server (req [ ("op", Json.String "get"); ("session", Json.String "s") ])
  in
  Alcotest.(check int) "delta applied exactly once" 1 (result_int jg "revision");
  (* Without the retry flag the same id executes normally. *)
  let _ = handle_ok server (req (delta_fields 1)) in
  let _, jg2 =
    handle_ok server (req [ ("op", Json.String "get"); ("session", Json.String "s") ])
  in
  Alcotest.(check int) "plain re-send executes" 2 (result_int jg2 "revision");
  (* A retry for an id the daemon never saw executes normally too. *)
  let _, jp =
    handle_ok server
      (req [ ("id", Json.Int 99); ("op", Json.String "ping"); ("retry", Json.Bool true) ])
  in
  Alcotest.(check bool) "unknown retry id executes" true
    (Option.get
       (Option.bind (Option.bind (Json.member "result" jp) (Json.member "pong"))
          Json.bool_opt))

(* ---------- the serve loop under overload (live socket) ---------- *)

let read_line_ic ic = try Some (input_line ic) with End_of_file -> None

let error_class_of line =
  match Json.of_string line with
  | Ok j ->
    Option.value ~default:"?"
      (Option.bind
         (Option.bind (Json.member "error" j) (Json.member "class"))
         Json.string_opt)
  | Error _ -> "?"

let test_serve_loop_overload () =
  let listen_fd, port = Server.listen ~port:0 in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    (* The daemon, capped tight: 2 connections, 256-byte lines. *)
    let t = Server.create () in
    (try Server.serve_loop ~stdio:false ~listen_fd ~max_conns:2 ~max_line:256 t
     with _ -> ());
    Stdlib.exit 0
  | child ->
    Unix.close listen_fd;
    let connect () =
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)
    in
    let _, ic_a, oc_a = connect () in
    (* Oversized line: one parse error, and the connection stays usable. *)
    output_string oc_a (String.make 4096 'x');
    output_string oc_a "\n";
    flush oc_a;
    (match read_line_ic ic_a with
     | Some l -> Alcotest.(check string) "oversized is parse-class" "parse" (error_class_of l)
     | None -> Alcotest.fail "no response to the oversized line");
    output_string oc_a "{\"id\":1,\"op\":\"ping\"}\n";
    flush oc_a;
    (match read_line_ic ic_a with
     | Some l ->
       Alcotest.(check bool) "connection survived the flood" true
         (match Json.of_string l with
          | Ok j -> Option.bind (Json.member "ok" j) Json.bool_opt = Some true
          | Error _ -> false)
     | None -> Alcotest.fail "no response after the oversized line");
    (* Fill the connection cap, then one more: a single busy line, then EOF. *)
    let _, ic_b, oc_b = connect () in
    output_string oc_b "{\"id\":2,\"op\":\"ping\"}\n";
    flush oc_b;
    ignore (read_line_ic ic_b);
    let _, ic_c, _ = connect () in
    (match read_line_ic ic_c with
     | Some l -> Alcotest.(check string) "third connection is busy-class" "busy" (error_class_of l)
     | None -> Alcotest.fail "no busy line on the excess connection");
    Alcotest.(check (option string)) "busy connection is closed" None
      (read_line_ic ic_c);
    (* Shut the daemon down and reap it. *)
    output_string oc_a "{\"op\":\"shutdown\"}\n";
    flush oc_a;
    (match Unix.waitpid [] child with
     | _, Unix.WEXITED 0 -> ()
     | _, _ -> Alcotest.fail "daemon exited abnormally")

(* ---------- delta equivalence against from-scratch routing ---------- *)

let free_cells (p : Pacor.Problem.t) =
  let grid = p.Pacor.Problem.grid in
  let taken =
    List.fold_left
      (fun acc (v : Pacor_valve.Valve.t) -> Pacor_geom.Point.Set.add v.position acc)
      (Pacor_geom.Point.Set.of_list p.Pacor.Problem.pins)
      p.Pacor.Problem.valves
  in
  let acc = ref [] in
  for y = 1 to Pacor_grid.Routing_grid.height grid - 2 do
    for x = 1 to Pacor_grid.Routing_grid.width grid - 2 do
      let pt = Pacor_geom.Point.make x y in
      if
        Pacor_grid.Routing_grid.free grid pt && not (Pacor_geom.Point.Set.mem pt taken)
      then acc := pt :: !acc
    done
  done;
  List.rev !acc

let blocked_cells (p : Pacor.Problem.t) =
  let acc = ref [] in
  Pacor_grid.Obstacle_map.iter_blocked
    (Pacor_grid.Routing_grid.obstacles p.Pacor.Problem.grid)
    (fun pt -> acc := pt :: !acc);
  List.sort Pacor_geom.Point.compare !acc

let prop_delta_never_worse =
  QCheck.Test.make
    ~name:"delta result never worse than scratch; byte-identical on empty dirty set"
    ~count:25
    QCheck.(pair (int_range 1 10_000) (int_range 0 3))
    (fun (seed, kind) ->
       match Synthetic.generate (synthetic_spec seed) with
       | Error _ -> true
       | Ok p -> (
         let server = Server.create () in
         let text = Pacor.Problem_io.to_string p in
         let route_line, route_j =
           handle_ok server
             (req
                [
                  ("op", Json.String "route");
                  ("problem", Json.String text);
                  ("session", Json.String "q");
                ])
         in
         ignore route_line;
         let length0 = result_int route_j "total_length" in
         let pick l k = List.nth l (k mod List.length l) in
         (* One random edit, mirrored locally so scratch has the same
            mutated problem. *)
         let delta_req, mutated =
           match kind with
           | 0 ->
             let v = pick p.Pacor.Problem.valves (seed mod 97) in
             let dest = pick (free_cells p) (seed * 7) in
             ( req
                 [
                   ("op", Json.String "move_valve");
                   ("session", Json.String "q");
                   ("valve", Json.Int v.Pacor_valve.Valve.id);
                   ("x", Json.Int dest.Pacor_geom.Point.x);
                   ("y", Json.Int dest.Pacor_geom.Point.y);
                 ],
               Pacor.Problem.move_valve p v.Pacor_valve.Valve.id dest )
           | 1 ->
             let dest = pick (free_cells p) (seed * 13) in
             ( req
                 [
                   ("op", Json.String "add_obstacle");
                   ("session", Json.String "q");
                   ("x", Json.Int dest.Pacor_geom.Point.x);
                   ("y", Json.Int dest.Pacor_geom.Point.y);
                 ],
               Pacor.Problem.add_obstacle p dest )
           | 2 -> (
             match blocked_cells p with
             | [] ->
               ( req [ ("op", Json.String "ping") ],
                 Error "no obstacle to remove" )
             | obs ->
               let dest = pick obs (seed * 3) in
               ( req
                   [
                     ("op", Json.String "remove_obstacle");
                     ("session", Json.String "q");
                     ("x", Json.Int dest.Pacor_geom.Point.x);
                     ("y", Json.Int dest.Pacor_geom.Point.y);
                   ],
                 Pacor.Problem.remove_obstacle p dest ))
           | _ ->
             let d = if seed mod 2 = 0 then p.Pacor.Problem.delta + 1 else p.Pacor.Problem.delta - 1 in
             ( req
                 [
                   ("op", Json.String "set_delta");
                   ("session", Json.String "q");
                   ("delta", Json.Int d);
                 ],
               Pacor.Problem.with_delta p d )
         in
         match mutated with
         | Error _ ->
           (* The daemon must refuse what the library refuses (or answer
              the ping used as a skip marker). *)
           let out = Server.handle server delta_req in
           (match Json.of_string out.Server.line with
            | Ok j -> (
              match Option.bind (Json.member "ok" j) Json.bool_opt with
              | Some _ -> true
              | None -> QCheck.Test.fail_reportf "no ok field")
            | Error e -> QCheck.Test.fail_reportf "unparseable: %s" e)
         | Ok p' -> (
           let out = Server.handle server delta_req in
           let j =
             match Json.of_string out.Server.line with
             | Ok j -> j
             | Error e -> QCheck.Test.fail_reportf "unparseable: %s" e
           in
           match Option.bind (Json.member "ok" j) Json.bool_opt with
           | Some false ->
             (* The library accepted the edit, the daemon refused: wrong. *)
             QCheck.Test.fail_reportf "seed %d kind %d: daemon refused a legal edit: %s"
               seed kind out.Server.line
           | None -> QCheck.Test.fail_reportf "no ok field"
           | Some true -> (
             let routed_served = result_int j "routed_valves" in
             let length_served = result_int j "total_length" in
             let dirty =
               Option.get
                 (Option.bind
                    (Option.bind (Json.member "result" j) (Json.member "dirty"))
                    Json.list_opt)
             in
             let incremental =
               Option.get
                 (Option.bind
                    (Option.bind (Json.member "result" j) (Json.member "incremental"))
                    Json.bool_opt)
             in
             Alcotest.(check string)
               "served fingerprint is the mutated problem's"
               (Pacor.Problem_io.fingerprint p')
               (result_str j "fingerprint");
             if dirty = [] && length_served <> length0 then
               QCheck.Test.fail_reportf
                 "seed %d kind %d: empty dirty set but length %d -> %d" seed kind
                 length0 length_served;
             match Pacor.Engine.run p' with
             | Error _ -> true (* scratch failed structurally; daemon answered *)
             | Ok scratch ->
               let routed_scratch = Protocol.routed_valves scratch in
               let length_scratch =
                 (Pacor.Solution.stats scratch).Pacor.Solution.total_length
               in
               if routed_served < routed_scratch then
                 QCheck.Test.fail_reportf
                   "seed %d kind %d: served %d routed valves, scratch %d" seed kind
                   routed_served routed_scratch;
               (* A non-incremental answer IS the scratch answer. *)
               if (not incremental) && length_served <> length_scratch then
                 QCheck.Test.fail_reportf
                   "seed %d kind %d: fallback length %d, scratch %d" seed kind
                   length_served length_scratch;
               true))))

let () =
  Alcotest.run "serve"
    [
      ( "json",
        [
          Alcotest.test_case "parse and emit" `Quick test_json_basics;
          QCheck_alcotest.to_alcotest prop_json_roundtrip;
        ] );
      ( "lru",
        [
          Alcotest.test_case "eviction and promotion" `Quick test_lru;
          QCheck_alcotest.to_alcotest prop_lru_capacity;
        ] );
      ( "fingerprint",
        [
          Alcotest.test_case "canonical rendering" `Quick test_fingerprint_canonical;
          QCheck_alcotest.to_alcotest prop_fingerprint_roundtrip;
        ] );
      ("clock", [ Alcotest.test_case "monotonic" `Quick test_clock_monotonic ]);
      ( "daemon",
        [
          Alcotest.test_case "request trace" `Quick test_handler_trace;
          Alcotest.test_case "budget classification" `Quick test_budget_classification;
          Alcotest.test_case "retry replay cache" `Quick test_replay_cache;
        ] );
      ( "linebuf",
        [
          QCheck_alcotest.to_alcotest prop_torn_chunking;
          Alcotest.test_case "oversized line" `Quick test_linebuf_oversized;
          Alcotest.test_case "garbage flood stays bounded" `Quick
            test_linebuf_garbage_flood;
        ] );
      ( "journal",
        [
          Alcotest.test_case "replay" `Quick test_journal_replay;
          Alcotest.test_case "torn tail" `Quick test_journal_torn_tail;
          Alcotest.test_case "compaction" `Quick test_journal_compaction;
          Alcotest.test_case "server recovery" `Quick test_recover;
        ] );
      ( "overload",
        [ Alcotest.test_case "serve loop under fire" `Quick test_serve_loop_overload ] );
      ("deltas", [ QCheck_alcotest.to_alcotest prop_delta_never_worse ]);
    ]
