open Pacor_valve
open Pacor_designs

(* ---------- RNG ---------- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42L and b = Rng.create ~seed:42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_different_seeds () =
  let a = Rng.create ~seed:1L and b = Rng.create ~seed:2L in
  Alcotest.(check bool) "different streams" false (Rng.next a = Rng.next b)

let test_rng_int_bounds () =
  let r = Rng.create ~seed:7L in
  for _ = 1 to 1000 do
    let v = Rng.int r ~bound:10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10)
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Rng.int: non-positive bound")
    (fun () -> ignore (Rng.int r ~bound:0))

let test_rng_pick_shuffle () =
  let r = Rng.create ~seed:3L in
  let xs = [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check bool) "pick member" true (List.mem (Rng.pick r xs) xs);
  let sh = Rng.shuffle r xs in
  Alcotest.(check (list int)) "shuffle is a permutation" xs (List.sort Int.compare sh)

let test_rng_pick_edge_cases () =
  let r = Rng.create ~seed:5L in
  (* An empty population is a caller bug and must be named, not surfaced
     as the old [Failure "nth"]. *)
  Alcotest.check_raises "empty list" (Invalid_argument "Rng.pick: empty list")
    (fun () -> ignore (Rng.pick r []));
  Alcotest.check_raises "empty array"
    (Invalid_argument "Rng.pick_array: empty array")
    (fun () -> ignore (Rng.pick_array r [||]));
  Alcotest.(check int) "singleton pick" 9 (Rng.pick r [ 9 ]);
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "array member" true
      (Array.exists (Int.equal (Rng.pick_array r arr)) arr)
  done;
  (* pick over a list and pick_array over the same population consume the
     stream identically for multi-element populations. *)
  let a = Rng.create ~seed:21L and b = Rng.create ~seed:21L in
  for _ = 1 to 50 do
    Alcotest.(check int) "list/array draw agreement"
      (Rng.pick a [ 1; 2; 3; 4 ])
      (Rng.pick_array b [| 1; 2; 3; 4 |])
  done

(* ---------- Synthetic ---------- *)

let small_spec =
  {
    Synthetic.name = "t1";
    width = 24;
    height = 24;
    obstacle_cells = 12;
    lm_cluster_sizes = [ 2; 3 ];
    singleton_valves = 2;
    pin_count = 20;
    seed = 99L;
    delta = 1;
  }

let test_synthetic_matches_spec () =
  match Synthetic.generate small_spec with
  | Error e -> Alcotest.failf "generate failed: %s" e
  | Ok p ->
    Alcotest.(check int) "valves" 7 (Pacor.Problem.valve_count p);
    Alcotest.(check int) "pins" 20 (Pacor.Problem.pin_count p);
    Alcotest.(check int) "clusters" 2 (List.length p.Pacor.Problem.lm_clusters);
    Alcotest.(check bool) "obstacles near target" true
      (abs (Pacor.Problem.obstacle_count p - 12) <= 4);
    Alcotest.(check int) "delta" 1 p.Pacor.Problem.delta

let test_synthetic_deterministic () =
  let gen () =
    match Synthetic.generate small_spec with
    | Ok p -> Pacor.Problem_io.to_string p
    | Error e -> Alcotest.failf "generate failed: %s" e
  in
  Alcotest.(check string) "bit-identical regeneration" (gen ()) (gen ())

let test_synthetic_cluster_structure () =
  match Synthetic.generate small_spec with
  | Error e -> Alcotest.failf "generate failed: %s" e
  | Ok p ->
    (* Clustering with these sequences must reproduce exactly the LM
       clusters plus singletons. *)
    (match
       Pacor_valve.Clustering.cluster ~seeds:p.Pacor.Problem.lm_clusters
         p.Pacor.Problem.valves
     with
     | Error e -> Alcotest.failf "clustering failed: %s" e
     | Ok part ->
       let multi =
         List.filter (fun c -> Cluster.size c >= 2) part.Clustering.clusters
       in
       Alcotest.(check int) "exactly the seeded multi clusters" 2 (List.length multi);
       Alcotest.(check int) "total clusters" 4 (List.length part.Clustering.clusters))

let test_synthetic_rejects_bad_specs () =
  Alcotest.(check bool) "size-1 LM cluster" true
    (Result.is_error (Synthetic.generate { small_spec with lm_cluster_sizes = [ 1 ] }));
  Alcotest.(check bool) "tiny grid" true
    (Result.is_error (Synthetic.generate { small_spec with width = 4 }));
  Alcotest.(check bool) "too many pins" true
    (Result.is_error (Synthetic.generate { small_spec with pin_count = 1000 }))

(* ---------- Table 1 ---------- *)

let test_table1_rows () =
  Alcotest.(check int) "seven designs" 7 (List.length Table1.rows);
  let r = List.find (fun r -> r.Table1.design = "S3" ) Table1.rows in
  Alcotest.(check int) "S3 valves" 15 r.Table1.valves;
  Alcotest.(check int) "S3 pins" 93 r.Table1.control_pins;
  Alcotest.(check int) "S3 obstacles" 0 r.Table1.obstacles

let test_table1_specs_consistent () =
  List.iter
    (fun (r : Table1.row) ->
       match Table1.spec_of r.design with
       | None -> Alcotest.failf "missing spec for %s" r.design
       | Some spec ->
         Alcotest.(check int) (r.design ^ " width") r.width spec.Synthetic.width;
         Alcotest.(check int) (r.design ^ " pins") r.control_pins spec.Synthetic.pin_count;
         let total_valves =
           List.fold_left ( + ) 0 spec.Synthetic.lm_cluster_sizes
           + spec.Synthetic.singleton_valves
         in
         Alcotest.(check int) (r.design ^ " valve total") r.valves total_valves;
         Alcotest.(check int)
           (r.design ^ " multi clusters")
           r.multi_clusters
           (List.length spec.Synthetic.lm_cluster_sizes))
    Table1.rows

let test_table1_small_designs_generate () =
  List.iter
    (fun name ->
       match Table1.load name with
       | Error e -> Alcotest.failf "%s failed: %s" name e
       | Ok p ->
         let row = List.find (fun r -> r.Table1.design = name) Table1.rows in
         Alcotest.(check int) (name ^ " valves") row.Table1.valves
           (Pacor.Problem.valve_count p);
         Alcotest.(check int) (name ^ " pins") row.Table1.control_pins
           (Pacor.Problem.pin_count p))
    Table1.small_names

let test_table1_unknown () =
  Alcotest.(check bool) "unknown design" true (Result.is_error (Table1.load "S99"))

(* ---------- End-to-end on the small designs ---------- *)

let test_s1_s2_route_fully () =
  List.iter
    (fun name ->
       let p =
         match Table1.load name with
         | Ok p -> p
         | Error e -> Alcotest.failf "%s: %s" name e
       in
       match Pacor.Engine.run p with
       | Error e -> Alcotest.failf "%s engine: %s" name e.Pacor.Engine.message
       | Ok sol ->
         let stats = Pacor.Solution.stats sol in
         Alcotest.(check (float 1e-9)) (name ^ " completion") 1.0 stats.completion;
         (match Pacor.Solution.validate sol with
          | Ok () -> ()
          | Error es -> Alcotest.failf "%s invalid: %s" name (String.concat "; " es)))
    [ "S1"; "S2" ]


(* ---------- Scaling / sweep extension studies ---------- *)

let test_scaling_family_well_formed () =
  let specs = Scaling.family ~steps:4 () in
  Alcotest.(check int) "four steps" 4 (List.length specs);
  let rec increasing = function
    | (a : Synthetic.spec) :: (b : Synthetic.spec) :: rest ->
      a.width * a.height < b.width * b.height && increasing (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "areas grow" true (increasing specs)

let test_scaling_measures () =
  match Scaling.measure (Scaling.family ~steps:2 ()) with
  | Error e -> Alcotest.failf "scaling failed: %s" e
  | Ok samples ->
    Alcotest.(check int) "two samples" 2 (List.length samples);
    List.iter
      (fun (s : Scaling.sample) ->
         Alcotest.(check (float 1e-9)) (s.label ^ " completes") 1.0 s.completion;
         Alcotest.(check bool) "has stage timings" true (s.stage_seconds <> []))
      samples

let test_harness_measures_s1 () =
  match Harness.measure_design "S1" with
  | Error e -> Alcotest.failf "harness failed: %s" e
  | Ok row ->
    Alcotest.(check string) "design name" "S1" row.Pacor.Report.design;
    Alcotest.(check int) "clusters" 2 row.Pacor.Report.clusters

let () =
  Alcotest.run "designs"
    [ ( "rng",
        [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_different_seeds;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "pick/shuffle" `Quick test_rng_pick_shuffle;
          Alcotest.test_case "pick edge cases" `Quick test_rng_pick_edge_cases ] );
      ( "synthetic",
        [ Alcotest.test_case "matches spec" `Quick test_synthetic_matches_spec;
          Alcotest.test_case "deterministic" `Quick test_synthetic_deterministic;
          Alcotest.test_case "cluster structure" `Quick test_synthetic_cluster_structure;
          Alcotest.test_case "rejects bad specs" `Quick test_synthetic_rejects_bad_specs ] );
      ( "table1",
        [ Alcotest.test_case "rows" `Quick test_table1_rows;
          Alcotest.test_case "specs consistent" `Quick test_table1_specs_consistent;
          Alcotest.test_case "small designs generate" `Quick
            test_table1_small_designs_generate;
          Alcotest.test_case "unknown design" `Quick test_table1_unknown ] );
      ( "extensions",
        [ Alcotest.test_case "scaling family" `Quick test_scaling_family_well_formed;
          Alcotest.test_case "scaling measures" `Slow test_scaling_measures;
          Alcotest.test_case "harness on S1" `Quick test_harness_measures_s1 ] );
      ( "end_to_end",
        [ Alcotest.test_case "S1 and S2 route fully" `Slow test_s1_s2_route_fully ] ) ]
