(* Regression corpus: committed instance files with frozen expectations.
   These exercise the text format end to end and pin the flow's behaviour
   on four characteristic chip styles (dense clusters, pairs only, heavy
   obstacles, large clusters with delta = 2). *)

let corpus_dir =
  (* Tests run from the build sandbox; the corpus is reached relative to
     the project root recorded by dune. *)
  match Sys.getenv_opt "DUNE_SOURCEROOT" with
  | Some root -> Filename.concat root "corpus"
  | None -> Filename.concat (Sys.getcwd ()) "../../../corpus"

let load name =
  let path = Filename.concat corpus_dir (name ^ ".chip") in
  match Pacor.Problem_io.load ~path with
  | Ok p -> p
  | Error e -> Alcotest.failf "cannot load %s: %s" path e

let route problem =
  match Pacor.Engine.run problem with
  | Ok sol -> sol
  | Error e -> Alcotest.failf "engine failed: %s" e.message

let check_routes name ~valves ~lm_clusters =
  let problem = load name in
  Alcotest.(check int) "valves" valves (Pacor.Problem.valve_count problem);
  Alcotest.(check int) "lm clusters" lm_clusters
    (List.length problem.Pacor.Problem.lm_clusters);
  let sol = route problem in
  let stats = Pacor.Solution.stats sol in
  Alcotest.(check (float 1e-9)) "completion" 1.0 stats.completion;
  (match Pacor.Solution.validate sol with
   | Ok () -> ()
   | Error es -> Alcotest.failf "invalid: %s" (String.concat "; " es));
  stats

let test_dense () =
  let stats = check_routes "corpus-dense" ~valves:16 ~lm_clusters:4 in
  Alcotest.(check int) "all clusters counted" 4 stats.clusters

let test_pairs () =
  let stats = check_routes "corpus-pairs" ~valves:12 ~lm_clusters:5 in
  (* Pairs with delta = 1 always match. *)
  Alcotest.(check int) "all pairs matched" 5 stats.matched_clusters

let test_obstacles () =
  ignore (check_routes "corpus-obstacles" ~valves:10 ~lm_clusters:2)

let test_bigcluster () =
  let problem = load "corpus-bigcluster" in
  Alcotest.(check int) "delta preserved" 2 problem.Pacor.Problem.delta;
  ignore (check_routes "corpus-bigcluster" ~valves:14 ~lm_clusters:2)

let test_roundtrip_stability () =
  (* Re-serialising a corpus file is the identity. *)
  List.iter
    (fun name ->
       let problem = load name in
       let text = Pacor.Problem_io.to_string problem in
       match Pacor.Problem_io.of_string text with
       | Ok again ->
         Alcotest.(check string) (name ^ " fixpoint") text
           (Pacor.Problem_io.to_string again)
       | Error e -> Alcotest.failf "%s reparse: %s" name e)
    [ "corpus-dense"; "corpus-pairs"; "corpus-obstacles"; "corpus-bigcluster" ]

let load_degenerate name =
  let path =
    Filename.concat (Filename.concat corpus_dir "degenerate") (name ^ ".chip")
  in
  match Pacor.Problem_io.load ~path with
  | Ok p -> p
  | Error e -> Alcotest.failf "cannot load %s: %s" path e

let test_empty_clusters () =
  (* Zero LM clusters is a valid (if degenerate) instance: the LM stage
     has nothing to do but the flow still routes every valve to a pin. *)
  let problem = load_degenerate "corpus-empty-clusters" in
  Alcotest.(check int) "no lm clusters" 0
    (List.length problem.Pacor.Problem.lm_clusters);
  let sol = route problem in
  Alcotest.(check (float 1e-9)) "completion" 1.0
    (Pacor.Solution.stats sol).completion;
  (match Pacor.Solution.validate sol with
   | Ok () -> ()
   | Error es -> Alcotest.failf "invalid: %s" (String.concat "; " es))

let test_infeasible () =
  (* A walled-in valve has no escape path. The engine must degrade to a
     diagnosable partial solution — Ok with a validation failure naming
     the pinless cluster — and must not raise or return a hard error. *)
  let problem = load_degenerate "corpus-infeasible" in
  match Pacor.Engine.run problem with
  | Error e ->
    Alcotest.failf "engine should degrade, not fail hard: %s/%s" e.stage
      e.message
  | Ok sol ->
    let stats = Pacor.Solution.stats sol in
    Alcotest.(check bool) "incomplete" true (stats.completion < 1.0);
    (match Pacor.Solution.validate sol with
     | Ok () -> Alcotest.fail "walled-in valve should fail validation"
     | Error es ->
       let contains hay needle =
         let nh = String.length hay and nn = String.length needle in
         let rec go i =
           i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
         in
         go 0
       in
       let mentions_pin =
         List.exists (fun e -> contains e "no control pin") es
       in
       Alcotest.(check bool) "diagnoses missing pin" true mentions_pin)

let test_variants_on_corpus () =
  (* Every flow variant completes and validates on every corpus file. *)
  List.iter
    (fun name ->
       let problem = load name in
       List.iter
         (fun variant ->
            match Pacor.Engine.run ~config:(Pacor.Config.make ~variant ()) problem with
            | Error e -> Alcotest.failf "%s/%s: %s" name e.stage e.message
            | Ok sol ->
              Alcotest.(check (float 1e-9))
                (name ^ "/" ^ Pacor.Config.variant_name variant)
                1.0
                (Pacor.Solution.stats sol).completion;
              (match Pacor.Solution.validate sol with
               | Ok () -> ()
               | Error es ->
                 Alcotest.failf "%s/%s invalid: %s" name
                   (Pacor.Config.variant_name variant)
                   (String.concat "; " es)))
         [ Pacor.Config.Full; Pacor.Config.Without_selection; Pacor.Config.Detour_first ])
    [ "corpus-dense"; "corpus-pairs"; "corpus-obstacles"; "corpus-bigcluster" ]

let () =
  Alcotest.run "corpus"
    [ ( "instances",
        [ Alcotest.test_case "dense clusters" `Quick test_dense;
          Alcotest.test_case "pairs only" `Quick test_pairs;
          Alcotest.test_case "heavy obstacles" `Quick test_obstacles;
          Alcotest.test_case "large clusters, delta 2" `Quick test_bigcluster;
          Alcotest.test_case "serialisation fixpoint" `Quick test_roundtrip_stability;
          Alcotest.test_case "zero lm clusters" `Quick test_empty_clusters;
          Alcotest.test_case "walled-in valve degrades" `Quick test_infeasible;
          Alcotest.test_case "all variants route" `Slow test_variants_on_corpus ] ) ]
