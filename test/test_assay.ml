open Pacor_valve
open Pacor_assay

let req_open = Phase.open_
let req_closed = Phase.closed

(* ---------- Phase ---------- *)

let test_phase_make () =
  match Phase.make ~name:"p" ~duration:2 [ req_open 0; req_closed 1 ] with
  | Error e -> Alcotest.failf "unexpected: %s" e
  | Ok p ->
    Alcotest.(check bool) "state of constrained" true
      (Phase.state_of p 0 = Activation.Open);
    Alcotest.(check bool) "state of unconstrained" true
      (Phase.state_of p 7 = Activation.Dont_care)

let test_phase_rejects_conflict () =
  Alcotest.(check bool) "conflicting states" true
    (Result.is_error (Phase.make ~name:"p" ~duration:1 [ req_open 0; req_closed 0 ]));
  Alcotest.(check bool) "duplicate same state ok" true
    (Result.is_ok (Phase.make ~name:"p" ~duration:1 [ req_open 0; req_open 0 ]))

let test_phase_rejects_bad_duration () =
  Alcotest.(check bool) "zero duration" true
    (Result.is_error (Phase.make ~name:"p" ~duration:0 [ req_open 0 ]))

let test_phase_rejects_unconstrained_sync () =
  Alcotest.(check bool) "sync valve must be constrained" true
    (Result.is_error
       (Phase.make ~name:"p" ~duration:1 ~sync_groups:[ [ 0; 1 ] ] [ req_open 0 ]))

(* ---------- Schedule ---------- *)

let sched phases = Schedule.make_exn phases

let two_phase () =
  sched
    [ Phase.make_exn ~name:"a" ~duration:2 [ req_open 0; req_closed 1 ];
      Phase.make_exn ~name:"b" ~duration:3 [ req_closed 0 ] ]

let test_schedule_steps_and_valves () =
  let s = two_phase () in
  Alcotest.(check int) "steps" 5 (Schedule.total_steps s);
  Alcotest.(check (list int)) "valves" [ 0; 1 ] s.Schedule.valves

let test_schedule_sequences () =
  let s = two_phase () in
  Alcotest.(check string) "valve 0" "00111"
    (Activation.string_of_sequence (Schedule.sequence_of s 0));
  Alcotest.(check string) "valve 1 gets X in phase b" "11XXX"
    (Activation.string_of_sequence (Schedule.sequence_of s 1))

let test_schedule_rejects_duplicates () =
  Alcotest.(check bool) "duplicate names" true
    (Result.is_error
       (Schedule.make
          [ Phase.make_exn ~name:"a" ~duration:1 [ req_open 0 ];
            Phase.make_exn ~name:"a" ~duration:1 [ req_open 1 ] ]));
  Alcotest.(check bool) "empty" true (Result.is_error (Schedule.make []))

let test_sync_clusters_merge_transitively () =
  (* {0,1} in one phase and {1,2} in another must merge into {0,1,2}. *)
  let s =
    sched
      [ Phase.make_exn ~name:"a" ~duration:1 ~sync_groups:[ [ 0; 1 ] ]
          [ req_open 0; req_open 1; req_open 2 ];
        Phase.make_exn ~name:"b" ~duration:1 ~sync_groups:[ [ 1; 2 ] ]
          [ req_closed 0; req_closed 1; req_closed 2 ] ]
  in
  match Schedule.sync_clusters s with
  | Error e -> Alcotest.failf "unexpected: %s" e
  | Ok clusters -> Alcotest.(check (list (list int))) "merged" [ [ 0; 1; 2 ] ] clusters

let test_sync_clusters_incompatible_detected () =
  (* 0 and 1 are synchronised but demanded in opposite states later. *)
  let s =
    sched
      [ Phase.make_exn ~name:"a" ~duration:1 ~sync_groups:[ [ 0; 1 ] ]
          [ req_open 0; req_open 1 ];
        Phase.make_exn ~name:"b" ~duration:1 [ req_open 0; req_closed 1 ] ]
  in
  Alcotest.(check bool) "incompatible sync cluster rejected" true
    (Result.is_error (Schedule.sync_clusters s))

let test_sync_singletons_dropped () =
  let s =
    sched [ Phase.make_exn ~name:"a" ~duration:1 ~sync_groups:[ [ 0 ] ] [ req_open 0 ] ]
  in
  match Schedule.sync_clusters s with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "singleton group should be dropped"
  | Error e -> Alcotest.failf "unexpected: %s" e

let test_lm_clusters_missing_valve () =
  (* A schedule whose sync cluster references a valve the caller never
     placed must come back as a named [Error], not an anonymous
     [Not_found] from an unguarded table lookup. *)
  let s =
    sched
      [ Phase.make_exn ~name:"a" ~duration:1 ~sync_groups:[ [ 0; 1 ] ]
          [ req_open 0; req_open 1 ] ]
  in
  let positions id = Pacor_geom.Point.make (2 + (3 * id)) 5 in
  let valves =
    List.filter
      (fun (v : Valve.t) -> v.id <> 1)
      (Schedule.to_valves s ~positions)
  in
  match Schedule.lm_clusters s ~valves with
  | Ok _ -> Alcotest.fail "missing valve accepted"
  | Error msg ->
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "names the problem" true (contains msg "not placed")
  | exception exn ->
    Alcotest.failf "lm_clusters raised %s instead of returning Error"
      (Printexc.to_string exn)

let test_to_valves_and_lm_clusters () =
  let s =
    sched
      [ Phase.make_exn ~name:"a" ~duration:2 ~sync_groups:[ [ 0; 1 ] ]
          [ req_open 0; req_open 1; req_closed 2 ] ]
  in
  let positions id = Pacor_geom.Point.make (2 + (3 * id)) 5 in
  let valves = Schedule.to_valves s ~positions in
  Alcotest.(check int) "three valves" 3 (List.length valves);
  match Schedule.lm_clusters s ~valves with
  | Error e -> Alcotest.failf "unexpected: %s" e
  | Ok [ c ] ->
    Alcotest.(check (list int)) "cluster members" [ 0; 1 ] (Cluster.valve_ids c);
    Alcotest.(check bool) "length matched" true c.Cluster.length_matched
  | Ok _ -> Alcotest.fail "expected exactly one cluster"

let test_compiled_sequences_route () =
  (* End-to-end: schedule -> problem -> routed solution. *)
  let s =
    sched
      [ Phase.make_exn ~name:"load" ~duration:2 ~sync_groups:[ [ 0; 1 ] ]
          [ req_open 0; req_open 1; req_closed 2 ];
        Phase.make_exn ~name:"run" ~duration:2 [ req_closed 0; req_closed 1; req_open 2 ] ]
  in
  let positions = function
    | 0 -> Pacor_geom.Point.make 4 4
    | 1 -> Pacor_geom.Point.make 10 8
    | 2 -> Pacor_geom.Point.make 7 11
    | _ -> invalid_arg "valve"
  in
  let valves = Schedule.to_valves s ~positions in
  let lm = Result.get_ok (Schedule.lm_clusters s ~valves) in
  let grid = Pacor_grid.Routing_grid.create ~width:15 ~height:15 () in
  let pins = [ Pacor_geom.Point.make 0 4; Pacor_geom.Point.make 14 8; Pacor_geom.Point.make 7 0 ] in
  let problem = Pacor.Problem.create_exn ~grid ~valves ~lm_clusters:lm ~pins () in
  match Pacor.Engine.run problem with
  | Error e -> Alcotest.failf "engine: %s" e.message
  | Ok sol ->
    let stats = Pacor.Solution.stats sol in
    Alcotest.(check (float 1e-9)) "routed" 1.0 stats.completion;
    Alcotest.(check int) "sync pair matched" 1 stats.matched_clusters

(* ---------- QCheck ---------- *)

let arb_phases =
  QCheck.make
    QCheck.Gen.(
      let* n = int_range 1 5 in
      let gen_phase i =
        let* duration = int_range 1 4 in
        let* states = list_size (return 4) (oneofl Pacor_valve.Activation.[ Open; Closed ]) in
        let requirements =
          List.mapi (fun v st -> { Phase.valve = v; state = st }) states
        in
        return (Phase.make_exn ~name:(Printf.sprintf "p%d" i) ~duration requirements)
      in
      let rec go acc i = if i = n then return (List.rev acc) else
        let* p = gen_phase i in
        go (p :: acc) (i + 1)
      in
      go [] 0)

let prop_sequence_lengths =
  QCheck.Test.make ~name:"all sequences have total_steps length" ~count:100 arb_phases
    (fun phases ->
       let s = Schedule.make_exn phases in
       List.for_all
         (fun (_, seq) -> Array.length seq = Schedule.total_steps s)
         (Schedule.sequences s))

let prop_sequence_states_match_phase =
  QCheck.Test.make ~name:"compiled step equals the phase demand" ~count:100 arb_phases
    (fun phases ->
       let s = Schedule.make_exn phases in
       let ok = ref true in
       List.iter
         (fun v ->
            let seq = Schedule.sequence_of s v in
            let pos = ref 0 in
            List.iter
              (fun (p : Phase.t) ->
                 for i = !pos to !pos + p.duration - 1 do
                   if seq.(i) <> Phase.state_of p v then ok := false
                 done;
                 pos := !pos + p.duration)
              s.Schedule.phases)
         s.Schedule.valves;
       !ok)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest [ prop_sequence_lengths; prop_sequence_states_match_phase ]

let () =
  Alcotest.run "assay"
    [ ( "phase",
        [ Alcotest.test_case "make" `Quick test_phase_make;
          Alcotest.test_case "conflicts" `Quick test_phase_rejects_conflict;
          Alcotest.test_case "duration" `Quick test_phase_rejects_bad_duration;
          Alcotest.test_case "unconstrained sync" `Quick
            test_phase_rejects_unconstrained_sync ] );
      ( "schedule",
        [ Alcotest.test_case "steps and valves" `Quick test_schedule_steps_and_valves;
          Alcotest.test_case "sequences" `Quick test_schedule_sequences;
          Alcotest.test_case "duplicates" `Quick test_schedule_rejects_duplicates ] );
      ( "sync",
        [ Alcotest.test_case "transitive merge" `Quick test_sync_clusters_merge_transitively;
          Alcotest.test_case "incompatible detected" `Quick
            test_sync_clusters_incompatible_detected;
          Alcotest.test_case "singletons dropped" `Quick test_sync_singletons_dropped;
          Alcotest.test_case "lm clusters" `Quick test_to_valves_and_lm_clusters;
          Alcotest.test_case "missing valve is a named error" `Quick
            test_lm_clusters_missing_valve ] );
      ( "end_to_end",
        [ Alcotest.test_case "schedule to routed chip" `Quick test_compiled_sequences_route ] );
      ("properties", qcheck_cases) ]
