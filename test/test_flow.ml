open Pacor_geom
open Pacor_grid
open Pacor_flow

(* ---------- MCMF ---------- *)

let test_simple_path_flow () =
  (* 0 -> 1 -> 2, capacities 1. *)
  let net = Mcmf.create 3 in
  Mcmf.add_edge net ~src:0 ~dst:1 ~cap:1 ~cost:2;
  Mcmf.add_edge net ~src:1 ~dst:2 ~cap:1 ~cost:3;
  let out = Mcmf.solve net ~source:0 ~sink:2 in
  Alcotest.(check int) "flow" 1 out.flow;
  Alcotest.(check int) "cost" 5 out.cost

let test_parallel_paths_pick_cheaper_first () =
  (* Two disjoint paths with different costs; flow target 1 must take the
     cheap one. *)
  let net = Mcmf.create 4 in
  Mcmf.add_edge net ~src:0 ~dst:1 ~cap:1 ~cost:10;
  Mcmf.add_edge net ~src:1 ~dst:3 ~cap:1 ~cost:0;
  Mcmf.add_edge net ~src:0 ~dst:2 ~cap:1 ~cost:1;
  Mcmf.add_edge net ~src:2 ~dst:3 ~cap:1 ~cost:1;
  let out = Mcmf.solve ~flow_target:1 net ~source:0 ~sink:3 in
  Alcotest.(check int) "flow" 1 out.flow;
  Alcotest.(check int) "cheap path cost" 2 out.cost;
  Alcotest.(check int) "flow on cheap edge" 1 (Mcmf.flow_on net ~src:0 ~dst:2)

let test_rerouting_via_residual () =
  (* Classic case where the second augmentation must push back along the
     first path's residual edge to be optimal. *)
  let net = Mcmf.create 4 in
  (* s=0, t=3; middle edge 1->2 shared. *)
  Mcmf.add_edge net ~src:0 ~dst:1 ~cap:1 ~cost:1;
  Mcmf.add_edge net ~src:0 ~dst:2 ~cap:1 ~cost:10;
  Mcmf.add_edge net ~src:1 ~dst:2 ~cap:1 ~cost:1;
  Mcmf.add_edge net ~src:1 ~dst:3 ~cap:1 ~cost:10;
  Mcmf.add_edge net ~src:2 ~dst:3 ~cap:1 ~cost:1;
  let out = Mcmf.solve net ~source:0 ~sink:3 in
  Alcotest.(check int) "max flow 2" 2 out.flow;
  (* Optimal: 0-1-2-3 (3) + 0-2? cap used... best total = 3 + 0-2(10)+2-3 full
     -> min cost max flow = 0-1-3 (11) + 0-2-3 (11) = 22 vs 0-1-2-3 (3) +
     0-2(10) 2-3 blocked... check against brute value 22. *)
  Alcotest.(check int) "min cost" 22 out.cost

let test_negative_cost_edge () =
  let net = Mcmf.create 3 in
  Mcmf.add_edge net ~src:0 ~dst:1 ~cap:2 ~cost:(-5);
  Mcmf.add_edge net ~src:1 ~dst:2 ~cap:2 ~cost:1;
  let out = Mcmf.solve net ~source:0 ~sink:2 in
  Alcotest.(check int) "flow" 2 out.flow;
  Alcotest.(check int) "cost" (-8) out.cost

let test_stop_threshold () =
  (* Two paths, costs 3 and 8; threshold 5 keeps only the cheap one. *)
  let net = Mcmf.create 4 in
  Mcmf.add_edge net ~src:0 ~dst:1 ~cap:1 ~cost:3;
  Mcmf.add_edge net ~src:1 ~dst:3 ~cap:1 ~cost:0;
  Mcmf.add_edge net ~src:0 ~dst:2 ~cap:1 ~cost:8;
  Mcmf.add_edge net ~src:2 ~dst:3 ~cap:1 ~cost:0;
  let out = Mcmf.solve ~stop_when_cost_reaches:5 net ~source:0 ~sink:3 in
  Alcotest.(check int) "only cheap unit" 1 out.flow;
  Alcotest.(check int) "cost" 3 out.cost

let test_disconnected () =
  let net = Mcmf.create 4 in
  Mcmf.add_edge net ~src:0 ~dst:1 ~cap:1 ~cost:1;
  Mcmf.add_edge net ~src:2 ~dst:3 ~cap:1 ~cost:1;
  let out = Mcmf.solve net ~source:0 ~sink:3 in
  Alcotest.(check int) "no flow" 0 out.flow

let test_decompose_paths () =
  let net = Mcmf.create 5 in
  Mcmf.add_edge net ~src:0 ~dst:1 ~cap:1 ~cost:1;
  Mcmf.add_edge net ~src:1 ~dst:4 ~cap:1 ~cost:1;
  Mcmf.add_edge net ~src:0 ~dst:2 ~cap:1 ~cost:1;
  Mcmf.add_edge net ~src:2 ~dst:3 ~cap:1 ~cost:1;
  Mcmf.add_edge net ~src:3 ~dst:4 ~cap:1 ~cost:1;
  let out = Mcmf.solve net ~source:0 ~sink:4 in
  Alcotest.(check int) "two units" 2 out.flow;
  let paths = Mcmf.decompose_paths net ~source:0 ~sink:4 in
  Alcotest.(check int) "two paths" 2 (List.length paths);
  List.iter
    (fun p ->
       Alcotest.(check int) "starts at source" 0 (List.hd p);
       Alcotest.(check int) "ends at sink" 4 (List.nth p (List.length p - 1)))
    paths

let test_solve_twice_rejected () =
  let net = Mcmf.create 2 in
  Mcmf.add_edge net ~src:0 ~dst:1 ~cap:1 ~cost:1;
  ignore (Mcmf.solve net ~source:0 ~sink:1);
  Alcotest.check_raises "second solve" (Invalid_argument "Mcmf.solve: already solved")
    (fun () -> ignore (Mcmf.solve net ~source:0 ~sink:1))

let test_add_edge_validation () =
  let net = Mcmf.create 2 in
  Alcotest.check_raises "negative cap" (Invalid_argument "Mcmf.add_edge: negative capacity")
    (fun () -> Mcmf.add_edge net ~src:0 ~dst:1 ~cap:(-1) ~cost:0);
  Alcotest.check_raises "bad node" (Invalid_argument "Mcmf.add_edge: bad node") (fun () ->
    Mcmf.add_edge net ~src:0 ~dst:5 ~cap:1 ~cost:0)

(* ---------- Escape routing ---------- *)

let grid10 () = Routing_grid.create ~width:10 ~height:10 ()

let test_escape_single_cluster () =
  let grid = grid10 () in
  let start = Point.make 5 5 in
  let pins = [ Point.make 0 5; Point.make 9 5 ] in
  match
    Escape.route ~grid ~claimed:(Point.Set.singleton start) ~pins
      [ { Escape.cluster_idx = 0; start_cells = [ start ] } ]
  with
  | Error e -> Alcotest.failf "escape failed: %s" e
  | Ok out ->
    Alcotest.(check int) "routed" 1 (List.length out.routed);
    Alcotest.(check (list int)) "no failures" [] out.failed;
    let r = List.hd out.routed in
    Alcotest.(check bool) "ends on a pin" true
      (List.exists (Point.equal r.Escape.pin) pins);
    Alcotest.(check int) "shortest possible" 4 (Path.length r.Escape.path)

let test_escape_two_clusters_disjoint () =
  let grid = grid10 () in
  let s1 = Point.make 3 5 and s2 = Point.make 6 5 in
  let claimed = Point.Set.of_list [ s1; s2 ] in
  let pins = [ Point.make 0 5; Point.make 9 5; Point.make 5 0 ] in
  match
    Escape.route ~grid ~claimed ~pins
      [ { Escape.cluster_idx = 10; start_cells = [ s1 ] };
        { Escape.cluster_idx = 20; start_cells = [ s2 ] } ]
  with
  | Error e -> Alcotest.failf "escape failed: %s" e
  | Ok out ->
    Alcotest.(check int) "both routed" 2 (List.length out.routed);
    (* Vertex-disjointness. *)
    (match out.routed with
     | [ a; b ] ->
       Alcotest.(check bool) "disjoint" false
         (Path.shares_vertex a.Escape.path b.Escape.path);
       Alcotest.(check bool) "different pins" false (Point.equal a.Escape.pin b.Escape.pin)
     | _ -> Alcotest.fail "expected two routes")

let test_escape_avoids_claimed () =
  (* A wall of claimed cells forces a detour. *)
  let grid = grid10 () in
  let start = Point.make 5 5 in
  (* The wall leaves a gap at rows 7-8 (the boundary itself is never
     transit space, so a full-height wall would seal the grid). *)
  let wall = List.init 6 (fun i -> Point.make 3 (i + 1)) in
  let claimed = Point.Set.of_list (start :: wall) in
  let pins = [ Point.make 0 5 ] in
  match
    Escape.route ~grid ~claimed ~pins
      [ { Escape.cluster_idx = 0; start_cells = [ start ] } ]
  with
  | Error e -> Alcotest.failf "escape failed: %s" e
  | Ok out ->
    (match out.routed with
     | [ r ] ->
       Alcotest.(check bool) "longer than manhattan" true (Path.length r.Escape.path > 4);
       List.iter
         (fun w ->
            Alcotest.(check bool) "avoids wall" false (Path.mem r.Escape.path w))
         wall
     | _ -> Alcotest.fail "expected one route")

let test_escape_more_clusters_than_pins () =
  let grid = grid10 () in
  let starts = [ Point.make 3 3; Point.make 6 6; Point.make 3 6 ] in
  let claimed = Point.Set.of_list starts in
  let pins = [ Point.make 0 3; Point.make 0 6 ] in
  let reqs =
    List.mapi (fun i s -> { Escape.cluster_idx = i; start_cells = [ s ] }) starts
  in
  match Escape.route ~grid ~claimed ~pins reqs with
  | Error e -> Alcotest.failf "escape failed: %s" e
  | Ok out ->
    Alcotest.(check int) "two routed" 2 (List.length out.routed);
    Alcotest.(check int) "one failed" 1 (List.length out.failed)

let test_escape_prefers_max_routed_over_length () =
  (* One cluster could grab the only pin cheaply in a way that blocks the
     other; the flow must route both even at higher total cost. Corridor
     grid: two pins far apart. *)
  let grid = Routing_grid.create ~width:12 ~height:5 () in
  let s1 = Point.make 5 2 and s2 = Point.make 6 2 in
  let pins = [ Point.make 0 2; Point.make 11 2 ] in
  match
    Escape.route ~grid ~claimed:(Point.Set.of_list [ s1; s2 ]) ~pins
      [ { Escape.cluster_idx = 0; start_cells = [ s1 ] };
        { Escape.cluster_idx = 1; start_cells = [ s2 ] } ]
  with
  | Error e -> Alcotest.failf "escape failed: %s" e
  | Ok out -> Alcotest.(check int) "both routed" 2 (List.length out.routed)

let test_escape_validation () =
  let grid = grid10 () in
  let bad_pin = Point.make 5 5 (* not boundary *) in
  (match
     Escape.route ~grid ~claimed:Point.Set.empty ~pins:[ bad_pin ]
       [ { Escape.cluster_idx = 0; start_cells = [ Point.make 2 2 ] } ]
   with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "interior pin accepted");
  (match
     Escape.route ~grid ~claimed:Point.Set.empty ~pins:[ Point.make 0 5 ]
       [ { Escape.cluster_idx = 0; start_cells = [] } ]
   with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "empty start cells accepted")

let test_escape_total_length () =
  let grid = grid10 () in
  let start = Point.make 5 5 in
  match
    Escape.route ~grid ~claimed:(Point.Set.singleton start) ~pins:[ Point.make 0 5 ]
      [ { Escape.cluster_idx = 0; start_cells = [ start ] } ]
  with
  | Error e -> Alcotest.failf "escape failed: %s" e
  | Ok out -> Alcotest.(check int) "total = path length" 5 out.total_length


(* ---------- Maxflow (Dinic) ---------- *)

let test_dinic_simple () =
  let net = Maxflow.create 4 in
  Maxflow.add_edge net ~src:0 ~dst:1 ~cap:3;
  Maxflow.add_edge net ~src:0 ~dst:2 ~cap:2;
  Maxflow.add_edge net ~src:1 ~dst:3 ~cap:2;
  Maxflow.add_edge net ~src:2 ~dst:3 ~cap:3;
  Maxflow.add_edge net ~src:1 ~dst:2 ~cap:1;
  Alcotest.(check int) "max flow" 5 (Maxflow.max_flow net ~source:0 ~sink:3)

let test_dinic_disconnected () =
  let net = Maxflow.create 3 in
  Maxflow.add_edge net ~src:0 ~dst:1 ~cap:5;
  Alcotest.(check int) "no route to sink" 0 (Maxflow.max_flow net ~source:0 ~sink:2)

let test_dinic_min_cut () =
  (* Classic bottleneck: cut isolates the source side. *)
  let net = Maxflow.create 4 in
  Maxflow.add_edge net ~src:0 ~dst:1 ~cap:10;
  Maxflow.add_edge net ~src:1 ~dst:2 ~cap:1;
  Maxflow.add_edge net ~src:2 ~dst:3 ~cap:10;
  let f = Maxflow.max_flow net ~source:0 ~sink:3 in
  Alcotest.(check int) "bottleneck" 1 f;
  let reach = Maxflow.min_cut_reachable net ~source:0 in
  Alcotest.(check bool) "source side" true reach.(0);
  Alcotest.(check bool) "source side includes 1" true reach.(1);
  Alcotest.(check bool) "sink side" false reach.(3)

(* ---------- Cross-checks: Mcmf vs Mcmf_spfa vs Dinic ---------- *)

let random_network seed =
  let rng = ref seed in
  let next () =
    rng := (!rng * 1103515245) + 12345;
    abs !rng
  in
  let n = 4 + (next () mod 5) in
  let edges = ref [] in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst && next () mod 100 < 40 then
        edges := (src, dst, 1 + (next () mod 4), next () mod 10) :: !edges
    done
  done;
  (n, !edges)

let test_mcmf_agrees_with_spfa () =
  List.iter
    (fun seed ->
       let n, edges = random_network seed in
       let a = Mcmf.create n and b = Mcmf_spfa.create n in
       List.iter
         (fun (src, dst, cap, cost) ->
            Mcmf.add_edge a ~src ~dst ~cap ~cost;
            Mcmf_spfa.add_edge b ~src ~dst ~cap ~cost)
         edges;
       let oa = Mcmf.solve a ~source:0 ~sink:(n - 1) in
       let ob = Mcmf_spfa.solve b ~source:0 ~sink:(n - 1) in
       Alcotest.(check int) (Printf.sprintf "flow seed %d" seed) ob.flow oa.flow;
       Alcotest.(check int) (Printf.sprintf "cost seed %d" seed) ob.cost oa.cost)
    [ 1; 2; 3; 5; 8; 13; 21; 34; 55; 89; 144; 233 ]

let test_mcmf_flow_equals_dinic () =
  List.iter
    (fun seed ->
       let n, edges = random_network seed in
       let a = Mcmf.create n and d = Maxflow.create n in
       List.iter
         (fun (src, dst, cap, cost) ->
            Mcmf.add_edge a ~src ~dst ~cap ~cost;
            Maxflow.add_edge d ~src ~dst ~cap)
         edges;
       let oa = Mcmf.solve a ~source:0 ~sink:(n - 1) in
       let df = Maxflow.max_flow d ~source:0 ~sink:(n - 1) in
       Alcotest.(check int) (Printf.sprintf "max flow seed %d" seed) df oa.flow)
    [ 7; 11; 19; 42; 101; 999 ]

let prop_solvers_agree =
  QCheck.Test.make ~name:"Mcmf and SPFA agree on random networks" ~count:120
    QCheck.small_int (fun seed ->
      let n, edges = random_network (seed + 1) in
      let a = Mcmf.create n and b = Mcmf_spfa.create n in
      List.iter
        (fun (src, dst, cap, cost) ->
           Mcmf.add_edge a ~src ~dst ~cap ~cost;
           Mcmf_spfa.add_edge b ~src ~dst ~cap ~cost)
        edges;
      let oa = Mcmf.solve a ~source:0 ~sink:(n - 1) in
      let ob = Mcmf_spfa.solve b ~source:0 ~sink:(n - 1) in
      oa.flow = ob.flow && oa.cost = ob.cost)

let test_escape_matches_feasibility_bound () =
  (* The min-cost router must route exactly as many clusters as the
     max-flow oracle says are routable. *)
  List.iter
    (fun (pins, starts) ->
       let grid = grid10 () in
       let claimed = Point.Set.of_list starts in
       let reqs =
         List.mapi (fun i s -> { Escape.cluster_idx = i; start_cells = [ s ] }) starts
       in
       let bound = Escape.feasibility_bound ~grid ~claimed ~pins reqs in
       match Escape.route ~grid ~claimed ~pins reqs with
       | Error e -> Alcotest.failf "escape failed: %s" e
       | Ok out -> Alcotest.(check int) "routed = bound" bound (List.length out.routed))
    [ ([ Point.make 0 5; Point.make 9 5 ], [ Point.make 3 3; Point.make 6 6 ]);
      ([ Point.make 0 3 ], [ Point.make 3 3; Point.make 6 6; Point.make 5 2 ]);
      ([ Point.make 0 2; Point.make 0 4; Point.make 0 6 ],
       [ Point.make 2 2; Point.make 2 4; Point.make 2 6 ]) ]

(* ---------- Mcmf_grid (CSR escape solver) ---------- *)

let emit_list arcs f = List.iter (fun (src, dst, cost) -> f ~src ~dst ~cost) arcs

(* Unit caps, 0/1 costs: max flow 2, min cost 4 (0-1-3 + 0-2-3, or the
   residual-equivalent 0-1-2-3 + 0-2..). *)
let diamond_arcs = [ (0, 1, 1); (0, 2, 1); (1, 2, 0); (1, 3, 1); (2, 3, 1) ]

let test_grid_solve_basics () =
  let net = Mcmf_grid.build ~n:4 ~source:0 ~sink:3 ~emit_arcs:(emit_list diamond_arcs) in
  Alcotest.(check int) "nodes" 4 (Mcmf_grid.node_count net);
  Alcotest.(check int) "arcs incl. reverses" 10 (Mcmf_grid.arc_count net);
  let out = Mcmf_grid.solve net in
  Alcotest.(check int) "flow" 2 out.Mcmf_grid.flow;
  Alcotest.(check int) "cost" 4 out.Mcmf_grid.cost;
  Alcotest.(check int) "rounds = augmentations + final empty" 3 out.Mcmf_grid.rounds;
  let paths = Mcmf_grid.decompose_paths net in
  Alcotest.(check int) "two unit paths" 2 (List.length paths);
  List.iter
    (fun p ->
       Alcotest.(check int) "starts at source" 0 (List.hd p);
       Alcotest.(check int) "ends at sink" 3 (List.nth p (List.length p - 1)))
    paths

let test_grid_reset_shares_structure () =
  (* One CSR build serves the feasibility probe, the solve, and a retry:
     the ISSUE's "built exactly once" contract. *)
  let net = Mcmf_grid.build ~n:4 ~source:0 ~sink:3 ~emit_arcs:(emit_list diamond_arcs) in
  Alcotest.(check int) "probe max flow" 2 (Mcmf_grid.max_flow net);
  Mcmf_grid.reset net;
  let a = Mcmf_grid.solve net in
  Mcmf_grid.reset net;
  let b = Mcmf_grid.solve net in
  Alcotest.(check int) "flow stable across resets" a.Mcmf_grid.flow b.Mcmf_grid.flow;
  Alcotest.(check int) "cost stable across resets" a.Mcmf_grid.cost b.Mcmf_grid.cost;
  Alcotest.check_raises "second solve without reset"
    (Invalid_argument "Mcmf_grid.solve: already solved") (fun () ->
      ignore (Mcmf_grid.solve net))

let test_grid_build_validation () =
  Alcotest.check_raises "bad cost"
    (Invalid_argument "Mcmf_grid.build: cost must be 0 or 1") (fun () ->
      ignore (Mcmf_grid.build ~n:2 ~source:0 ~sink:1 ~emit_arcs:(emit_list [ (0, 1, 2) ])));
  Alcotest.check_raises "bad node" (Invalid_argument "Mcmf_grid.build: bad node")
    (fun () ->
       ignore (Mcmf_grid.build ~n:2 ~source:0 ~sink:1 ~emit_arcs:(emit_list [ (0, 5, 1) ])));
  (* The emitter runs twice (count pass, fill pass); one that emits
     different arcs per call must be rejected, not silently miswired. *)
  let calls = ref 0 in
  let unstable f =
    incr calls;
    if !calls = 1 then f ~src:0 ~dst:1 ~cost:1 else f ~src:1 ~dst:2 ~cost:1
  in
  Alcotest.check_raises "unstable emitter"
    (Invalid_argument "Mcmf_grid.build: emit_arcs is not deterministic") (fun () ->
      ignore (Mcmf_grid.build ~n:3 ~source:0 ~sink:2 ~emit_arcs:unstable))

let test_grid_budget_starvation () =
  (* An exhausted workspace budget starves the augmentation search: the
     solve stops with partial (here: zero) flow instead of hanging —
     the same degradation chain as the A* stages. *)
  let ws = Pacor_route.Workspace.create () in
  let budget =
    Pacor_route.Budget.create
      (Pacor_route.Budget.limits ~max_expansions:1 ())
  in
  Pacor_route.Budget.arm budget;
  Pacor_route.Workspace.set_budget ws budget;
  let net = Mcmf_grid.build ~n:4 ~source:0 ~sink:3 ~emit_arcs:(emit_list diamond_arcs) in
  let out = Mcmf_grid.solve ~workspace:ws net in
  Alcotest.(check bool) "starved solve finds less than optimum" true
    (out.Mcmf_grid.flow < 2);
  Alcotest.(check bool) "budget reports exhaustion" true
    (Pacor_route.Budget.exhausted budget <> None)

let test_grid_workspace_stats_rounds () =
  (* Per-round instrumentation: each augmentation round is one workspace
     search (epoch bump), pops/settles and arc scans land in the shared
     counters. *)
  let ws = Pacor_route.Workspace.create () in
  let s0 = Pacor_route.Search_stats.snapshot (Pacor_route.Workspace.stats ws) in
  let net = Mcmf_grid.build ~n:4 ~source:0 ~sink:3 ~emit_arcs:(emit_list diamond_arcs) in
  let out = Mcmf_grid.solve ~workspace:ws net in
  let s1 = Pacor_route.Search_stats.snapshot (Pacor_route.Workspace.stats ws) in
  let d = Pacor_route.Search_stats.diff s1 s0 in
  Alcotest.(check int) "one search per round" out.Mcmf_grid.rounds
    d.Pacor_route.Search_stats.searches;
  Alcotest.(check bool) "settles counted" true (d.Pacor_route.Search_stats.pops > 0);
  Alcotest.(check bool) "arc scans counted" true (d.Pacor_route.Search_stats.touched > 0)

let unit_cost_network seed =
  (* [random_network] variant constrained to the grid solver's domain:
     unit capacities, costs 0 or 1. *)
  let n, edges = random_network seed in
  (n, List.map (fun (src, dst, _cap, cost) -> (src, dst, cost mod 2)) edges)

let test_grid_agrees_with_general_solvers () =
  List.iter
    (fun seed ->
       let n, arcs = unit_cost_network seed in
       let g = Mcmf_grid.build ~n ~source:0 ~sink:(n - 1) ~emit_arcs:(emit_list arcs) in
       let a = Mcmf.create n and d = Maxflow.create n in
       List.iter
         (fun (src, dst, cost) ->
            Mcmf.add_edge a ~src ~dst ~cap:1 ~cost;
            Maxflow.add_edge d ~src ~dst ~cap:1)
         arcs;
       let og = Mcmf_grid.solve g in
       let oa = Mcmf.solve a ~source:0 ~sink:(n - 1) in
       Alcotest.(check int) (Printf.sprintf "flow seed %d" seed) oa.Mcmf.flow
         og.Mcmf_grid.flow;
       Alcotest.(check int) (Printf.sprintf "cost seed %d" seed) oa.Mcmf.cost
         og.Mcmf_grid.cost;
       (* The costless probe must agree with the independent Dinic solver. *)
       Mcmf_grid.reset g;
       let df = Maxflow.max_flow d ~source:0 ~sink:(n - 1) in
       Alcotest.(check int) (Printf.sprintf "max flow seed %d" seed) df
         (Mcmf_grid.max_flow g))
    [ 1; 2; 3; 5; 7; 8; 11; 13; 19; 21; 34; 42; 55; 89; 101; 144; 233; 999 ]

(* ---------- Escape: three-way solver agreement ---------- *)

let solvers = [ ("grid", Escape.Grid); ("spfa", Escape.Spfa); ("dijkstra", Escape.Dijkstra) ]

let route_with solver ~grid ~claimed ~pins reqs =
  match Escape.route ~solver ~grid ~claimed ~pins reqs with
  | Error e -> Alcotest.failf "escape failed: %s" e
  | Ok out -> out

let test_escape_three_way_agreement () =
  (* Instances whose optimum assignment is unique, so all three solvers
     must agree on the full outcome, not just its aggregates. *)
  List.iter
    (fun (pins, starts) ->
       let grid = grid10 () in
       let claimed = Point.Set.of_list starts in
       let reqs =
         List.mapi (fun i s -> { Escape.cluster_idx = i; start_cells = [ s ] }) starts
       in
       let outs =
         List.map (fun (name, s) -> (name, route_with s ~grid ~claimed ~pins reqs)) solvers
       in
       match outs with
       | (_, ref_out) :: rest ->
         List.iter
           (fun (name, out) ->
              Alcotest.(check int) (name ^ ": routed count")
                (List.length ref_out.Escape.routed)
                (List.length out.Escape.routed);
              Alcotest.(check (list int)) (name ^ ": failed set") ref_out.Escape.failed
                out.Escape.failed;
              Alcotest.(check int) (name ^ ": total length") ref_out.Escape.total_length
                out.Escape.total_length)
           rest
       | [] -> assert false)
    [ ([ Point.make 0 5; Point.make 9 5 ], [ Point.make 3 3; Point.make 6 6 ]);
      ([ Point.make 0 3 ], [ Point.make 3 3; Point.make 6 6; Point.make 5 2 ]);
      ([ Point.make 0 2; Point.make 0 4; Point.make 0 6 ],
       [ Point.make 2 2; Point.make 2 4; Point.make 2 6 ]) ]

let test_escape_duplicate_idx_rejected () =
  let grid = grid10 () in
  let s1 = Point.make 3 3 and s2 = Point.make 6 6 in
  match
    Escape.route ~grid ~claimed:(Point.Set.of_list [ s1; s2 ]) ~pins:[ Point.make 0 5 ]
      [ { Escape.cluster_idx = 7; start_cells = [ s1 ] };
        { Escape.cluster_idx = 7; start_cells = [ s2 ] } ]
  with
  | Error e ->
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
      scan 0
    in
    Alcotest.(check bool) "names the duplicate" true
      (contains e "duplicate cluster_idx 7")
  | Ok _ -> Alcotest.fail "duplicate cluster_idx accepted"

let test_escape_workspace_reuse () =
  (* Same instance, fresh vs shared workspace: identical outcomes, and the
     shared workspace survives for the next solve (epoch isolation). *)
  let grid = grid10 () in
  let starts = [ Point.make 3 3; Point.make 6 6 ] in
  let claimed = Point.Set.of_list starts in
  let pins = [ Point.make 0 3; Point.make 0 6 ] in
  let reqs =
    List.mapi (fun i s -> { Escape.cluster_idx = i; start_cells = [ s ] }) starts
  in
  let fresh = route_with Escape.Grid ~grid ~claimed ~pins reqs in
  let ws = Pacor_route.Workspace.create () in
  for _ = 1 to 3 do
    match Escape.route ~workspace:ws ~grid ~claimed ~pins reqs with
    | Error e -> Alcotest.failf "escape failed: %s" e
    | Ok out ->
      Alcotest.(check int) "routed as fresh" (List.length fresh.Escape.routed)
        (List.length out.Escape.routed);
      Alcotest.(check int) "length as fresh" fresh.Escape.total_length
        out.Escape.total_length
  done

let serpentine_grid size =
  (* Vertical walls with alternating end gaps: one long corridor snaking
     through the whole grid. *)
  let walls = ref [] in
  let x = ref 2 in
  while !x <= size - 3 do
    let r =
      if !x mod 4 = 2 then Rect.make ~x0:!x ~y0:1 ~x1:!x ~y1:(size - 3)
      else Rect.make ~x0:!x ~y0:2 ~x1:!x ~y1:(size - 2)
    in
    walls := r :: !walls;
    x := !x + 2
  done;
  Routing_grid.create ~width:size ~height:size ~obstacles:!walls ()

let test_escape_long_path_regression () =
  (* Chip1-scale path length: the old non-tail [collapse] (and a recursive
     decompose walk) would overflow the stack here. All three solvers must
     survive and agree. *)
  let size = 501 in
  let grid = serpentine_grid size in
  let start = Point.make 1 1 in
  let pins = [ Point.make (size - 2) 0 ] in
  let reqs = [ { Escape.cluster_idx = 0; start_cells = [ start ] } ] in
  let claimed = Point.Set.singleton start in
  let outs =
    List.map (fun (name, s) -> (name, route_with s ~grid ~claimed ~pins reqs)) solvers
  in
  List.iter
    (fun (name, out) ->
       Alcotest.(check int) (name ^ ": routed") 1 (List.length out.Escape.routed);
       Alcotest.(check bool) (name ^ ": serpentine-length path") true
         (out.Escape.total_length > 100_000))
    outs;
  match outs with
  | (_, a) :: rest ->
    List.iter
      (fun (name, b) ->
         Alcotest.(check int) (name ^ ": equal length") a.Escape.total_length
           b.Escape.total_length)
      rest
  | [] -> assert false

let test_mcmf_long_chain_decompose () =
  (* Deep unit path through the general solver: the decompose walk must be
     iterative. *)
  let n = 200_001 in
  let net = Mcmf.create n in
  for v = 0 to n - 2 do
    Mcmf.add_edge net ~src:v ~dst:(v + 1) ~cap:1 ~cost:1
  done;
  let out = Mcmf.solve net ~source:0 ~sink:(n - 1) in
  Alcotest.(check int) "one unit" 1 out.Mcmf.flow;
  match Mcmf.decompose_paths net ~source:0 ~sink:(n - 1) with
  | [ path ] -> Alcotest.(check int) "full chain" n (List.length path)
  | _ -> Alcotest.fail "expected a single path"

(* ---------- QCheck ---------- *)

let prop_mcmf_flow_conservation =
  (* Random small layered networks: total out-of-source equals into-sink. *)
  let arb =
    QCheck.make
      QCheck.Gen.(
        let* mid = int_range 1 4 in
        let* caps = list_size (return (2 * mid)) (int_range 1 3) in
        let* costs = list_size (return (2 * mid)) (int_range 0 9) in
        return (mid, caps, costs))
  in
  QCheck.Test.make ~name:"random layered network flow sanity" ~count:100 arb
    (fun (mid, caps, costs) ->
       (* nodes: 0 source, 1..mid middles, mid+1 sink. *)
       let n = mid + 2 in
       let net = Mcmf.create n in
       let caps = Array.of_list caps and costs = Array.of_list costs in
       for i = 0 to mid - 1 do
         Mcmf.add_edge net ~src:0 ~dst:(i + 1) ~cap:caps.(i) ~cost:costs.(i);
         Mcmf.add_edge net ~src:(i + 1) ~dst:(mid + 1) ~cap:caps.(mid + i)
           ~cost:costs.(mid + i)
       done;
       let out = Mcmf.solve net ~source:0 ~sink:(mid + 1) in
       let expected =
         let s = ref 0 in
         for i = 0 to mid - 1 do
           s := !s + min caps.(i) caps.(mid + i)
         done;
         !s
       in
       out.flow = expected && out.cost >= 0)


let prop_escape_routed_equals_bound =
  (* On random small grids with random pins/starts, the min-cost router
     always routes exactly the max-flow feasibility bound. *)
  let arb =
    QCheck.make
      QCheck.Gen.(
        let* n_start = int_range 1 4 in
        let* n_pin = int_range 1 4 in
        let* starts =
          list_size (return n_start)
            (let* x = int_range 2 7 and* y = int_range 2 7 in
             return (Point.make x y))
        in
        let* pin_ys = list_size (return n_pin) (int_range 1 8) in
        return (List.sort_uniq Point.compare starts,
                List.sort_uniq Point.compare (List.map (fun y -> Point.make 0 y) pin_ys)))
  in
  QCheck.Test.make ~name:"escape routes exactly the max-flow bound" ~count:60 arb
    (fun (starts, pins) ->
       let grid = grid10 () in
       let claimed = Point.Set.of_list starts in
       let reqs =
         List.mapi (fun i s -> { Escape.cluster_idx = i; start_cells = [ s ] }) starts
       in
       let bound = Escape.feasibility_bound ~grid ~claimed ~pins reqs in
       match Escape.route ~grid ~claimed ~pins reqs with
       | Error _ -> false
       | Ok out -> List.length out.routed = bound)

type escape_instance = {
  gw : int;
  gh : int;
  obstacles : Point.t list;
  claim_extra : Point.t list;
  gen_pins : Point.t list;
  gen_reqs : Escape.request list;
}

let prop_three_solvers_agree =
  (* Random grids with obstacles, boundary pins, and multi-start requests:
     Grid, Spfa and Dijkstra must agree on (routed count, total length),
     and the feasibility bound must equal the routed count. *)
  let gen =
    QCheck.Gen.(
      let* gw = int_range 7 14 and* gh = int_range 7 14 in
      let interior =
        let* x = int_range 1 (gw - 2) and* y = int_range 1 (gh - 2) in
        return (Point.make x y)
      in
      let* n_obs = int_range 0 10 in
      let* obstacles = list_size (return n_obs) interior in
      let* n_pin = int_range 1 5 in
      let* pins =
        list_size (return n_pin)
          (let* side = int_range 0 3 in
           let* x = int_range 0 (gw - 1) and* y = int_range 0 (gh - 1) in
           return
             (match side with
              | 0 -> Point.make 0 y
              | 1 -> Point.make (gw - 1) y
              | 2 -> Point.make x 0
              | _ -> Point.make x (gh - 1)))
      in
      let* n_req = int_range 1 4 in
      let* raw_reqs =
        list_size (return n_req)
          (let* k = int_range 1 3 in
           list_size (return k) interior)
      in
      let* claim_extra =
        let* k = int_range 0 5 in
        list_size (return k) interior
      in
      (* Start cells must not sit on obstacles: starts win the collision. *)
      let start_cells = List.concat raw_reqs in
      let obstacles =
        List.filter (fun o -> not (List.exists (Point.equal o) start_cells)) obstacles
      in
      let gen_reqs =
        List.mapi
          (fun i cells ->
             { Escape.cluster_idx = i; start_cells = List.sort_uniq Point.compare cells })
          raw_reqs
      in
      return
        { gw; gh; obstacles;
          claim_extra;
          gen_pins = List.sort_uniq Point.compare pins;
          gen_reqs })
  in
  let print inst =
    Format.asprintf "%dx%d obstacles=[%a] pins=[%a] reqs=[%a] extra=[%a]" inst.gw inst.gh
      (Format.pp_print_list Point.pp) inst.obstacles
      (Format.pp_print_list Point.pp) inst.gen_pins
      (Format.pp_print_list (fun ppf (r : Escape.request) ->
         Format.fprintf ppf "#%d:%a" r.Escape.cluster_idx
           (Format.pp_print_list Point.pp) r.Escape.start_cells))
      inst.gen_reqs
      (Format.pp_print_list Point.pp) inst.claim_extra
  in
  QCheck.Test.make ~name:"Grid/Spfa/Dijkstra escape solvers agree (+bound)" ~count:220
    (QCheck.make ~print gen) (fun inst ->
      let grid =
        Routing_grid.create ~width:inst.gw ~height:inst.gh
          ~obstacles:(List.map (fun (p : Point.t) ->
            Rect.make ~x0:p.Point.x ~y0:p.Point.y ~x1:p.Point.x ~y1:p.Point.y)
            inst.obstacles)
          ()
      in
      let claimed =
        Point.Set.of_list
          (List.concat_map (fun (r : Escape.request) -> r.Escape.start_cells) inst.gen_reqs
           @ inst.claim_extra)
      in
      let outcomes =
        List.map
          (fun solver ->
             match
               Escape.route ~solver ~grid ~claimed ~pins:inst.gen_pins inst.gen_reqs
             with
             | Error e -> QCheck.Test.fail_reportf "route error: %s" e
             | Ok out -> (List.length out.Escape.routed, out.Escape.total_length))
          [ Escape.Grid; Escape.Spfa; Escape.Dijkstra ]
      in
      match outcomes with
      | [ (gr, gl); (sr, sl); (dr, dl) ] ->
        let bound =
          Escape.feasibility_bound ~grid ~claimed ~pins:inst.gen_pins inst.gen_reqs
        in
        if not (gr = sr && sr = dr) then
          QCheck.Test.fail_reportf "routed counts differ: grid=%d spfa=%d dijkstra=%d" gr
            sr dr
        else if not (gl = sl && sl = dl) then
          QCheck.Test.fail_reportf "total lengths differ: grid=%d spfa=%d dijkstra=%d" gl
            sl dl
        else if bound <> gr then
          QCheck.Test.fail_reportf "feasibility bound %d <> routed %d" bound gr
        else true
      | _ -> assert false)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_mcmf_flow_conservation; prop_solvers_agree; prop_escape_routed_equals_bound;
      prop_three_solvers_agree ]

let () =
  Alcotest.run "flow"
    [ ( "mcmf",
        [ Alcotest.test_case "simple path" `Quick test_simple_path_flow;
          Alcotest.test_case "cheapest first" `Quick test_parallel_paths_pick_cheaper_first;
          Alcotest.test_case "residual rerouting" `Quick test_rerouting_via_residual;
          Alcotest.test_case "negative costs" `Quick test_negative_cost_edge;
          Alcotest.test_case "stop threshold" `Quick test_stop_threshold;
          Alcotest.test_case "disconnected" `Quick test_disconnected;
          Alcotest.test_case "decompose" `Quick test_decompose_paths;
          Alcotest.test_case "solve twice" `Quick test_solve_twice_rejected;
          Alcotest.test_case "edge validation" `Quick test_add_edge_validation ] );
      ( "maxflow",
        [ Alcotest.test_case "dinic simple" `Quick test_dinic_simple;
          Alcotest.test_case "dinic disconnected" `Quick test_dinic_disconnected;
          Alcotest.test_case "min cut" `Quick test_dinic_min_cut ] );
      ( "cross_check",
        [ Alcotest.test_case "mcmf = spfa" `Quick test_mcmf_agrees_with_spfa;
          Alcotest.test_case "mcmf flow = dinic" `Quick test_mcmf_flow_equals_dinic ] );
      ( "mcmf_grid",
        [ Alcotest.test_case "solve basics" `Quick test_grid_solve_basics;
          Alcotest.test_case "reset shares structure" `Quick test_grid_reset_shares_structure;
          Alcotest.test_case "build validation" `Quick test_grid_build_validation;
          Alcotest.test_case "budget starvation" `Quick test_grid_budget_starvation;
          Alcotest.test_case "workspace stats per round" `Quick
            test_grid_workspace_stats_rounds;
          Alcotest.test_case "grid = mcmf = dinic" `Quick
            test_grid_agrees_with_general_solvers;
          Alcotest.test_case "long chain decompose" `Quick test_mcmf_long_chain_decompose ] );
      ( "escape",
        [ Alcotest.test_case "single cluster" `Quick test_escape_single_cluster;
          Alcotest.test_case "two disjoint" `Quick test_escape_two_clusters_disjoint;
          Alcotest.test_case "avoids claimed" `Quick test_escape_avoids_claimed;
          Alcotest.test_case "pin shortage" `Quick test_escape_more_clusters_than_pins;
          Alcotest.test_case "max routed dominates" `Quick
            test_escape_prefers_max_routed_over_length;
          Alcotest.test_case "validation" `Quick test_escape_validation;
          Alcotest.test_case "total length" `Quick test_escape_total_length;
          Alcotest.test_case "routed count = max-flow bound" `Quick
            test_escape_matches_feasibility_bound;
          Alcotest.test_case "three-way solver agreement" `Quick
            test_escape_three_way_agreement;
          Alcotest.test_case "duplicate cluster_idx rejected" `Quick
            test_escape_duplicate_idx_rejected;
          Alcotest.test_case "workspace reuse" `Quick test_escape_workspace_reuse;
          Alcotest.test_case "serpentine long-path regression" `Quick
            test_escape_long_path_regression ] );
      ("properties", qcheck_cases) ]
