(* Fault injection and online repair.

   The contract under test: injection is a pure function of (seed,
   solution); repair touches only the clusters a fault dirties — every
   untouched cluster comes back byte-identical — and its result passes the
   independent validator; an unrepairable fault quarantines its valves
   instead of raising; and a starved repair degrades instead of hanging. *)

open Pacor_geom
open Pacor_valve
open Pacor_fault

module Rng = Pacor_designs.Rng
module Budget = Pacor_route.Budget

(* One routed FPVA baseline, shared across tests (routing it is the
   expensive part; repair itself is cheap). *)
let baseline =
  lazy
    (let spec = List.hd (Pacor_designs.Fpva.family ()) in
     let problem = Pacor_designs.Fpva.generate_exn spec in
     match Pacor.Engine.run problem with
     | Ok sol -> sol
     | Error e -> Alcotest.failf "fpva baseline failed at %s: %s" e.stage e.message)

let cluster_id (c : Pacor.Solution.routed_cluster) =
  c.routed.Pacor.Routed.cluster.Cluster.id

let find_cluster (sol : Pacor.Solution.t) id =
  List.find_opt (fun c -> cluster_id c = id) sol.Pacor.Solution.clusters

let cluster_cells (c : Pacor.Solution.routed_cluster) =
  let internal = Point.Set.elements c.routed.Pacor.Routed.claimed in
  match c.escape with
  | None -> internal
  | Some (e : Pacor_flow.Escape.routed) ->
    internal @ Pacor_grid.Path.points e.path

(* ---------- FPVA generator ---------- *)

let test_fpva_family_routes () =
  List.iter
    (fun spec ->
       match Pacor_designs.Fpva.generate spec with
       | Error e -> Alcotest.failf "%s: %s" spec.Pacor_designs.Fpva.name e
       | Ok p ->
         Alcotest.(check int)
           (spec.Pacor_designs.Fpva.name ^ " valves")
           (spec.Pacor_designs.Fpva.rows * spec.Pacor_designs.Fpva.cols)
           (Pacor.Problem.valve_count p))
    (Pacor_designs.Fpva.family ());
  (* The smallest member routes completely with every pair matched. *)
  let sol = Lazy.force baseline in
  let stats = Pacor.Solution.stats sol in
  Alcotest.(check (float 1e-9)) "completion" 1.0 stats.completion;
  Alcotest.(check bool) "validates" true
    (Result.is_ok (Pacor.Solution.validate sol))

let test_fpva_deterministic () =
  let spec = List.hd (Pacor_designs.Fpva.family ()) in
  let p1 = Pacor_designs.Fpva.generate_exn spec in
  let p2 = Pacor_designs.Fpva.generate_exn spec in
  Alcotest.(check string) "same instance"
    (Pacor.Problem_io.to_string p1)
    (Pacor.Problem_io.to_string p2)

(* ---------- injection ---------- *)

let test_inject_deterministic () =
  let sol = Lazy.force baseline in
  let draw () =
    Fault.inject ~rng:(Rng.create ~seed:77L) ~rate:0.2 sol
  in
  let a = draw () and b = draw () in
  Alcotest.(check int) "same count" (List.length a) (List.length b);
  List.iter2
    (fun fa fb ->
       Alcotest.(check bool) (Format.asprintf "%a" Fault.pp fa) true
         (Fault.equal fa fb))
    a b;
  Alcotest.(check bool) "different seed differs" true
    (not
       (List.for_all2 Fault.equal a
          (Fault.inject ~rng:(Rng.create ~seed:78L) ~rate:0.2 sol)))

let test_inject_sites_distinct_and_on_chip () =
  let sol = Lazy.force baseline in
  let faults = Fault.inject ~rng:(Rng.create ~seed:5L) ~rate:0.5 sol in
  let valves = sol.Pacor.Solution.problem.Pacor.Problem.valves in
  let valve_cells = List.map (fun (v : Valve.t) -> v.position) valves in
  let pins = sol.Pacor.Solution.problem.Pacor.Problem.pins in
  (* Cell/segment faults never land on a valve cell or a candidate pin. *)
  List.iter
    (fun p ->
       Alcotest.(check bool) "off valve cells" false
         (List.exists (Point.equal p) valve_cells);
       Alcotest.(check bool) "off pins" false (List.exists (Point.equal p) pins))
    (Fault.blocked_cells faults);
  (* Stuck ids are real valves, each at most once. *)
  let stuck = Fault.stuck_valves faults in
  Alcotest.(check int) "stuck ids unique" (List.length stuck)
    (List.length (List.sort_uniq Int.compare stuck));
  List.iter
    (fun id ->
       Alcotest.(check bool) "stuck id exists" true
         (List.exists (fun (v : Valve.t) -> v.id = id) valves))
    stuck

let test_inject_zero_rate () =
  let sol = Lazy.force baseline in
  Alcotest.(check int) "no faults" 0
    (List.length (Fault.inject ~rng:(Rng.create ~seed:1L) ~rate:0.0 sol))

(* ---------- spec parsing ---------- *)

let test_parse_spec () =
  (match Fault.parse_spec "rate=0.05,seed=42,stuck=3,stuck-open=7,cell=10:4,leak=2:3-2:4" with
   | Error e -> Alcotest.failf "good spec rejected: %s" e
   | Ok spec ->
     Alcotest.(check (float 1e-9)) "rate" 0.05 spec.Fault.rate;
     Alcotest.(check int64) "seed" 42L spec.Fault.seed;
     Alcotest.(check int) "explicit faults" 4 (List.length spec.Fault.explicit);
     Alcotest.(check bool) "stuck closed" true
       (List.exists
          (Fault.equal (Fault.Stuck_valve { valve = 3; stuck_open = false }))
          spec.Fault.explicit);
     Alcotest.(check bool) "blocked cell" true
       (List.exists
          (Fault.equal (Fault.Blocked_cell (Point.make 10 4)))
          spec.Fault.explicit));
  List.iter
    (fun bad ->
       Alcotest.(check bool) ("rejects " ^ bad) true
         (Result.is_error (Fault.parse_spec bad)))
    [ "rate=banana"; "seed=x"; "stuck=-1"; "cell=1"; "cell=a:b";
      "leak=1:1-4:4" (* not adjacent *); "frobnicate=1" ]

(* ---------- targeted repairs, one per fault kind ---------- *)

(* A deterministic fault aimed at the baseline's own structure: the first
   multi-valve cluster and a non-valve cell on one of its channels. *)
let first_multi (sol : Pacor.Solution.t) =
  match
    List.find_opt
      (fun (c : Pacor.Solution.routed_cluster) ->
         Cluster.size c.routed.Pacor.Routed.cluster >= 2)
      sol.Pacor.Solution.clusters
  with
  | Some c -> c
  | None -> Alcotest.fail "baseline has no multi-valve cluster"

let channel_cell (c : Pacor.Solution.routed_cluster) =
  let valve_pts = Cluster.positions c.routed.Pacor.Routed.cluster in
  match
    List.find_opt
      (fun p -> not (List.exists (Point.equal p) valve_pts))
      (List.concat_map Pacor_grid.Path.points c.routed.Pacor.Routed.paths)
  with
  | Some p -> p
  | None -> Alcotest.fail "cluster has no non-valve channel cell"

let check_repair ?(expect_missing_valves = []) (sol : Pacor.Solution.t) faults =
  match Repair.run ~faults sol with
  | Error e -> Alcotest.failf "repair errored: %s" e
  | Ok rep ->
    (match Pacor.Solution.validate rep.Repair.solution with
     | Ok () -> ()
     | Error es -> Alcotest.failf "repaired solution invalid: %s" (List.hd es));
    (* Untouched clusters are reused byte-identically. *)
    let dirty = rep.Repair.dirty in
    List.iter
      (fun (c : Pacor.Solution.routed_cluster) ->
         let id = cluster_id c in
         if not (List.mem id dirty) then
           match find_cluster rep.Repair.solution id with
           | None -> Alcotest.failf "untouched cluster %d vanished" id
           | Some c' ->
             Alcotest.(check bool)
               (Printf.sprintf "cluster %d paths identical" id)
               true
               (c.routed.Pacor.Routed.paths = c'.routed.Pacor.Routed.paths
                && c.escape == c'.escape))
      sol.Pacor.Solution.clusters;
    (* Dead valves are gone from the repaired instance. *)
    List.iter
      (fun id ->
         Alcotest.(check bool) (Printf.sprintf "valve %d retired" id) false
           (List.exists
              (fun (v : Valve.t) -> v.id = id)
              rep.Repair.solution.Pacor.Solution.problem.Pacor.Problem.valves))
      expect_missing_valves;
    rep

let test_repair_stuck_valve () =
  let sol = Lazy.force baseline in
  let c = first_multi sol in
  let victim = List.hd (Cluster.valve_ids c.routed.Pacor.Routed.cluster) in
  let rep =
    check_repair ~expect_missing_valves:[ victim ] sol
      [ Fault.Stuck_valve { valve = victim; stuck_open = false } ]
  in
  Alcotest.(check (list int)) "dirties exactly the owner" [ cluster_id c ]
    rep.Repair.dirty;
  Alcotest.(check int) "nothing quarantined" 0
    (List.length rep.Repair.quarantined)

let test_repair_blocked_cell () =
  let sol = Lazy.force baseline in
  let c = first_multi sol in
  let cell = channel_cell c in
  let rep = check_repair sol [ Fault.Blocked_cell cell ] in
  Alcotest.(check bool) "owner is dirty" true
    (List.mem (cluster_id c) rep.Repair.dirty);
  (* The faulted cell is an obstacle of the repaired instance, so no
     channel can cross it any more. *)
  List.iter
    (fun rc ->
       Alcotest.(check bool) "cell avoided" false
         (List.exists (Point.equal cell) (cluster_cells rc)))
    rep.Repair.solution.Pacor.Solution.clusters

let test_repair_leaky_segment () =
  let sol = Lazy.force baseline in
  let c = first_multi sol in
  let path = List.hd c.routed.Pacor.Routed.paths in
  match Pacor_grid.Path.points path with
  | a :: b :: _ ->
    let rep = check_repair sol [ Fault.Leaky_segment { a; b } ] in
    (* Both endpoints are retired, even the valve-adjacent one. *)
    let cells = List.concat_map cluster_cells rep.Repair.solution.Pacor.Solution.clusters in
    List.iter
      (fun p ->
         if not (List.exists (Point.equal p)
                   (List.map (fun (v : Valve.t) -> v.position)
                      rep.Repair.solution.Pacor.Solution.problem.Pacor.Problem.valves))
         then
           Alcotest.(check bool) "leak endpoint avoided" false
             (List.exists (Point.equal p) cells))
      [ a; b ]
  | _ -> Alcotest.fail "first channel path is trivial"

(* ---------- quarantine: a sealed valve is retired, never raised ---------- *)

let test_unrepairable_quarantines () =
  (* Two singleton valves; the fault walls one in completely. Repair must
     quarantine it and return a valid solution over the survivor. *)
  let grid = Pacor_grid.Routing_grid.create ~width:11 ~height:11 () in
  let seq = [| Pacor_valve.Activation.Open |] in
  let v0 = Valve.make ~id:0 ~position:(Point.make 5 5) ~sequence:seq in
  let v1 = Valve.make ~id:1 ~position:(Point.make 2 8) ~sequence:seq in
  let pins = [ Point.make 0 5; Point.make 10 5; Point.make 5 0; Point.make 0 8 ] in
  let problem =
    Pacor.Problem.create_exn ~grid ~valves:[ v0; v1 ] ~lm_clusters:[] ~pins ()
  in
  match Pacor.Engine.run problem with
  | Error e -> Alcotest.failf "seal baseline: %s" e.message
  | Ok sol ->
    let wall =
      [ Fault.Blocked_cell (Point.make 4 5); Fault.Blocked_cell (Point.make 6 5);
        Fault.Blocked_cell (Point.make 5 4); Fault.Blocked_cell (Point.make 5 6) ]
    in
    (match Repair.run ~faults:wall sol with
     | Error e -> Alcotest.failf "sealed repair errored instead of quarantining: %s" e
     | Ok rep ->
       Alcotest.(check (list int)) "sealed valve quarantined" [ 0 ]
         rep.Repair.quarantined;
       Alcotest.(check bool) "an Unrepairable report exists" true
         (List.exists
            (fun (r : Repair.report) ->
               match r.outcome with
               | Repair.Unrepairable _ -> true
               | Repair.Repaired | Repair.Degraded _ -> false)
            rep.Repair.reports);
       (match Pacor.Solution.validate rep.Repair.solution with
        | Ok () -> ()
        | Error es ->
          Alcotest.failf "post-quarantine solution invalid: %s" (List.hd es));
       Alcotest.(check int) "survivor still routed" 1
         (List.length rep.Repair.solution.Pacor.Solution.problem.Pacor.Problem.valves))

(* ---------- starved repair degrades, never hangs ---------- *)

let test_starved_repair_returns () =
  let sol = Lazy.force baseline in
  let faults = Fault.inject ~rng:(Rng.create ~seed:9L) ~rate:0.2 sol in
  let limits = Budget.limits ~max_expansions:1 () in
  let t0 = Unix.gettimeofday () in
  match Repair.run ~limits ~faults sol with
  | Error e -> Alcotest.failf "starved repair errored: %s" e
  | Ok rep ->
    Alcotest.(check bool) "prompt" true (Unix.gettimeofday () -. t0 < 10.0);
    (* Whatever it managed must still validate; starvation shows up as
       degradation/quarantine, not as a broken solution. *)
    (match Pacor.Solution.validate rep.Repair.solution with
     | Ok () -> ()
     | Error es -> Alcotest.failf "starved result invalid: %s" (List.hd es))

(* ---------- structural impossibility is an Error ---------- *)

let test_total_loss_is_error () =
  let sol = Lazy.force baseline in
  let all_stuck =
    List.map
      (fun (v : Valve.t) -> Fault.Stuck_valve { valve = v.id; stuck_open = true })
      sol.Pacor.Solution.problem.Pacor.Problem.valves
  in
  Alcotest.(check bool) "no surviving valve is an Error" true
    (Result.is_error (Repair.run ~faults:all_stuck sol))

(* ---------- the ISSUE property ---------- *)

let prop_repair_sound =
  QCheck.Test.make ~name:"repair validates, reuses untouched paths, avoids faults"
    ~count:30
    QCheck.(pair (int_range 1 10_000) (int_range 1 4))
    (fun (seed, k) ->
       let sol : Pacor.Solution.t = Lazy.force baseline in
       let rng = Rng.create ~seed:(Int64.of_int seed) in
       let valve_count =
         List.length sol.Pacor.Solution.problem.Pacor.Problem.valves
       in
       let rate = float_of_int k /. float_of_int valve_count in
       let faults = Fault.inject ~rng ~rate sol in
       match Repair.run ~faults sol with
       | Error _ ->
         (* Structural impossibility can only come from losing every valve,
            impossible at these rates on the baseline. *)
         QCheck.Test.fail_reportf "repair errored at seed %d" seed
       | Ok rep ->
         (* 1: the repaired solution passes the independent validator. *)
         (match Pacor.Solution.validate rep.Repair.solution with
          | Ok () -> ()
          | Error es ->
            QCheck.Test.fail_reportf "seed %d: invalid repair: %s" seed
              (List.hd es));
         (* 2: untouched clusters are byte-identical. *)
         List.iter
           (fun (c : Pacor.Solution.routed_cluster) ->
              let id = cluster_id c in
              if not (List.mem id rep.Repair.dirty) then
                match find_cluster rep.Repair.solution id with
                | Some c' when
                    c.routed.Pacor.Routed.paths = c'.routed.Pacor.Routed.paths
                    && c.escape == c'.escape -> ()
                | Some _ ->
                  QCheck.Test.fail_reportf "seed %d: untouched cluster %d changed"
                    seed id
                | None ->
                  QCheck.Test.fail_reportf "seed %d: untouched cluster %d vanished"
                    seed id)
           sol.Pacor.Solution.clusters;
         (* 3: never Repaired while a channel still crosses a faulted cell. *)
         let blocked = Fault.blocked_cells faults in
         let crossed p =
           List.exists
             (fun rc -> List.exists (Point.equal p) (cluster_cells rc))
             rep.Repair.solution.Pacor.Solution.clusters
         in
         List.iter
           (fun (r : Repair.report) ->
              match r.outcome with
              | Repair.Repaired ->
                let cells = Fault.blocked_cells [ r.fault ] in
                List.iter
                  (fun p ->
                     if crossed p then
                       QCheck.Test.fail_reportf
                         "seed %d: fault reported Repaired but cell (%d,%d) \
                          still carries a channel"
                         seed p.Point.x p.Point.y)
                  cells
              | Repair.Degraded _ | Repair.Unrepairable _ -> ())
           rep.Repair.reports;
         ignore blocked;
         true)

let () =
  Alcotest.run "fault"
    [ ( "fpva",
        [ Alcotest.test_case "family generates and routes" `Quick
            test_fpva_family_routes;
          Alcotest.test_case "deterministic" `Quick test_fpva_deterministic ] );
      ( "inject",
        [ Alcotest.test_case "deterministic" `Quick test_inject_deterministic;
          Alcotest.test_case "sites distinct and legal" `Quick
            test_inject_sites_distinct_and_on_chip;
          Alcotest.test_case "zero rate" `Quick test_inject_zero_rate;
          Alcotest.test_case "spec parsing" `Quick test_parse_spec ] );
      ( "repair",
        [ Alcotest.test_case "stuck valve" `Quick test_repair_stuck_valve;
          Alcotest.test_case "blocked cell" `Quick test_repair_blocked_cell;
          Alcotest.test_case "leaky segment" `Quick test_repair_leaky_segment;
          Alcotest.test_case "sealed valve quarantined" `Quick
            test_unrepairable_quarantines;
          Alcotest.test_case "starved repair returns" `Quick
            test_starved_repair_returns;
          Alcotest.test_case "total loss is an error" `Quick
            test_total_loss_is_error ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_repair_sound ] ) ]
