open Pacor_graphs

(* ---------- Pqueue ---------- *)

let test_pqueue_order () =
  let q = Pqueue.create () in
  List.iter (fun p -> Pqueue.push q ~prio:p p) [ 5; 1; 4; 2; 3 ];
  let drained = ref [] in
  let rec drain () =
    match Pqueue.pop q with
    | None -> ()
    | Some (p, _) ->
      drained := p :: !drained;
      drain ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted ascending" [ 1; 2; 3; 4; 5 ] (List.rev !drained)

let test_pqueue_empty () =
  let q = Pqueue.create () in
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q);
  Alcotest.(check bool) "pop none" true (Pqueue.pop q = None);
  Alcotest.(check bool) "peek none" true (Pqueue.peek q = None);
  Pqueue.push q ~prio:1 "x";
  Alcotest.(check bool) "peek some" true (Pqueue.peek q = Some (1, "x"));
  Alcotest.(check int) "size" 1 (Pqueue.size q);
  Pqueue.clear q;
  Alcotest.(check bool) "cleared" true (Pqueue.is_empty q)

let test_pqueue_duplicates () =
  let q = Pqueue.create () in
  Pqueue.push q ~prio:2 "a";
  Pqueue.push q ~prio:2 "b";
  Pqueue.push q ~prio:1 "c";
  (match Pqueue.pop q with
   | Some (1, "c") -> ()
   | _ -> Alcotest.fail "expected c first");
  Alcotest.(check int) "two left" 2 (Pqueue.size q)

(* Interleaved push/pop/clear across the grow boundary: [size]/[is_empty]
   must stay consistent and ordering must survive a clear-and-reuse (the
   sentinel retention fix rewrites vacated slots — this pins down that the
   rewrite never corrupts the live prefix). *)
let test_pqueue_interleaved () =
  let q = Pqueue.create () in
  List.iter (fun p -> Pqueue.push q ~prio:p p) [ 9; 3; 7; 1 ];
  Alcotest.(check int) "size after pushes" 4 (Pqueue.size q);
  Alcotest.(check bool) "pop min" true (Pqueue.pop q = Some (1, 1));
  Alcotest.(check bool) "pop next" true (Pqueue.pop q = Some (3, 3));
  Alcotest.(check int) "size after pops" 2 (Pqueue.size q);
  Alcotest.(check bool) "not empty" false (Pqueue.is_empty q);
  (* Push past the initial capacity while partially drained. *)
  List.iter (fun p -> Pqueue.push q ~prio:p p) (List.init 40 (fun i -> 100 - i));
  Alcotest.(check int) "size after growth" 42 (Pqueue.size q);
  Alcotest.(check bool) "old min still first" true (Pqueue.pop q = Some (7, 7));
  Pqueue.clear q;
  Alcotest.(check bool) "cleared" true (Pqueue.is_empty q);
  Alcotest.(check int) "size zero" 0 (Pqueue.size q);
  Alcotest.(check bool) "pop on cleared" true (Pqueue.pop q = None);
  (* Reuse after clear: ordering still correct. *)
  List.iter (fun p -> Pqueue.push q ~prio:p p) [ 5; 2; 8 ];
  Alcotest.(check bool) "reuse min" true (Pqueue.pop q = Some (2, 2));
  Alcotest.(check bool) "reuse next" true (Pqueue.pop q = Some (5, 5));
  Alcotest.(check bool) "reuse last" true (Pqueue.pop q = Some (8, 8));
  Alcotest.(check bool) "drained" true (Pqueue.is_empty q)

(* ---------- Union-find ---------- *)

let test_union_find () =
  let uf = Union_find.create 5 in
  Alcotest.(check int) "initial classes" 5 (Union_find.count uf);
  Alcotest.(check bool) "union succeeds" true (Union_find.union uf 0 1);
  Alcotest.(check bool) "repeat union fails" false (Union_find.union uf 1 0);
  Alcotest.(check bool) "same" true (Union_find.same uf 0 1);
  Alcotest.(check bool) "not same" false (Union_find.same uf 0 2);
  ignore (Union_find.union uf 2 3);
  ignore (Union_find.union uf 0 3);
  Alcotest.(check int) "classes after unions" 2 (Union_find.count uf);
  Alcotest.(check bool) "transitively same" true (Union_find.same uf 1 2)

(* ---------- MST ---------- *)

(* Brute-force MST weight by enumerating all spanning trees of small n via
   Prufer-free approach: enumerate all edge subsets of size n-1. *)
let brute_mst_weight ~n ~weight =
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      edges := (i, j, weight i j) :: !edges
    done
  done;
  let all = Array.of_list !edges in
  let m = Array.length all in
  let best = ref max_int in
  (* Enumerate bitmasks with n-1 edges. *)
  for mask = 0 to (1 lsl m) - 1 do
    let popcount = ref 0 and w = ref 0 in
    for b = 0 to m - 1 do
      if mask land (1 lsl b) <> 0 then begin
        incr popcount;
        let _, _, ew = all.(b) in
        w := !w + ew
      end
    done;
    if !popcount = n - 1 && !w < !best then begin
      let uf = Union_find.create n in
      let connected = ref 0 in
      for b = 0 to m - 1 do
        if mask land (1 lsl b) <> 0 then begin
          let i, j, _ = all.(b) in
          if Union_find.union uf i j then incr connected
        end
      done;
      if !connected = n - 1 then best := !w
    end
  done;
  !best

let test_prim_matches_brute_force () =
  let rng = ref 42 in
  let next () =
    rng := (!rng * 1103515245) + 12345;
    abs !rng mod 50
  in
  for _trial = 1 to 10 do
    let n = 5 in
    let w = Array.make_matrix n n 0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let v = 1 + next () in
        w.(i).(j) <- v;
        w.(j).(i) <- v
      done
    done;
    let weight i j = w.(i).(j) in
    let mst = Mst.prim ~n ~weight in
    Alcotest.(check bool) "spanning tree" true (Mst.is_spanning_tree ~n mst);
    Alcotest.(check int) "optimal weight" (brute_mst_weight ~n ~weight)
      (Mst.total_weight mst)
  done

let test_prim_trivial () =
  Alcotest.(check (list (of_pp (fun _ _ -> ())))) "empty" [] (Mst.prim ~n:0 ~weight:(fun _ _ -> 0));
  Alcotest.(check int) "single" 0 (List.length (Mst.prim ~n:1 ~weight:(fun _ _ -> 0)));
  Alcotest.(check int) "pair" 1 (List.length (Mst.prim ~n:2 ~weight:(fun _ _ -> 7)))

let test_kruskal_matches_prim () =
  let n = 6 in
  let weight i j = abs ((i * 7) - (j * 3)) + 1 in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      edges := { Mst.a = i; b = j; w = weight i j } :: !edges
    done
  done;
  let k = Mst.kruskal ~n !edges in
  let p = Mst.prim ~n ~weight in
  Alcotest.(check bool) "kruskal spanning" true (Mst.is_spanning_tree ~n k);
  Alcotest.(check int) "same weight" (Mst.total_weight p) (Mst.total_weight k)

(* ---------- Clique ---------- *)

let graph_of_edges n edges =
  let m = Array.make_matrix n n false in
  List.iter
    (fun (i, j) ->
       m.(i).(j) <- true;
       m.(j).(i) <- true)
    edges;
  Clique.of_matrix m

let brute_max_clique g =
  let best = ref [] in
  let n = g.Clique.n in
  for mask = 0 to (1 lsl n) - 1 do
    let members = List.filter (fun v -> mask land (1 lsl v) <> 0) (List.init n Fun.id) in
    if Clique.is_clique g members && List.length members > List.length !best then
      best := members
  done;
  !best

let test_max_clique_simple () =
  (* Triangle 0-1-2 plus pendant 3. *)
  let g = graph_of_edges 4 [ (0, 1); (1, 2); (0, 2); (2, 3) ] in
  Alcotest.(check (list int)) "triangle" [ 0; 1; 2 ] (Clique.max_clique g)

let test_max_clique_random_vs_brute () =
  let rng = ref 7 in
  let next () =
    rng := (!rng * 1103515245) + 12345;
    abs !rng
  in
  for _trial = 1 to 15 do
    let n = 9 in
    let edges = ref [] in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if next () mod 100 < 45 then edges := (i, j) :: !edges
      done
    done;
    let g = graph_of_edges n !edges in
    let exact = Clique.max_clique g in
    Alcotest.(check bool) "is clique" true (Clique.is_clique g exact);
    Alcotest.(check int) "max size" (List.length (brute_max_clique g)) (List.length exact)
  done

let test_greedy_clique_is_clique () =
  let g = graph_of_edges 6 [ (0, 1); (1, 2); (0, 2); (3, 4); (2, 3) ] in
  let c = Clique.greedy_clique g in
  Alcotest.(check bool) "greedy valid" true (Clique.is_clique g c);
  Alcotest.(check bool) "non-empty" true (c <> [])

let test_max_weight_clique () =
  (* Triangle with strongly negative edges: best weighted clique is a
     single heavy node. *)
  let g = graph_of_edges 3 [ (0, 1); (1, 2); (0, 2) ] in
  let w =
    { Clique.graph = g;
      node_weight = (fun v -> float_of_int (v + 1));
      edge_weight = (fun _ _ -> -100.0) }
  in
  let clique, weight = Clique.max_weight_clique w in
  Alcotest.(check (list int)) "heaviest node" [ 2 ] clique;
  Alcotest.(check (float 1e-9)) "weight" 3.0 weight

let test_max_weight_clique_positive_edges () =
  let g = graph_of_edges 4 [ (0, 1); (1, 2); (0, 2); (2, 3) ] in
  let w =
    { Clique.graph = g;
      node_weight = (fun _ -> 1.0);
      edge_weight = (fun _ _ -> 0.5) }
  in
  let clique, weight = Clique.max_weight_clique w in
  Alcotest.(check (list int)) "triangle wins" [ 0; 1; 2 ] clique;
  Alcotest.(check (float 1e-9)) "weight 3 + 1.5" 4.5 weight

let test_max_weight_clique_forced () =
  let g = graph_of_edges 3 [ (0, 1); (1, 2); (0, 2) ] in
  let w =
    { Clique.graph = g;
      node_weight = (fun v -> float_of_int (v + 1));
      edge_weight = (fun _ _ -> -100.0) }
  in
  let clique, _ = Clique.max_weight_clique ~forced:[ 0 ] w in
  Alcotest.(check bool) "contains forced" true (List.mem 0 clique)

let brute_max_weight_clique w =
  let g = w.Clique.graph in
  let n = g.Clique.n in
  let best = ref ([], neg_infinity) in
  for mask = 0 to (1 lsl n) - 1 do
    let members = List.filter (fun v -> mask land (1 lsl v) <> 0) (List.init n Fun.id) in
    if Clique.is_clique g members then begin
      let cw = Clique.clique_weight w members in
      if cw > snd !best then best := (members, cw)
    end
  done;
  !best

let test_max_weight_clique_vs_brute () =
  let rng = ref 13 in
  let next () =
    rng := (!rng * 1103515245) + 12345;
    abs !rng
  in
  for _trial = 1 to 10 do
    let n = 7 in
    let edges = ref [] in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if next () mod 100 < 55 then edges := (i, j) :: !edges
      done
    done;
    let g = graph_of_edges n !edges in
    let nw = Array.init n (fun _ -> float_of_int (next () mod 21 - 10)) in
    let ew = Array.make_matrix n n 0.0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let v = float_of_int (next () mod 11 - 5) in
        ew.(i).(j) <- v;
        ew.(j).(i) <- v
      done
    done;
    let w =
      { Clique.graph = g;
        node_weight = (fun v -> nw.(v));
        edge_weight = (fun i j -> ew.(i).(j)) }
    in
    let _, exact_w = Clique.max_weight_clique w in
    let _, brute_w = brute_max_weight_clique w in
    Alcotest.(check (float 1e-9)) "optimal weight" brute_w exact_w
  done

(* ---------- QCheck ---------- *)

let prop_pqueue_sorted =
  QCheck.Test.make ~name:"pqueue drains sorted" ~count:200
    (QCheck.list (QCheck.int_range (-1000) 1000))
    (fun xs ->
       let q = Pqueue.create () in
       List.iter (fun x -> Pqueue.push q ~prio:x x) xs;
       let rec drain acc =
         match Pqueue.pop q with None -> List.rev acc | Some (p, _) -> drain (p :: acc)
       in
       drain [] = List.sort Int.compare xs)

let prop_mst_edge_count =
  QCheck.Test.make ~name:"prim returns n-1 edges" ~count:100 (QCheck.int_range 1 20)
    (fun n ->
       let weight i j = ((i + j) mod 7) + 1 in
       let mst = Mst.prim ~n ~weight in
       Mst.is_spanning_tree ~n mst || (n = 1 && mst = []))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest [ prop_pqueue_sorted; prop_mst_edge_count ]

let () =
  Alcotest.run "graphs"
    [ ( "pqueue",
        [ Alcotest.test_case "ordering" `Quick test_pqueue_order;
          Alcotest.test_case "empty/peek/clear" `Quick test_pqueue_empty;
          Alcotest.test_case "duplicates" `Quick test_pqueue_duplicates;
          Alcotest.test_case "interleaved push/pop/clear" `Quick test_pqueue_interleaved ] );
      ("union_find", [ Alcotest.test_case "basics" `Quick test_union_find ]);
      ( "mst",
        [ Alcotest.test_case "prim vs brute force" `Slow test_prim_matches_brute_force;
          Alcotest.test_case "trivial sizes" `Quick test_prim_trivial;
          Alcotest.test_case "kruskal = prim weight" `Quick test_kruskal_matches_prim ] );
      ( "clique",
        [ Alcotest.test_case "simple" `Quick test_max_clique_simple;
          Alcotest.test_case "random vs brute force" `Slow test_max_clique_random_vs_brute;
          Alcotest.test_case "greedy valid" `Quick test_greedy_clique_is_clique;
          Alcotest.test_case "weighted negative edges" `Quick test_max_weight_clique;
          Alcotest.test_case "weighted positive edges" `Quick
            test_max_weight_clique_positive_edges;
          Alcotest.test_case "forced vertices" `Quick test_max_weight_clique_forced;
          Alcotest.test_case "weighted vs brute force" `Slow test_max_weight_clique_vs_brute ] );
      ("properties", qcheck_cases) ]
