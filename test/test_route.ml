open Pacor_geom
open Pacor_grid
open Pacor_route

let grid ?(obstacles = []) w h = Routing_grid.create ~width:w ~height:h ~obstacles ()

let free_spec obstacles = Astar.obstacle_spec obstacles

(* ---------- A* ---------- *)

let test_astar_straight_line () =
  let g = grid 10 10 in
  let obs = Routing_grid.fresh_work_map g in
  match Astar.shortest ~grid:g ~obstacles:obs (Point.make 1 1) (Point.make 6 1) with
  | None -> Alcotest.fail "expected a path"
  | Some p ->
    Alcotest.(check int) "manhattan optimal" 5 (Path.length p);
    Alcotest.(check bool) "starts at source" true (Point.equal (Path.source p) (Point.make 1 1));
    Alcotest.(check bool) "ends at target" true (Point.equal (Path.target p) (Point.make 6 1))

let test_astar_around_wall () =
  (* Vertical wall with one gap. *)
  let wall = Rect.make ~x0:4 ~y0:0 ~x1:4 ~y1:7 in
  let g = grid ~obstacles:[ wall ] 10 10 in
  let obs = Routing_grid.fresh_work_map g in
  match Astar.shortest ~grid:g ~obstacles:obs (Point.make 1 1) (Point.make 8 1) with
  | None -> Alcotest.fail "expected a path"
  | Some p ->
    (* Must pass through the gap row (y >= 8). *)
    Alcotest.(check bool) "detours above wall" true
      (List.exists (fun (q : Point.t) -> q.y >= 8) (Path.points p));
    Alcotest.(check int) "optimal detour length" 21 (Path.length p)

let test_astar_blocked_completely () =
  let wall = Rect.make ~x0:4 ~y0:0 ~x1:4 ~y1:9 in
  let g = grid ~obstacles:[ wall ] 10 10 in
  let obs = Routing_grid.fresh_work_map g in
  Alcotest.(check bool) "no path" true
    (Astar.shortest ~grid:g ~obstacles:obs (Point.make 1 1) (Point.make 8 1) = None)

let test_astar_endpoints_exempt () =
  (* Source and target sit on blocked cells: still routable. *)
  let g = grid 8 8 in
  let obs = Routing_grid.fresh_work_map g in
  Obstacle_map.block obs (Point.make 1 1);
  Obstacle_map.block obs (Point.make 5 1);
  match Astar.shortest ~grid:g ~obstacles:obs (Point.make 1 1) (Point.make 5 1) with
  | None -> Alcotest.fail "expected path despite blocked endpoints"
  | Some p -> Alcotest.(check int) "length" 4 (Path.length p)

let test_astar_multi_source_target () =
  let g = grid 12 12 in
  let spec = free_spec (Routing_grid.fresh_work_map g) in
  let sources = [ Point.make 1 1; Point.make 10 10 ] in
  let targets = [ Point.make 10 1 ] in
  match Astar.search ~grid:g ~spec ~sources ~targets () with
  | None -> Alcotest.fail "expected path"
  | Some p ->
    (* Nearest source to the target is (10,10): distance 9. *)
    Alcotest.(check int) "uses nearest source" 9 (Path.length p)

let test_astar_source_is_target () =
  let g = grid 5 5 in
  let spec = free_spec (Routing_grid.fresh_work_map g) in
  match
    Astar.search ~grid:g ~spec ~sources:[ Point.make 2 2 ] ~targets:[ Point.make 2 2 ] ()
  with
  | Some p -> Alcotest.(check int) "trivial" 0 (Path.length p)
  | None -> Alcotest.fail "expected trivial path"

let test_astar_extra_cost_steers () =
  (* Penalise the straight row so the path detours around it. *)
  let g = grid 10 5 in
  let obs = Routing_grid.fresh_work_map g in
  let spec =
    Astar.point_spec ~grid:g
      ~usable:(fun p -> Obstacle_map.free obs p)
      ~extra_cost:(fun (p : Point.t) ->
        if p.y = 2 && p.x >= 2 && p.x <= 7 then 10 * Astar.cost_scale else 0)
  in
  match
    Astar.search ~grid:g ~spec ~sources:[ Point.make 0 2 ] ~targets:[ Point.make 9 2 ] ()
  with
  | None -> Alcotest.fail "expected path"
  | Some p ->
    Alcotest.(check bool) "avoids penalised row" true
      (List.for_all
         (fun (q : Point.t) -> not (q.y = 2 && q.x >= 2 && q.x <= 7))
         (Path.points p))

(* Counter semantics, pinned by hand on a 3x3 grid: [touched] counts every
   in-bounds neighbour examined, [relaxed] only those passing the
   enterable/not-closed check — so a blocked or already-closed neighbour
   is touched but never relaxed. (The old code counted the relax before
   the check, conflating the two.) Obstacle at (1,0), route (0,0)->(2,0):
   expansion order is 0,3,4,5 then the target; of the 12 in-bounds
   neighbour examinations, 5 hit the obstacle or a closed cell. *)
let test_search_stats_pinned () =
  let g = grid 3 3 in
  let obs = Routing_grid.fresh_work_map g in
  Obstacle_map.block obs (Point.make 1 0);
  let stats = Search_stats.create () in
  let ws = Workspace.create ~stats () in
  (match
     Astar.search ~workspace:ws ~grid:g ~spec:(free_spec obs)
       ~sources:[ Point.make 0 0 ] ~targets:[ Point.make 2 0 ] ()
   with
   | None -> Alcotest.fail "expected detour path"
   | Some p -> Alcotest.(check int) "detour length" 4 (Path.length p));
  let s = Search_stats.snapshot stats in
  Alcotest.(check int) "searches" 1 s.Search_stats.searches;
  Alcotest.(check int) "pops" 5 s.Search_stats.pops;
  Alcotest.(check int) "pushes" 8 s.Search_stats.pushes;
  Alcotest.(check int) "touched" 12 s.Search_stats.touched;
  Alcotest.(check int) "relaxed" 7 s.Search_stats.relaxations;
  Alcotest.(check bool) "relaxed <= touched" true
    (s.Search_stats.relaxations <= s.Search_stats.touched)

(* ---------- Negotiation ---------- *)

let test_negotiation_single_edge () =
  let g = grid 8 8 in
  let out =
    Negotiation.route ~grid:g ~obstacles:(Routing_grid.fresh_work_map g)
      [ { Negotiation.edge_id = 0; ends = (Point.make 1 1, Point.make 6 1) } ]
  in
  Alcotest.(check bool) "success" true out.success;
  Alcotest.(check int) "one path" 1 (List.length out.paths)

let test_negotiation_conflicting_edges () =
  (* Both edges want row 4; the second must detour around the first's
     claimed path (full-span crossing pairs are topologically impossible
     on one layer, so the vertical edge stops short of the boundary and
     can wrap around the horizontal one). *)
  let g = grid 9 9 in
  let edges =
    [ { Negotiation.edge_id = 0; ends = (Point.make 1 4, Point.make 7 4) };
      { Negotiation.edge_id = 1; ends = (Point.make 4 1, Point.make 4 7) } ]
  in
  let out = Negotiation.route ~grid:g ~obstacles:(Routing_grid.fresh_work_map g) edges in
  Alcotest.(check bool) "both routed" true out.success;
  (match out.paths with
   | [ (_, a); (_, b) ] ->
     Alcotest.(check bool) "vertex disjoint" false (Path.shares_vertex a b)
   | _ -> Alcotest.fail "expected two paths")

let test_negotiation_shared_endpoint () =
  (* Two edges of one tree meeting at a merge node. *)
  let g = grid 8 8 in
  let m = Point.make 4 4 in
  let edges =
    [ { Negotiation.edge_id = 0; ends = (Point.make 1 4, m) };
      { Negotiation.edge_id = 1; ends = (m, Point.make 7 4) } ]
  in
  let out = Negotiation.route ~grid:g ~obstacles:(Routing_grid.fresh_work_map g) edges in
  Alcotest.(check bool) "success with shared endpoint" true out.success

let test_negotiation_impossible () =
  (* Second edge's endpoint is walled in. *)
  let walls =
    [ Rect.make ~x0:5 ~y0:5 ~x1:7 ~y1:5; Rect.make ~x0:5 ~y0:7 ~x1:7 ~y1:7;
      Rect.make ~x0:5 ~y0:5 ~x1:5 ~y1:7; Rect.make ~x0:7 ~y0:5 ~x1:7 ~y1:7 ]
  in
  let g = grid ~obstacles:walls 10 10 in
  let edges =
    [ { Negotiation.edge_id = 0; ends = (Point.make 1 1, Point.make 6 6) } ]
  in
  let out = Negotiation.route ~grid:g ~obstacles:(Routing_grid.fresh_work_map g) edges in
  Alcotest.(check bool) "fails" false out.success;
  Alcotest.(check bool) "bounded iterations" true
    (out.iterations <= Negotiation.default_config.gamma)

let test_negotiation_many_parallel () =
  (* Ten horizontal edges on ten rows: trivially disjoint. *)
  let g = grid 12 12 in
  let edges =
    List.init 10 (fun i ->
      { Negotiation.edge_id = i; ends = (Point.make 1 (i + 1), Point.make 10 (i + 1)) })
  in
  let out = Negotiation.route ~grid:g ~obstacles:(Routing_grid.fresh_work_map g) edges in
  Alcotest.(check bool) "all routed" true out.success;
  Alcotest.(check int) "first iteration" 1 out.iterations


let test_negotiation_deterministic () =
  (* Identical inputs produce identical paths — the whole flow relies on
     reproducibility. *)
  let g = grid 12 12 in
  let edges =
    [ { Negotiation.edge_id = 0; ends = (Point.make 1 3, Point.make 10 6) };
      { Negotiation.edge_id = 1; ends = (Point.make 1 6, Point.make 10 3) };
      { Negotiation.edge_id = 2; ends = (Point.make 5 1, Point.make 5 10) } ]
  in
  let run () = Negotiation.route ~grid:g ~obstacles:(Routing_grid.fresh_work_map g) edges in
  let a = run () and b = run () in
  Alcotest.(check int) "same path count" (List.length a.paths) (List.length b.paths);
  List.iter2
    (fun (ia, pa) (ib, pb) ->
       Alcotest.(check int) "same edge id" ia ib;
       Alcotest.(check bool) "same path" true (Path.equal pa pb))
    a.paths b.paths

let test_negotiation_paths_disjoint_invariant () =
  (* On success, every pair of routed paths is vertex-disjoint except at a
     shared endpoint. *)
  let g = grid 14 14 in
  let m = Point.make 7 7 in
  let edges =
    [ { Negotiation.edge_id = 0; ends = (Point.make 2 7, m) };
      { Negotiation.edge_id = 1; ends = (m, Point.make 12 7) };
      { Negotiation.edge_id = 2; ends = (Point.make 2 2, Point.make 12 2) };
      { Negotiation.edge_id = 3; ends = (Point.make 2 12, Point.make 12 12) } ]
  in
  let out = Negotiation.route ~grid:g ~obstacles:(Routing_grid.fresh_work_map g) edges in
  Alcotest.(check bool) "success" true out.success;
  let arr = Array.of_list out.paths in
  for i = 0 to Array.length arr - 1 do
    for j = i + 1 to Array.length arr - 1 do
      let _, pi = arr.(i) and _, pj = arr.(j) in
      let shared =
        List.filter (fun p -> Path.mem pj p) (Path.points pi)
      in
      Alcotest.(check bool) "at most a shared endpoint" true
        (List.length shared <= 1
         && List.for_all
              (fun p ->
                 Point.equal p (Path.source pi) || Point.equal p (Path.target pi))
              shared)
    done
  done

(* ---------- Bounded A* ---------- *)

let test_bounded_meets_bound () =
  let g = grid 10 10 in
  let usable _ = true in
  List.iter
    (fun min_length ->
       match
         Bounded_astar.search ~grid:g ~usable ~source:(Point.make 2 2)
           ~target:(Point.make 6 2) ~min_length ()
       with
       | None -> Alcotest.failf "no path for bound %d" min_length
       | Some p ->
         Alcotest.(check bool)
           (Printf.sprintf "length >= %d" min_length)
           true
           (Path.length p >= min_length);
         (* Parity: any path between these endpoints has even length. *)
         Alcotest.(check int) "parity preserved" 0 (Path.length p mod 2))
    [ 0; 4; 6; 10; 14 ]

let test_bounded_equals_shortest_when_bound_small () =
  let g = grid 10 10 in
  match
    Bounded_astar.search ~grid:g ~usable:(fun _ -> true) ~source:(Point.make 1 1)
      ~target:(Point.make 4 1) ~min_length:0 ()
  with
  | None -> Alcotest.fail "expected path"
  | Some p -> Alcotest.(check int) "shortest" 3 (Path.length p)

let test_bounded_respects_obstacles () =
  let wall = Rect.make ~x0:0 ~y0:3 ~x1:8 ~y1:3 in
  let g = grid ~obstacles:[ wall ] 10 10 in
  let usable i = Routing_grid.free_i g i in
  match
    Bounded_astar.search ~grid:g ~usable ~source:(Point.make 1 1) ~target:(Point.make 5 1)
      ~min_length:8 ()
  with
  | None -> Alcotest.fail "expected path"
  | Some p ->
    Alcotest.(check bool) "length >= 8" true (Path.length p >= 8);
    List.iter
      (fun (q : Point.t) ->
         Alcotest.(check bool) "off wall" true
           (not (q.y = 3 && q.x <= 8)))
      (Path.points p)

let test_bounded_impossible_bound () =
  (* 1x5 corridor: the only simple path has length 4; bound 6 unreachable. *)
  let g = grid 5 1 in
  Alcotest.(check bool) "unreachable bound" true
    (Bounded_astar.search ~grid:g ~usable:(fun _ -> true) ~source:(Point.make 0 0)
       ~target:(Point.make 4 0) ~min_length:6 ()
     = None)

(* ---------- Detour (bump insertion) ---------- *)

let test_lengthen_basic () =
  let g = grid 10 10 in
  ignore g;
  let path = Path.of_points [ Point.make 2 5; Point.make 3 5; Point.make 4 5 ] in
  let usable _ = true in
  (match Detour.lengthen path ~target:6 ~usable with
   | None -> Alcotest.fail "expected lengthened path"
   | Some p ->
     Alcotest.(check int) "length 6" 6 (Path.length p);
     Alcotest.(check bool) "same endpoints" true
       (Point.equal (Path.source p) (Point.make 2 5)
        && Point.equal (Path.target p) (Point.make 4 5)));
  (match Detour.lengthen path ~target:7 ~usable with
   | None -> Alcotest.fail "expected lengthened path"
   | Some p -> Alcotest.(check int) "odd target overshoots to 8" 8 (Path.length p))

let test_lengthen_already_long_enough () =
  let path = Path.of_points [ Point.make 2 5; Point.make 3 5 ] in
  match Detour.lengthen path ~target:1 ~usable:(fun _ -> true) with
  | Some p -> Alcotest.(check int) "unchanged" 1 (Path.length p)
  | None -> Alcotest.fail "expected identity"

let test_lengthen_no_room () =
  (* 3x1 corridor: no space for bumps. *)
  let path = Path.of_points [ Point.make 0 0; Point.make 1 0; Point.make 2 0 ] in
  let usable (p : Point.t) = p.y = 0 && p.x >= 0 && p.x <= 2 in
  Alcotest.(check bool) "no bump possible" true
    (Detour.lengthen path ~target:4 ~usable = None)

let test_lengthen_large_target () =
  let path = Path.of_points [ Point.make 5 5; Point.make 6 5 ] in
  let usable (p : Point.t) = p.x >= 0 && p.x < 20 && p.y >= 0 && p.y < 20 in
  match Detour.lengthen path ~target:21 ~usable with
  | None -> Alcotest.fail "expected heavy detour"
  | Some p ->
    Alcotest.(check bool) "length >= 21" true (Path.length p >= 21);
    Alcotest.(check bool) "overshoot <= 1" true (Path.length p <= 22)

let test_max_bumped_length_corridor () =
  (* 3-wide corridor bounds how long the path can get. *)
  let path = Path.of_points [ Point.make 0 1; Point.make 1 1; Point.make 2 1 ] in
  let usable (p : Point.t) = p.x >= 0 && p.x <= 2 && p.y >= 0 && p.y <= 2 in
  let reach = Detour.max_bumped_length path ~usable in
  Alcotest.(check bool) "bounded by area" true (reach <= 9);
  Alcotest.(check bool) "gained something" true (reach > 2)

(* ---------- MST router ---------- *)

let test_mst_router_connects_all () =
  let g = grid 15 15 in
  let terminals = [ Point.make 2 2; Point.make 12 2; Point.make 7 12; Point.make 2 12 ] in
  match Mst_router.route ~grid:g ~obstacles:(Routing_grid.fresh_work_map g) terminals with
  | None -> Alcotest.fail "expected routing"
  | Some out ->
    Alcotest.(check int) "three edges" 3 (List.length out.paths);
    List.iter
      (fun t ->
         Alcotest.(check bool) "terminal claimed" true (Point.Set.mem t out.claimed))
      terminals;
    Alcotest.(check bool) "positive length" true (out.total_length > 0);
    (* Connectivity: union of path points forms one component containing
       all terminals; verify by BFS over claimed cells. *)
    let claimed = out.claimed in
    let visited = ref Point.Set.empty in
    let rec bfs = function
      | [] -> ()
      | p :: rest ->
        if Point.Set.mem p !visited then bfs rest
        else begin
          visited := Point.Set.add p !visited;
          let next =
            List.filter (fun q -> Point.Set.mem q claimed) (Point.neighbours4 p)
          in
          bfs (next @ rest)
        end
    in
    bfs [ List.hd terminals ];
    List.iter
      (fun t -> Alcotest.(check bool) "terminal reachable" true (Point.Set.mem t !visited))
      terminals

let test_mst_router_singleton () =
  let g = grid 5 5 in
  match Mst_router.route ~grid:g ~obstacles:(Routing_grid.fresh_work_map g) [ Point.make 2 2 ] with
  | Some out ->
    Alcotest.(check int) "no paths" 0 (List.length out.paths);
    Alcotest.(check int) "claims itself" 1 (Point.Set.cardinal out.claimed)
  | None -> Alcotest.fail "singleton should route"

let test_mst_router_blocked () =
  (* One terminal boxed in. *)
  let walls =
    [ Rect.make ~x0:4 ~y0:4 ~x1:6 ~y1:4; Rect.make ~x0:4 ~y0:6 ~x1:6 ~y1:6;
      Rect.make ~x0:4 ~y0:4 ~x1:4 ~y1:6; Rect.make ~x0:6 ~y0:4 ~x1:6 ~y1:6 ]
  in
  let g = grid ~obstacles:walls 12 12 in
  Alcotest.(check bool) "unroutable" true
    (Mst_router.route ~grid:g ~obstacles:(Routing_grid.fresh_work_map g)
       [ Point.make 1 1; Point.make 5 5 ]
     = None)

let test_mst_router_empty () =
  let g = grid 5 5 in
  Alcotest.(check bool) "empty input" true
    (Mst_router.route ~grid:g ~obstacles:(Routing_grid.fresh_work_map g) [] = None)


(* ---------- Steiner (RSMT) ---------- *)

let pts l = List.map (fun (x, y) -> Point.make x y) l

let test_rsmt_cross () =
  (* Four points in a cross: one Steiner point at the centre saves 2x the
     radius compared with the MST. *)
  let terminals = pts [ (5, 0); (0, 5); (10, 5); (5, 10) ] in
  let t = Steiner.rsmt terminals in
  Alcotest.(check int) "optimal cross" 20 t.length;
  Alcotest.(check bool) "beats MST" true (t.length < Steiner.mst_length terminals);
  Alcotest.(check bool) "steiner point added" true (List.length t.nodes > 4)

let test_rsmt_collinear () =
  let terminals = pts [ (0, 3); (4, 3); (9, 3) ] in
  let t = Steiner.rsmt terminals in
  Alcotest.(check int) "collinear needs no steiner points" 9 t.length

let test_rsmt_two_points () =
  let t = Steiner.rsmt (pts [ (1, 1); (4, 5) ]) in
  Alcotest.(check int) "manhattan" 7 t.length

let test_rsmt_bounds () =
  let terminals = pts [ (2, 2); (2, 10); (12, 3); (13, 11) ] in
  let t = Steiner.rsmt terminals in
  Alcotest.(check bool) "rsmt <= mst" true (t.length <= Steiner.mst_length terminals);
  Alcotest.(check bool) "rsmt >= half perimeter" true
    (t.length >= Steiner.half_perimeter terminals)

let test_rsmt_duplicates_rejected () =
  Alcotest.check_raises "duplicates" (Invalid_argument "Steiner.rsmt: duplicate terminals")
    (fun () -> ignore (Steiner.rsmt (pts [ (1, 1); (1, 1) ])))

let test_hanan_points () =
  let h = Steiner.hanan_points (pts [ (0, 0); (3, 4) ]) in
  Alcotest.(check int) "two crossings" 2 (List.length h);
  Alcotest.(check bool) "contains (0,4)" true (List.exists (Point.equal (Point.make 0 4)) h)

let prop_rsmt_between_bounds =
  let arb =
    QCheck.make
      QCheck.Gen.(
        let* n = int_range 2 6 in
        let rec gen acc k =
          if k = 0 then return acc
          else
            let* x = int_range 0 15 and* y = int_range 0 15 in
            let p = Point.make x y in
            if List.exists (Point.equal p) acc then gen acc k
            else gen (p :: acc) (k - 1)
        in
        gen [] n)
  in
  QCheck.Test.make ~name:"half-perimeter <= rsmt <= mst" ~count:80 arb (fun terminals ->
    let t = Steiner.rsmt terminals in
    Steiner.half_perimeter terminals <= t.length
    && t.length <= Steiner.mst_length terminals)

(* Regression for the best-iteration tie-break: negotiation must keep an
   iteration that routes the {e same} number of edges on shorter total
   wirelength. Two crossing edges contend for the cells around (1..3, 5);
   iteration 1 routes edge 0 straight and shoves edge 1 onto a long wrap,
   and history costs later settle both on short paths. A third, walled-in
   edge keeps the loop iterating (success never happens), so the
   best-tracking is what decides the outcome. *)
let test_negotiation_keeps_shorter_tie () =
  let obstacles =
    [ Rect.make ~x0:0 ~y0:7 ~x1:2 ~y1:7;    (* pen around edge 2's endpoints *)
      Rect.make ~x0:1 ~y0:8 ~x1:1 ~y1:8;
      Rect.make ~x0:3 ~y0:5 ~x1:3 ~y1:5;    (* scatter forcing the iteration-1
                                               ordering onto long detours *)
      Rect.make ~x0:0 ~y0:3 ~x1:0 ~y1:4;
      Rect.make ~x0:10 ~y0:3 ~x1:10 ~y1:4 ]
  in
  let g = grid ~obstacles 11 9 in
  let edges =
    [ { Negotiation.edge_id = 2; ends = (Point.make 0 8, Point.make 2 8) };
      { Negotiation.edge_id = 0; ends = (Point.make 6 5, Point.make 0 5) };
      { Negotiation.edge_id = 1; ends = (Point.make 3 2, Point.make 1 6) } ]
  in
  let run gamma =
    Negotiation.route
      ~config:{ Negotiation.default_config with gamma }
      ~grid:g ~obstacles:(Routing_grid.fresh_work_map g) edges
  in
  let total out =
    List.fold_left (fun acc (_, p) -> acc + Path.length p) 0 out.Negotiation.paths
  in
  let first = run 1 and negotiated = run 8 in
  Alcotest.(check int) "iteration 1 routes both" 2 (List.length first.paths);
  Alcotest.(check int) "negotiated routes both" 2 (List.length negotiated.paths);
  Alcotest.(check bool) "walled edge keeps failing" false negotiated.success;
  Alcotest.(check bool)
    (Printf.sprintf "negotiated total %d < first-iteration total %d" (total negotiated)
       (total first))
    true
    (total negotiated < total first)

(* Entry-pool saturation: adjacent source/target with a bound of 3. The
   wrap-around path exists (down, across, up), but finding it needs cells
   near the target to hold more than one G value — with
   [max_visits_per_cell = 1] the first (too-short) visit saturates its
   cell's pool slot and the search must give up cleanly; the default
   visit budget finds the exact-length path. *)
let test_bounded_saturation () =
  let g = grid 9 9 in
  let usable _ = true in
  let source = Point.make 4 4 and target = Point.make 4 5 in
  (match
     Bounded_astar.search ~grid:g ~usable ~max_visits_per_cell:1 ~source ~target
       ~min_length:1 ()
   with
   | Some p -> Alcotest.(check int) "direct step within one visit" 1 (Path.length p)
   | None -> Alcotest.fail "expected direct step");
  Alcotest.(check bool) "longer bound saturates one visit" true
    (Bounded_astar.search ~grid:g ~usable ~max_visits_per_cell:1 ~source ~target
       ~min_length:3 ()
     = None);
  (match Bounded_astar.search ~grid:g ~usable ~source ~target ~min_length:3 () with
   | Some p -> Alcotest.(check int) "default visits meet the bound" 3 (Path.length p)
   | None -> Alcotest.fail "expected bounded path with default visits")

(* ---------- Workspace ---------- *)

(* One workspace reused across many searches must do its grid-sized array
   allocations once: the grid_allocs counter stays flat from the first
   search on (the tentpole's core claim — O(1) epoch reset, no per-search
   allocation). *)
let test_workspace_allocs_monotonic () =
  let stats = Search_stats.create () in
  let ws = Workspace.create ~stats () in
  let g = grid 20 20 in
  let spec = free_spec (Routing_grid.fresh_work_map g) in
  let search i =
    Astar.search ~workspace:ws ~grid:g ~spec
      ~sources:[ Point.make (i mod 10) 1 ]
      ~targets:[ Point.make (19 - (i mod 10)) 18 ]
      ()
  in
  (match search 0 with None -> Alcotest.fail "first search failed" | Some _ -> ());
  let allocs_after_first = (Search_stats.snapshot stats).Search_stats.grid_allocs in
  for i = 1 to 50 do
    match search i with
    | None -> Alcotest.fail "reused search failed"
    | Some _ -> ()
  done;
  let snap = Search_stats.snapshot stats in
  Alcotest.(check int) "no grid allocations after warm-up" allocs_after_first
    snap.Search_stats.grid_allocs;
  Alcotest.(check int) "every search counted" 51 snap.Search_stats.searches;
  (* Bounded searches on the same workspace likewise stop allocating once
     the entry pool fits. *)
  let bounded () =
    Bounded_astar.search ~workspace:ws ~grid:g ~usable:(fun _ -> true)
      ~source:(Point.make 2 2) ~target:(Point.make 10 2) ~min_length:12 ()
  in
  (match bounded () with None -> Alcotest.fail "bounded failed" | Some _ -> ());
  let after_bounded = (Search_stats.snapshot stats).Search_stats.grid_allocs in
  for _ = 1 to 10 do
    match bounded () with
    | None -> Alcotest.fail "reused bounded failed"
    | Some _ -> ()
  done;
  Alcotest.(check int) "bounded pool allocated once" after_bounded
    (Search_stats.snapshot stats).Search_stats.grid_allocs

(* The shared 0-1-BFS deque honours deque order: push_front items come out
   before everything pushed at the back, and pops are charged to the same
   budget/stat counters as heap pops. *)
let test_workspace_deque_order () =
  let stats = Search_stats.create () in
  let ws = Workspace.create ~stats () in
  Workspace.begin_search ws ~cells:16;
  Alcotest.(check bool) "fresh deque is empty" true (Workspace.deque_is_empty ws);
  Workspace.deque_push_back ws 1;
  Workspace.deque_push_back ws 2;
  Workspace.deque_push_front ws 3;
  Workspace.deque_push_back ws 4;
  Workspace.deque_push_front ws 5;
  let order = List.init 5 (fun _ -> Workspace.deque_pop_front ws) in
  Alcotest.(check (list int)) "deque order" [ 5; 3; 1; 2; 4 ] order;
  Alcotest.(check int) "empty pop returns sentinel" (-1) (Workspace.deque_pop_front ws);
  let snap = Search_stats.snapshot stats in
  Alcotest.(check int) "pushes counted" 5 snap.Search_stats.pushes;
  Alcotest.(check int) "pops counted" 5 snap.Search_stats.pops

(* Growth past the initial capacity preserves FIFO order even when the ring
   has wrapped (head <> 0 at grow time), and a new epoch discards leftovers. *)
let test_workspace_deque_growth_and_reset () =
  let ws = Workspace.create () in
  Workspace.begin_search ws ~cells:4;
  (* Wrap the ring: interleave pushes and pops so head advances. *)
  for i = 0 to 19 do
    Workspace.deque_push_back ws i;
    if i mod 3 = 2 then ignore (Workspace.deque_pop_front ws)
  done;
  for i = 20 to 299 do
    Workspace.deque_push_back ws i
  done;
  (* The six interleaved pops consumed the then-fronts 0..5. *)
  let expect = List.init 294 (fun k -> k + 6) in
  let got = List.map (fun _ -> Workspace.deque_pop_front ws) expect in
  Alcotest.(check (list int)) "FIFO survives growth and wrap" expect got;
  Workspace.deque_push_back ws 42;
  Workspace.begin_search ws ~cells:4;
  Alcotest.(check bool) "epoch reset clears the deque" true
    (Workspace.deque_is_empty ws);
  Alcotest.(check int) "no stale element after reset" (-1)
    (Workspace.deque_pop_front ws)

(* Deque pops tick the workspace budget exactly like heap pops: once the
   expansion budget is spent, pops return the sentinel even when elements
   remain queued. *)
let test_workspace_deque_budget () =
  let ws = Workspace.create () in
  let budget = Budget.create (Budget.limits ~max_expansions:3 ()) in
  Workspace.set_budget ws budget;
  Budget.arm budget;
  Workspace.begin_search ws ~cells:8;
  for i = 0 to 5 do
    Workspace.deque_push_back ws i
  done;
  let drained = List.init 4 (fun _ -> Workspace.deque_pop_front ws) in
  Alcotest.(check (list int)) "budget cuts the drain" [ 0; 1; 2; -1 ] drained;
  Alcotest.(check bool) "elements remain queued" false (Workspace.deque_is_empty ws);
  (match Budget.exhausted budget with
   | Some Budget.Expansions -> ()
   | _ -> Alcotest.fail "expected expansion exhaustion");
  Workspace.set_budget ws (Budget.unlimited ())

(* ---------- QCheck ---------- *)

let arb_grid_points =
  QCheck.make
    QCheck.Gen.(
      let* n = int_range 2 6 in
      let* pts =
        list_size (return n)
          (let* x = int_range 1 10 and* y = int_range 1 10 in
           return (Point.make x y))
      in
      return (List.sort_uniq Point.compare pts))

let prop_astar_optimal_no_obstacles =
  QCheck.Test.make ~name:"A* equals manhattan without obstacles" ~count:100
    arb_grid_points (fun pts ->
      match pts with
      | a :: b :: _ ->
        let g = grid 12 12 in
        (match Astar.shortest ~grid:g ~obstacles:(Routing_grid.fresh_work_map g) a b with
         | Some p -> Path.length p = Point.manhattan a b
         | None -> false)
      | _ -> true)

let prop_mst_router_claims_terminals =
  QCheck.Test.make ~name:"MST router claims all terminals" ~count:50 arb_grid_points
    (fun pts ->
       let g = grid 12 12 in
       match Mst_router.route ~grid:g ~obstacles:(Routing_grid.fresh_work_map g) pts with
       | Some out -> List.for_all (fun t -> Point.Set.mem t out.claimed) pts
       | None -> false)

let prop_lengthen_parity =
  QCheck.Test.make ~name:"lengthen adds an even amount" ~count:100
    (QCheck.pair (QCheck.int_range 2 8) (QCheck.int_range 0 10))
    (fun (len, extra) ->
       let pts = List.init (len + 1) (fun i -> Point.make (i + 2) 10) in
       let path = Path.of_points pts in
       let usable (p : Point.t) = p.x >= 0 && p.x < 30 && p.y >= 0 && p.y < 30 in
       match Detour.lengthen path ~target:(len + extra) ~usable with
       | Some p -> (Path.length p - len) mod 2 = 0 && Path.length p >= len + extra
       | None -> false)

(* Random searches on one long-lived workspace must agree exactly with
   fresh-arrays searches: stale epoch state may never leak into a result. *)
let arb_search_instance =
  QCheck.make
    QCheck.Gen.(
      let* sx = int_range 0 11 and* sy = int_range 0 11 in
      let* tx = int_range 0 11 and* ty = int_range 0 11 in
      let* obstacles = list_size (int_range 0 25) (pair (int_range 0 11) (int_range 0 11)) in
      return ((sx, sy), (tx, ty), obstacles))

let shared_workspace = Workspace.create ()

let prop_workspace_equals_fresh =
  QCheck.Test.make ~name:"workspace search = fresh search" ~count:200
    arb_search_instance (fun ((sx, sy), (tx, ty), obstacles) ->
      let g = grid 12 12 in
      let obs = Routing_grid.fresh_work_map g in
      List.iter (fun (x, y) -> Obstacle_map.block obs (Point.make x y)) obstacles;
      let spec = free_spec obs in
      let source = Point.make sx sy and target = Point.make tx ty in
      let run workspace =
        Astar.search ?workspace ~grid:g ~spec ~sources:[ source ] ~targets:[ target ] ()
      in
      (* The shared workspace carries whatever epoch state the previous
         random instance left behind — exactly the leak being tested. *)
      run (Some shared_workspace) = run None)

let prop_workspace_epoch_isolation =
  QCheck.Test.make ~name:"epochs do not leak across searches" ~count:100
    arb_search_instance (fun ((sx, sy), (tx, ty), _) ->
      let g = grid 12 12 in
      let ws = Workspace.create () in
      let source = Point.make sx sy and target = Point.make tx ty in
      let search ~workspace obs =
        Astar.search ?workspace ~grid:g ~spec:(free_spec obs) ~sources:[ source ]
          ~targets:[ target ] ()
      in
      (* Route, block the found path, route again on the same workspace:
         the second search must match a fresh-workspace search over the
         same (now partially blocked) grid. *)
      let obs = Routing_grid.fresh_work_map g in
      match search ~workspace:(Some ws) obs with
      | None -> QCheck.Test.fail_report "empty grid must route"
      | Some p ->
        List.iter
          (fun q ->
             if not (Point.equal q source || Point.equal q target) then
               Obstacle_map.block obs q)
          (Path.points p);
        search ~workspace:(Some ws) obs = search ~workspace:None obs)

(* Incremental negotiation vs the full-reroute baseline on random congested
   instances: never worse under the (routed count, total length)
   lexicographic order, and byte-identical whenever no round fails (the
   baseline succeeds in one iteration — incremental's first round IS the
   baseline's first round). Instances derive from an integer seed through a
   private LCG, so the property is deterministic regardless of qcheck's
   run-to-run random seed. *)
let prop_incremental_no_worse =
  let instance_of_seed seed =
    let state = ref (seed land 0x3FFFFFFF) in
    let rand bound =
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      !state mod bound
    in
    let w = 12 + rand 4 and h = 12 + rand 4 in
    let obstacles =
      List.init (rand 10) (fun _ -> Point.make (rand w) (rand h))
    in
    let nedges = 3 + rand 5 in
    let edges =
      List.init nedges (fun i ->
        { Negotiation.edge_id = i;
          ends = (Point.make (rand w) (rand h), Point.make (rand w) (rand h)) })
    in
    (w, h, obstacles, edges)
  in
  QCheck.Test.make ~name:"incremental negotiation >= full-reroute baseline" ~count:220
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
       let w, h, obstacles, edges = instance_of_seed seed in
       let g = grid w h in
       let run mode =
         let obs = Routing_grid.fresh_work_map g in
         List.iter (Obstacle_map.block obs) obstacles;
         Negotiation.route
           ~config:{ Negotiation.default_config with mode }
           ~grid:g ~obstacles:obs edges
       in
       let inc = run Negotiation.Incremental in
       let full = run Negotiation.Full_reroute in
       let total out =
         List.fold_left (fun acc (_, p) -> acc + Path.length p) 0 out.Negotiation.paths
       in
       let full_better =
         let ci = List.length inc.Negotiation.paths
         and cf = List.length full.Negotiation.paths in
         cf > ci || (cf = ci && total full < total inc)
       in
       if full_better then
         QCheck.Test.fail_reportf "incremental worse: inc=(%d,%d) full=(%d,%d)"
           (List.length inc.Negotiation.paths) (total inc)
           (List.length full.Negotiation.paths) (total full);
       if full.Negotiation.success && full.Negotiation.iterations = 1 then begin
         (* No round failed: the two modes must coincide exactly. *)
         inc.Negotiation.success
         && inc.Negotiation.iterations = 1
         && List.length inc.Negotiation.paths = List.length full.Negotiation.paths
         && List.for_all2
              (fun (ia, pa) (ib, pb) -> ia = ib && Path.equal pa pb)
              inc.Negotiation.paths full.Negotiation.paths
       end
       else true)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_astar_optimal_no_obstacles; prop_mst_router_claims_terminals;
      prop_lengthen_parity; prop_rsmt_between_bounds; prop_workspace_equals_fresh;
      prop_workspace_epoch_isolation; prop_incremental_no_worse ]

let () =
  Alcotest.run "route"
    [ ( "astar",
        [ Alcotest.test_case "straight line" `Quick test_astar_straight_line;
          Alcotest.test_case "around wall" `Quick test_astar_around_wall;
          Alcotest.test_case "fully blocked" `Quick test_astar_blocked_completely;
          Alcotest.test_case "endpoints exempt" `Quick test_astar_endpoints_exempt;
          Alcotest.test_case "multi source/target" `Quick test_astar_multi_source_target;
          Alcotest.test_case "source is target" `Quick test_astar_source_is_target;
          Alcotest.test_case "history cost steers" `Quick test_astar_extra_cost_steers;
          Alcotest.test_case "pinned search counters" `Quick test_search_stats_pinned ] );
      ( "negotiation",
        [ Alcotest.test_case "single edge" `Quick test_negotiation_single_edge;
          Alcotest.test_case "conflicting edges" `Quick test_negotiation_conflicting_edges;
          Alcotest.test_case "shared endpoint" `Quick test_negotiation_shared_endpoint;
          Alcotest.test_case "impossible edge" `Quick test_negotiation_impossible;
          Alcotest.test_case "many parallel" `Quick test_negotiation_many_parallel;
          Alcotest.test_case "deterministic" `Quick test_negotiation_deterministic;
          Alcotest.test_case "disjointness invariant" `Quick
            test_negotiation_paths_disjoint_invariant;
          Alcotest.test_case "keeps shorter tie" `Quick test_negotiation_keeps_shorter_tie ] );
      ( "bounded_astar",
        [ Alcotest.test_case "meets bound" `Quick test_bounded_meets_bound;
          Alcotest.test_case "small bound = shortest" `Quick
            test_bounded_equals_shortest_when_bound_small;
          Alcotest.test_case "respects obstacles" `Quick test_bounded_respects_obstacles;
          Alcotest.test_case "impossible bound" `Quick test_bounded_impossible_bound;
          Alcotest.test_case "visit saturation" `Quick test_bounded_saturation ] );
      ( "workspace",
        [ Alcotest.test_case "allocations stay flat" `Quick
            test_workspace_allocs_monotonic;
          Alcotest.test_case "deque order and counters" `Quick
            test_workspace_deque_order;
          Alcotest.test_case "deque growth, wrap and epoch reset" `Quick
            test_workspace_deque_growth_and_reset;
          Alcotest.test_case "deque pops charge the budget" `Quick
            test_workspace_deque_budget ] );
      ( "detour",
        [ Alcotest.test_case "lengthen basic" `Quick test_lengthen_basic;
          Alcotest.test_case "already long enough" `Quick test_lengthen_already_long_enough;
          Alcotest.test_case "no room" `Quick test_lengthen_no_room;
          Alcotest.test_case "large target" `Quick test_lengthen_large_target;
          Alcotest.test_case "corridor cap" `Quick test_max_bumped_length_corridor ] );
      ( "mst_router",
        [ Alcotest.test_case "connects all" `Quick test_mst_router_connects_all;
          Alcotest.test_case "singleton" `Quick test_mst_router_singleton;
          Alcotest.test_case "blocked terminal" `Quick test_mst_router_blocked;
          Alcotest.test_case "empty" `Quick test_mst_router_empty ] );
      ( "steiner",
        [ Alcotest.test_case "cross" `Quick test_rsmt_cross;
          Alcotest.test_case "collinear" `Quick test_rsmt_collinear;
          Alcotest.test_case "two points" `Quick test_rsmt_two_points;
          Alcotest.test_case "bounds" `Quick test_rsmt_bounds;
          Alcotest.test_case "duplicates" `Quick test_rsmt_duplicates_rejected;
          Alcotest.test_case "hanan points" `Quick test_hanan_points ] );
      ("properties", qcheck_cases) ]
