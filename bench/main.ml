(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, plus Bechamel micro-benchmarks for the flow stages and the
   ablations called out in DESIGN.md.

   - Table 1: parameters of the regenerated benchmark designs, printed next
     to the published values.
   - Table 2: the "w/o Sel" / "Detour First" / PACOR self-comparison on all
     seven designs, printed next to the published table, plus the paper's
     qualitative shape checks.
   - Fig. 3: DME candidate-tree enumeration summary for a 4-valve cluster.

   Pass --quick (or set PACOR_BENCH_QUICK=1) to restrict the Table 2 sweep
   to the synthetic S designs and shorten micro-benchmark quotas. Pass
   --smoke for the CI fast path: a seconds-long sanity run covering only
   the workspace micro-bench and one full-flow stats printout. *)

open Bechamel

let quick =
  Array.exists (String.equal "--quick") Sys.argv
  || (match Sys.getenv_opt "PACOR_BENCH_QUICK" with Some ("1" | "true") -> true | _ -> false)

let smoke = Array.exists (String.equal "--smoke") Sys.argv

let jobs_scaling_only = Array.exists (String.equal "--jobs-scaling") Sys.argv

let steal_bench_only = Array.exists (String.equal "--steal-bench") Sys.argv

let route_bench_only = Array.exists (String.equal "--route-bench") Sys.argv

let escape_bench_only = Array.exists (String.equal "--escape-bench") Sys.argv

let hier_bench_only = Array.exists (String.equal "--hier-bench") Sys.argv

let fault_sweep_only = Array.exists (String.equal "--fault-sweep") Sys.argv

let serve_bench_only = Array.exists (String.equal "--serve-bench") Sys.argv

let chaos_soak_only = Array.exists (String.equal "--chaos-soak") Sys.argv

let arg_value name =
  let rec find i =
    if i + 1 >= Array.length Sys.argv then None
    else if String.equal Sys.argv.(i) name then Some Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

(* --json-out PATH: also write the jobs-scaling JSON to a file. *)
let json_out = arg_value "--json-out"

(* --timeout S / --max-expansions N / --retries N: run the batch sections
   under a search budget, to measure the degradation machinery's overhead
   and the timeout-vs-quality trade-off (see EXPERIMENTS.md). *)
let bench_limits =
  Pacor_route.Budget.limits
    ?timeout_s:(Option.bind (arg_value "--timeout") float_of_string_opt)
    ?max_expansions:(Option.bind (arg_value "--max-expansions") int_of_string_opt)
    ()

let bench_retries =
  Option.value ~default:0 (Option.bind (arg_value "--retries") int_of_string_opt)

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (Bechamel)                                         *)
(* ------------------------------------------------------------------ *)

let fig3_sinks =
  Pacor_geom.
    [ Point.make 2 2; Point.make 2 10; Point.make 12 3; Point.make 13 11 ]

let bench_table1 =
  (* One Test.make per generated design: the cost of regenerating the
     Table 1 workloads. *)
  let gen name () =
    match Pacor_designs.Table1.load name with
    | Ok p -> ignore (Pacor.Problem.valve_count p)
    | Error e -> failwith e
  in
  Test.make_grouped ~name:"table1"
    [ Test.make ~name:"generate-S1" (Staged.stage (gen "S1"));
      Test.make ~name:"generate-S2" (Staged.stage (gen "S2"));
      Test.make ~name:"generate-S3" (Staged.stage (gen "S3")) ]

let bench_table2 =
  (* One Test.make per Table 2 variant: full-flow runtime on a small
     design (relative runtimes are the paper's last column group). *)
  let problem =
    match Pacor_designs.Table1.load "S2" with Ok p -> p | Error e -> failwith e
  in
  let run variant () =
    match Pacor.Engine.run ~config:(Pacor.Config.make ~variant ()) problem with
    | Ok sol -> ignore (Pacor.Solution.stats sol)
    | Error e -> failwith e.message
  in
  Test.make_grouped ~name:"table2-S2"
    [ Test.make ~name:"wosel" (Staged.stage (run Pacor.Config.Without_selection));
      Test.make ~name:"detour-first" (Staged.stage (run Pacor.Config.Detour_first));
      Test.make ~name:"pacor" (Staged.stage (run Pacor.Config.Full)) ]

let bench_fig3 =
  let grid = Pacor_grid.Routing_grid.create ~width:16 ~height:14 () in
  Test.make_grouped ~name:"fig3"
    [ Test.make ~name:"enumerate-candidates"
        (Staged.stage (fun () ->
           ignore
             (Pacor_dme.Candidate.enumerate ~grid ~usable:(fun _ -> true)
                ~max_candidates:8 fig3_sinks))) ]

(* Ablations from DESIGN.md. *)

let bench_ablation_candidates =
  (* Candidate enumeration breadth: 1 vs 8 candidates. *)
  let grid = Pacor_grid.Routing_grid.create ~width:16 ~height:14 () in
  let enum k () =
    ignore
      (Pacor_dme.Candidate.enumerate ~grid ~usable:(fun _ -> true) ~max_candidates:k
         fig3_sinks)
  in
  Test.make_grouped ~name:"ablation-candidates"
    [ Test.make ~name:"k1" (Staged.stage (enum 1));
      Test.make ~name:"k8" (Staged.stage (enum 8)) ]

let bench_ablation_solvers =
  (* Selection solver choice on a medium instance (the paper implemented
     three and kept the ILP; ours: exact B&B vs greedy vs local search). *)
  let grid = Pacor_grid.Routing_grid.create ~width:40 ~height:40 () in
  let mk_cluster dx dy =
    Pacor_dme.Candidate.enumerate ~grid ~usable:(fun _ -> true) ~max_candidates:6
      Pacor_geom.
        [ Point.make (2 + dx) (2 + dy); Point.make (2 + dx) (8 + dy);
          Point.make (8 + dx) (3 + dy); Point.make (9 + dx) (9 + dy) ]
  in
  let per_cluster = [ mk_cluster 0 0; mk_cluster 10 4; mk_cluster 4 12; mk_cluster 14 14 ] in
  let solve solver () =
    match
      Pacor_select.Tree_select.select
        ~config:{ Pacor_select.Tree_select.lambda = 0.1; solver } per_cluster
    with
    | Ok sel -> ignore sel.Pacor_select.Tree_select.objective
    | Error e -> failwith e
  in
  Test.make_grouped ~name:"ablation-selection"
    [ Test.make ~name:"exact" (Staged.stage (solve Pacor_select.Tree_select.Exact));
      Test.make ~name:"greedy" (Staged.stage (solve Pacor_select.Tree_select.Greedy));
      Test.make ~name:"local-search"
        (Staged.stage (solve Pacor_select.Tree_select.Local_search)) ]

let bench_ablation_negotiation =
  (* Negotiation (gamma = 10) vs single-pass sequential routing (gamma = 1)
     on a congested batch. *)
  let grid = Pacor_grid.Routing_grid.create ~width:16 ~height:16 () in
  let edges =
    List.init 6 (fun i ->
      { Pacor_route.Negotiation.edge_id = i;
        ends = Pacor_geom.(Point.make 2 (4 + i), Point.make 13 (9 - i)) })
  in
  let route gamma () =
    let config = { Pacor_route.Negotiation.default_config with gamma } in
    ignore
      (Pacor_route.Negotiation.route ~config ~grid
         ~obstacles:(Pacor_grid.Routing_grid.fresh_work_map grid)
         edges)
  in
  Test.make_grouped ~name:"ablation-negotiation"
    [ Test.make ~name:"negotiated-gamma10" (Staged.stage (route 10));
      Test.make ~name:"sequential-gamma1" (Staged.stage (route 1)) ]

let bench_ablation_detour =
  (* Bump insertion vs minimum-length bounded A* for the same lengthening
     task. *)
  let grid = Pacor_grid.Routing_grid.create ~width:20 ~height:20 () in
  let path =
    Pacor_grid.Path.of_points (List.init 7 (fun i -> Pacor_geom.Point.make (4 + i) 10))
  in
  let usable p = Pacor_grid.Routing_grid.free grid p in
  Test.make_grouped ~name:"ablation-detour"
    [ Test.make ~name:"bump-insertion"
        (Staged.stage (fun () -> ignore (Pacor_route.Detour.lengthen path ~target:14 ~usable)));
      Test.make ~name:"bounded-astar"
        (Staged.stage (fun () ->
           ignore
             (Pacor_route.Bounded_astar.search ~grid
                ~usable:(fun i ->
                  usable (Pacor_grid.Routing_grid.point_of_index grid i))
                ~source:(Pacor_geom.Point.make 4 10) ~target:(Pacor_geom.Point.make 10 10)
                ~min_length:14 ()))) ]

let bench_ablation_rsmt =
  (* The cost of length matching: DME balanced tree vs unconstrained RSMT
     on the same sinks. *)
  let grid = Pacor_grid.Routing_grid.create ~width:16 ~height:14 () in
  Test.make_grouped ~name:"ablation-dme-vs-rsmt"
    [ Test.make ~name:"dme-candidates"
        (Staged.stage (fun () ->
           ignore
             (Pacor_dme.Candidate.enumerate ~grid ~usable:(fun _ -> true)
                ~max_candidates:4 fig3_sinks)));
      Test.make ~name:"rsmt"
        (Staged.stage (fun () -> ignore (Pacor_route.Steiner.rsmt fig3_sinks))) ]

let bench_flow_solvers =
  (* Min-cost-flow implementations on a grid-like network. *)
  let build_mcmf () =
    let n = 200 in
    let net = Pacor_flow.Mcmf.create n in
    for i = 0 to n - 2 do
      Pacor_flow.Mcmf.add_edge net ~src:i ~dst:(i + 1) ~cap:2 ~cost:1;
      if i + 10 < n then Pacor_flow.Mcmf.add_edge net ~src:i ~dst:(i + 10) ~cap:1 ~cost:3
    done;
    net
  in
  let build_spfa () =
    let n = 200 in
    let net = Pacor_flow.Mcmf_spfa.create n in
    for i = 0 to n - 2 do
      Pacor_flow.Mcmf_spfa.add_edge net ~src:i ~dst:(i + 1) ~cap:2 ~cost:1;
      if i + 10 < n then
        Pacor_flow.Mcmf_spfa.add_edge net ~src:i ~dst:(i + 10) ~cap:1 ~cost:3
    done;
    net
  in
  Test.make_grouped ~name:"flow-solvers"
    [ Test.make ~name:"mcmf-dijkstra"
        (Staged.stage (fun () ->
           ignore (Pacor_flow.Mcmf.solve (build_mcmf ()) ~source:0 ~sink:199)));
      Test.make ~name:"mcmf-spfa"
        (Staged.stage (fun () ->
           ignore (Pacor_flow.Mcmf_spfa.solve (build_spfa ()) ~source:0 ~sink:199))) ]

let bench_astar_workspace =
  (* The tentpole claim in numbers: A* with one shared workspace (O(1)
     epoch reset) vs fresh per-call arrays, same searches on a 64x64 grid
     with a sparse obstacle field. *)
  let grid = Pacor_grid.Routing_grid.create ~width:64 ~height:64 () in
  let obstacles = Pacor_grid.Routing_grid.fresh_work_map grid in
  let () =
    for i = 0 to 63 do
      Pacor_geom.
        [ Point.make ((i * 7) mod 64) ((i * 13) mod 64);
          Point.make ((i * 11) mod 64) ((i * 3) mod 64) ]
      |> List.iter (Pacor_grid.Obstacle_map.block obstacles)
    done
  in
  let spec = Pacor_route.Astar.obstacle_spec obstacles in
  let endpoints i =
    Pacor_geom.(Point.make (1 + (i mod 8)) 1, Point.make (62 - (i mod 8)) 62)
  in
  let search workspace i =
    let source, target = endpoints i in
    ignore
      (Pacor_route.Astar.search ?workspace ~grid ~spec ~sources:[ source ]
         ~targets:[ target ] ())
  in
  let shared = Pacor_route.Workspace.create () in
  let counter = ref 0 in
  Test.make_grouped ~name:"astar_workspace_vs_fresh"
    [ Test.make ~name:"shared-workspace"
        (Staged.stage (fun () -> incr counter; search (Some shared) !counter));
      Test.make ~name:"fresh-arrays"
        (Staged.stage (fun () -> incr counter; search None !counter)) ]

let all_micro_benches =
  Test.make_grouped ~name:"pacor"
    [ bench_table1; bench_table2; bench_fig3; bench_astar_workspace;
      bench_ablation_candidates; bench_ablation_solvers; bench_ablation_negotiation;
      bench_ablation_detour; bench_ablation_rsmt; bench_flow_solvers ]

let run_micro_benches ?(only = all_micro_benches) () =
  let quota = if quick || smoke then Time.second 0.05 else Time.second 0.5 in
  let cfg = Benchmark.cfg ~limit:2000 ~quota ~stabilize:false () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] only in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
         let ns =
           match Analyze.OLS.estimates ols with Some (e :: _) -> e | Some [] | None -> nan
         in
         (name, ns) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Format.printf "@.== Micro-benchmarks (monotonic clock, ns/run) ==@.";
  List.iter
    (fun (name, ns) ->
       let pretty =
         if Float.is_nan ns then "n/a"
         else if ns > 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
         else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
         else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
         else Printf.sprintf "%8.0f ns" ns
       in
       Format.printf "  %-55s %s@." name pretty)
    rows

(* ------------------------------------------------------------------ *)
(* Table and figure regeneration                                       *)
(* ------------------------------------------------------------------ *)

let print_table1 () =
  Format.printf "@.== Table 1: benchmark design parameters (published vs regenerated) ==@.";
  Format.printf "%-7s | %-18s | %-18s | %-12s | %-12s@." "Design" "Size (paper=ours)"
    "#Valves (p=o)" "#CP (p=o)" "#Obs (p~o)";
  List.iter
    (fun (r : Pacor_designs.Table1.row) ->
       match Pacor_designs.Table1.load r.design with
       | Error e -> Format.printf "%-7s | generation failed: %s@." r.design e
       | Ok p ->
         let grid = p.Pacor.Problem.grid in
         Format.printf "%-7s | %dx%d = %dx%d | %d = %d | %d = %d | %d ~ %d@." r.design
           r.width r.height
           (Pacor_grid.Routing_grid.width grid)
           (Pacor_grid.Routing_grid.height grid)
           r.valves (Pacor.Problem.valve_count p) r.control_pins (Pacor.Problem.pin_count p)
           r.obstacles (Pacor.Problem.obstacle_count p))
    Pacor_designs.Table1.rows

let print_fig3 () =
  Format.printf "@.== Fig. 3: DME candidate Steiner trees (4-valve cluster) ==@.";
  let grid = Pacor_grid.Routing_grid.create ~width:16 ~height:14 () in
  let cands =
    Pacor_dme.Candidate.enumerate ~grid ~usable:(fun _ -> true) ~max_candidates:8
      fig3_sinks
  in
  Format.printf "candidates: %d@." (List.length cands);
  List.iteri
    (fun i (c : Pacor_dme.Candidate.t) ->
       Format.printf "  %d: %a  lengths=[%s]@." (i + 1) Pacor_dme.Candidate.pp c
         (String.concat ";"
            (Array.to_list (Array.map string_of_int c.full_path_lengths))))
    cands

let print_table2 () =
  let designs =
    if quick then Pacor_designs.Table1.small_names else Pacor_designs.Table1.names
  in
  Format.printf "@.== Table 2: self-comparison on %s ==@."
    (String.concat ", " designs);
  match
    Pacor_designs.Harness.measure_table2
      ~progress:(fun n -> Format.eprintf "measured %s@." n)
      designs
  with
  | Error e -> Format.printf "measurement failed: %s@." e
  | Ok rows ->
    Format.printf "Measured (this machine, synthetic stand-ins):@.";
    Pacor.Report.print_table Format.std_formatter rows;
    Format.printf "@.Published Table 2 (authors' testbed):@.";
    let paper =
      List.filter
        (fun r ->
           List.exists (fun m -> m.Pacor.Report.design = r.Pacor.Report.design) rows)
        Pacor.Report.paper_table2
    in
    Pacor.Report.print_table Format.std_formatter paper;
    Format.printf "@.Shape checks (Sec. 7 qualitative claims, on measured data):@.";
    List.iter
      (fun (name, ok) ->
         Format.printf "  [%s] %s@." (if ok then "PASS" else "FAIL") name)
      (Pacor.Report.shape_checks ~measured:rows)

(* Extension studies beyond the paper's evaluation. *)

let print_rsmt_comparison () =
  Format.printf
    "@.== Extension: cost of length matching (DME balanced tree vs RSMT) ==@.";
  let grid = Pacor_grid.Routing_grid.create ~width:20 ~height:20 () in
  let cases =
    [ ("fig3-4sinks", fig3_sinks);
      ("triple", Pacor_geom.[ Point.make 3 3; Point.make 12 4; Point.make 7 11 ]);
      ("spread-5", Pacor_geom.
         [ Point.make 2 2; Point.make 16 3; Point.make 9 9; Point.make 3 15;
           Point.make 15 16 ]) ]
  in
  Format.printf "%-12s %6s %6s %9s@." "sinks" "RSMT" "DME" "overhead";
  List.iter
    (fun (name, sinks) ->
       let rsmt = (Pacor_route.Steiner.rsmt sinks).length in
       match Pacor_dme.Candidate.enumerate ~grid ~usable:(fun _ -> true) sinks with
       | [] -> Format.printf "%-12s (no DME candidate)@." name
       | best :: _ ->
         Format.printf "%-12s %6d %6d %8.0f%%@." name rsmt
           best.Pacor_dme.Candidate.total_estimate
           (100.0
            *. (float_of_int best.Pacor_dme.Candidate.total_estimate /. float_of_int rsmt
                -. 1.0)))
    cases

let print_delta_sweep () =
  Format.printf "@.== Extension: length-matching threshold sweep (S3, PACOR) ==@.";
  match Pacor_designs.Sweep.run_design ~deltas:[ 0; 1; 2; 3; 4 ] "S3" with
  | Error e -> Format.printf "sweep failed: %s@." e
  | Ok samples -> Pacor_designs.Sweep.pp_table Format.std_formatter samples

let print_scaling () =
  Format.printf "@.== Extension: scaling study (doubling chip area per step) ==@.";
  let steps = if quick then 3 else 5 in
  match Pacor_designs.Scaling.measure (Pacor_designs.Scaling.family ~steps ()) with
  | Error e -> Format.printf "scaling failed: %s@." e
  | Ok samples -> Pacor_designs.Scaling.pp_table Format.std_formatter samples

(* ------------------------------------------------------------------ *)
(* Jobs scaling: the pacor_par domain pool on the synthetic scaling    *)
(* designs — the data behind BENCH_parallel.json.                      *)
(* ------------------------------------------------------------------ *)

let scaling_batch ~steps ~seeds =
  (* Replicate each scaling spec under [seeds] distinct PRNG seeds so the
     pool has enough independent instances to shard. *)
  Pacor_designs.Scaling.family ~steps ()
  |> List.concat_map (fun (spec : Pacor_designs.Synthetic.spec) ->
    List.init seeds (fun k ->
      let spec =
        { spec with
          Pacor_designs.Synthetic.name = Printf.sprintf "%s#%d" spec.name k;
          seed = Int64.add spec.seed (Int64.of_int (97 * k)) }
      in
      match Pacor_designs.Synthetic.generate spec with
      | Ok p -> (spec.Pacor_designs.Synthetic.name, p)
      | Error e -> failwith (spec.Pacor_designs.Synthetic.name ^ ": " ^ e)))

(* Deterministic digest of a batch's routing results: identical across
   jobs counts iff the pool preserved sequential semantics. *)
let batch_fingerprint (s : Pacor_par.Batch.summary) =
  List.fold_left
    (fun (matched, total) (i : Pacor_par.Batch.item) ->
       match i.Pacor_par.Batch.solution with
       | Error _ -> (matched, total)
       | Ok sol ->
         let st = Pacor.Solution.stats sol in
         ( matched + st.Pacor.Solution.matched_clusters,
           total + st.Pacor.Solution.total_length ))
    (0, 0) s.Pacor_par.Batch.items

let print_jobs_scaling ~steps ~seeds ~jobs_list () =
  Format.printf "@.== Jobs scaling: domain-pool batch routing (pacor_par) ==@.";
  let named = scaling_batch ~steps ~seeds in
  let cores = Domain.recommended_domain_count () in
  Format.printf "%d instances, %d core(s) visible to the runtime@."
    (List.length named) cores;
  if not (Pacor_route.Budget.is_no_limits bench_limits) then
    Format.printf "budget: %a, retries=%d@." Pacor_route.Budget.pp_limits
      bench_limits bench_retries;
  let config = { Pacor.Config.default with Pacor.Config.limits = bench_limits } in
  (* One unmeasured warm-up batch: the first run in the process pays heap
     growth and code warm-up for everyone after it, which used to show up
     as a fake >1x "speedup" for whichever jobs count ran second. *)
  let warm =
    Pacor_par.Batch.run_problems ~jobs:1 ~retries:bench_retries ~config named
  in
  (* Interleaved rounds, per-jobs minimum: sampling every jobs count in
     each round spreads shared-machine load drift evenly across the
     column, and the min over rounds estimates the contention-free floor
     — raw single samples jitter +-15% on a busy box, far above the 3%
     no-regression bound asserted below. Routing results are identical
     across rounds (determinism contract), so keeping any round's
     summary is sound. *)
  (* Process CPU time alongside wall clock: on one core every jobs count
     runs on a single domain (the pool clamps), so CPU time is a
     like-for-like overhead measure that a busy neighbour on a shared
     box cannot inflate — wall clock there jitters +-15%, an order of
     magnitude above the 3% bound asserted below. On > 1 core CPU time
     sums across domains and only wall clock measures speedup. Each CPU
     sample spans [reps] consecutive batches, sized from the warm-up
     batch so a sample covers >= 0.5s — [Sys.time]'s 10ms tick would
     otherwise eat the whole bound on a small (smoke-sized) batch. *)
  let rounds = 3 in
  let reps =
    let per_batch = Float.max warm.Pacor_par.Batch.elapsed_s 0.01 in
    max 3 (min 50 (int_of_float (Float.ceil (0.5 /. per_batch))))
  in
  let samples =
    List.init rounds (fun _ ->
        List.map
          (fun jobs ->
             let c0 = Sys.time () in
             let batches =
               List.init reps (fun _ ->
                   Pacor_par.Batch.run_problems ~jobs ~retries:bench_retries
                     ~config named)
             in
             let cpu = (Sys.time () -. c0) /. float_of_int reps in
             let s =
               List.fold_left
                 (fun (b : Pacor_par.Batch.summary) (s : Pacor_par.Batch.summary) ->
                    if s.Pacor_par.Batch.elapsed_s < b.Pacor_par.Batch.elapsed_s
                    then s
                    else b)
                 (List.hd batches) (List.tl batches)
             in
             (jobs, (s, cpu)))
          jobs_list)
  in
  let runs =
    List.map
      (fun jobs ->
         let best =
           List.fold_left
             (fun acc round ->
                let (s', cpu') = List.assoc jobs round in
                match acc with
                | Some ((b : Pacor_par.Batch.summary), bc) ->
                  Some
                    (( (if s'.Pacor_par.Batch.elapsed_s
                        < b.Pacor_par.Batch.elapsed_s
                        then s'
                        else b),
                       min bc cpu' ))
                | None -> Some (s', cpu'))
             None samples
         in
         let s, cpu = Option.get best in
         (jobs, s, cpu, batch_fingerprint s))
      jobs_list
  in
  let base_elapsed =
    match runs with (_, s, _, _) :: _ -> s.Pacor_par.Batch.elapsed_s | [] -> 0.0
  in
  let base_cpu = match runs with (_, _, c, _) :: _ -> c | [] -> 0.0 in
  let base_fp = match runs with (_, _, _, fp) :: _ -> fp | [] -> (0, 0) in
  Format.printf "%6s %10s %10s %10s %13s %9s %12s@." "jobs" "elapsed" "cpu"
    "speedup" "deterministic" "degraded" "quarantined";
  List.iter
    (fun (jobs, (s : Pacor_par.Batch.summary), cpu, fp) ->
       Format.printf "%6d %9.2fs %9.2fs %9.2fx %13s %9d %12d@." jobs
         s.Pacor_par.Batch.elapsed_s cpu
         (if s.Pacor_par.Batch.elapsed_s > 0.0 then
            base_elapsed /. s.Pacor_par.Batch.elapsed_s
          else 1.0)
         (if fp = base_fp then "yes" else "NO (BUG)")
         s.Pacor_par.Batch.degraded_jobs
         (List.length s.Pacor_par.Batch.quarantined))
    runs;
  (* Machine-readable record for the perf trajectory. *)
  let json =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n";
    Printf.bprintf buf "  \"bench\": \"pacor-jobs-scaling\",\n";
    Printf.bprintf buf "  \"cores\": %d,\n" cores;
    Printf.bprintf buf "  \"instances\": %d,\n" (List.length named);
    Printf.bprintf buf "  \"designs\": [%s],\n"
      (String.concat ", " (List.map (fun (n, _) -> Printf.sprintf "%S" n) named));
    Printf.bprintf buf "  \"results\": [\n";
    List.iteri
      (fun i (jobs, (s : Pacor_par.Batch.summary), cpu, fp) ->
         let matched, total = fp in
         Printf.bprintf buf
           "    {\"jobs\": %d, \"elapsed_s\": %.4f, \"cpu_s\": %.4f, \
            \"speedup_vs_jobs1\": %.3f, \"cpu_vs_jobs1\": %.3f, \
            \"matched\": %d, \"total_length\": %d, \
            \"deterministic\": %b}%s\n"
           jobs s.Pacor_par.Batch.elapsed_s cpu
           (if s.Pacor_par.Batch.elapsed_s > 0.0 then
              base_elapsed /. s.Pacor_par.Batch.elapsed_s
            else 1.0)
           (if cpu > 0.0 then base_cpu /. cpu else 1.0)
           matched total (fp = base_fp)
           (if i = List.length runs - 1 then "" else ","))
      runs;
    Buffer.add_string buf "  ]\n}\n";
    Buffer.contents buf
  in
  Format.printf "@.%s@." json;
  (match json_out with
   | None -> ()
   | Some path ->
     let oc = open_out path in
     output_string oc json;
     close_out oc;
     Format.printf "jobs-scaling JSON written to %s@." path);
  (* Assertions, conditional on the recorded core count. Determinism
     holds everywhere. With one core every jobs count runs on a single
     domain, so the honest no-regression bound (jobs > 1 within 3% of
     jobs=1 — the old locked-queue pool lost up to 18% here) is checked
     on process CPU time, which shared-machine load cannot inflate.
     With real cores, wall-clock speedup at jobs=4 must clear 1.5x. *)
  let failures = ref [] in
  let speedup (s : Pacor_par.Batch.summary) =
    if s.Pacor_par.Batch.elapsed_s > 0.0 then
      base_elapsed /. s.Pacor_par.Batch.elapsed_s
    else 1.0
  in
  List.iter
    (fun (jobs, s, _cpu, fp) ->
       if fp <> base_fp then
         failures :=
           Printf.sprintf "jobs=%d results differ from jobs=1 (determinism)" jobs
           :: !failures;
       (* Per-round ratio, best round: jobs=1 and jobs=N sampled within
          the same round share the same heap/GC state, so slow drift
          across the process lifetime cancels; one clean round is enough
          to show the scheduler itself costs < 3%, while the old locked
          queue's 10-18% overhead failed every round decisively. *)
       let best_ratio =
         List.fold_left
           (fun acc round ->
              let _, c1 = List.assoc 1 round in
              let _, cn = List.assoc jobs round in
              if cn > 0.0 then Float.max acc (c1 /. cn) else acc)
           0.0 samples
       in
       if cores = 1 && jobs > 1 && best_ratio < 0.97 then
         failures :=
           Printf.sprintf
             "jobs=%d CPU time is %.3fx of jobs=1 on 1 core (bound: 0.97x)"
             jobs best_ratio
           :: !failures;
       if cores > 1 && jobs = 4 && speedup s < 1.5 then
         failures :=
           Printf.sprintf "jobs=4 is %.3fx of jobs=1 on %d cores (bound: 1.5x)"
             (speedup s) cores
           :: !failures)
    runs;
  match !failures with
  | [] -> Format.printf "jobs-scaling assertions: OK@."
  | fs ->
    List.iter (fun f -> Format.eprintf "jobs-scaling ASSERT FAIL: %s@." f)
      (List.rev fs);
    exit 1

(* ------------------------------------------------------------------ *)
(* Steal bench: scheduler micro-benchmark — a sequential loop vs one   *)
(* locked shared queue vs the work-stealing deques, on uniform and     *)
(* skewed task-size distributions. The JSON record is committed as     *)
(* BENCH_steal.json; each spec's fingerprint (task shape + checksum, a *)
(* pure function of the spec — mode- and domain-independent) is what   *)
(* CI checks for drift. Wall-clock, steals and parks are machine-      *)
(* dependent and excluded from the fingerprint.                        *)
(* ------------------------------------------------------------------ *)

(* Deterministic spin the optimiser cannot delete: a small LCG whose
   result feeds the run checksum. *)
let spin_work iters =
  let acc = ref 1 in
  for i = 1 to iters do
    acc := ((!acc * 48271) + i) land 0x3FFFFFF
  done;
  !acc

(* Equal total work across distributions so rows are comparable. Uniform
   gives every task [w]; skewed gives task 0 half the total and spreads
   the rest evenly — the shape that degrades a single shared queue (one
   worker disappears into the big task while everyone else serialises on
   the lock for crumbs) and that work-stealing absorbs (the big task's
   worker keeps its deque, the others drain the remainder cheaply). *)
let steal_tasks ~dist ~ntasks ~w =
  match dist with
  | `Uniform -> Array.make ntasks w
  | `Skewed ->
    let total = ntasks * w in
    let rest = max 1 (total / 2 / max 1 (ntasks - 1)) in
    Array.init ntasks (fun i -> if i = 0 then total / 2 else rest)

let steal_checksum sum = sum land 0xFFFFFF

let run_steal_sequential tasks =
  let acc = ref 0 in
  Array.iter (fun w -> acc := !acc + spin_work w) tasks;
  steal_checksum !acc

(* The pre-work-stealing pool shape: every worker pops from one
   mutex-protected queue. *)
let run_steal_single_queue ~domains tasks =
  let q = Queue.create () in
  let m = Mutex.create () in
  Array.iter (fun w -> Queue.push w q) tasks;
  let acc = Atomic.make 0 in
  let worker () =
    let rec go () =
      Mutex.lock m;
      let t = if Queue.is_empty q then None else Some (Queue.pop q) in
      Mutex.unlock m;
      match t with
      | Some w ->
        ignore (Atomic.fetch_and_add acc (spin_work w));
        go ()
      | None -> ()
    in
    go ()
  in
  let ds = List.init domains (fun _ -> Domain.spawn worker) in
  List.iter Domain.join ds;
  steal_checksum (Atomic.get acc)

(* The real scheduler: one pool task forks every work item through
   parallel_for, so items start on the forking worker's deque and reach
   the other domains only by stealing. *)
let run_steal_ws ~domains tasks =
  Pacor_par.Pool.with_pool ~domains ~jobs:domains (fun pool ->
    let sched = Pacor_par.Pool.sched pool in
    let acc = Atomic.make 0 in
    ignore
      (Pacor_par.Pool.map_ctx pool
         (fun _ () ->
            Pacor_sched.Sched.parallel_for sched ~n:(Array.length tasks)
              (fun i -> ignore (Atomic.fetch_and_add acc (spin_work tasks.(i)))))
         [ () ]);
    (steal_checksum (Atomic.get acc), Pacor_par.Pool.sched_stats pool))

let print_steal_bench () =
  Format.printf "@.== Steal bench: sequential vs single queue vs work stealing ==@.";
  let cores = Domain.recommended_domain_count () in
  Format.printf "%d core(s) visible to the runtime@." cores;
  let specs =
    (* Smoke specs are a strict subset of the full run, so every smoke
       fingerprint must appear verbatim in the committed record. *)
    if smoke || quick then [ (512, 800) ] else [ (512, 800); (2048, 2000) ]
  in
  let domains_list = if smoke || quick then [ 1; 2 ] else [ 1; 2; 4 ] in
  let rows =
    List.concat_map
      (fun (ntasks, w) ->
         List.map
           (fun dist ->
              let tasks = steal_tasks ~dist ~ntasks ~w in
              let t0 = Unix.gettimeofday () in
              let seq_sum = run_steal_sequential tasks in
              let seq_s = Unix.gettimeofday () -. t0 in
              let modes =
                List.concat_map
                  (fun domains ->
                     let t0 = Unix.gettimeofday () in
                     let sq_sum = run_steal_single_queue ~domains tasks in
                     let sq_s = Unix.gettimeofday () -. t0 in
                     let t0 = Unix.gettimeofday () in
                     let ws_sum, st = run_steal_ws ~domains tasks in
                     let ws_s = Unix.gettimeofday () -. t0 in
                     (* Scheduling cost per task, spread over the domains
                        that paid it — meaningful as pure overhead at
                        domains=1, an efficiency gauge above that. *)
                     let ns_per_task elapsed =
                       (elapsed *. float_of_int domains -. seq_s)
                       /. float_of_int ntasks *. 1e9
                     in
                     [ ("single-queue", domains, sq_s, sq_sum, None,
                        ns_per_task sq_s);
                       ("work-stealing", domains, ws_s, ws_sum, Some st,
                        ns_per_task ws_s) ])
                  domains_list
              in
              (dist, ntasks, w, seq_sum, seq_s, modes))
           [ `Uniform; `Skewed ])
      specs
  in
  Format.printf "%8s %7s %6s %14s %8s %10s %9s %8s %7s %6s@." "dist" "ntasks"
    "work" "mode" "domains" "elapsed" "speedup" "ns/task" "steals" "parks";
  List.iter
    (fun (dist, ntasks, w, seq_sum, seq_s, modes) ->
       let dist_name = match dist with `Uniform -> "uniform" | `Skewed -> "skewed" in
       Format.printf "%8s %7d %6d %14s %8s %9.4fs %9s %8s %7s %6s@." dist_name
         ntasks w "sequential" "-" seq_s "1.00x" "-" "-" "-";
       List.iter
         (fun (mode, domains, elapsed, sum, st, ns) ->
            if sum <> seq_sum then
              Format.printf "!! %s domains=%d checksum mismatch (BUG)@." mode domains;
            Format.printf "%8s %7d %6d %14s %8d %9.4fs %8.2fx %8.0f %7s %6s@."
              dist_name ntasks w mode domains elapsed
              (if elapsed > 0.0 then seq_s /. elapsed else 1.0)
              ns
              (match st with
               | Some (s : Pacor_sched.Sched.stats) -> string_of_int s.steals
               | None -> "-")
              (match st with
               | Some (s : Pacor_sched.Sched.stats) -> string_of_int s.parks
               | None -> "-"))
         modes)
    rows;
  let json =
    let buf = Buffer.create 2048 in
    Buffer.add_string buf "{\n";
    Printf.bprintf buf "  \"bench\": \"pacor-steal-bench\",\n";
    Printf.bprintf buf "  \"cores\": %d,\n" cores;
    Printf.bprintf buf "  \"results\": [\n";
    List.iteri
      (fun i (dist, ntasks, w, seq_sum, seq_s, modes) ->
         let dist_name = match dist with `Uniform -> "uniform" | `Skewed -> "skewed" in
         Printf.bprintf buf
           "    {\"fingerprint\": \"stealb dist=%s ntasks=%d work=%d checksum=%d\",\n"
           dist_name ntasks w seq_sum;
         Printf.bprintf buf "     \"seq_elapsed_s\": %.4f, \"modes\": [\n" seq_s;
         List.iteri
           (fun j (mode, domains, elapsed, sum, st, ns) ->
              Printf.bprintf buf
                "      {\"mode\": %S, \"domains\": %d, \"elapsed_s\": %.4f, \
                 \"speedup_vs_seq\": %.3f, \"sched_ns_per_task\": %.0f, \
                 \"checksum_ok\": %b%s}%s\n"
                mode domains elapsed
                (if elapsed > 0.0 then seq_s /. elapsed else 1.0)
                ns (sum = seq_sum)
                (match st with
                 | Some (s : Pacor_sched.Sched.stats) ->
                   Printf.sprintf ", \"steals\": %d, \"parks\": %d, \"executed\": %d"
                     s.steals s.parks s.executed
                 | None -> "")
                (if j = List.length modes - 1 then "" else ","))
           modes;
         Printf.bprintf buf "    ]}%s\n" (if i = List.length rows - 1 then "" else ",")
      )
      rows;
    Buffer.add_string buf "  ]\n}\n";
    Buffer.contents buf
  in
  Format.printf "@.%s@." json;
  match json_out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc json;
    close_out oc;
    Format.printf "steal-bench JSON written to %s@." path

(* ------------------------------------------------------------------ *)
(* Route bench: conflict-driven incremental negotiation vs the paper's *)
(* full-reroute loop, plus the escape-stage min-cost-flow solver race. *)
(* The JSON record is committed as BENCH_route.json; its deterministic *)
(* "fingerprint" fields (routed counts, lengths, expansion counts) are *)
(* what CI checks for drift — wall-clock and allocation words are      *)
(* machine-dependent and excluded.                                     *)
(* ------------------------------------------------------------------ *)

(* A conflict-then-converge family with three ingredients, sized so the
   final routing puts every net at its Manhattan-ideal length (which lets
   the incremental engine's optimality certificate skip the baseline
   fallback):

   - a sealed two-row "tube" (rows 2-3, walls above and below) crossed by
     one long diagonal spine net (0,2)->(size-1,3). The greedy first
     round steps the spine onto row 3 immediately and claims it end to
     end;
   - [g] walled pockets opening off the tube ceiling. Each pocket net's
     unique shortest path runs along row 3 into its shaft, so every
     pocket net fails round 1; conflict analysis rips the spine, the
     pockets route ideally, and the spine re-routes along row 2 with a
     late step up — all at ideal length, in two rounds;
   - a block of tightly packed diagonal filler nets (adjacent one-row
     bands, listed top-down so round 1 resolves them disjointly at ideal
     length). The incremental engine never touches them again; the
     full-reroute loop rips, bumps and displaces them every round, which
     cascades into fresh conflicts and — at the larger sizes — livelocks
     until gamma. *)
let negotiation_instance size =
  let open Pacor_geom in
  let grid = Pacor_grid.Routing_grid.create ~width:size ~height:size () in
  let walls = ref [] in
  let wall x y = walls := Point.make x y :: !walls in
  let g = max 1 ((size - 12) / 6) in
  let mxs = List.init g (fun j -> 4 + (6 * j)) in
  for x = 0 to size - 1 do
    wall x 1;
    if not (List.mem x mxs) then wall x 4
  done;
  List.iter
    (fun mx ->
       wall (mx - 1) 4;
       wall (mx + 1) 4;
       wall (mx - 1) 5;
       wall (mx + 1) 5;
       wall mx 6)
    mxs;
  let base = 8 and top = size - 2 in
  let fillers =
    List.init (top - base) (fun i ->
      (Point.make 1 (top - 1 - i), Point.make (size - 2) (top - i)))
  in
  let spine = (Point.make 0 2, Point.make (size - 1) 3) in
  let pockets = List.map (fun mx -> (Point.make (mx - 2) 3, Point.make mx 5)) mxs in
  let edges =
    List.mapi
      (fun i ends -> { Pacor_route.Negotiation.edge_id = i; ends })
      (fillers @ [ spine ] @ pockets)
  in
  (grid, !walls, edges)

type mode_sample = {
  routed : int;
  length : int;
  rounds : int;
  pops : int;          (* A* expansions *)
  touched : int;
  searches : int;
  wall_s : float;
  minor_words : float;
}

let run_negotiation_mode mode ~grid ~walls ~edges =
  let stats = Pacor_route.Search_stats.create () in
  let ws = Pacor_route.Workspace.create ~stats () in
  let obstacles = Pacor_grid.Routing_grid.fresh_work_map grid in
  List.iter (Pacor_grid.Obstacle_map.block obstacles) walls;
  let config = { Pacor_route.Negotiation.default_config with mode } in
  let minor0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let out = Pacor_route.Negotiation.route ~workspace:ws ~config ~grid ~obstacles edges in
  let wall_s = Unix.gettimeofday () -. t0 in
  let minor_words = Gc.minor_words () -. minor0 in
  let s = Pacor_route.Search_stats.snapshot stats in
  let length =
    List.fold_left
      (fun acc (_, p) -> acc + Pacor_grid.Path.length p)
      0 out.Pacor_route.Negotiation.paths
  in
  { routed = List.length out.Pacor_route.Negotiation.paths;
    length;
    rounds = out.Pacor_route.Negotiation.iterations;
    pops = s.Pacor_route.Search_stats.pops;
    touched = s.Pacor_route.Search_stats.touched;
    searches = s.Pacor_route.Search_stats.searches;
    wall_s;
    minor_words }

(* Escape-stage instance: pins across the top boundary, cluster start
   cells spread across a low row — the same network shape the engine's
   escape stage builds, at a controllable size (and, for the escape-bench
   race, at Chip1's exact 179x413 footprint). *)
let escape_instance_rect ~width ~height =
  let grid = Pacor_grid.Routing_grid.create ~width ~height () in
  let pins =
    List.init ((width - 2) / 2) (fun i -> Pacor_geom.Point.make (1 + (2 * i)) 0)
  in
  let nreq = width / 4 in
  let requests =
    List.init nreq (fun i ->
      { Pacor_flow.Escape.cluster_idx = i;
        start_cells = [ Pacor_geom.Point.make (2 + (3 * i)) (height - 3) ] })
  in
  (grid, pins, requests)

let escape_instance size = escape_instance_rect ~width:size ~height:size

let run_escape_solver solver ~grid ~pins ~requests =
  let t0 = Unix.gettimeofday () in
  let result =
    Pacor_flow.Escape.route ~solver ~grid ~claimed:Pacor_geom.Point.Set.empty ~pins
      requests
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  match result with
  | Error e -> failwith ("route-bench escape instance invalid: " ^ e)
  | Ok out ->
    (List.length out.Pacor_flow.Escape.routed, out.Pacor_flow.Escape.total_length, wall_s)

let print_route_bench () =
  Format.printf "@.== Route bench: incremental negotiation vs full reroute ==@.";
  let sizes = if smoke || quick then [ 16; 24 ] else [ 16; 24; 32; 48 ] in
  let neg_rows =
    List.map
      (fun size ->
         let grid, walls, edges = negotiation_instance size in
         let full =
           run_negotiation_mode Pacor_route.Negotiation.Full_reroute ~grid ~walls ~edges
         in
         let inc =
           run_negotiation_mode Pacor_route.Negotiation.Incremental ~grid ~walls ~edges
         in
         (size, List.length edges, full, inc))
      sizes
  in
  Format.printf "%5s %6s | %18s %8s %7s | %18s %8s %7s | %6s %9s@." "size" "edges"
    "full (routed,len)" "pops" "rounds" "inc (routed,len)" "pops" "rounds" "ratio"
    "no-worse";
  List.iter
    (fun (size, nedges, full, inc) ->
       let ratio =
         if inc.pops > 0 then float_of_int full.pops /. float_of_int inc.pops else 0.0
       in
       let no_worse =
         inc.routed > full.routed
         || (inc.routed = full.routed && inc.length <= full.length)
       in
       Format.printf "%5d %6d | (%6d,%8d) %8d %7d | (%6d,%8d) %8d %7d | %5.2fx %9s@."
         size nedges full.routed full.length full.pops full.rounds inc.routed inc.length
         inc.pops inc.rounds ratio
         (if no_worse then "yes" else "NO (BUG)"))
    neg_rows;
  let total_full = List.fold_left (fun a (_, _, f, _) -> a + f.pops) 0 neg_rows in
  let total_inc = List.fold_left (fun a (_, _, _, i) -> a + i.pops) 0 neg_rows in
  Format.printf "total expansions: full=%d incremental=%d (%.2fx reduction)@."
    total_full total_inc
    (if total_inc > 0 then float_of_int total_full /. float_of_int total_inc else 0.0);
  Format.printf "@.== Route bench: escape min-cost-flow solver race ==@.";
  let esc_sizes = if smoke || quick then [ 16; 24 ] else [ 16; 24; 32 ] in
  let esc_rows =
    List.map
      (fun size ->
         let grid, pins, requests = escape_instance size in
         let d_routed, d_len, d_wall = run_escape_solver Pacor_flow.Escape.Dijkstra ~grid ~pins ~requests in
         let s_routed, s_len, s_wall = run_escape_solver Pacor_flow.Escape.Spfa ~grid ~pins ~requests in
         (size, List.length requests, (d_routed, d_len, d_wall), (s_routed, s_len, s_wall)))
      esc_sizes
  in
  Format.printf "%5s %9s | %15s %10s | %15s %10s | %6s@." "size" "requests"
    "dijkstra (r,len)" "wall" "spfa (r,len)" "wall" "agree";
  List.iter
    (fun (size, nreq, (dr, dl, dw), (sr, sl, sw)) ->
       Format.printf "%5d %9d | (%5d,%8d) %9.4fs | (%5d,%8d) %9.4fs | %6s@." size nreq
         dr dl dw sr sl sw
         (if dr = sr && dl = sl then "yes" else "NO (BUG)"))
    esc_rows;
  (* Machine-readable record. *)
  let json =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\n";
    Printf.bprintf buf "  \"bench\": \"pacor-route-bench\",\n";
    Printf.bprintf buf "  \"negotiation\": [\n";
    List.iteri
      (fun i (size, nedges, full, inc) ->
         let mode_json (m : mode_sample) =
           Printf.sprintf
             "{\"routed\": %d, \"length\": %d, \"rounds\": %d, \"pops\": %d, \
              \"touched\": %d, \"searches\": %d, \"wall_s\": %.6f, \"minor_words\": %.0f}"
             m.routed m.length m.rounds m.pops m.touched m.searches m.wall_s
             m.minor_words
         in
         Printf.bprintf buf
           "    {\"size\": %d, \"edges\": %d,\n     \"full\": %s,\n     \"incremental\": %s,\n\
            \     \"expansion_ratio\": %.3f, \"no_worse\": %b,\n\
            \     \"fingerprint\": \"neg size=%d routed=%d/%d len=%d/%d pops=%d/%d\"}%s\n"
           size nedges (mode_json full) (mode_json inc)
           (if inc.pops > 0 then float_of_int full.pops /. float_of_int inc.pops else 0.0)
           (inc.routed > full.routed
            || (inc.routed = full.routed && inc.length <= full.length))
           size full.routed inc.routed full.length inc.length full.pops inc.pops
           (if i = List.length neg_rows - 1 then "" else ","))
      neg_rows;
    Printf.bprintf buf "  ],\n";
    Printf.bprintf buf
      "  \"totals\": {\"full_pops\": %d, \"incremental_pops\": %d, \
       \"expansion_ratio\": %.3f},\n"
      total_full total_inc
      (if total_inc > 0 then float_of_int total_full /. float_of_int total_inc else 0.0);
    Printf.bprintf buf "  \"escape\": [\n";
    List.iteri
      (fun i (size, nreq, (dr, dl, dw), (sr, sl, sw)) ->
         Printf.bprintf buf
           "    {\"size\": %d, \"requests\": %d, \"dijkstra_wall_s\": %.6f, \
            \"spfa_wall_s\": %.6f,\n\
            \     \"fingerprint\": \"esc size=%d routed=%d/%d len=%d/%d\"}%s\n"
           size nreq dw sw size dr sr dl sl
           (if i = List.length esc_rows - 1 then "" else ","))
      esc_rows;
    Printf.bprintf buf "  ]\n}\n";
    Buffer.contents buf
  in
  Format.printf "@.%s@." json;
  match json_out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc json;
    close_out oc;
    Format.printf "route-bench JSON written to %s@." path

(* ------------------------------------------------------------------ *)
(* Escape bench: the three-way min-cost-flow solver race behind        *)
(* BENCH_escape.json. Grid (CSR + persistent potentials + 0-1-BFS) is  *)
(* the engine default; Spfa and Dijkstra are the general-purpose       *)
(* solvers it must match outcome-for-outcome. Fingerprints carry the   *)
(* per-instance (routed, length) of all three solvers plus the         *)
(* max-flow feasibility bound, and the full-engine corpus outcomes     *)
(* under the Grid default — wall-clock is machine-dependent and        *)
(* excluded.                                                           *)
(* ------------------------------------------------------------------ *)

type escape_sample = {
  esc_routed : int;
  esc_length : int;
  esc_wall : float;
}

let run_escape_timed solver ~workspace ~grid ~pins ~requests =
  let t0 = Unix.gettimeofday () in
  let result =
    match solver with
    | Pacor_flow.Escape.Grid ->
      Pacor_flow.Escape.route ~workspace ~solver ~grid
        ~claimed:Pacor_geom.Point.Set.empty ~pins requests
    | _ ->
      Pacor_flow.Escape.route ~solver ~grid ~claimed:Pacor_geom.Point.Set.empty
        ~pins requests
  in
  let esc_wall = Unix.gettimeofday () -. t0 in
  match result with
  | Error e -> failwith ("escape-bench instance invalid: " ^ e)
  | Ok out ->
    { esc_routed = List.length out.Pacor_flow.Escape.routed;
      esc_length = out.Pacor_flow.Escape.total_length;
      esc_wall }

let print_escape_bench () =
  Format.printf "@.== Escape bench: Grid vs Spfa vs Dijkstra min-cost flow ==@.";
  (* Smoke sizes are a strict subset of the full run, so every smoke
     fingerprint must appear verbatim in the committed BENCH_escape.json. *)
  let dims =
    if smoke || quick then [ (24, 24); (48, 48) ]
    else [ (24, 24); (48, 48); (96, 96); (160, 160); (179, 413) ]
  in
  let ws = Pacor_route.Workspace.create () in
  let rows =
    List.map
      (fun (width, height) ->
         let grid, pins, requests = escape_instance_rect ~width ~height in
         let g = run_escape_timed Pacor_flow.Escape.Grid ~workspace:ws ~grid ~pins ~requests in
         let s = run_escape_timed Pacor_flow.Escape.Spfa ~workspace:ws ~grid ~pins ~requests in
         let d = run_escape_timed Pacor_flow.Escape.Dijkstra ~workspace:ws ~grid ~pins ~requests in
         let bound =
           Pacor_flow.Escape.feasibility_bound ~workspace:ws ~grid
             ~claimed:Pacor_geom.Point.Set.empty ~pins requests
         in
         (width, height, List.length requests, g, s, d, bound))
      dims
  in
  Format.printf "%9s %4s | %14s %9s | %9s %8s | %9s %8s | %5s %5s@." "size" "req"
    "grid (r,len)" "wall" "spfa" "vs grid" "dijkstra" "vs grid" "bound" "agree";
  List.iter
    (fun (w, h, nreq, g, s, d, bound) ->
       let agree =
         g.esc_routed = s.esc_routed && g.esc_routed = d.esc_routed
         && g.esc_length = s.esc_length && g.esc_length = d.esc_length
         && bound = g.esc_routed
       in
       let ratio x = if g.esc_wall > 0.0 then x /. g.esc_wall else 0.0 in
       Format.printf
         "%4dx%-4d %4d | (%4d,%7d) %8.4fs | %8.4fs %7.2fx | %8.4fs %7.2fx | %5d %5s@."
         w h nreq g.esc_routed g.esc_length g.esc_wall s.esc_wall (ratio s.esc_wall)
         d.esc_wall (ratio d.esc_wall) bound
         (if agree then "yes" else "NO (BUG)"))
    rows;
  (* Full-engine corpus outcomes under the Grid default: the deterministic
     fingerprint CI guards against solver regressions. *)
  Format.printf "@.== Escape bench: corpus engine outcomes (Grid default) ==@.";
  let corpus =
    match Pacor_par.Batch.load_dir "corpus" with
    | Error e -> failwith ("escape-bench: corpus load failed: " ^ e)
    | Ok named ->
      List.map
        (fun (name, problem) ->
           match Pacor.Engine.run problem with
           | Error e -> failwith (name ^ ": engine failed: " ^ e.Pacor.Engine.message)
           | Ok sol ->
             let st = Pacor.Solution.stats sol in
             (name, st.Pacor.Solution.matched_clusters, st.Pacor.Solution.total_length))
        named
  in
  List.iter
    (fun (name, matched, len) ->
       Format.printf "  %-24s matched=%d total_length=%d@." name matched len)
    corpus;
  let json =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\n";
    Printf.bprintf buf "  \"bench\": \"pacor-escape-bench\",\n";
    Printf.bprintf buf "  \"instances\": [\n";
    List.iteri
      (fun i (w, h, nreq, g, s, d, bound) ->
         Printf.bprintf buf
           "    {\"width\": %d, \"height\": %d, \"requests\": %d,\n\
            \     \"grid_wall_s\": %.6f, \"spfa_wall_s\": %.6f, \"dijkstra_wall_s\": %.6f,\n\
            \     \"speedup_vs_spfa\": %.2f, \"speedup_vs_dijkstra\": %.2f,\n\
            \     \"fingerprint\": \"escb %dx%d grid=%d/%d spfa=%d/%d dijkstra=%d/%d bound=%d\"}%s\n"
           w h nreq g.esc_wall s.esc_wall d.esc_wall
           (if g.esc_wall > 0.0 then s.esc_wall /. g.esc_wall else 0.0)
           (if g.esc_wall > 0.0 then d.esc_wall /. g.esc_wall else 0.0)
           w h g.esc_routed g.esc_length s.esc_routed s.esc_length d.esc_routed
           d.esc_length bound
           (if i = List.length rows - 1 then "" else ","))
      rows;
    Printf.bprintf buf "  ],\n";
    Printf.bprintf buf "  \"corpus\": [\n";
    List.iteri
      (fun i (name, matched, len) ->
         Printf.bprintf buf
           "    {\"design\": %S, \"fingerprint\": \"corpus %s matched=%d len=%d\"}%s\n"
           name name matched len
           (if i = List.length corpus - 1 then "" else ","))
      corpus;
    Printf.bprintf buf "  ]\n}\n";
    Buffer.contents buf
  in
  Format.printf "@.%s@." json;
  match json_out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc json;
    close_out oc;
    Format.printf "escape-bench JSON written to %s@." path

(* ------------------------------------------------------------------ *)
(* Hier bench: flat vs hierarchical two-stage routing on the Scaled    *)
(* Chip1-like family (area quadratic in scale, content linear — the    *)
(* regime the hierarchy exists for), plus a Chip1 regression row. Per  *)
(* design both legs run to completion; the hierarchical leg reports    *)
(* the CONFINED attempt's search totals (Engine.run_report) separately *)
(* from whatever the never-worse race added, so the speedup column is  *)
(* the cost a hier-only deployment would pay. Expansion counts, ladder *)
(* tiers and solution scores are deterministic fingerprints; wall-     *)
(* clock is printed and recorded but excluded from fingerprints. The   *)
(* data behind BENCH_hier.json.                                       *)
(* ------------------------------------------------------------------ *)

let hier_load name =
  match Pacor_designs.Table1.load name with
  | Ok p -> p
  | Error _ ->
    (match Pacor_designs.Scaled.of_name name with
     | Some s -> Pacor_designs.Scaled.load_exn s
     | None -> failwith ("hier-bench: unknown design " ^ name))

type hier_leg = {
  hl_report : Pacor.Engine.report;
  hl_wall : float;
}

let run_hier_leg ~hier problem =
  (* A fresh workspace per leg: corridor state and search counters of one
     leg must not leak into the other's telemetry. *)
  let ws = Pacor_route.Workspace.create () in
  let config = { Pacor.Config.default with Pacor.Config.hier } in
  let t0 = Unix.gettimeofday () in
  match Pacor.Engine.run_report ~config ~workspace:ws problem with
  | Error e ->
    failwith (Printf.sprintf "hier-bench: engine failed in %s: %s" e.Pacor.Engine.stage e.Pacor.Engine.message)
  | Ok r -> { hl_report = r; hl_wall = Unix.gettimeofday () -. t0 }

type hier_row = {
  hr_design : string;
  hr_cells : int;
  hr_flat_pops : int;
  hr_hier_pops : int;
  hr_tier : string;
  hr_flat_score : int * int * int;   (* routed valves, matched, -length *)
  hr_hier_score : int * int * int;
  hr_flat_wall : float;
  hr_hier_wall : float;
  hr_ok : bool;  (* both legs validate AND hier kept equal-or-better *)
}

let hier_bench_row name =
  let problem = hier_load name in
  let cells = Pacor_grid.Routing_grid.cells problem.Pacor.Problem.grid in
  let flat = run_hier_leg ~hier:Pacor.Config.Hier_off problem in
  let hier = run_hier_leg ~hier:Pacor.Config.Hier_on problem in
  let pops = function
    | Some s -> s.Pacor_route.Search_stats.pops
    | None -> 0
  in
  let flat_pops = pops flat.hl_report.Pacor.Engine.flat_search in
  (* The confined attempt's own cost — what a hier-only run pays. Under
     Hier_on this is always present unless the grid coarsened below 3x3
     tiles, where the engine runs flat and we report that cost. *)
  let hier_pops =
    match hier.hl_report.Pacor.Engine.hier_search with
    | Some s -> s.Pacor_route.Search_stats.pops
    | None -> pops hier.hl_report.Pacor.Engine.flat_search
  in
  let flat_score = Pacor.Hier.score flat.hl_report.Pacor.Engine.solution in
  let hier_score = Pacor.Hier.score hier.hl_report.Pacor.Engine.solution in
  let valid sol = Pacor.Solution.validate sol = Ok () in
  let hr_ok =
    valid flat.hl_report.Pacor.Engine.solution
    && valid hier.hl_report.Pacor.Engine.solution
    && hier_score >= flat_score
  in
  { hr_design = name;
    hr_cells = cells;
    hr_flat_pops = flat_pops;
    hr_hier_pops = hier_pops;
    hr_tier = Pacor.Engine.tier_name hier.hl_report.Pacor.Engine.tier;
    hr_flat_score = flat_score;
    hr_hier_score = hier_score;
    hr_flat_wall = flat.hl_wall;
    hr_hier_wall = hier.hl_wall;
    hr_ok }

let hier_fingerprint r =
  let rv, m, nl = r.hr_flat_score in
  let rv', m', nl' = r.hr_hier_score in
  Printf.sprintf
    "hierb %s cells=%d flat=%d/%d/%d hier=%d/%d/%d tier=%s flat_pops=%d hier_pops=%d ok=%b"
    r.hr_design r.hr_cells rv m (-nl) rv' m' (-nl') r.hr_tier r.hr_flat_pops
    r.hr_hier_pops r.hr_ok

let print_hier_bench () =
  Format.printf "@.== Hier bench: flat vs hierarchical two-stage routing ==@.";
  (* Smoke designs are a strict subset of the full run, so every smoke
     fingerprint must appear verbatim in the committed BENCH_hier.json. *)
  let designs =
    if smoke || quick then [ "Chip1"; "Scaled1"; "Scaled2" ]
    else [ "Chip1"; "Scaled1"; "Scaled2"; "Scaled3"; "Scaled4"; "Scaled6" ]
  in
  let rows = List.map hier_bench_row designs in
  (* Chip1 regression row: under Hier_auto the paper corpus stays flat
     (below the cell threshold), so auto must reproduce the flat result
     exactly — tier included in the fingerprint to guard the threshold. *)
  let auto =
    let problem = hier_load "Chip1" in
    run_hier_leg ~hier:Pacor.Config.Hier_auto problem
  in
  let auto_tier = Pacor.Engine.tier_name auto.hl_report.Pacor.Engine.tier in
  let arv, am, anl = Pacor.Hier.score auto.hl_report.Pacor.Engine.solution in
  let auto_fp =
    Printf.sprintf "hierb-auto Chip1 tier=%s score=%d/%d/%d" auto_tier arv am (-anl)
  in
  Format.printf "%-8s %9s | %12s %12s %7s | %-10s | %-16s %-16s %s@." "design"
    "cells" "flat pops" "hier pops" "ratio" "tier" "flat (rv,m,len)"
    "hier (rv,m,len)" "ok";
  List.iter
    (fun r ->
       let rv, m, nl = r.hr_flat_score and rv', m', nl' = r.hr_hier_score in
       let ratio =
         if r.hr_hier_pops > 0 then float_of_int r.hr_flat_pops /. float_of_int r.hr_hier_pops
         else 0.0
       in
       Format.printf
         "%-8s %9d | %12d %12d %6.2fx | %-10s | (%3d,%2d,%6d) (%3d,%2d,%6d) %s@."
         r.hr_design r.hr_cells r.hr_flat_pops r.hr_hier_pops ratio r.hr_tier rv m
         (-nl) rv' m' (-nl')
         (if r.hr_ok then "yes" else "NO (BUG)"))
    rows;
  Format.printf "Chip1 under --hier auto: tier=%s score=(%d,%d,%d)@." auto_tier arv
    am (-anl);
  let json =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\n";
    Printf.bprintf buf "  \"bench\": \"pacor-hier-bench\",\n";
    Printf.bprintf buf "  \"instances\": [\n";
    List.iteri
      (fun i r ->
         let ratio =
           if r.hr_hier_pops > 0 then
             float_of_int r.hr_flat_pops /. float_of_int r.hr_hier_pops
           else 0.0
         in
         Printf.bprintf buf
           "    {\"design\": %S, \"cells\": %d, \"flat_pops\": %d, \"hier_pops\": %d,\n\
            \     \"speedup\": %.2f, \"tier\": %S,\n\
            \     \"flat_wall_s\": %.4f, \"hier_wall_s\": %.4f,\n\
            \     \"fingerprint\": %S}%s\n"
           r.hr_design r.hr_cells r.hr_flat_pops r.hr_hier_pops ratio r.hr_tier
           r.hr_flat_wall r.hr_hier_wall (hier_fingerprint r)
           (if i = List.length rows - 1 then "" else ","))
      rows;
    Printf.bprintf buf "  ],\n";
    Printf.bprintf buf "  \"chip1_auto\": {\"fingerprint\": %S}\n" auto_fp;
    Buffer.add_string buf "}\n";
    Buffer.contents buf
  in
  Format.printf "@.%s@." json;
  (match json_out with
   | None -> ()
   | Some path ->
     let oc = open_out path in
     output_string oc json;
     close_out oc;
     Format.printf "hier-bench JSON written to %s@." path);
  if List.exists (fun r -> not r.hr_ok) rows then
    failwith "hier-bench: a hierarchical run validated worse than flat"

(* ------------------------------------------------------------------ *)
(* Fault sweep: online repair (rip-up-around-the-fault) vs a full      *)
(* re-route of the faulted instance, on the FPVA valve-array family —  *)
(* the data behind BENCH_fault.json. Fault sets are seeded per (design,*)
(* rate) case, so fingerprints (fault counts, outcomes, expansion      *)
(* counts, length delta) are deterministic; wall-clock is printed and  *)
(* recorded but excluded from fingerprints.                            *)
(* ------------------------------------------------------------------ *)

type fault_case = {
  fc_design : string;
  fc_rate : float;
  fc_faults : int;
  fc_repaired : int;
  fc_degraded : int;
  fc_unrepairable : int;
  fc_repair_pops : int;
  fc_reroute_pops : int;
  fc_repair_wall : float;
  fc_reroute_wall : float;
  fc_len_delta : int;         (* repaired minus ripped channel length *)
  fc_valid : bool;            (* repaired solution passes Solution.validate *)
}

let run_fault_case (spec : Pacor_designs.Fpva.spec) rate =
  let name = spec.Pacor_designs.Fpva.name in
  let problem = Pacor_designs.Fpva.generate_exn spec in
  let sol =
    match Pacor.Engine.run problem with
    | Ok sol -> sol
    | Error e -> failwith (name ^ ": baseline route failed: " ^ e.Pacor.Engine.message)
  in
  (* Per-case fault seed: a function of the design seed and the rate, so
     every (design, rate) cell of the sweep is independently reproducible. *)
  let seed =
    Int64.add spec.Pacor_designs.Fpva.seed
      (Int64.of_int (1 + int_of_float (rate *. 1000.)))
  in
  let rng = Pacor_designs.Rng.create ~seed in
  let faults = Pacor_fault.Fault.inject ~rng ~rate sol in
  (* Repair arm: fresh counters so the expansion count is repair's alone. *)
  let repair_stats = Pacor_route.Search_stats.create () in
  let repair_ws = Pacor_route.Workspace.create ~stats:repair_stats () in
  let rep =
    match Pacor_fault.Repair.run ~workspace:repair_ws ~faults sol with
    | Ok rep -> rep
    | Error e -> failwith (name ^ ": repair failed: " ^ e)
  in
  let repair_pops =
    (Pacor_route.Search_stats.snapshot repair_stats).Pacor_route.Search_stats.pops
  in
  (* Full re-route arm: the engine from scratch on the faulted instance. *)
  let faulted =
    match Pacor_fault.Fault.apply problem faults with
    | Ok p -> p
    | Error e -> failwith (name ^ ": faulted instance invalid: " ^ e)
  in
  let reroute_stats = Pacor_route.Search_stats.create () in
  let reroute_ws = Pacor_route.Workspace.create ~stats:reroute_stats () in
  let t0 = Unix.gettimeofday () in
  (match Pacor.Engine.run ~workspace:reroute_ws faulted with
   | Ok _ -> ()
   | Error e -> failwith (name ^ ": full re-route failed: " ^ e.Pacor.Engine.message));
  let reroute_wall = Unix.gettimeofday () -. t0 in
  let reroute_pops =
    (Pacor_route.Search_stats.snapshot reroute_stats).Pacor_route.Search_stats.pops
  in
  let count p = List.length (List.filter p rep.Pacor_fault.Repair.reports) in
  {
    fc_design = name;
    fc_rate = rate;
    fc_faults = List.length faults;
    fc_repaired = count (fun r -> r.Pacor_fault.Repair.outcome = Pacor_fault.Repair.Repaired);
    fc_degraded =
      count (fun r ->
        match r.Pacor_fault.Repair.outcome with
        | Pacor_fault.Repair.Degraded _ -> true
        | _ -> false);
    fc_unrepairable =
      count (fun r ->
        match r.Pacor_fault.Repair.outcome with
        | Pacor_fault.Repair.Unrepairable _ -> true
        | _ -> false);
    fc_repair_pops = repair_pops;
    fc_reroute_pops = reroute_pops;
    fc_repair_wall = rep.Pacor_fault.Repair.wall_s;
    fc_reroute_wall = reroute_wall;
    fc_len_delta =
      rep.Pacor_fault.Repair.repaired_length - rep.Pacor_fault.Repair.ripped_length;
    fc_valid =
      (match Pacor.Solution.validate rep.Pacor_fault.Repair.solution with
       | Ok () -> true
       | Error _ -> false);
  }

let fault_fingerprint c =
  Printf.sprintf "fault %s r=%.2f faults=%d rep=%d deg=%d unrep=%d pops=%d/%d len_delta=%d"
    c.fc_design c.fc_rate c.fc_faults c.fc_repaired c.fc_degraded c.fc_unrepairable
    c.fc_repair_pops c.fc_reroute_pops c.fc_len_delta

let print_fault_sweep () =
  Format.printf "@.== Fault sweep: online repair vs full re-route (FPVA family) ==@.";
  (* Smoke cases are a strict subset of the full sweep, so every smoke
     fingerprint must appear verbatim in the committed BENCH_fault.json. *)
  let family = Pacor_designs.Fpva.family () in
  let specs =
    if smoke || quick then
      List.filter
        (fun (s : Pacor_designs.Fpva.spec) -> s.Pacor_designs.Fpva.name <> "fpva-8x8")
        family
    else family
  in
  let rates = if smoke || quick then [ 0.02; 0.10 ] else [ 0.02; 0.05; 0.10 ] in
  let cases =
    List.concat_map (fun spec -> List.map (run_fault_case spec) rates) specs
  in
  Format.printf "%9s %5s %7s | %4s %4s %6s | %10s %10s %7s | %10s %10s %8s | %6s@."
    "design" "rate" "faults" "rep" "deg" "unrep" "rep-pops" "full-pops" "cheaper"
    "rep-wall" "full-wall" "len-d" "valid";
  List.iter
    (fun c ->
       Format.printf
         "%9s %5.2f %7d | %4d %4d %6d | %10d %10d %7s | %9.4fs %9.4fs %8d | %6s@."
         c.fc_design c.fc_rate c.fc_faults c.fc_repaired c.fc_degraded c.fc_unrepairable
         c.fc_repair_pops c.fc_reroute_pops
         (if c.fc_repair_pops < c.fc_reroute_pops then "yes" else "NO")
         c.fc_repair_wall c.fc_reroute_wall c.fc_len_delta
         (if c.fc_valid then "yes" else "NO (BUG)"))
    cases;
  let all_cheaper = List.for_all (fun c -> c.fc_repair_pops < c.fc_reroute_pops) cases in
  let all_valid = List.for_all (fun c -> c.fc_valid) cases in
  Format.printf "repair cheaper than full re-route on every case: %s@."
    (if all_cheaper then "yes" else "NO (BUG)");
  let json =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\n";
    Printf.bprintf buf "  \"bench\": \"pacor-fault-sweep\",\n";
    Printf.bprintf buf "  \"cases\": [\n";
    List.iteri
      (fun i c ->
         Printf.bprintf buf
           "    {\"design\": %S, \"rate\": %.2f, \"faults\": %d,\n\
            \     \"repaired\": %d, \"degraded\": %d, \"unrepairable\": %d,\n\
            \     \"repair_pops\": %d, \"reroute_pops\": %d, \"cheaper\": %b,\n\
            \     \"repair_wall_s\": %.6f, \"reroute_wall_s\": %.6f,\n\
            \     \"length_delta\": %d, \"valid\": %b,\n\
            \     \"fingerprint\": \"%s\"}%s\n"
           c.fc_design c.fc_rate c.fc_faults c.fc_repaired c.fc_degraded
           c.fc_unrepairable c.fc_repair_pops c.fc_reroute_pops
           (c.fc_repair_pops < c.fc_reroute_pops) c.fc_repair_wall c.fc_reroute_wall
           c.fc_len_delta c.fc_valid (fault_fingerprint c)
           (if i = List.length cases - 1 then "" else ","))
      cases;
    Printf.bprintf buf "  ],\n";
    Printf.bprintf buf "  \"all_cheaper\": %b,\n" all_cheaper;
    Printf.bprintf buf "  \"all_valid\": %b\n" all_valid;
    Buffer.add_string buf "}\n";
    Buffer.contents buf
  in
  Format.printf "@.%s@." json;
  match json_out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc json;
    close_out oc;
    Format.printf "fault-sweep JSON written to %s@." path

(* ------------------------------------------------------------------ *)
(* Serve bench: the routing daemon under a mixed request trace — the  *)
(* data behind BENCH_serve.json. The trace is fully deterministic     *)
(* (instance seeds and the request mix are functions of the request   *)
(* index), so the per-instance route outcomes and the delta-vs-scratch*)
(* expansion totals are drift-guarded fingerprints; wall-clock        *)
(* (requests/sec, latency percentiles) is machine-dependent and       *)
(* excluded. Smoke instances are a strict subset of the full run, so  *)
(* every smoke instance fingerprint must appear verbatim in the       *)
(* committed BENCH_serve.json.                                        *)
(* ------------------------------------------------------------------ *)

module SJ = Pacor_serve.Json

let serve_spec k =
  {
    Pacor_designs.Synthetic.name = Printf.sprintf "serve-%d" k;
    width = 24 + (4 * (k mod 3));
    height = 16 + (2 * (k mod 4));
    obstacle_cells = 12;
    lm_cluster_sizes = [ 2; 2 ];
    singleton_valves = 3;
    pin_count = 12;
    seed = Int64.of_int (1000 + (37 * k));
    delta = 2;
  }

let serve_starved_spec =
  { (serve_spec 0) with Pacor_designs.Synthetic.name = "serve-starved"; seed = 999L }

let serve_generate spec =
  match Pacor_designs.Synthetic.generate spec with
  | Ok p -> p
  | Error e ->
    failwith (spec.Pacor_designs.Synthetic.name ^ ": generation failed: " ^ e)

(* Cells a delta may legally target, in deterministic order. *)
let serve_free_cells (p : Pacor.Problem.t) =
  let grid = p.Pacor.Problem.grid in
  let taken =
    List.fold_left
      (fun acc (v : Pacor_valve.Valve.t) ->
         Pacor_geom.Point.Set.add v.Pacor_valve.Valve.position acc)
      (Pacor_geom.Point.Set.of_list p.Pacor.Problem.pins)
      p.Pacor.Problem.valves
  in
  let acc = ref [] in
  for y = Pacor_grid.Routing_grid.height grid - 2 downto 1 do
    for x = Pacor_grid.Routing_grid.width grid - 2 downto 1 do
      let pt = Pacor_geom.Point.make x y in
      if Pacor_grid.Routing_grid.free grid pt
         && not (Pacor_geom.Point.Set.mem pt taken)
      then acc := pt :: !acc
    done
  done;
  !acc

let serve_blocked_cells (p : Pacor.Problem.t) =
  let acc = ref [] in
  Pacor_grid.Obstacle_map.iter_blocked
    (Pacor_grid.Routing_grid.obstacles p.Pacor.Problem.grid)
    (fun pt -> acc := pt :: !acc);
  List.sort Pacor_geom.Point.compare !acc

let sj_req fields = SJ.to_string (SJ.Obj fields)

let sj_parse line =
  match SJ.of_string line with
  | Ok j -> j
  | Error e -> failwith ("serve-bench: unparseable response " ^ line ^ ": " ^ e)

let sj_ok j =
  match Option.bind (SJ.member "ok" j) SJ.bool_opt with
  | Some b -> b
  | None -> failwith "serve-bench: response without ok field"

let sj_result_int j key =
  match Option.bind (Option.bind (SJ.member "result" j) (SJ.member key)) SJ.int_opt with
  | Some v -> v
  | None -> failwith ("serve-bench: response without result." ^ key)

let sj_result_str j key =
  match
    Option.bind (Option.bind (SJ.member "result" j) (SJ.member key)) SJ.string_opt
  with
  | Some v -> v
  | None -> failwith ("serve-bench: response without result." ^ key)

let sj_result_bool j key =
  match
    Option.bind (Option.bind (SJ.member "result" j) (SJ.member key)) SJ.bool_opt
  with
  | Some v -> v
  | None -> failwith ("serve-bench: response without result." ^ key)

let sj_cached j =
  match Option.bind (SJ.member "cached" j) SJ.bool_opt with
  | Some b -> b
  | None -> false

type serve_counts = {
  mutable sc_routes : int;
  mutable sc_cache_hits : int;
  mutable sc_deltas : int;
  mutable sc_incremental : int;
  mutable sc_fallbacks : int;
  mutable sc_refused : int;
  mutable sc_pings : int;
  mutable sc_errors : int;
  mutable sc_delta_pops : int;
  mutable sc_scratch_pops : int;
}

let print_serve_bench () =
  let k_instances = if smoke || quick then 2 else 8 in
  let n_requests = if smoke || quick then 60 else 1000 in
  let malformed_at = if smoke || quick then 17 else 500 in
  let starved_at = if smoke || quick then 23 else 700 in
  Format.printf "@.== Serve bench: daemon under a mixed %d-request trace ==@."
    n_requests;
  let problems = Array.init k_instances (fun k -> serve_generate (serve_spec k)) in
  let starved = serve_generate serve_starved_spec in
  (* Local mirror of each session's problem: the scratch arm routes the
     same mutated instance the daemon just served incrementally. *)
  let mirrors = Array.copy problems in
  let server = Pacor_serve.Server.create () in
  let ws = Pacor_serve.Server.take_workspace server in
  let scratch_stats = Pacor_route.Search_stats.create () in
  let scratch_ws = Pacor_route.Workspace.create ~stats:scratch_stats () in
  let c =
    { sc_routes = 0; sc_cache_hits = 0; sc_deltas = 0; sc_incremental = 0;
      sc_fallbacks = 0; sc_refused = 0; sc_pings = 0; sc_errors = 0;
      sc_delta_pops = 0; sc_scratch_pops = 0 }
  in
  let latencies = Array.make n_requests 0.0 in
  let instance_fps = Array.make k_instances ("", 0, 0) in
  let starved_exhausted = ref "" in
  let send i line =
    let t0 = Pacor_route.Clock.now_mono () in
    let out = Pacor_serve.Server.handle ~workspace:ws server line in
    latencies.(i) <- Pacor_route.Clock.now_mono () -. t0;
    sj_parse out.Pacor_serve.Server.line
  in
  let route_req ?(bind = false) k =
    (* Only the leading routes bind a session; repeats are pure cache
       probes, so sessions evolve through deltas alone and the local
       mirrors stay in lock-step with the daemon's session problems. *)
    sj_req
      (("id", SJ.Int k)
       :: ("op", SJ.String "route")
       :: ("problem", SJ.String (Pacor.Problem_io.to_string problems.(k)))
       :: (if bind then [ ("session", SJ.String (Printf.sprintf "s%d" k)) ] else []))
  in
  let pick l shift =
    match l with [] -> None | _ -> Some (List.nth l (shift mod List.length l))
  in
  let delta_for i =
    (* Deterministic delta choice: session by index, kind by index page,
       targets picked from the mirror's current cell lists. *)
    let session = i mod k_instances in
    let p = mirrors.(session) in
    let sname = Printf.sprintf "s%d" session in
    let base = [ ("id", SJ.Int i); ("session", SJ.String sname) ] in
    let add_obstacle shift =
      match pick (serve_free_cells p) shift with
      | None -> None
      | Some pt ->
        Some
          ( sj_req
              (base
               @ [ ("op", SJ.String "add_obstacle");
                   ("x", SJ.Int pt.Pacor_geom.Point.x);
                   ("y", SJ.Int pt.Pacor_geom.Point.y) ]),
            Pacor.Problem.add_obstacle p pt,
            session )
    in
    match (i / 5) mod 4 with
    | 0 -> (
      match
        ( pick p.Pacor.Problem.valves i,
          pick (serve_free_cells p) (i * 7) )
      with
      | Some v, Some pt ->
        Some
          ( sj_req
              (base
               @ [ ("op", SJ.String "move_valve");
                   ("valve", SJ.Int v.Pacor_valve.Valve.id);
                   ("x", SJ.Int pt.Pacor_geom.Point.x);
                   ("y", SJ.Int pt.Pacor_geom.Point.y) ]),
            Pacor.Problem.move_valve p v.Pacor_valve.Valve.id pt,
            session )
      | _ -> None)
    | 1 -> add_obstacle (i * 13)
    | 2 -> (
      match pick (serve_blocked_cells p) (i * 3) with
      | None -> add_obstacle (i * 13)
      | Some pt ->
        Some
          ( sj_req
              (base
               @ [ ("op", SJ.String "remove_obstacle");
                   ("x", SJ.Int pt.Pacor_geom.Point.x);
                   ("y", SJ.Int pt.Pacor_geom.Point.y) ]),
            Pacor.Problem.remove_obstacle p pt,
            session ))
    | _ ->
      let d =
        if (i / 20) mod 2 = 0 then p.Pacor.Problem.delta + 1
        else max 0 (p.Pacor.Problem.delta - 1)
      in
      Some
        ( sj_req (base @ [ ("op", SJ.String "set_delta"); ("delta", SJ.Int d) ]),
          Pacor.Problem.with_delta p d,
          session )
  in
  let wall0 = Pacor_route.Clock.now_mono () in
  for i = 0 to n_requests - 1 do
    if i = malformed_at then begin
      (* The one malformed request: the daemon must answer, not die. *)
      let j = send i "{this is not json" in
      if sj_ok j then failwith "serve-bench: malformed request was accepted";
      c.sc_errors <- c.sc_errors + 1
    end
    else if i = starved_at then begin
      (* The one budget-exhausted request: a dedicated instance (so the
         cache cannot answer) under a one-expansion budget. *)
      let line =
        sj_req
          [ ("id", SJ.Int i); ("op", SJ.String "route");
            ("problem", SJ.String (Pacor.Problem_io.to_string starved));
            ("limits", SJ.Obj [ ("max_expansions", SJ.Int 1) ]) ]
      in
      let j = send i line in
      if not (sj_ok j) then failwith "serve-bench: starved route errored";
      starved_exhausted := sj_result_str j "budget_exhausted";
      c.sc_routes <- c.sc_routes + 1
    end
    else if i < k_instances then begin
      (* Leading routes: one session per instance; record its fingerprint. *)
      let j = send i (route_req ~bind:true i) in
      if not (sj_ok j) then failwith "serve-bench: initial route errored";
      instance_fps.(i) <-
        ( sj_result_str j "fingerprint",
          sj_result_int j "routed_valves",
          sj_result_int j "total_length" );
      c.sc_routes <- c.sc_routes + 1
    end
    else
      match i mod 5 with
      | 0 | 3 ->
        (* Re-route an already-served instance: a cache hit unless a few
           limited or superseded entries got in the way. *)
        let k = i mod k_instances in
        let j = send i (route_req k) in
        if not (sj_ok j) then failwith "serve-bench: repeat route errored";
        c.sc_routes <- c.sc_routes + 1;
        if sj_cached j then c.sc_cache_hits <- c.sc_cache_hits + 1
      | 4 ->
        let j = send i (sj_req [ ("id", SJ.Int i); ("op", SJ.String "ping") ]) in
        if not (sj_ok j) then failwith "serve-bench: ping errored";
        c.sc_pings <- c.sc_pings + 1
      | _ -> (
        match delta_for i with
        | None ->
          let j = send i (sj_req [ ("id", SJ.Int i); ("op", SJ.String "ping") ]) in
          ignore (sj_ok j);
          c.sc_pings <- c.sc_pings + 1
        | Some (line, mirrored, session) ->
          let j = send i line in
          if sj_ok j then begin
            c.sc_deltas <- c.sc_deltas + 1;
            c.sc_delta_pops <- c.sc_delta_pops + sj_result_int j "expansions";
            if sj_result_bool j "incremental" then
              c.sc_incremental <- c.sc_incremental + 1
            else c.sc_fallbacks <- c.sc_fallbacks + 1;
            match mirrored with
            | Error e -> failwith ("serve-bench: daemon accepted what the library refused: " ^ e)
            | Ok p' ->
              mirrors.(session) <- p';
              (* Scratch arm: the engine from scratch on the same mutated
                 instance, expansions counted on a dedicated workspace. *)
              let s0 =
                (Pacor_route.Search_stats.snapshot scratch_stats)
                  .Pacor_route.Search_stats.pops
              in
              (match Pacor.Engine.run ~workspace:scratch_ws p' with
               | Ok _ -> ()
               | Error e ->
                 failwith ("serve-bench: scratch re-route failed: " ^ e.Pacor.Engine.message));
              let s1 =
                (Pacor_route.Search_stats.snapshot scratch_stats)
                  .Pacor_route.Search_stats.pops
              in
              c.sc_scratch_pops <- c.sc_scratch_pops + (s1 - s0)
          end
          else begin
            (match mirrored with
             | Ok _ -> failwith ("serve-bench: daemon refused a legal edit: " ^ line)
             | Error _ -> ());
            c.sc_refused <- c.sc_refused + 1
          end)
  done;
  let total_s = Pacor_route.Clock.now_mono () -. wall0 in
  Pacor_serve.Server.return_workspace server ws;
  let sorted = Array.copy latencies in
  Array.sort compare sorted;
  let pct p =
    sorted.(min (n_requests - 1) (int_of_float (float_of_int n_requests *. p)))
  in
  let p50 = pct 0.50 and p99 = pct 0.99 in
  let rps = if total_s > 0.0 then float_of_int n_requests /. total_s else 0.0 in
  let stats_json = SJ.to_string (Pacor_serve.Server.stats_result server) in
  let cheaper = c.sc_delta_pops < c.sc_scratch_pops in
  Format.printf "%d requests in %.3fs: %.0f req/s, p50 %.0fus, p99 %.0fus@."
    n_requests total_s rps (p50 *. 1e6) (p99 *. 1e6);
  Format.printf
    "routes=%d cache_hits=%d deltas=%d (incremental=%d fallback=%d refused=%d) pings=%d errors=%d@."
    c.sc_routes c.sc_cache_hits c.sc_deltas c.sc_incremental c.sc_fallbacks
    c.sc_refused c.sc_pings c.sc_errors;
  Format.printf "starved route: budget_exhausted=%s@." !starved_exhausted;
  Format.printf "expansions: delta=%d scratch=%d — deltas strictly cheaper: %s@."
    c.sc_delta_pops c.sc_scratch_pops
    (if cheaper then "yes" else "NO (BUG)");
  Format.printf "daemon stats: %s@." stats_json;
  let json =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\n";
    Printf.bprintf buf "  \"bench\": \"pacor-serve-bench\",\n";
    Printf.bprintf buf "  \"requests\": %d,\n" n_requests;
    Printf.bprintf buf "  \"instances\": [\n";
    Array.iteri
      (fun k (fp, routed, len) ->
         Printf.bprintf buf
           "    {\"name\": \"serve-%d\", \"problem_fingerprint\": %S,\n\
            \     \"fingerprint\": \"serve inst serve-%d fp=%s routed=%d len=%d\"}%s\n"
           k fp k fp routed len
           (if k = k_instances - 1 then "" else ","))
      instance_fps;
    Printf.bprintf buf "  ],\n";
    Printf.bprintf buf
      "  \"trace\": {\"routes\": %d, \"cache_hits\": %d, \"deltas\": %d, \
       \"incremental\": %d, \"fallbacks\": %d, \"refused\": %d, \"pings\": %d, \
       \"errors\": %d, \"starved_budget_exhausted\": %S},\n"
      c.sc_routes c.sc_cache_hits c.sc_deltas c.sc_incremental c.sc_fallbacks
      c.sc_refused c.sc_pings c.sc_errors !starved_exhausted;
    Printf.bprintf buf
      "  \"latency\": {\"total_s\": %.4f, \"requests_per_s\": %.1f, \
       \"p50_us\": %.1f, \"p99_us\": %.1f},\n"
      total_s rps (p50 *. 1e6) (p99 *. 1e6);
    Printf.bprintf buf
      "  \"expansions\": {\"delta_pops\": %d, \"scratch_pops\": %d, \
       \"ratio\": %.3f, \"deltas_strictly_cheaper\": %b},\n"
      c.sc_delta_pops c.sc_scratch_pops
      (if c.sc_delta_pops > 0 then
         float_of_int c.sc_scratch_pops /. float_of_int c.sc_delta_pops
       else 0.0)
      cheaper;
    Printf.bprintf buf "  \"daemon_stats\": %s\n" stats_json;
    Buffer.add_string buf "}\n";
    Buffer.contents buf
  in
  Format.printf "@.%s@." json;
  match json_out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc json;
    close_out oc;
    Format.printf "serve-bench JSON written to %s@." path

(* ------------------------------------------------------------------ *)
(* Chaos soak: a supervised daemon under deterministic fault injection *)
(* ------------------------------------------------------------------ *)

(* The full serving stack under fire: a real supervisor process (fork of
   this bench) runs `serve_loop` workers on a pre-bound TCP socket with a
   session journal; the resilient Client drives a deterministic request
   trace through a seeded Chaos injector (torn writes, garbage lines,
   mid-request disconnects, worker SIGKILLs). Kills land BETWEEN requests,
   so every acknowledged delta applies exactly once and the final
   per-session problem fingerprints are a pure function of the trace —
   that is what BENCH_chaos.json's drift guard pins.

   Survival criteria (each asserted, not just reported):
   - zero daemon aborts: workers die only by our SIGKILLs; the supervisor
     exits 0 only if it saw no abnormal exit *codes* and ended cleanly;
   - zero lost acknowledged sessions: after a final kill + recovery, every
     session `get`s back with the mirror's expected problem fingerprint;
   - bounded memory: the daemon's high-water gauges stay within the
     configured line cap and write high-water mark. *)

(* On a soak failure the forked supervisor (and its worker) must not
   outlive the bench; print_chaos_soak installs the kill here and the
   dispatcher runs it before re-raising. *)
let chaos_cleanup : (unit -> unit) ref = ref (fun () -> ())

let chaos_sessions = 4

let chaos_soak_spec k =
  { (serve_spec k) with
    Pacor_designs.Synthetic.name = Printf.sprintf "chaos-%d" k;
    seed = Int64.of_int (5000 + (41 * k)) }

let print_chaos_soak () =
  let n_requests = if smoke || quick then 80 else 1000 in
  let k = if smoke || quick then 2 else chaos_sessions in
  let seed = 42 in
  Format.printf "@.== Chaos soak: supervised daemon, %d requests, seed %d ==@."
    n_requests seed;
  let problems = Array.init k (fun i -> serve_generate (chaos_soak_spec i)) in
  let mirrors = Array.copy problems in
  let dir = Filename.temp_file "pacor-chaos" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let journal_path = Filename.concat dir "sessions.journal" in
  let pidfile = Filename.concat dir "worker.pid" in
  (* Bind before forking the supervisor: the parent learns the port, every
     restarted worker inherits the same socket, and reconnects issued while
     a worker is down queue in the kernel backlog. *)
  let listen_fd, port = Pacor_serve.Server.listen ~port:0 in
  flush stdout;
  flush stderr;
  let sup_pid =
    match Unix.fork () with
    | 0 ->
      (* Supervisor process. Exit 0 iff the run ended cleanly with zero
         daemon aborts (abnormal exit codes; SIGKILLs are the harness's). *)
      let outcome =
        Pacor_serve.Supervise.run ~pidfile ~backoff_base_s:0.02
          ~backoff_max_s:0.5 ~healthy_after_s:0.1 ~seed
          ~report:(fun _ -> ())
          (fun () ->
             let journal =
               match Pacor_serve.Journal.open_ ~path:journal_path with
               | Ok j -> Some j
               | Error e ->
                 Printf.eprintf "chaos-soak: journal: %s\n%!" e;
                 None
             in
             let t = Pacor_serve.Server.create ?journal () in
             ignore (Pacor_serve.Server.recover t);
             Pacor_serve.Server.serve_loop ~stdio:false ~listen_fd t;
             Option.iter Pacor_serve.Journal.close journal;
             0)
      in
      Stdlib.exit
        (if outcome.Pacor_serve.Supervise.clean_exit
            && outcome.Pacor_serve.Supervise.crashes = 0
         then 0 else 1)
    | pid -> pid
  in
  Unix.close listen_fd;
  (chaos_cleanup :=
     fun () ->
       (try
          let ic = open_in pidfile in
          let wpid = int_of_string (String.trim (input_line ic)) in
          close_in ic;
          Unix.kill wpid Sys.sigkill
        with _ -> ());
       (try Unix.kill sup_pid Sys.sigkill with Unix.Unix_error _ -> ());
       (try ignore (Unix.waitpid [] sup_pid) with Unix.Unix_error _ -> ()));
  (* Wait for the first worker's pid to land. *)
  let rec await_pidfile n =
    if n = 0 then failwith "chaos-soak: no worker pidfile"
    else if not (Sys.file_exists pidfile) then begin
      ignore (Unix.select [] [] [] 0.02);
      await_pidfile (n - 1)
    end
  in
  await_pidfile 250;
  let chaos = Pacor_serve.Chaos.create ~seed () in
  let conn =
    match
      Pacor_serve.Client.connect ~deadline_s:120.0 ~retries:10 ~backoff_s:0.05
        ~seed ~host:"127.0.0.1" ~port ()
    with
    | Ok c -> c
    | Error e -> failwith ("chaos-soak: connect: " ^ e)
  in
  let current_fault = ref Pacor_serve.Chaos.Clean in
  Pacor_serve.Client.set_sender conn
    (Some (fun ~attempt fd line ->
         Pacor_serve.Chaos.apply chaos !current_fault ~attempt fd line));
  let kills = ref 0 in
  let kill_worker () =
    match
      let ic = open_in pidfile in
      let pid = int_of_string (String.trim (input_line ic)) in
      close_in ic;
      pid
    with
    | exception _ -> ()
    | pid -> (
      match Unix.kill pid Sys.sigkill with
      | () -> incr kills
      | exception Unix.Unix_error (Unix.ESRCH, _, _) -> ())
  in
  let ok_count = ref 0 and err_count = ref 0 in
  let send i line =
    current_fault := Pacor_serve.Chaos.pick chaos;
    (match !current_fault with
     | Pacor_serve.Chaos.Kill_worker -> kill_worker ()
     | _ -> ());
    match Pacor_serve.Client.request conn line with
    | Error e -> failwith (Printf.sprintf "chaos-soak: request %d failed: %s" i e)
    | Ok resp ->
      let j = sj_parse resp in
      if sj_ok j then incr ok_count else incr err_count;
      j
  in
  let session_name s = Printf.sprintf "s%d" s in
  let apply_mirror i s mutated =
    match mutated with
    | Ok p' -> mirrors.(s) <- p'
    | Error e ->
      failwith (Printf.sprintf "chaos-soak: illegal mirror delta at %d: %s" i e)
  in
  let wall0 = Pacor_route.Clock.now_mono () in
  for i = 0 to n_requests - 1 do
    if i < k then begin
      let j =
        send i
          (sj_req
             [ ("id", SJ.Int i); ("op", SJ.String "route");
               ("problem", SJ.String (Pacor.Problem_io.to_string problems.(i)));
               ("session", SJ.String (session_name i)) ])
      in
      if not (sj_ok j) then failwith "chaos-soak: initial route errored"
    end
    else begin
      let s = i mod k in
      let p = mirrors.(s) in
      let base = [ ("id", SJ.Int i); ("session", SJ.String (session_name s)) ] in
      match i mod 6 with
      | 0 | 5 ->
        let j = send i (sj_req [ ("id", SJ.Int i); ("op", SJ.String "ping") ]) in
        ignore (sj_ok j)
      | 1 ->
        let d =
          if (i / 6) mod 2 = 0 then p.Pacor.Problem.delta + 1
          else max 0 (p.Pacor.Problem.delta - 1)
        in
        let j =
          send i (sj_req (base @ [ ("op", SJ.String "set_delta"); ("delta", SJ.Int d) ]))
        in
        if not (sj_ok j) then failwith "chaos-soak: set_delta refused";
        apply_mirror i s (Pacor.Problem.with_delta p d)
      | 2 -> (
        match List.nth_opt (serve_free_cells p) ((i * 7) mod 11) with
        | None ->
          let j = send i (sj_req [ ("id", SJ.Int i); ("op", SJ.String "ping") ]) in
          ignore (sj_ok j)
        | Some pt -> (
          (* Mirror first: only send edits the library itself accepts, so a
             daemon refusal is unambiguously a bug. *)
          match Pacor.Problem.add_obstacle p pt with
          | Error _ ->
            let j = send i (sj_req [ ("id", SJ.Int i); ("op", SJ.String "ping") ]) in
            ignore (sj_ok j)
          | Ok p' ->
            let j =
              send i
                (sj_req
                   (base
                    @ [ ("op", SJ.String "add_obstacle");
                        ("x", SJ.Int pt.Pacor_geom.Point.x);
                        ("y", SJ.Int pt.Pacor_geom.Point.y) ]))
            in
            if not (sj_ok j) then failwith "chaos-soak: add_obstacle refused";
            mirrors.(s) <- p'))
      | 3 ->
        let j =
          send i
            (sj_req
               [ ("id", SJ.Int i); ("op", SJ.String "route");
                 ("problem", SJ.String (Pacor.Problem_io.to_string problems.(s))) ])
        in
        if not (sj_ok j) then failwith "chaos-soak: repeat route errored"
      | _ ->
        let j = send i (sj_req (base @ [ ("op", SJ.String "get") ])) in
        if not (sj_ok j) then failwith "chaos-soak: get refused";
        let got = sj_result_str j "fingerprint" in
        let want = Pacor.Problem_io.fingerprint mirrors.(s) in
        if got <> want then
          failwith
            (Printf.sprintf "chaos-soak: session %s diverged mid-trace: %s <> %s"
               (session_name s) got want)
    end
  done;
  (* The final act: SIGKILL the worker one last time with no request in
     flight, then demand every session back from the restarted worker. *)
  Pacor_serve.Client.set_sender conn None;
  kill_worker ();
  ignore (Unix.select [] [] [] 0.05);
  let recovered = ref 0 in
  let session_fps =
    Array.init k (fun s ->
        let j =
          send (n_requests + s)
            (sj_req
               [ ("id", SJ.Int (n_requests + s)); ("op", SJ.String "get");
                 ("session", SJ.String (session_name s)) ])
        in
        if not (sj_ok j) then
          failwith ("chaos-soak: session lost after recovery: " ^ session_name s);
        let got = sj_result_str j "fingerprint" in
        let expect = Pacor.Problem_io.fingerprint mirrors.(s) in
        if got <> expect then
          failwith
            (Printf.sprintf "chaos-soak: session %s recovered wrong: %s <> %s"
               (session_name s) got expect);
        incr recovered;
        (session_name s, got))
  in
  let stats_j =
    send (n_requests + k)
      (sj_req [ ("id", SJ.Int (n_requests + k)); ("op", SJ.String "stats") ])
  in
  let overload key =
    match
      Option.bind
        (Option.bind (Option.bind (SJ.member "result" stats_j) (SJ.member "overload"))
           (SJ.member key))
        SJ.int_opt
    with
    | Some v -> v
    | None -> failwith ("chaos-soak: stats without overload." ^ key)
  in
  let max_pending = overload "max_pending_bytes" in
  let max_outgoing = overload "max_outgoing_bytes" in
  let line_cap = Pacor_serve.Linebuf.default_max_line in
  let hw_cap = Pacor_serve.Server.default_high_water in
  if max_pending > line_cap then
    failwith "chaos-soak: pending bytes exceeded the line cap";
  if max_outgoing > hw_cap then
    failwith "chaos-soak: outgoing bytes exceeded the high-water mark";
  let j =
    send (n_requests + k + 1)
      (sj_req [ ("id", SJ.Int (n_requests + k + 1)); ("op", SJ.String "shutdown") ])
  in
  if not (sj_ok j) then failwith "chaos-soak: shutdown refused";
  Pacor_serve.Client.close conn;
  let rec wait_sup () =
    match Unix.waitpid [] sup_pid with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_sup ()
    | _, status -> status
  in
  let daemon_aborts =
    match wait_sup () with
    | Unix.WEXITED 0 -> 0
    | _ -> 1
  in
  if daemon_aborts <> 0 then
    failwith "chaos-soak: supervisor reported daemon aborts or an unclean end";
  let total_s = Pacor_route.Clock.now_mono () -. wall0 in
  let resends, reconnects, strays = Pacor_serve.Client.counters conn in
  let faults = Pacor_serve.Chaos.counts chaos in
  (try
     Sys.remove journal_path;
     if Sys.file_exists pidfile then Sys.remove pidfile;
     Unix.rmdir dir
   with Sys_error _ | Unix.Unix_error _ -> ());
  Format.printf "%d requests in %.1fs; faults:" n_requests total_s;
  List.iter (fun (l, n) -> Format.printf " %s=%d" l n) faults;
  Format.printf "@.";
  Format.printf
    "kills=%d resends=%d reconnects=%d strays=%d ok=%d err=%d sessions=%d/%d recovered@."
    !kills resends reconnects strays !ok_count !err_count !recovered k;
  Format.printf "bounded memory: pending %d/%d, outgoing %d/%d@." max_pending
    line_cap max_outgoing hw_cap;
  let json =
    let buf = Buffer.create 2048 in
    Buffer.add_string buf "{\n";
    Printf.bprintf buf "  \"bench\": \"pacor-chaos-soak\",\n";
    Printf.bprintf buf "  \"requests\": %d,\n" n_requests;
    Printf.bprintf buf "  \"seed\": %d,\n" seed;
    Printf.bprintf buf "  \"faults\": {%s},\n"
      (String.concat ", "
         (List.map (fun (l, n) -> Printf.sprintf "\"%s\": %d" l n) faults));
    Printf.bprintf buf
      "  \"survival\": {\"daemon_aborts\": %d, \"worker_kills\": %d, \
       \"responses_ok\": %d, \"responses_err\": %d, \"sessions_bound\": %d, \
       \"sessions_recovered\": %d, \"sessions_lost\": %d, \"resends\": %d, \
       \"reconnects\": %d, \"strays\": %d},\n"
      daemon_aborts !kills !ok_count !err_count k !recovered (k - !recovered)
      resends reconnects strays;
    Printf.bprintf buf
      "  \"bounded_memory\": {\"max_pending_bytes\": %d, \"line_cap\": %d, \
       \"max_outgoing_bytes\": %d, \"high_water_cap\": %d, \"within_caps\": %b},\n"
      max_pending line_cap max_outgoing hw_cap
      (max_pending <= line_cap && max_outgoing <= hw_cap);
    Printf.bprintf buf "  \"sessions\": [\n";
    Array.iteri
      (fun s (name, fp) ->
         Printf.bprintf buf
           "    {\"name\": %S, \"problem_fingerprint\": %S,\n\
            \     \"fingerprint\": \"chaos sess %s fp=%s\"}%s\n"
           name fp name fp
           (if s = k - 1 then "" else ","))
      session_fps;
    Printf.bprintf buf "  ]\n";
    Buffer.add_string buf "}\n";
    Buffer.contents buf
  in
  Format.printf "@.%s@." json;
  match json_out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc json;
    close_out oc;
    Format.printf "chaos-soak JSON written to %s@." path

let print_flow_search_stats () =
  Format.printf
    "@.== Full-flow search statistics (shared workspace, per stage) ==@.";
  let designs = if smoke then [ "S3" ] else [ "S4"; "S5" ] in
  List.iter
    (fun name ->
       match Pacor_designs.Table1.load name with
       | Error e -> Format.printf "%s: generation failed: %s@." name e
       | Ok problem ->
         (match Pacor.Engine.run problem with
          | Error e -> Format.printf "%s: flow failed at %s: %s@." name e.stage e.message
          | Ok sol ->
            Format.printf "%s (runtime %.2fs):@." name sol.Pacor.Solution.runtime_s;
            List.iter
              (fun (stage, seconds) ->
                 Format.printf "  stage %-14s %.3fs@." stage seconds)
              sol.Pacor.Solution.stage_seconds;
            Pacor.Report.print_search_stats Format.std_formatter sol))
    designs

let () =
  if route_bench_only then begin
    (* Routing perf trajectory: negotiation modes + flow-solver race, with
       the JSON record (committed as BENCH_route.json). --smoke restricts
       to the small sizes for CI. *)
    Format.printf "PACOR benchmark harness (route-bench only%s)@."
      (if smoke then ", smoke" else "");
    print_route_bench ();
    Format.printf "@.done.@."
  end
  else if escape_bench_only then begin
    (* Escape-stage perf trajectory: the three-way flow-solver race, with
       the JSON record (committed as BENCH_escape.json). --smoke restricts
       to the small sizes for CI. *)
    Format.printf "PACOR benchmark harness (escape-bench only%s)@."
      (if smoke then ", smoke" else "");
    print_escape_bench ();
    Format.printf "@.done.@."
  end
  else if hier_bench_only then begin
    (* Hierarchy trajectory: flat vs corridor-confined two-stage routing on
       the Scaled family, with the JSON record (committed as
       BENCH_hier.json). --smoke restricts to Chip1 and the two smallest
       scales for CI. *)
    Format.printf "PACOR benchmark harness (hier-bench only%s)@."
      (if smoke then ", smoke" else "");
    print_hier_bench ();
    Format.printf "@.done.@."
  end
  else if serve_bench_only then begin
    (* Serving-layer trajectory: the daemon under a deterministic mixed
       trace, with the JSON record (committed as BENCH_serve.json).
       --smoke restricts to two instances and a 60-request trace for CI. *)
    Format.printf "PACOR benchmark harness (serve-bench only%s)@."
      (if smoke then ", smoke" else "");
    print_serve_bench ();
    Format.printf "@.done.@."
  end
  else if chaos_soak_only then begin
    (* Robustness trajectory: the supervised daemon under deterministic
       fault injection, with the JSON record (committed as
       BENCH_chaos.json). --smoke restricts to an 80-request trace for CI. *)
    Format.printf "PACOR benchmark harness (chaos-soak only%s)@."
      (if smoke then ", smoke" else "");
    (try print_chaos_soak ()
     with exn ->
       !chaos_cleanup ();
       raise exn);
    Format.printf "@.done.@."
  end
  else if fault_sweep_only then begin
    (* Fault-injection trajectory: online repair vs full re-route on the
       FPVA family, with the JSON record (committed as BENCH_fault.json).
       --smoke restricts to the small designs and outer rates for CI. *)
    Format.printf "PACOR benchmark harness (fault-sweep only%s)@."
      (if smoke then ", smoke" else "");
    print_fault_sweep ();
    Format.printf "@.done.@."
  end
  else if jobs_scaling_only then begin
    (* Standalone perf-trajectory run: the jobs-scaling batch only, with
       its JSON record (committed as BENCH_parallel.json). *)
    Format.printf "PACOR benchmark harness (jobs-scaling only)@.";
    (* 48 instances: one batch takes ~0.2s, so the min-of-rounds wall
       clock resolves the 3% no-regression bound above machine noise. *)
    print_jobs_scaling ~steps:3 ~seeds:16 ~jobs_list:[ 1; 2; 4; 8 ] ();
    Format.printf "@.done.@."
  end
  else if steal_bench_only then begin
    (* Scheduler micro-benchmark: locked queue vs work-stealing deques on
       uniform and skewed task sets, with the JSON record (committed as
       BENCH_steal.json). --smoke restricts to the small spec for CI. *)
    Format.printf "PACOR benchmark harness (steal-bench only%s)@."
      (if smoke then ", smoke" else "");
    print_steal_bench ();
    Format.printf "@.done.@."
  end
  else if smoke then begin
    (* CI fast path: seconds, not minutes — exercises the workspace bench
       machinery, one full flow, and the domain pool end to end. *)
    Format.printf "PACOR benchmark harness (smoke mode)@.";
    print_flow_search_stats ();
    print_jobs_scaling ~steps:2 ~seeds:2 ~jobs_list:[ 1; 2 ] ();
    run_micro_benches ~only:bench_astar_workspace ();
    Format.printf "@.done.@."
  end
  else begin
    Format.printf "PACOR benchmark harness%s@." (if quick then " (quick mode)" else "");
    print_table1 ();
    print_fig3 ();
    print_table2 ();
    print_rsmt_comparison ();
    print_delta_sweep ();
    print_scaling ();
    print_flow_search_stats ();
    (* 48 instances: one batch takes ~0.2s, so the min-of-rounds wall
       clock resolves the 3% no-regression bound above machine noise. *)
    print_jobs_scaling ~steps:3 ~seeds:16 ~jobs_list:[ 1; 2; 4; 8 ] ();
    run_micro_benches ();
    Format.printf "@.done.@."
  end