(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, plus Bechamel micro-benchmarks for the flow stages and the
   ablations called out in DESIGN.md.

   - Table 1: parameters of the regenerated benchmark designs, printed next
     to the published values.
   - Table 2: the "w/o Sel" / "Detour First" / PACOR self-comparison on all
     seven designs, printed next to the published table, plus the paper's
     qualitative shape checks.
   - Fig. 3: DME candidate-tree enumeration summary for a 4-valve cluster.

   Pass --quick (or set PACOR_BENCH_QUICK=1) to restrict the Table 2 sweep
   to the synthetic S designs and shorten micro-benchmark quotas. Pass
   --smoke for the CI fast path: a seconds-long sanity run covering only
   the workspace micro-bench and one full-flow stats printout. *)

open Bechamel

let quick =
  Array.exists (String.equal "--quick") Sys.argv
  || (match Sys.getenv_opt "PACOR_BENCH_QUICK" with Some ("1" | "true") -> true | _ -> false)

let smoke = Array.exists (String.equal "--smoke") Sys.argv

let jobs_scaling_only = Array.exists (String.equal "--jobs-scaling") Sys.argv

let arg_value name =
  let rec find i =
    if i + 1 >= Array.length Sys.argv then None
    else if String.equal Sys.argv.(i) name then Some Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

(* --json-out PATH: also write the jobs-scaling JSON to a file. *)
let json_out = arg_value "--json-out"

(* --timeout S / --max-expansions N / --retries N: run the batch sections
   under a search budget, to measure the degradation machinery's overhead
   and the timeout-vs-quality trade-off (see EXPERIMENTS.md). *)
let bench_limits =
  Pacor_route.Budget.limits
    ?timeout_s:(Option.bind (arg_value "--timeout") float_of_string_opt)
    ?max_expansions:(Option.bind (arg_value "--max-expansions") int_of_string_opt)
    ()

let bench_retries =
  Option.value ~default:0 (Option.bind (arg_value "--retries") int_of_string_opt)

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (Bechamel)                                         *)
(* ------------------------------------------------------------------ *)

let fig3_sinks =
  Pacor_geom.
    [ Point.make 2 2; Point.make 2 10; Point.make 12 3; Point.make 13 11 ]

let bench_table1 =
  (* One Test.make per generated design: the cost of regenerating the
     Table 1 workloads. *)
  let gen name () =
    match Pacor_designs.Table1.load name with
    | Ok p -> ignore (Pacor.Problem.valve_count p)
    | Error e -> failwith e
  in
  Test.make_grouped ~name:"table1"
    [ Test.make ~name:"generate-S1" (Staged.stage (gen "S1"));
      Test.make ~name:"generate-S2" (Staged.stage (gen "S2"));
      Test.make ~name:"generate-S3" (Staged.stage (gen "S3")) ]

let bench_table2 =
  (* One Test.make per Table 2 variant: full-flow runtime on a small
     design (relative runtimes are the paper's last column group). *)
  let problem =
    match Pacor_designs.Table1.load "S2" with Ok p -> p | Error e -> failwith e
  in
  let run variant () =
    match Pacor.Engine.run ~config:(Pacor.Config.make ~variant ()) problem with
    | Ok sol -> ignore (Pacor.Solution.stats sol)
    | Error e -> failwith e.message
  in
  Test.make_grouped ~name:"table2-S2"
    [ Test.make ~name:"wosel" (Staged.stage (run Pacor.Config.Without_selection));
      Test.make ~name:"detour-first" (Staged.stage (run Pacor.Config.Detour_first));
      Test.make ~name:"pacor" (Staged.stage (run Pacor.Config.Full)) ]

let bench_fig3 =
  let grid = Pacor_grid.Routing_grid.create ~width:16 ~height:14 () in
  Test.make_grouped ~name:"fig3"
    [ Test.make ~name:"enumerate-candidates"
        (Staged.stage (fun () ->
           ignore
             (Pacor_dme.Candidate.enumerate ~grid ~usable:(fun _ -> true)
                ~max_candidates:8 fig3_sinks))) ]

(* Ablations from DESIGN.md. *)

let bench_ablation_candidates =
  (* Candidate enumeration breadth: 1 vs 8 candidates. *)
  let grid = Pacor_grid.Routing_grid.create ~width:16 ~height:14 () in
  let enum k () =
    ignore
      (Pacor_dme.Candidate.enumerate ~grid ~usable:(fun _ -> true) ~max_candidates:k
         fig3_sinks)
  in
  Test.make_grouped ~name:"ablation-candidates"
    [ Test.make ~name:"k1" (Staged.stage (enum 1));
      Test.make ~name:"k8" (Staged.stage (enum 8)) ]

let bench_ablation_solvers =
  (* Selection solver choice on a medium instance (the paper implemented
     three and kept the ILP; ours: exact B&B vs greedy vs local search). *)
  let grid = Pacor_grid.Routing_grid.create ~width:40 ~height:40 () in
  let mk_cluster dx dy =
    Pacor_dme.Candidate.enumerate ~grid ~usable:(fun _ -> true) ~max_candidates:6
      Pacor_geom.
        [ Point.make (2 + dx) (2 + dy); Point.make (2 + dx) (8 + dy);
          Point.make (8 + dx) (3 + dy); Point.make (9 + dx) (9 + dy) ]
  in
  let per_cluster = [ mk_cluster 0 0; mk_cluster 10 4; mk_cluster 4 12; mk_cluster 14 14 ] in
  let solve solver () =
    match
      Pacor_select.Tree_select.select
        ~config:{ Pacor_select.Tree_select.lambda = 0.1; solver } per_cluster
    with
    | Ok sel -> ignore sel.Pacor_select.Tree_select.objective
    | Error e -> failwith e
  in
  Test.make_grouped ~name:"ablation-selection"
    [ Test.make ~name:"exact" (Staged.stage (solve Pacor_select.Tree_select.Exact));
      Test.make ~name:"greedy" (Staged.stage (solve Pacor_select.Tree_select.Greedy));
      Test.make ~name:"local-search"
        (Staged.stage (solve Pacor_select.Tree_select.Local_search)) ]

let bench_ablation_negotiation =
  (* Negotiation (gamma = 10) vs single-pass sequential routing (gamma = 1)
     on a congested batch. *)
  let grid = Pacor_grid.Routing_grid.create ~width:16 ~height:16 () in
  let edges =
    List.init 6 (fun i ->
      { Pacor_route.Negotiation.edge_id = i;
        ends = Pacor_geom.(Point.make 2 (4 + i), Point.make 13 (9 - i)) })
  in
  let route gamma () =
    let config = { Pacor_route.Negotiation.default_config with gamma } in
    ignore
      (Pacor_route.Negotiation.route ~config ~grid
         ~obstacles:(Pacor_grid.Routing_grid.fresh_work_map grid)
         edges)
  in
  Test.make_grouped ~name:"ablation-negotiation"
    [ Test.make ~name:"negotiated-gamma10" (Staged.stage (route 10));
      Test.make ~name:"sequential-gamma1" (Staged.stage (route 1)) ]

let bench_ablation_detour =
  (* Bump insertion vs minimum-length bounded A* for the same lengthening
     task. *)
  let grid = Pacor_grid.Routing_grid.create ~width:20 ~height:20 () in
  let path =
    Pacor_grid.Path.of_points (List.init 7 (fun i -> Pacor_geom.Point.make (4 + i) 10))
  in
  let usable p = Pacor_grid.Routing_grid.free grid p in
  Test.make_grouped ~name:"ablation-detour"
    [ Test.make ~name:"bump-insertion"
        (Staged.stage (fun () -> ignore (Pacor_route.Detour.lengthen path ~target:14 ~usable)));
      Test.make ~name:"bounded-astar"
        (Staged.stage (fun () ->
           ignore
             (Pacor_route.Bounded_astar.search ~grid ~usable
                ~source:(Pacor_geom.Point.make 4 10) ~target:(Pacor_geom.Point.make 10 10)
                ~min_length:14 ()))) ]

let bench_ablation_rsmt =
  (* The cost of length matching: DME balanced tree vs unconstrained RSMT
     on the same sinks. *)
  let grid = Pacor_grid.Routing_grid.create ~width:16 ~height:14 () in
  Test.make_grouped ~name:"ablation-dme-vs-rsmt"
    [ Test.make ~name:"dme-candidates"
        (Staged.stage (fun () ->
           ignore
             (Pacor_dme.Candidate.enumerate ~grid ~usable:(fun _ -> true)
                ~max_candidates:4 fig3_sinks)));
      Test.make ~name:"rsmt"
        (Staged.stage (fun () -> ignore (Pacor_route.Steiner.rsmt fig3_sinks))) ]

let bench_flow_solvers =
  (* Min-cost-flow implementations on a grid-like network. *)
  let build_mcmf () =
    let n = 200 in
    let net = Pacor_flow.Mcmf.create n in
    for i = 0 to n - 2 do
      Pacor_flow.Mcmf.add_edge net ~src:i ~dst:(i + 1) ~cap:2 ~cost:1;
      if i + 10 < n then Pacor_flow.Mcmf.add_edge net ~src:i ~dst:(i + 10) ~cap:1 ~cost:3
    done;
    net
  in
  let build_spfa () =
    let n = 200 in
    let net = Pacor_flow.Mcmf_spfa.create n in
    for i = 0 to n - 2 do
      Pacor_flow.Mcmf_spfa.add_edge net ~src:i ~dst:(i + 1) ~cap:2 ~cost:1;
      if i + 10 < n then
        Pacor_flow.Mcmf_spfa.add_edge net ~src:i ~dst:(i + 10) ~cap:1 ~cost:3
    done;
    net
  in
  Test.make_grouped ~name:"flow-solvers"
    [ Test.make ~name:"mcmf-dijkstra"
        (Staged.stage (fun () ->
           ignore (Pacor_flow.Mcmf.solve (build_mcmf ()) ~source:0 ~sink:199)));
      Test.make ~name:"mcmf-spfa"
        (Staged.stage (fun () ->
           ignore (Pacor_flow.Mcmf_spfa.solve (build_spfa ()) ~source:0 ~sink:199))) ]

let bench_astar_workspace =
  (* The tentpole claim in numbers: A* with one shared workspace (O(1)
     epoch reset) vs fresh per-call arrays, same searches on a 64x64 grid
     with a sparse obstacle field. *)
  let grid = Pacor_grid.Routing_grid.create ~width:64 ~height:64 () in
  let obstacles = Pacor_grid.Routing_grid.fresh_work_map grid in
  let () =
    for i = 0 to 63 do
      Pacor_geom.
        [ Point.make ((i * 7) mod 64) ((i * 13) mod 64);
          Point.make ((i * 11) mod 64) ((i * 3) mod 64) ]
      |> List.iter (Pacor_grid.Obstacle_map.block obstacles)
    done
  in
  let spec =
    { Pacor_route.Astar.usable = (fun p -> Pacor_grid.Obstacle_map.free obstacles p);
      extra_cost = (fun _ -> 0) }
  in
  let endpoints i =
    Pacor_geom.(Point.make (1 + (i mod 8)) 1, Point.make (62 - (i mod 8)) 62)
  in
  let search workspace i =
    let source, target = endpoints i in
    ignore
      (Pacor_route.Astar.search ?workspace ~grid ~spec ~sources:[ source ]
         ~targets:[ target ] ())
  in
  let shared = Pacor_route.Workspace.create () in
  let counter = ref 0 in
  Test.make_grouped ~name:"astar_workspace_vs_fresh"
    [ Test.make ~name:"shared-workspace"
        (Staged.stage (fun () -> incr counter; search (Some shared) !counter));
      Test.make ~name:"fresh-arrays"
        (Staged.stage (fun () -> incr counter; search None !counter)) ]

let all_micro_benches =
  Test.make_grouped ~name:"pacor"
    [ bench_table1; bench_table2; bench_fig3; bench_astar_workspace;
      bench_ablation_candidates; bench_ablation_solvers; bench_ablation_negotiation;
      bench_ablation_detour; bench_ablation_rsmt; bench_flow_solvers ]

let run_micro_benches ?(only = all_micro_benches) () =
  let quota = if quick || smoke then Time.second 0.05 else Time.second 0.5 in
  let cfg = Benchmark.cfg ~limit:2000 ~quota ~stabilize:false () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] only in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
         let ns =
           match Analyze.OLS.estimates ols with Some (e :: _) -> e | Some [] | None -> nan
         in
         (name, ns) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Format.printf "@.== Micro-benchmarks (monotonic clock, ns/run) ==@.";
  List.iter
    (fun (name, ns) ->
       let pretty =
         if Float.is_nan ns then "n/a"
         else if ns > 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
         else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
         else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
         else Printf.sprintf "%8.0f ns" ns
       in
       Format.printf "  %-55s %s@." name pretty)
    rows

(* ------------------------------------------------------------------ *)
(* Table and figure regeneration                                       *)
(* ------------------------------------------------------------------ *)

let print_table1 () =
  Format.printf "@.== Table 1: benchmark design parameters (published vs regenerated) ==@.";
  Format.printf "%-7s | %-18s | %-18s | %-12s | %-12s@." "Design" "Size (paper=ours)"
    "#Valves (p=o)" "#CP (p=o)" "#Obs (p~o)";
  List.iter
    (fun (r : Pacor_designs.Table1.row) ->
       match Pacor_designs.Table1.load r.design with
       | Error e -> Format.printf "%-7s | generation failed: %s@." r.design e
       | Ok p ->
         let grid = p.Pacor.Problem.grid in
         Format.printf "%-7s | %dx%d = %dx%d | %d = %d | %d = %d | %d ~ %d@." r.design
           r.width r.height
           (Pacor_grid.Routing_grid.width grid)
           (Pacor_grid.Routing_grid.height grid)
           r.valves (Pacor.Problem.valve_count p) r.control_pins (Pacor.Problem.pin_count p)
           r.obstacles (Pacor.Problem.obstacle_count p))
    Pacor_designs.Table1.rows

let print_fig3 () =
  Format.printf "@.== Fig. 3: DME candidate Steiner trees (4-valve cluster) ==@.";
  let grid = Pacor_grid.Routing_grid.create ~width:16 ~height:14 () in
  let cands =
    Pacor_dme.Candidate.enumerate ~grid ~usable:(fun _ -> true) ~max_candidates:8
      fig3_sinks
  in
  Format.printf "candidates: %d@." (List.length cands);
  List.iteri
    (fun i (c : Pacor_dme.Candidate.t) ->
       Format.printf "  %d: %a  lengths=[%s]@." (i + 1) Pacor_dme.Candidate.pp c
         (String.concat ";"
            (Array.to_list (Array.map string_of_int c.full_path_lengths))))
    cands

let print_table2 () =
  let designs =
    if quick then Pacor_designs.Table1.small_names else Pacor_designs.Table1.names
  in
  Format.printf "@.== Table 2: self-comparison on %s ==@."
    (String.concat ", " designs);
  match
    Pacor_designs.Harness.measure_table2
      ~progress:(fun n -> Format.eprintf "measured %s@." n)
      designs
  with
  | Error e -> Format.printf "measurement failed: %s@." e
  | Ok rows ->
    Format.printf "Measured (this machine, synthetic stand-ins):@.";
    Pacor.Report.print_table Format.std_formatter rows;
    Format.printf "@.Published Table 2 (authors' testbed):@.";
    let paper =
      List.filter
        (fun r ->
           List.exists (fun m -> m.Pacor.Report.design = r.Pacor.Report.design) rows)
        Pacor.Report.paper_table2
    in
    Pacor.Report.print_table Format.std_formatter paper;
    Format.printf "@.Shape checks (Sec. 7 qualitative claims, on measured data):@.";
    List.iter
      (fun (name, ok) ->
         Format.printf "  [%s] %s@." (if ok then "PASS" else "FAIL") name)
      (Pacor.Report.shape_checks ~measured:rows)

(* Extension studies beyond the paper's evaluation. *)

let print_rsmt_comparison () =
  Format.printf
    "@.== Extension: cost of length matching (DME balanced tree vs RSMT) ==@.";
  let grid = Pacor_grid.Routing_grid.create ~width:20 ~height:20 () in
  let cases =
    [ ("fig3-4sinks", fig3_sinks);
      ("triple", Pacor_geom.[ Point.make 3 3; Point.make 12 4; Point.make 7 11 ]);
      ("spread-5", Pacor_geom.
         [ Point.make 2 2; Point.make 16 3; Point.make 9 9; Point.make 3 15;
           Point.make 15 16 ]) ]
  in
  Format.printf "%-12s %6s %6s %9s@." "sinks" "RSMT" "DME" "overhead";
  List.iter
    (fun (name, sinks) ->
       let rsmt = (Pacor_route.Steiner.rsmt sinks).length in
       match Pacor_dme.Candidate.enumerate ~grid ~usable:(fun _ -> true) sinks with
       | [] -> Format.printf "%-12s (no DME candidate)@." name
       | best :: _ ->
         Format.printf "%-12s %6d %6d %8.0f%%@." name rsmt
           best.Pacor_dme.Candidate.total_estimate
           (100.0
            *. (float_of_int best.Pacor_dme.Candidate.total_estimate /. float_of_int rsmt
                -. 1.0)))
    cases

let print_delta_sweep () =
  Format.printf "@.== Extension: length-matching threshold sweep (S3, PACOR) ==@.";
  match Pacor_designs.Sweep.run_design ~deltas:[ 0; 1; 2; 3; 4 ] "S3" with
  | Error e -> Format.printf "sweep failed: %s@." e
  | Ok samples -> Pacor_designs.Sweep.pp_table Format.std_formatter samples

let print_scaling () =
  Format.printf "@.== Extension: scaling study (doubling chip area per step) ==@.";
  let steps = if quick then 3 else 5 in
  match Pacor_designs.Scaling.measure (Pacor_designs.Scaling.family ~steps ()) with
  | Error e -> Format.printf "scaling failed: %s@." e
  | Ok samples -> Pacor_designs.Scaling.pp_table Format.std_formatter samples

(* ------------------------------------------------------------------ *)
(* Jobs scaling: the pacor_par domain pool on the synthetic scaling    *)
(* designs — the data behind BENCH_parallel.json.                      *)
(* ------------------------------------------------------------------ *)

let scaling_batch ~steps ~seeds =
  (* Replicate each scaling spec under [seeds] distinct PRNG seeds so the
     pool has enough independent instances to shard. *)
  Pacor_designs.Scaling.family ~steps ()
  |> List.concat_map (fun (spec : Pacor_designs.Synthetic.spec) ->
    List.init seeds (fun k ->
      let spec =
        { spec with
          Pacor_designs.Synthetic.name = Printf.sprintf "%s#%d" spec.name k;
          seed = Int64.add spec.seed (Int64.of_int (97 * k)) }
      in
      match Pacor_designs.Synthetic.generate spec with
      | Ok p -> (spec.Pacor_designs.Synthetic.name, p)
      | Error e -> failwith (spec.Pacor_designs.Synthetic.name ^ ": " ^ e)))

(* Deterministic digest of a batch's routing results: identical across
   jobs counts iff the pool preserved sequential semantics. *)
let batch_fingerprint (s : Pacor_par.Batch.summary) =
  List.fold_left
    (fun (matched, total) (i : Pacor_par.Batch.item) ->
       match i.Pacor_par.Batch.solution with
       | Error _ -> (matched, total)
       | Ok sol ->
         let st = Pacor.Solution.stats sol in
         ( matched + st.Pacor.Solution.matched_clusters,
           total + st.Pacor.Solution.total_length ))
    (0, 0) s.Pacor_par.Batch.items

let print_jobs_scaling ~steps ~seeds ~jobs_list () =
  Format.printf "@.== Jobs scaling: domain-pool batch routing (pacor_par) ==@.";
  let named = scaling_batch ~steps ~seeds in
  let cores = Domain.recommended_domain_count () in
  Format.printf "%d instances, %d core(s) visible to the runtime@."
    (List.length named) cores;
  if not (Pacor_route.Budget.is_no_limits bench_limits) then
    Format.printf "budget: %a, retries=%d@." Pacor_route.Budget.pp_limits
      bench_limits bench_retries;
  let config = { Pacor.Config.default with Pacor.Config.limits = bench_limits } in
  let runs =
    List.map
      (fun jobs ->
         let s =
           Pacor_par.Batch.run_problems ~jobs ~retries:bench_retries ~config named
         in
         (jobs, s, batch_fingerprint s))
      jobs_list
  in
  let base_elapsed =
    match runs with (_, s, _) :: _ -> s.Pacor_par.Batch.elapsed_s | [] -> 0.0
  in
  let base_fp = match runs with (_, _, fp) :: _ -> fp | [] -> (0, 0) in
  Format.printf "%6s %10s %12s %10s %13s %9s %12s@." "jobs" "elapsed" "sequential"
    "speedup" "deterministic" "degraded" "quarantined";
  List.iter
    (fun (jobs, (s : Pacor_par.Batch.summary), fp) ->
       Format.printf "%6d %9.2fs %11.2fs %9.2fx %13s %9d %12d@." jobs
         s.Pacor_par.Batch.elapsed_s s.Pacor_par.Batch.sequential_s
         (if s.Pacor_par.Batch.elapsed_s > 0.0 then
            base_elapsed /. s.Pacor_par.Batch.elapsed_s
          else 1.0)
         (if fp = base_fp then "yes" else "NO (BUG)")
         s.Pacor_par.Batch.degraded_jobs
         (List.length s.Pacor_par.Batch.quarantined))
    runs;
  (* Machine-readable record for the perf trajectory. *)
  let json =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n";
    Printf.bprintf buf "  \"bench\": \"pacor-jobs-scaling\",\n";
    Printf.bprintf buf "  \"cores\": %d,\n" cores;
    Printf.bprintf buf "  \"instances\": %d,\n" (List.length named);
    Printf.bprintf buf "  \"designs\": [%s],\n"
      (String.concat ", " (List.map (fun (n, _) -> Printf.sprintf "%S" n) named));
    Printf.bprintf buf "  \"results\": [\n";
    List.iteri
      (fun i (jobs, (s : Pacor_par.Batch.summary), fp) ->
         let matched, total = fp in
         Printf.bprintf buf
           "    {\"jobs\": %d, \"elapsed_s\": %.4f, \"sequential_s\": %.4f, \
            \"speedup_vs_jobs1\": %.3f, \"matched\": %d, \"total_length\": %d, \
            \"deterministic\": %b}%s\n"
           jobs s.Pacor_par.Batch.elapsed_s s.Pacor_par.Batch.sequential_s
           (if s.Pacor_par.Batch.elapsed_s > 0.0 then
              base_elapsed /. s.Pacor_par.Batch.elapsed_s
            else 1.0)
           matched total (fp = base_fp)
           (if i = List.length runs - 1 then "" else ","))
      runs;
    Buffer.add_string buf "  ]\n}\n";
    Buffer.contents buf
  in
  Format.printf "@.%s@." json;
  match json_out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc json;
    close_out oc;
    Format.printf "jobs-scaling JSON written to %s@." path

let print_flow_search_stats () =
  Format.printf
    "@.== Full-flow search statistics (shared workspace, per stage) ==@.";
  let designs = if smoke then [ "S3" ] else [ "S4"; "S5" ] in
  List.iter
    (fun name ->
       match Pacor_designs.Table1.load name with
       | Error e -> Format.printf "%s: generation failed: %s@." name e
       | Ok problem ->
         (match Pacor.Engine.run problem with
          | Error e -> Format.printf "%s: flow failed at %s: %s@." name e.stage e.message
          | Ok sol ->
            Format.printf "%s (runtime %.2fs):@." name sol.Pacor.Solution.runtime_s;
            List.iter
              (fun (stage, seconds) ->
                 Format.printf "  stage %-14s %.3fs@." stage seconds)
              sol.Pacor.Solution.stage_seconds;
            Pacor.Report.print_search_stats Format.std_formatter sol))
    designs

let () =
  if jobs_scaling_only then begin
    (* Standalone perf-trajectory run: the jobs-scaling batch only, with
       its JSON record (committed as BENCH_parallel.json). *)
    Format.printf "PACOR benchmark harness (jobs-scaling only)@.";
    print_jobs_scaling ~steps:3 ~seeds:4 ~jobs_list:[ 1; 2; 4; 8 ] ();
    Format.printf "@.done.@."
  end
  else if smoke then begin
    (* CI fast path: seconds, not minutes — exercises the workspace bench
       machinery, one full flow, and the domain pool end to end. *)
    Format.printf "PACOR benchmark harness (smoke mode)@.";
    print_flow_search_stats ();
    print_jobs_scaling ~steps:2 ~seeds:2 ~jobs_list:[ 1; 2 ] ();
    run_micro_benches ~only:bench_astar_workspace ();
    Format.printf "@.done.@."
  end
  else begin
    Format.printf "PACOR benchmark harness%s@." (if quick then " (quick mode)" else "");
    print_table1 ();
    print_fig3 ();
    print_table2 ();
    print_rsmt_comparison ();
    print_delta_sweep ();
    print_scaling ();
    print_flow_search_stats ();
    print_jobs_scaling ~steps:3 ~seeds:4 ~jobs_list:[ 1; 2; 4; 8 ] ();
    run_micro_benches ();
    Format.printf "@.done.@."
  end