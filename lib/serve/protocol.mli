(** The daemon's wire protocol: line-delimited JSON requests and responses.

    One request per line, one response line per request, in order:

    {v
    {"id":1,"op":"route","problem":"<instance text>","session":"s0"}
    {"id":2,"op":"route","file":"designs/chip.pacor"}
    {"id":3,"op":"move_valve","session":"s0","valve":4,"x":10,"y":3}
    {"id":4,"op":"add_obstacle","session":"s0","x":5,"y":5}
    {"id":5,"op":"set_delta","session":"s0","delta":2}
    {"id":6,"op":"inject_fault","session":"s0","fault":"stuck=3"}
    {"id":7,"op":"get","session":"s0"}      {"id":8,"op":"stats"}
    {"id":9,"op":"close","session":"s0"}    {"id":10,"op":"shutdown"}
    v}

    Any request may carry ["limits"] ([timeout_s] / [max_expansions] /
    [max_iterations]) to bound that request's search, and ["strict"]:true
    to turn budget exhaustion into an error instead of a degraded-but-ok
    solution.

    Responses are [{"id":…,"ok":true,"cached":…,"result":{…}}] with
    ["result"] always the {e last} field — a shell client can split any
    successful response on [{"result":] with one [sed] — or
    [{"id":…,"ok":false,"error":{"class":…,"message":…}}]. Error classes:
    [parse] (malformed request), [validation] (well-formed but impossible:
    unknown session, illegal edit), [budget] (strict request exhausted its
    budget), [engine] (structural routing failure), [busy] (the daemon shed
    the request for overload: connection cap reached, or the connection's
    outgoing buffer passed its high-water mark — retry later, nothing was
    executed), [internal] (a bug, quarantined thereafter).

    A request may carry ["retry"]:true to mark it as a client re-send after
    a connection loss: the daemon then consults its replay cache and, when
    the same ["id"] was already answered, replays the stored response
    instead of executing the request a second time. *)

type error_class = Parse | Validation | Budget | Engine | Busy | Internal

val class_label : error_class -> string

type delta_op =
  | Move_valve of { valve : int; x : int; y : int }
  | Add_obstacle of { x : int; y : int }
  | Remove_obstacle of { x : int; y : int }
  | Set_delta of { delta : int }
  | Inject_fault of { spec : string }  (** a {!Pacor_fault.Fault.parse_spec} string *)

type op =
  | Ping
  | Route of { problem_text : string option; file : string option; session : string option }
  | Delta of { session : string; delta : delta_op }
  | Get of { session : string }
  | Close of { session : string }
  | Stats
  | Shutdown

type request = {
  id : Json.t;            (** echoed verbatim; [Null] when absent *)
  op : op;
  limits : Pacor_route.Budget.limits option;  (** per-request budget override *)
  strict : bool;          (** budget exhaustion becomes an error *)
  retry : bool;           (** a client re-send: replay cache may answer *)
}

val delta_label : delta_op -> string

val parse_request : string -> (request, Json.t * error_class * string) result
(** Total. The error side carries whatever ["id"] could be recovered from
    the malformed request, so even a parse failure answers the caller that
    sent it. *)

(** {2 Solution summaries} — shared by the daemon, [route --json] and the
    bench, so every surface speaks the same schema. *)

val solution_fields : Pacor.Solution.t -> (string * Json.t) list
(** The summary as an ordered field list, so delta handlers can prepend
    their own keys ([dirty], [incremental], …) to the same object. Includes
    the problem {!Pacor.Problem_io.fingerprint} and the full
    {!Pacor.Solution.validate} verdict. *)

val solution_result : Pacor.Solution.t -> Json.t

val routed_valves : Pacor.Solution.t -> int
(** Valves whose cluster reached a control pin — the first component of the
    (routed, length) order the delta fallback compares by. *)

(** {2 Response rendering} *)

val render_ok : id:Json.t -> cached:bool -> result:string -> string
(** [result] is a pre-rendered JSON value, spliced in verbatim as the last
    field. Cached responses replay the stored result string untouched,
    which is what makes cache hits byte-identical to the first
    computation. *)

val render_error : id:Json.t -> cls:error_class -> message:string -> string
