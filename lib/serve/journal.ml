type entry = { revision : int; problem_text : string; order : int }

type t = {
  jpath : string;
  mutable fd : Unix.file_descr;
  live_map : (string, entry) Hashtbl.t;
  mutable next_order : int;   (* first-bound order for deterministic replay *)
  mutable appended : int;     (* records since the last compaction *)
  mutable compacted : int;
}

let path t = t.jpath
let records_appended t = t.appended
let compactions t = t.compacted

let render_bind ~session ~revision ~problem_text =
  Json.to_string
    (Json.Obj
       [
         ("v", Json.Int 1);
         ("op", Json.String "bind");
         ("session", Json.String session);
         ("revision", Json.Int revision);
         ("problem", Json.String problem_text);
       ])

let render_close ~session =
  Json.to_string
    (Json.Obj
       [ ("v", Json.Int 1); ("op", Json.String "close"); ("session", Json.String session) ])

(* Replay one record into the live map. *)
let apply t line =
  match Json.of_string line with
  | Error e -> Error ("malformed record: " ^ e)
  | Ok j -> (
    let str k = Option.bind (Json.member k j) Json.string_opt in
    match str "op" with
    | Some "bind" -> (
      match (str "session", Option.bind (Json.member "revision" j) Json.int_opt, str "problem")
      with
      | Some session, Some revision, Some problem_text ->
        let order =
          match Hashtbl.find_opt t.live_map session with
          | Some e -> e.order
          | None ->
            let o = t.next_order in
            t.next_order <- o + 1;
            o
        in
        Hashtbl.replace t.live_map session { revision; problem_text; order };
        Ok ()
      | _ -> Error "bind record missing session/revision/problem")
    | Some "close" -> (
      match str "session" with
      | Some session ->
        Hashtbl.remove t.live_map session;
        Ok ()
      | None -> Error "close record missing session")
    | Some other -> Error ("unknown record op " ^ other)
    | None -> Error "record missing op")

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Replay the whole file, returning how many leading bytes hold intact
   records. A torn final line (no trailing newline, or unparseable last
   line) is the signature of a crash mid-append and is dropped — the
   caller truncates it away, so the next append starts on a record
   boundary instead of gluing onto the torn bytes. A malformed line
   anywhere else is a real error. *)
let replay t text =
  let n = String.length text in
  let rec go start =
    if start >= n then Ok n
    else
      match String.index_from_opt text start '\n' with
      | None ->
        (* torn tail: bytes with no newline yet *)
        if start < n then
          Printf.eprintf "pacor-journal: dropping torn final record (no newline)\n%!";
        Ok start
      | Some nl -> (
        let line = String.sub text start (nl - start) in
        if String.trim line = "" then go (nl + 1)
        else
          match apply t line with
          | Ok () -> go (nl + 1)
          | Error e ->
            (* Only tolerable as the very last (newline-terminated but
               half-written) record. *)
            let rest = String.sub text (nl + 1) (n - nl - 1) in
            if String.trim rest = "" then begin
              Printf.eprintf "pacor-journal: dropping torn final record (%s)\n%!" e;
              Ok start
            end
            else Error e)
  in
  go 0

let open_ ~path =
  try
    let existing = if Sys.file_exists path then read_file path else "" in
    let t =
      {
        jpath = path;
        fd = Unix.stdout (* replaced below *);
        live_map = Hashtbl.create 16;
        next_order = 0;
        appended = 0;
        compacted = 0;
      }
    in
    match replay t existing with
    | Error e -> Error (Printf.sprintf "journal %s: %s" path e)
    | Ok valid_bytes ->
      if valid_bytes < String.length existing then
        Unix.truncate path valid_bytes;
      t.fd <- Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644;
      Ok t
  with
  | Unix.Unix_error (e, fn, _) ->
    Error (Printf.sprintf "journal %s: %s: %s" path fn (Unix.error_message e))
  | Sys_error e -> Error ("journal " ^ path ^ ": " ^ e)

let live t =
  Hashtbl.fold (fun session e acc -> (session, e) :: acc) t.live_map []
  |> List.sort (fun (_, a) (_, b) -> Int.compare a.order b.order)
  |> List.map (fun (session, e) -> (session, e.revision, e.problem_text))

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* Durability failures (disk full, fd revoked) must degrade, not abort: the
   daemon keeps serving, merely without crash-safety for this record. *)
let append t line =
  try
    write_all t.fd (line ^ "\n");
    Unix.fsync t.fd;
    t.appended <- t.appended + 1
  with Unix.Unix_error (e, fn, _) ->
    Printf.eprintf "pacor-journal: append failed (%s: %s); record lost\n%!" fn
      (Unix.error_message e)

let record_bind t ~session ~revision ~problem_text =
  let order =
    match Hashtbl.find_opt t.live_map session with
    | Some e -> e.order
    | None ->
      let o = t.next_order in
      t.next_order <- o + 1;
      o
  in
  Hashtbl.replace t.live_map session { revision; problem_text; order };
  append t (render_bind ~session ~revision ~problem_text)

let record_close t ~session =
  Hashtbl.remove t.live_map session;
  append t (render_close ~session)

let compact t =
  let tmp = t.jpath ^ ".tmp" in
  try
    let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    List.iter
      (fun (session, revision, problem_text) ->
         write_all fd (render_bind ~session ~revision ~problem_text ^ "\n"))
      (live t);
    Unix.fsync fd;
    Unix.close fd;
    Unix.rename tmp t.jpath;
    (try Unix.close t.fd with Unix.Unix_error _ -> ());
    t.fd <- Unix.openfile t.jpath [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644;
    t.appended <- 0;
    t.compacted <- t.compacted + 1
  with Unix.Unix_error (e, fn, _) ->
    (try Sys.remove tmp with Sys_error _ -> ());
    Printf.eprintf "pacor-journal: compaction failed (%s: %s); journal kept as-is\n%!"
      fn (Unix.error_message e)

let maybe_compact t =
  if t.appended > max 64 (4 * Hashtbl.length t.live_map) then compact t

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
