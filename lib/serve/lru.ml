type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;  (* towards the most-recent end *)
  mutable next : 'a node option;  (* towards the least-recent end *)
}

type 'a t = {
  capacity : int;
  tbl : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;  (* most recently used *)
  mutable tail : 'a node option;  (* least recently used *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be positive";
  {
    capacity;
    tbl = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let length t = Hashtbl.length t.tbl
let capacity t = t.capacity
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions

let unlink t node =
  (match node.prev with
   | Some p -> p.next <- node.next
   | None -> t.head <- node.next);
  (match node.next with
   | Some n -> n.prev <- node.prev
   | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.prev <- None;
  node.next <- t.head;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let promote t node =
  match t.head with
  | Some h when h == node -> ()
  | _ ->
    unlink t node;
    push_front t node

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | None ->
    t.misses <- t.misses + 1;
    None
  | Some node ->
    t.hits <- t.hits + 1;
    promote t node;
    Some node.value

let mem t key = Hashtbl.mem t.tbl key

let remove t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> ()
  | Some node ->
    unlink t node;
    Hashtbl.remove t.tbl key

let add t key value =
  match Hashtbl.find_opt t.tbl key with
  | Some node ->
    node.value <- value;
    promote t node
  | None ->
    if Hashtbl.length t.tbl >= t.capacity then begin
      match t.tail with
      | None -> ()  (* capacity >= 1 and table non-empty: unreachable *)
      | Some lru ->
        unlink t lru;
        Hashtbl.remove t.tbl lru.key;
        t.evictions <- t.evictions + 1
    end;
    let node = { key; value; prev = None; next = None } in
    push_front t node;
    Hashtbl.add t.tbl key node

let iter t f =
  let rec go = function
    | None -> ()
    | Some node ->
      f node.key node.value;
      go node.next
  in
  go t.head
