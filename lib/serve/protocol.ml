open Pacor_valve

type error_class = Parse | Validation | Budget | Engine | Busy | Internal

let class_label = function
  | Parse -> "parse"
  | Validation -> "validation"
  | Budget -> "budget"
  | Engine -> "engine"
  | Busy -> "busy"
  | Internal -> "internal"

type delta_op =
  | Move_valve of { valve : int; x : int; y : int }
  | Add_obstacle of { x : int; y : int }
  | Remove_obstacle of { x : int; y : int }
  | Set_delta of { delta : int }
  | Inject_fault of { spec : string }

type op =
  | Ping
  | Route of { problem_text : string option; file : string option; session : string option }
  | Delta of { session : string; delta : delta_op }
  | Get of { session : string }
  | Close of { session : string }
  | Stats
  | Shutdown

type request = {
  id : Json.t;
  op : op;
  limits : Pacor_route.Budget.limits option;
  strict : bool;
  retry : bool;
}

let delta_label = function
  | Move_valve _ -> "move_valve"
  | Add_obstacle _ -> "add_obstacle"
  | Remove_obstacle _ -> "remove_obstacle"
  | Set_delta _ -> "set_delta"
  | Inject_fault _ -> "inject_fault"

(* ---------- request parsing ---------- *)

let parse_limits json =
  match json with
  | None -> Ok None
  | Some j ->
    let timeout_s = Option.bind (Json.member "timeout_s" j) Json.float_opt in
    let max_expansions = Option.bind (Json.member "max_expansions" j) Json.int_opt in
    let max_iterations = Option.bind (Json.member "max_iterations" j) Json.int_opt in
    (try
       Ok (Some (Pacor_route.Budget.limits ?timeout_s ?max_expansions ?max_iterations ()))
     with Invalid_argument m -> Error m)

(* [Error (id, msg)]: the id is whatever could be recovered from the
   malformed request, so even a parse failure answers the right caller. *)
let parse_request line =
  match Json.of_string line with
  | Error m -> Error (Json.Null, Parse, "malformed JSON: " ^ m)
  | Ok json ->
    let id = Option.value ~default:Json.Null (Json.member "id" json) in
    let field k = Json.member k json in
    let str k = Option.bind (field k) Json.string_opt in
    let int_f k = Option.bind (field k) Json.int_opt in
    let err c fmt = Printf.ksprintf (fun m -> Error (id, c, m)) fmt in
    let session_of k =
      match str "session" with
      | Some s -> Ok s
      | None -> Error (id, Validation, Printf.sprintf "%s requires a \"session\"" k)
    in
    let point_op k make =
      match (session_of k, int_f "x", int_f "y") with
      | Ok session, Some x, Some y -> Ok (Delta { session; delta = make x y })
      | (Error _ as e), _, _ -> e
      | Ok _, _, _ -> err Validation "%s requires integer \"x\" and \"y\"" k
    in
    let op =
      match str "op" with
      | None -> err Parse "missing \"op\""
      | Some "ping" -> Ok Ping
      | Some "route" ->
        (match (str "problem", str "file") with
         | None, None -> err Validation "route requires \"problem\" text or a \"file\" path"
         | problem_text, file -> Ok (Route { problem_text; file; session = str "session" }))
      | Some "move_valve" ->
        (match (session_of "move_valve", int_f "valve", int_f "x", int_f "y") with
         | Ok session, Some valve, Some x, Some y ->
           Ok (Delta { session; delta = Move_valve { valve; x; y } })
         | (Error _ as e), _, _, _ -> e
         | Ok _, _, _, _ ->
           err Validation "move_valve requires integer \"valve\", \"x\" and \"y\"")
      | Some "add_obstacle" -> point_op "add_obstacle" (fun x y -> Add_obstacle { x; y })
      | Some "remove_obstacle" ->
        point_op "remove_obstacle" (fun x y -> Remove_obstacle { x; y })
      | Some "set_delta" ->
        (match (session_of "set_delta", int_f "delta") with
         | Ok session, Some delta -> Ok (Delta { session; delta = Set_delta { delta } })
         | (Error _ as e), _ -> e
         | Ok _, None -> err Validation "set_delta requires an integer \"delta\"")
      | Some "inject_fault" ->
        (match (session_of "inject_fault", str "fault") with
         | Ok session, Some spec -> Ok (Delta { session; delta = Inject_fault { spec } })
         | (Error _ as e), _ -> e
         | Ok _, None -> err Validation "inject_fault requires a \"fault\" spec string")
      | Some "get" ->
        (match session_of "get" with Ok session -> Ok (Get { session }) | Error _ as e -> e)
      | Some "close" ->
        (match session_of "close" with
         | Ok session -> Ok (Close { session })
         | Error _ as e -> e)
      | Some "stats" -> Ok Stats
      | Some "shutdown" -> Ok Shutdown
      | Some other -> err Parse "unknown op %S" other
    in
    (match op with
     | Error _ as e -> e
     | Ok op ->
       (match parse_limits (field "limits") with
        | Error m -> Error (id, Validation, "bad limits: " ^ m)
        | Ok limits ->
          let flag k =
            match Option.bind (field k) Json.bool_opt with
            | Some b -> b
            | None -> false
          in
          Ok { id; op; limits; strict = flag "strict"; retry = flag "retry" }))

(* ---------- solution summary ---------- *)

let routed_valves (sol : Pacor.Solution.t) =
  List.fold_left
    (fun acc (c : Pacor.Solution.routed_cluster) ->
       if c.escape <> None then acc + Cluster.size c.routed.Pacor.Routed.cluster else acc)
    0 sol.Pacor.Solution.clusters

let stage_outcome_label = function
  | Pacor.Solution.Completed -> "completed"
  | Pacor.Solution.Degraded why -> "degraded: " ^ why
  | Pacor.Solution.Timed_out -> "timed-out"

let solution_fields (sol : Pacor.Solution.t) =
  let stats = Pacor.Solution.stats sol in
  let problem = sol.Pacor.Solution.problem in
  let valves = Pacor.Problem.valve_count problem in
  let validation =
    match Pacor.Solution.validate sol with
    | Ok () -> []
    | Error msgs -> List.map (fun m -> Json.String m) msgs
  in
  [
    ("problem", Json.String problem.Pacor.Problem.name);
    ("fingerprint", Json.String (Pacor.Problem_io.fingerprint problem));
    ("valves", Json.Int valves);
    ("routed_valves", Json.Int (routed_valves sol));
    ("clusters", Json.Int (List.length sol.Pacor.Solution.clusters));
    ("matched_clusters", Json.Int stats.Pacor.Solution.matched_clusters);
    ("total_length", Json.Int stats.Pacor.Solution.total_length);
    ("matched_length", Json.Int stats.Pacor.Solution.matched_length);
    ("completion", Json.Float stats.Pacor.Solution.completion);
    ("delta", Json.Int problem.Pacor.Problem.delta);
    ("runtime_s", Json.Float stats.Pacor.Solution.runtime_s);
    ( "budget_exhausted",
      match sol.Pacor.Solution.budget_exhausted with
      | None -> Json.Null
      | Some r -> Json.String (Pacor_route.Budget.reason_label r) );
    ("valid", Json.Bool (validation = []));
    ("violations", Json.List validation);
    ( "stage_outcomes",
      Json.Obj
        (List.map
           (fun (stage, o) -> (stage, Json.String (stage_outcome_label o)))
           sol.Pacor.Solution.stage_outcomes) );
  ]

let solution_result sol = Json.Obj (solution_fields sol)

(* ---------- response rendering ----------

   Rendered by hand, not via [Json.to_string] on one big object, for two
   load-bearing reasons: the ["result"] field must come byte-for-byte LAST
   (shell clients split on [{"result":]), and a cached response must replay
   the stored result string untouched so cache hits are byte-identical to
   the first computation. *)

let render_ok ~id ~cached ~result =
  let buf = Buffer.create (String.length result + 64) in
  Buffer.add_string buf "{\"id\":";
  Json.to_buffer buf id;
  Buffer.add_string buf ",\"ok\":true,\"cached\":";
  Buffer.add_string buf (if cached then "true" else "false");
  Buffer.add_string buf ",\"result\":";
  Buffer.add_string buf result;
  Buffer.add_char buf '}';
  Buffer.contents buf

let render_error ~id ~cls ~message =
  Json.to_string
    (Json.Obj
       [
         ("id", id);
         ("ok", Json.Bool false);
         ( "error",
           Json.Obj
             [
               ("class", Json.String (class_label cls)); ("message", Json.String message);
             ] );
       ])
