(** Bounded line reassembly for the wire protocol.

    A connection's read side delivers arbitrary byte chunks; the protocol
    wants newline-terminated request lines. This buffer splits chunks back
    into lines while holding a hard byte cap: the moment a line-in-progress
    would exceed [max_line], one {!Overflow} event fires, the partial bytes
    are dropped, and everything up to the next newline is discarded — so a
    hostile or broken peer can grow a connection's pending buffer to at
    most [max_line] bytes, ever, and costs exactly one protocol error per
    oversized line instead of unbounded memory. *)

type t

type event =
  | Line of string
      (** one complete request line, newline stripped, byte-exact *)
  | Overflow
      (** a line exceeded [max_line]; its bytes (and the rest of it, up to
          the next newline) are being discarded. One event per oversized
          line, fired at the moment the cap is crossed. *)

val create : ?max_line:int -> unit -> t
(** [max_line] defaults to {!default_max_line}. Raises [Invalid_argument]
    on a non-positive cap. *)

val default_max_line : int
(** 4 MiB: far above any legitimate instance text (the whole committed
    corpus is under 8 KiB), small enough that even a full house of capped
    connections stays bounded. *)

val max_line : t -> int

val feed : t -> bytes -> int -> int -> event list
(** Consume [len] bytes of [chunk] starting at [off]; return the events
    they complete, in arrival order. *)

val feed_string : t -> string -> event list

val pending : t -> int
(** Bytes buffered towards the next line. Invariant: [pending t <= max_line t]
    — the cap is enforced during {!feed}, not after. *)

val high_water : t -> int
(** Most bytes ever buffered at once — the daemon's bounded-memory gauge.
    Invariant: [high_water t <= max_line t]. *)

val reset : t -> unit
(** Drop any partial line and leave discard mode (a fresh connection's
    state). *)
