(** The routing daemon: a long-lived process that parses once, routes once,
    and then answers design-loop edits by re-routing only what each edit
    dirties.

    State: a {e session store} (named, mutable (problem, solution) pairs), a
    fingerprint-keyed {e LRU solution cache} whose entries pre-render their
    response so cache hits replay byte-identical bytes, a {e warm workspace
    pool} (one leased per connection, arrays stay grown), and a {e poisoned
    set} remembering request fingerprints that crashed the engine so one bad
    instance cannot crash-loop the daemon.

    Deltas ([move_valve], [add_obstacle], …) go through the fault layer's
    re-route core ({!Pacor_fault.Repair.reroute}): mutate the problem,
    compute the dirty cluster set, rip up and re-route exactly that. The
    incremental result is served iff its {e certificate} holds — it
    validates, quarantined nothing (fault injection excepted, where
    quarantine is the contract), and ran within budget; otherwise the
    mutated problem is routed from scratch and the lexicographically better
    answer on (routed valves, total length) wins. Every request runs under
    a per-request {!Pacor_route.Budget} when the request carries
    ["limits"].

    Single-threaded by design: one [Unix.select] loop multiplexes stdin
    and TCP connections, and every mutable structure above is owned by that
    loop.

    Crash-only and overload-controlled: every session mutation is fsync'd
    to an optional {!Journal} before it is acknowledged ({!recover} replays
    it at startup), request lines are length-capped ({!Linebuf}), writes
    are buffered per connection and flushed through the select write set
    (a slow reader accumulates until a high-water mark sheds it, instead of
    stalling every other client), connections are capped (excess accepts
    get one [busy] error line), idle connections are reaped on a periodic
    tick, and a bounded replay cache keyed by request id lets clients
    re-send a request whose response was lost without executing it twice. *)

type t

val create :
  ?cache_capacity:int ->
  ?limits:Pacor_route.Budget.limits ->
  ?hier:Pacor.Config.hier_mode ->
  ?sched:Pacor_sched.Sched.t ->
  ?replay_capacity:int ->
  ?journal:Journal.t ->
  unit ->
  t
(** Fresh daemon state. [cache_capacity] bounds the solution LRU (default
    64 entries); [limits] is the default per-request budget (default
    unlimited); [hier] selects hierarchical routing for every served run
    (default [Hier_auto]); [sched] shards each request's inner routing
    stages across a work-stealing scheduler — for that to engage, the
    serve loop itself must run on one of the scheduler's worker domains
    (the CLI wraps it in a one-task pool map when [--jobs > 1]); requests
    arming a budget fall back to sequential automatically, so served
    results stay byte-identical to unscheduled ones;
    [replay_capacity] bounds the retry replay cache
    (default 256 responses); [journal] makes every session mutation
    durable. *)

val recover : t -> int
(** Replay the attached journal's surviving sessions into the session
    store — parse each canonical problem text, route it, bind it at its
    recorded revision — and return how many came back. Records that no
    longer parse or route are skipped with a stderr warning (crash-only:
    partial recovery beats refusing to start). 0 without a journal. *)

type outcome = {
  line : string;  (** the response, newline not included *)
  stop : bool;    (** a shutdown was requested *)
}

val handle : ?workspace:Pacor_route.Workspace.t -> t -> string -> outcome
(** Process one request line, total: any input yields exactly one response
    line, never an exception. Pass [workspace] to reuse a warm workspace
    across calls (the I/O loop passes the connection's leased one; tests
    and the bench drive this directly); otherwise one is leased from the
    pool per call. *)

val take_workspace : t -> Pacor_route.Workspace.t
val return_workspace : t -> Pacor_route.Workspace.t -> unit

val stats_result : t -> Json.t
(** The [stats] op's result object (also handy for the bench). Includes the
    overload counters ([busy_rejected], [oversized_lines], [idle_reaped],
    [shed]) and the bounded-memory gauges ([max_pending_bytes],
    [max_outgoing_bytes]) the chaos soak asserts on. *)

val listen : port:int -> Unix.file_descr * int
(** Bind and listen on 127.0.0.1:[port] (0 picks an ephemeral port) and
    announce the actual port on stderr. Exposed so a supervisor can bind
    {e once} and pass the inherited socket to every restarted worker via
    [serve_loop ~listen_fd] — restarts then never race a rebind and
    clients reconnect to the same port. *)

val default_max_conns : int
val default_high_water : int
val default_idle_timeout_s : float
val default_tick_s : float

val serve_loop :
  ?stdio:bool ->
  ?port:int ->
  ?listen_fd:Unix.file_descr ->
  ?max_conns:int ->
  ?max_line:int ->
  ?high_water:int ->
  ?idle_timeout_s:float ->
  ?tick_s:float ->
  t ->
  unit
(** Run the daemon until a [shutdown] request or until every input source
    is gone. [stdio] (default true) serves line-per-request on
    stdin/stdout; [port] additionally listens on 127.0.0.1 (port [0] picks
    an ephemeral port, announced on stderr); [listen_fd] serves an
    already-bound socket instead (see {!listen}). Each connection leases a
    warm workspace for its lifetime. EOF closes a connection; [shutdown]
    from any connection stops the daemon (after flushing queued
    responses).

    Overload knobs: at most [max_conns] simultaneous connections (excess
    accepts are answered with one [busy] error line and closed, no
    workspace leased); request lines over [max_line] bytes cost one
    [parse] error and are discarded without buffering; a connection more
    than [high_water] bytes behind on reads is shed. The loop wakes at
    least every [tick_s] seconds to reap connections idle longer than
    [idle_timeout_s] (their workspaces return to the pool) and to let the
    journal compact. *)
