(** The routing daemon: a long-lived process that parses once, routes once,
    and then answers design-loop edits by re-routing only what each edit
    dirties.

    State: a {e session store} (named, mutable (problem, solution) pairs), a
    fingerprint-keyed {e LRU solution cache} whose entries pre-render their
    response so cache hits replay byte-identical bytes, a {e warm workspace
    pool} (one leased per connection, arrays stay grown), and a {e poisoned
    set} remembering request fingerprints that crashed the engine so one bad
    instance cannot crash-loop the daemon.

    Deltas ([move_valve], [add_obstacle], …) go through the fault layer's
    re-route core ({!Pacor_fault.Repair.reroute}): mutate the problem,
    compute the dirty cluster set, rip up and re-route exactly that. The
    incremental result is served iff its {e certificate} holds — it
    validates, quarantined nothing (fault injection excepted, where
    quarantine is the contract), and ran within budget; otherwise the
    mutated problem is routed from scratch and the lexicographically better
    answer on (routed valves, total length) wins. Every request runs under
    a per-request {!Pacor_route.Budget} when the request carries
    ["limits"].

    Single-threaded by design: one [Unix.select] loop multiplexes stdin
    and TCP connections, and every mutable structure above is owned by that
    loop. *)

type t

val create :
  ?cache_capacity:int -> ?limits:Pacor_route.Budget.limits -> unit -> t
(** Fresh daemon state. [cache_capacity] bounds the solution LRU (default
    64 entries); [limits] is the default per-request budget (default
    unlimited). *)

type outcome = {
  line : string;  (** the response, newline not included *)
  stop : bool;    (** a shutdown was requested *)
}

val handle : ?workspace:Pacor_route.Workspace.t -> t -> string -> outcome
(** Process one request line, total: any input yields exactly one response
    line, never an exception. Pass [workspace] to reuse a warm workspace
    across calls (the I/O loop passes the connection's leased one; tests
    and the bench drive this directly); otherwise one is leased from the
    pool per call. *)

val take_workspace : t -> Pacor_route.Workspace.t
val return_workspace : t -> Pacor_route.Workspace.t -> unit

val stats_result : t -> Json.t
(** The [stats] op's result object (also handy for the bench). *)

val serve_loop : ?stdio:bool -> ?port:int -> t -> unit
(** Run the daemon until a [shutdown] request or until every input source
    is gone. [stdio] (default true) serves line-per-request on
    stdin/stdout; [port] additionally listens on 127.0.0.1 (port [0] picks
    an ephemeral port, announced on stderr). Each connection leases a warm
    workspace for its lifetime. EOF closes a connection; [shutdown] from
    any connection stops the daemon. *)
