(** Client side of the serve protocol: a connection that sends one request
    line and reads one response line, over a spawned daemon's pipes or a
    TCP socket. *)

type conn

val spawn : ?exe:string -> unit -> (conn, string) result
(** Fork the daemon ([exe serve --stdio], default [Sys.executable_name])
    with its stdin/stdout piped to this process. {!close} sends EOF, which
    shuts the daemon down cleanly, and reaps the child. *)

val connect : host:string -> port:int -> (conn, string) result

val request : conn -> string -> (string, string) result
(** Send one request line (newline appended), read one response line.
    Blocking; requests and responses pair one-to-one in order. *)

val close : conn -> unit
