(** Client side of the serve protocol: a connection that sends one request
    line and reads one response line, over a spawned daemon's pipes or a
    TCP socket.

    Resilient by default: each request runs under an optional per-request
    deadline, and a connection loss (daemon killed, socket reset, EOF
    mid-response) is answered with a bounded number of reconnect-and-resend
    attempts under jittered exponential backoff. A re-sent request carries
    ["retry"]:true, so a daemon that already executed the first copy —
    and lost only the response — replays its stored answer instead of
    executing twice (see {!Protocol}). Responses are matched to requests by
    ["id"] when the request carries one; unsolicited lines (e.g. error
    replies to line noise injected by a chaos harness) are discarded and
    counted. *)

type conn

val spawn :
  ?exe:string ->
  ?args:string list ->
  ?deadline_s:float ->
  ?retries:int ->
  ?backoff_s:float ->
  ?seed:int ->
  unit ->
  (conn, string) result
(** Fork the daemon ([exe] [args], default [Sys.executable_name serve
    --stdio]) with its stdin/stdout piped to this process. {!close} sends
    EOF, which shuts the daemon down cleanly, and reaps the child. On
    connection loss the daemon is respawned with the same [args] — pass
    [--journal PATH] in [args] if the respawn should recover its sessions.

    [deadline_s]: max seconds to wait for each attempt's response (default
    none — block forever, the PR 7 behaviour). [retries]: reconnect+resend
    attempts after a connection loss (default 3; 0 restores fail-fast).
    [backoff_s]: base of the doubling, jittered backoff between attempts
    (default 0.05s, capped at 2s). [seed] makes the jitter deterministic. *)

val connect :
  ?deadline_s:float ->
  ?retries:int ->
  ?backoff_s:float ->
  ?seed:int ->
  host:string ->
  port:int ->
  unit ->
  (conn, string) result

val request : conn -> string -> (string, string) result
(** Send one request line (newline appended), read the matching response
    line. Blocking, at most [deadline_s] per attempt. On connection loss,
    reconnects and re-sends (with ["retry"]:true injected) up to [retries]
    times. A deadline expiry does NOT retry — the daemon may legitimately
    still be computing — but does drop the link, so the next request
    starts on a clean connection instead of reading a stale response. *)

val close : conn -> unit

val counters : conn -> int * int * int
(** [(resends, reconnects, strays)] observed over the connection's
    lifetime — the chaos soak's client-side survival counters. *)

val set_sender :
  conn -> (attempt:int -> Unix.file_descr -> string -> unit) option -> unit
(** Chaos/test hook: override how a request line (trailing newline
    included) is written to the daemon. [attempt] is 0 on the first try of
    each request and increments across its retries, so an injector can
    tear the first copy apart and let the retry go clean. Exceptions from
    the sender are treated as connection loss. [None] restores the default
    single-write sender. *)
