(** Crash-only watchdog: fork a worker, restart it with jittered
    exponential backoff whenever it exits abnormally, stop when it exits
    cleanly.

    This extends PR 7's poison-set idea ("don't re-crash on the same
    input") from the request level to the process level: a worker that
    dies — its own bug, the OOM killer, an operator's [kill -9] — comes
    back up, and with a journal passed through ([pacor serve --supervise
    --journal PATH]) it comes back up {e with its sessions}.

    The supervisor owns nothing but the wait loop; in particular a TCP
    listen socket bound {e before} {!run} is inherited by every worker
    (see {!Server.listen}), so restarts never race a rebind and clients
    reconnect to the same port. *)

type outcome = {
  restarts : int;      (** abnormal exits that were answered with a restart *)
  killed : int;        (** of those, deaths by signal (SIGKILL included) *)
  crashes : int;       (** of those, abnormal {e exit codes} — a worker
                           abort, as opposed to an external kill *)
  clean_exit : bool;   (** the worker exited 0 (a [shutdown] request) *)
  gave_up : bool;      (** [max_restarts] exhausted *)
}

val run :
  ?max_restarts:int ->
  ?backoff_base_s:float ->
  ?backoff_max_s:float ->
  ?healthy_after_s:float ->
  ?seed:int ->
  ?pidfile:string ->
  ?report:(string -> unit) ->
  (unit -> int) ->
  outcome
(** [run body] forks; the child runs [body ()] and exits with its return
    value (any escaped exception exits 3). The parent waits: exit 0 stops
    the supervisor; anything else — nonzero exit or death by signal —
    sleeps a jittered exponential backoff ([backoff_base_s], doubling, cap
    [backoff_max_s]; deterministic in [seed]) and forks again, at most
    [max_restarts] times (default 100). A worker that survived longer than
    [healthy_after_s] (default 30s) resets the backoff ladder, so one
    crash a day never escalates to the cap.

    [pidfile], when given, receives the current worker's pid after every
    fork (and is best-effort removed at the end) — it is how the chaos
    harness and CI aim their SIGKILLs. [report] gets one human-readable
    line per lifecycle event (default: stderr). *)
