type fault =
  | Clean
  | Torn
  | Garbage_before
  | Disconnect_mid
  | Kill_worker

exception Injected_disconnect

type t = {
  state : int64 ref;
  weights : (fault * int) list;
  total : int;
  mutable injected : (fault * int) list;  (* occurrence counters *)
}

(* splitmix64 — the same deterministic generator the supervisor uses for its
   backoff jitter, so a soak's fault schedule is a pure function of the seed. *)
let mix state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let bits t = mix t.state

let below t n =
  if n <= 1 then 0
  else Int64.to_int (Int64.rem (Int64.shift_right_logical (bits t) 1) (Int64.of_int n))

let default_weights =
  [ (Clean, 60); (Torn, 14); (Garbage_before, 12); (Disconnect_mid, 9);
    (Kill_worker, 5) ]

let create ?(seed = 1) ?(weights = default_weights) () =
  let weights = List.filter (fun (_, w) -> w > 0) weights in
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 weights in
  if total = 0 then invalid_arg "Chaos.create: all weights are zero";
  { state = ref (Int64.of_int seed); weights; total; injected = [] }

let label = function
  | Clean -> "clean"
  | Torn -> "torn"
  | Garbage_before -> "garbage"
  | Disconnect_mid -> "disconnect"
  | Kill_worker -> "kill"

let note t fault =
  let n = try List.assoc fault t.injected with Not_found -> 0 in
  t.injected <- (fault, n + 1) :: List.remove_assoc fault t.injected

let pick t =
  let roll = below t t.total in
  let rec go acc = function
    | [] -> Clean (* unreachable: weights sum to total *)
    | (f, w) :: rest -> if roll < acc + w then f else go (acc + w) rest
  in
  let f = go 0 t.weights in
  note t f;
  f

let counts t =
  List.map (fun (f, _) -> (label f, try List.assoc f t.injected with Not_found -> 0))
    [ (Clean, 0); (Torn, 0); (Garbage_before, 0); (Disconnect_mid, 0);
      (Kill_worker, 0) ]

let write_all fd s off len =
  let rec go off len =
    if len > 0 then
      match Unix.write_substring fd s off len with
      | n -> go (off + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len
  in
  go off len

let garbage t ~len =
  String.init len (fun _ ->
      (* printable, never '\n', never '{' — the daemon must treat it as a
         parse error, not accidentally as a half-valid request *)
      let c = Char.chr (33 + below t 93) in
      if c = '{' then '!' else c)

let apply t fault ~attempt fd line =
  let n = String.length line in
  if attempt > 0 then
    (* Retries go out clean: the point of a mid-request fault is to force
       the retry path, not to starve it forever. *)
    write_all fd line 0 n
  else
    match fault with
    | Clean | Kill_worker ->
      (* Kill_worker's damage happens between requests (the harness SIGKILLs
         the worker before this send); the bytes themselves go out intact. *)
      write_all fd line 0 n
    | Torn ->
      (* Split the line at a random byte boundary — including inside a UTF-8
         sequence or a JSON escape — and write the halves separately. The
         daemon's line reassembly must not care. *)
      let cut = 1 + below t (max 1 (n - 1)) in
      write_all fd line 0 cut;
      write_all fd line cut (n - cut)
    | Garbage_before ->
      let noise = garbage t ~len:(1 + below t 64) ^ "\n" in
      write_all fd noise 0 (String.length noise);
      write_all fd line 0 n
    | Disconnect_mid ->
      (* Send a prefix, then abandon the connection. The daemon sees a torn
         partial line followed by EOF; the client sees a lost link and must
         reconnect and re-send (marked retry:true). *)
      let cut = below t n in
      write_all fd line 0 cut;
      raise Injected_disconnect

