(** Deterministic socket-level fault injector for the chaos soak.

    A [t] is a seeded splitmix64 stream: the sequence of faults it deals,
    the tear points it picks and the garbage it emits are a pure function
    of the seed, so a failing soak replays byte-identically. Faults model
    the serving layer's threat inventory: torn writes (a request line
    arriving in arbitrary chunks), line noise (garbage bytes the daemon
    must answer with one parse error), mid-request disconnects (the client
    must reconnect and re-send with ["retry"]:true), and worker SIGKILLs
    between requests (the supervisor must restart, the journal must bring
    the sessions back).

    Injection composes with {!Client.set_sender}: the harness picks a
    fault per request, SIGKILLs the worker itself when the fault is
    {!Kill_worker} (it owns the pidfile; kills land {e between} requests
    so every delta applies exactly once), and lets {!apply} do the
    socket-level damage on attempt 0. Retries always go out clean — a
    mid-request fault exists to force the retry path, not to starve it. *)

type fault =
  | Clean
  | Torn            (** line written in two chunks, cut anywhere *)
  | Garbage_before  (** a line of non-JSON noise precedes the request *)
  | Disconnect_mid  (** a prefix is written, then the link is abandoned *)
  | Kill_worker     (** the harness SIGKILLs the worker before the send *)

exception Injected_disconnect
(** Raised by {!apply} on {!Disconnect_mid}; {!Client} treats any sender
    exception as connection loss. *)

type t

val create : ?seed:int -> ?weights:(fault * int) list -> unit -> t
(** Deterministic in [seed] (default 1). [weights] sets the relative
    frequency of each fault (default 60/14/12/9/5 clean/torn/garbage/
    disconnect/kill); zero-weight faults never occur. *)

val pick : t -> fault
(** Deal the next fault in the seeded sequence (and count it). *)

val apply : t -> fault -> attempt:int -> Unix.file_descr -> string -> unit
(** Write a request line (newline included) through the lens of [fault] —
    the {!Client.set_sender} signature, partially applied. [attempt > 0]
    writes clean regardless of [fault]. *)

val garbage : t -> len:int -> string
(** [len] bytes of printable noise, no newline, never parseable as JSON. *)

val counts : t -> (string * int) list
(** How often each fault was dealt, as [(label, count)] pairs in a fixed
    order — the soak's survival-report material. *)

val label : fault -> string
