(** Crash-safe session journal: an append-only record of every session
    mutation, fsync'd before the response that acknowledges it, so a
    [kill -9]'d daemon restarted on the same [--journal PATH] resumes every
    acknowledged session.

    One JSON record per line:
    {v
    {"v":1,"op":"bind","session":"s0","revision":3,"problem":"<canonical text>"}
    {"v":1,"op":"close","session":"s0"}
    v}

    The ["problem"] field is the canonical {!Pacor.Problem_io.to_string}
    rendering, so replaying a record reconstructs a byte-identical instance
    (and therefore an identical fingerprint). The last record per session
    wins. A torn final line — the crash landed mid-append — is truncated
    away on open, so the next append starts on a record boundary; anything
    malformed {e before} the tail is an error, because a single O_APPEND
    writer cannot produce one.

    Compaction: when the record count since the last rewrite exceeds
    [max 64 (4 * live sessions)], the journal is rewritten from its
    in-memory live map to [PATH.tmp], fsync'd, and renamed over [PATH] —
    so the file is bounded by the live session set, not by history, and a
    crash during compaction leaves the old journal intact. *)

type t

val open_ : path:string -> (t, string) result
(** Open (creating if absent) for appending, after replaying any existing
    records into the live map. *)

val path : t -> string

val live : t -> (string * int * string) list
(** Surviving sessions as [(session, revision, problem_text)], in
    first-bound order — what {!Server.recover} replays. *)

val record_bind : t -> session:string -> revision:int -> problem_text:string -> unit
(** Append (and fsync) one bind record. Any I/O failure is reported on
    stderr and otherwise swallowed: losing durability must not take the
    serving path down with it. *)

val record_close : t -> session:string -> unit

val maybe_compact : t -> unit
(** Rewrite if the append count since the last rewrite passed the policy
    threshold; a no-op otherwise. Called from the serve loop's housekeeping
    tick (and after {!open_}'s replay). *)

val records_appended : t -> int
(** Appends since the last compaction (a stats gauge). *)

val compactions : t -> int

val close : t -> unit
