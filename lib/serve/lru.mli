(** Bounded least-recently-used cache, string-keyed.

    The daemon's solution cache: a hashtable over an intrusive
    doubly-linked recency list, so every operation is O(1). Single-threaded
    like the daemon loop that owns it. Hit / miss / eviction counters feed
    the [stats] protocol op. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] on a non-positive capacity. *)

val find : 'a t -> string -> 'a option
(** Promotes the entry to most-recent on hit; counts a hit or a miss. *)

val mem : 'a t -> string -> bool
(** Pure probe: no promotion, no counter update. *)

val add : 'a t -> string -> 'a -> unit
(** Insert (evicting the least-recent entry at capacity) or replace (which
    promotes). *)

val remove : 'a t -> string -> unit

val iter : 'a t -> (string -> 'a -> unit) -> unit
(** Most-recent first. *)

val length : 'a t -> int
val capacity : 'a t -> int
val hits : 'a t -> int
val misses : 'a t -> int
val evictions : 'a t -> int
