type t = {
  buf : Buffer.t;
  cap : int;
  mutable discarding : bool;
      (* an oversized line already fired Overflow; drop bytes until the
         newline that ends it *)
  mutable hw : int;  (* most bytes ever buffered: the bounded-memory gauge *)
}

type event = Line of string | Overflow

let default_max_line = 4 * 1024 * 1024

let create ?(max_line = default_max_line) () =
  if max_line <= 0 then invalid_arg "Linebuf.create: max_line must be positive";
  { buf = Buffer.create 256; cap = max_line; discarding = false; hw = 0 }

let max_line t = t.cap
let pending t = Buffer.length t.buf
let high_water t = t.hw

let note_hw t = if Buffer.length t.buf > t.hw then t.hw <- Buffer.length t.buf

let reset t =
  Buffer.clear t.buf;
  t.discarding <- false

let feed t chunk off len =
  if off < 0 || len < 0 || off + len > Bytes.length chunk then
    invalid_arg "Linebuf.feed: bad slice";
  let events = ref [] in
  let emit e = events := e :: !events in
  let limit = off + len in
  let pos = ref off in
  while !pos < limit do
    let nl = Bytes.index_from_opt chunk !pos '\n' in
    match nl with
    | Some nl when nl < limit ->
      (* This chunk completes a line. *)
      if t.discarding then t.discarding <- false
      else begin
        let seg = nl - !pos in
        if Buffer.length t.buf + seg > t.cap then begin
          (* The completed line is over cap: one error, bytes dropped. The
             newline itself ends the discard, so no mode change needed. *)
          emit Overflow;
          Buffer.clear t.buf
        end
        else begin
          Buffer.add_subbytes t.buf chunk !pos seg;
          note_hw t;
          emit (Line (Buffer.contents t.buf));
          Buffer.clear t.buf
        end
      end;
      pos := nl + 1
    | Some _ | None ->
      (* No newline in the rest of the chunk. *)
      if not t.discarding then begin
        let seg = limit - !pos in
        if Buffer.length t.buf + seg > t.cap then begin
          emit Overflow;
          Buffer.clear t.buf;
          t.discarding <- true
        end
        else begin
          Buffer.add_subbytes t.buf chunk !pos seg;
          note_hw t
        end
      end;
      pos := limit
  done;
  List.rev !events

let feed_string t s = feed t (Bytes.unsafe_of_string s) 0 (String.length s)
