type conn = {
  ic : in_channel;
  oc : out_channel;
  pid : int option;
}

let spawn ?exe () =
  let exe = match exe with Some e -> e | None -> Sys.executable_name in
  try
    (* Parent writes requests into the child's stdin, reads responses off
       its stdout; stderr stays on the terminal for daemon diagnostics.
       cloexec so the child keeps only its dup2'd stdio copies (dup2 clears
       the flag): were the child to inherit req_write, its own stdin pipe
       would never see EOF and close-then-waitpid shutdown would hang. *)
    let req_read, req_write = Unix.pipe ~cloexec:true () in
    let resp_read, resp_write = Unix.pipe ~cloexec:true () in
    let pid =
      Unix.create_process exe
        [| exe; "serve"; "--stdio" |]
        req_read resp_write Unix.stderr
    in
    Unix.close req_read;
    Unix.close resp_write;
    Ok
      {
        ic = Unix.in_channel_of_descr resp_read;
        oc = Unix.out_channel_of_descr req_write;
        pid = Some pid;
      }
  with
  | Unix.Unix_error (e, fn, _) ->
    Error (Printf.sprintf "spawn: %s: %s" fn (Unix.error_message e))
  | Sys_error e -> Error ("spawn: " ^ e)

let connect ~host ~port =
  try
    let addr =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        match Unix.gethostbyname host with
        | { Unix.h_addr_list = [||]; _ } -> raise Not_found
        | h -> h.Unix.h_addr_list.(0))
    in
    let ic, oc = Unix.open_connection (Unix.ADDR_INET (addr, port)) in
    Ok { ic; oc; pid = None }
  with
  | Not_found -> Error (Printf.sprintf "connect: unknown host %S" host)
  | Unix.Unix_error (e, fn, _) ->
    Error (Printf.sprintf "connect: %s: %s" fn (Unix.error_message e))
  | Sys_error e -> Error ("connect: " ^ e)

let request conn line =
  try
    output_string conn.oc line;
    output_char conn.oc '\n';
    flush conn.oc;
    Ok (input_line conn.ic)
  with
  | End_of_file -> Error "daemon closed the connection"
  | Sys_error e -> Error e
  | Unix.Unix_error (e, fn, _) -> Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))

let close conn =
  (try close_out conn.oc with Sys_error _ -> ());
  (try close_in conn.ic with Sys_error _ -> ());
  match conn.pid with
  | None -> ()
  | Some pid -> ( try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
