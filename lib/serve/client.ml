type endpoint =
  | Spawned of { exe : string; args : string list }
  | Tcp of { host : string; port : int }

type link = {
  fd_in : Unix.file_descr;   (* responses *)
  fd_out : Unix.file_descr;  (* requests *)
  pid : int option;
  lbuf : Linebuf.t;
  mutable lines : string list;  (* complete lines read but not yet consumed *)
}

type conn = {
  endpoint : endpoint;
  mutable link : link option;
  deadline_s : float option;
  retries : int;
  backoff_s : float;
  rng : int64 ref;
  mutable sender : (attempt:int -> Unix.file_descr -> string -> unit) option;
  mutable resends : int;
  mutable reconnects : int;
  mutable strays : int;
}

(* splitmix64, local so retry jitter perturbs no global RNG. *)
let mix state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let unit_float state =
  Int64.to_float (Int64.shift_right_logical (mix state) 11) /. 9007199254740992.0

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* Responses can carry whole rendered solutions; cap far above any of them
   just to keep the reassembly buffer's invariant meaningful. *)
let response_max_line = 64 * 1024 * 1024

let dial = function
  | Spawned { exe; args } ->
    (* Parent writes requests into the child's stdin, reads responses off
       its stdout; stderr stays on the terminal for daemon diagnostics.
       cloexec so the child keeps only its dup2'd stdio copies (dup2 clears
       the flag): were the child to inherit req_write, its own stdin pipe
       would never see EOF and close-then-waitpid shutdown would hang. *)
    let req_read, req_write = Unix.pipe ~cloexec:true () in
    let resp_read, resp_write = Unix.pipe ~cloexec:true () in
    let pid =
      Unix.create_process exe
        (Array.of_list (exe :: args))
        req_read resp_write Unix.stderr
    in
    Unix.close req_read;
    Unix.close resp_write;
    { fd_in = resp_read; fd_out = req_write; pid = Some pid;
      lbuf = Linebuf.create ~max_line:response_max_line (); lines = [] }
  | Tcp { host; port } ->
    let addr =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        match Unix.gethostbyname host with
        | { Unix.h_addr_list = [||]; _ } -> raise Not_found
        | h -> h.Unix.h_addr_list.(0))
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_INET (addr, port))
     with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
    { fd_in = fd; fd_out = fd; pid = None;
      lbuf = Linebuf.create ~max_line:response_max_line (); lines = [] }

let describe_exn = function
  | Unix.Unix_error (e, fn, _) -> Printf.sprintf "%s: %s" fn (Unix.error_message e)
  | Not_found -> "unknown host"
  | Sys_error e -> e
  | exn -> Printexc.to_string exn

let drop_link conn =
  match conn.link with
  | None -> ()
  | Some l ->
    conn.link <- None;
    (try Unix.close l.fd_out with Unix.Unix_error _ -> ());
    if l.fd_in != l.fd_out then
      (try Unix.close l.fd_in with Unix.Unix_error _ -> ());
    (match l.pid with
     | None -> ()
     | Some pid -> (
       (* The daemon saw EOF on stdin (or is dead already); reap it. *)
       try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()))

let make ?(deadline_s : float option) ?(retries = 3) ?(backoff_s = 0.05) ?(seed = 1)
    endpoint =
  (if Sys.os_type = "Unix" then
     try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  match dial endpoint with
  | link ->
    Ok
      { endpoint; link = Some link; deadline_s; retries; backoff_s;
        rng = ref (Int64.of_int seed); sender = None;
        resends = 0; reconnects = 0; strays = 0 }
  | exception exn -> Error ("connect: " ^ describe_exn exn)

let spawn ?exe ?(args = [ "serve"; "--stdio" ]) ?deadline_s ?retries ?backoff_s ?seed
    () =
  let exe = match exe with Some e -> e | None -> Sys.executable_name in
  make ?deadline_s ?retries ?backoff_s ?seed (Spawned { exe; args })

let connect ?deadline_s ?retries ?backoff_s ?seed ~host ~port () =
  make ?deadline_s ?retries ?backoff_s ?seed (Tcp { host; port })

let set_sender conn f = conn.sender <- f
let counters conn = (conn.resends, conn.reconnects, conn.strays)

let ensure_link conn =
  match conn.link with
  | Some l -> Ok l
  | None -> (
    match dial conn.endpoint with
    | l ->
      conn.reconnects <- conn.reconnects + 1;
      conn.link <- Some l;
      Ok l
    | exception exn -> Error (describe_exn exn))

(* The id this request line carries, if any — responses are matched on it. *)
let request_id line =
  match Json.of_string line with
  | Ok j -> (
    match Json.member "id" j with Some Json.Null | None -> None | Some id -> Some id)
  | Error _ -> None

(* Mark a re-send so the daemon's replay cache can answer instead of
   executing twice. Unparseable lines go out unchanged. *)
let with_retry_flag line =
  match Json.of_string line with
  | Ok (Json.Obj fields) ->
    Json.to_string
      (Json.Obj (List.remove_assoc "retry" fields @ [ ("retry", Json.Bool true) ]))
  | Ok _ | Error _ -> line

exception Link_lost of string
exception Deadline

(* One buffered line off the link, waiting at most until [until] (mono). *)
let rec read_line link ~until =
  match link.lines with
  | l :: rest ->
    link.lines <- rest;
    l
  | [] ->
    let timeout =
      match until with
      | None -> -1.0
      | Some u ->
        let r = u -. Pacor_route.Clock.now_mono () in
        if r <= 0.0 then raise Deadline else r
    in
    (match Unix.select [ link.fd_in ] [] [] timeout with
     | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
     | [], _, _ -> raise Deadline
     | _ -> (
       let chunk = Bytes.create 65536 in
       match Unix.read link.fd_in chunk 0 (Bytes.length chunk) with
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
       | exception Unix.Unix_error (e, _, _) ->
         raise (Link_lost (Unix.error_message e))
       | 0 -> raise (Link_lost "daemon closed the connection")
       | n ->
         link.lines <-
           link.lines
           @ List.filter_map
               (function
                 | Linebuf.Line l -> Some l
                 | Linebuf.Overflow -> raise (Link_lost "oversized response"))
               (Linebuf.feed link.lbuf chunk 0 n)));
    read_line link ~until

let request conn line =
  let id = request_id line in
  let rec attempt n =
    let backoff_and_retry msg =
      if n >= conn.retries then
        Error
          (if conn.retries = 0 then msg
           else Printf.sprintf "%s (after %d retries)" msg conn.retries)
      else begin
        let jitter = 0.5 +. unit_float conn.rng in
        let sleep =
          Float.min 2.0 (conn.backoff_s *. (2.0 ** float_of_int n) *. jitter)
        in
        (try ignore (Unix.select [] [] [] sleep) with Unix.Unix_error _ -> ());
        attempt (n + 1)
      end
    in
    match ensure_link conn with
    | Error msg -> backoff_and_retry ("connect: " ^ msg)
    | Ok link -> (
      let wire =
        if n = 0 then line
        else begin
          conn.resends <- conn.resends + 1;
          with_retry_flag line
        end
      in
      match
        (match conn.sender with
         | Some f -> f ~attempt:n link.fd_out (wire ^ "\n")
         | None -> write_all link.fd_out (wire ^ "\n"));
        let until =
          Option.map (fun d -> Pacor_route.Clock.now_mono () +. d) conn.deadline_s
        in
        (* Discard unsolicited lines (id mismatch / missing) until the
           daemon answers this request. Requests sent without an id accept
           the first line, the PR 7 behaviour. *)
        let rec matching () =
          let resp = read_line link ~until in
          match id with
          | None -> resp
          | Some id -> (
            match Json.of_string resp with
            | Ok j when Json.member "id" j = Some id -> resp
            | Ok _ | Error _ ->
              conn.strays <- conn.strays + 1;
              matching ())
        in
        matching ()
      with
      | resp -> Ok resp
      | exception Deadline ->
        (* The daemon may still answer later; a retry would double-execute
           and the stale response would desynchronise the stream. Drop the
           link so the next request starts clean, and fail this one. *)
        drop_link conn;
        Error
          (Printf.sprintf "deadline: no response within %gs"
             (Option.value ~default:0.0 conn.deadline_s))
      | exception Link_lost msg ->
        drop_link conn;
        backoff_and_retry msg
      | exception Unix.Unix_error (e, fn, _) ->
        drop_link conn;
        backoff_and_retry (Printf.sprintf "%s: %s" fn (Unix.error_message e))
      | exception Sys_error e ->
        drop_link conn;
        backoff_and_retry e
      | exception exn ->
        (* The sender hook's contract: any exception it raises (a chaos
           injector abandoning the link mid-line) is a connection loss. *)
        drop_link conn;
        backoff_and_retry (Printexc.to_string exn))
  in
  attempt 0

let close conn = drop_link conn
