open Pacor_geom
open Pacor_valve

type session = {
  mutable problem : Pacor.Problem.t;
  mutable solution : Pacor.Solution.t;
  mutable revision : int;
}

type t = {
  cache : (Pacor.Solution.t * string) Lru.t;
  sessions : (string, session) Hashtbl.t;
  mutable pool : Pacor_route.Workspace.t list;
  pool_limit : int;
  poisoned : (string, string) Hashtbl.t;
  config : Pacor.Config.t;
  started_at : float;
  journal : Journal.t option;
  replay : string Lru.t;  (* request id -> response line, for client retries *)
  mutable served : int;
  mutable delta_requests : int;
  mutable incremental_served : int;
  mutable error_count : int;
  mutable replayed : int;
  mutable recovered : int;
  (* Overload-control counters, bumped by the I/O loop. *)
  mutable busy_rejected : int;
  mutable oversized_lines : int;
  mutable idle_reaped : int;
  mutable shed : int;
  mutable max_pending_obs : int;   (* peak Linebuf bytes across connections *)
  mutable max_outgoing_obs : int;  (* peak outgoing-queue bytes across connections *)
}

let create ?(cache_capacity = 64) ?(limits = Pacor_route.Budget.no_limits)
    ?(hier = Pacor.Config.Hier_auto) ?sched ?(replay_capacity = 256) ?journal () =
  {
    cache = Lru.create ~capacity:cache_capacity;
    sessions = Hashtbl.create 16;
    pool = [];
    pool_limit = 8;
    poisoned = Hashtbl.create 4;
    config = { Pacor.Config.default with limits; hier; sched };
    started_at = Pacor_route.Clock.now_mono ();
    journal;
    replay = Lru.create ~capacity:replay_capacity;
    served = 0;
    delta_requests = 0;
    incremental_served = 0;
    error_count = 0;
    replayed = 0;
    recovered = 0;
    busy_rejected = 0;
    oversized_lines = 0;
    idle_reaped = 0;
    shed = 0;
    max_pending_obs = 0;
    max_outgoing_obs = 0;
  }

(* Warm workspace pool: a connection leases one workspace for its lifetime,
   so its grid-sized arrays stay grown across requests; the pool recycles
   them across connections. *)
let take_workspace t =
  match t.pool with
  | ws :: rest ->
    t.pool <- rest;
    ws
  | [] -> Pacor_route.Workspace.create ()

let return_workspace t ws =
  if List.length t.pool < t.pool_limit then t.pool <- ws :: t.pool

let config_for t = function
  | None -> t.config
  | Some limits -> { t.config with Pacor.Config.limits }

(* (routed valves, total length) — the order the delta fallback compares
   by: route more valves first, then shorter total channel. *)
let better (a : Pacor.Solution.t) (b : Pacor.Solution.t) =
  let score sol =
    (Protocol.routed_valves sol, -(Pacor.Solution.stats sol).Pacor.Solution.total_length)
  in
  score a >= score b

let valid sol = Pacor.Solution.validate sol = Ok ()

(* Every session mutation is journalled (canonical problem text + revision)
   and fsync'd before the response that acknowledges it leaves the daemon:
   an acknowledged session is, by construction, recoverable after a kill. *)
let journal_bind t ~session ~revision ~(problem : Pacor.Problem.t) =
  match t.journal with
  | None -> ()
  | Some j ->
    Journal.record_bind j ~session ~revision
      ~problem_text:(Pacor.Problem_io.to_string problem)

let bind_session t name (sol : Pacor.Solution.t) =
  match name with
  | None -> ()
  | Some name ->
    Hashtbl.replace t.sessions name
      { problem = sol.Pacor.Solution.problem; solution = sol; revision = 0 };
    journal_bind t ~session:name ~revision:0 ~problem:sol.Pacor.Solution.problem

(* Rebuild the session store from the journal: parse each surviving
   record's canonical text and route it from scratch. Crash-only: a record
   that no longer parses or routes is skipped with a warning, never fatal —
   coming back up with n-1 sessions beats not coming back up. *)
let recover t =
  match t.journal with
  | None -> 0
  | Some j ->
    let ws = take_workspace t in
    Fun.protect
      ~finally:(fun () -> return_workspace t ws)
      (fun () ->
        List.fold_left
          (fun acc (session, revision, problem_text) ->
             match Pacor.Problem_io.of_string problem_text with
             | Error e ->
               Printf.eprintf "pacor-serve: recovery skipped session %S: %s\n%!"
                 session e;
               acc
             | Ok problem -> (
               match
                 try Pacor.Engine.run ~config:t.config ~workspace:ws problem with
                 | exn ->
                   Error
                     { Pacor.Engine.stage = "internal";
                       message = Printexc.to_string exn }
               with
               | Error e ->
                 Printf.eprintf
                   "pacor-serve: recovery skipped session %S: %s: %s\n%!" session
                   e.Pacor.Engine.stage e.message;
                 acc
               | Ok sol ->
                 Hashtbl.replace t.sessions session
                   { problem = sol.Pacor.Solution.problem; solution = sol; revision };
                 t.recovered <- t.recovered + 1;
                 acc + 1))
          0 (Journal.live j))

(* ---------- route ---------- *)

let do_route t ~workspace ~(req : Protocol.request) ~problem_text ~file ~session =
  let text =
    match (problem_text, file) with
    | Some s, _ -> Ok s
    | None, Some path -> (
      try
        let ic = open_in path in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        Ok s
      with Sys_error e | Failure e -> Error e)
    | None, None -> Error "route requires \"problem\" or \"file\""
  in
  match text with
  | Error m -> Error (Protocol.Validation, m)
  | Ok text -> (
    match Pacor.Problem_io.of_string text with
    | Error m -> Error (Protocol.Parse, "problem: " ^ m)
    | Ok problem -> (
      let fp = Pacor.Problem_io.fingerprint problem in
      match Hashtbl.find_opt t.poisoned fp with
      | Some why ->
        Error (Protocol.Internal, "request quarantined after earlier failure: " ^ why)
      | None -> (
        match Lru.find t.cache fp with
        | Some (sol, _) when req.Protocol.strict && sol.Pacor.Solution.budget_exhausted <> None ->
          (* Defensive: the store guard below keeps degraded solutions out
             of the cache, but a strict request must never be answered with
             one regardless of how it got there. *)
          Error
            ( Protocol.Budget,
              "budget exhausted: "
              ^ Pacor_route.Budget.reason_label
                  (Option.get sol.Pacor.Solution.budget_exhausted) )
        | Some (sol, result) ->
          bind_session t session sol;
          Ok (result, true)
        | None -> (
          let config = config_for t req.Protocol.limits in
          match
            try Pacor.Engine.run ~config ~workspace problem with
            | exn ->
              (* [Engine.run] is total by contract; if that contract ever
                 breaks, remember the offender so one bad instance cannot
                 crash-loop the daemon. *)
              Hashtbl.replace t.poisoned fp (Printexc.to_string exn);
              Error { Pacor.Engine.stage = "internal"; message = Printexc.to_string exn }
          with
          | Error e ->
            if e.Pacor.Engine.stage = "internal" then ()
            else Hashtbl.replace t.poisoned fp (e.stage ^ ": " ^ e.message);
            Error
              ( (if e.Pacor.Engine.stage = "internal" then Protocol.Internal
                 else Protocol.Engine),
                e.stage ^ ": " ^ e.message )
          | Ok sol ->
            if req.Protocol.strict && sol.Pacor.Solution.budget_exhausted <> None then
              Error
                ( Protocol.Budget,
                  "budget exhausted: "
                  ^ Pacor_route.Budget.reason_label
                      (Option.get sol.Pacor.Solution.budget_exhausted) )
            else begin
              let result = Json.to_string (Protocol.solution_result sol) in
              (* Only full-budget runs enter the cache: a budget-limited
                 request — per-request limits or daemon-wide ones installed
                 at create time — must not poison later unlimited ones with
                 its degraded answer. *)
              if
                req.Protocol.limits = None
                && Pacor_route.Budget.is_no_limits config.Pacor.Config.limits
                && sol.Pacor.Solution.budget_exhausted = None
              then Lru.add t.cache fp (sol, result);
              bind_session t session sol;
              Ok (result, false)
            end))))

(* ---------- deltas ---------- *)

(* What a delta does to a session, decided before any routing runs. *)
type plan =
  | Rebase of Pacor.Solution.t
      (** dirty set empty: adopt the mutated problem (and possibly
          recomputed matched flags); every path byte-identical *)
  | Reroute of {
      problem : Pacor.Problem.t;
      is_dirty : Pacor.Solution.routed_cluster -> bool;
      revise : Cluster.t -> Cluster.t option;
    }
  | Repair of { faults : Pacor_fault.Fault.t list; fproblem : Pacor.Problem.t }

(* Matched flags under a different delta, paths untouched: the engine's
   assembly rule (LM shape, escaped, spread within delta) re-evaluated. *)
let rematch_flags ~delta ~problem (sol : Pacor.Solution.t) =
  let clusters =
    List.map
      (fun (c : Pacor.Solution.routed_cluster) ->
         let matched =
           Pacor.Routed.is_length_matched_shape c.routed
           && c.escape <> None
           && (match Pacor.Routed.spread c.routed with
               | Some s -> s <= delta
               | None -> false)
         in
         { c with Pacor.Solution.matched })
      sol.Pacor.Solution.clusters
  in
  { sol with Pacor.Solution.problem; clusters }

let plan_delta (sess : session) (delta : Protocol.delta_op) =
  let problem = sess.problem in
  let sol = sess.solution in
  let verr m = Error (Protocol.Validation, m) in
  match delta with
  | Protocol.Move_valve { valve; x; y } -> (
    let pos = Point.make x y in
    match Pacor.Problem.move_valve problem valve pos with
    | Error m -> verr m
    | Ok p' when p' == problem -> Ok (Rebase sol) (* moved onto its own cell *)
    | Ok p' ->
      let owns (c : Pacor.Solution.routed_cluster) =
        List.mem valve (Cluster.valve_ids c.routed.Pacor.Routed.cluster)
      in
      (* Dirty: the valve's own cluster, plus anyone whose channels run
         through the destination cell. *)
      let is_dirty c = owns c || Point.Set.mem pos (Pacor_fault.Repair.footprint c) in
      let revise (cluster : Cluster.t) =
        if not (List.mem valve (Cluster.valve_ids cluster)) then Some cluster
        else begin
          let members =
            List.map
              (fun (v : Valve.t) -> if v.id = valve then { v with position = pos } else v)
              cluster.Cluster.valves
          in
          match
            Cluster.make ~id:cluster.Cluster.id
              ~length_matched:cluster.Cluster.length_matched members
          with
          | Ok c -> Some c
          | Error _ ->
            Some (Cluster.make_exn ~id:cluster.Cluster.id ~length_matched:false members)
        end
      in
      Ok (Reroute { problem = p'; is_dirty; revise }))
  | Protocol.Add_obstacle { x; y } -> (
    let pos = Point.make x y in
    match Pacor.Problem.add_obstacle problem pos with
    | Error m -> verr m
    | Ok p' ->
      let is_dirty c = Point.Set.mem pos (Pacor_fault.Repair.footprint c) in
      Ok (Reroute { problem = p'; is_dirty; revise = (fun c -> Some c) }))
  | Protocol.Remove_obstacle { x; y } -> (
    match Pacor.Problem.remove_obstacle problem (Point.make x y) with
    | Error m -> verr m
    | Ok p' ->
      (* Freeing a cell invalidates nothing: every routed path stays
         legal, so the dirty set is empty by construction. *)
      Ok (Rebase { sol with Pacor.Solution.problem = p' }))
  | Protocol.Set_delta { delta } -> (
    match Pacor.Problem.with_delta problem delta with
    | Error m -> verr m
    | Ok p' ->
      if delta = problem.Pacor.Problem.delta then Ok (Rebase sol)
      else if delta > problem.Pacor.Problem.delta then
        (* Loosening re-matches by flag flip alone — no path moves. *)
        Ok (Rebase (rematch_flags ~delta ~problem:p' sol))
      else begin
        (* Tightening: clusters matched at the old threshold but over the
           new one get a re-route (detour may pull them back under);
           everything else keeps both its paths and its flag. *)
        let is_dirty (c : Pacor.Solution.routed_cluster) =
          c.matched
          && (match Pacor.Routed.spread c.routed with Some s -> s > delta | None -> false)
        in
        Ok (Reroute { problem = p'; is_dirty; revise = (fun c -> Some c) })
      end)
  | Protocol.Inject_fault { spec } -> (
    match Pacor_fault.Fault.parse_spec spec with
    | Error m -> verr ("fault: " ^ m)
    | Ok spec -> (
      match Pacor_fault.Fault.realise spec sol with
      | [] -> Ok (Rebase sol)
      | faults -> (
        match Pacor_fault.Fault.apply problem faults with
        | Error m -> verr ("fault: " ^ m)
        | Ok fproblem -> Ok (Repair { faults; fproblem }))))

(* Every delta appends one stage to the solution's bookkeeping lists; a
   long-lived session would grow them (and every response) without bound.
   Keep a recent window — nothing downstream needs deep history. *)
let max_session_stages = 12

let trim_stages (sol : Pacor.Solution.t) =
  let keep l =
    let n = List.length l in
    if n <= max_session_stages then l
    else List.filteri (fun i _ -> i >= n - max_session_stages) l
  in
  {
    sol with
    Pacor.Solution.stage_seconds = keep sol.Pacor.Solution.stage_seconds;
    stage_search = keep sol.Pacor.Solution.stage_search;
    stage_outcomes = keep sol.Pacor.Solution.stage_outcomes;
  }

let do_delta t ~workspace ~(req : Protocol.request) ~session:name ~delta =
  match Hashtbl.find_opt t.sessions name with
  | None -> Error (Protocol.Validation, "unknown session " ^ name)
  | Some sess -> (
    t.delta_requests <- t.delta_requests + 1;
    let stats = Pacor_route.Workspace.stats workspace in
    let s0 = Pacor_route.Search_stats.snapshot stats in
    let finish ~incremental ~dirty (sol : Pacor.Solution.t) =
      if req.Protocol.strict && sol.Pacor.Solution.budget_exhausted <> None then
        Error
          ( Protocol.Budget,
            "budget exhausted: "
            ^ Pacor_route.Budget.reason_label
                (Option.get sol.Pacor.Solution.budget_exhausted) )
      else begin
        let s1 = Pacor_route.Search_stats.snapshot stats in
        let expansions = (Pacor_route.Search_stats.diff s1 s0).Pacor_route.Search_stats.pops in
        let sol = trim_stages sol in
        sess.problem <- sol.Pacor.Solution.problem;
        sess.solution <- sol;
        sess.revision <- sess.revision + 1;
        journal_bind t ~session:name ~revision:sess.revision ~problem:sess.problem;
        if incremental then t.incremental_served <- t.incremental_served + 1;
        let fields =
          ("op", Json.String (Protocol.delta_label delta))
          :: ("revision", Json.Int sess.revision)
          :: ("incremental", Json.Bool incremental)
          :: ("dirty", Json.List (List.map (fun i -> Json.Int i) dirty))
          :: ("expansions", Json.Int expansions)
          :: Protocol.solution_fields sol
        in
        Ok (Json.to_string (Json.Obj fields), false)
      end
    in
    (* The certificate-or-fallback policy: serve the incremental result
       iff it validates, quarantined nothing (unless the delta is itself a
       fault, where quarantine is the contract) and ran within budget;
       otherwise route the mutated problem from scratch and serve whichever
       answer is lexicographically better on (routed valves, length). *)
    let fallback ~problem ~dirty incremental_sol =
      let config = config_for t req.Protocol.limits in
      match Pacor.Engine.run ~config ~workspace problem with
      | Error e -> (
        match incremental_sol with
        | Some sol -> finish ~incremental:true ~dirty sol
        | None -> Error (Protocol.Engine, e.Pacor.Engine.stage ^ ": " ^ e.message))
      | Ok full -> (
        match incremental_sol with
        | Some sol when better sol full -> finish ~incremental:true ~dirty sol
        | Some _ | None -> finish ~incremental:false ~dirty full)
    in
    match plan_delta sess delta with
    | Error _ as e -> e
    | Ok (Rebase sol) -> finish ~incremental:true ~dirty:[] sol
    | Ok (Reroute { problem; is_dirty; revise }) -> (
      let dirty_ids =
        List.sort Int.compare
          (List.filter_map
             (fun (c : Pacor.Solution.routed_cluster) ->
                if is_dirty c then Some c.routed.Pacor.Routed.cluster.Cluster.id else None)
             sess.solution.Pacor.Solution.clusters)
      in
      if dirty_ids = [] then
        finish ~incremental:true ~dirty:[]
          { sess.solution with Pacor.Solution.problem }
      else
        match
          Pacor_fault.Repair.reroute ?sched:t.config.Pacor.Config.sched
            ~workspace ?limits:req.Protocol.limits
            ~stage:(Protocol.delta_label delta) ~problem ~is_dirty ~revise sess.solution
        with
        | Ok r
          when valid r.Pacor_fault.Repair.solution
               && r.Pacor_fault.Repair.quarantined = []
               && r.Pacor_fault.Repair.solution.Pacor.Solution.budget_exhausted = None ->
          finish ~incremental:true ~dirty:r.Pacor_fault.Repair.dirty
            r.Pacor_fault.Repair.solution
        | Ok r ->
          fallback ~problem ~dirty:r.Pacor_fault.Repair.dirty
            (if valid r.Pacor_fault.Repair.solution then
               Some r.Pacor_fault.Repair.solution
             else None)
        | Error _ -> fallback ~problem ~dirty:dirty_ids None)
    | Ok (Repair { faults; fproblem }) -> (
      match
        Pacor_fault.Repair.run ?sched:t.config.Pacor.Config.sched
          ~workspace ?limits:req.Protocol.limits ~faults
          sess.solution
      with
      | Ok r
        when valid r.Pacor_fault.Repair.solution
             && r.Pacor_fault.Repair.solution.Pacor.Solution.budget_exhausted = None ->
        (* Quarantine is a legitimate fault outcome, not a certificate
           failure: a pinless valve stays pinless under a full re-route of
           the faulted instance too. *)
        finish ~incremental:true ~dirty:r.Pacor_fault.Repair.dirty
          r.Pacor_fault.Repair.solution
      | Ok r ->
        fallback ~problem:fproblem ~dirty:r.Pacor_fault.Repair.dirty
          (if valid r.Pacor_fault.Repair.solution then
             Some r.Pacor_fault.Repair.solution
           else None)
      | Error _ ->
        fallback ~problem:fproblem
          ~dirty:(Pacor_fault.Repair.dirty_set ~faults sess.solution)
          None))

(* ---------- the other ops ---------- *)

let do_get t ~session:name =
  match Hashtbl.find_opt t.sessions name with
  | None -> Error (Protocol.Validation, "unknown session " ^ name)
  | Some sess ->
    let fields =
      ("session", Json.String name)
      :: ("revision", Json.Int sess.revision)
      :: Protocol.solution_fields sess.solution
    in
    Ok (Json.to_string (Json.Obj fields), false)

let do_close t ~session:name =
  if Hashtbl.mem t.sessions name then begin
    Hashtbl.remove t.sessions name;
    (match t.journal with None -> () | Some j -> Journal.record_close j ~session:name);
    Ok (Json.to_string (Json.Obj [ ("closed", Json.String name) ]), false)
  end
  else Error (Protocol.Validation, "unknown session " ^ name)

let stats_result t =
  Json.Obj
    [
      ("sessions", Json.Int (Hashtbl.length t.sessions));
      ("served", Json.Int t.served);
      ("delta_requests", Json.Int t.delta_requests);
      ("incremental_served", Json.Int t.incremental_served);
      ("errors", Json.Int t.error_count);
      ( "cache",
        Json.Obj
          [
            ("size", Json.Int (Lru.length t.cache));
            ("capacity", Json.Int (Lru.capacity t.cache));
            ("hits", Json.Int (Lru.hits t.cache));
            ("misses", Json.Int (Lru.misses t.cache));
            ("evictions", Json.Int (Lru.evictions t.cache));
          ] );
      ("poisoned", Json.Int (Hashtbl.length t.poisoned));
      ("replayed", Json.Int t.replayed);
      ("recovered_sessions", Json.Int t.recovered);
      ( "overload",
        Json.Obj
          [
            ("busy_rejected", Json.Int t.busy_rejected);
            ("oversized_lines", Json.Int t.oversized_lines);
            ("idle_reaped", Json.Int t.idle_reaped);
            ("shed", Json.Int t.shed);
            ("max_pending_bytes", Json.Int t.max_pending_obs);
            ("max_outgoing_bytes", Json.Int t.max_outgoing_obs);
          ] );
      ( "journal",
        match t.journal with
        | None -> Json.Null
        | Some j ->
          Json.Obj
            [
              ("path", Json.String (Journal.path j));
              ("live", Json.Int (List.length (Journal.live j)));
              ("appended", Json.Int (Journal.records_appended j));
              ("compactions", Json.Int (Journal.compactions j));
            ] );
      ("uptime_s", Json.Float (Pacor_route.Clock.now_mono () -. t.started_at));
      ("monotonic_clock", Json.Bool Pacor_route.Clock.monotonic_available);
    ]

(* ---------- dispatch ---------- *)

type outcome = {
  line : string;  (** the response, newline not included *)
  stop : bool;    (** a shutdown was requested *)
}

let dispatch t ~workspace (req : Protocol.request) =
  match req.Protocol.op with
  | Protocol.Ping ->
    Ok
      ( Json.to_string
          (Json.Obj
             [
               ("pong", Json.Bool true);
               ("monotonic_clock", Json.Bool Pacor_route.Clock.monotonic_available);
             ]),
        false )
  | Protocol.Route { problem_text; file; session } ->
    do_route t ~workspace ~req ~problem_text ~file ~session
  | Protocol.Delta { session; delta } -> do_delta t ~workspace ~req ~session ~delta
  | Protocol.Get { session } -> do_get t ~session
  | Protocol.Close { session } -> do_close t ~session
  | Protocol.Stats -> Ok (Json.to_string (stats_result t), false)
  | Protocol.Shutdown -> Ok (Json.to_string (Json.Obj [ ("stopping", Json.Bool true) ]), false)

let handle ?workspace t line =
  t.served <- t.served + 1;
  match Protocol.parse_request line with
  | Error (id, cls, message) ->
    t.error_count <- t.error_count + 1;
    { line = Protocol.render_error ~id ~cls ~message; stop = false }
  | Ok req -> (
    (* Idempotent retry: a re-sent request (retry:true, same id) whose
       first copy was already executed — its response lost to a connection
       drop — replays the stored response instead of executing twice. Keyed
       by the id alone, because the re-sent line differs (the retry flag). *)
    let replay_key =
      match req.Protocol.id with Json.Null -> None | id -> Some (Json.to_string id)
    in
    match
      if req.Protocol.retry then Option.bind replay_key (Lru.find t.replay) else None
    with
    | Some stored ->
      t.replayed <- t.replayed + 1;
      { line = stored; stop = false }
    | None ->
      let ws, leased =
        match workspace with Some w -> (w, false) | None -> (take_workspace t, true)
      in
      Fun.protect
        ~finally:(fun () -> if leased then return_workspace t ws)
        (fun () ->
          let res =
            try dispatch t ~workspace:ws req with
            | Stack_overflow -> Error (Protocol.Internal, "stack overflow")
            | exn -> Error (Protocol.Internal, Printexc.to_string exn)
          in
          let out =
            match res with
            | Ok (result, cached) ->
              {
                line = Protocol.render_ok ~id:req.Protocol.id ~cached ~result;
                stop = req.Protocol.op = Protocol.Shutdown;
              }
            | Error (cls, message) ->
              t.error_count <- t.error_count + 1;
              { line = Protocol.render_error ~id:req.Protocol.id ~cls ~message;
                stop = false }
          in
          (match replay_key with
           | Some key -> Lru.add t.replay key out.line
           | None -> ());
          out))

(* ---------- the I/O loop ---------- *)

type conn = {
  fd : Unix.file_descr;       (* request side *)
  out_fd : Unix.file_descr;   (* response side (stdout for the stdio conn) *)
  lbuf : Linebuf.t;           (* capped line reassembly (satellite: the old
                                 pending Buffer.t grew without bound) *)
  outq : string Queue.t;      (* responses not yet written to the peer *)
  mutable out_off : int;      (* written prefix of the queue's head *)
  mutable out_bytes : int;    (* total queued bytes, vs the high-water mark *)
  ws : Pacor_route.Workspace.t;
  mutable closed : bool;      (* close_conn ran; drop any still-buffered lines *)
  mutable last_activity : float;  (* mono time of the last byte read *)
  is_stdio : bool;
}

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let listen ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 16;
  let actual =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, actual) -> actual
    | _ -> port
  in
  Printf.eprintf "pacor-serve: listening on 127.0.0.1:%d\n%!" actual;
  (fd, actual)

(* Defaults, shared with the CLI flags. *)
let default_max_conns = 64
let default_high_water = 8 * 1024 * 1024
let default_idle_timeout_s = 600.0
let default_tick_s = 0.25

let serve_loop ?(stdio = true) ?port ?listen_fd ?(max_conns = default_max_conns)
    ?(max_line = Linebuf.default_max_line) ?(high_water = default_high_water)
    ?(idle_timeout_s = default_idle_timeout_s) ?(tick_s = default_tick_s) t =
  (if Sys.os_type = "Unix" then
     try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd =
    match (listen_fd, port) with
    | Some fd, _ -> Some fd
    | None, Some p -> Some (fst (listen ~port:p))
    | None, None -> None
  in
  let conns = ref [] in
  let mk_conn ~is_stdio fd out_fd =
    (try Unix.set_nonblock out_fd with Unix.Unix_error _ -> ());
    { fd; out_fd; lbuf = Linebuf.create ~max_line (); outq = Queue.create ();
      out_off = 0; out_bytes = 0; ws = take_workspace t; closed = false;
      last_activity = Pacor_route.Clock.now_mono (); is_stdio }
  in
  if stdio then conns := [ mk_conn ~is_stdio:true Unix.stdin Unix.stdout ];
  let stop = ref false in
  let close_conn c =
    if not c.closed then begin
      c.closed <- true;
      return_workspace t c.ws;
      if c.is_stdio then
        (* stdin/stdout belong to the process, not the connection; just
           undo the non-blocking flag we set. *)
        (try Unix.clear_nonblock c.out_fd with Unix.Unix_error _ -> ())
      else (try Unix.close c.fd with Unix.Unix_error _ -> ());
      conns := List.filter (fun c' -> c' != c) !conns
    end
  in
  (* Drain as much of the outgoing queue as the peer will take right now;
     never blocks. EAGAIN leaves the rest for the select write set. *)
  let rec flush_some c =
    if (not c.closed) && c.out_bytes > 0 then begin
      let head = Queue.peek c.outq in
      let len = String.length head in
      match Unix.write_substring c.out_fd head c.out_off (len - c.out_off) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> flush_some c
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error _ -> close_conn c
      | written ->
        c.out_bytes <- c.out_bytes - written;
        if c.out_off + written = len then begin
          ignore (Queue.pop c.outq);
          c.out_off <- 0;
          flush_some c
        end
        else c.out_off <- c.out_off + written
    end
  in
  (* Queue one response line. A peer that reads slower than it asks — the
     classic slow-client stall — accumulates here instead of blocking the
     loop; past the high-water mark the connection is shed outright. *)
  let queue_line c s =
    if not c.closed then begin
      Queue.add (s ^ "\n") c.outq;
      c.out_bytes <- c.out_bytes + String.length s + 1;
      if c.out_bytes > t.max_outgoing_obs then t.max_outgoing_obs <- c.out_bytes;
      flush_some c;
      if c.out_bytes > high_water then begin
        t.shed <- t.shed + 1;
        Printf.eprintf
          "pacor-serve: shedding connection %d bytes behind (high water %d)\n%!"
          c.out_bytes high_water;
        close_conn c
      end
    end
  in
  let busy_line =
    Protocol.render_error ~id:Json.Null ~cls:Protocol.Busy
      ~message:
        (Printf.sprintf "server at connection capacity (%d); retry later" max_conns)
    ^ "\n"
  in
  let reap_idle now =
    List.iter
      (fun c ->
         (* The stdio connection is the daemon's lifeline to its parent; an
            idle terminal is not a dead peer. TCP idlers give their leased
            workspace back. *)
         if (not c.is_stdio) && now -. c.last_activity > idle_timeout_s then begin
           t.idle_reaped <- t.idle_reaped + 1;
           close_conn c
         end)
      !conns
  in
  let chunk = Bytes.create 65536 in
  let last_tick = ref (Pacor_route.Clock.now_mono ()) in
  while (not !stop) && (!conns <> [] || listen_fd <> None) do
    let read_watch =
      (match listen_fd with Some fd -> [ fd ] | None -> [])
      @ List.map (fun c -> c.fd) !conns
    in
    let write_watch =
      List.filter_map (fun c -> if c.out_bytes > 0 then Some c.out_fd else None) !conns
    in
    (* Bounded tick (satellite: the old -1.0 select never woke for
       housekeeping): idle reaping and journal compaction run even when no
       client sends a byte. *)
    (match Unix.select read_watch write_watch [] tick_s with
     | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
     | ready, wready, _ ->
       List.iter
         (fun c -> if (not c.closed) && List.memq c.out_fd wready then flush_some c)
         !conns;
       (match listen_fd with
        | Some lfd when List.mem lfd ready ->
          (match Unix.accept lfd with
           | fd, _ ->
             if List.length !conns >= max_conns then begin
               (* Shed at the door: one busy error line, close, and never
                  lease a workspace. The fresh socket's buffer is empty, so
                  this short write cannot block. *)
               t.busy_rejected <- t.busy_rejected + 1;
               (try write_all fd busy_line with Unix.Unix_error _ -> ());
               (try Unix.close fd with Unix.Unix_error _ -> ())
             end
             else conns := mk_conn ~is_stdio:false fd fd :: !conns
           | exception Unix.Unix_error _ -> ())
        | _ -> ());
       List.iter
         (fun c ->
            if (not !stop) && (not c.closed) && List.memq c.fd ready then
              match Unix.read c.fd chunk 0 (Bytes.length chunk) with
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
              | exception Unix.Unix_error _ -> close_conn c
              | 0 -> close_conn c
              | n ->
                c.last_activity <- Pacor_route.Clock.now_mono ();
                let events = Linebuf.feed c.lbuf chunk 0 n in
                if Linebuf.high_water c.lbuf > t.max_pending_obs then
                  t.max_pending_obs <- Linebuf.high_water c.lbuf;
                List.iter
                  (fun ev ->
                     if (not !stop) && not c.closed then
                       match ev with
                       | Linebuf.Overflow ->
                         t.oversized_lines <- t.oversized_lines + 1;
                         t.error_count <- t.error_count + 1;
                         queue_line c
                           (Protocol.render_error ~id:Json.Null ~cls:Protocol.Parse
                              ~message:
                                (Printf.sprintf
                                   "request line exceeds %d bytes; dropped" max_line))
                       | Linebuf.Line line ->
                         if String.trim line <> "" then begin
                           let out = handle ~workspace:c.ws t line in
                           queue_line c out.line;
                           if out.stop then stop := true
                         end)
                  events)
         !conns);
    let now = Pacor_route.Clock.now_mono () in
    if now -. !last_tick >= tick_s then begin
      last_tick := now;
      reap_idle now;
      match t.journal with None -> () | Some j -> Journal.maybe_compact j
    end
  done;
  (* Shutdown: the response that acknowledged it may still be queued. Give
     each peer a blocking best-effort flush before closing. *)
  List.iter
    (fun c ->
       if (not c.closed) && c.out_bytes > 0 then begin
         (try Unix.clear_nonblock c.out_fd with Unix.Unix_error _ -> ());
         try
           Queue.iter
             (fun s ->
                if c.out_off > 0 then begin
                  write_all c.out_fd (String.sub s c.out_off (String.length s - c.out_off));
                  c.out_off <- 0
                end
                else write_all c.out_fd s)
             c.outq
         with Unix.Unix_error _ -> ()
       end)
    !conns;
  List.iter (fun c -> try close_conn c with _ -> ()) !conns;
  (match listen_fd with
   | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
   | None -> ())
