open Pacor_geom
open Pacor_valve

type session = {
  mutable problem : Pacor.Problem.t;
  mutable solution : Pacor.Solution.t;
  mutable revision : int;
}

type t = {
  cache : (Pacor.Solution.t * string) Lru.t;
  sessions : (string, session) Hashtbl.t;
  mutable pool : Pacor_route.Workspace.t list;
  pool_limit : int;
  poisoned : (string, string) Hashtbl.t;
  config : Pacor.Config.t;
  started_at : float;
  mutable served : int;
  mutable delta_requests : int;
  mutable incremental_served : int;
  mutable error_count : int;
}

let create ?(cache_capacity = 64) ?(limits = Pacor_route.Budget.no_limits) () =
  {
    cache = Lru.create ~capacity:cache_capacity;
    sessions = Hashtbl.create 16;
    pool = [];
    pool_limit = 8;
    poisoned = Hashtbl.create 4;
    config = { Pacor.Config.default with limits };
    started_at = Pacor_route.Clock.now_mono ();
    served = 0;
    delta_requests = 0;
    incremental_served = 0;
    error_count = 0;
  }

(* Warm workspace pool: a connection leases one workspace for its lifetime,
   so its grid-sized arrays stay grown across requests; the pool recycles
   them across connections. *)
let take_workspace t =
  match t.pool with
  | ws :: rest ->
    t.pool <- rest;
    ws
  | [] -> Pacor_route.Workspace.create ()

let return_workspace t ws =
  if List.length t.pool < t.pool_limit then t.pool <- ws :: t.pool

let config_for t = function
  | None -> t.config
  | Some limits -> { t.config with Pacor.Config.limits }

(* (routed valves, total length) — the order the delta fallback compares
   by: route more valves first, then shorter total channel. *)
let better (a : Pacor.Solution.t) (b : Pacor.Solution.t) =
  let score sol =
    (Protocol.routed_valves sol, -(Pacor.Solution.stats sol).Pacor.Solution.total_length)
  in
  score a >= score b

let valid sol = Pacor.Solution.validate sol = Ok ()

let bind_session t name (sol : Pacor.Solution.t) =
  match name with
  | None -> ()
  | Some name ->
    Hashtbl.replace t.sessions name
      { problem = sol.Pacor.Solution.problem; solution = sol; revision = 0 }

(* ---------- route ---------- *)

let do_route t ~workspace ~(req : Protocol.request) ~problem_text ~file ~session =
  let text =
    match (problem_text, file) with
    | Some s, _ -> Ok s
    | None, Some path -> (
      try
        let ic = open_in path in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        Ok s
      with Sys_error e | Failure e -> Error e)
    | None, None -> Error "route requires \"problem\" or \"file\""
  in
  match text with
  | Error m -> Error (Protocol.Validation, m)
  | Ok text -> (
    match Pacor.Problem_io.of_string text with
    | Error m -> Error (Protocol.Parse, "problem: " ^ m)
    | Ok problem -> (
      let fp = Pacor.Problem_io.fingerprint problem in
      match Hashtbl.find_opt t.poisoned fp with
      | Some why ->
        Error (Protocol.Internal, "request quarantined after earlier failure: " ^ why)
      | None -> (
        match Lru.find t.cache fp with
        | Some (sol, _) when req.Protocol.strict && sol.Pacor.Solution.budget_exhausted <> None ->
          (* Defensive: the store guard below keeps degraded solutions out
             of the cache, but a strict request must never be answered with
             one regardless of how it got there. *)
          Error
            ( Protocol.Budget,
              "budget exhausted: "
              ^ Pacor_route.Budget.reason_label
                  (Option.get sol.Pacor.Solution.budget_exhausted) )
        | Some (sol, result) ->
          bind_session t session sol;
          Ok (result, true)
        | None -> (
          let config = config_for t req.Protocol.limits in
          match
            try Pacor.Engine.run ~config ~workspace problem with
            | exn ->
              (* [Engine.run] is total by contract; if that contract ever
                 breaks, remember the offender so one bad instance cannot
                 crash-loop the daemon. *)
              Hashtbl.replace t.poisoned fp (Printexc.to_string exn);
              Error { Pacor.Engine.stage = "internal"; message = Printexc.to_string exn }
          with
          | Error e ->
            if e.Pacor.Engine.stage = "internal" then ()
            else Hashtbl.replace t.poisoned fp (e.stage ^ ": " ^ e.message);
            Error
              ( (if e.Pacor.Engine.stage = "internal" then Protocol.Internal
                 else Protocol.Engine),
                e.stage ^ ": " ^ e.message )
          | Ok sol ->
            if req.Protocol.strict && sol.Pacor.Solution.budget_exhausted <> None then
              Error
                ( Protocol.Budget,
                  "budget exhausted: "
                  ^ Pacor_route.Budget.reason_label
                      (Option.get sol.Pacor.Solution.budget_exhausted) )
            else begin
              let result = Json.to_string (Protocol.solution_result sol) in
              (* Only full-budget runs enter the cache: a budget-limited
                 request — per-request limits or daemon-wide ones installed
                 at create time — must not poison later unlimited ones with
                 its degraded answer. *)
              if
                req.Protocol.limits = None
                && Pacor_route.Budget.is_no_limits config.Pacor.Config.limits
                && sol.Pacor.Solution.budget_exhausted = None
              then Lru.add t.cache fp (sol, result);
              bind_session t session sol;
              Ok (result, false)
            end))))

(* ---------- deltas ---------- *)

(* What a delta does to a session, decided before any routing runs. *)
type plan =
  | Rebase of Pacor.Solution.t
      (** dirty set empty: adopt the mutated problem (and possibly
          recomputed matched flags); every path byte-identical *)
  | Reroute of {
      problem : Pacor.Problem.t;
      is_dirty : Pacor.Solution.routed_cluster -> bool;
      revise : Cluster.t -> Cluster.t option;
    }
  | Repair of { faults : Pacor_fault.Fault.t list; fproblem : Pacor.Problem.t }

(* Matched flags under a different delta, paths untouched: the engine's
   assembly rule (LM shape, escaped, spread within delta) re-evaluated. *)
let rematch_flags ~delta ~problem (sol : Pacor.Solution.t) =
  let clusters =
    List.map
      (fun (c : Pacor.Solution.routed_cluster) ->
         let matched =
           Pacor.Routed.is_length_matched_shape c.routed
           && c.escape <> None
           && (match Pacor.Routed.spread c.routed with
               | Some s -> s <= delta
               | None -> false)
         in
         { c with Pacor.Solution.matched })
      sol.Pacor.Solution.clusters
  in
  { sol with Pacor.Solution.problem; clusters }

let plan_delta (sess : session) (delta : Protocol.delta_op) =
  let problem = sess.problem in
  let sol = sess.solution in
  let verr m = Error (Protocol.Validation, m) in
  match delta with
  | Protocol.Move_valve { valve; x; y } -> (
    let pos = Point.make x y in
    match Pacor.Problem.move_valve problem valve pos with
    | Error m -> verr m
    | Ok p' when p' == problem -> Ok (Rebase sol) (* moved onto its own cell *)
    | Ok p' ->
      let owns (c : Pacor.Solution.routed_cluster) =
        List.mem valve (Cluster.valve_ids c.routed.Pacor.Routed.cluster)
      in
      (* Dirty: the valve's own cluster, plus anyone whose channels run
         through the destination cell. *)
      let is_dirty c = owns c || Point.Set.mem pos (Pacor_fault.Repair.footprint c) in
      let revise (cluster : Cluster.t) =
        if not (List.mem valve (Cluster.valve_ids cluster)) then Some cluster
        else begin
          let members =
            List.map
              (fun (v : Valve.t) -> if v.id = valve then { v with position = pos } else v)
              cluster.Cluster.valves
          in
          match
            Cluster.make ~id:cluster.Cluster.id
              ~length_matched:cluster.Cluster.length_matched members
          with
          | Ok c -> Some c
          | Error _ ->
            Some (Cluster.make_exn ~id:cluster.Cluster.id ~length_matched:false members)
        end
      in
      Ok (Reroute { problem = p'; is_dirty; revise }))
  | Protocol.Add_obstacle { x; y } -> (
    let pos = Point.make x y in
    match Pacor.Problem.add_obstacle problem pos with
    | Error m -> verr m
    | Ok p' ->
      let is_dirty c = Point.Set.mem pos (Pacor_fault.Repair.footprint c) in
      Ok (Reroute { problem = p'; is_dirty; revise = (fun c -> Some c) }))
  | Protocol.Remove_obstacle { x; y } -> (
    match Pacor.Problem.remove_obstacle problem (Point.make x y) with
    | Error m -> verr m
    | Ok p' ->
      (* Freeing a cell invalidates nothing: every routed path stays
         legal, so the dirty set is empty by construction. *)
      Ok (Rebase { sol with Pacor.Solution.problem = p' }))
  | Protocol.Set_delta { delta } -> (
    match Pacor.Problem.with_delta problem delta with
    | Error m -> verr m
    | Ok p' ->
      if delta = problem.Pacor.Problem.delta then Ok (Rebase sol)
      else if delta > problem.Pacor.Problem.delta then
        (* Loosening re-matches by flag flip alone — no path moves. *)
        Ok (Rebase (rematch_flags ~delta ~problem:p' sol))
      else begin
        (* Tightening: clusters matched at the old threshold but over the
           new one get a re-route (detour may pull them back under);
           everything else keeps both its paths and its flag. *)
        let is_dirty (c : Pacor.Solution.routed_cluster) =
          c.matched
          && (match Pacor.Routed.spread c.routed with Some s -> s > delta | None -> false)
        in
        Ok (Reroute { problem = p'; is_dirty; revise = (fun c -> Some c) })
      end)
  | Protocol.Inject_fault { spec } -> (
    match Pacor_fault.Fault.parse_spec spec with
    | Error m -> verr ("fault: " ^ m)
    | Ok spec -> (
      match Pacor_fault.Fault.realise spec sol with
      | [] -> Ok (Rebase sol)
      | faults -> (
        match Pacor_fault.Fault.apply problem faults with
        | Error m -> verr ("fault: " ^ m)
        | Ok fproblem -> Ok (Repair { faults; fproblem }))))

(* Every delta appends one stage to the solution's bookkeeping lists; a
   long-lived session would grow them (and every response) without bound.
   Keep a recent window — nothing downstream needs deep history. *)
let max_session_stages = 12

let trim_stages (sol : Pacor.Solution.t) =
  let keep l =
    let n = List.length l in
    if n <= max_session_stages then l
    else List.filteri (fun i _ -> i >= n - max_session_stages) l
  in
  {
    sol with
    Pacor.Solution.stage_seconds = keep sol.Pacor.Solution.stage_seconds;
    stage_search = keep sol.Pacor.Solution.stage_search;
    stage_outcomes = keep sol.Pacor.Solution.stage_outcomes;
  }

let do_delta t ~workspace ~(req : Protocol.request) ~session:name ~delta =
  match Hashtbl.find_opt t.sessions name with
  | None -> Error (Protocol.Validation, "unknown session " ^ name)
  | Some sess -> (
    t.delta_requests <- t.delta_requests + 1;
    let stats = Pacor_route.Workspace.stats workspace in
    let s0 = Pacor_route.Search_stats.snapshot stats in
    let finish ~incremental ~dirty (sol : Pacor.Solution.t) =
      if req.Protocol.strict && sol.Pacor.Solution.budget_exhausted <> None then
        Error
          ( Protocol.Budget,
            "budget exhausted: "
            ^ Pacor_route.Budget.reason_label
                (Option.get sol.Pacor.Solution.budget_exhausted) )
      else begin
        let s1 = Pacor_route.Search_stats.snapshot stats in
        let expansions = (Pacor_route.Search_stats.diff s1 s0).Pacor_route.Search_stats.pops in
        let sol = trim_stages sol in
        sess.problem <- sol.Pacor.Solution.problem;
        sess.solution <- sol;
        sess.revision <- sess.revision + 1;
        if incremental then t.incremental_served <- t.incremental_served + 1;
        let fields =
          ("op", Json.String (Protocol.delta_label delta))
          :: ("revision", Json.Int sess.revision)
          :: ("incremental", Json.Bool incremental)
          :: ("dirty", Json.List (List.map (fun i -> Json.Int i) dirty))
          :: ("expansions", Json.Int expansions)
          :: Protocol.solution_fields sol
        in
        Ok (Json.to_string (Json.Obj fields), false)
      end
    in
    (* The certificate-or-fallback policy: serve the incremental result
       iff it validates, quarantined nothing (unless the delta is itself a
       fault, where quarantine is the contract) and ran within budget;
       otherwise route the mutated problem from scratch and serve whichever
       answer is lexicographically better on (routed valves, length). *)
    let fallback ~problem ~dirty incremental_sol =
      let config = config_for t req.Protocol.limits in
      match Pacor.Engine.run ~config ~workspace problem with
      | Error e -> (
        match incremental_sol with
        | Some sol -> finish ~incremental:true ~dirty sol
        | None -> Error (Protocol.Engine, e.Pacor.Engine.stage ^ ": " ^ e.message))
      | Ok full -> (
        match incremental_sol with
        | Some sol when better sol full -> finish ~incremental:true ~dirty sol
        | Some _ | None -> finish ~incremental:false ~dirty full)
    in
    match plan_delta sess delta with
    | Error _ as e -> e
    | Ok (Rebase sol) -> finish ~incremental:true ~dirty:[] sol
    | Ok (Reroute { problem; is_dirty; revise }) -> (
      let dirty_ids =
        List.sort Int.compare
          (List.filter_map
             (fun (c : Pacor.Solution.routed_cluster) ->
                if is_dirty c then Some c.routed.Pacor.Routed.cluster.Cluster.id else None)
             sess.solution.Pacor.Solution.clusters)
      in
      if dirty_ids = [] then
        finish ~incremental:true ~dirty:[]
          { sess.solution with Pacor.Solution.problem }
      else
        match
          Pacor_fault.Repair.reroute ~workspace ?limits:req.Protocol.limits
            ~stage:(Protocol.delta_label delta) ~problem ~is_dirty ~revise sess.solution
        with
        | Ok r
          when valid r.Pacor_fault.Repair.solution
               && r.Pacor_fault.Repair.quarantined = []
               && r.Pacor_fault.Repair.solution.Pacor.Solution.budget_exhausted = None ->
          finish ~incremental:true ~dirty:r.Pacor_fault.Repair.dirty
            r.Pacor_fault.Repair.solution
        | Ok r ->
          fallback ~problem ~dirty:r.Pacor_fault.Repair.dirty
            (if valid r.Pacor_fault.Repair.solution then
               Some r.Pacor_fault.Repair.solution
             else None)
        | Error _ -> fallback ~problem ~dirty:dirty_ids None)
    | Ok (Repair { faults; fproblem }) -> (
      match
        Pacor_fault.Repair.run ~workspace ?limits:req.Protocol.limits ~faults
          sess.solution
      with
      | Ok r
        when valid r.Pacor_fault.Repair.solution
             && r.Pacor_fault.Repair.solution.Pacor.Solution.budget_exhausted = None ->
        (* Quarantine is a legitimate fault outcome, not a certificate
           failure: a pinless valve stays pinless under a full re-route of
           the faulted instance too. *)
        finish ~incremental:true ~dirty:r.Pacor_fault.Repair.dirty
          r.Pacor_fault.Repair.solution
      | Ok r ->
        fallback ~problem:fproblem ~dirty:r.Pacor_fault.Repair.dirty
          (if valid r.Pacor_fault.Repair.solution then
             Some r.Pacor_fault.Repair.solution
           else None)
      | Error _ ->
        fallback ~problem:fproblem
          ~dirty:(Pacor_fault.Repair.dirty_set ~faults sess.solution)
          None))

(* ---------- the other ops ---------- *)

let do_get t ~session:name =
  match Hashtbl.find_opt t.sessions name with
  | None -> Error (Protocol.Validation, "unknown session " ^ name)
  | Some sess ->
    let fields =
      ("session", Json.String name)
      :: ("revision", Json.Int sess.revision)
      :: Protocol.solution_fields sess.solution
    in
    Ok (Json.to_string (Json.Obj fields), false)

let do_close t ~session:name =
  if Hashtbl.mem t.sessions name then begin
    Hashtbl.remove t.sessions name;
    Ok (Json.to_string (Json.Obj [ ("closed", Json.String name) ]), false)
  end
  else Error (Protocol.Validation, "unknown session " ^ name)

let stats_result t =
  Json.Obj
    [
      ("sessions", Json.Int (Hashtbl.length t.sessions));
      ("served", Json.Int t.served);
      ("delta_requests", Json.Int t.delta_requests);
      ("incremental_served", Json.Int t.incremental_served);
      ("errors", Json.Int t.error_count);
      ( "cache",
        Json.Obj
          [
            ("size", Json.Int (Lru.length t.cache));
            ("capacity", Json.Int (Lru.capacity t.cache));
            ("hits", Json.Int (Lru.hits t.cache));
            ("misses", Json.Int (Lru.misses t.cache));
            ("evictions", Json.Int (Lru.evictions t.cache));
          ] );
      ("poisoned", Json.Int (Hashtbl.length t.poisoned));
      ("uptime_s", Json.Float (Pacor_route.Clock.now_mono () -. t.started_at));
      ("monotonic_clock", Json.Bool Pacor_route.Clock.monotonic_available);
    ]

(* ---------- dispatch ---------- *)

type outcome = {
  line : string;  (** the response, newline not included *)
  stop : bool;    (** a shutdown was requested *)
}

let dispatch t ~workspace (req : Protocol.request) =
  match req.Protocol.op with
  | Protocol.Ping ->
    Ok
      ( Json.to_string
          (Json.Obj
             [
               ("pong", Json.Bool true);
               ("monotonic_clock", Json.Bool Pacor_route.Clock.monotonic_available);
             ]),
        false )
  | Protocol.Route { problem_text; file; session } ->
    do_route t ~workspace ~req ~problem_text ~file ~session
  | Protocol.Delta { session; delta } -> do_delta t ~workspace ~req ~session ~delta
  | Protocol.Get { session } -> do_get t ~session
  | Protocol.Close { session } -> do_close t ~session
  | Protocol.Stats -> Ok (Json.to_string (stats_result t), false)
  | Protocol.Shutdown -> Ok (Json.to_string (Json.Obj [ ("stopping", Json.Bool true) ]), false)

let handle ?workspace t line =
  t.served <- t.served + 1;
  match Protocol.parse_request line with
  | Error (id, cls, message) ->
    t.error_count <- t.error_count + 1;
    { line = Protocol.render_error ~id ~cls ~message; stop = false }
  | Ok req ->
    let ws, leased =
      match workspace with Some w -> (w, false) | None -> (take_workspace t, true)
    in
    Fun.protect
      ~finally:(fun () -> if leased then return_workspace t ws)
      (fun () ->
        let res =
          try dispatch t ~workspace:ws req with
          | Stack_overflow -> Error (Protocol.Internal, "stack overflow")
          | exn -> Error (Protocol.Internal, Printexc.to_string exn)
        in
        match res with
        | Ok (result, cached) ->
          {
            line = Protocol.render_ok ~id:req.Protocol.id ~cached ~result;
            stop = req.Protocol.op = Protocol.Shutdown;
          }
        | Error (cls, message) ->
          t.error_count <- t.error_count + 1;
          { line = Protocol.render_error ~id:req.Protocol.id ~cls ~message; stop = false })

(* ---------- the I/O loop ---------- *)

type conn = {
  fd : Unix.file_descr;       (* request side *)
  out_fd : Unix.file_descr;   (* response side (stdout for the stdio conn) *)
  pending : Buffer.t;         (* bytes read but not yet forming a full line *)
  ws : Pacor_route.Workspace.t;
  mutable closed : bool;      (* close_conn ran; drop any still-buffered lines *)
}

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* Split complete lines off the connection's pending buffer. *)
let drain_lines conn =
  let s = Buffer.contents conn.pending in
  let lines = ref [] in
  let start = ref 0 in
  String.iteri
    (fun i c ->
       if c = '\n' then begin
         lines := String.sub s !start (i - !start) :: !lines;
         start := i + 1
       end)
    s;
  Buffer.clear conn.pending;
  if !start < String.length s then
    Buffer.add_substring conn.pending s !start (String.length s - !start);
  List.rev !lines

let serve_loop ?(stdio = true) ?port t =
  (if Sys.os_type = "Unix" then
     try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd =
    match port with
    | None -> None
    | Some p ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, p));
      Unix.listen fd 16;
      (match Unix.getsockname fd with
       | Unix.ADDR_INET (_, actual) ->
         Printf.eprintf "pacor-serve: listening on 127.0.0.1:%d\n%!" actual
       | _ -> ());
      Some fd
  in
  let conns = ref [] in
  if stdio then
    conns :=
      [ { fd = Unix.stdin; out_fd = Unix.stdout; pending = Buffer.create 256;
          ws = take_workspace t; closed = false } ];
  let stop = ref false in
  let close_conn c =
    if not c.closed then begin
      c.closed <- true;
      return_workspace t c.ws;
      if c.fd != Unix.stdin then (try Unix.close c.fd with Unix.Unix_error _ -> ());
      conns := List.filter (fun c' -> c' != c) !conns
    end
  in
  let chunk = Bytes.create 65536 in
  while (not !stop) && (!conns <> [] || listen_fd <> None) do
    let watch =
      (match listen_fd with Some fd -> [ fd ] | None -> [])
      @ List.map (fun c -> c.fd) !conns
    in
    match Unix.select watch [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
      (match listen_fd with
       | Some lfd when List.mem lfd ready ->
         (match Unix.accept lfd with
          | fd, _ ->
            conns :=
              { fd; out_fd = fd; pending = Buffer.create 256;
                ws = take_workspace t; closed = false }
              :: !conns
          | exception Unix.Unix_error _ -> ())
       | _ -> ());
      List.iter
        (fun c ->
           if (not !stop) && (not c.closed) && List.memq c.fd ready then
             match Unix.read c.fd chunk 0 (Bytes.length chunk) with
             | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
             | exception Unix.Unix_error _ -> close_conn c
             | 0 -> close_conn c
             | n ->
               Buffer.add_subbytes c.pending chunk 0 n;
               List.iter
                 (fun line ->
                    if (not !stop) && (not c.closed) && String.trim line <> "" then begin
                      let out = handle ~workspace:c.ws t line in
                      (try write_all c.out_fd (out.line ^ "\n") with
                       | Unix.Unix_error _ -> close_conn c);
                      if out.stop then stop := true
                    end)
                 (drain_lines c))
        !conns
  done;
  List.iter (fun c -> try close_conn c with _ -> ()) !conns;
  (match listen_fd with
   | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
   | None -> ())
