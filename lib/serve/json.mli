(** Line-protocol JSON: a hand-rolled value type, emitter and total parser.

    The container ships no JSON library, and the daemon's needs are small —
    one value per protocol line — so this stays deliberately minimal:
    strict enough to reject malformed requests with a useful byte offset,
    lenient where strictness buys nothing (lone surrogates pass through,
    out-of-range integers degrade to floats). Object field order is
    preserved on both sides: the responder relies on emitting ["result"]
    last so shell pipelines can split a response with one [sed]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** field order preserved *)

val to_string : t -> string
(** Single line (no pretty-printing, no trailing newline). Non-finite
    floats emit as [null]. *)

val to_buffer : Buffer.t -> t -> unit

val of_string : string -> (t, string) result
(** Total: any malformed input comes back as [Error] with a byte offset,
    never an exception. Exactly one value is expected; trailing non-space
    input is an error. *)

(** {2 Accessors} — shape probes, all total. *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on missing field or non-object. *)

val string_opt : t -> string option
val int_opt : t -> int option

val float_opt : t -> float option
(** Accepts [Int] too (a request writing [{"timeout_s":2}] means 2.0). *)

val bool_opt : t -> bool option
val list_opt : t -> t list option
