type outcome = {
  restarts : int;
  killed : int;
  crashes : int;
  clean_exit : bool;
  gave_up : bool;
}

(* splitmix64: deterministic jitter without perturbing any global RNG. *)
let mix state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let unit_float state =
  Int64.to_float (Int64.shift_right_logical (mix state) 11) /. 9007199254740992.0

let write_pidfile path pid =
  try
    let oc = open_out path in
    Printf.fprintf oc "%d\n" pid;
    close_out oc
  with Sys_error e -> Printf.eprintf "pacor-supervise: pidfile: %s\n%!" e

let run ?(max_restarts = 100) ?(backoff_base_s = 0.05) ?(backoff_max_s = 5.0)
    ?(healthy_after_s = 30.0) ?(seed = 1) ?pidfile
    ?(report = fun s -> Printf.eprintf "pacor-supervise: %s\n%!" s) body =
  let rng = ref (Int64.of_int seed) in
  let restarts = ref 0 and killed = ref 0 and crashes = ref 0 in
  let clean = ref false and gave_up = ref false in
  let backoff = ref backoff_base_s in
  let running = ref true in
  while !running do
    (* Flush buffered channels so the fork doesn't duplicate pending bytes
       into the worker's copies. *)
    flush stdout;
    flush stderr;
    let born = Pacor_route.Clock.now_mono () in
    match Unix.fork () with
    | 0 ->
      (* Worker. Never return into the supervisor loop. *)
      let code = try body () with exn ->
        Printf.eprintf "pacor-serve: worker died: %s\n%!" (Printexc.to_string exn);
        3
      in
      Stdlib.exit code
    | pid -> (
      (match pidfile with Some p -> write_pidfile p pid | None -> ());
      let rec wait () =
        match Unix.waitpid [] pid with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
        | _, status -> status
      in
      let status = wait () in
      let lifetime = Pacor_route.Clock.now_mono () -. born in
      match status with
      | Unix.WEXITED 0 ->
        report (Printf.sprintf "worker %d exited cleanly" pid);
        clean := true;
        running := false
      | abnormal ->
        (* waitpid reports OCaml's internal signal numbers; name the usual
           suspects instead of printing a negative integer. *)
        let signal_name s =
          if s = Sys.sigkill then "SIGKILL"
          else if s = Sys.sigterm then "SIGTERM"
          else if s = Sys.sigsegv then "SIGSEGV"
          else if s = Sys.sigint then "SIGINT"
          else if s = Sys.sigabrt then "SIGABRT"
          else if s = Sys.sigbus then "SIGBUS"
          else Printf.sprintf "signal %d" s
        in
        let describe = function
          | Unix.WEXITED n -> Printf.sprintf "exit %d" n
          | Unix.WSIGNALED s -> signal_name s
          | Unix.WSTOPPED s -> Printf.sprintf "stopped (%s)" (signal_name s)
        in
        (match abnormal with
         | Unix.WSIGNALED _ -> incr killed
         | _ -> incr crashes);
        if !restarts >= max_restarts then begin
          report
            (Printf.sprintf "worker %d died (%s); restart budget exhausted (%d)"
               pid (describe abnormal) max_restarts);
          gave_up := true;
          running := false
        end
        else begin
          if lifetime > healthy_after_s then backoff := backoff_base_s;
          let jitter = 0.5 +. unit_float rng in  (* 0.5x .. 1.5x *)
          let sleep = Float.min backoff_max_s (!backoff *. jitter) in
          report
            (Printf.sprintf "worker %d died (%s) after %.3fs; restart #%d in %.3fs"
               pid (describe abnormal) lifetime (!restarts + 1) sleep);
          incr restarts;
          backoff := Float.min backoff_max_s (!backoff *. 2.0);
          (try ignore (Unix.select [] [] [] sleep) with Unix.Unix_error _ -> ())
        end)
  done;
  (match pidfile with
   | Some p -> ( try Sys.remove p with Sys_error _ -> ())
   | None -> ());
  { restarts = !restarts; killed = !killed; crashes = !crashes;
    clean_exit = !clean; gave_up = !gave_up }
