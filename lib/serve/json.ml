type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---------- emission ---------- *)

let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | '\b' -> Buffer.add_string buf "\\b"
       | '\012' -> Buffer.add_string buf "\\f"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    (* JSON has no NaN / infinity; [null] is the least-lying encoding. *)
    if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
      Buffer.add_string buf "null"
    else Buffer.add_string buf (float_to_string f)
  | String s -> escape_to buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
         if i > 0 then Buffer.add_char buf ',';
         to_buffer buf v)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
         if i > 0 then Buffer.add_char buf ',';
         escape_to buf k;
         Buffer.add_char buf ':';
         to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* ---------- parsing ---------- *)

exception Fail of string

type cursor = { s : string; mutable i : int }

let fail cur fmt =
  Printf.ksprintf (fun m -> raise (Fail (Printf.sprintf "at byte %d: %s" cur.i m))) fmt

let peek cur = if cur.i < String.length cur.s then Some cur.s.[cur.i] else None

let advance cur = cur.i <- cur.i + 1

let skip_ws cur =
  while
    cur.i < String.length cur.s
    && (match cur.s.[cur.i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    advance cur
  done

let expect cur c =
  match peek cur with
  | Some d when d = c -> advance cur
  | Some d -> fail cur "expected %C, got %C" c d
  | None -> fail cur "expected %C, got end of input" c

let literal cur word value =
  let n = String.length word in
  if cur.i + n <= String.length cur.s && String.sub cur.s cur.i n = word then begin
    cur.i <- cur.i + n;
    value
  end
  else fail cur "expected %s" word

let hex4 cur =
  if cur.i + 4 > String.length cur.s then fail cur "truncated \\u escape";
  let v = ref 0 in
  for k = cur.i to cur.i + 3 do
    let d =
      match cur.s.[k] with
      | '0' .. '9' as c -> Char.code c - Char.code '0'
      | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
      | c -> fail cur "bad hex digit %C in \\u escape" c
    in
    v := (!v * 16) + d
  done;
  cur.i <- cur.i + 4;
  !v

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' ->
      advance cur;
      (match peek cur with
       | None -> fail cur "unterminated escape"
       | Some c ->
         advance cur;
         (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
            let cp = hex4 cur in
            (* Surrogate pair: a high surrogate must be followed by
               [\uDC00-\uDFFF]; anything else is kept as-is (lenient). *)
            if cp >= 0xD800 && cp <= 0xDBFF
               && cur.i + 6 <= String.length cur.s
               && cur.s.[cur.i] = '\\'
               && cur.s.[cur.i + 1] = 'u'
            then begin
              let save = cur.i in
              cur.i <- cur.i + 2;
              let lo = hex4 cur in
              if lo >= 0xDC00 && lo <= 0xDFFF then
                add_utf8 buf (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
              else begin
                cur.i <- save;
                add_utf8 buf cp
              end
            end
            else add_utf8 buf cp
          | c -> fail cur "bad escape \\%C" c);
         go ())
    | Some c ->
      advance cur;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.i in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek cur with Some c -> is_num_char c | None -> false) do
    advance cur
  done;
  let text = String.sub cur.s start (cur.i - start) in
  let is_float = String.exists (function '.' | 'e' | 'E' -> true | _ -> false) text in
  if is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail cur "malformed number %S" text
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None ->
      (* Out of int range: degrade to float rather than error. *)
      (match float_of_string_opt text with
       | Some f -> Float f
       | None -> fail cur "malformed number %S" text)

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some '{' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some '}' then begin
      advance cur;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws cur;
        let k = parse_string cur in
        skip_ws cur;
        expect cur ':';
        let v = parse_value cur in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          fields ((k, v) :: acc)
        | Some '}' ->
          advance cur;
          List.rev ((k, v) :: acc)
        | _ -> fail cur "expected ',' or '}' in object"
      in
      Obj (fields [])
    end
  | Some '[' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some ']' then begin
      advance cur;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value cur in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          items (v :: acc)
        | Some ']' ->
          advance cur;
          List.rev (v :: acc)
        | _ -> fail cur "expected ',' or ']' in array"
      in
      List (items [])
    end
  | Some '"' -> String (parse_string cur)
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some 'n' -> literal cur "null" Null
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some c -> fail cur "unexpected character %C" c

let of_string s =
  let cur = { s; i = 0 } in
  try
    let v = parse_value cur in
    skip_ws cur;
    match peek cur with
    | None -> Ok v
    | Some c -> Error (Printf.sprintf "at byte %d: trailing %C after value" cur.i c)
  with
  | Fail m -> Error m
  | exn -> Error ("json: " ^ Printexc.to_string exn)

(* ---------- accessors ---------- *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let string_opt = function String s -> Some s | _ -> None
let int_opt = function Int i -> Some i | _ -> None

let float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let bool_opt = function Bool b -> Some b | _ -> None
let list_opt = function List l -> Some l | _ -> None
