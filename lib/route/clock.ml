external clock_now_mono : unit -> float = "pacor_clock_now_mono"

(* Probed once at module init: the stub answers -1.0 when CLOCK_MONOTONIC
   is unavailable, and a real monotonic reading is never negative. *)
let monotonic_available = clock_now_mono () >= 0.0

let now_mono = if monotonic_available then clock_now_mono else Unix.gettimeofday
