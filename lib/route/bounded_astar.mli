(** Minimum-length {e bounded} routing (Sec. 6): the modified A* that
    computes a path whose length is {b at least} a target bound, and as
    short as possible beyond it.

    Differences from classic A*, following the paper: the G value of a cell
    records the path length from the source and a cell may hold several
    visits with different G values, and the F value adds a penalty whenever
    the estimated total length falls short of the bound, steering the
    search toward longer prefixes. (The paper only keeps {e increasing} G
    values per cell; that is incomplete — an early long visit can shadow
    the exact-length one — so we keep any distinct G, and check prefix
    simplicity at insertion so every returned path is simple.)

    This is a heuristic (exact minimum-length-bounded simple paths are
    NP-hard); {!Detour.lengthen} is the guaranteed-progress companion used
    by the production detour stage. *)

open Pacor_geom
open Pacor_grid

val search :
  ?workspace:Workspace.t ->
  grid:Routing_grid.t ->
  usable:(int -> bool) ->
  ?max_visits_per_cell:int ->
  ?pop_budget:int ->
  source:Point.t ->
  target:Point.t ->
  min_length:int ->
  unit ->
  Path.t option
(** A simple path from [source] to [target] of length (edge count)
    [>= min_length], or [None]. [usable] is consulted for interior cells
    by dense row-major index, always in bounds (endpoints exempt) — wrap
    point predicates with {!Routing_grid.point_of_index} where needed.
    [max_visits_per_cell] (default 8, must be >= 1) bounds how many
    distinct G values a cell may hold; [pop_budget] (default [50 * cells])
    bounds total work. Deterministic. Pass [workspace] to reuse
    preallocated visit-entry pools across calls. *)
