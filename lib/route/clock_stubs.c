/* Monotonic wall-clock stub for Pacor_route.Clock.

   CLOCK_MONOTONIC never jumps under NTP slew/step, which matters to a
   long-lived daemon whose Budget deadlines would otherwise fire early (or
   never) across a clock adjustment. Returns seconds as a double; -1.0
   signals that the clock is unavailable so the OCaml side can fall back
   to gettimeofday. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value pacor_clock_now_mono(value unit)
{
  struct timespec ts;
  (void) unit;
#ifdef CLOCK_MONOTONIC
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return caml_copy_double((double) ts.tv_sec + 1e-9 * (double) ts.tv_nsec);
#endif
  return caml_copy_double(-1.0);
}
