(* Shared cost scale of the grid searchers. Lives in its own module so
   [Astar] and [Bidir_astar] can agree on it without a dependency cycle
   ([Astar] delegates long confined connections to [Bidir_astar]). *)

let scale = 1000
