(** Negotiation-based detailed routing (Algorithm 1 of the paper).

    Routes a batch of two-pin tree edges on a shared grid so that their
    paths are vertex-disjoint except where edges of the same tree meet at a
    common endpoint (Steiner branch points — an edge may always reach its
    own two endpoints, even when a sibling edge already claimed them).
    Edges are routed sequentially with A*; after a failed round the history
    cost of every contended cell rises — [Ch_{r+1}(g) = b_g + alpha * Ch_r(g)],
    Eq. (5) — conflicting paths are ripped up, and routing retries, at most
    [gamma] times.

    Two engines share the machinery, selected by {!config.mode}:

    {ul
    {- {!Full_reroute} is the paper's Algorithm 1: every round rips every
       path, bumps history along every routed path, and reroutes the whole
       batch (failed edges fronted — see below).}
    {- {!Incremental} (default) is conflict-driven: after a failed round,
       edges that neither failed nor had their path ripped keep their paths
       {e and} their cell claims; only dirty edges — this round's failures
       plus the owners of cells on those failures' claim-free "ideal" paths
       — re-enter the next round. History is bumped only on the conflict
       cells. Unless the result is provably unbeatable (round-1 success,
       which is byte-identical to the baseline; or every routed path
       already at its unconstrained-shortest length), it also runs the
       full-reroute baseline and returns the better of the two
       ((routed count, total length) lexicographic) — so it is never worse
       than the paper's loop.}}

    Routed paths occupy cells through the workspace's claim layer
    ({!Workspace.claim}) rather than a per-round {!Obstacle_map.copy}:
    claiming/releasing a path is O(path length) and starting a fresh claim
    epoch is O(1).

    One deviation from the paper's pseudocode, noted here because it is
    load-bearing: on a retry, the previously failed edges are routed
    {e first}. The paper reroutes in fixed order and relies on history costs
    alone to break livelocks; fronting failed edges converges noticeably
    faster and never hurts. *)

open Pacor_geom
open Pacor_grid

type edge = {
  edge_id : int;             (** caller's identifier, echoed back *)
  ends : Point.t * Point.t;
}

type mode =
  | Incremental              (** conflict-driven rip-up, baseline fallback *)
  | Full_reroute             (** the paper's rip-everything loop *)

type config = {
  base_history : float;      (** [b_g], paper default 1.0 *)
  alpha : float;             (** history gain, paper default 0.1 *)
  gamma : int;               (** max iterations, paper default 10 *)
  mode : mode;               (** rerouting strategy, default {!Incremental} *)
}

val default_config : config

type outcome = {
  paths : (int * Path.t) list;  (** edge_id, routed path — all edges on success *)
  success : bool;               (** every edge routed vertex-disjointly *)
  iterations : int;             (** negotiation rounds used *)
}

val route :
  ?sched:Pacor_sched.Sched.t ->
  ?workspace:Workspace.t ->
  ?config:config ->
  grid:Routing_grid.t ->
  obstacles:Obstacle_map.t ->
  edge list ->
  outcome
(** [route ~grid ~obstacles edges] routes all edges. [obstacles] are static
    blockages (not mutated; include every cell the batch must avoid, e.g.
    other clusters' valves). On [success = false], [paths] holds the best
    subset found across rounds — most edges routed, total wirelength as the
    tie-break. Pass [workspace] to reuse one search state across the
    O(gamma x edges) inner A* calls.

    Each round charges one iteration against the workspace's
    {!Budget.t} ({!Budget.note_iteration}); an exhausted budget ends
    negotiation early with the best subset so far, exactly as if [gamma]
    had been reached, and the per-edge A* calls inside a round fail fast
    through the budget-checked {!Workspace.pop_cell}.

    With [sched], the conflict-analysis ideal probes of incremental mode
    and the certificate's per-edge plain probes run speculatively in
    parallel on leased scratch workspaces and are merged in input order
    (adopt when provably unaffected by the window's history bumps,
    re-run on [workspace] otherwise), which leaves paths, outcome and
    search stats bit-identical to the sequential flow. Sharding is
    self-gated off under corridor confinement; callers arming a search
    budget must not pass [sched] (the engine strips it automatically —
    budget trips depend on operation interleaving). *)
