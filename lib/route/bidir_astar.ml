(* Bidirectional A* for long single-source single-target connections.

   Two frontiers share one workspace epoch and one priority queue: an
   element is [(cell lsl 1) lor dir] with dir 0 = forward (from the
   source, per-cell state in dist/parent/closed) and dir 1 = backward
   (from the target, state in dist_b/parent_b/closed_b). Costs mirror the
   unidirectional searcher exactly: entering cell [j] costs
   [cost_scale + extra_cost j], so the forward g includes the entered
   cell's extra while the backward g of a cell excludes its own extra —
   at a meeting cell [m], [g_f m + g_b m] is precisely the unidirectional
   cost of the concatenated path.

   [mu] tracks the best meeting-cost seen; with consistent Manhattan
   heuristics on both sides, popping any element whose key is >= mu
   proves no cheaper meeting exists (the popped key lower-bounds the cost
   of any path through the popped frontier), so the search stops there.

   Only engaged under an active corridor (the engine's hierarchical
   mode): flat runs never take this path, keeping them byte-identical to
   the pre-hierarchy searcher. *)

open Pacor_geom
open Pacor_grid

let cost_scale = Astar_cost.scale

(* Below this source-target Manhattan distance the unidirectional searcher
   wins on constant factors; above it the two half-radius frontiers beat
   one full-radius frontier. *)
let min_manhattan = 96

let search ~ws ~grid ~usable ~extra_cost ~source ~target =
  let n = Routing_grid.cells grid in
  let width = Routing_grid.width grid in
  let si = Routing_grid.index grid source and ti = Routing_grid.index grid target in
  if si = ti then Some (Path.of_points [ source ])
  else begin
    Workspace.begin_search ws ~cells:n;
    Workspace.corridor_note_bidir ws;
    let tx = target.Point.x and ty = target.Point.y in
    let sx = source.Point.x and sy = source.Point.y in
    let h_f i =
      let x = i mod width and y = i / width in
      (abs (x - tx) + abs (y - ty)) * cost_scale
    in
    let h_b i =
      let x = i mod width and y = i / width in
      (abs (x - sx) + abs (y - sy)) * cost_scale
    in
    let stats = Workspace.stats ws in
    let confined = Workspace.corridor_active ws in
    let mu = ref max_int and meet = ref (-1) in
    Workspace.set_dist ws si 0;
    Workspace.set_dist_b ws ti 0;
    Workspace.push ws ~prio:(h_f si) (si lsl 1);
    Workspace.push ws ~prio:(h_b ti) ((ti lsl 1) lor 1);
    let cur = ref 0 and cur_dist = ref 0 and cur_step = ref 0 in
    let relax_f j =
      Search_stats.touched stats;
      if (usable j || j = ti || j = si) && not (Workspace.closed ws j) then begin
        if confined && j <> ti && j <> si && not (Workspace.corridor_allows ws j) then
          Workspace.corridor_note_clip ws
        else begin
          Search_stats.relaxed stats;
          let nd = !cur_dist + cost_scale + extra_cost j in
          if nd < Workspace.dist ws j then begin
            Workspace.set_dist ws j nd;
            Workspace.set_parent ws j !cur;
            Workspace.push ws ~prio:(nd + h_f j) (j lsl 1);
            let db = Workspace.dist_b ws j in
            if db <> max_int && nd + db < !mu then begin
              mu := nd + db;
              meet := j
            end
          end
        end
      end
    in
    let relax_b j =
      Search_stats.touched stats;
      if (usable j || j = ti || j = si) && not (Workspace.closed_b ws j) then begin
        if confined && j <> ti && j <> si && not (Workspace.corridor_allows ws j) then
          Workspace.corridor_note_clip ws
        else begin
          Search_stats.relaxed stats;
          (* The backward step j -> cur pays for entering cur, so the step
             cost is shared by every neighbour and hoisted into cur_step. *)
          let nd = !cur_dist + !cur_step in
          if nd < Workspace.dist_b ws j then begin
            Workspace.set_dist_b ws j nd;
            Workspace.set_parent_b ws j !cur;
            Workspace.push ws ~prio:(nd + h_b j) ((j lsl 1) lor 1);
            let df = Workspace.dist ws j in
            if df <> max_int && df + nd < !mu then begin
              mu := df + nd;
              meet := j
            end
          end
        end
      end
    in
    let finish () =
      let m = !meet in
      let rec fwd i acc =
        let p = Routing_grid.point_of_index grid i in
        let j = Workspace.parent ws i in
        if j = -1 then p :: acc else fwd j (p :: acc)
      in
      let rec bwd i acc =
        let j = Workspace.parent_b ws i in
        if j = -1 then List.rev acc
        else bwd j (Routing_grid.point_of_index grid j :: acc)
      in
      Some (Path.of_points (fwd m [] @ bwd m []))
    in
    let rec loop () =
      match Workspace.pop ws with
      | None -> if !meet >= 0 then finish () else None
      | Some (prio, e) ->
        if !mu <> max_int && prio >= !mu then finish ()
        else begin
          let i = e lsr 1 in
          if e land 1 = 0 then begin
            if Workspace.closed ws i then loop ()
            else begin
              Workspace.close ws i;
              cur := i;
              cur_dist := Workspace.dist ws i;
              Routing_grid.iter_neighbours4 grid i relax_f;
              loop ()
            end
          end
          else begin
            if Workspace.closed_b ws i then loop ()
            else begin
              Workspace.close_b ws i;
              cur := i;
              cur_dist := Workspace.dist_b ws i;
              cur_step := cost_scale + extra_cost i;
              Routing_grid.iter_neighbours4 grid i relax_b;
              loop ()
            end
          end
        end
    in
    loop ()
  end
