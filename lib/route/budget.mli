(** Cooperative search budgets: wall-clock deadline, node-expansion cap,
    and negotiation-iteration cap, checked inside the routers' existing
    inner loops.

    The negotiated-routing and rip-up loops have no a-priori bound, so a
    pathological instance can pin a worker indefinitely. A budget turns
    that into a bounded, diagnosable outcome: every queue pop in {!Astar}
    and {!Bounded_astar} calls {!tick} (via {!Workspace.pop}), every
    negotiation round calls {!note_iteration}, and the engine's stage
    loops call {!alive} at their heads. When any limit trips, searches
    start failing fast and the engine's ordinary fallback chain (demotion,
    declustering, skipped refinement) degrades the solution instead of
    hanging.

    Cost model: {!tick} is an integer decrement; the wall clock is read
    once every ~512 ticks, so deadline overshoot is bounded by ~512 pops
    plus one escape-flow round. No allocation anywhere on the hot path.

    Determinism: expansion and iteration caps are deterministic functions
    of (config, problem) — two runs trip at the same pop. Wall-clock
    deadlines are not; use caps when byte-identical reproducibility
    matters. *)

type reason = Deadline | Expansions | Iterations

val reason_label : reason -> string
(** ["deadline"] / ["expansions"] / ["iterations"]. *)

val pp_reason : Format.formatter -> reason -> unit

type limits = {
  timeout_s : float option;       (** wall-clock seconds per engine run *)
  max_expansions : int option;    (** total queue pops per engine run *)
  max_iterations : int option;    (** total negotiation rounds per run *)
}

val no_limits : limits

val limits :
  ?timeout_s:float -> ?max_expansions:int -> ?max_iterations:int -> unit -> limits
(** Smart constructor; raises [Invalid_argument] on non-positive values. *)

val is_no_limits : limits -> bool

val relax : ?factor:float -> limits -> limits
(** Scales every present limit by [factor] (default 2.0) — the batch
    runner's retry policy. [no_limits] relaxes to itself. *)

val pp_limits : Format.formatter -> limits -> unit

type t
(** Mutable budget state. One per engine run; single-threaded, like the
    workspace that carries it. *)

val unlimited : unit -> t
(** A budget that never trips; all checks short-circuit to [true]. *)

val create : limits -> t
(** Unarmed budget: allowances are loaded but the deadline countdown only
    starts at {!arm}. *)

val limits_of : t -> limits

val arm : t -> unit
(** Starts (or restarts) the run: deadline := now + timeout, allowances
    and any previous exhaustion reset. No-op on an unlimited budget. *)

val tick : t -> bool
(** The per-expansion hot check. Charges one expansion, reads the clock
    every ~512 calls. [false] once any limit is exhausted — callers treat
    it as "queue empty". *)

val alive : t -> bool
(** Coarse loop-head check: reads the clock, charges nothing. *)

val note_iteration : t -> bool
(** Charges one negotiation round and reads the clock. [false] once
    exhausted. *)

val exhausted : t -> reason option
(** The first limit that tripped, if any, since the last {!arm}. *)
