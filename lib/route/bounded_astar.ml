open Pacor_grid

(* Per-cell visit entries: G value and parent slot, drawn from the
   workspace's flat pool ([cell * max_visits + k]) — no per-visit
   allocation, and appending is O(1) (the old representation grew a fresh
   array per visit, O(k^2) per cell). Every stored entry's parent chain is
   a simple path (checked at insertion), so reconstruction never fails. G
   strictly decreases along parents, so chains terminate. Dedup on G scans
   the cell's fill count, which is capped at [max_visits_per_cell].

   Like [Astar], the inner loop works on dense cell indices: row-stride
   neighbour iteration, index-based [usable], and a Manhattan heuristic
   computed from index arithmetic. *)

let attempt ws ~grid ~usable ~max_visits_per_cell ~pop_budget ~source ~target ~min_length =
  begin
    let cells = Routing_grid.cells grid in
    let width = Routing_grid.width grid in
    let budget = if pop_budget > 0 then pop_budget else 50 * cells in
    Workspace.begin_bounded ws ~cells ~max_visits_per_cell;
    let source_i = Routing_grid.index grid source in
    let target_i = Routing_grid.index grid target in
    let tx = target_i mod width and ty = target_i / width in
    (* Priority: estimated total when feasible, otherwise mirrored around
       the bound so that longer prefixes come first (the paper's penalty
       for estimates below the bound). *)
    let prio g i =
      let est = g + abs ((i mod width) - tx) + abs ((i / width) - ty) in
      if est >= min_length then est else (2 * min_length) - est
    in
    let enterable i = usable i || i = source_i || i = target_i in
    (* Does cell index [i] already appear in the parent chain of [slot]? *)
    let rec on_chain i slot =
      i = Workspace.entry_cell ws slot
      ||
      match Workspace.entry_parent ws slot with
      | -1 -> false
      | parent -> on_chain i parent
    in
    let add_entry i g parent =
      let count = Workspace.entry_count ws i in
      let rec dup k =
        k < count && (Workspace.entry_g ws (Workspace.entry_slot ws ~cell:i k) = g || dup (k + 1))
      in
      if count >= max_visits_per_cell then -1
      else if dup 0 then -1
      else if parent >= 0 && on_chain i parent then -1
      else Workspace.append_entry ws ~cell:i ~g ~parent
    in
    let reconstruct slot =
      let rec go slot acc =
        let p = Routing_grid.point_of_index grid (Workspace.entry_cell ws slot) in
        match Workspace.entry_parent ws slot with
        | -1 -> p :: acc
        | parent -> go parent (p :: acc)
      in
      go slot []
    in
    (match add_entry source_i 0 (-1) with
     | -1 -> ()
     | slot -> Workspace.push ws ~prio:(prio 0 source_i) slot);
    let stats = Workspace.stats ws in
    let confined = Workspace.corridor_active ws in
    let cur_slot = ref (-1) and cur_g = ref 0 in
    let relax j =
      Search_stats.touched stats;
      if enterable j then begin
        if
          confined
          && j <> source_i && j <> target_i
          && not (Workspace.corridor_allows ws j)
        then Workspace.corridor_note_clip ws
        else begin
        Search_stats.relaxed stats;
        let g' = !cur_g + 1 in
        (match add_entry j g' !cur_slot with
         | -1 -> ()
         | slot' -> Workspace.push ws ~prio:(prio g' j) slot')
        end
      end
    in
    let pops = ref 0 in
    let rec loop () =
      if !pops >= budget then None
      else begin
        let slot = Workspace.pop_cell ws in
        if slot < 0 then None
        else begin
          incr pops;
          let i = Workspace.entry_cell ws slot in
          let g = Workspace.entry_g ws slot in
          if i = target_i && g >= min_length then
            Some (Path.of_points (reconstruct slot))
          else if i = target_i then
            (* A too-short prefix ending at the target cannot be extended
               into a simple path that returns to the target. *)
            loop ()
          else begin
            cur_slot := slot;
            cur_g := g;
            Routing_grid.iter_neighbours4 grid i relax;
            loop ()
          end
        end
      end
    in
    loop ()
  end

let search ?workspace ~grid ~usable ?(max_visits_per_cell = 8) ?(pop_budget = 0) ~source
    ~target ~min_length () =
  if min_length < 0 then invalid_arg "Bounded_astar.search: negative bound";
  if max_visits_per_cell < 1 then
    invalid_arg "Bounded_astar.search: max_visits_per_cell < 1";
  if not (Routing_grid.in_bounds grid source && Routing_grid.in_bounds grid target) then None
  else begin
    let ws = match workspace with Some ws -> ws | None -> Workspace.create () in
    match
      attempt ws ~grid ~usable ~max_visits_per_cell ~pop_budget ~source ~target ~min_length
    with
    | Some _ as r -> r
    | None ->
      if Workspace.corridor_active ws then begin
        (* Length-matching detours wander by design; when the corridor
           starves one, certify the failure against the whole grid so a
           confined run never misses a detour a flat run would find. *)
        Workspace.corridor_note_fallback ws;
        Workspace.corridor_suspend ws;
        Fun.protect
          ~finally:(fun () -> Workspace.corridor_resume ws)
          (fun () ->
            attempt ws ~grid ~usable ~max_visits_per_cell ~pop_budget ~source ~target
              ~min_length)
      end
      else None
  end
