(** A* search on the routing grid (Sec. 3, "MST-based cluster routing").

    One engine covers the paper's point-to-point, point-to-path and
    path-to-path searches: sources and targets are both point {e sets}
    (multi-source search from a routed component, multi-target search onto
    a routed path). Costs are integers in {!cost_scale} units so that the
    negotiation router can add fractional history costs exactly. *)

open Pacor_geom
open Pacor_grid

val cost_scale : int
(** One grid step costs [cost_scale] (= 1000); history costs are expressed
    in the same fixed-point unit. *)

type spec = {
  usable : Point.t -> bool;
    (** May the search enter this cell? Must already combine static
        obstacles, routed channels and any per-call exceptions. Sources and
        targets are exempted automatically. *)
  extra_cost : Point.t -> int;
    (** Additional non-negative cost (fixed-point, {!cost_scale} units) for
        entering a cell — the negotiation history cost; [Fun.const 0] for
        plain shortest paths. *)
}

val search :
  ?workspace:Workspace.t ->
  grid:Routing_grid.t ->
  spec:spec ->
  sources:Point.t list ->
  targets:Point.t list ->
  unit ->
  Path.t option
(** Cheapest path from any source to any target ([None] when disconnected).
    The result starts at a source and ends at a target; a source that is
    itself a target yields a trivial path. Deterministic.

    Pass [workspace] to reuse preallocated search state across calls (the
    whole engine shares one workspace per routed problem); without it a
    private workspace is created, preserving the original
    allocate-per-call behaviour. *)

val shortest :
  ?workspace:Workspace.t ->
  grid:Routing_grid.t ->
  obstacles:Obstacle_map.t ->
  Point.t ->
  Point.t ->
  Path.t option
(** Convenience point-to-point shortest path treating [obstacles] as the
    only blockage (endpoints exempt). *)
