(** The fixed-point cost scale shared by {!Astar} and {!Bidir_astar}:
    a unit grid step costs [scale], and congestion/history surcharges are
    expressed in the same units. *)

val scale : int
