type t = {
  mutable searches : int;
  mutable pops : int;
  mutable pushes : int;
  mutable touches : int;
  mutable relaxations : int;
  mutable resets : int;
  mutable grid_allocs : int;
}

type snapshot = {
  searches : int;
  pops : int;
  pushes : int;
  touched : int;
  relaxations : int;
  resets : int;
  grid_allocs : int;
}

let create () : t =
  { searches = 0; pops = 0; pushes = 0; touches = 0; relaxations = 0; resets = 0;
    grid_allocs = 0 }

let reset (t : t) =
  t.searches <- 0;
  t.pops <- 0;
  t.pushes <- 0;
  t.touches <- 0;
  t.relaxations <- 0;
  t.resets <- 0;
  t.grid_allocs <- 0

let started (t : t) = t.searches <- t.searches + 1
let popped (t : t) = t.pops <- t.pops + 1
let pushed (t : t) = t.pushes <- t.pushes + 1
let touched (t : t) = t.touches <- t.touches + 1
let relaxed (t : t) = t.relaxations <- t.relaxations + 1
let reset_noted (t : t) = t.resets <- t.resets + 1
let grid_alloc_noted (t : t) = t.grid_allocs <- t.grid_allocs + 1

(* Merge a leased-workspace search's activity into the main counters as
   if the search had run there. [grid_allocs] is deliberately excluded:
   allocation events depend on the lessee workspace's growth history, not
   on the search, so absorbing them would make the main stats depend on
   lease-pool scheduling. Every other field is a deterministic function
   of the search itself. *)
let absorb (t : t) (s : snapshot) =
  t.searches <- t.searches + s.searches;
  t.pops <- t.pops + s.pops;
  t.pushes <- t.pushes + s.pushes;
  t.touches <- t.touches + s.touched;
  t.relaxations <- t.relaxations + s.relaxations;
  t.resets <- t.resets + s.resets

let snapshot (t : t) : snapshot =
  {
    searches = t.searches;
    pops = t.pops;
    pushes = t.pushes;
    touched = t.touches;
    relaxations = t.relaxations;
    resets = t.resets;
    grid_allocs = t.grid_allocs;
  }

let zero =
  { searches = 0; pops = 0; pushes = 0; touched = 0; relaxations = 0; resets = 0;
    grid_allocs = 0 }

let diff (a : snapshot) (b : snapshot) : snapshot =
  {
    searches = a.searches - b.searches;
    pops = a.pops - b.pops;
    pushes = a.pushes - b.pushes;
    touched = a.touched - b.touched;
    relaxations = a.relaxations - b.relaxations;
    resets = a.resets - b.resets;
    grid_allocs = a.grid_allocs - b.grid_allocs;
  }

let add (a : snapshot) (b : snapshot) : snapshot =
  {
    searches = a.searches + b.searches;
    pops = a.pops + b.pops;
    pushes = a.pushes + b.pushes;
    touched = a.touched + b.touched;
    relaxations = a.relaxations + b.relaxations;
    resets = a.resets + b.resets;
    grid_allocs = a.grid_allocs + b.grid_allocs;
  }

let is_zero (s : snapshot) = s = zero

let pp ppf (s : snapshot) =
  Format.fprintf ppf
    "searches=%d pops=%d pushes=%d touched=%d relax=%d resets=%d allocs=%d"
    s.searches s.pops s.pushes s.touched s.relaxations s.resets s.grid_allocs
