(** Bidirectional A* for long corridor-confined connections.

    Grows a frontier from each endpoint through one shared workspace
    priority queue and stops when the cheapest remaining key can no longer
    beat the best meeting found — on a long connection each frontier covers
    roughly half the radius, so expansions drop by up to 2x versus the
    unidirectional searcher while returned path {e cost} is identical
    (tie-break order among equal-cost paths may differ, which is why the
    engine only engages this under an active corridor, where the
    never-worse certificate or race already arbitrates).

    Cost model matches {!Astar}: entering cell [j] costs
    [Astar_cost.scale + extra_cost j]; source and target are always
    enterable and exempt from the corridor mask. *)

open Pacor_geom
open Pacor_grid

val min_manhattan : int
(** Engagement threshold: below this source-target Manhattan distance the
    unidirectional searcher wins on constant factors. *)

val search :
  ws:Workspace.t ->
  grid:Routing_grid.t ->
  usable:(int -> bool) ->
  extra_cost:(int -> int) ->
  source:Point.t ->
  target:Point.t ->
  Path.t option
(** Shortest path under the cost model above, confined to the workspace
    corridor when one is active (noting a bidir engagement and any clips
    in the corridor counters). [None] when no path exists or the budget
    runs dry with no meeting found; endpoints must be in bounds. *)
