(** Reusable search state for the grid routers.

    {!Astar.search} used to allocate three grid-sized arrays and two
    [Point.Set]s per call; {!Negotiation.route} calls it once per edge per
    iteration, so a full PACOR run performed O(gamma x edges x cells)
    allocation before any real work. A workspace preallocates that state
    once per routed problem and hands it to every search.

    Reset is O(1) by generation stamping: {!begin_search} bumps an integer
    epoch instead of refilling arrays, and a cell's entry is live only when
    its stamp equals the current epoch — stale entries read as their
    defaults ([max_int] distance, [-1] parent, not closed, not a member).
    The priority queue is cleared and reused, and the bounded-length
    searcher's per-cell visit entries draw from a flat pool indexed by
    [cell * max_visits + k], so no per-visit allocation happens either.

    A workspace is single-threaded and non-reentrant: one search at a time.
    Every operation below is O(1). *)

type t

val create : ?stats:Search_stats.t -> unit -> t
(** Empty workspace; arrays grow on first use and then stick. Pass [stats]
    to share one counter set across several workspaces (rarely needed —
    {!stats} exposes the implicit one). *)

val stats : t -> Search_stats.t
(** The counter set every search on this workspace accumulates into. *)

val budget : t -> Budget.t
(** The budget every search on this workspace is charged against.
    Defaults to {!Budget.unlimited}. *)

val set_budget : t -> Budget.t -> unit
(** Attach a budget for subsequent searches. The engine installs one per
    run and restores the previous budget on exit; once the budget is
    exhausted, {!pop} reports an empty queue so every in-flight and
    future search fails fast along its ordinary no-route path. *)

val begin_search : t -> cells:int -> unit
(** Start a plain A* search over a [cells]-cell grid: ensures capacity,
    bumps the epoch (invalidating all per-cell state), clears the queue. *)

val begin_bounded : t -> cells:int -> max_visits_per_cell:int -> unit
(** Start a bounded-length search: like {!begin_search} but also sizes the
    visit-entry pool to [cells * max_visits_per_cell] slots. *)

(** {2 Per-cell A* state (valid between [begin_*] calls)} *)

val dist : t -> int -> int
(** [max_int] when the cell is untouched this epoch. *)

val set_dist : t -> int -> int -> unit

val parent : t -> int -> int
(** [-1] when the cell is untouched this epoch. *)

val set_parent : t -> int -> int -> unit

val closed : t -> int -> bool
val close : t -> int -> unit

val mark_target : t -> int -> unit
val is_target : t -> int -> bool
val mark_source : t -> int -> unit
val is_source : t -> int -> bool

(** {2 Shared priority queue (instrumented)} *)

val push : t -> prio:int -> int -> unit

val pop : t -> (int * int) option
(** [None] when the queue is empty {e or} the attached budget is
    exhausted — callers cannot (and need not) tell the difference. *)

val pop_cell : t -> int
(** Allocation-free {!pop}: the popped element alone ([-1] for "empty or
    budget exhausted" — element ids are always non-negative), without the
    option/tuple box. The searchers' hot path. *)

(** {2 Shared 0-1-BFS deque (instrumented)}

    A circular int buffer for deque-based searches (the escape flow
    solver's 0-1-BFS rounds). Reset by {!begin_search} like the priority
    queue; pushes and pops feed the same {!Search_stats} counters, and
    {!deque_pop_front} charges the attached {!Budget} exactly like
    {!pop_cell} — so flow augmentation and A* expansion draw from one
    budget pool. *)

val deque_push_back : t -> int -> unit
val deque_push_front : t -> int -> unit

val deque_pop_front : t -> int
(** [-1] for "empty or budget exhausted" (element ids are always
    non-negative), mirroring {!pop_cell}. *)

val deque_is_empty : t -> bool

(** {2 Claim layer (negotiation's shared cell ownership)}

    A generation-stamped replacement for the negotiation router's per-round
    [Obstacle_map.copy]: routed paths {!claim} their cells, rip-up
    {!release}s them, and {!begin_claims} starts a fresh claim generation
    in O(1). Claims live on their own epoch, so the per-search
    {!begin_search} reset leaves them untouched — one negotiation run
    performs many searches against one claim state. Counts are refcounts:
    sibling tree edges legitimately share a branch-point cell, and the
    cell stays claimed until every claimant releases it. *)

val begin_claims : t -> cells:int -> unit
(** Invalidate all claims (O(1)) and ensure capacity for [cells]. Counted
    as a reset in {!Search_stats}. *)

val claim : t -> int -> unit
(** Increment the cell's claim count (from 0 if stale). *)

val release : t -> int -> unit
(** Decrement the cell's claim count; no-op at zero or on a stale cell. *)

val claimed : t -> int -> bool
(** True iff the cell's current-generation claim count is positive. *)

val claim_count : t -> int -> int

(** {2 Bounded-search visit entries}

    Entries live in a flat pool; a slot id is [cell * max_visits + k] with
    [k < entry_count cell]. The workspace stores mechanism only — dedup and
    simple-path policy stay in {!Bounded_astar}. *)

val entry_count : t -> int -> int
(** Entries recorded for a cell this epoch. *)

val entry_slot : t -> cell:int -> int -> int
(** [entry_slot t ~cell k] is the slot id of the cell's [k]-th entry. *)

val entry_cell : t -> int -> int
(** The cell a slot belongs to. *)

val entry_g : t -> int -> int
val entry_parent : t -> int -> int
(** Parent slot id, [-1] for the search root. *)

val append_entry : t -> cell:int -> g:int -> parent:int -> int
(** Unchecked append (caller enforces [entry_count < max_visits_per_cell]);
    returns the new slot id. *)
