(** Reusable search state for the grid routers.

    {!Astar.search} used to allocate three grid-sized arrays and two
    [Point.Set]s per call; {!Negotiation.route} calls it once per edge per
    iteration, so a full PACOR run performed O(gamma x edges x cells)
    allocation before any real work. A workspace preallocates that state
    once per routed problem and hands it to every search.

    Reset is O(1) by generation stamping: {!begin_search} bumps an integer
    epoch instead of refilling arrays, and a cell's entry is live only when
    its stamp equals the current epoch — stale entries read as their
    defaults ([max_int] distance, [-1] parent, not closed, not a member).
    The priority queue is cleared and reused, and the bounded-length
    searcher's per-cell visit entries draw from a flat pool indexed by
    [cell * max_visits + k], so no per-visit allocation happens either.

    A workspace is single-threaded and non-reentrant: one search at a time.
    Every operation below is O(1). *)

type t

val create : ?stats:Search_stats.t -> unit -> t
(** Empty workspace; arrays grow on first use and then stick. Pass [stats]
    to share one counter set across several workspaces (rarely needed —
    {!stats} exposes the implicit one). *)

val stats : t -> Search_stats.t
(** The counter set every search on this workspace accumulates into. *)

val budget : t -> Budget.t
(** The budget every search on this workspace is charged against.
    Defaults to {!Budget.unlimited}. *)

val set_budget : t -> Budget.t -> unit
(** Attach a budget for subsequent searches. The engine installs one per
    run and restores the previous budget on exit; once the budget is
    exhausted, {!pop} reports an empty queue so every in-flight and
    future search fails fast along its ordinary no-route path. *)

val begin_search : t -> cells:int -> unit
(** Start a plain A* search over a [cells]-cell grid: ensures capacity,
    bumps the epoch (invalidating all per-cell state), clears the queue. *)

val begin_bounded : t -> cells:int -> max_visits_per_cell:int -> unit
(** Start a bounded-length search: like {!begin_search} but also sizes the
    visit-entry pool to [cells * max_visits_per_cell] slots. *)

(** {2 Per-cell A* state (valid between [begin_*] calls)} *)

val dist : t -> int -> int
(** [max_int] when the cell is untouched this epoch. *)

val touched : t -> int -> bool
(** Whether the cell received a distance stamp this epoch — i.e. whether
    the last search wrote any per-cell state for it. Because A* reads a
    cell's cost function only on the paths that also stamp its distance,
    the touched set over-approximates every cell whose cost the search
    depended on; speculative parallel probes use this to decide whether a
    later state change could have altered the probe's result. Safe for
    any [i] (out-of-range cells are untouched). *)

val set_dist : t -> int -> int -> unit

val parent : t -> int -> int
(** [-1] when the cell is untouched this epoch. *)

val set_parent : t -> int -> int -> unit

val closed : t -> int -> bool
val close : t -> int -> unit

val mark_target : t -> int -> unit
val is_target : t -> int -> bool
val mark_source : t -> int -> unit
val is_source : t -> int -> bool

(** {2 Shared priority queue (instrumented)} *)

val push : t -> prio:int -> int -> unit

val pop : t -> (int * int) option
(** [None] when the queue is empty {e or} the attached budget is
    exhausted — callers cannot (and need not) tell the difference. *)

val pop_cell : t -> int
(** Allocation-free {!pop}: the popped element alone ([-1] for "empty or
    budget exhausted" — element ids are always non-negative), without the
    option/tuple box. The searchers' hot path. *)

(** {2 Shared 0-1-BFS deque (instrumented)}

    A circular int buffer for deque-based searches (the escape flow
    solver's 0-1-BFS rounds). Reset by {!begin_search} like the priority
    queue; pushes and pops feed the same {!Search_stats} counters, and
    {!deque_pop_front} charges the attached {!Budget} exactly like
    {!pop_cell} — so flow augmentation and A* expansion draw from one
    budget pool. *)

val deque_push_back : t -> int -> unit
val deque_push_front : t -> int -> unit

val deque_pop_front : t -> int
(** [-1] for "empty or budget exhausted" (element ids are always
    non-negative), mirroring {!pop_cell}. *)

val deque_is_empty : t -> bool

(** {2 Claim layer (negotiation's shared cell ownership)}

    A generation-stamped replacement for the negotiation router's per-round
    [Obstacle_map.copy]: routed paths {!claim} their cells, rip-up
    {!release}s them, and {!begin_claims} starts a fresh claim generation
    in O(1). Claims live on their own epoch, so the per-search
    {!begin_search} reset leaves them untouched — one negotiation run
    performs many searches against one claim state. Counts are refcounts:
    sibling tree edges legitimately share a branch-point cell, and the
    cell stays claimed until every claimant releases it. *)

val begin_claims : t -> cells:int -> unit
(** Invalidate all claims (O(1)) and ensure capacity for [cells]. Counted
    as a reset in {!Search_stats}. *)

val claim : t -> int -> unit
(** Increment the cell's claim count (from 0 if stale). *)

val release : t -> int -> unit
(** Decrement the cell's claim count; no-op at zero or on a stale cell. *)

val claimed : t -> int -> bool
(** True iff the cell's current-generation claim count is positive. *)

val claim_count : t -> int -> int

(** {2 Bounded-search visit entries}

    Entries live in a flat pool; a slot id is [cell * max_visits + k] with
    [k < entry_count cell]. The workspace stores mechanism only — dedup and
    simple-path policy stay in {!Bounded_astar}. *)

val entry_count : t -> int -> int
(** Entries recorded for a cell this epoch. *)

val entry_slot : t -> cell:int -> int -> int
(** [entry_slot t ~cell k] is the slot id of the cell's [k]-th entry. *)

val entry_cell : t -> int -> int
(** The cell a slot belongs to. *)

val entry_g : t -> int -> int
val entry_parent : t -> int -> int
(** Parent slot id, [-1] for the search root. *)

val append_entry : t -> cell:int -> g:int -> parent:int -> int
(** Unchecked append (caller enforces [entry_count < max_visits_per_cell]);
    returns the new slot id. *)

(** {2 One-time growth} *)

val prepare : t -> cells:int -> unit
(** Grow every per-cell array (and the bounded-search entry pool at the
    default visit stride) to [cells] in one step. The engine calls this
    once per run with the instance's cell count, so 1000x1000+ grids pay a
    single allocation event on a cold workspace and none at all on a warm
    one — a pooled workspace grows monotonically across differently-sized
    problems and never shrinks. *)

(** {2 Backward-search state (bidirectional A-star)}

    A second dist/parent/closed set on the shared epoch, so
    {!Bidir_astar} runs two frontiers against one [begin_search] reset.
    Same stamping semantics as the forward accessors. *)

val dist_b : t -> int -> int
val set_dist_b : t -> int -> int -> unit
val parent_b : t -> int -> int
val set_parent_b : t -> int -> int -> unit
val closed_b : t -> int -> bool
val close_b : t -> int -> unit

(** {2 Corridor mask (hierarchical routing)}

    A generation-stamped per-tile membership mask installed by the
    engine's global stage: cell index [i] maps to tile
    [((i / width) lsr shift) * tiles_x + ((i mod width) lsr shift)], and a
    search confined by the corridor may only enter cells of stamped tiles
    (its own sources and targets are exempt, enforced by the searchers).
    Install is O(corridor tiles); clearing or re-installing is O(1)+O(tiles)
    via the epoch bump. The clip / fallback / bidir counters instrument the
    never-worse ladder: a {e clip} is an otherwise-usable cell pruned by the
    corridor, a {e fallback} a confined search (or escape solve) that was
    re-run unconfined after failing, and {e bidir} counts bidirectional
    searches taken. All three zero means the confined run executed
    byte-identical searches to an unconfined one. *)

val corridor_install :
  t -> width:int -> tiles_x:int -> tile_count:int -> shift:int -> int list -> unit
(** Activate the corridor for the given tile ids (out-of-range ids are
    ignored). [width] is the grid width in cells; [shift] is [log2] of the
    tile edge. Replaces any previous corridor. *)

val corridor_clear : t -> unit
(** Deactivate (O(1)); counters are left for the caller to read. *)

val corridor_active : t -> bool
(** Installed and not currently suspended. *)

val corridor_suspend : t -> unit
val corridor_resume : t -> unit
(** Nestable suspension bracket for whole-grid fallback searches. *)

val corridor_allows : t -> int -> bool
(** Membership test for a dense cell index. Only meaningful while
    {!corridor_active}. *)

val corridor_note_clip : t -> unit
val corridor_note_fallback : t -> unit
val corridor_note_bidir : t -> unit
val corridor_clips : t -> int
val corridor_fallbacks : t -> int
val corridor_bidir : t -> int
val corridor_reset_counters : t -> unit

(** {2 Scratch pools}

    Grid-sized arrays leased by stages that historically allocated per
    call (negotiation's history/owner arrays, the escape stage's role
    mask). Contents are arbitrary between leases: the borrower must fill
    every element it later reads. Arrays grow monotonically and are shared
    by slot, so two concurrent borrowers of one slot would corrupt each
    other — the workspace is single-threaded, as documented above. *)

val scratch_slots : int
(** Number of independent int slots (currently 4). *)

val scratch_int : t -> slot:int -> cells:int -> int array
(** An int array of length >= [cells] for [slot] (0-based). *)

val scratch_bytes : t -> len:int -> Bytes.t
(** A byte buffer of length >= [len]. One per workspace. *)
