(** Monotonic time source for deadlines and elapsed-time measurement.

    [Unix.gettimeofday] follows the system wall clock, which jumps under
    NTP adjustment; a budget deadline computed against it can fire
    arbitrarily early or late in a long-lived daemon. {!now_mono} reads
    [clock_gettime(CLOCK_MONOTONIC)] through a C stub instead — a clock
    that only moves forward, at (approximately) one second per second —
    and falls back to [Unix.gettimeofday] on platforms without it.

    The absolute value of {!now_mono} is meaningless (typically seconds
    since boot); only differences are. Every deadline and elapsed-time
    computation in the routing engine, repair flow, batch runner and
    serving layer uses this clock. *)

val now_mono : unit -> float
(** Current monotonic time in seconds. Strictly non-decreasing across
    calls within one process (up to float resolution). *)

val monotonic_available : bool
(** False when the C stub could not read [CLOCK_MONOTONIC] and
    {!now_mono} is silently [Unix.gettimeofday]. *)
