(* Global free-list of scratch workspaces for speculative parallel
   probes. A Treiber stack: acquire pops (or creates on empty), release
   pushes back. Workspaces are never shrunk, so a released workspace
   keeps its warm arrays for the next lease — after the first few rounds
   on a given grid size, leases stop allocating entirely.

   The pool is deliberately process-global rather than per-Pool: leased
   workspaces carry no identity that could leak into results (their
   stats are absorbed field-selectively, excluding the growth-history
   dependent [grid_allocs]), so sharing them across engines is safe and
   maximises warm-array reuse. *)

let free : Workspace.t list Atomic.t = Atomic.make []

let rec acquire ~cells =
  match Atomic.get free with
  | [] ->
    let ws = Workspace.create () in
    Workspace.prepare ws ~cells;
    ws
  | ws :: rest as cur ->
    if Atomic.compare_and_set free cur rest then begin
      Workspace.prepare ws ~cells;
      ws
    end
    else acquire ~cells

let rec release ws =
  let cur = Atomic.get free in
  if not (Atomic.compare_and_set free cur (ws :: cur)) then release ws

let with_workspace ~cells f =
  let ws = acquire ~cells in
  Fun.protect ~finally:(fun () -> release ws) (fun () -> f ws)
