(** Process-global lease pool of scratch {!Workspace.t}s.

    Parallel inner stages (speculative negotiation probes, escape
    subnetwork solves, certificate checks) each need a private workspace
    for the duration of one search. Creating one per probe would pay a
    grid-sized allocation every time; this pool recycles them so warm
    arrays persist across leases. Lock-free (Treiber stack); safe to
    call from any domain.

    A leased workspace arrives {!Workspace.prepare}d for [cells] (arrays
    sized, budget at its default unlimited value) but with arbitrary
    prior epoch state — callers must run [begin_search]/[begin_claims]
    themselves, exactly as they would on a private workspace. Stats from
    a leased workspace are credited back to the main one with
    {!Search_stats.absorb}. *)

val acquire : cells:int -> Workspace.t
(** Pop a free workspace (or create one), prepared for [cells] cells. *)

val release : Workspace.t -> unit
(** Return a workspace to the pool. The caller must not touch it
    afterwards. *)

val with_workspace : cells:int -> (Workspace.t -> 'a) -> 'a
(** Bracketed {!acquire}/{!release}; releases on exception too. *)
