type t = {
  mutable cap : int;
  mutable dist_a : int array;
  mutable parent_a : int array;
  mutable dist_stamp : int array;
  mutable closed_stamp : int array;
  mutable target_stamp : int array;
  mutable source_stamp : int array;
  (* Bounded-search visit pool: [fill] counts a cell's entries this epoch;
     slots are [cell * stride + k]. *)
  mutable fill : int array;
  mutable fill_stamp : int array;
  mutable entry_g_a : int array;
  mutable entry_parent_a : int array;
  mutable entry_cap : int;
  mutable stride : int;
  (* Claim layer: refcounted cell ownership shared by the negotiation
     rounds. Claims live on their own epoch — [begin_epoch] (one bump per
     search) must not wipe them, because one negotiation run performs many
     searches against the same claim state. *)
  mutable claim_count_a : int array;
  mutable claim_stamp : int array;
  mutable claim_epoch : int;
  (* Backward-search state for the bidirectional A*: a second, independent
     dist/parent/closed set sharing the forward epoch, so one [begin_epoch]
     resets both frontiers. *)
  mutable dist_b_a : int array;
  mutable parent_b_a : int array;
  mutable dist_b_stamp : int array;
  mutable closed_b_stamp : int array;
  (* Corridor mask: one stamp per coarse tile, on its own epoch so a
     corridor survives the many [begin_epoch] bumps of the searches it
     confines. [corr_shift]/[corr_tiles_x]/[corr_width] map a dense cell
     index to its tile in a handful of integer ops. *)
  mutable corr_stamp : int array;
  mutable corr_cap : int;
  mutable corr_epoch : int;
  mutable corr_on : bool;
  mutable corr_suspended : int;
  mutable corr_width : int;
  mutable corr_tiles_x : int;
  mutable corr_shift : int;
  mutable corr_clips : int;
  mutable corr_fallbacks : int;
  mutable corr_bidir : int;
  (* Scratch pools: grid-sized arrays leased by stages that used to
     [Array.make n] per call (negotiation history, escape roles). Contents
     are arbitrary between leases — the borrower fills what it reads. *)
  mutable scratch_ints : int array array;
  mutable scratch_b : Bytes.t;
  (* Epoch starts at 1 so freshly zeroed stamp arrays read as stale. *)
  mutable epoch : int;
  pq : int Pacor_graphs.Pqueue.t;
  (* 0-1-BFS deque: a circular int buffer reset by [begin_epoch]. It shares
     the pqueue's budget/stat discipline so a flow solver's pops charge the
     same budget as an A* search's. *)
  mutable dq : int array;
  mutable dq_head : int;
  mutable dq_len : int;
  stats : Search_stats.t;
  mutable budget : Budget.t;
}

let create ?stats () =
  let stats = match stats with Some s -> s | None -> Search_stats.create () in
  {
    cap = 0;
    dist_a = [||];
    parent_a = [||];
    dist_stamp = [||];
    closed_stamp = [||];
    target_stamp = [||];
    source_stamp = [||];
    fill = [||];
    fill_stamp = [||];
    entry_g_a = [||];
    entry_parent_a = [||];
    entry_cap = 0;
    stride = 0;
    claim_count_a = [||];
    claim_stamp = [||];
    claim_epoch = 1;
    dist_b_a = [||];
    parent_b_a = [||];
    dist_b_stamp = [||];
    closed_b_stamp = [||];
    corr_stamp = [||];
    corr_cap = 0;
    corr_epoch = 1;
    corr_on = false;
    corr_suspended = 0;
    corr_width = 0;
    corr_tiles_x = 0;
    corr_shift = 0;
    corr_clips = 0;
    corr_fallbacks = 0;
    corr_bidir = 0;
    scratch_ints = [| [||]; [||]; [||]; [||] |];
    scratch_b = Bytes.empty;
    epoch = 1;
    pq = Pacor_graphs.Pqueue.create ();
    dq = [||];
    dq_head = 0;
    dq_len = 0;
    stats;
    budget = Budget.unlimited ();
  }

let stats t = t.stats
let budget t = t.budget
let set_budget t b = t.budget <- b

let reserve_cells t n =
  if t.cap < n then begin
    let cap = max n (2 * t.cap) in
    t.dist_a <- Array.make cap 0;
    t.parent_a <- Array.make cap 0;
    t.dist_stamp <- Array.make cap 0;
    t.closed_stamp <- Array.make cap 0;
    t.target_stamp <- Array.make cap 0;
    t.source_stamp <- Array.make cap 0;
    t.fill <- Array.make cap 0;
    t.fill_stamp <- Array.make cap 0;
    t.claim_count_a <- Array.make cap 0;
    t.claim_stamp <- Array.make cap 0;
    t.dist_b_a <- Array.make cap 0;
    t.parent_b_a <- Array.make cap 0;
    t.dist_b_stamp <- Array.make cap 0;
    t.closed_b_stamp <- Array.make cap 0;
    t.cap <- cap;
    Search_stats.grid_alloc_noted t.stats
  end

let reserve_entries t n =
  if t.entry_cap < n then begin
    let cap = max n (2 * t.entry_cap) in
    t.entry_g_a <- Array.make cap 0;
    t.entry_parent_a <- Array.make cap (-1);
    t.entry_cap <- cap;
    Search_stats.grid_alloc_noted t.stats
  end

let begin_epoch t =
  t.epoch <- t.epoch + 1;
  Pacor_graphs.Pqueue.clear t.pq;
  t.dq_head <- 0;
  t.dq_len <- 0;
  Search_stats.started t.stats;
  Search_stats.reset_noted t.stats

let begin_search t ~cells =
  reserve_cells t cells;
  begin_epoch t

let begin_bounded t ~cells ~max_visits_per_cell =
  reserve_cells t cells;
  reserve_entries t (cells * max_visits_per_cell);
  t.stride <- max_visits_per_cell;
  begin_epoch t

let dist t i = if t.dist_stamp.(i) = t.epoch then t.dist_a.(i) else max_int

let touched t i =
  i >= 0 && i < Array.length t.dist_stamp && t.dist_stamp.(i) = t.epoch

(* First touch of a cell in an epoch also resets its parent, so [parent]
   never reads a stale predecessor through a fresh distance stamp. *)
let set_dist t i d =
  if t.dist_stamp.(i) <> t.epoch then begin
    t.dist_stamp.(i) <- t.epoch;
    t.parent_a.(i) <- -1
  end;
  t.dist_a.(i) <- d

let parent t i =
  if t.dist_stamp.(i) = t.epoch then t.parent_a.(i) else -1

let set_parent t i j =
  t.parent_a.(i) <- j

let closed t i = t.closed_stamp.(i) = t.epoch
let close t i = t.closed_stamp.(i) <- t.epoch

let mark_target t i = t.target_stamp.(i) <- t.epoch
let is_target t i = t.target_stamp.(i) = t.epoch
let mark_source t i = t.source_stamp.(i) <- t.epoch
let is_source t i = t.source_stamp.(i) = t.epoch

let push t ~prio i =
  Search_stats.pushed t.stats;
  Pacor_graphs.Pqueue.push t.pq ~prio i

(* A budget-exhausted workspace reports an empty queue: searches fail
   fast along their ordinary no-route paths, which is exactly the
   degradation chain the engine already knows how to handle. *)
let pop t =
  if not (Budget.tick t.budget) then None
  else
    match Pacor_graphs.Pqueue.pop t.pq with
    | None -> None
    | Some _ as r ->
      Search_stats.popped t.stats;
      r

(* Same contract, minus the option/tuple allocation: [-1] means "queue
   empty or budget exhausted". The searchers never use the popped
   priority, so it is not returned. *)
let pop_cell t =
  if not (Budget.tick t.budget) then -1
  else if Pacor_graphs.Pqueue.is_empty t.pq then -1
  else begin
    Search_stats.popped t.stats;
    Pacor_graphs.Pqueue.pop_top t.pq
  end

(* -- 0-1-BFS deque ------------------------------------------------------ *)

let deque_grow t =
  let cur = Array.length t.dq in
  let ncap = max 64 (2 * cur) in
  let b = Array.make ncap 0 in
  for k = 0 to t.dq_len - 1 do
    b.(k) <- t.dq.((t.dq_head + k) mod cur)
  done;
  t.dq <- b;
  t.dq_head <- 0;
  Search_stats.grid_alloc_noted t.stats

let deque_push_back t i =
  if t.dq_len = Array.length t.dq then deque_grow t;
  let cap = Array.length t.dq in
  t.dq.((t.dq_head + t.dq_len) mod cap) <- i;
  t.dq_len <- t.dq_len + 1;
  Search_stats.pushed t.stats

let deque_push_front t i =
  if t.dq_len = Array.length t.dq then deque_grow t;
  let cap = Array.length t.dq in
  t.dq_head <- (t.dq_head + cap - 1) mod cap;
  t.dq.(t.dq_head) <- i;
  t.dq_len <- t.dq_len + 1;
  Search_stats.pushed t.stats

(* Same contract as [pop_cell]: [-1] means "deque empty or budget
   exhausted", so an exhausted budget starves the flow solver's
   augmentation search exactly like it starves an A*. *)
let deque_pop_front t =
  if not (Budget.tick t.budget) then -1
  else if t.dq_len = 0 then -1
  else begin
    let x = t.dq.(t.dq_head) in
    t.dq_head <- (t.dq_head + 1) mod Array.length t.dq;
    t.dq_len <- t.dq_len - 1;
    Search_stats.popped t.stats;
    x
  end

let deque_is_empty t = t.dq_len = 0

(* -- Claim layer -------------------------------------------------------- *)

(* Claims replace the negotiation router's per-round [Obstacle_map.copy]:
   claiming/releasing a path touches O(path) cells, and starting a fresh
   claim generation is O(1). Counts are refcounts because sibling tree
   edges legitimately share a branch-point cell. *)

let begin_claims t ~cells =
  reserve_cells t cells;
  t.claim_epoch <- t.claim_epoch + 1;
  Search_stats.reset_noted t.stats

let claim t i =
  let c = if t.claim_stamp.(i) = t.claim_epoch then t.claim_count_a.(i) else 0 in
  t.claim_stamp.(i) <- t.claim_epoch;
  t.claim_count_a.(i) <- c + 1

let release t i =
  if t.claim_stamp.(i) = t.claim_epoch && t.claim_count_a.(i) > 0 then
    t.claim_count_a.(i) <- t.claim_count_a.(i) - 1

let claimed t i = t.claim_stamp.(i) = t.claim_epoch && t.claim_count_a.(i) > 0

let claim_count t i =
  if t.claim_stamp.(i) = t.claim_epoch then t.claim_count_a.(i) else 0

let entry_count t i = if t.fill_stamp.(i) = t.epoch then t.fill.(i) else 0
let entry_slot t ~cell k = (cell * t.stride) + k
let entry_cell t slot = slot / t.stride
let entry_g t slot = t.entry_g_a.(slot)
let entry_parent t slot = t.entry_parent_a.(slot)

let append_entry t ~cell ~g ~parent =
  let k = entry_count t cell in
  let slot = (cell * t.stride) + k in
  t.entry_g_a.(slot) <- g;
  t.entry_parent_a.(slot) <- parent;
  t.fill.(cell) <- k + 1;
  t.fill_stamp.(cell) <- t.epoch;
  slot

(* -- One-time growth ---------------------------------------------------- *)

(* Jump every per-cell array (and the bounded-search pool) straight to the
   target size in one allocation event, so routing a 1000x1000+ instance on
   a pooled workspace never reallocates mid-run and a later, smaller
   instance reuses the grown arrays untouched. *)
let prepare t ~cells =
  reserve_cells t cells;
  reserve_entries t (cells * 8)

(* -- Backward-search state (bidirectional A-star) ----------------------- *)

let dist_b t i = if t.dist_b_stamp.(i) = t.epoch then t.dist_b_a.(i) else max_int

let set_dist_b t i d =
  if t.dist_b_stamp.(i) <> t.epoch then begin
    t.dist_b_stamp.(i) <- t.epoch;
    t.parent_b_a.(i) <- -1
  end;
  t.dist_b_a.(i) <- d

let parent_b t i = if t.dist_b_stamp.(i) = t.epoch then t.parent_b_a.(i) else -1
let set_parent_b t i j = t.parent_b_a.(i) <- j
let closed_b t i = t.closed_b_stamp.(i) = t.epoch
let close_b t i = t.closed_b_stamp.(i) <- t.epoch

(* -- Corridor mask ------------------------------------------------------ *)

let corridor_install t ~width ~tiles_x ~tile_count ~shift tiles =
  if t.corr_cap < tile_count then begin
    let cap = max tile_count (2 * t.corr_cap) in
    t.corr_stamp <- Array.make cap 0;
    t.corr_cap <- cap
  end;
  t.corr_epoch <- t.corr_epoch + 1;
  t.corr_width <- width;
  t.corr_tiles_x <- tiles_x;
  t.corr_shift <- shift;
  t.corr_on <- true;
  t.corr_suspended <- 0;
  List.iter
    (fun tid ->
       if tid >= 0 && tid < tile_count then t.corr_stamp.(tid) <- t.corr_epoch)
    tiles

let corridor_clear t =
  t.corr_on <- false;
  t.corr_suspended <- 0

let corridor_active t = t.corr_on && t.corr_suspended = 0

(* Suspend/resume nest: the per-connection whole-grid fallback suspends
   around its retry, and a fallback triggered inside an already-suspended
   scope (an escape re-solve that re-runs A*s) must not resume early. *)
let corridor_suspend t = if t.corr_on then t.corr_suspended <- t.corr_suspended + 1

let corridor_resume t =
  if t.corr_on && t.corr_suspended > 0 then t.corr_suspended <- t.corr_suspended - 1

let[@inline] corridor_allows t i =
  let x = i mod t.corr_width and y = i / t.corr_width in
  let tid = ((y lsr t.corr_shift) * t.corr_tiles_x) + (x lsr t.corr_shift) in
  t.corr_stamp.(tid) = t.corr_epoch

let corridor_note_clip t = t.corr_clips <- t.corr_clips + 1
let corridor_note_fallback t = t.corr_fallbacks <- t.corr_fallbacks + 1
let corridor_note_bidir t = t.corr_bidir <- t.corr_bidir + 1
let corridor_clips t = t.corr_clips
let corridor_fallbacks t = t.corr_fallbacks
let corridor_bidir t = t.corr_bidir

let corridor_reset_counters t =
  t.corr_clips <- 0;
  t.corr_fallbacks <- 0;
  t.corr_bidir <- 0

(* -- Scratch pools ------------------------------------------------------ *)

let scratch_slots = 4

let scratch_int t ~slot ~cells =
  if slot < 0 || slot >= scratch_slots then invalid_arg "Workspace.scratch_int: bad slot";
  if Array.length t.scratch_ints.(slot) < cells then begin
    t.scratch_ints.(slot) <- Array.make (max cells (2 * Array.length t.scratch_ints.(slot))) 0;
    Search_stats.grid_alloc_noted t.stats
  end;
  t.scratch_ints.(slot)

let scratch_bytes t ~len =
  if Bytes.length t.scratch_b < len then begin
    t.scratch_b <- Bytes.create (max len (2 * Bytes.length t.scratch_b));
    Search_stats.grid_alloc_noted t.stats
  end;
  t.scratch_b
