(** Instrumentation counters for the routing searches.

    One mutable record is shared by every search running on a
    {!Workspace.t}, so a whole engine stage (or a whole routed problem)
    accumulates into a single place. Counters are monotone; stages are
    delimited by taking {!snapshot}s and {!diff}ing them, never by
    resetting mid-flight. *)

type t
(** Mutable monotone counters. *)

type snapshot = {
  searches : int;     (** A* / bounded-A* searches started *)
  pops : int;         (** priority-queue pops (incl. stale lazy-delete pops) *)
  pushes : int;       (** priority-queue pushes *)
  touched : int;      (** in-bounds neighbour cells examined, whether or not
                          enterable (the old [relaxations] counted these —
                          plus out-of-bounds points — as relaxations) *)
  relaxations : int;  (** touched cells that passed the enterable and
                          not-yet-closed checks, i.e. actual distance-label
                          relaxation attempts; always [<= touched] *)
  resets : int;       (** workspace epoch bumps (O(1) lazy resets) *)
  grid_allocs : int;  (** grid-sized array allocation events — stays flat
                          once the workspace has grown to the problem size *)
}

val create : unit -> t
val reset : t -> unit

val started : t -> unit
val popped : t -> unit
val pushed : t -> unit
val touched : t -> unit
val relaxed : t -> unit
val reset_noted : t -> unit
val grid_alloc_noted : t -> unit

val absorb : t -> snapshot -> unit
(** [absorb t s] adds every field of [s] except [grid_allocs] into [t].
    Used to credit a search that ran on a leased scratch workspace back
    to the main workspace's counters: all absorbed fields are
    deterministic per search, while [grid_allocs] depends on the scratch
    workspace's private growth history and is dropped so parallel runs
    report byte-identical stats to sequential ones. *)

val snapshot : t -> snapshot

val zero : snapshot

val diff : snapshot -> snapshot -> snapshot
(** [diff later earlier] is the per-field difference — the activity between
    the two snapshots. *)

val add : snapshot -> snapshot -> snapshot

val is_zero : snapshot -> bool

val pp : Format.formatter -> snapshot -> unit
(** One line:
    [searches=… pops=… pushes=… touched=… relax=… resets=… allocs=…]. *)
