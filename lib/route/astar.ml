open Pacor_geom
open Pacor_grid

let cost_scale = 1000

type spec = {
  usable : Point.t -> bool;
  extra_cost : Point.t -> int;
}

(* Admissible heuristic: Manhattan distance to the bounding box of the
   target set (0 inside the box), in cost_scale units. *)
let bbox_heuristic targets =
  let box = Rect.of_point_list targets in
  fun (p : Point.t) ->
    let dx = max 0 (max (box.x0 - p.x) (p.x - box.x1)) in
    let dy = max 0 (max (box.y0 - p.y) (p.y - box.y1)) in
    (dx + dy) * cost_scale

let search ?workspace ~grid ~spec ~sources ~targets () =
  match sources, targets with
  | [], _ | _, [] -> None
  | _ :: _, _ :: _ ->
    let ws = match workspace with Some ws -> ws | None -> Workspace.create () in
    let h = bbox_heuristic targets in
    let n = Routing_grid.cells grid in
    Workspace.begin_search ws ~cells:n;
    let idx p = Routing_grid.index grid p in
    (* Out-of-bounds sources/targets can never be reached or entered, so
       skipping them preserves the old Point.Set semantics. *)
    List.iter
      (fun p -> if Routing_grid.in_bounds grid p then Workspace.mark_target ws (idx p))
      targets;
    List.iter
      (fun p ->
         if Routing_grid.in_bounds grid p then begin
           let i = idx p in
           Workspace.mark_source ws i;
           Workspace.set_dist ws i 0;
           Workspace.push ws ~prio:(h p) i
         end)
      sources;
    let enterable p =
      Routing_grid.in_bounds grid p
      && (spec.usable p
          || Workspace.is_target ws (idx p)
          || Workspace.is_source ws (idx p))
    in
    let rec reconstruct i acc =
      let p = Routing_grid.point_of_index grid i in
      let j = Workspace.parent ws i in
      if j = -1 then p :: acc else reconstruct j (p :: acc)
    in
    let rec loop () =
      match Workspace.pop ws with
      | None -> None
      | Some (_, i) ->
        if Workspace.closed ws i then loop ()
        else begin
          Workspace.close ws i;
          let p = Routing_grid.point_of_index grid i in
          if Workspace.is_target ws i then Some (Path.of_points (reconstruct i []))
          else begin
            let relax q =
              Search_stats.relaxed (Workspace.stats ws);
              if enterable q then begin
                let j = idx q in
                if not (Workspace.closed ws j) then begin
                  let step = cost_scale + spec.extra_cost q in
                  let nd = Workspace.dist ws i + step in
                  if nd < Workspace.dist ws j then begin
                    Workspace.set_dist ws j nd;
                    Workspace.set_parent ws j i;
                    Workspace.push ws ~prio:(nd + h q) j
                  end
                end
              end
            in
            List.iter relax (Point.neighbours4 p);
            loop ()
          end
        end
    in
    loop ()

let shortest ?workspace ~grid ~obstacles a b =
  let spec =
    { usable = (fun p -> Obstacle_map.free obstacles p); extra_cost = (fun _ -> 0) }
  in
  search ?workspace ~grid ~spec ~sources:[ a ] ~targets:[ b ] ()
