open Pacor_geom
open Pacor_grid

let cost_scale = Astar_cost.scale

type spec = {
  usable : int -> bool;
  extra_cost : int -> int;
}

let obstacle_spec obstacles =
  { usable = (fun i -> Obstacle_map.free_i obstacles i); extra_cost = (fun _ -> 0) }

let point_spec ~grid ~usable ~extra_cost =
  {
    usable = (fun i -> usable (Routing_grid.point_of_index grid i));
    extra_cost = (fun i -> extra_cost (Routing_grid.point_of_index grid i));
  }

(* One confined-or-flat attempt; whether the corridor applies is read from
   the workspace at call time, so the fallback wrapper below re-runs the
   same closure with the corridor suspended. *)
let attempt ws ~grid ~spec ~sources ~targets =
  let n = Routing_grid.cells grid in
  let width = Routing_grid.width grid in
  (* Admissible heuristic: Manhattan distance to the bounding box of the
     target set (0 inside the box), in cost_scale units. The box spans
     the {e raw} target list — out-of-bounds targets widen it exactly as
     they did in the point-based implementation, keeping expansion order
     (and therefore returned paths) unchanged. *)
  let box = Rect.of_point_list targets in
  let h i =
    let x = i mod width and y = i / width in
    let dx = max 0 (max (box.Rect.x0 - x) (x - box.Rect.x1)) in
    let dy = max 0 (max (box.Rect.y0 - y) (y - box.Rect.y1)) in
    (dx + dy) * cost_scale
  in
  Workspace.begin_search ws ~cells:n;
  let idx p = Routing_grid.index grid p in
  (* Out-of-bounds sources/targets can never be reached or entered, so
     skipping them preserves the old Point.Set semantics. *)
  List.iter
    (fun p -> if Routing_grid.in_bounds grid p then Workspace.mark_target ws (idx p))
    targets;
  List.iter
    (fun p ->
       if Routing_grid.in_bounds grid p then begin
         let i = idx p in
         Workspace.mark_source ws i;
         Workspace.set_dist ws i 0;
         Workspace.push ws ~prio:(h i) i
       end)
    sources;
  let rec reconstruct i acc =
    let p = Routing_grid.point_of_index grid i in
    let j = Workspace.parent ws i in
    if j = -1 then p :: acc else reconstruct j (p :: acc)
  in
  let stats = Workspace.stats ws in
  let confined = Workspace.corridor_active ws in
  (* One closure for the whole search, reading the current expansion
     through mutable cells — no per-pop closure or neighbour list. *)
  let cur = ref 0 and cur_dist = ref 0 in
  let relax j =
    Search_stats.touched stats;
    if
      (spec.usable j || Workspace.is_target ws j || Workspace.is_source ws j)
      && not (Workspace.closed ws j)
    then begin
      (* Corridor confinement prunes otherwise-enterable cells only;
         sources and targets are always exempt. [confined] is false on
         every flat run, so this branch costs one test there and the
         search below is byte-identical to the pre-hierarchy searcher. *)
      if
        confined
        && not (Workspace.corridor_allows ws j)
        && not (Workspace.is_target ws j)
        && not (Workspace.is_source ws j)
      then Workspace.corridor_note_clip ws
      else begin
        Search_stats.relaxed stats;
        let nd = !cur_dist + cost_scale + spec.extra_cost j in
        if nd < Workspace.dist ws j then begin
          Workspace.set_dist ws j nd;
          Workspace.set_parent ws j !cur;
          Workspace.push ws ~prio:(nd + h j) j
        end
      end
    end
  in
  let rec loop () =
    let i = Workspace.pop_cell ws in
    if i < 0 then None
    else if Workspace.closed ws i then loop ()
    else begin
      Workspace.close ws i;
      if Workspace.is_target ws i then Some (Path.of_points (reconstruct i []))
      else begin
        cur := i;
        cur_dist := Workspace.dist ws i;
        Routing_grid.iter_neighbours4 grid i relax;
        loop ()
      end
    end
  in
  loop ()

let search ?workspace ~grid ~spec ~sources ~targets () =
  match sources, targets with
  | [], _ | _, [] -> None
  | _ :: _, _ :: _ ->
    let ws = match workspace with Some ws -> ws | None -> Workspace.create () in
    let confined = Workspace.corridor_active ws in
    let first =
      (* Long single-pair connections under a corridor go bidirectional:
         same path cost, roughly half the expansions. Never engaged on a
         flat run, so flat searches stay byte-identical. *)
      match confined, sources, targets with
      | true, [ a ], [ b ]
        when Routing_grid.in_bounds grid a
             && Routing_grid.in_bounds grid b
             && Point.manhattan a b >= Bidir_astar.min_manhattan ->
        Bidir_astar.search ~ws ~grid ~usable:spec.usable ~extra_cost:spec.extra_cost
          ~source:a ~target:b
      | _ -> attempt ws ~grid ~spec ~sources ~targets
    in
    (match first with
     | Some _ as r -> r
     | None ->
       if confined then begin
         (* The corridor may have severed the only route; certify the
            failure against the whole grid before reporting it, so a
            confined run never loses a connection a flat run would find. *)
         Workspace.corridor_note_fallback ws;
         Workspace.corridor_suspend ws;
         Fun.protect
           ~finally:(fun () -> Workspace.corridor_resume ws)
           (fun () -> attempt ws ~grid ~spec ~sources ~targets)
       end
       else None)

let shortest ?workspace ~grid ~obstacles a b =
  search ?workspace ~grid ~spec:(obstacle_spec obstacles) ~sources:[ a ] ~targets:[ b ] ()
