open Pacor_geom
open Pacor_grid

let cost_scale = 1000

type spec = {
  usable : int -> bool;
  extra_cost : int -> int;
}

let obstacle_spec obstacles =
  { usable = (fun i -> Obstacle_map.free_i obstacles i); extra_cost = (fun _ -> 0) }

let point_spec ~grid ~usable ~extra_cost =
  {
    usable = (fun i -> usable (Routing_grid.point_of_index grid i));
    extra_cost = (fun i -> extra_cost (Routing_grid.point_of_index grid i));
  }

let search ?workspace ~grid ~spec ~sources ~targets () =
  match sources, targets with
  | [], _ | _, [] -> None
  | _ :: _, _ :: _ ->
    let ws = match workspace with Some ws -> ws | None -> Workspace.create () in
    let n = Routing_grid.cells grid in
    let width = Routing_grid.width grid in
    (* Admissible heuristic: Manhattan distance to the bounding box of the
       target set (0 inside the box), in cost_scale units. The box spans
       the {e raw} target list — out-of-bounds targets widen it exactly as
       they did in the point-based implementation, keeping expansion order
       (and therefore returned paths) unchanged. *)
    let box = Rect.of_point_list targets in
    let h i =
      let x = i mod width and y = i / width in
      let dx = max 0 (max (box.Rect.x0 - x) (x - box.Rect.x1)) in
      let dy = max 0 (max (box.Rect.y0 - y) (y - box.Rect.y1)) in
      (dx + dy) * cost_scale
    in
    Workspace.begin_search ws ~cells:n;
    let idx p = Routing_grid.index grid p in
    (* Out-of-bounds sources/targets can never be reached or entered, so
       skipping them preserves the old Point.Set semantics. *)
    List.iter
      (fun p -> if Routing_grid.in_bounds grid p then Workspace.mark_target ws (idx p))
      targets;
    List.iter
      (fun p ->
         if Routing_grid.in_bounds grid p then begin
           let i = idx p in
           Workspace.mark_source ws i;
           Workspace.set_dist ws i 0;
           Workspace.push ws ~prio:(h i) i
         end)
      sources;
    let rec reconstruct i acc =
      let p = Routing_grid.point_of_index grid i in
      let j = Workspace.parent ws i in
      if j = -1 then p :: acc else reconstruct j (p :: acc)
    in
    let stats = Workspace.stats ws in
    (* One closure for the whole search, reading the current expansion
       through mutable cells — no per-pop closure or neighbour list. *)
    let cur = ref 0 and cur_dist = ref 0 in
    let relax j =
      Search_stats.touched stats;
      if
        (spec.usable j || Workspace.is_target ws j || Workspace.is_source ws j)
        && not (Workspace.closed ws j)
      then begin
        Search_stats.relaxed stats;
        let nd = !cur_dist + cost_scale + spec.extra_cost j in
        if nd < Workspace.dist ws j then begin
          Workspace.set_dist ws j nd;
          Workspace.set_parent ws j !cur;
          Workspace.push ws ~prio:(nd + h j) j
        end
      end
    in
    let rec loop () =
      let i = Workspace.pop_cell ws in
      if i < 0 then None
      else if Workspace.closed ws i then loop ()
      else begin
        Workspace.close ws i;
        if Workspace.is_target ws i then Some (Path.of_points (reconstruct i []))
        else begin
          cur := i;
          cur_dist := Workspace.dist ws i;
          Routing_grid.iter_neighbours4 grid i relax;
          loop ()
        end
      end
    in
    loop ()

let shortest ?workspace ~grid ~obstacles a b =
  search ?workspace ~grid ~spec:(obstacle_spec obstacles) ~sources:[ a ] ~targets:[ b ] ()
