type reason = Deadline | Expansions | Iterations

let reason_label = function
  | Deadline -> "deadline"
  | Expansions -> "expansions"
  | Iterations -> "iterations"

let pp_reason ppf r = Format.pp_print_string ppf (reason_label r)

type limits = {
  timeout_s : float option;
  max_expansions : int option;
  max_iterations : int option;
}

let no_limits = { timeout_s = None; max_expansions = None; max_iterations = None }

let limits ?timeout_s ?max_expansions ?max_iterations () =
  (match timeout_s with
   | Some s when s <= 0.0 -> invalid_arg "Budget.limits: timeout_s must be positive"
   | _ -> ());
  (match max_expansions with
   | Some n when n <= 0 -> invalid_arg "Budget.limits: max_expansions must be positive"
   | _ -> ());
  (match max_iterations with
   | Some n when n <= 0 -> invalid_arg "Budget.limits: max_iterations must be positive"
   | _ -> ());
  { timeout_s; max_expansions; max_iterations }

let is_no_limits l =
  l.timeout_s = None && l.max_expansions = None && l.max_iterations = None

let relax ?(factor = 2.0) l =
  let scale_f = Option.map (fun s -> s *. factor) in
  let scale_i =
    Option.map (fun n ->
        let f = float_of_int n *. factor in
        if f >= float_of_int max_int then max_int else int_of_float f)
  in
  {
    timeout_s = scale_f l.timeout_s;
    max_expansions = scale_i l.max_expansions;
    max_iterations = scale_i l.max_iterations;
  }

let pp_limits ppf l =
  if is_no_limits l then Format.pp_print_string ppf "unlimited"
  else begin
    let sep = ref false in
    let item fmt =
      Format.kasprintf
        (fun s ->
          if !sep then Format.pp_print_string ppf " ";
          sep := true;
          Format.pp_print_string ppf s)
        fmt
    in
    Option.iter (fun s -> item "timeout=%.3fs" s) l.timeout_s;
    Option.iter (fun n -> item "max-expansions=%d" n) l.max_expansions;
    Option.iter (fun n -> item "max-iterations=%d" n) l.max_iterations
  end

(* How many [tick]s between clock reads. A [Clock.now_mono] call costs
   ~20-40ns; one read per 512 pops keeps the overhead below the heap
   traffic of a single A* relaxation while bounding deadline overshoot to
   512 pops. The monotonic clock also means an NTP step cannot expire (or
   resurrect) a deadline mid-run — essential once budgets guard requests
   in a long-lived daemon. *)
let clock_stride = 512

type t = {
  limits : limits;
  free : bool;  (* fast path: no limit of any kind, ticks are a no-op *)
  mutable deadline : float;        (* absolute; infinity when unarmed/none *)
  mutable expansions_left : int;   (* max_int when uncapped *)
  mutable iterations_left : int;   (* max_int when uncapped *)
  mutable countdown : int;         (* ticks until the next clock read *)
  mutable exhausted : reason option;
}

let unlimited () =
  {
    limits = no_limits;
    free = true;
    deadline = infinity;
    expansions_left = max_int;
    iterations_left = max_int;
    countdown = clock_stride;
    exhausted = None;
  }

let create l =
  {
    limits = l;
    free = is_no_limits l;
    deadline = infinity;
    expansions_left = Option.value l.max_expansions ~default:max_int;
    iterations_left = Option.value l.max_iterations ~default:max_int;
    countdown = clock_stride;
    exhausted = None;
  }

let limits_of t = t.limits

let arm t =
  if not t.free then begin
    (match t.limits.timeout_s with
     | Some s -> t.deadline <- Clock.now_mono () +. s
     | None -> t.deadline <- infinity);
    t.expansions_left <- Option.value t.limits.max_expansions ~default:max_int;
    t.iterations_left <- Option.value t.limits.max_iterations ~default:max_int;
    t.countdown <- clock_stride;
    t.exhausted <- None
  end

let exhausted t = t.exhausted

let check_clock t =
  t.countdown <- clock_stride;
  if t.deadline < infinity && Clock.now_mono () > t.deadline then begin
    t.exhausted <- Some Deadline;
    false
  end
  else true

(* The per-pop hot check: decrement the expansion allowance, and read the
   clock once every [clock_stride] calls. Must stay allocation-free. *)
let tick t =
  t.free
  ||
  match t.exhausted with
  | Some _ -> false
  | None ->
    if t.expansions_left <= 0 then begin
      t.exhausted <- Some Expansions;
      false
    end
    else begin
      t.expansions_left <- t.expansions_left - 1;
      t.countdown <- t.countdown - 1;
      if t.countdown <= 0 then check_clock t else true
    end

(* The coarse check for loop heads: always reads the clock, never charges
   an expansion. *)
let alive t =
  t.free
  ||
  match t.exhausted with
  | Some _ -> false
  | None -> check_clock t

let note_iteration t =
  t.free
  ||
  match t.exhausted with
  | Some _ -> false
  | None ->
    if t.iterations_left <= 0 then begin
      t.exhausted <- Some Iterations;
      false
    end
    else begin
      t.iterations_left <- t.iterations_left - 1;
      check_clock t
    end
