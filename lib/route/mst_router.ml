open Pacor_geom
open Pacor_grid

type outcome = {
  paths : Path.t list;
  claimed : Point.Set.t;
  total_length : int;
}

let route ?workspace ~grid ~obstacles terminals =
  match terminals with
  | [] -> None
  | [ t ] -> Some { paths = []; claimed = Point.Set.singleton t; total_length = 0 }
  | _ :: _ :: _ ->
    let terms = Array.of_list terminals in
    let n = Array.length terms in
    (* Prim emits edges in growth order: [e.a] is always already in the
       tree, [e.b] is the newly attached vertex — so the routed component
       stays connected and every search attaches exactly one new terminal
       (point-to-path routing onto the whole component). *)
    let mst =
      Pacor_graphs.Mst.prim ~n ~weight:(fun i j -> Point.manhattan terms.(i) terms.(j))
    in
    let component = ref Point.Set.empty in
    let add_points pts = List.iter (fun p -> component := Point.Set.add p !component) pts in
    let spec = Astar.obstacle_spec obstacles in
    let route_edge (e : Pacor_graphs.Mst.edge) =
      let sources = [ terms.(e.b) ] in
      let targets =
        if Point.Set.is_empty !component then [ terms.(e.a) ]
        else Point.Set.elements !component
      in
      match Astar.search ?workspace ~grid ~spec ~sources ~targets () with
      | None -> None
      | Some path ->
        add_points (Path.points path);
        Some path
    in
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | e :: rest ->
        (match route_edge e with
         | None -> None
         | Some path -> go (path :: acc) rest)
    in
    (match go [] mst with
     | None -> None
     | Some paths ->
       let total_length = List.fold_left (fun acc p -> acc + Path.length p) 0 paths in
       add_points (Array.to_list terms);
       Some { paths; claimed = !component; total_length })
