(** MST-based cluster routing (Sec. 3) for clusters without the
    length-matching constraint.

    A minimum spanning tree over the cluster's valves (Manhattan metric)
    fixes the connection topology; its edges are then routed one by one with
    A*, each new valve connecting to the {e whole already-routed component}
    (the paper's point-to-path / path-to-path searches), which both helps
    routability and shortens channels by sharing. *)

open Pacor_geom
open Pacor_grid

type outcome = {
  paths : Path.t list;         (** one routed path per MST edge *)
  claimed : Point.Set.t;       (** all cells used, valve positions included *)
  total_length : int;
}

val route :
  ?workspace:Workspace.t ->
  grid:Routing_grid.t ->
  obstacles:Obstacle_map.t ->
  Point.t list ->
  outcome option
(** [route ~grid ~obstacles terminals] connects all terminal points into one
    routed component avoiding [obstacles] (terminals themselves exempt).
    [None] when some terminal cannot reach the component — the caller then
    declusters. Singleton input yields an empty path list claiming just the
    terminal. *)
