open Pacor_geom
open Pacor_grid

type edge = {
  edge_id : int;
  ends : Point.t * Point.t;
}

type config = {
  base_history : float;
  alpha : float;
  gamma : int;
}

let default_config = { base_history = 1.0; alpha = 0.1; gamma = 10 }

type outcome = {
  paths : (int * Path.t) list;
  success : bool;
  iterations : int;
}

let total_length paths =
  List.fold_left (fun acc (_, p) -> acc + Path.length p) 0 paths

(* Keep the iteration that routes more edges; on equal coverage, the one
   with the smaller total wirelength ((count, length) lexicographic — a
   plain count comparison used to discard equal-coverage iterations that
   negotiation had nudged onto shorter paths). *)
let better (a : outcome) (b : outcome) =
  let ca = List.length a.paths and cb = List.length b.paths in
  ca > cb || (ca = cb && total_length a.paths < total_length b.paths)

let route ?workspace ?(config = default_config) ~grid ~obstacles edges =
  let ws = match workspace with Some ws -> ws | None -> Workspace.create () in
  let n = Routing_grid.cells grid in
  let history = Array.make n 0.0 in
  let history_cost p =
    int_of_float (history.(Routing_grid.index grid p) *. float_of_int Astar.cost_scale)
  in
  let route_one work e =
    let a, b = e.ends in
    (* A* exempts this edge's own endpoints from [usable], so sibling edges
       that already claimed a shared branch point stay reachable. *)
    let spec =
      { Astar.usable = (fun p -> Obstacle_map.free work p); extra_cost = history_cost }
    in
    Astar.search ~workspace:ws ~grid ~spec ~sources:[ a ] ~targets:[ b ] ()
  in
  let bump_history path =
    List.iter
      (fun p ->
         let i = Routing_grid.index grid p in
         history.(i) <- config.base_history +. (config.alpha *. history.(i)))
      (Path.points path)
  in
  let rec iterate r order best =
    (* A negotiation round is the unit the iteration budget charges for;
       when the budget dies mid-negotiation we keep the best iteration so
       far, exactly as if gamma had been reached. *)
    if r >= config.gamma || not (Budget.note_iteration (Workspace.budget ws))
    then { best with iterations = r }
    else begin
      let work = Obstacle_map.copy obstacles in
      let routed = ref [] and failed = ref [] in
      List.iter
        (fun e ->
           match route_one work e with
           | Some path ->
             routed := (e, path) :: !routed;
             Obstacle_map.block_points work (Path.points path)
           | None -> failed := e :: !failed)
        order;
      let routed = List.rev !routed and failed = List.rev !failed in
      let result =
        {
          paths = List.map (fun (e, p) -> (e.edge_id, p)) routed;
          success = failed = [];
          iterations = r + 1;
        }
      in
      if failed = [] then result
      else begin
        List.iter (fun (_, p) -> bump_history p) routed;
        let best = if better result best then result else best in
        iterate (r + 1) (failed @ List.map fst routed) best
      end
    end
  in
  iterate 0 edges { paths = []; success = edges = []; iterations = 0 }
