open Pacor_geom
open Pacor_grid

type edge = {
  edge_id : int;
  ends : Point.t * Point.t;
}

type mode =
  | Incremental
  | Full_reroute

type config = {
  base_history : float;
  alpha : float;
  gamma : int;
  mode : mode;
}

let default_config = { base_history = 1.0; alpha = 0.1; gamma = 10; mode = Incremental }

type outcome = {
  paths : (int * Path.t) list;
  success : bool;
  iterations : int;
}

let total_length paths =
  List.fold_left (fun acc (_, p) -> acc + Path.length p) 0 paths

(* Keep the iteration that routes more edges; on equal coverage, the one
   with the smaller total wirelength ((count, length) lexicographic — a
   plain count comparison used to discard equal-coverage iterations that
   negotiation had nudged onto shorter paths). *)
let better (a : outcome) (b : outcome) =
  let ca = List.length a.paths and cb = List.length b.paths in
  ca > cb || (ca = cb && total_length a.paths < total_length b.paths)

let route ?sched ?workspace ?(config = default_config) ~grid ~obstacles edges =
  let ws = match workspace with Some ws -> ws | None -> Workspace.create () in
  let n = Routing_grid.cells grid in
  let edge_arr = Array.of_list edges in
  let nedges = Array.length edge_arr in
  (* Parallel probes replay the exact searches the sequential flow would
     run, so they must run the exact same code path: under corridor
     confinement a search reads corridor state living in [ws] that a
     leased scratch workspace does not carry, so sharding is gated off.
     (The engine additionally strips the scheduler whenever a search
     budget is armed — a budget trip depends on interleaving.) *)
  let par =
    match sched with
    | Some s when nedges >= 2 && not (Workspace.corridor_active ws) -> Some s
    | _ -> None
  in
  let idx p = Routing_grid.index grid p in
  (* History per Eq. (5): after k bumps a cell costs
     b * (1 + alpha + ... + alpha^(k-1)). A round bumps a cell at most
     once and there are at most [gamma] rounds, so the whole fixed-point
     cost ladder is precomputable — the relax path reads one int, with no
     per-relax float multiply + truncation. The ladder runs the same float
     recurrence the per-cell update used to, so the costs are bit-identical
     to the old implementation. *)
  let max_bumps = max config.gamma 1 in
  let cost_of_bumps = Array.make (max_bumps + 1) 0 in
  let () =
    let h = ref 0.0 in
    for k = 1 to max_bumps do
      h := config.base_history +. (config.alpha *. !h);
      cost_of_bumps.(k) <- int_of_float (!h *. float_of_int Astar.cost_scale)
    done
  in
  (* The four grid-sized per-cell arrays lease workspace scratch slots
     instead of allocating per call: at 1000x1000+ cells the old
     [Array.make]s dominated negotiation setup and GC churn. An explicit
     fill of the leading [n] cells (memset-speed) replaces the allocator's
     zeroing. *)
  let bumps = Workspace.scratch_int ws ~slot:0 ~cells:n in
  let hcost = Workspace.scratch_int ws ~slot:1 ~cells:n in
  Array.fill bumps 0 n 0;
  Array.fill hcost 0 n 0;
  let bump_cell i =
    if bumps.(i) < max_bumps then begin
      bumps.(i) <- bumps.(i) + 1;
      Array.unsafe_set hcost i cost_of_bumps.(bumps.(i))
    end
  in
  (* Routed paths claim their cells in the workspace's claim layer (the
     replacement for the per-round [Obstacle_map.copy]); [owner] remembers
     the claiming edge slot so conflict analysis can find who to rip.
     Shared branch-point cells are refcounted; their owner is the last
     claimant (a deliberate heuristic — ripping either sibling frees the
     contended region). *)
  let owner = Workspace.scratch_int ws ~slot:2 ~cells:n in
  Array.fill owner 0 n (-1);
  let claim_path slot path =
    List.iter
      (fun p ->
         let i = idx p in
         Workspace.claim ws i;
         owner.(i) <- slot)
      (Path.points path)
  in
  let release_path slot path =
    List.iter
      (fun p ->
         let i = idx p in
         Workspace.release ws i;
         if owner.(i) = slot then owner.(i) <- -1)
      (Path.points path)
  in
  let spec =
    { Astar.usable =
        (fun i -> Obstacle_map.free_i obstacles i && not (Workspace.claimed ws i));
      extra_cost = (fun i -> Array.unsafe_get hcost i) }
  in
  (* The "ideal" spec ignores claims: where a failed edge's unconstrained
     best path crosses claimed cells is exactly the conflict to negotiate
     over. An edge whose ideal search fails is structurally unroutable
     (claims only shrink the search space), so retrying it is pointless. *)
  let ideal_spec =
    { Astar.usable = (fun i -> Obstacle_map.free_i obstacles i);
      extra_cost = spec.Astar.extra_cost }
  in
  let search_edge spec e =
    let a, b = e.ends in
    Astar.search ~workspace:ws ~grid ~spec ~sources:[ a ] ~targets:[ b ] ()
  in
  (* Per-slot round state, all preallocated: [paths] is the current routed
     path per edge slot; [order] the routing order of the coming round
     (satellite: replaces the old per-round [failed @ List.map fst routed]
     list churn); [failed_buf]/[routed_buf]/[rip_buf] are scratch. *)
  let paths = Array.make (max nedges 1) None in
  let hopeless = Array.make (max nedges 1) false in
  let order = Array.make (max nedges 1) 0 in
  let failed_buf = Array.make (max nedges 1) 0 in
  let routed_buf = Array.make (max nedges 1) 0 in
  let rip_buf = Array.make (max nedges 1) 0 in
  let ripped = Array.make (max nedges 1) false in
  let order_len = ref nedges in
  let reset_order () =
    for s = 0 to nedges - 1 do
      order.(s) <- s
    done;
    order_len := nedges
  in
  reset_order ();
  (* Which round last bumped a cell — a round bumps each cell at most once
     even when several ideal paths cross it. *)
  let bump_round = Workspace.scratch_int ws ~slot:3 ~cells:n in
  Array.fill bump_round 0 n (-1);
  (* Outcome of the current [paths] array, in input (slot) order. *)
  let snapshot r =
    let acc = ref [] in
    for s = nedges - 1 downto 0 do
      match paths.(s) with
      | Some p -> acc := (edge_arr.(s).edge_id, p) :: !acc
      | None -> ()
    done;
    let routed = !acc in
    { paths = routed; success = List.length routed = nedges; iterations = r }
  in
  let initial = { paths = []; success = nedges = 0; iterations = 0 } in
  (* Route the slots in [order], claiming as we go; fills
     [failed_buf]/[routed_buf] (hopeless slots are skipped entirely).
     Returns (failed_len, routed_len). *)
  let run_round () =
    let failed_len = ref 0 and routed_len = ref 0 in
    for k = 0 to !order_len - 1 do
      let s = order.(k) in
      if not hopeless.(s) then begin
        match search_edge spec edge_arr.(s) with
        | Some p ->
          paths.(s) <- Some p;
          claim_path s p;
          routed_buf.(!routed_len) <- s;
          incr routed_len
        | None ->
          failed_buf.(!failed_len) <- s;
          incr failed_len
      end
    done;
    (!failed_len, !routed_len)
  in
  (* -- Full reroute: the paper's Algorithm 1, byte-identical to the
        historical implementation (every edge rerouted every round, history
        bumped along every routed path), with the claim layer standing in
        for the per-round obstacle-map copy. *)
  let rec full_loop r best =
    if r >= config.gamma || not (Budget.note_iteration (Workspace.budget ws)) then
      { best with iterations = r }
    else begin
      Workspace.begin_claims ws ~cells:n;
      Array.fill paths 0 nedges None;
      let failed_len, routed_len = run_round () in
      let result = snapshot (r + 1) in
      if failed_len = 0 then result
      else begin
        for k = 0 to routed_len - 1 do
          match paths.(routed_buf.(k)) with
          | Some p -> List.iter (fun q -> bump_cell (idx q)) (Path.points p)
          | None -> ()
        done;
        let best = if better result best then result else best in
        (* Failed edges route first next round (see the .mli note); both
           groups keep this round's relative order. *)
        let m = ref 0 in
        for k = 0 to failed_len - 1 do
          order.(!m) <- failed_buf.(k);
          incr m
        done;
        for k = 0 to routed_len - 1 do
          order.(!m) <- routed_buf.(k);
          incr m
        done;
        full_loop (r + 1) best
      end
    end
  in
  (* -- Incremental: round 1 is identical to the full reroute; afterwards
        paths of undisturbed edges persist (claims and all) and only dirty
        edges — this round's failures plus the owners ripped from under
        their ideal paths — re-enter the next round. *)
  let rec inc_loop r best =
    if r >= config.gamma || not (Budget.note_iteration (Workspace.budget ws)) then
      { best with iterations = r }
    else begin
      let failed_len, _routed_len = run_round () in
      let result = snapshot (r + 1) in
      if result.success then result
      else begin
        let best = if better result best then result else best in
        if failed_len = 0 then
          (* Every missing edge is hopeless; nothing left to negotiate. *)
          { best with iterations = r + 1 }
        else begin
          (* Conflict analysis: bump history where ideal paths cross
             claims, rip the claim owners. Own endpoints are skipped —
             the failed search exempts them, so claims there (sibling
             branch points) never caused the failure. *)
          let rip_len = ref 0 in
          let next_len = ref 0 in
          (* Cells bumped since the current speculation window's probes
             ran; a pending probe that touched none of them saw exactly
             the history the sequential flow would show it. *)
          let bumped = ref [] in
          let apply s probe =
            match probe with
            | None -> hopeless.(s) <- true
            | Some ideal ->
              order.(!next_len) <- s;
              incr next_len;
              let a, b = edge_arr.(s).ends in
              let ai = idx a and bi = idx b in
              List.iter
                (fun q ->
                   let i = idx q in
                   if i <> ai && i <> bi && Workspace.claimed ws i then begin
                     if bump_round.(i) <> r then begin
                       bump_round.(i) <- r;
                       bump_cell i;
                       bumped := i :: !bumped
                     end;
                     let o = owner.(i) in
                     if o >= 0 && not ripped.(o) then begin
                       (match paths.(o) with
                        | Some p ->
                          release_path o p;
                          paths.(o) <- None;
                          ripped.(o) <- true;
                          rip_buf.(!rip_len) <- o;
                          incr rip_len
                        | None -> ())
                     end
                   end)
                (Path.points ideal)
          in
          (match par with
           | None ->
             for k = 0 to failed_len - 1 do
               let s = failed_buf.(k) in
               apply s (search_edge ideal_spec edge_arr.(s))
             done
           | Some sched ->
             (* Speculative parallel ideal probes. Phase A runs a window
                of probes concurrently, each on a leased scratch
                workspace, against the frozen history array ([hcost] is
                only written in phase B). Phase B walks the window in
                [failed_buf] order: a probe is adopted verbatim — its
                search stats absorbed as if it had run on [ws] — unless
                some cell bumped earlier in the window was touched by
                its search (the touched set over-approximates every cell
                whose cost the search read), in which case the probe is
                discarded, unabsorbed, and the search re-runs on [ws]
                against live history. Either way the path, the bumps and
                the stats are bit-identical to the sequential flow.
                Windowing bounds the leased workspaces held at once. *)
             let window = 2 * Pacor_sched.Sched.domains sched in
             let k0 = ref 0 in
             while !k0 < failed_len do
               let base = !k0 in
               let b = min window (failed_len - base) in
               let wss = Array.init b (fun _ -> Workspace_pool.acquire ~cells:n) in
               let probes = Array.make b None in
               Pacor_sched.Sched.parallel_for sched ~n:b (fun j ->
                 let lws = wss.(j) in
                 let e = edge_arr.(failed_buf.(base + j)) in
                 let before = Search_stats.snapshot (Workspace.stats lws) in
                 let p1, p2 = e.ends in
                 let p =
                   Astar.search ~workspace:lws ~grid ~spec:ideal_spec
                     ~sources:[ p1 ] ~targets:[ p2 ] ()
                 in
                 let delta =
                   Search_stats.diff
                     (Search_stats.snapshot (Workspace.stats lws))
                     before
                 in
                 probes.(j) <- Some (p, delta));
               bumped := [];
               for j = 0 to b - 1 do
                 let s = failed_buf.(base + j) in
                 let lws = wss.(j) in
                 let p, delta = Option.get probes.(j) in
                 let valid =
                   List.for_all (fun i -> not (Workspace.touched lws i)) !bumped
                 in
                 if valid then begin
                   Search_stats.absorb (Workspace.stats ws) delta;
                   apply s p
                 end
                 else apply s (search_edge ideal_spec edge_arr.(s));
                 Workspace_pool.release lws
               done;
               k0 := base + b
             done);
          if !rip_len = 0 then
            (* No claim owner could be identified: the next round would
               face the same claims and fail the same way. *)
            { best with iterations = r + 1 }
          else begin
            for k = 0 to !rip_len - 1 do
              order.(!next_len) <- rip_buf.(k);
              incr next_len;
              ripped.(rip_buf.(k)) <- false
            done;
            order_len := !next_len;
            inc_loop (r + 1) best
          end
        end
      end
    end
  in
  match config.mode with
  | Full_reroute ->
    Workspace.begin_claims ws ~cells:n;
    full_loop 0 initial
  | Incremental ->
    Workspace.begin_claims ws ~cells:n;
    let inc = inc_loop 0 initial in
    (* When is the incremental outcome {e provably} no worse than the full
       reroute ((routed, length) lexicographic)? Round-1 success is the
       baseline's own round 1, byte for byte. Beyond that, certify by lower
       bound: every routing's per-edge length is at least that edge's
       unconstrained (obstacle-only) shortest length, so if the incremental
       total {e equals} the sum of those ideals, nothing can beat it. The
       certificate costs one plain A* per edge — far less than rerunning
       the baseline on the congested instances where incremental wins. *)
    let provably_no_worse () =
      inc.success
      && (inc.iterations <= 1
          ||
          (* Per-edge: is every routed path at its unconstrained-shortest
             length? A path already at the Manhattan distance of its
             endpoints is ideal by inspection — no search needed; only
             paths forced around obstacles pay one plain A* each. *)
          let plain = Astar.obstacle_spec obstacles in
          match par with
          | None ->
            let ok = ref true in
            for s = 0 to nedges - 1 do
              if !ok then
                match paths.(s) with
                | None -> ok := false
                | Some p ->
                  let len = Path.length p in
                  let a, b = edge_arr.(s).ends in
                  if len <> Point.manhattan a b then
                    (match search_edge plain edge_arr.(s) with
                     | Some q -> if len <> Path.length q then ok := false
                     | None -> ok := false)
            done;
            !ok
          | Some sched ->
            (* The sequential scan short-circuits: it searches each
               non-trivial slot in order until one fails, and never
               searches past a missing path. Reproduce that exactly:
               probe the searchable prefix in windows (the plain spec
               reads only immutable obstacles, so probes are always
               valid), absorb each probe's stats in slot order up to and
               including the first failure, and discard the rest. *)
            let first_none = ref nedges in
            (try
               for s = 0 to nedges - 1 do
                 match paths.(s) with
                 | None ->
                   first_none := s;
                   raise Exit
                 | Some _ -> ()
               done
             with Exit -> ());
            let cand = ref [] in
            for s = !first_none - 1 downto 0 do
              match paths.(s) with
              | Some p
                when Path.length p
                     <> (let a, b = edge_arr.(s).ends in
                         Point.manhattan a b) ->
                cand := s :: !cand
              | Some _ | None -> ()
            done;
            let cand = Array.of_list !cand in
            let ncand = Array.length cand in
            let window = 2 * Pacor_sched.Sched.domains sched in
            let searches_ok = ref true in
            let k0 = ref 0 in
            while !searches_ok && !k0 < ncand do
              let base = !k0 in
              let b = min window (ncand - base) in
              let wss = Array.init b (fun _ -> Workspace_pool.acquire ~cells:n) in
              let probes = Array.make b None in
              Pacor_sched.Sched.parallel_for sched ~n:b (fun j ->
                let lws = wss.(j) in
                let e = edge_arr.(cand.(base + j)) in
                let before = Search_stats.snapshot (Workspace.stats lws) in
                let p1, p2 = e.ends in
                let p =
                  Astar.search ~workspace:lws ~grid ~spec:plain
                    ~sources:[ p1 ] ~targets:[ p2 ] ()
                in
                let delta =
                  Search_stats.diff
                    (Search_stats.snapshot (Workspace.stats lws))
                    before
                in
                probes.(j) <- Some (Option.map Path.length p, delta));
              for j = 0 to b - 1 do
                (match probes.(j) with
                 | Some (qlen, delta) when !searches_ok ->
                   Search_stats.absorb (Workspace.stats ws) delta;
                   let s = cand.(base + j) in
                   let len =
                     match paths.(s) with
                     | Some p -> Path.length p
                     | None -> assert false
                   in
                   (match qlen with
                    | Some ql -> if len <> ql then searches_ok := false
                    | None -> searches_ok := false)
                 | _ -> ());
                Workspace_pool.release wss.(j)
              done;
              k0 := base + b
            done;
            !searches_ok && !first_none = nedges)
    in
    if provably_no_worse () then inc
    else begin
      (* No certificate: also run the baseline from scratch — fresh
         history, input order — and keep the better outcome. Multi-round
         history pressure in the baseline can settle on globally shorter
         configurations than conflict-local bumping. *)
      Array.fill bumps 0 n 0;
      Array.fill hcost 0 n 0;
      Array.fill paths 0 nedges None;
      Array.fill hopeless 0 nedges false;
      reset_order ();
      let base = full_loop 0 initial in
      if better base inc then base else inc
    end
