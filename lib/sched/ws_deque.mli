(** Chase-Lev work-stealing deque.

    One {e owner} domain pushes and pops at the bottom (LIFO — freshly
    forked subtasks stay hot in the owner's cache); any number of {e thief}
    domains steal from the top (FIFO — the oldest, usually largest, pending
    task migrates first). The fast path is lock-free: owner operations are
    plain array writes plus one [Atomic] store, and a steal is two [Atomic]
    reads, one array read, and one compare-and-set.

    The circular buffer grows geometrically and never shrinks. Growth is
    owner-only and safe against concurrent thieves: a thief that read the
    old buffer validates its element with the [top] CAS, and a replaced
    buffer is never written again, so the stale read is either correct or
    the CAS fails.

    Invariants (logical indices, monotonically increasing):
    - [top <= bottom + 1]; the deque holds elements [top .. bottom - 1].
    - [top] only advances (CAS by thieves, or by the owner taking the last
      element); [bottom] is written by the owner alone.
    - A buffer slot is reused only after [top] has passed its previous
      logical index, which is what makes the pre-CAS element read safe.

    All operations use OCaml 5 sequentially consistent atomics; no
    fences are needed beyond what [Atomic] provides. *)

type 'a t

val create : dummy:'a -> 'a t
(** [dummy] fills empty slots so popped elements do not outlive their
    task for the GC. It is never returned. *)

val push : 'a t -> 'a -> unit
(** Owner only. Amortised O(1); grows the buffer when full. *)

val pop : 'a t -> 'a option
(** Owner only. Takes the most recently pushed element; [None] when
    empty. Competes with thieves for the last element via CAS. *)

type 'a steal_result =
  | Stolen of 'a
  | Empty
  | Retry  (** lost a CAS race with the owner or another thief *)

val steal : 'a t -> 'a steal_result
(** Any domain. Takes the oldest element. [Retry] means contention, not
    emptiness — the caller decides whether to spin or move on. *)

val size : 'a t -> int
(** Snapshot estimate of the element count (racy; >= 0). *)
