(** Work-stealing domain scheduler.

    A scheduler owns a fixed set of worker domains. Each worker has a
    private {!Ws_deque} for the subtasks it forks (owner pushes and pops
    LIFO; thieves steal FIFO), and an idle worker sweeps the other
    workers' deques before falling back to the shared {e injector} queue
    that external callers submit through. A worker that finds nothing
    after a bounded spin parks on a condition variable; any submission
    that makes work visible wakes sleepers, and the park protocol
    re-checks every source under a wake sequence number so a wakeup can
    never be lost.

    Two kinds of task flow through a scheduler:

    - {e Injected} tasks ({!submit}, {!submit_batch}) run only on a
      worker's top-level loop, never inside a {!join} — a joining worker
      helping with an unrelated injected task could re-enter state (such
      as a routing workspace) that the task in progress already holds.
    - {e Forked} tasks ({!scope} / {!fork} / {!parallel_for}) are
      context-free: they may run on any worker, including a worker that
      is currently blocked in {!join} (caller-helping — a join never
      parks, it executes or steals pending subtasks while it waits).

    Determinism contract: the scheduler itself promises nothing about
    execution order — callers get determinism by merging results in fork
    index order ({!parallel_for} writes into caller-indexed slots) and by
    the earliest-index exception rule: when several subtasks of one scope
    raise, {!join} re-raises the one with the smallest fork index,
    whatever order the failures actually happened in. *)

type t

type worker
(** A worker-domain identity within one scheduler. *)

val create : domains:int -> t
(** Spawn [domains] worker domains (>= 1). The calling domain is not a
    worker; it submits work and may fork/join (forks from a non-worker
    context degrade to inline execution, see {!fork}).
    @raise Invalid_argument if [domains < 1]. *)

val domains : t -> int

val self : t -> worker option
(** The calling domain's worker identity in this scheduler, or [None]
    when called from a domain this scheduler does not own. *)

val worker_id : worker -> int
(** Stable index in [0, domains). *)

val submit : t -> (unit -> unit) -> unit
(** Enqueue one injected task. The task must not raise (wrap it).
    @raise Invalid_argument on a scheduler that has been shut down. *)

val submit_batch : t -> (unit -> unit) array -> unit
(** Enqueue many injected tasks under one lock acquisition, preserving
    array order in the injector (workers may still complete them in any
    order). @raise Invalid_argument after shutdown. *)

(** {2 Fork-join} *)

type scope

val scope : t -> (scope -> unit) -> unit
(** [scope t f] runs [f] with a fresh scope and then joins: it returns
    only when every task forked into the scope (including tasks forked
    by subtasks) has settled. If any subtask raised, the exception with
    the smallest fork index is re-raised with its backtrace after all
    subtasks have settled. Scopes nest freely. *)

val fork : scope -> (unit -> unit) -> unit
(** Fork a subtask into the scope. On a worker of the owning scheduler
    this pushes onto the worker's own deque (and wakes a sleeper if any);
    from any other domain the subtask runs inline immediately —
    sequential execution with identical semantics. *)

val parallel_for : t -> n:int -> (int -> unit) -> unit
(** [parallel_for t ~n f] runs [f 0 .. f (n-1)], in parallel when the
    caller is one of [t]'s workers and inline (ascending order) otherwise.
    Joins before returning; earliest-index exception wins. [f] must write
    its result into a caller-owned slot for index [i] — merge order, not
    execution order, is what makes the caller deterministic. *)

(** {2 Lifecycle and introspection} *)

val shutdown : t -> unit
(** Drain the injector, stop and join every worker domain. Idempotent.
    Pending forked subtasks of a live scope must not exist at shutdown
    (callers join their scopes before releasing the scheduler). *)

type stats = {
  steals : int;      (** successful steals across all workers *)
  parks : int;       (** times a worker went to sleep *)
  executed : int;    (** tasks executed (injected + forked) *)
}

val stats : t -> stats
(** Aggregate counters. Exact only while the scheduler is quiescent. *)
