type task = unit -> unit

type worker = {
  wid : int;
  deque : task Ws_deque.t;
  (* Owner-written counters; read by [stats] when quiescent. *)
  mutable steals : int;
  mutable parks : int;
  mutable executed : int;
}

type t = {
  nworkers : int;
  workers : worker array;
  (* Injector: external submissions. Mutex-protected — submission is
     per-batch, not per-subtask, so this lock is off the fork hot path. *)
  injector : task Queue.t;
  inj_size : int Atomic.t;  (* lock-free emptiness probe for idle sweeps *)
  mutex : Mutex.t;
  work_cond : Condition.t;
  closed : bool Atomic.t;
  (* Park protocol state: [sleepers] is read by every producer after
     publishing work (usually 0 — one atomic load); [wake_seq] is bumped
     under [mutex] by every wake so a worker between its final sweep and
     [Condition.wait] detects the wake it would otherwise have missed. *)
  sleepers : int Atomic.t;
  wake_seq : int Atomic.t;
  mutable domains : unit Domain.t array;
}

let nop () = ()

(* Which (scheduler, worker) the current domain belongs to. *)
let dls_key : (Obj.t * worker) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let self t =
  match Domain.DLS.get dls_key with
  | Some (o, w) when o == Obj.repr t -> Some w
  | Some _ | None -> None

let worker_id w = w.wid
let domains t = t.nworkers

(* -- Waking ------------------------------------------------------------- *)

let wake_all t =
  Mutex.lock t.mutex;
  Atomic.incr t.wake_seq;
  Condition.broadcast t.work_cond;
  Mutex.unlock t.mutex

(* Producers call this after publishing work. The sleeper count is
   incremented before a parking worker's final sweep, so a producer that
   reads 0 here is sequenced before that sweep — the sweep finds the new
   task and no wake is needed. *)
let wake_if_sleepers t = if Atomic.get t.sleepers > 0 then wake_all t

(* -- Finding work ------------------------------------------------------- *)

(* One sweep over the other workers' deques, starting after our own
   index. [Retry] spins on the same victim: contention means the deque is
   non-empty, so leaving would miss real work. *)
let try_steal t (w : worker) =
  let n = t.nworkers in
  let rec attempt victim k =
    match Ws_deque.steal victim.deque with
    | Ws_deque.Stolen task ->
      w.steals <- w.steals + 1;
      Some task
    | Ws_deque.Empty -> scan (k + 1)
    | Ws_deque.Retry ->
      Domain.cpu_relax ();
      attempt victim k
  and scan k =
    if k >= n - 1 then None
    else attempt t.workers.((w.wid + 1 + k) mod n) k
  in
  if n <= 1 then None else scan 0

let try_injector t =
  if Atomic.get t.inj_size = 0 then None
  else begin
    Mutex.lock t.mutex;
    let r =
      if Queue.is_empty t.injector then None
      else begin
        Atomic.decr t.inj_size;
        Some (Queue.pop t.injector)
      end
    in
    Mutex.unlock t.mutex;
    r
  end

(* Work sources a joining worker may use: its own forked subtasks and
   other workers' forked subtasks — never the injector (an injected task
   may need exclusive context the joiner already holds). *)
let find_forked t w =
  match Ws_deque.pop w.deque with
  | Some _ as r -> r
  | None -> try_steal t w

let find_any t w =
  match find_forked t w with
  | Some _ as r -> r
  | None -> try_injector t

let exec (w : worker) task =
  w.executed <- w.executed + 1;
  task ()

(* -- Worker loop -------------------------------------------------------- *)

let spin_rounds = 32

let rec worker_loop t w =
  match find_any t w with
  | Some task ->
    exec w task;
    worker_loop t w
  | None ->
    if Atomic.get t.closed then begin
      (* Drain the injector before exiting so shutdown never strands a
         submitted task; forked work cannot exist here (scopes join). *)
      match try_injector t with
      | Some task ->
        exec w task;
        worker_loop t w
      | None -> ()
    end
    else begin
      let found = spin t w spin_rounds in
      if not found then park t w;
      worker_loop t w
    end

and spin t w rounds =
  if rounds = 0 then false
  else begin
    Domain.cpu_relax ();
    match find_any t w with
    | Some task ->
      exec w task;
      true
    | None -> spin t w (rounds - 1)
  end

and park t w =
  Mutex.lock t.mutex;
  let seq = Atomic.get t.wake_seq in
  Atomic.incr t.sleepers;
  Mutex.unlock t.mutex;
  (* Final sweep with the sleeper count visible: any producer that
     publishes after this point sees [sleepers > 0] and wakes us; any
     producer we raced published before the sweep and is found by it. *)
  (match find_any t w with
   | Some task ->
     Atomic.decr t.sleepers;
     exec w task
   | None ->
     Mutex.lock t.mutex;
     if Atomic.get t.wake_seq = seq && not (Atomic.get t.closed)
        && Queue.is_empty t.injector
     then begin
       w.parks <- w.parks + 1;
       Condition.wait t.work_cond t.mutex
     end;
     Atomic.decr t.sleepers;
     Mutex.unlock t.mutex)

(* -- Construction / lifecycle ------------------------------------------- *)

let create ~domains:n =
  if n < 1 then invalid_arg "Sched.create: domains must be >= 1";
  let t =
    {
      nworkers = n;
      workers =
        Array.init n (fun wid ->
          { wid; deque = Ws_deque.create ~dummy:nop; steals = 0; parks = 0;
            executed = 0 });
      injector = Queue.create ();
      inj_size = Atomic.make 0;
      mutex = Mutex.create ();
      work_cond = Condition.create ();
      closed = Atomic.make false;
      sleepers = Atomic.make 0;
      wake_seq = Atomic.make 0;
      domains = [||];
    }
  in
  t.domains <-
    Array.map
      (fun w ->
        Domain.spawn (fun () ->
          Domain.DLS.set dls_key (Some (Obj.repr t, w));
          worker_loop t w))
      t.workers;
  t

let submit_batch t tasks =
  if Atomic.get t.closed then
    invalid_arg "Sched.submit: scheduler has been shut down";
  if Array.length tasks > 0 then begin
    Mutex.lock t.mutex;
    Array.iter (fun task -> Queue.push task t.injector) tasks;
    Atomic.set t.inj_size (Atomic.get t.inj_size + Array.length tasks);
    Atomic.incr t.wake_seq;
    Condition.broadcast t.work_cond;
    Mutex.unlock t.mutex
  end

let submit t task = submit_batch t [| task |]

let shutdown t =
  let was_closed = Atomic.exchange t.closed true in
  if not was_closed then begin
    wake_all t;
    Array.iter Domain.join t.domains
  end

(* -- Fork-join ---------------------------------------------------------- *)

type scope = {
  sched : t;
  pending : int Atomic.t;
  next_idx : int Atomic.t;
  (* Earliest-fork-index failure; CAS keeps the smallest index so the
     re-raise is deterministic whatever order subtasks actually fail in. *)
  fail : (int * exn * Printexc.raw_backtrace) option Atomic.t;
}

let record_failure scope idx exn bt =
  let rec go () =
    let cur = Atomic.get scope.fail in
    let replace = match cur with None -> true | Some (i, _, _) -> idx < i in
    if replace then
      if not (Atomic.compare_and_set scope.fail cur (Some (idx, exn, bt))) then
        go ()
  in
  go ()

let run_subtask scope idx f =
  (match f () with
   | () -> ()
   | exception exn ->
     record_failure scope idx exn (Printexc.get_raw_backtrace ()));
  Atomic.decr scope.pending

let fork scope f =
  let idx = Atomic.fetch_and_add scope.next_idx 1 in
  Atomic.incr scope.pending;
  match self scope.sched with
  | Some w ->
    Ws_deque.push w.deque (fun () -> run_subtask scope idx f);
    wake_if_sleepers scope.sched
  | None ->
    (* Non-worker context: inline execution, sequential semantics. *)
    run_subtask scope idx f

let join scope =
  let t = scope.sched in
  let help = self t in
  let rec wait () =
    if Atomic.get scope.pending > 0 then begin
      (match help with
       | Some w ->
         (* Caller-helping: run pending forked subtasks (ours first,
            then steal) instead of blocking a domain. Never parks and
            never touches the injector. *)
         (match find_forked t w with
          | Some task -> exec w task
          | None -> Domain.cpu_relax ())
       | None -> Domain.cpu_relax ());
      wait ()
    end
  in
  wait ();
  match Atomic.get scope.fail with
  | Some (_, exn, bt) -> Printexc.raise_with_backtrace exn bt
  | None -> ()

let scope t f =
  let s =
    { sched = t; pending = Atomic.make 0; next_idx = Atomic.make 0;
      fail = Atomic.make None }
  in
  (* The body itself may raise after forking: join first so no subtask
     outlives the scope, then report — body failure wins over subtask
     failures, matching a plain sequential [f] as closely as possible. *)
  match f s with
  | () -> join s
  | exception exn ->
    let bt = Printexc.get_raw_backtrace () in
    (try join s with _ -> ());
    Printexc.raise_with_backtrace exn bt

let parallel_for t ~n f =
  if n = 1 then f 0
  else if n > 1 then begin
    match self t with
    | None ->
      for i = 0 to n - 1 do
        f i
      done
    | Some _ ->
      scope t (fun s ->
        for i = 0 to n - 1 do
          fork s (fun () -> f i)
        done)
  end

(* -- Introspection ------------------------------------------------------ *)

type stats = {
  steals : int;
  parks : int;
  executed : int;
}

let stats t =
  Array.fold_left
    (fun acc (w : worker) ->
      { steals = acc.steals + w.steals;
        parks = acc.parks + w.parks;
        executed = acc.executed + w.executed })
    { steals = 0; parks = 0; executed = 0 }
    t.workers
