type 'a buf = {
  data : 'a array;
  mask : int;  (* capacity - 1; capacity is a power of two *)
}

type 'a t = {
  mutable buf : 'a buf;  (* replaced by the owner on growth only *)
  dummy : 'a;
  top : int Atomic.t;     (* thief end: next logical index to steal *)
  bottom : int Atomic.t;  (* owner end: next logical index to push *)
}

let create ~dummy =
  {
    buf = { data = Array.make 16 dummy; mask = 15 };
    dummy;
    top = Atomic.make 0;
    bottom = Atomic.make 0;
  }

(* Copy the live range [tp, b) into a buffer twice the size. The old
   buffer is never written again, so thieves holding it still read the
   correct element for any logical index their [top] CAS can validate. *)
let grow t b tp =
  let old = t.buf in
  let cap = 2 * (old.mask + 1) in
  let data = Array.make cap t.dummy in
  for i = tp to b - 1 do
    data.(i land (cap - 1)) <- old.data.(i land old.mask)
  done;
  t.buf <- { data; mask = cap - 1 }

let push t x =
  let b = Atomic.get t.bottom in
  let tp = Atomic.get t.top in
  if b - tp > t.buf.mask then grow t b tp;
  let buf = t.buf in
  buf.data.(b land buf.mask) <- x;
  Atomic.set t.bottom (b + 1)

let pop t =
  let b = Atomic.get t.bottom - 1 in
  Atomic.set t.bottom b;
  let tp = Atomic.get t.top in
  if b < tp then begin
    (* Already empty; undo the reservation. *)
    Atomic.set t.bottom tp;
    None
  end
  else if b > tp then begin
    let buf = t.buf in
    let i = b land buf.mask in
    let x = buf.data.(i) in
    buf.data.(i) <- t.dummy;
    Some x
  end
  else begin
    (* Last element: race thieves for it through [top]. Either way the
       deque ends up empty with [top = bottom = tp + 1]. *)
    let won = Atomic.compare_and_set t.top tp (tp + 1) in
    Atomic.set t.bottom (tp + 1);
    if won then begin
      let buf = t.buf in
      let i = b land buf.mask in
      let x = buf.data.(i) in
      buf.data.(i) <- t.dummy;
      Some x
    end
    else None
  end

type 'a steal_result =
  | Stolen of 'a
  | Empty
  | Retry

let steal t =
  (* Read order matters: [top] before [bottom] (Lê et al. 2013). *)
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if tp >= b then Empty
  else begin
    let buf = t.buf in
    let x = buf.data.(tp land buf.mask) in
    if Atomic.compare_and_set t.top tp (tp + 1) then Stolen x else Retry
  end

let size t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if b > tp then b - tp else 0
