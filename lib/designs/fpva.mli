(** FPVA-style regular valve-array generator.

    Fully programmable valve arrays place their control valves on a
    uniform (row, column) lattice, unlike the irregular layouts of
    {!Synthetic}. The regularity makes them the natural corpus for the
    fault-sweep experiments: every instance of the family stresses the
    same structure at a different scale, so repair-vs-reroute numbers are
    comparable across sizes.

    Valves sit on a [rows x cols] lattice with the given cell [pitch];
    each row is chunked into consecutive runs of [group] valves that form
    one length-matched cluster (leftovers become singletons). Activation
    sequences make clusters pairwise incompatible and members identical,
    so the clustering stage reproduces the lattice grouping exactly. Pins
    are evenly spaced boundary cells, [seed]-rotated around the ring,
    with slack over the valve count so declustering stays feasible. *)

type spec = {
  name : string;
  rows : int;
  cols : int;
  pitch : int;   (** lattice spacing in cells, >= 2 *)
  group : int;   (** valves per length-matched cluster, >= 1 (1 = no LM) *)
  seed : int64;  (** rotates the pin ring; layout itself is rigid *)
  delta : int;
}

val generate : spec -> (Pacor.Problem.t, string) result
(** Deterministic for a fixed spec. Errors when the spec cannot fit
    (degenerate dimensions, not enough boundary cells for the pins). *)

val generate_exn : spec -> Pacor.Problem.t

val family : unit -> spec list
(** The benchmark family: [fpva-4x4] and [fpva-6x6] (pair clusters) and
    [fpva-8x8] (3-valve tree clusters), pitch 4, fixed seeds. *)
