let variants =
  [ Pacor.Config.Without_selection; Pacor.Config.Detour_first; Pacor.Config.Full ]

(* Batch jobs come back pre-validated: an [Ok] item passed
   [Solution.validate] inside the runner, so only the error arm needs
   translation here. *)
let checked_stats ~variant
    (solution : (Pacor.Solution.t, Pacor_par.Batch.job_error) result) =
  match solution with
  | Error e ->
    Error
      (Printf.sprintf "%s failed: %s" (Pacor.Config.variant_name variant)
         (Pacor_par.Batch.error_to_string e))
  | Ok sol -> Ok (Pacor.Solution.stats sol)

(* One batch job per (design, variant): Table 2's whole grid of runs is
   embarrassingly parallel, and routing each variant independently on the
   pool leaves every row identical to the sequential harness. *)
let measure_problems ?(progress = fun _ -> ()) ?(jobs = 1)
    ?(limits = Pacor_route.Budget.no_limits) ?retries problems =
  let job_of (problem : Pacor.Problem.t) variant =
    Pacor_par.Batch.job
      ~config:{ (Pacor.Config.make ~variant ()) with limits }
      ~name:
        (Printf.sprintf "%s/%s" problem.Pacor.Problem.name
           (Pacor.Config.variant_name variant))
      problem
  in
  let summary =
    Pacor_par.Batch.run ~jobs ?retries
      (List.concat_map (fun p -> List.map (job_of p) variants) problems)
  in
  (* Items come back in job order: three consecutive per design. *)
  let rec rows acc problems (items : Pacor_par.Batch.item list) =
    match problems, items with
    | [], [] -> Ok (List.rev acc)
    | (p : Pacor.Problem.t) :: prest, wosel :: detour :: pacor :: irest ->
      let stats variant (i : Pacor_par.Batch.item) =
        checked_stats ~variant i.Pacor_par.Batch.solution
      in
      (match
         stats Pacor.Config.Without_selection wosel,
         stats Pacor.Config.Detour_first detour,
         stats Pacor.Config.Full pacor
       with
       | Ok without_sel, Ok detour_first, Ok pacor ->
         let row =
           Pacor.Report.row_of_stats ~design:p.Pacor.Problem.name ~without_sel
             ~detour_first ~pacor
         in
         progress p.Pacor.Problem.name;
         rows (row :: acc) prest irest
       | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e)
    | _ -> Error "harness: batch returned a different number of items"
  in
  rows [] problems summary.Pacor_par.Batch.items

let measure_problem ?jobs ?limits ?retries problem =
  match measure_problems ?jobs ?limits ?retries [ problem ] with
  | Error _ as e -> e
  | Ok [ row ] -> Ok row
  | Ok _ -> Error "harness: expected exactly one row"

let measure_design ?jobs ?limits ?retries name =
  match Table1.load name with
  | Error _ as e -> e
  | Ok problem -> measure_problem ?jobs ?limits ?retries problem

let measure_table2 ?progress ?jobs ?limits ?retries names =
  let rec load acc = function
    | [] -> Ok (List.rev acc)
    | n :: rest ->
      (match Table1.load n with
       | Error _ as e -> e
       | Ok problem -> load (problem :: acc) rest)
  in
  match load [] names with
  | Error _ as e -> e
  | Ok problems -> measure_problems ?progress ?jobs ?limits ?retries problems
