let variants =
  [ Pacor.Config.Without_selection; Pacor.Config.Detour_first; Pacor.Config.Full ]

let checked_stats ~variant (solution : (Pacor.Solution.t, string) result) =
  match solution with
  | Error e ->
    Error (Printf.sprintf "%s failed: %s" (Pacor.Config.variant_name variant) e)
  | Ok sol ->
    (match Pacor.Solution.validate sol with
     | Ok () -> Ok (Pacor.Solution.stats sol)
     | Error es ->
       Error
         (Printf.sprintf "%s produced an invalid solution: %s"
            (Pacor.Config.variant_name variant)
            (String.concat "; " es)))

(* One batch job per (design, variant): Table 2's whole grid of runs is
   embarrassingly parallel, and routing each variant independently on the
   pool leaves every row identical to the sequential harness. *)
let measure_problems ?(progress = fun _ -> ()) ?(jobs = 1) problems =
  let job_of (problem : Pacor.Problem.t) variant =
    Pacor_par.Batch.job
      ~config:(Pacor.Config.make ~variant ())
      ~name:
        (Printf.sprintf "%s/%s" problem.Pacor.Problem.name
           (Pacor.Config.variant_name variant))
      problem
  in
  let summary =
    Pacor_par.Batch.run ~jobs
      (List.concat_map (fun p -> List.map (job_of p) variants) problems)
  in
  (* Items come back in job order: three consecutive per design. *)
  let rec rows acc problems (items : Pacor_par.Batch.item list) =
    match problems, items with
    | [], [] -> Ok (List.rev acc)
    | (p : Pacor.Problem.t) :: prest, wosel :: detour :: pacor :: irest ->
      let stats variant (i : Pacor_par.Batch.item) =
        checked_stats ~variant i.Pacor_par.Batch.solution
      in
      (match
         stats Pacor.Config.Without_selection wosel,
         stats Pacor.Config.Detour_first detour,
         stats Pacor.Config.Full pacor
       with
       | Ok without_sel, Ok detour_first, Ok pacor ->
         let row =
           Pacor.Report.row_of_stats ~design:p.Pacor.Problem.name ~without_sel
             ~detour_first ~pacor
         in
         progress p.Pacor.Problem.name;
         rows (row :: acc) prest irest
       | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e)
    | _ -> Error "harness: batch returned a different number of items"
  in
  rows [] problems summary.Pacor_par.Batch.items

let measure_problem ?jobs problem =
  match measure_problems ?jobs [ problem ] with
  | Error _ as e -> e
  | Ok [ row ] -> Ok row
  | Ok _ -> Error "harness: expected exactly one row"

let measure_design ?jobs name =
  match Table1.load name with
  | Error _ as e -> e
  | Ok problem -> measure_problem ?jobs problem

let measure_table2 ?progress ?jobs names =
  let rec load acc = function
    | [] -> Ok (List.rev acc)
    | n :: rest ->
      (match Table1.load n with
       | Error _ as e -> e
       | Ok problem -> load (problem :: acc) rest)
  in
  match load [] names with
  | Error _ as e -> e
  | Ok problems -> measure_problems ?progress ?jobs problems
