(** Delta-sweep experiment (an extension study beyond the paper's Table 2):
    how does the length-matching threshold [delta] trade off against the
    number of matched clusters and the total channel length?

    The paper fixes [delta = 1]; sweeping it quantifies how much of the
    matching comes "for free" from DME balance (already matched at
    [delta = 0] up to parity) versus from detouring. *)

type sample = {
  delta : int;
  matched : int;
  clusters : int;
  total_length : int;
  completion : float;
}

val run :
  ?variant:Pacor.Config.variant ->
  ?jobs:int ->
  ?limits:Pacor_route.Budget.limits ->
  ?retries:int ->
  deltas:int list ->
  Pacor.Problem.t ->
  (sample list, string) result
(** Route the instance once per threshold. Deterministic: the sweep points
    are independent routing jobs, so [jobs > 1] shards them across a
    {!Pacor_par.Pool} without changing any sample (default 1). [limits]
    budgets each point's run and [retries] re-attempts failing points
    under a relaxed config; a point that fails every attempt fails the
    sweep. *)

val run_design :
  ?variant:Pacor.Config.variant ->
  ?jobs:int ->
  ?limits:Pacor_route.Budget.limits ->
  ?retries:int ->
  deltas:int list ->
  string ->
  (sample list, string) result

val pp_table : Format.formatter -> sample list -> unit
