(** Deterministic splitmix64 PRNG for benchmark generation.

    The published Chip1/Chip2 layouts are proprietary; our stand-ins must be
    reproducible bit for bit across runs and machines, so the generators use
    this fixed-seed PRNG instead of [Random]. *)

type t

val create : seed:int64 -> t
val next : t -> int64
val int : t -> bound:int -> int
(** Uniform in [0, bound); [bound > 0]. *)

val bool : t -> bool
val pick : t -> 'a list -> 'a
(** Uniform element, one list walk per draw; raises [Invalid_argument] on an
    empty list (never a bare [Failure "nth"]). *)

val pick_array : t -> 'a array -> 'a
(** Uniform element from an array — the O(1) variant for hot loops that can
    index their site population once. Raises [Invalid_argument] on empty. *)

val shuffle : t -> 'a list -> 'a list
