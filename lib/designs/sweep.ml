type sample = {
  delta : int;
  matched : int;
  clusters : int;
  total_length : int;
  completion : float;
}

let run ?(variant = Pacor.Config.Full) ?(jobs = 1)
    ?(limits = Pacor_route.Budget.no_limits) ?retries ~deltas problem =
  let config = { (Pacor.Config.make ~variant ()) with limits } in
  (* Re-threshold the instance once per point up front; every point is
     then an independent routing job for the domain pool. *)
  let rec prepare acc = function
    | [] -> Ok (List.rev acc)
    | delta :: rest ->
      (match Pacor.Problem.with_delta problem delta with
       | Error _ as e -> e
       | Ok p -> prepare ((delta, p) :: acc) rest)
  in
  match prepare [] deltas with
  | Error e -> Error e
  | Ok points ->
    let summary =
      Pacor_par.Batch.run ~jobs ?retries
        (List.map
           (fun (delta, p) ->
              Pacor_par.Batch.job ~config
                ~name:(Printf.sprintf "delta=%d" delta)
                p)
           points)
    in
    let rec collect acc points (items : Pacor_par.Batch.item list) =
      match points, items with
      | [], [] -> Ok (List.rev acc)
      | (delta, _) :: prest, item :: irest ->
        (match item.Pacor_par.Batch.solution with
         | Error e ->
           Error
             (Printf.sprintf "delta=%d: %s" delta
                (Pacor_par.Batch.error_to_string e))
         | Ok sol ->
           let stats = Pacor.Solution.stats sol in
           let sample =
             {
               delta;
               matched = stats.matched_clusters;
               clusters = stats.clusters;
               total_length = stats.total_length;
               completion = stats.completion;
             }
           in
           collect (sample :: acc) prest irest)
      | _ -> Error "sweep: batch returned a different number of items"
    in
    collect [] points summary.Pacor_par.Batch.items

let run_design ?variant ?jobs ?limits ?retries ~deltas name =
  match Table1.load name with
  | Error _ as e -> e
  | Ok problem -> run ?variant ?jobs ?limits ?retries ~deltas problem

let pp_table ppf samples =
  Format.fprintf ppf "%6s %10s %12s %12s@." "delta" "matched" "total_len" "completion";
  List.iter
    (fun s ->
       Format.fprintf ppf "%6d %6d/%-3d %12d %11.0f%%@." s.delta s.matched s.clusters
         s.total_length (100.0 *. s.completion))
    samples
