type t = { mutable state : int64 }

let create ~seed = { state = seed }

(* splitmix64 (Steele, Lea, Flood 2014). *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t ~bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let bool t = Int64.logand (next t) 1L = 1L

(* One list walk per draw: the former [List.nth xs (int t ~bound:(List.length
   xs))] walked the list once for the length and again for the element — and
   would surface an empty list as [Failure "nth"] rather than a named error. *)
let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | [ x ] -> x
  | xs ->
    let arr = Array.of_list xs in
    arr.(int t ~bound:(Array.length arr))

let pick_array t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick_array: empty array";
  arr.(int t ~bound:(Array.length arr))

let shuffle t xs =
  let tagged = List.map (fun x -> (next t, x)) xs in
  List.map snd (List.sort (fun (a, _) (b, _) -> Int64.compare a b) tagged)
