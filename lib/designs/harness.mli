(** Shared experiment harness: run the three Table 2 flow variants on a
    design and collect a report row. Used by both the CLI and the bench.

    Every measurement routes each (design, variant) pair as an independent
    job on a {!Pacor_par.Batch} pool; [jobs] (default 1) sets the number
    of worker domains. Rows and stats are identical whatever [jobs] is —
    only wall-clock changes. *)

val measure_problem : ?jobs:int -> Pacor.Problem.t -> (Pacor.Report.row, string) result
(** Runs "w/o Sel", "Detour First" and PACOR on the instance, validating
    each solution; any validation failure is an error. *)

val measure_design : ?jobs:int -> string -> (Pacor.Report.row, string) result
(** [measure_design name] loads a Table 1 design and measures it. *)

val measure_problems :
  ?progress:(string -> unit) ->
  ?jobs:int ->
  Pacor.Problem.t list ->
  (Pacor.Report.row list, string) result
(** Measure several already-loaded instances; [progress] fires once per
    design, in input order, as its row is assembled. *)

val measure_table2 :
  ?progress:(string -> unit) ->
  ?jobs:int ->
  string list ->
  (Pacor.Report.row list, string) result
(** Measure several designs by name, reporting progress through
    [progress]. *)
