(** Shared experiment harness: run the three Table 2 flow variants on a
    design and collect a report row. Used by both the CLI and the bench.

    Every measurement routes each (design, variant) pair as an independent
    job on a {!Pacor_par.Batch} pool; [jobs] (default 1) sets the number
    of worker domains. Rows and stats are identical whatever [jobs] is —
    only wall-clock changes.

    [limits] (default {!Pacor_route.Budget.no_limits}) installs a search
    budget on every run, and [retries] (default 0) lets the batch runner
    re-attempt failing (design, variant) jobs under a relaxed config —
    a permanently failing job still fails the whole measurement, since a
    Table 2 row with holes is meaningless. *)

val measure_problem :
  ?jobs:int ->
  ?limits:Pacor_route.Budget.limits ->
  ?retries:int ->
  Pacor.Problem.t ->
  (Pacor.Report.row, string) result
(** Runs "w/o Sel", "Detour First" and PACOR on the instance, validating
    each solution; any validation failure is an error. *)

val measure_design :
  ?jobs:int ->
  ?limits:Pacor_route.Budget.limits ->
  ?retries:int ->
  string ->
  (Pacor.Report.row, string) result
(** [measure_design name] loads a Table 1 design and measures it. *)

val measure_problems :
  ?progress:(string -> unit) ->
  ?jobs:int ->
  ?limits:Pacor_route.Budget.limits ->
  ?retries:int ->
  Pacor.Problem.t list ->
  (Pacor.Report.row list, string) result
(** Measure several already-loaded instances; [progress] fires once per
    design, in input order, as its row is assembled. *)

val measure_table2 :
  ?progress:(string -> unit) ->
  ?jobs:int ->
  ?limits:Pacor_route.Budget.limits ->
  ?retries:int ->
  string list ->
  (Pacor.Report.row list, string) result
(** Measure several designs by name, reporting progress through
    [progress]. *)
