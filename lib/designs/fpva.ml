open Pacor_geom
open Pacor_grid
open Pacor_valve

type spec = {
  name : string;
  rows : int;
  cols : int;
  pitch : int;
  group : int;
  seed : int64;
  delta : int;
}

let margin = 3

(* Same construction as [Synthetic.group_sequence]: group [g] is open at
   step [g], closed at every other group's step, don't-care beyond — so
   groups are pairwise incompatible and members identical. *)
let group_sequence ~groups g =
  let steps = max 8 groups in
  Array.init steps (fun i ->
    if i >= groups then Activation.Dont_care
    else if i = g then Activation.Open
    else Activation.Closed)

let generate spec =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  if spec.rows < 1 || spec.cols < 1 then err "empty lattice"
  else if spec.pitch < 2 then err "pitch must be >= 2"
  else if spec.group < 1 then err "group must be >= 1"
  else if spec.delta < 0 then err "negative delta"
  else begin
    let width = (2 * margin) + (spec.pitch * (spec.cols - 1)) + 1 in
    let height = (2 * margin) + (spec.pitch * (spec.rows - 1)) + 1 in
    let grid = Routing_grid.create ~width ~height () in
    (* Row-major lattice, chunked into runs of [group] per row. A chunk of
       one valve (the row remainder, or group = 1) is a singleton — its
       length matching would be trivial, so it carries no LM cluster. *)
    let chunks =
      List.concat_map
        (fun r ->
           let rec chunk c acc =
             if c >= spec.cols then List.rev acc
             else begin
               let n = min spec.group (spec.cols - c) in
               chunk (c + n) ((r, c, n) :: acc)
             end
           in
           chunk 0 [])
        (List.init spec.rows (fun r -> r))
    in
    let groups = List.length chunks in
    let next_valve = ref 0 in
    let valves_of_chunk gi (r, c0, n) =
      List.init n (fun i ->
        let id = !next_valve in
        incr next_valve;
        let position =
          Point.make (margin + (spec.pitch * (c0 + i))) (margin + (spec.pitch * r))
        in
        Valve.make ~id ~position ~sequence:(group_sequence ~groups gi))
    in
    let clustered = List.mapi (fun gi ch -> (gi, valves_of_chunk gi ch)) chunks in
    let valves = List.concat_map snd clustered in
    let lm_clusters =
      List.filter_map
        (fun (gi, vs) ->
           if List.length vs >= 2 then
             Some (Cluster.make_exn ~id:gi ~length_matched:true vs)
           else None)
        clustered
    in
    let valve_count = List.length valves in
    let pin_count = valve_count + max 4 (valve_count / 8) in
    let candidates = List.filter (Routing_grid.free grid) (Routing_grid.boundary_points grid) in
    let n = List.length candidates in
    if n < pin_count then
      err "%s: %d boundary cells cannot host %d pins" spec.name n pin_count
    else begin
      let rng = Rng.create ~seed:spec.seed in
      let offset = Rng.int rng ~bound:n in
      let stride = float_of_int n /. float_of_int pin_count in
      let arr = Array.of_list candidates in
      let pins =
        List.init pin_count (fun i ->
          arr.((offset + int_of_float (float_of_int i *. stride)) mod n))
      in
      let pins = List.sort_uniq Point.compare pins in
      Pacor.Problem.create ~name:spec.name ~grid ~valves ~lm_clusters ~pins
        ~delta:spec.delta ()
    end
  end

let generate_exn spec =
  match generate spec with
  | Ok p -> p
  | Error msg -> invalid_arg ("Fpva.generate: " ^ msg)

let family () =
  [
    { name = "fpva-4x4"; rows = 4; cols = 4; pitch = 4; group = 2; seed = 11L; delta = 2 };
    { name = "fpva-6x6"; rows = 6; cols = 6; pitch = 4; group = 2; seed = 12L; delta = 2 };
    { name = "fpva-8x8"; rows = 8; cols = 8; pitch = 4; group = 3; seed = 13L; delta = 2 };
  ]
