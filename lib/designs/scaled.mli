(** Chip1-like synthetic family parameterised by a linear scale factor.

    [Scaled s] is a square chip of side [168 * s] cells whose valve,
    cluster, pin and obstacle counts grow linearly in [s] — so the area
    grows quadratically while the routing content grows linearly, the
    regime hierarchical routing exists for. [s = 6] crosses 1,000,000
    cells. Deterministic per scale (fixed seed), loadable from the CLI as
    [pacor designs --emit Scaled3]. *)

val max_scale : int
(** Largest supported scale (8: a 1344x1344 grid). *)

val scales : int list
(** [1 .. max_scale]. *)

val name : int -> string
(** ["Scaled3"] for scale 3. *)

val of_name : string -> int option
(** Inverse of {!name}; [None] for other strings or out-of-range scales. *)

val spec : int -> Synthetic.spec
(** Raises [Invalid_argument] outside [1 .. max_scale]. *)

val load : int -> (Pacor.Problem.t, string) result
val load_exn : int -> Pacor.Problem.t
