(* Chip1-like synthetic family parameterised by a linear scale factor:
   the workload behind [bench --hier-bench] and the hierarchical-routing
   scaling study. Content (clusters, valves, pins, obstacles) grows
   linearly with the scale while the area grows quadratically, which is
   how real chips grow — routing becomes sparser, and a flat search pays
   ever more for exploring area the connections never needed. *)

let max_scale = 8

let name s = Printf.sprintf "Scaled%d" s

let of_name n =
  let prefix = "Scaled" in
  let pl = String.length prefix in
  if String.length n > pl && String.sub n 0 pl = prefix then
    match int_of_string_opt (String.sub n pl (String.length n - pl)) with
    | Some s when s >= 1 && s <= max_scale -> Some s
    | _ -> None
  else None

let scales = List.init max_scale (fun i -> i + 1)

let spec s =
  if s < 1 || s > max_scale then invalid_arg "Scaled.spec: scale out of range";
  let side = 168 * s in
  {
    (* Chip1's mix shrunk to a per-scale unit: pairs, triples, quads in
       ratio 4:2:1, singletons alongside — [s = 6] crosses 1000x1000
       cells with 156 valves in 42 multi-valve clusters. *)
    Synthetic.name = name s;
    width = side;
    height = side;
    obstacle_cells = 40 * s;
    lm_cluster_sizes =
      List.concat
        [ List.init (4 * s) (fun _ -> 2);
          List.init (2 * s) (fun _ -> 3);
          List.init s (fun _ -> 4) ];
    singleton_valves = 8 * s;
    pin_count = 60 * s;
    seed = Int64.of_int (Hashtbl.hash ("pacor-scaled-" ^ string_of_int s) + 1);
    delta = 2;
  }

let load s = Synthetic.generate (spec s)
let load_exn s = Synthetic.generate_exn (spec s)
