(** Unit-capacity min-cost max-flow specialised for the escape network.

    The escape graph has unit capacities and arc costs of 0 or 1 only, and
    its arc set is identical for the feasibility probe and the routing
    solve. This solver exploits that: the adjacency is a CSR (compressed
    sparse row) structure with byte-packed costs and residual capacities,
    built exactly once from a deterministic arc emitter and reusable across
    solves via {!reset}; augmentation runs successive shortest paths with
    persistent Johnson potentials, 0-1-BFS while the potentials are all
    zero and early-exit Dijkstra afterwards, with all per-round state
    generation-stamped in a {!Pacor_route.Workspace} — allocation-free
    after warm-up.

    Cross-checked against the general {!Mcmf} (Dijkstra) and {!Mcmf_spfa}
    solvers by the escape tests and bench: all three produce the same
    (flow, cost) optimum. *)

type t

type outcome = {
  flow : int;
  cost : int;
  rounds : int;  (** augmentation searches run, including the final one
                     that found no path (or hit the cost threshold) *)
}

val build :
  n:int ->
  source:int ->
  sink:int ->
  emit_arcs:((src:int -> dst:int -> cost:int -> unit) -> unit) ->
  t
(** [build ~n ~source ~sink ~emit_arcs] constructs the CSR network.
    [emit_arcs emit] must call [emit ~src ~dst ~cost] once per forward arc
    (capacity 1, cost 0 or 1); it is invoked {e twice} — a counting pass
    and a fill pass — so it must emit the same arcs in the same order both
    times (a mismatch raises [Invalid_argument]). Arcs keep emission order
    within each node's CSR row; reverse arcs are interleaved at their own
    endpoints. *)

val node_count : t -> int

val arc_count : t -> int
(** Directed arcs including reverses: twice the emitted count. *)

val solve :
  ?alive:(unit -> bool) ->
  ?workspace:Pacor_route.Workspace.t ->
  ?stop_when_cost_reaches:int ->
  t ->
  outcome
(** Min-cost max-flow by successive shortest paths. [alive] is polled
    between augmentation rounds; [workspace] supplies the reusable
    dist/parent/queue state (a private one is created when absent) and its
    attached {!Pacor_route.Budget} is charged one tick per settle, so an
    exhausted budget stops the solve mid-round with the flow found so far.
    [stop_when_cost_reaches] stops {e before} augmenting a path whose true
    cost reaches the threshold. A network solves once; {!reset} re-arms
    it. *)

val max_flow :
  ?alive:(unit -> bool) ->
  ?workspace:Pacor_route.Workspace.t ->
  t ->
  int
(** Max flow with costs ignored (plain BFS augmentation): the feasibility
    probe. Counts as the network's one solve; {!reset} re-arms it. *)

val reset : t -> unit
(** Restore initial capacities and zero potentials, keeping the CSR
    structure — so one built network serves the feasibility probe, the
    solve, and any retry. *)

val decompose_paths : t -> int list list
(** Split the computed flow into source->sink unit node-paths, consuming
    it. Deterministic tie-break: at every node the walk follows the
    lowest-CSR-index forward arc still carrying flow, i.e. the first such
    arc in emission order. Iterative — safe on paths of any length. *)
