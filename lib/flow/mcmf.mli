(** Minimum-cost maximum-flow (successive shortest paths with potentials).

    Stands in for the LP solver of the paper's escape-routing formulation
    (Sec. 5). The escape network has integral capacities and a totally
    unimodular constraint matrix, so the integral optimum computed here
    coincides with the LP optimum the paper obtains from Gurobi.

    Costs may be negative on edges out of the super source (the [-beta]
    reward for completing a path); an initial Bellman–Ford pass establishes
    feasible potentials, after which Dijkstra drives the augmentations. *)

type t

val create : int -> t
(** [create n] makes an empty network on nodes [0 .. n-1]. *)

val node_count : t -> int

val add_edge : t -> src:int -> dst:int -> cap:int -> cost:int -> unit
(** Directed edge. Capacities must be non-negative. *)

type outcome = {
  flow : int;   (** total units pushed from [source] *)
  cost : int;   (** total cost of the pushed flow *)
}

val solve :
  ?alive:(unit -> bool) ->
  ?flow_target:int ->
  ?stop_when_cost_reaches:int ->
  t ->
  source:int ->
  sink:int ->
  outcome
(** Augments along successively shortest paths. Stops when the target is
    met, no augmenting path exists, or the cheapest augmenting path costs at
    least [stop_when_cost_reaches] (when given). [alive] (default always
    true) is polled once per augmentation round: when it turns false the
    solve stops early with the flow pushed so far, which is a valid (if
    partial) integral flow — {!decompose_paths} still works. Cancellation
    granularity is one round, i.e. one Dijkstra over the network. Because augmenting-path
    costs are non-decreasing under successive shortest paths, the threshold
    variant computes the min-cost flow of the implicit objective
    [sum cost - threshold * flow] — the paper's [-beta] reward for each
    completed escape path, without negative edges in the network. Can be
    called once per network. *)

val flow_on : t -> src:int -> dst:int -> int
(** Total flow currently assigned to edges [src -> dst]. *)

val outgoing_flow : t -> int -> (int * int) list
(** [(dst, flow)] for every positive-flow edge out of the node. *)

val decompose_paths : t -> source:int -> sink:int -> int list list
(** Destructively decompose the computed flow into unit paths from source to
    sink (each returned as the node sequence including both endpoints).
    Assumes all edge capacities are 1 on the paths (true for the escape
    network); call after {!solve}. *)
