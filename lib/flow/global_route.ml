(* Tile-level global assignment for hierarchical routing.

   Reuses the escape solver's CSR min-cost-flow machinery one level up:
   nodes are tiles instead of cells, arcs are tile-boundary crossings
   instead of cell steps, and each request (a cluster's escape, in the
   engine's use) is one unit of flow from its start tiles to any tile
   holding unclaimed pins. Crossing arcs cost 1 and are replicated up to
   [max_parallel] per boundary (capped by the boundary's free-cell-pair
   capacity), so the optimum routes as many requests as possible first
   and then minimises total crossings — spreading traffic across parallel
   boundaries once a corridor saturates, which is the congestion term of
   the global stage. Tile-interior capacity is deliberately not modelled:
   the detailed stage negotiates cell conflicts, and the corridors only
   need to be {e plausible}, never binding (every detailed search falls
   back to the whole grid when its corridor fails). *)

open Pacor_grid

(* Crossing arcs replicated per tile boundary: enough that a few escapes
   can share a corridor, few enough that the arc count stays linear in
   tiles. *)
let max_parallel = 16

let assign ?alive ?workspace tg ~pins_per_tile ~start_tiles =
  let tcount = Tile_graph.tile_count tg in
  if Array.length pins_per_tile <> tcount then
    invalid_arg "Global_route.assign: pins_per_tile length mismatch";
  let reqs = Array.of_list (List.map (List.sort_uniq compare) start_tiles) in
  let nreq = Array.length reqs in
  let result = Array.make nreq None in
  if nreq = 0 then result
  else begin
    let n = tcount + nreq + 2 in
    let source = tcount + nreq and sink = tcount + nreq + 1 in
    let emit_arcs f =
      for t = 0 to tcount - 1 do
        Tile_graph.iter_neighbours tg t (fun u ->
          let c = min max_parallel (Tile_graph.boundary_capacity tg t u) in
          for _ = 1 to c do
            f ~src:t ~dst:u ~cost:1
          done);
        for _ = 1 to pins_per_tile.(t) do
          f ~src:t ~dst:sink ~cost:0
        done
      done;
      Array.iteri
        (fun k tiles ->
          f ~src:source ~dst:(tcount + k) ~cost:0;
          List.iter
            (fun t ->
              if t >= 0 && t < tcount then f ~src:(tcount + k) ~dst:t ~cost:0)
            tiles)
        reqs
    in
    let net = Mcmf_grid.build ~n ~source ~sink ~emit_arcs in
    (* Crossing costs are at most one per tile on a simple path, so
       [tcount + 16] upper-bounds every augmenting path — the same
       maximise-count-first threshold trick as the escape stage's beta. *)
    let (_ : Mcmf_grid.outcome) =
      Mcmf_grid.solve ?alive ?workspace ~stop_when_cost_reaches:(tcount + 16) net
    in
    List.iter
      (fun nodes ->
        match nodes with
        | _src :: rnode :: rest when rnode >= tcount && rnode < tcount + nreq ->
          let tiles = List.filter (fun v -> v < tcount) rest in
          result.(rnode - tcount) <- Some tiles
        | _ -> ())
      (Mcmf_grid.decompose_paths net);
    result
  end
