(** Escape routing: connect routed clusters to boundary control pins
    (Sec. 5 of the paper), formulated as one global min-cost flow.

    Each cluster contributes a unit of flow that may leave from any of its
    {e start cells} (the Steiner-tree root, the two-valve middle point, or
    every cell of its routed paths, per the three cases of Sec. 5), travel
    through free routing cells — each usable by at most one path, which
    keeps escape channels vertex-disjoint (constraint 12) — and terminate at
    an unused candidate control pin. Maximising the number of routed
    clusters dominates; total channel length is minimised secondarily
    (the [-beta] objective trick of the paper, with [beta] chosen larger
    than any possible augmenting-path length). *)

open Pacor_geom
open Pacor_grid

type request = {
  cluster_idx : int;           (** caller's identifier, echoed in results *)
  start_cells : Point.t list;  (** cells this cluster's escape may leave from *)
}

type routed = {
  idx : int;
  start_cell : Point.t;
  pin : Point.t;
  path : Path.t;               (** from [start_cell] to [pin], inclusive *)
}

type outcome = {
  routed : routed list;        (** in input request order *)
  failed : int list;           (** cluster_idx of unrouted requests *)
  total_length : int;          (** sum of escape path lengths (edges) *)
}

type solver =
  | Dijkstra  (** {!Mcmf}: Dijkstra with potentials *)
  | Spfa      (** {!Mcmf_spfa}: Bellman–Ford queue augmentation *)
  | Grid      (** {!Mcmf_grid}: CSR + persistent potentials + 0-1-BFS *)

val route :
  ?alive:(unit -> bool) ->
  ?sched:Pacor_sched.Sched.t ->
  ?workspace:Pacor_route.Workspace.t ->
  ?solver:solver ->
  ?corridor:(int -> bool) ->
  ?corridor_fallback:(int -> bool) ->
  grid:Routing_grid.t ->
  claimed:Point.Set.t ->
  pins:Point.t list ->
  request list ->
  (outcome, string) result
(** [route ~grid ~claimed ~pins requests]:

    [sched] shards each solve over the independent components of the
    role graph — requests whose reachable regions share no cell route on
    separate subnetworks, in parallel on leased scratch workspaces.
    Results are byte-identical with and without [sched] and for any
    worker count: the decomposition itself also runs without a scheduler
    (sequentially, same leases, same group order), the single-component
    case is the historical joint solve verbatim, and decomposition
    self-disables when the workspace carries real budget limits.

    [corridor] (hierarchical mode) restricts ordinary transit cells to
    those the predicate admits — start cells and pins are exempt. The
    predicate is consulted once per otherwise-usable interior cell while
    roles are computed, so the caller may count refusals as clips. If the
    confined solve leaves any request unrouted, the fallback escalates in
    stages, each noting a fallback on [workspace]'s corridor counters and
    each re-solving {e only the failed requests} on the residual (routed
    escapes committed, their pins retired). With [corridor_fallback] (the
    hierarchical engine's wider post-corridor): retry inside the wider
    region, then retry any stragglers unconfined — no whole-instance
    re-solve, so a genuinely infeasible request costs one residual
    augmentation instead of a full flat solve per call (the engine's race
    tier covers the never-worse guarantee end to end). Without it: one
    unconfined residual retry, then a whole-instance flat re-solve, so a
    bare-corridor call never routes fewer clusters than a flat one.

    [alive] (default always true) is a cooperative cancellation hook
    polled between flow augmentations; when it turns false the solve
    stops with the clusters escaped so far and lists the rest in
    [failed] — the same shape as a congested instance.

    [workspace] supplies the reusable search state (and attached
    {!Pacor_route.Budget}) for the [Grid] solver's augmentation rounds;
    the other solvers keep private state and ignore it.

    [solver] picks the min-cost-flow engine; the default is [Grid], the
    escape-specialised CSR solver, which [bench --escape-bench] measures
    as the fastest by a wide margin at Chip1 scale (see EXPERIMENTS.md).
    All three produce cost-optimal flows with identical
    (routed count, total length) outcomes — the benchmark and a qcheck
    property assert the agreement — and [Spfa]/[Dijkstra] are retained as
    independent cross-checks.

    - [claimed] are the cells of {e all} routed cluster channels; escape
      paths may start on their own cluster's cells but never traverse a
      claimed cell (constraint 11);
    - [pins] are candidate control-pin cells, each usable by at most one
      cluster; they must be free boundary cells;
    - every start cell must lie in [claimed] or be a free cell.

    Errors on malformed inputs (pin off the boundary, blocked pin, start
    cell on an obstacle, duplicate [cluster_idx]). A feasible but
    congested instance returns [Ok] with the unroutable clusters listed
    in [failed]. *)

val feasibility_bound :
  ?workspace:Pacor_route.Workspace.t ->
  grid:Routing_grid.t ->
  claimed:Point.Set.t ->
  pins:Point.t list ->
  request list ->
  int
(** Maximum number of clusters {e any} escape assignment could route: the
    max flow of the escape network with costs ignored (BFS augmentation on
    the same CSR network {!route} solves over; the tests cross-check it
    against the independent {!Maxflow} Dinic solver). [route] always
    routes exactly this many, which the tests assert. Returns 0 on
    malformed inputs. *)
